// Symbol demodulation: dechirp + FFT + oversampling fold.
//
// The signal vector of a symbol window is Y = |FFT(window .* C')|^2 with the
// two spectral images of each tone (an artifact of oversampling by OSF)
// folded together, yielding a 2^SF-long power vector with a peak at the
// transmitted cyclic shift (paper Section 3, Fig. 1).
//
// Two API levels (DESIGN.md "Hot-path kernels"):
//  - `dechirp_fft_into` / `signal_vector_into` are the zero-allocation
//    kernels: they write into caller-owned buffers and draw all scratch
//    (FFT buffer, per-CFO phasor tables) from a `Workspace`, so the
//    steady-state decode loop performs no heap allocations per symbol.
//  - `dechirp_fft` / `signal_vector` / `demod_value` are thin by-value
//    wrappers over the kernels using a per-thread workspace; both levels
//    produce bit-identical results.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "common/types.hpp"
#include "lora/params.hpp"

namespace tnb::lora {

/// Caller-owned scratch for the demodulation kernels.
///
/// Holds the FFT buffer and a small cache of precomputed CFO phasor
/// tables keyed by (cfo, sps) — the per-sample rotation sequence is
/// identical for every window demodulated at the same CFO, so the
/// sequential phasor recurrence runs once per distinct CFO instead of
/// once per symbol. All storage is 64-byte aligned (common/aligned.hpp).
///
/// A workspace is NOT thread-safe: use one per thread (the receiver
/// pipeline threads one through Detector, FracSync, SigCalc and
/// StreamingReceiver). Buffers grow on demand and are retained, so a warm
/// workspace allocates nothing.
class Workspace {
 public:
  Workspace() = default;
  explicit Workspace(const Params& p) { reserve(p); }

  /// Pre-sizes the kernel scratch for `p` (no-op when already sized).
  /// Kernels call this implicitly; calling it up front moves the one-time
  /// allocations out of the hot path.
  void reserve(const Params& p);

  /// Samples per symbol the kernel scratch is currently sized for.
  std::size_t sps() const { return sps_; }

  /// General-purpose caller scratch, never touched by the kernels:
  /// components (FracSync, Detector, SigCalc) keep their window and
  /// accumulator buffers here so one workspace serves a whole pipeline.
  /// Contents persist between kernel calls; sizing is the caller's job.
  static constexpr std::size_t kIqSlots = 6;
  static constexpr std::size_t kSvSlots = 2;
  common::aligned_vector<cfloat>& iq_scratch(std::size_t slot) {
    return iq_slots_[slot];
  }
  SignalVector& sv_scratch(std::size_t slot) { return sv_slots_[slot]; }

 private:
  friend class Demodulator;

  /// One cached phasor table: rot_i = e^{-j 2 pi cfo i / sps} built with
  /// the exact incremental recurrence (including the periodic
  /// renormalization) of the scalar loop it replaces, so applying the
  /// table is bit-identical to rotating incrementally.
  struct Phasor {
    double cfo = 0.0;
    std::uint64_t stamp = 0;  ///< LRU clock; 0 = slot unused
    common::aligned_vector<cfloat> table;
  };

  /// Phasor table for `cfo_cycles`, building and caching it on a miss.
  /// The returned pointer stays valid until 8 other CFOs displace it.
  const cfloat* phasor(double cfo_cycles, std::size_t sps);

  std::size_t sps_ = 0;
  common::aligned_vector<cfloat> spectrum_;  ///< kernel FFT scratch
  SignalVector sv_;                          ///< demod_value scratch
  std::array<Phasor, 8> phasors_;
  std::uint64_t stamp_ = 0;
  std::array<common::aligned_vector<cfloat>, kIqSlots> iq_slots_;
  std::array<SignalVector, kSvSlots> sv_slots_;
};

class Demodulator {
 public:
  explicit Demodulator(Params p);

  const Params& params() const { return p_; }

  /// Complex spectrum (length sps) of one symbol window after dechirping
  /// and CFO correction. `up` selects the dechirping reference: true
  /// multiplies by the downchirp (demodulates upchirp symbols), false by
  /// the upchirp (demodulates the preamble downchirps). Windows shorter
  /// than sps are zero-padded (partial symbols at trace edges).
  std::vector<cfloat> dechirp_fft(std::span<const cfloat> window,
                                  double cfo_cycles, bool up = true) const;

  /// Zero-allocation form of `dechirp_fft`: dechirps `window` into `out`
  /// (which must be sps long), zero-pads, and transforms in place. `ws`
  /// supplies the cached phasor table; `out` may be any writable storage
  /// (including a `ws.iq_scratch` slot).
  void dechirp_fft_into(std::span<const cfloat> window, double cfo_cycles,
                        bool up, Workspace& ws, std::span<cfloat> out) const;

  /// Batched `dechirp_fft_into` over `count` full sps-long windows packed
  /// contiguously in `windows` (size count * sps, as is `out`; in-place
  /// with windows == out is fine). All windows share one CFO and chirp
  /// direction — the common case in Detector's scan, FracSync's preamble
  /// evaluation, and SigCalc's height sweep — so the phasor table is
  /// resolved once and the FFTs run as one `forward_batch` invocation.
  /// Bit-identical to `count` dechirp_fft_into calls on the same backend.
  void dechirp_fft_batch_into(std::span<const cfloat> windows,
                              std::size_t count, double cfo_cycles, bool up,
                              Workspace& ws, std::span<cfloat> out) const;

  /// Folded power signal vector (length 2^SF).
  SignalVector signal_vector(std::span<const cfloat> window,
                             double cfo_cycles, bool up = true) const;

  /// Zero-allocation form of `signal_vector`: computes the spectrum into
  /// the workspace FFT buffer and folds it into `out` (resized to 2^SF
  /// only when its length differs).
  void signal_vector_into(std::span<const cfloat> window, double cfo_cycles,
                          bool up, Workspace& ws, SignalVector& out) const;

  /// Folds an sps-long complex spectrum into the 2^SF-long power vector:
  /// out[k] = |X[k]|^2 + |X[k + N*(OSF-1)]|^2.
  void fold(std::span<const cfloat> spectrum, SignalVector& out) const;

  /// Folded power at a single bin of a complex spectrum (for Q()).
  double folded_power_at(std::span<const cfloat> spectrum, std::size_t bin) const;

  /// Index of the highest element of a signal vector.
  static std::size_t argmax(std::span<const float> sv);

  /// Demodulated data symbol value: Gray(argmax of the signal vector).
  std::uint32_t demod_value(std::span<const cfloat> window,
                            double cfo_cycles) const;

  /// Zero-allocation form of `demod_value` (uses workspace scratch).
  std::uint32_t demod_value(std::span<const cfloat> window,
                            double cfo_cycles, Workspace& ws) const;

  /// Raw peak bin (argmax, no Gray mapping) — what FrameCodecs consume.
  /// demod_value(w, c, ws) == params().value_for_shift(demod_bin(w, c, ws)).
  std::uint32_t demod_bin(std::span<const cfloat> window, double cfo_cycles,
                          Workspace& ws) const;

 private:
  /// Per-thread workspace backing the by-value wrapper methods.
  Workspace& scratch() const;

  Params p_;
  std::vector<cfloat> downchirp_;  // conj(C), oversampled
  std::vector<cfloat> upchirp_;    // C, oversampled
};

}  // namespace tnb::lora
