// Symbol demodulation: dechirp + FFT + oversampling fold.
//
// The signal vector of a symbol window is Y = |FFT(window .* C')|^2 with the
// two spectral images of each tone (an artifact of oversampling by OSF)
// folded together, yielding a 2^SF-long power vector with a peak at the
// transmitted cyclic shift (paper Section 3, Fig. 1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "lora/params.hpp"

namespace tnb::lora {

class Demodulator {
 public:
  explicit Demodulator(Params p);

  const Params& params() const { return p_; }

  /// Complex spectrum (length sps) of one symbol window after dechirping
  /// and CFO correction. `up` selects the dechirping reference: true
  /// multiplies by the downchirp (demodulates upchirp symbols), false by
  /// the upchirp (demodulates the preamble downchirps). Windows shorter
  /// than sps are zero-padded (partial symbols at trace edges).
  std::vector<cfloat> dechirp_fft(std::span<const cfloat> window,
                                  double cfo_cycles, bool up = true) const;

  /// Folded power signal vector (length 2^SF).
  SignalVector signal_vector(std::span<const cfloat> window,
                             double cfo_cycles, bool up = true) const;

  /// Folds an sps-long complex spectrum into the 2^SF-long power vector:
  /// out[k] = |X[k]|^2 + |X[k + N*(OSF-1)]|^2.
  void fold(std::span<const cfloat> spectrum, SignalVector& out) const;

  /// Folded power at a single bin of a complex spectrum (for Q()).
  double folded_power_at(std::span<const cfloat> spectrum, std::size_t bin) const;

  /// Index of the highest element of a signal vector.
  static std::size_t argmax(std::span<const float> sv);

  /// Demodulated data symbol value: Gray(argmax of the signal vector).
  std::uint32_t demod_value(std::span<const cfloat> window,
                            double cfo_cycles) const;

 private:
  Params p_;
  std::vector<cfloat> downchirp_;  // conj(C), oversampled
  std::vector<cfloat> upchirp_;    // C, oversampled
};

}  // namespace tnb::lora
