// Packet-level CRC-16 and the PHY-header checksum.
#pragma once

#include <cstdint>
#include <span>

namespace tnb::lora {

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) over `bytes`.
/// Used as the packet-level CRC that arbitrates between BEC-fixed blocks.
std::uint16_t crc16(std::span<const std::uint8_t> bytes);

/// 8-bit checksum protecting the PHY header fields (XOR-fold of the header
/// content bits). Lets the receiver select among BEC candidates for the
/// header block the same way the payload CRC does for payload blocks.
std::uint8_t header_checksum(std::uint8_t payload_len, std::uint8_t cr,
                             bool has_crc);

}  // namespace tnb::lora
