// Chirp waveform generation, including fractional-delay evaluation.
//
// The base upchirp C is a unit-amplitude complex tone whose frequency rises
// linearly across the symbol; a data symbol is C cyclically shifted by h
// chirp samples. Because the phase is an analytic function of time, a packet
// can be synthesized at any fractional delay on the receiver sampling grid,
// which is what lets the simulator exercise TnB's fractional timing search.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "lora/params.hpp"

namespace tnb::lora {

/// Phase (radians) of the base upchirp at chirp-sample position x in [0, N).
/// psi(x) = 2*pi*(x^2/(2N) - x/2): frequency sweeps from -BW/2 to +BW/2.
double upchirp_phase(double x, std::size_t n_bins);

/// Complex value of an upchirp symbol with cyclic shift `h`, evaluated at
/// local time `u` chirp samples into the symbol (u in [0, N)).
cfloat eval_upchirp(double u, std::uint32_t h, std::size_t n_bins);

/// Complex value of the downchirp (conjugate base chirp) at local time u.
cfloat eval_downchirp(double u, std::size_t n_bins);

/// Oversampled base upchirp: sps = N * OSF samples, sample i at u = i/OSF.
std::vector<cfloat> make_upchirp(const Params& p, std::uint32_t shift = 0);

/// Oversampled base downchirp (conjugate of the zero-shift upchirp).
std::vector<cfloat> make_downchirp(const Params& p);

}  // namespace tnb::lora
