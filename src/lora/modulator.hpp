// Packet waveform synthesis.
//
// Produces the complete baseband IQ of a LoRa packet — preamble (8 upchirps,
// 2 sync symbols, 2.25 downchirps), header and payload symbols — on the
// receiver's oversampled grid, with an analytic fractional delay and CFO so
// the simulator can place packets at arbitrary sub-sample offsets exactly.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.hpp"
#include "lora/params.hpp"

namespace tnb::lora {

struct WaveformOptions {
  /// Sub-sample delay in receiver samples, in [0, 1). Integer placement is
  /// the trace builder's job.
  double frac_delay = 0.0;
  /// Carrier frequency offset in Hz.
  double cfo_hz = 0.0;
  /// Linear amplitude of the packet (channel gain applied separately).
  double amplitude = 1.0;
};

class Modulator {
 public:
  explicit Modulator(Params p);

  const Params& params() const { return p_; }

  /// Duration of a packet with `n_data_symbols` data symbols, in chirp
  /// samples (preamble included; non-integer because of the 2.25 downchirps).
  double packet_chirp_samples(std::size_t n_data_symbols) const;

  /// Same duration in receiver samples, rounded up.
  std::size_t packet_samples(std::size_t n_data_symbols) const;

  /// Synthesizes the full packet. `data_symbols` holds the data-domain
  /// symbol values (header + payload) from make_packet_symbols; the Gray
  /// mapping to chirp shifts happens here.
  IqBuffer synthesize(std::span<const std::uint32_t> data_symbols,
                      const WaveformOptions& opt = {}) const;

  /// Synthesizes from raw chirp shifts (no Gray mapping) — the entry point
  /// for alternate frame codecs (wire::WireCodec::encode_shifts) whose
  /// value -> shift convention differs from the paper's.
  IqBuffer synthesize_shifts(std::span<const std::uint32_t> shifts,
                             const WaveformOptions& opt = {}) const;

  /// Complex value of the packet waveform at continuous chirp-sample time
  /// `t` in [0, packet_chirp_samples) — exposed for tests and for the
  /// synchronizer's reference correlations.
  cfloat eval(double t, std::span<const std::uint32_t> data_symbols) const;

  /// eval with raw chirp shifts instead of data symbol values.
  cfloat eval_shifts(double t, std::span<const std::uint32_t> shifts) const;

 private:
  cfloat eval_impl(double t, std::span<const std::uint32_t> data_symbols,
                   bool raw_shifts) const;
  IqBuffer synthesize_impl(std::span<const std::uint32_t> data_symbols,
                           const WaveformOptions& opt, bool raw_shifts) const;

  Params p_;
};

}  // namespace tnb::lora
