#include "lora/whitening.hpp"

namespace tnb::lora {

std::vector<std::uint8_t> whitening_sequence(std::size_t n) {
  std::vector<std::uint8_t> seq(n);
  std::uint16_t state = 0x1FF;  // 9-bit LFSR, all ones
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t byte = 0;
    for (int b = 0; b < 8; ++b) {
      const std::uint8_t out = state & 1u;
      byte |= static_cast<std::uint8_t>(out << b);
      // x^9 + x^5 + 1: feedback from taps 0 and 4 of the shifted register.
      const std::uint16_t fb = ((state >> 0) ^ (state >> 4)) & 1u;
      state = static_cast<std::uint16_t>((state >> 1) | (fb << 8));
    }
    seq[i] = byte;
  }
  return seq;
}

void whiten(std::span<std::uint8_t> bytes) {
  const std::vector<std::uint8_t> seq = whitening_sequence(bytes.size());
  for (std::size_t i = 0; i < bytes.size(); ++i) bytes[i] ^= seq[i];
}

}  // namespace tnb::lora
