#include "lora/modulator.hpp"

#include <cmath>

#include "common/math_util.hpp"
#include "lora/chirp.hpp"
#include "lora/gray.hpp"

namespace tnb::lora {

Modulator::Modulator(Params p) : p_(p) { p_.validate(); }

double Modulator::packet_chirp_samples(std::size_t n_data_symbols) const {
  const double symbols =
      static_cast<double>(kPreambleUpchirps + kSyncSymbols) +
      kPreambleDownchirps + static_cast<double>(n_data_symbols);
  return symbols * static_cast<double>(p_.n_bins());
}

std::size_t Modulator::packet_samples(std::size_t n_data_symbols) const {
  return static_cast<std::size_t>(
      std::ceil(packet_chirp_samples(n_data_symbols) * p_.osf));
}

cfloat Modulator::eval(double t, std::span<const std::uint32_t> data_symbols) const {
  return eval_impl(t, data_symbols, /*raw_shifts=*/false);
}

cfloat Modulator::eval_shifts(double t, std::span<const std::uint32_t> shifts) const {
  return eval_impl(t, shifts, /*raw_shifts=*/true);
}

cfloat Modulator::eval_impl(double t, std::span<const std::uint32_t> data_symbols,
                            bool raw_shifts) const {
  const double n = static_cast<double>(p_.n_bins());
  const double total = packet_chirp_samples(data_symbols.size());
  if (t < 0.0 || t >= total) return {0.0f, 0.0f};

  const double down_start = static_cast<double>(kPreambleUpchirps + kSyncSymbols) * n;
  const double data_start = down_start + kPreambleDownchirps * n;

  if (t < down_start) {
    const std::size_t seg = static_cast<std::size_t>(t / n);
    const double u = t - static_cast<double>(seg) * n;
    std::uint32_t shift = 0;
    if (seg == kPreambleUpchirps) shift = kSyncShift1;
    if (seg == kPreambleUpchirps + 1) shift = kSyncShift2;
    return eval_upchirp(u, shift, p_.n_bins());
  }
  if (t < data_start) {
    const double rel = t - down_start;
    const double u = rel - std::floor(rel / n) * n;
    return eval_downchirp(u, p_.n_bins());
  }
  const double rel = t - data_start;
  const std::size_t seg = static_cast<std::size_t>(rel / n);
  const double u = rel - static_cast<double>(seg) * n;
  const std::uint32_t mask = static_cast<std::uint32_t>(p_.n_bins() - 1);
  const std::uint32_t shift =
      (raw_shifts ? data_symbols[seg] : p_.shift_for_value(data_symbols[seg])) &
      mask;
  return eval_upchirp(u, shift, p_.n_bins());
}

IqBuffer Modulator::synthesize(std::span<const std::uint32_t> data_symbols,
                               const WaveformOptions& opt) const {
  return synthesize_impl(data_symbols, opt, /*raw_shifts=*/false);
}

IqBuffer Modulator::synthesize_shifts(std::span<const std::uint32_t> shifts,
                                      const WaveformOptions& opt) const {
  return synthesize_impl(shifts, opt, /*raw_shifts=*/true);
}

IqBuffer Modulator::synthesize_impl(std::span<const std::uint32_t> data_symbols,
                                    const WaveformOptions& opt,
                                    bool raw_shifts) const {
  const std::size_t len = packet_samples(data_symbols.size()) +
                          (opt.frac_delay > 0.0 ? 1 : 0);
  IqBuffer out(len);
  const double cfo_cycles = p_.cfo_hz_to_cycles(opt.cfo_hz);
  const double n = static_cast<double>(p_.n_bins());
  const float amp = static_cast<float>(opt.amplitude);

  for (std::size_t i = 0; i < len; ++i) {
    const double t = (static_cast<double>(i) - opt.frac_delay) / p_.osf;
    cfloat v = eval_impl(t, data_symbols, raw_shifts);
    if (v == cfloat{0.0f, 0.0f}) continue;
    // CFO rotates the carrier continuously over the whole packet.
    const double ph = kTwoPi * cfo_cycles * t / n;
    const cfloat rot{static_cast<float>(std::cos(ph)),
                     static_cast<float>(std::sin(ph))};
    out[i] = amp * v * rot;
  }
  return out;
}

}  // namespace tnb::lora
