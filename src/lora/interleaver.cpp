#include "lora/interleaver.hpp"

#include <stdexcept>

namespace tnb::lora {

std::vector<std::uint32_t> interleave_block(std::span<const std::uint8_t> rows,
                                            unsigned sf, unsigned cr) {
  if (rows.size() != sf) {
    throw std::invalid_argument("interleave_block: need SF codeword rows");
  }
  const unsigned cols = 4 + cr;
  std::vector<std::uint32_t> symbols(cols, 0);
  for (unsigned c = 0; c < cols; ++c) {
    std::uint32_t v = 0;
    for (unsigned r = 0; r < sf; ++r) {
      const unsigned src_row = (r + c) % sf;  // diagonal rotation
      const std::uint32_t b = (rows[src_row] >> c) & 1u;
      v |= b << r;
    }
    symbols[c] = v;
  }
  return symbols;
}

std::vector<std::uint8_t> deinterleave_block(
    std::span<const std::uint32_t> symbols, unsigned sf, unsigned cr) {
  const unsigned cols = 4 + cr;
  if (symbols.size() != cols) {
    throw std::invalid_argument("deinterleave_block: need 4+CR symbols");
  }
  std::vector<std::uint8_t> rows(sf, 0);
  for (unsigned c = 0; c < cols; ++c) {
    for (unsigned r = 0; r < sf; ++r) {
      const unsigned dst_row = (r + c) % sf;
      const std::uint32_t b = (symbols[c] >> r) & 1u;
      rows[dst_row] |= static_cast<std::uint8_t>(b << c);
    }
  }
  return rows;
}

}  // namespace tnb::lora
