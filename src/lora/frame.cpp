#include "lora/frame.hpp"

#include <stdexcept>

#include "lora/crc.hpp"
#include "lora/hamming.hpp"
#include "lora/interleaver.hpp"
#include "lora/whitening.hpp"

namespace tnb::lora {

std::vector<std::uint8_t> bytes_to_nibbles(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> nibbles;
  nibbles.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    nibbles.push_back(b & 0x0F);
    nibbles.push_back(static_cast<std::uint8_t>(b >> 4));
  }
  return nibbles;
}

std::vector<std::uint8_t> nibbles_to_bytes(std::span<const std::uint8_t> nibbles) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(nibbles.size() / 2);
  for (std::size_t i = 0; i + 1 < nibbles.size(); i += 2) {
    bytes.push_back(
        static_cast<std::uint8_t>((nibbles[i] & 0x0F) | (nibbles[i + 1] << 4)));
  }
  return bytes;
}

std::size_t num_payload_blocks(unsigned sf, std::size_t payload_bytes) {
  const std::size_t nibbles = payload_bytes * 2;
  return (nibbles + sf - 1) / sf;
}

std::size_t num_payload_symbols(const Params& p, std::size_t payload_bytes) {
  return num_payload_blocks(p.bits_per_symbol(), payload_bytes) * p.codeword_len();
}

std::size_t num_packet_symbols(const Params& p, std::size_t payload_bytes) {
  return kHeaderSymbols + num_payload_symbols(p, payload_bytes);
}

std::vector<std::uint8_t> assemble_payload(std::span<const std::uint8_t> app_bytes) {
  std::vector<std::uint8_t> payload(app_bytes.begin(), app_bytes.end());
  const std::uint16_t crc = crc16(app_bytes);
  payload.push_back(static_cast<std::uint8_t>(crc >> 8));
  payload.push_back(static_cast<std::uint8_t>(crc & 0xFF));
  return payload;
}

bool check_payload_crc(std::span<const std::uint8_t> payload) {
  if (payload.size() < 3) return false;
  const std::uint16_t crc = crc16(payload.first(payload.size() - 2));
  return payload[payload.size() - 2] == static_cast<std::uint8_t>(crc >> 8) &&
         payload[payload.size() - 1] == static_cast<std::uint8_t>(crc & 0xFF);
}

std::vector<std::uint32_t> encode_payload_symbols(
    const Params& p, std::span<const std::uint8_t> payload) {
  p.validate();
  std::vector<std::uint8_t> whitened(payload.begin(), payload.end());
  whiten(whitened);
  std::vector<std::uint8_t> nibbles = bytes_to_nibbles(whitened);
  nibbles.resize(num_payload_blocks(p.bits_per_symbol(), payload.size()) * p.bits_per_symbol(), 0);

  std::vector<std::uint32_t> symbols;
  symbols.reserve(nibbles.size() / p.bits_per_symbol() * p.codeword_len());
  std::vector<std::uint8_t> rows(p.bits_per_symbol());
  for (std::size_t blk = 0; blk * p.bits_per_symbol() < nibbles.size(); ++blk) {
    for (unsigned r = 0; r < p.bits_per_symbol(); ++r) {
      rows[r] = encode_cr(nibbles[blk * p.bits_per_symbol() + r], p.cr);
    }
    const std::vector<std::uint32_t> blk_syms = interleave_block(rows, p.bits_per_symbol(), p.cr);
    symbols.insert(symbols.end(), blk_syms.begin(), blk_syms.end());
  }
  return symbols;
}

std::vector<std::uint32_t> make_packet_symbols(
    const Params& p, std::span<const std::uint8_t> app_bytes) {
  const std::vector<std::uint8_t> payload = assemble_payload(app_bytes);
  if (payload.size() > 255) {
    throw std::invalid_argument("make_packet_symbols: payload too long");
  }
  Header h;
  h.payload_len = static_cast<std::uint8_t>(payload.size());
  h.cr = static_cast<std::uint8_t>(p.cr);
  h.has_crc = true;
  std::vector<std::uint32_t> symbols = encode_header_symbols(p, h);
  const std::vector<std::uint32_t> pay = encode_payload_symbols(p, payload);
  symbols.insert(symbols.end(), pay.begin(), pay.end());
  return symbols;
}

std::vector<std::vector<std::uint8_t>> payload_blocks_from_symbols(
    const Params& p, std::span<const std::uint32_t> symbols) {
  const std::size_t cols = p.codeword_len();
  if (symbols.size() % cols != 0) {
    throw std::invalid_argument(
        "payload_blocks_from_symbols: symbol count not a multiple of 4+CR");
  }
  std::vector<std::vector<std::uint8_t>> blocks;
  blocks.reserve(symbols.size() / cols);
  for (std::size_t i = 0; i < symbols.size(); i += cols) {
    blocks.push_back(deinterleave_block(symbols.subspan(i, cols), p.bits_per_symbol(), p.cr));
  }
  return blocks;
}

std::vector<std::uint8_t> payload_from_block_nibbles(
    const Params& p, std::span<const std::vector<std::uint8_t>> block_nibbles,
    std::size_t payload_len) {
  std::vector<std::uint8_t> nibbles;
  nibbles.reserve(block_nibbles.size() * p.bits_per_symbol());
  for (const auto& blk : block_nibbles) {
    nibbles.insert(nibbles.end(), blk.begin(), blk.end());
  }
  nibbles.resize(payload_len * 2);
  std::vector<std::uint8_t> bytes = nibbles_to_bytes(nibbles);
  whiten(bytes);  // whitening is an involution
  return bytes;
}

std::optional<std::vector<std::uint8_t>> decode_payload_default(
    const Params& p, std::span<const std::uint32_t> symbols,
    std::size_t payload_len) {
  if (symbols.size() < num_payload_symbols(p, payload_len)) return std::nullopt;
  const auto blocks = payload_blocks_from_symbols(
      p, symbols.first(num_payload_symbols(p, payload_len)));
  std::vector<std::vector<std::uint8_t>> nibbles;
  nibbles.reserve(blocks.size());
  for (const auto& blk : blocks) {
    std::vector<std::uint8_t> data(p.bits_per_symbol());
    for (unsigned r = 0; r < p.bits_per_symbol(); ++r) {
      data[r] = default_decode(blk[r], p.cr).data;
    }
    nibbles.push_back(std::move(data));
  }
  std::vector<std::uint8_t> payload =
      payload_from_block_nibbles(p, nibbles, payload_len);
  if (!check_payload_crc(payload)) return std::nullopt;
  return payload;
}

std::optional<Header> decode_header_default(
    const Params& p, std::span<const std::uint32_t> header_symbols) {
  if (header_symbols.size() < kHeaderSymbols) return std::nullopt;
  const std::vector<std::uint8_t> rows =
      deinterleave_block(header_symbols.first(kHeaderSymbols), p.bits_per_symbol(), 4);
  std::vector<std::uint8_t> nibbles(p.bits_per_symbol());
  for (unsigned r = 0; r < p.bits_per_symbol(); ++r) {
    nibbles[r] = default_decode(rows[r], 4).data;
  }
  return header_from_nibbles(nibbles);
}

}  // namespace tnb::lora
