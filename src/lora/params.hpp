// LoRa PHY parameters and frame-layout constants.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "lora/gray.hpp"

namespace tnb::lora {

/// Number of upchirps at the start of every preamble.
inline constexpr std::size_t kPreambleUpchirps = 8;
/// Number of sync-word symbols following the upchirps.
inline constexpr std::size_t kSyncSymbols = 2;
/// Cyclic shifts of the two sync symbols (peaks at bins 8 and 16,
/// i.e. locations 9 and 17 in the paper's 1-indexed convention).
inline constexpr std::uint32_t kSyncShift1 = 8;
inline constexpr std::uint32_t kSyncShift2 = 16;
/// Downchirps terminating the preamble, in units of symbols.
inline constexpr double kPreambleDownchirps = 2.25;
/// PHY header length in symbols; the header always uses CR 4 (4+4 columns).
inline constexpr std::size_t kHeaderSymbols = 8;

/// Static configuration of one LoRa link.
///
/// Invariants are checked by `validate()`: SF in [5,12] (5 and 6 exist for
/// wire-format links; the paper evaluates 7..12), CR in [1,4], OSF >= 1.
/// Everything else is derived.
struct Params {
  unsigned sf = 8;        ///< spreading factor
  unsigned cr = 4;        ///< coding rate: number of parity bits sent (1..4)
  double bandwidth_hz = 125e3;
  unsigned osf = 8;       ///< over-sampling factor U at the receiver
  /// Low Data Rate Optimization: each symbol carries SF-2 bits and the two
  /// least-significant shift bits are ignored at demodulation, trading rate
  /// for robustness on long symbols (LoRa enables this at SF 11/12).
  bool ldro = false;

  void validate() const {
    if (sf < 5 || sf > 12) throw std::invalid_argument("Params: SF must be 5..12");
    if (cr < 1 || cr > 4) throw std::invalid_argument("Params: CR must be 1..4");
    if (osf < 1) throw std::invalid_argument("Params: OSF must be >= 1");
    if (bandwidth_hz <= 0) throw std::invalid_argument("Params: bandwidth must be positive");
    if (ldro && sf < 8) throw std::invalid_argument("Params: LDRO needs SF >= 8");
  }

  /// Data bits carried per symbol (= code-block rows): SF, or SF-2 in LDRO.
  unsigned bits_per_symbol() const { return ldro ? sf - 2 : sf; }

  /// Chirp shift transmitted for a data symbol value.
  std::uint32_t shift_for_value(std::uint32_t v) const;
  /// Data symbol value recovered from a demodulated peak bin.
  std::uint32_t value_for_shift(std::uint32_t h) const;

  /// Number of FFT bins / chirp samples per symbol: 2^SF.
  std::size_t n_bins() const { return std::size_t{1} << sf; }

  /// Receiver samples per symbol: 2^SF * OSF.
  std::size_t sps() const { return n_bins() * osf; }

  /// Receiver sample rate in Hz.
  double sample_rate_hz() const { return bandwidth_hz * osf; }

  /// Symbol duration in seconds.
  double symbol_time_s() const { return static_cast<double>(n_bins()) / bandwidth_hz; }

  /// Codeword length (= symbols per code block): 4 data + CR parity columns.
  std::size_t codeword_len() const { return 4 + cr; }

  /// Preamble duration in receiver samples (8 up + 2 sync + 2.25 down).
  std::size_t preamble_samples() const {
    const double symbols = static_cast<double>(kPreambleUpchirps + kSyncSymbols) +
                           kPreambleDownchirps;
    return static_cast<std::size_t>(symbols * static_cast<double>(sps()));
  }

  /// Converts a CFO in Hz to cycles per symbol (the unit used throughout
  /// Thrive and the synchronizer; the paper's `f` equals 1/T).
  double cfo_hz_to_cycles(double cfo_hz) const { return cfo_hz * symbol_time_s(); }
  double cfo_cycles_to_hz(double cycles) const { return cycles / symbol_time_s(); }
};

inline std::uint32_t Params::shift_for_value(std::uint32_t v) const {
  const std::uint32_t h = gray_decode(v);
  return ldro ? (h << 2) : h;
}

inline std::uint32_t Params::value_for_shift(std::uint32_t h) const {
  // LDRO drops the two least-significant shift bits (rounding to the
  // nearest multiple of 4), absorbing small peak-location errors.
  const std::uint32_t q = ldro ? ((h + 2) >> 2) & ((1u << (sf - 2)) - 1u) : h;
  return gray_encode(q);
}

}  // namespace tnb::lora
