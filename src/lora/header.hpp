// PHY header: carried in the first 8 symbols of every packet at CR 4.
//
// The header tells the receiver the payload length and coding rate. It is
// one CR-4 code block (SF codewords), of which the first five data nibbles
// carry content and the rest are zero padding. An 8-bit checksum lets the
// receiver reject corrupted headers and arbitrate between BEC candidates.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "lora/params.hpp"

namespace tnb::lora {

struct Header {
  std::uint8_t payload_len = 0;  ///< on-air payload bytes, including CRC16
  std::uint8_t cr = 4;           ///< coding rate of the payload blocks
  bool has_crc = true;

  friend bool operator==(const Header&, const Header&) = default;
};

/// Packs the header into SF data nibbles (content + zero padding).
std::vector<std::uint8_t> header_to_nibbles(const Header& h, unsigned sf);

/// Parses and validates header nibbles. Returns nullopt if the checksum
/// fails or fields are out of range.
std::optional<Header> header_from_nibbles(std::span<const std::uint8_t> nibbles);

/// Encodes the header into its 8 on-air data symbol values (CR 4 block:
/// Hamming-encode each nibble, diagonal-interleave).
std::vector<std::uint32_t> encode_header_symbols(const Params& p, const Header& h);

}  // namespace tnb::lora
