#include "lora/crc.hpp"

namespace tnb::lora {

std::uint16_t crc16(std::span<const std::uint8_t> bytes) {
  std::uint16_t crc = 0xFFFF;
  for (std::uint8_t b : bytes) {
    crc ^= static_cast<std::uint16_t>(b) << 8;
    for (int i = 0; i < 8; ++i) {
      if (crc & 0x8000) {
        crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
      } else {
        crc = static_cast<std::uint16_t>(crc << 1);
      }
    }
  }
  return crc;
}

std::uint8_t header_checksum(std::uint8_t payload_len, std::uint8_t cr,
                             bool has_crc) {
  // XOR-fold the 12 content bits with distinct rotations so single-field
  // changes always change the checksum.
  std::uint8_t c = 0xA5;
  c ^= payload_len;
  c ^= static_cast<std::uint8_t>((payload_len << 3) | (payload_len >> 5));
  c ^= static_cast<std::uint8_t>(cr << 1);
  c ^= static_cast<std::uint8_t>(has_crc ? 0x80 : 0x00);
  return c;
}

}  // namespace tnb::lora
