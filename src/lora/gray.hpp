// Gray code mapping between FFT-bin indices and data symbol values.
//
// LoRa maps data onto chirp shifts through a Gray code so that the most
// common demodulation error — the peak landing one bin off — flips a single
// bit, which the Hamming code can absorb. A totally wrong peak (a collision
// artifact) randomizes the bits, which is exactly the per-column error model
// BEC is built on.
#pragma once

#include <cstdint>

namespace tnb::lora {

/// Binary-reflected Gray code of x.
constexpr std::uint32_t gray_encode(std::uint32_t x) { return x ^ (x >> 1); }

/// Inverse of gray_encode.
constexpr std::uint32_t gray_decode(std::uint32_t g) {
  std::uint32_t x = g;
  for (std::uint32_t shift = 1; shift < 32; shift <<= 1) x ^= x >> shift;
  return x;
}

/// Chirp shift transmitted for a data symbol value v (SF bits).
constexpr std::uint32_t shift_for_value(std::uint32_t v) { return gray_decode(v); }

/// Data symbol value recovered from a demodulated peak bin h.
constexpr std::uint32_t value_for_shift(std::uint32_t h) { return gray_encode(h); }

}  // namespace tnb::lora
