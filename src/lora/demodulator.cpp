#include "lora/demodulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/math_util.hpp"
#include "dsp/fft.hpp"
#include "lora/chirp.hpp"
#include "lora/gray.hpp"

namespace tnb::lora {

Demodulator::Demodulator(Params p)
    : p_(p), downchirp_(make_downchirp(p_)), upchirp_(make_upchirp(p_)) {
  p_.validate();
}

std::vector<cfloat> Demodulator::dechirp_fft(std::span<const cfloat> window,
                                             double cfo_cycles, bool up) const {
  const std::size_t sps = p_.sps();
  if (window.size() > sps) {
    throw std::invalid_argument("dechirp_fft: window longer than a symbol");
  }
  std::vector<cfloat> buf(sps, cfloat{0.0f, 0.0f});

  const std::vector<cfloat>& ref = up ? downchirp_ : upchirp_;
  // CFO correction by incremental phasor: rot_{i+1} = rot_i * step, where
  // step = e^{-j 2 pi cfo / (N * OSF)} removes `cfo_cycles` cycles/symbol.
  const double dphi = -kTwoPi * cfo_cycles / static_cast<double>(sps);
  const cfloat step{static_cast<float>(std::cos(dphi)),
                    static_cast<float>(std::sin(dphi))};
  cfloat rot{1.0f, 0.0f};
  for (std::size_t i = 0; i < window.size(); ++i) {
    buf[i] = window[i] * ref[i] * rot;
    rot *= step;
    if ((i & 0x3FF) == 0x3FF) rot /= std::abs(rot);  // renormalize drift
  }
  dsp::fft_inplace(buf);
  return buf;
}

void Demodulator::fold(std::span<const cfloat> spectrum, SignalVector& out) const {
  const std::size_t n = p_.n_bins();
  if (spectrum.size() != p_.sps()) {
    throw std::invalid_argument("fold: spectrum length must be sps");
  }
  out.resize(n);
  if (p_.osf == 1) {
    for (std::size_t k = 0; k < n; ++k) out[k] = std::norm(spectrum[k]);
    return;
  }
  const std::size_t image = n * (p_.osf - 1);
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = std::norm(spectrum[k]) + std::norm(spectrum[k + image]);
  }
}

double Demodulator::folded_power_at(std::span<const cfloat> spectrum,
                                    std::size_t bin) const {
  const std::size_t n = p_.n_bins();
  double e = std::norm(spectrum[bin]);
  if (p_.osf > 1) e += std::norm(spectrum[bin + n * (p_.osf - 1)]);
  return e;
}

SignalVector Demodulator::signal_vector(std::span<const cfloat> window,
                                        double cfo_cycles, bool up) const {
  const std::vector<cfloat> spec = dechirp_fft(window, cfo_cycles, up);
  SignalVector sv;
  fold(spec, sv);
  return sv;
}

std::size_t Demodulator::argmax(std::span<const float> sv) {
  return static_cast<std::size_t>(
      std::max_element(sv.begin(), sv.end()) - sv.begin());
}

std::uint32_t Demodulator::demod_value(std::span<const cfloat> window,
                                       double cfo_cycles) const {
  const SignalVector sv = signal_vector(window, cfo_cycles);
  return p_.value_for_shift(static_cast<std::uint32_t>(argmax(sv)));
}

}  // namespace tnb::lora
