#include "lora/demodulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/math_util.hpp"
#include "dsp/fft.hpp"
#include "lora/chirp.hpp"
#include "lora/gray.hpp"

namespace tnb::lora {
namespace {

/// Fused dechirp + CFO rotation on float lanes: out[i] = (w[i]*c[i])*r[i].
/// The strided real/imag form keeps the exact operation order of the
/// scalar complex loop it replaced — (ac-bd, ad+bc) twice per element —
/// while letting GCC/Clang auto-vectorize it (std::complex multiplication
/// lowers to a __mulsc3 libcall per element, which neither vectorizes nor
/// inlines). std::complex guarantees array-compatible (re, im) layout.
inline void dechirp_rotate(const cfloat* w, std::size_t m, const cfloat* c,
                           const cfloat* r, cfloat* out) {
  const float* wf = reinterpret_cast<const float*>(w);
  const float* cf = reinterpret_cast<const float*>(c);
  const float* rf = reinterpret_cast<const float*>(r);
  float* of = reinterpret_cast<float*>(out);
  for (std::size_t i = 0; i < 2 * m; i += 2) {
    const float ar = wf[i], ai = wf[i + 1];
    const float br = cf[i], bi = cf[i + 1];
    const float tr = ar * br - ai * bi;
    const float ti = ar * bi + ai * br;
    const float pr = rf[i], pi = rf[i + 1];
    of[i] = tr * pr - ti * pi;
    of[i + 1] = tr * pi + ti * pr;
  }
}

}  // namespace

void Workspace::reserve(const Params& p) {
  const std::size_t sps = p.sps();
  if (sps_ == sps) return;
  sps_ = sps;
  spectrum_.resize(sps);
}

const cfloat* Workspace::phasor(double cfo_cycles, std::size_t sps) {
  ++stamp_;
  Phasor* victim = &phasors_[0];
  for (Phasor& e : phasors_) {
    if (e.stamp != 0 && e.cfo == cfo_cycles && e.table.size() == sps) {
      e.stamp = stamp_;
      return e.table.data();
    }
    if (e.stamp < victim->stamp) victim = &e;
  }
  victim->cfo = cfo_cycles;
  victim->stamp = stamp_;
  victim->table.resize(sps);
  // The exact incremental recurrence of the scalar loop this table
  // replaces: rot_{i+1} = rot_i * step with step = e^{-j 2 pi cfo / sps},
  // renormalized every 1024 samples against drift. Moving the sequential
  // recurrence (and its renormalization branch) out of the per-symbol
  // loop is what keeps the applied rotation bit-identical while making
  // the hot loop a pure elementwise product.
  const double dphi = -kTwoPi * cfo_cycles / static_cast<double>(sps);
  const cfloat step{static_cast<float>(std::cos(dphi)),
                    static_cast<float>(std::sin(dphi))};
  cfloat rot{1.0f, 0.0f};
  for (std::size_t i = 0; i < sps; ++i) {
    victim->table[i] = rot;
    rot *= step;
    if ((i & 0x3FF) == 0x3FF) rot /= std::abs(rot);  // renormalize drift
  }
  return victim->table.data();
}

Demodulator::Demodulator(Params p)
    : p_(p), downchirp_(make_downchirp(p_)), upchirp_(make_upchirp(p_)) {
  p_.validate();
}

Workspace& Demodulator::scratch() const {
  thread_local Workspace ws;
  ws.reserve(p_);
  return ws;
}

void Demodulator::dechirp_fft_into(std::span<const cfloat> window,
                                   double cfo_cycles, bool up, Workspace& ws,
                                   std::span<cfloat> out) const {
  const std::size_t sps = p_.sps();
  if (window.size() > sps) {
    throw std::invalid_argument("dechirp_fft: window longer than a symbol");
  }
  if (out.size() != sps) {
    throw std::invalid_argument("dechirp_fft_into: out must be sps long");
  }
  ws.reserve(p_);
  const std::vector<cfloat>& ref = up ? downchirp_ : upchirp_;
  const cfloat* phasor = ws.phasor(cfo_cycles, sps);
  dechirp_rotate(window.data(), window.size(), ref.data(), phasor, out.data());
  std::fill(out.begin() + static_cast<std::ptrdiff_t>(window.size()),
            out.end(), cfloat{0.0f, 0.0f});
  dsp::fft_plan(sps).forward(out);
}

std::vector<cfloat> Demodulator::dechirp_fft(std::span<const cfloat> window,
                                             double cfo_cycles, bool up) const {
  std::vector<cfloat> buf(p_.sps());
  dechirp_fft_into(window, cfo_cycles, up, scratch(), buf);
  return buf;
}

void Demodulator::fold(std::span<const cfloat> spectrum, SignalVector& out) const {
  const std::size_t n = p_.n_bins();
  if (spectrum.size() != p_.sps()) {
    throw std::invalid_argument("fold: spectrum length must be sps");
  }
  if (out.size() != n) out.resize(n);
  if (p_.osf == 1) {
    for (std::size_t k = 0; k < n; ++k) out[k] = std::norm(spectrum[k]);
    return;
  }
  const std::size_t image = n * (p_.osf - 1);
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = std::norm(spectrum[k]) + std::norm(spectrum[k + image]);
  }
}

double Demodulator::folded_power_at(std::span<const cfloat> spectrum,
                                    std::size_t bin) const {
  const std::size_t n = p_.n_bins();
  double e = std::norm(spectrum[bin]);
  if (p_.osf > 1) e += std::norm(spectrum[bin + n * (p_.osf - 1)]);
  return e;
}

void Demodulator::signal_vector_into(std::span<const cfloat> window,
                                     double cfo_cycles, bool up, Workspace& ws,
                                     SignalVector& out) const {
  ws.reserve(p_);
  const std::span<cfloat> spec(ws.spectrum_.data(), p_.sps());
  dechirp_fft_into(window, cfo_cycles, up, ws, spec);
  fold(spec, out);
}

SignalVector Demodulator::signal_vector(std::span<const cfloat> window,
                                        double cfo_cycles, bool up) const {
  SignalVector sv;
  signal_vector_into(window, cfo_cycles, up, scratch(), sv);
  return sv;
}

std::size_t Demodulator::argmax(std::span<const float> sv) {
  return static_cast<std::size_t>(
      std::max_element(sv.begin(), sv.end()) - sv.begin());
}

std::uint32_t Demodulator::demod_value(std::span<const cfloat> window,
                                       double cfo_cycles, Workspace& ws) const {
  return p_.value_for_shift(demod_bin(window, cfo_cycles, ws));
}

std::uint32_t Demodulator::demod_bin(std::span<const cfloat> window,
                                     double cfo_cycles, Workspace& ws) const {
  signal_vector_into(window, cfo_cycles, /*up=*/true, ws, ws.sv_);
  return static_cast<std::uint32_t>(argmax(ws.sv_));
}

std::uint32_t Demodulator::demod_value(std::span<const cfloat> window,
                                       double cfo_cycles) const {
  return demod_value(window, cfo_cycles, scratch());
}

}  // namespace tnb::lora
