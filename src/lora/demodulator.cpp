#include "lora/demodulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/math_util.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_backend.hpp"
#include "lora/chirp.hpp"
#include "lora/gray.hpp"

namespace tnb::lora {

void Workspace::reserve(const Params& p) {
  const std::size_t sps = p.sps();
  if (sps_ == sps) return;
  sps_ = sps;
  spectrum_.resize(sps);
}

const cfloat* Workspace::phasor(double cfo_cycles, std::size_t sps) {
  ++stamp_;
  Phasor* victim = &phasors_[0];
  for (Phasor& e : phasors_) {
    if (e.stamp != 0 && e.cfo == cfo_cycles && e.table.size() == sps) {
      e.stamp = stamp_;
      return e.table.data();
    }
    if (e.stamp < victim->stamp) victim = &e;
  }
  victim->cfo = cfo_cycles;
  victim->stamp = stamp_;
  victim->table.resize(sps);
  // The exact incremental recurrence of the scalar loop this table
  // replaces: rot_{i+1} = rot_i * step with step = e^{-j 2 pi cfo / sps},
  // renormalized every 1024 samples against drift. Moving the sequential
  // recurrence (and its renormalization branch) out of the per-symbol
  // loop is what keeps the applied rotation bit-identical while making
  // the hot loop a pure elementwise product.
  const double dphi = -kTwoPi * cfo_cycles / static_cast<double>(sps);
  const cfloat step{static_cast<float>(std::cos(dphi)),
                    static_cast<float>(std::sin(dphi))};
  cfloat rot{1.0f, 0.0f};
  for (std::size_t i = 0; i < sps; ++i) {
    victim->table[i] = rot;
    rot *= step;
    if ((i & 0x3FF) == 0x3FF) rot /= std::abs(rot);  // renormalize drift
  }
  return victim->table.data();
}

Demodulator::Demodulator(Params p)
    : p_(p), downchirp_(make_downchirp(p_)), upchirp_(make_upchirp(p_)) {
  p_.validate();
}

Workspace& Demodulator::scratch() const {
  thread_local Workspace ws;
  ws.reserve(p_);
  return ws;
}

void Demodulator::dechirp_fft_into(std::span<const cfloat> window,
                                   double cfo_cycles, bool up, Workspace& ws,
                                   std::span<cfloat> out) const {
  const std::size_t sps = p_.sps();
  if (window.size() > sps) {
    throw std::invalid_argument("dechirp_fft: window longer than a symbol");
  }
  if (out.size() != sps) {
    throw std::invalid_argument("dechirp_fft_into: out must be sps long");
  }
  ws.reserve(p_);
  const std::vector<cfloat>& ref = up ? downchirp_ : upchirp_;
  const cfloat* phasor = ws.phasor(cfo_cycles, sps);
  dsp::active_fft_backend().dechirp_rotate(window.data(), window.size(),
                                           ref.data(), phasor, out.data());
  std::fill(out.begin() + static_cast<std::ptrdiff_t>(window.size()),
            out.end(), cfloat{0.0f, 0.0f});
  dsp::fft_plan(sps).forward(out);
}

void Demodulator::dechirp_fft_batch_into(std::span<const cfloat> windows,
                                         std::size_t count, double cfo_cycles,
                                         bool up, Workspace& ws,
                                         std::span<cfloat> out) const {
  const std::size_t sps = p_.sps();
  if (windows.size() != count * sps || out.size() != count * sps) {
    throw std::invalid_argument(
        "dechirp_fft_batch_into: buffers must be count * sps long");
  }
  if (count == 0) return;
  ws.reserve(p_);
  const std::vector<cfloat>& ref = up ? downchirp_ : upchirp_;
  const cfloat* phasor = ws.phasor(cfo_cycles, sps);
  const dsp::FftBackend& be = dsp::active_fft_backend();
  for (std::size_t b = 0; b < count; ++b) {
    be.dechirp_rotate(windows.data() + b * sps, sps, ref.data(), phasor,
                      out.data() + b * sps);
  }
  dsp::fft_plan(sps).forward_batch(out, count);
}

std::vector<cfloat> Demodulator::dechirp_fft(std::span<const cfloat> window,
                                             double cfo_cycles, bool up) const {
  std::vector<cfloat> buf(p_.sps());
  dechirp_fft_into(window, cfo_cycles, up, scratch(), buf);
  return buf;
}

void Demodulator::fold(std::span<const cfloat> spectrum, SignalVector& out) const {
  const std::size_t n = p_.n_bins();
  if (spectrum.size() != p_.sps()) {
    throw std::invalid_argument("fold: spectrum length must be sps");
  }
  if (out.size() != n) out.resize(n);
  const std::size_t image = p_.osf == 1 ? 0 : n * (p_.osf - 1);
  dsp::active_fft_backend().mag_fold(spectrum.data(), n, image, out.data());
}

double Demodulator::folded_power_at(std::span<const cfloat> spectrum,
                                    std::size_t bin) const {
  const std::size_t n = p_.n_bins();
  double e = std::norm(spectrum[bin]);
  if (p_.osf > 1) e += std::norm(spectrum[bin + n * (p_.osf - 1)]);
  return e;
}

void Demodulator::signal_vector_into(std::span<const cfloat> window,
                                     double cfo_cycles, bool up, Workspace& ws,
                                     SignalVector& out) const {
  ws.reserve(p_);
  const std::span<cfloat> spec(ws.spectrum_.data(), p_.sps());
  dechirp_fft_into(window, cfo_cycles, up, ws, spec);
  fold(spec, out);
}

SignalVector Demodulator::signal_vector(std::span<const cfloat> window,
                                        double cfo_cycles, bool up) const {
  SignalVector sv;
  signal_vector_into(window, cfo_cycles, up, scratch(), sv);
  return sv;
}

std::size_t Demodulator::argmax(std::span<const float> sv) {
  return static_cast<std::size_t>(
      std::max_element(sv.begin(), sv.end()) - sv.begin());
}

std::uint32_t Demodulator::demod_value(std::span<const cfloat> window,
                                       double cfo_cycles, Workspace& ws) const {
  return p_.value_for_shift(demod_bin(window, cfo_cycles, ws));
}

std::uint32_t Demodulator::demod_bin(std::span<const cfloat> window,
                                     double cfo_cycles, Workspace& ws) const {
  signal_vector_into(window, cfo_cycles, /*up=*/true, ws, ws.sv_);
  return static_cast<std::uint32_t>(argmax(ws.sv_));
}

std::uint32_t Demodulator::demod_value(std::span<const cfloat> window,
                                       double cfo_cycles) const {
  return demod_value(window, cfo_cycles, scratch());
}

}  // namespace tnb::lora
