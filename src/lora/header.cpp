#include "lora/header.hpp"

#include <stdexcept>

#include "lora/crc.hpp"
#include "lora/hamming.hpp"
#include "lora/interleaver.hpp"

namespace tnb::lora {

std::vector<std::uint8_t> header_to_nibbles(const Header& h, unsigned sf) {
  // 5 header nibbles per block: the SF5 floor is exactly enough rows.
  if (sf < 5) throw std::invalid_argument("header_to_nibbles: SF too small");
  if (h.cr < 1 || h.cr > 4) throw std::invalid_argument("header_to_nibbles: bad CR");
  std::vector<std::uint8_t> nibbles(sf, 0);
  const std::uint8_t checksum = header_checksum(h.payload_len, h.cr, h.has_crc);
  nibbles[0] = h.payload_len & 0x0F;
  nibbles[1] = (h.payload_len >> 4) & 0x0F;
  nibbles[2] = static_cast<std::uint8_t>((h.cr & 0x07) | (h.has_crc ? 0x08 : 0x00));
  nibbles[3] = checksum & 0x0F;
  nibbles[4] = (checksum >> 4) & 0x0F;
  return nibbles;
}

std::optional<Header> header_from_nibbles(std::span<const std::uint8_t> nibbles) {
  if (nibbles.size() < 5) return std::nullopt;
  Header h;
  h.payload_len = static_cast<std::uint8_t>((nibbles[0] & 0x0F) |
                                            ((nibbles[1] & 0x0F) << 4));
  h.cr = nibbles[2] & 0x07;
  h.has_crc = (nibbles[2] & 0x08) != 0;
  const std::uint8_t checksum = static_cast<std::uint8_t>(
      (nibbles[3] & 0x0F) | ((nibbles[4] & 0x0F) << 4));
  if (h.cr < 1 || h.cr > 4) return std::nullopt;
  if (checksum != header_checksum(h.payload_len, h.cr, h.has_crc)) {
    return std::nullopt;
  }
  // Padding nibbles must be zero; a nonzero one indicates corruption the
  // checksum did not cover.
  for (std::size_t i = 5; i < nibbles.size(); ++i) {
    if (nibbles[i] != 0) return std::nullopt;
  }
  return h;
}

std::vector<std::uint32_t> encode_header_symbols(const Params& p, const Header& h) {
  const std::vector<std::uint8_t> nibbles = header_to_nibbles(h, p.bits_per_symbol());
  std::vector<std::uint8_t> rows(p.bits_per_symbol());
  for (unsigned r = 0; r < p.bits_per_symbol(); ++r) rows[r] = encode_cr(nibbles[r], 4);
  return interleave_block(rows, p.bits_per_symbol(), 4);
}

}  // namespace tnb::lora
