#include "lora/chirp.hpp"

#include <cmath>

#include "common/math_util.hpp"

namespace tnb::lora {

double upchirp_phase(double x, std::size_t n_bins) {
  const double n = static_cast<double>(n_bins);
  return kTwoPi * (x * x / (2.0 * n) - x / 2.0);
}

cfloat eval_upchirp(double u, std::uint32_t h, std::size_t n_bins) {
  double x = u + static_cast<double>(h);
  const double n = static_cast<double>(n_bins);
  if (x >= n) x -= n;
  const double ph = upchirp_phase(x, n_bins);
  return {static_cast<float>(std::cos(ph)), static_cast<float>(std::sin(ph))};
}

cfloat eval_downchirp(double u, std::size_t n_bins) {
  return std::conj(eval_upchirp(u, 0, n_bins));
}

std::vector<cfloat> make_upchirp(const Params& p, std::uint32_t shift) {
  const std::size_t sps = p.sps();
  std::vector<cfloat> out(sps);
  for (std::size_t i = 0; i < sps; ++i) {
    out[i] = eval_upchirp(static_cast<double>(i) / p.osf, shift, p.n_bins());
  }
  return out;
}

std::vector<cfloat> make_downchirp(const Params& p) {
  const std::size_t sps = p.sps();
  std::vector<cfloat> out(sps);
  for (std::size_t i = 0; i < sps; ++i) {
    out[i] = eval_downchirp(static_cast<double>(i) / p.osf, p.n_bins());
  }
  return out;
}

}  // namespace tnb::lora
