// LoRa's (8,4) Hamming code, its punctured CR 1..3 variants, and the
// default per-codeword minimum-distance decoder.
//
// Generator matrix (paper Section 3):
//   [ 1 0 0 0 | 1 0 1 1 ]
//   [ 0 1 0 0 | 1 1 1 0 ]
//   [ 0 0 1 0 | 1 1 0 1 ]
//   [ 0 0 0 1 | 0 1 1 1 ]
// A codeword is stored LSB-first: bit (c-1) of the byte is the paper's
// column c. With CR in {2,3,4} the first CR parity bits are transmitted;
// with CR 1 the single parity bit is the checksum (XOR) of the data bits.
#pragma once

#include <array>
#include <cstdint>

namespace tnb::lora {

/// Full 8-bit codeword for a data nibble (bits 0..3 = data).
std::uint8_t hamming_encode8(std::uint8_t nibble);

/// Codeword as transmitted at coding rate `cr` (length 4+cr bits).
std::uint8_t encode_cr(std::uint8_t nibble, unsigned cr);

/// All 16 transmitted codewords at coding rate `cr`, indexed by data nibble.
const std::array<std::uint8_t, 16>& codewords(unsigned cr);

/// Minimum Hamming distance of the CR-punctured code
/// (CR1: 2, CR2: 2, CR3: 3, CR4: 4).
unsigned min_distance(unsigned cr);

/// Result of nearest-codeword decoding of one received row.
struct DefaultDecodeResult {
  std::uint8_t codeword = 0;  ///< closest valid codeword (4+cr bits)
  std::uint8_t data = 0;      ///< its data nibble
  unsigned distance = 0;      ///< Hamming distance from the received row
  bool unique = true;         ///< false if another codeword ties
};

/// The "default decoder": snaps a received row to the nearest codeword.
/// Ties are resolved toward the smallest data nibble (a deterministic stand-
/// in for the paper's "arbitrary" choice).
DefaultDecodeResult default_decode(std::uint8_t row, unsigned cr);

}  // namespace tnb::lora
