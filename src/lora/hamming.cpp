#include "lora/hamming.hpp"

#include <bit>
#include <limits>
#include <stdexcept>

namespace tnb::lora {
namespace {

constexpr std::uint8_t bit(std::uint8_t v, unsigned i) { return (v >> i) & 1u; }

std::array<std::uint8_t, 16> make_table(unsigned cr) {
  std::array<std::uint8_t, 16> t{};
  for (std::uint8_t d = 0; d < 16; ++d) t[d] = encode_cr(d, cr);
  return t;
}

}  // namespace

std::uint8_t hamming_encode8(std::uint8_t nibble) {
  const std::uint8_t d1 = bit(nibble, 0), d2 = bit(nibble, 1), d3 = bit(nibble, 2),
                     d4 = bit(nibble, 3);
  const std::uint8_t p1 = d1 ^ d2 ^ d3;
  const std::uint8_t p2 = d2 ^ d3 ^ d4;
  const std::uint8_t p3 = d1 ^ d2 ^ d4;
  const std::uint8_t p4 = d1 ^ d3 ^ d4;
  return static_cast<std::uint8_t>((nibble & 0x0F) | (p1 << 4) | (p2 << 5) |
                                   (p3 << 6) | (p4 << 7));
}

std::uint8_t encode_cr(std::uint8_t nibble, unsigned cr) {
  if (cr < 1 || cr > 4) throw std::invalid_argument("encode_cr: CR must be 1..4");
  nibble &= 0x0F;
  if (cr == 1) {
    const std::uint8_t parity = static_cast<std::uint8_t>(
        std::popcount(static_cast<unsigned>(nibble)) & 1);
    return static_cast<std::uint8_t>(nibble | (parity << 4));
  }
  const std::uint8_t full = hamming_encode8(nibble);
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << (4 + cr)) - 1u);
  return static_cast<std::uint8_t>(full & mask);
}

const std::array<std::uint8_t, 16>& codewords(unsigned cr) {
  static const std::array<std::uint8_t, 16> t1 = make_table(1);
  static const std::array<std::uint8_t, 16> t2 = make_table(2);
  static const std::array<std::uint8_t, 16> t3 = make_table(3);
  static const std::array<std::uint8_t, 16> t4 = make_table(4);
  switch (cr) {
    case 1: return t1;
    case 2: return t2;
    case 3: return t3;
    case 4: return t4;
    default: throw std::invalid_argument("codewords: CR must be 1..4");
  }
}

unsigned min_distance(unsigned cr) {
  switch (cr) {
    case 1: return 2;
    case 2: return 2;
    case 3: return 3;
    case 4: return 4;
    default: throw std::invalid_argument("min_distance: CR must be 1..4");
  }
}

DefaultDecodeResult default_decode(std::uint8_t row, unsigned cr) {
  const auto& table = codewords(cr);
  DefaultDecodeResult best;
  unsigned best_dist = std::numeric_limits<unsigned>::max();
  bool unique = true;
  for (unsigned d = 0; d < 16; ++d) {
    const unsigned dist = static_cast<unsigned>(
        std::popcount(static_cast<unsigned>(row ^ table[d])));
    if (dist < best_dist) {
      best_dist = dist;
      best.codeword = table[d];
      best.data = static_cast<std::uint8_t>(d);
      unique = true;
    } else if (dist == best_dist) {
      unique = false;
    }
  }
  best.distance = best_dist;
  best.unique = unique;
  return best;
}

}  // namespace tnb::lora
