// Diagonal block interleaver.
//
// A code block is an SF x (4+CR) binary matrix: row r is codeword r, and
// column c holds the bits carried by symbol c (paper Fig. 2). LoRa's
// diagonal interleaver additionally rotates each column by its index so a
// burst within one symbol spreads across codeword rows — but the defining
// property for BEC is preserved: one corrupted symbol corrupts exactly one
// column of the deinterleaved block.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tnb::lora {

/// Interleaves one block: `rows` holds SF codewords (each 4+cr bits,
/// LSB-first). Returns 4+cr data symbol values of SF bits each.
std::vector<std::uint32_t> interleave_block(std::span<const std::uint8_t> rows,
                                            unsigned sf, unsigned cr);

/// Inverse of interleave_block: 4+cr received symbol values -> SF rows of
/// the received block.
std::vector<std::uint8_t> deinterleave_block(
    std::span<const std::uint32_t> symbols, unsigned sf, unsigned cr);

}  // namespace tnb::lora
