// Frame assembly: application bytes <-> on-air data symbol values.
//
// Transmit chain: payload bytes -> append CRC16 -> whiten -> nibbles ->
// Hamming(CR) -> diagonal interleave per SF x (4+CR) block -> data symbol
// values. The PHY header (always CR 4) precedes the payload blocks.
// The receive chain inverts every step; `decode_payload_default` is the
// vanilla LoRaPHY path (per-row nearest-codeword decoding), while BEC
// replaces the per-block decode step in the TnB receiver.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "lora/header.hpp"
#include "lora/params.hpp"

namespace tnb::lora {

/// Nibble split of a byte sequence, low nibble first.
std::vector<std::uint8_t> bytes_to_nibbles(std::span<const std::uint8_t> bytes);

/// Inverse of bytes_to_nibbles. Trailing odd nibble is dropped.
std::vector<std::uint8_t> nibbles_to_bytes(std::span<const std::uint8_t> nibbles);

/// Number of SF-row code blocks needed for `payload_bytes` on-air bytes.
std::size_t num_payload_blocks(unsigned sf, std::size_t payload_bytes);

/// Number of payload data symbols: blocks * (4 + CR).
std::size_t num_payload_symbols(const Params& p, std::size_t payload_bytes);

/// Total data symbols of a packet (header + payload).
std::size_t num_packet_symbols(const Params& p, std::size_t payload_bytes);

/// Appends CRC16 (big-endian) to application bytes, producing the on-air
/// payload.
std::vector<std::uint8_t> assemble_payload(std::span<const std::uint8_t> app_bytes);

/// True if `payload` (>= 3 bytes) ends with a valid CRC16 of its prefix.
bool check_payload_crc(std::span<const std::uint8_t> payload);

/// Encodes the on-air payload (already CRC-suffixed) into data symbol values.
std::vector<std::uint32_t> encode_payload_symbols(
    const Params& p, std::span<const std::uint8_t> payload);

/// Full packet: header symbols followed by payload symbols.
/// `app_bytes` excludes the CRC; it is appended here.
std::vector<std::uint32_t> make_packet_symbols(
    const Params& p, std::span<const std::uint8_t> app_bytes);

/// Deinterleaves payload symbols into per-block received rows.
/// symbols.size() must be a multiple of 4+CR.
std::vector<std::vector<std::uint8_t>> payload_blocks_from_symbols(
    const Params& p, std::span<const std::uint32_t> symbols);

/// Reassembles payload bytes from decoded data nibbles (one vector of SF
/// nibbles per block), dewhitening and trimming to `payload_len`.
std::vector<std::uint8_t> payload_from_block_nibbles(
    const Params& p, std::span<const std::vector<std::uint8_t>> block_nibbles,
    std::size_t payload_len);

/// Vanilla decode of payload symbols with the default Hamming decoder.
/// Returns the payload bytes if the CRC passes, nullopt otherwise.
std::optional<std::vector<std::uint8_t>> decode_payload_default(
    const Params& p, std::span<const std::uint32_t> symbols,
    std::size_t payload_len);

/// Vanilla decode of the 8 header symbols with the default decoder.
std::optional<Header> decode_header_default(
    const Params& p, std::span<const std::uint32_t> header_symbols);

}  // namespace tnb::lora
