// Payload whitening.
//
// LoRa XORs the payload with a PN9 pseudo-noise sequence so the on-air bits
// look random regardless of payload content. Whitening is an involution:
// applying it twice restores the original bytes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tnb::lora {

/// The first `n` bytes of the PN9 whitening sequence (x^9 + x^5 + 1,
/// all-ones initial state).
std::vector<std::uint8_t> whitening_sequence(std::size_t n);

/// XORs `bytes` in place with the whitening sequence.
void whiten(std::span<std::uint8_t> bytes);

}  // namespace tnb::lora
