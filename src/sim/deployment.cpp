#include "sim/deployment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace tnb::sim {

std::vector<NodeConfig> Deployment::draw_nodes(Rng& rng) const {
  std::vector<NodeConfig> nodes(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    nodes[i].id = static_cast<std::uint16_t>(i + 1);
    if (snr_stddev_db > 0.0) {
      nodes[i].snr_db = std::clamp(rng.normal(snr_mean_db, snr_stddev_db),
                                   snr_min_db, snr_max_db);
    } else {
      nodes[i].snr_db = rng.uniform(snr_min_db, snr_max_db);
    }
    nodes[i].cfo_hz = rng.uniform(-kMaxCfoHz, kMaxCfoHz);
  }
  return nodes;
}

Deployment indoor_deployment() {
  return Deployment{.name = "Indoor",
                    .n_nodes = 19,
                    .snr_mean_db = 15.0,
                    .snr_stddev_db = 6.0,
                    .snr_min_db = -2.0,
                    .snr_max_db = 28.0};
}

Deployment outdoor1_deployment() {
  return Deployment{.name = "Outdoor 1",
                    .n_nodes = 25,
                    .snr_mean_db = 8.0,
                    .snr_stddev_db = 7.0,
                    .snr_min_db = -6.0,
                    .snr_max_db = 25.0};
}

Deployment outdoor2_deployment() {
  return Deployment{.name = "Outdoor 2",
                    .n_nodes = 25,
                    .snr_mean_db = 12.0,
                    .snr_stddev_db = 8.0,
                    .snr_min_db = -5.0,
                    .snr_max_db = 28.0};
}

Deployment etu_deployment(unsigned sf, std::size_t n_nodes) {
  Deployment d;
  d.name = "ETU";
  d.n_nodes = n_nodes;
  d.snr_stddev_db = 0.0;  // uniform draw between min and max
  if (sf >= 10) {
    d.snr_min_db = -6.0;
    d.snr_max_db = 14.0;
  } else {
    d.snr_min_db = 0.0;
    d.snr_max_db = 20.0;
  }
  return d;
}

namespace {

constexpr double kTwoPi = 6.283185307179586476925;

/// Exponential inter-arrival draw at `rate` events per second.
double exponential(Rng& rng, double rate) {
  return -std::log(1.0 - rng.uniform()) / rate;
}

std::vector<double> poisson_times(double rate, double duration, Rng& rng) {
  std::vector<double> times;
  if (rate <= 0.0) return times;
  double t = exponential(rng, rate);
  while (t < duration) {
    times.push_back(t);
    t += exponential(rng, rate);
  }
  return times;
}

std::vector<double> bursty_times(const TrafficModel& tm, double rate,
                                 double duration, Rng& rng) {
  std::vector<double> times;
  if (rate <= 0.0) return times;
  const double p_on = tm.burst_mean_s / (tm.burst_mean_s + tm.quiet_mean_s);
  const double rate_on = tm.burst_factor * rate;
  const double rate_off =
      rate * (1.0 - p_on * tm.burst_factor) / (1.0 - p_on);
  bool on = rng.uniform() < p_on;  // start in the stationary distribution
  double t = 0.0;
  while (t < duration) {
    const double dwell =
        exponential(rng, 1.0 / (on ? tm.burst_mean_s : tm.quiet_mean_s));
    const double end = std::min(t + dwell, duration);
    const double state_rate = on ? rate_on : rate_off;
    if (state_rate > 0.0) {
      double s = t + exponential(rng, state_rate);
      while (s < end) {
        times.push_back(s);
        s += exponential(rng, state_rate);
      }
    }
    t += dwell;
    on = !on;
  }
  return times;
}

std::vector<double> diurnal_times(const TrafficModel& tm, double rate,
                                  double duration, Rng& rng) {
  std::vector<double> times;
  if (rate <= 0.0) return times;
  const double period =
      tm.diurnal_period_s > 0.0 ? tm.diurnal_period_s : duration;
  const double rate_max = rate * (1.0 + tm.diurnal_depth);
  // Thinning: candidates at the peak rate, accepted with probability
  // rate(t) / rate_max. One uniform per candidate, always consumed.
  double t = exponential(rng, rate_max);
  while (t < duration) {
    const double accept =
        (1.0 + tm.diurnal_depth * std::cos(kTwoPi * t / period)) /
        (1.0 + tm.diurnal_depth);
    if (rng.uniform() < accept) times.push_back(t);
    t += exponential(rng, rate_max);
  }
  return times;
}

}  // namespace

const char* arrivals_name(Arrivals a) {
  switch (a) {
    case Arrivals::kPoisson: return "poisson";
    case Arrivals::kBursty: return "bursty";
    case Arrivals::kDiurnal: return "diurnal";
  }
  return "?";
}

void TrafficModel::validate() const {
  if (!(duty_cycle >= 0.0) || duty_cycle > 1.0) {
    throw std::invalid_argument("TrafficModel: duty_cycle must be in [0, 1]");
  }
  if (!(burst_factor >= 1.0)) {
    throw std::invalid_argument("TrafficModel: burst_factor must be >= 1");
  }
  if (!(burst_mean_s > 0.0) || !(quiet_mean_s > 0.0)) {
    throw std::invalid_argument(
        "TrafficModel: burst/quiet dwell means must be positive");
  }
  const double p_on = burst_mean_s / (burst_mean_s + quiet_mean_s);
  if (p_on * burst_factor > 1.0) {
    throw std::invalid_argument(
        "TrafficModel: burst_factor too large for the on-state fraction "
        "(the quiet-state rate would be negative)");
  }
  if (!(diurnal_depth >= 0.0) || diurnal_depth >= 1.0) {
    throw std::invalid_argument(
        "TrafficModel: diurnal_depth must be in [0, 1)");
  }
  if (!(diurnal_period_s >= 0.0)) {
    throw std::invalid_argument(
        "TrafficModel: diurnal_period_s must be >= 0");
  }
  double weight_sum = 0.0;
  for (const auto& [sf, w] : sf_weights) {
    if (sf < 5 || sf > 12) {
      throw std::invalid_argument("TrafficModel: sf_weights SF must be 5..12");
    }
    if (!(w >= 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument(
          "TrafficModel: sf_weights weights must be non-negative");
    }
    weight_sum += w;
  }
  if (!sf_weights.empty() && weight_sum <= 0.0) {
    throw std::invalid_argument(
        "TrafficModel: sf_weights needs at least one positive weight");
  }
}

TrafficModel parse_traffic(const std::string& name) {
  TrafficModel tm;
  if (name == "poisson") tm.arrivals = Arrivals::kPoisson;
  else if (name == "bursty") tm.arrivals = Arrivals::kBursty;
  else if (name == "diurnal") tm.arrivals = Arrivals::kDiurnal;
  else {
    throw std::invalid_argument("parse_traffic: unknown model '" + name +
                                "' (valid: poisson, bursty, diurnal)");
  }
  return tm;
}

std::vector<unsigned> draw_sf_assignment(const TrafficModel& tm,
                                         std::size_t n_nodes,
                                         unsigned default_sf, Rng& rng) {
  std::vector<unsigned> sf(n_nodes, default_sf);
  if (tm.sf_weights.empty()) return sf;  // no Rng draws
  double total = 0.0;
  for (const auto& [_, w] : tm.sf_weights) total += w;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    double u = rng.uniform() * total;
    for (const auto& [s, w] : tm.sf_weights) {
      u -= w;
      if (u < 0.0) {
        sf[i] = s;
        break;
      }
    }
    // Rounding may leave u barely >= 0 after the last entry; the node then
    // keeps the last listed SF.
    if (u >= 0.0) sf[i] = tm.sf_weights.back().first;
  }
  return sf;
}

TrafficDraw draw_arrivals(const TrafficModel& tm, double load_pps,
                          double duration_s, std::span<const unsigned> node_sf,
                          const std::function<double(unsigned)>& airtime_s,
                          Rng& rng) {
  tm.validate();
  if (node_sf.empty()) {
    throw std::invalid_argument("draw_arrivals: empty node population");
  }
  if (tm.duty_cycle > 0.0 && !airtime_s) {
    throw std::invalid_argument(
        "draw_arrivals: duty_cycle needs an airtime callback");
  }

  std::vector<double> times;
  switch (tm.arrivals) {
    case Arrivals::kPoisson:
      times = poisson_times(load_pps, duration_s, rng);
      break;
    case Arrivals::kBursty:
      times = bursty_times(tm, load_pps, duration_s, rng);
      break;
    case Arrivals::kDiurnal:
      times = diurnal_times(tm, load_pps, duration_s, rng);
      break;
  }

  TrafficDraw draw;
  draw.arrivals.reserve(times.size());
  const double budget = tm.duty_cycle > 0.0
                            ? tm.duty_cycle * duration_s
                            : std::numeric_limits<double>::infinity();
  std::vector<double> used(node_sf.size(), 0.0);
  for (double t : times) {
    PacketArrival a;
    a.node = rng.uniform_index(node_sf.size());
    a.start_s = t;
    a.sf = node_sf[a.node];
    const double air = airtime_s ? airtime_s(a.sf) : 0.0;
    if (used[a.node] + air > budget) {
      ++draw.duty_dropped;
      continue;
    }
    used[a.node] += air;
    draw.arrivals.push_back(a);
  }
  return draw;
}

}  // namespace tnb::sim
