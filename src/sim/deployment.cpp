#include "sim/deployment.hpp"

#include <algorithm>

namespace tnb::sim {

std::vector<NodeConfig> Deployment::draw_nodes(Rng& rng) const {
  std::vector<NodeConfig> nodes(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    nodes[i].id = static_cast<std::uint16_t>(i + 1);
    if (snr_stddev_db > 0.0) {
      nodes[i].snr_db = std::clamp(rng.normal(snr_mean_db, snr_stddev_db),
                                   snr_min_db, snr_max_db);
    } else {
      nodes[i].snr_db = rng.uniform(snr_min_db, snr_max_db);
    }
    nodes[i].cfo_hz = rng.uniform(-kMaxCfoHz, kMaxCfoHz);
  }
  return nodes;
}

Deployment indoor_deployment() {
  return Deployment{.name = "Indoor",
                    .n_nodes = 19,
                    .snr_mean_db = 15.0,
                    .snr_stddev_db = 6.0,
                    .snr_min_db = -2.0,
                    .snr_max_db = 28.0};
}

Deployment outdoor1_deployment() {
  return Deployment{.name = "Outdoor 1",
                    .n_nodes = 25,
                    .snr_mean_db = 8.0,
                    .snr_stddev_db = 7.0,
                    .snr_min_db = -6.0,
                    .snr_max_db = 25.0};
}

Deployment outdoor2_deployment() {
  return Deployment{.name = "Outdoor 2",
                    .n_nodes = 25,
                    .snr_mean_db = 12.0,
                    .snr_stddev_db = 8.0,
                    .snr_min_db = -5.0,
                    .snr_max_db = 28.0};
}

Deployment etu_deployment(unsigned sf, std::size_t n_nodes) {
  Deployment d;
  d.name = "ETU";
  d.n_nodes = n_nodes;
  d.snr_stddev_db = 0.0;  // uniform draw between min and max
  if (sf >= 10) {
    d.snr_min_db = -6.0;
    d.snr_max_db = 14.0;
  } else {
    d.snr_min_db = 0.0;
    d.snr_max_db = 20.0;
  }
  return d;
}

}  // namespace tnb::sim
