// Multi-node collided trace synthesis.
//
// Stands in for the paper's USRP captures: every node modulates real LoRa
// packets (16-byte payloads carrying node id + sequence number, exactly the
// paper's packet format), transmits them at random times at a configured
// offered load, and the builder superimposes the waveforms — per-packet CFO,
// fractional-sample timing, per-node SNR, an optional fading channel — plus
// AWGN. Ground truth is kept alongside the IQ for exact accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "channel/fading.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "impair/impairment.hpp"
#include "lora/params.hpp"
#include "sim/deployment.hpp"

namespace tnb::sim {

/// Ground truth for one transmitted packet.
struct TxPacketRecord {
  std::uint16_t node_id = 0;
  std::uint16_t seq = 0;
  std::vector<std::uint8_t> app_payload;  ///< 14 app bytes (CRC16 added on air)
  double start_sample = 0.0;              ///< fractional position in the trace
  double cfo_hz = 0.0;
  double snr_db = 0.0;
  std::size_t n_samples = 0;              ///< on-air length in receiver samples
  std::size_t n_data_symbols = 0;         ///< header + payload symbols
};

struct Trace {
  lora::Params params;
  IqBuffer iq;                          ///< antenna 0
  std::vector<IqBuffer> extra_antennas; ///< antennas 1..n-1 (receive diversity)
  std::vector<TxPacketRecord> packets;  ///< sorted by start_sample
  double noise_power = 0.0;             ///< per-sample complex noise variance
  /// Foreign-SF packets injected into the waveform by the traffic model's
  /// SF mix. They interfere but are not ground truth (the receiver under
  /// test runs at `params.sf`), so they are not in `packets` or the CSV.
  std::size_t n_foreign = 0;
  /// Arrivals dropped by the traffic model's per-node duty-cycle budget.
  std::size_t duty_dropped = 0;

  /// Spans over all antennas, for Receiver::decode_multi.
  std::vector<std::span<const cfloat>> antenna_spans() const {
    std::vector<std::span<const cfloat>> spans{iq};
    for (const IqBuffer& a : extra_antennas) spans.emplace_back(a);
    return spans;
  }
};

struct TraceOptions {
  double duration_s = 5.0;
  double load_pps = 10.0;              ///< total offered load, packets/second
  std::vector<NodeConfig> nodes;
  const chan::Channel* channel = nullptr;  ///< optional per-packet fading
  bool add_noise = true;
  std::size_t app_payload_bytes = 14;  ///< 4B header + 2B id + 2B seq + data
  /// Receive antennas. Each antenna sees an independent channel
  /// realization and independent noise (the paper's TnB2ant, Section 8.5).
  unsigned n_antennas = 1;
  /// LoRa implicit-header mode: packets carry no PHY header symbols; the
  /// receiver must be configured with the matching ImplicitHeader.
  bool implicit_header = false;
  /// Frame encoder override: maps an app payload to the packet's raw cyclic
  /// shifts (one per data symbol). When set it replaces the built-in paper
  /// encoding entirely — implicit_header only selects the receiver-side
  /// convention and every packet is synthesized from the returned shifts
  /// (wire::WireModulator::shifts plugs in here). All packets must encode
  /// to the same symbol count (app_payload_bytes is fixed per trace).
  std::function<std::vector<std::uint32_t>(std::span<const std::uint8_t>)>
      shift_encoder;
  /// Event-arrival traffic model replacing the flat even-split schedule
  /// (Poisson/bursty/diurnal arrivals, duty-cycle budgets, ADR SF mix).
  /// Unset keeps the legacy schedule bit-identical.
  std::optional<TrafficModel> traffic;
  /// Ordered hardware-impairment chain (tnb::impair), applied inside
  /// build_trace: per-packet stages to each clean waveform before the
  /// channel, per-trace stages to the summed trace after noise. Zero-
  /// severity configs are dropped and draw no randomness, so an all-no-op
  /// chain is bit-identical to an empty one.
  std::vector<impair::ImpairmentConfig> impairments;
};

/// Builds one trace. All randomness comes from `rng`.
Trace build_trace(const lora::Params& params, const TraceOptions& opt, Rng& rng);

/// Builds one independent trace per channel of a multi-channel gateway
/// experiment (tnb::fleet): channel c reuses `opt` with its node ids offset
/// by c * 1000, so a decoded payload identifies the channel it was
/// transmitted on, and draws all randomness from `rng` in channel order
/// (deterministic for a fixed seed). Every trace shares `params`, and with
/// it length and sample rate — ready for fleet::mix_channels.
std::vector<Trace> build_multichannel_traces(const lora::Params& params,
                                             const TraceOptions& opt,
                                             unsigned n_channels, Rng& rng);

/// The paper's application payload layout: 4-byte app header, node id,
/// sequence number, then filler data.
std::vector<std::uint8_t> make_app_payload(std::uint16_t node_id,
                                           std::uint16_t seq,
                                           std::size_t total_bytes, Rng& rng);

/// Extracts node id / seq from a decoded app payload (inverse of
/// make_app_payload). Returns false if the payload is too short or the app
/// header magic does not match.
bool parse_app_payload(std::span<const std::uint8_t> payload,
                       std::uint16_t& node_id, std::uint16_t& seq);

}  // namespace tnb::sim
