// Repeated-run experiment orchestration.
//
// The paper repeats every (SF, CR, load) point three times ("runs") and
// averages. This module generates R independent traces of one scenario (or
// a grid of scenarios) and aggregates an arbitrary per-trace score. Runs
// can fan out across a thread pool: each run's RNG seed depends only on
// (seed, scenario index, run index) and results land in pre-sized slots,
// so `Series.values` is bit-identical for any `jobs` value.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/deployment.hpp"
#include "sim/trace_builder.hpp"

namespace tnb::sim {

/// Aggregate over repeated runs.
struct Series {
  std::vector<double> values;

  double mean() const;
  double stddev() const;  ///< sample standard deviation (n-1); 0 if n < 2
  double min() const;
  double max() const;
};

/// One experiment point: a deployment driven at a load.
struct Scenario {
  lora::Params params;
  Deployment deployment;
  double load_pps = 10.0;
  double duration_s = 2.0;
  const chan::Channel* channel = nullptr;
  unsigned n_antennas = 1;
  bool implicit_header = false;
  /// Optional traffic model and impairment chain, forwarded to
  /// TraceOptions — both deterministic per run seed, so Series stays
  /// bit-identical for any jobs count.
  std::optional<TrafficModel> traffic;
  std::vector<impair::ImpairmentConfig> impairments;
};

/// Execution options for run_repeated / run_grid.
struct RunOptions {
  /// Worker threads. 1 = sequential on the calling thread; > 1 = fan out
  /// across a pool; <= 0 = resolve from the TNB_JOBS environment variable
  /// (common::resolve_jobs). With jobs > 1 the score callback runs
  /// concurrently from several threads and must be thread-safe.
  int jobs = 1;
};

/// Per-invocation observability: wall clock of each run and of the whole
/// batch, so speedups stay measurable as the harness scales.
struct RunReport {
  int runs = 0;
  int jobs = 1;           ///< resolved worker count actually used
  double wall_s = 0.0;    ///< end-to-end wall clock of the batch
  std::vector<double> run_wall_s;  ///< per-run wall clock, run order

  /// Sum of per-run wall clocks (estimated 1-job wall clock).
  double sequential_s() const;
  /// sequential_s() / wall_s (1.0 when wall_s is 0).
  double speedup() const;
  /// One line: "runs=R jobs=J wall=1.23s speedup=3.8x".
  std::string summary() const;
};

/// Builds `runs` independent traces of `scenario` (fresh node draw and
/// traffic each run, seeds derived from `seed`) and scores each with
/// `score`. The callback receives the trace and the run index. Runs
/// sequentially; see the overload below for parallel execution.
Series run_repeated(const Scenario& scenario, int runs, std::uint64_t seed,
                    const std::function<double(const Trace&, int)>& score);

/// As above with explicit execution options. `Series.values[r]` is
/// bit-identical for every `opt.jobs`; with jobs > 1 `score` must be
/// thread-safe. `report`, when non-null, receives per-run timings.
Series run_repeated(const Scenario& scenario, int runs, std::uint64_t seed,
                    const std::function<double(const Trace&, int)>& score,
                    const RunOptions& opt, RunReport* report = nullptr);

/// Multi-scenario sweep: `runs` traces of every scenario, scored by
/// `score(trace, scenario_index, run)`. Result `[s]` is the Series of
/// scenario `s`, in run order. Scenario 0's seed derivation matches
/// run_repeated exactly, and every (scenario, run) cell is an independent
/// task, so a grid sweep saturates the pool even when `runs` is small.
std::vector<Series> run_grid(
    std::span<const Scenario> scenarios, int runs, std::uint64_t seed,
    const std::function<double(const Trace&, int, int)>& score,
    const RunOptions& opt = {}, RunReport* report = nullptr);

}  // namespace tnb::sim
