// Repeated-run experiment orchestration.
//
// The paper repeats every (SF, CR, load) point three times ("runs") and
// averages. This module generates R independent traces of one scenario and
// aggregates an arbitrary per-trace score.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/deployment.hpp"
#include "sim/trace_builder.hpp"

namespace tnb::sim {

/// Aggregate over repeated runs.
struct Series {
  std::vector<double> values;

  double mean() const;
  double stddev() const;  ///< sample standard deviation (n-1); 0 if n < 2
  double min() const;
  double max() const;
};

/// One experiment point: a deployment driven at a load.
struct Scenario {
  lora::Params params;
  Deployment deployment;
  double load_pps = 10.0;
  double duration_s = 2.0;
  const chan::Channel* channel = nullptr;
  unsigned n_antennas = 1;
  bool implicit_header = false;
};

/// Builds `runs` independent traces of `scenario` (fresh node draw and
/// traffic each run, seeds derived from `seed`) and scores each with
/// `score`. The callback receives the trace and the run index.
Series run_repeated(const Scenario& scenario, int runs, std::uint64_t seed,
                    const std::function<double(const Trace&, int)>& score);

}  // namespace tnb::sim
