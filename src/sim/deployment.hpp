// Deployment models: per-node SNR and CFO distributions.
//
// The paper's three testbeds (Indoor with 19 nodes, Outdoor 1 and Outdoor 2
// with 25 each) differ mainly in the SNR distribution of their nodes
// (Fig. 10): node SNRs span more than 20 dB within a deployment, with the
// outdoor sites reaching lower. These presets draw node populations with
// the corresponding spread; CFOs are uniform in +/-4.88 kHz, the range the
// paper also uses in simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace tnb::sim {

struct NodeConfig {
  std::uint16_t id = 0;
  double snr_db = 10.0;
  double cfo_hz = 0.0;
};

struct Deployment {
  std::string name;
  std::size_t n_nodes = 0;
  double snr_mean_db = 10.0;
  double snr_stddev_db = 6.0;
  double snr_min_db = -6.0;
  double snr_max_db = 28.0;

  /// Draws the node population (ids 1..n) for one experiment run.
  std::vector<NodeConfig> draw_nodes(Rng& rng) const;
};

/// Maximum CFO magnitude used when drawing node oscillators (paper 8.5).
inline constexpr double kMaxCfoHz = 4880.0;

Deployment indoor_deployment();
Deployment outdoor1_deployment();
Deployment outdoor2_deployment();

/// Uniform SNR deployment for the ETU simulations: SNR ranges are
/// [0, 20] dB for SF 8 and [-6, 14] dB for SF 10 (paper Section 8.5).
Deployment etu_deployment(unsigned sf, std::size_t n_nodes = 25);

}  // namespace tnb::sim
