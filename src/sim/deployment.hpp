// Deployment models: per-node SNR and CFO distributions.
//
// The paper's three testbeds (Indoor with 19 nodes, Outdoor 1 and Outdoor 2
// with 25 each) differ mainly in the SNR distribution of their nodes
// (Fig. 10): node SNRs span more than 20 dB within a deployment, with the
// outdoor sites reaching lower. These presets draw node populations with
// the corresponding spread; CFOs are uniform in +/-4.88 kHz, the range the
// paper also uses in simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace tnb::sim {

struct NodeConfig {
  std::uint16_t id = 0;
  double snr_db = 10.0;
  double cfo_hz = 0.0;
};

struct Deployment {
  std::string name;
  std::size_t n_nodes = 0;
  double snr_mean_db = 10.0;
  double snr_stddev_db = 6.0;
  double snr_min_db = -6.0;
  double snr_max_db = 28.0;

  /// Draws the node population (ids 1..n) for one experiment run.
  std::vector<NodeConfig> draw_nodes(Rng& rng) const;
};

/// Maximum CFO magnitude used when drawing node oscillators (paper 8.5).
inline constexpr double kMaxCfoHz = 4880.0;

Deployment indoor_deployment();
Deployment outdoor1_deployment();
Deployment outdoor2_deployment();

/// Uniform SNR deployment for the ETU simulations: SNR ranges are
/// [0, 20] dB for SF 8 and [-6, 14] dB for SF 10 (paper Section 8.5).
Deployment etu_deployment(unsigned sf, std::size_t n_nodes = 25);

// ---------------------------------------------------------------------------
// Network-scale traffic models.
//
// The builder's legacy schedule splits load_pps * duration packets evenly
// across nodes at uniform start times. A TrafficModel replaces that with
// event arrivals the way a real LoRaWAN network offers load: Poisson
// arrivals, MMPP-2 bursty traffic (alternating burst/quiet states with
// exponentially distributed dwell times — index of dispersion > 1), or
// diurnally shaped load (a non-homogeneous Poisson process thinned against
// a cosine rate profile). On top of the arrival process it models per-node
// regulatory duty-cycle budgets and an ADR-like spreading-factor mix:
// nodes assigned a foreign SF still transmit (their packets are injected
// into the waveform as interference) but are not part of the trace's
// same-SF ground truth.

enum class Arrivals {
  kPoisson,  ///< homogeneous Poisson process at load_pps
  kBursty,   ///< MMPP-2: burst/quiet states, mean rate still load_pps
  kDiurnal,  ///< cosine-shaped rate profile, mean rate still load_pps
};

const char* arrivals_name(Arrivals a);

struct TrafficModel {
  Arrivals arrivals = Arrivals::kPoisson;

  /// Per-node airtime budget as a fraction of the trace duration (EU868's
  /// 1% band would be 0.01). Arrivals beyond a node's budget are dropped
  /// (counted in TrafficDraw::duty_dropped). 0 disables the limit.
  double duty_cycle = 0.0;

  /// ADR-like SF mix: (sf, weight) pairs; each node is assigned one SF for
  /// the whole trace, drawn from this distribution. Empty keeps every node
  /// on the trace SF.
  std::vector<std::pair<unsigned, double>> sf_weights;

  // MMPP-2 parameters (kBursty). The burst-state arrival rate is
  // burst_factor * load_pps; the quiet-state rate is solved so the
  // stationary mean rate stays load_pps, which requires
  // p_on * burst_factor <= 1 with p_on = burst_mean / (burst_mean + quiet).
  double burst_factor = 4.0;   ///< rate multiplier inside a burst (>= 1)
  double burst_mean_s = 0.25;  ///< mean burst dwell time
  double quiet_mean_s = 1.0;   ///< mean quiet dwell time

  // Diurnal shaping (kDiurnal): rate(t) = load * (1 + depth * cos(2 pi t /
  // period)). period 0 means one period per trace.
  double diurnal_depth = 0.8;     ///< modulation depth in [0, 1)
  double diurnal_period_s = 0.0;  ///< 0 -> trace duration

  /// Throws std::invalid_argument on inconsistent parameters.
  void validate() const;
};

/// Parses a --traffic name (poisson | bursty | diurnal) into a model with
/// default parameters. Throws std::invalid_argument on unknown names.
TrafficModel parse_traffic(const std::string& name);

/// One scheduled transmission.
struct PacketArrival {
  std::size_t node = 0;  ///< index into the node population
  double start_s = 0.0;  ///< transmission start, seconds from trace start
  unsigned sf = 0;       ///< the transmitting node's assigned SF
};

struct TrafficDraw {
  std::vector<PacketArrival> arrivals;  ///< time-sorted, duty-filtered
  std::size_t duty_dropped = 0;         ///< arrivals over a node's budget
};

/// Assigns each node an SF from tm.sf_weights (all default_sf — with no
/// Rng draws — when the mix is empty).
std::vector<unsigned> draw_sf_assignment(const TrafficModel& tm,
                                         std::size_t n_nodes,
                                         unsigned default_sf, Rng& rng);

/// Draws the arrival schedule of one trace: event times from tm.arrivals
/// at mean rate load_pps over [0, duration_s), each assigned a uniformly
/// random node, then filtered against per-node duty-cycle budgets using
/// airtime_s(sf) (ignored when tm.duty_cycle is 0; airtime_s may be null
/// in that case). Deterministic in rng.
TrafficDraw draw_arrivals(const TrafficModel& tm, double load_pps,
                          double duration_s, std::span<const unsigned> node_sf,
                          const std::function<double(unsigned)>& airtime_s,
                          Rng& rng);

}  // namespace tnb::sim
