// Trace file I/O in the paper artifact's format.
//
// The published TnB traces are raw interleaved 16-bit integers: I, Q, I, Q,
// ... sampled at OSF x BW (1 Msps in the paper). These helpers read and
// write that format so synthetic traces can be exported and real USRP
// captures decoded.
#pragma once

#include <string>

#include "common/types.hpp"

namespace tnb::sim {

/// Writes IQ as interleaved int16 little-endian pairs. `scale` maps float
/// amplitude 1.0 to this integer value (clipped to int16 range).
/// Throws std::runtime_error on I/O failure.
void write_trace_i16(const std::string& path, const IqBuffer& iq,
                     double scale = 1024.0);

/// Reads an interleaved int16 trace; the inverse of write_trace_i16 with
/// the same scale. Throws std::runtime_error on I/O failure.
IqBuffer read_trace_i16(const std::string& path, double scale = 1024.0);

}  // namespace tnb::sim
