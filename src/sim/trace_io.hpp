// Trace file I/O in the paper artifact's format.
//
// The published TnB traces are raw interleaved 16-bit integers: I, Q, I, Q,
// ... sampled at OSF x BW (1 Msps in the paper). These helpers read and
// write that format so synthetic traces can be exported and real USRP
// captures decoded. read_trace_i16_chunk is the incremental variant used by
// the streaming sources (stream::IstreamSource / FileReplaySource): it pulls
// a bounded number of samples per call and copes with the partial reads a
// pipe delivers.
#pragma once

#include <cstdint>
#include <istream>
#include <string>

#include "common/types.hpp"

namespace tnb::sim {

/// Writes IQ as interleaved int16 little-endian pairs. `scale` maps float
/// amplitude 1.0 to this integer value (clipped to int16 range).
/// Throws std::runtime_error on I/O failure.
void write_trace_i16(const std::string& path, const IqBuffer& iq,
                     double scale = 1024.0);

/// Reads an interleaved int16 trace; the inverse of write_trace_i16 with
/// the same scale. Throws std::runtime_error on I/O failure, if the file
/// size is not a whole number of IQ pairs (a truncated or foreign capture),
/// or on a short read — the error message reports the byte offset reached.
IqBuffer read_trace_i16(const std::string& path, double scale = 1024.0);

/// Incremental read: appends up to `max_samples` IQ samples from an already
/// open int16 stream into `out` (replacing its contents). Returns
/// out.size(); 0 means a clean end of stream. Short reads from pipes are
/// retried until EOF, so the only partial result is the stream's tail.
/// Internal allocation is bounded regardless of `max_samples` (the stream
/// is read in fixed-size slices), so a hostile length cannot force a
/// multi-GiB buffer. Throws std::runtime_error on I/O errors;
/// `byte_offset`, when given, is advanced by the bytes consumed (dangling
/// tail bytes included) and used to report the failure position.
///
/// A stream ending in the middle of an IQ pair (a truncated capture, a
/// producer killed mid-sample) is handled two ways: with `truncated_tail`
/// non-null, the complete samples before the tear are returned, the flag
/// is set, and no exception is thrown — the caller decides whether a torn
/// tail is fatal. With it null, the mid-pair end throws (legacy contract).
std::size_t read_trace_i16_chunk(std::istream& in, IqBuffer& out,
                                 std::size_t max_samples,
                                 double scale = 1024.0,
                                 std::uint64_t* byte_offset = nullptr,
                                 bool* truncated_tail = nullptr);

}  // namespace tnb::sim
