#include "sim/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace tnb::sim {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Seed of run `r` of scenario `s`. For s == 0 this is byte-identical to
/// the historical run_repeated derivation, so existing results are stable;
/// scenarios are spaced by the splitmix64 golden gamma so their run-seed
/// arithmetic progressions never collide for realistic run counts.
std::uint64_t run_seed(std::uint64_t seed, int scenario, int run) {
  return seed +
         static_cast<std::uint64_t>(scenario) * 0x9E3779B97F4A7C15ull +
         static_cast<std::uint64_t>(run) * 0x9E3779B9ull;
}

Trace build_run_trace(const Scenario& scenario, std::uint64_t seed) {
  Rng rng(seed);
  TraceOptions opt;
  opt.duration_s = scenario.duration_s;
  opt.load_pps = scenario.load_pps;
  opt.nodes = scenario.deployment.draw_nodes(rng);
  opt.channel = scenario.channel;
  opt.n_antennas = scenario.n_antennas;
  opt.implicit_header = scenario.implicit_header;
  opt.traffic = scenario.traffic;
  opt.impairments = scenario.impairments;
  return build_trace(scenario.params, opt, rng);
}

}  // namespace

double Series::mean() const {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double Series::stddev() const {
  if (values.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double v : values) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values.size() - 1));
}

double Series::min() const {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double Series::max() const {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double RunReport::sequential_s() const {
  double s = 0.0;
  for (double v : run_wall_s) s += v;
  return s;
}

double RunReport::speedup() const {
  return wall_s > 0.0 ? sequential_s() / wall_s : 1.0;
}

std::string RunReport::summary() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "runs=%d jobs=%d wall=%.2fs speedup=%.2fx",
                runs, jobs, wall_s, speedup());
  return buf;
}

Series run_repeated(const Scenario& scenario, int runs, std::uint64_t seed,
                    const std::function<double(const Trace&, int)>& score) {
  return run_repeated(scenario, runs, seed, score, RunOptions{});
}

Series run_repeated(const Scenario& scenario, int runs, std::uint64_t seed,
                    const std::function<double(const Trace&, int)>& score,
                    const RunOptions& opt, RunReport* report) {
  if (runs < 1) throw std::invalid_argument("run_repeated: runs must be >= 1");
  const auto grid = run_grid(
      std::span<const Scenario>(&scenario, 1), runs, seed,
      [&score](const Trace& t, int, int run) { return score(t, run); }, opt,
      report);
  return grid.front();
}

std::vector<Series> run_grid(
    std::span<const Scenario> scenarios, int runs, std::uint64_t seed,
    const std::function<double(const Trace&, int, int)>& score,
    const RunOptions& opt, RunReport* report) {
  if (runs < 1) throw std::invalid_argument("run_grid: runs must be >= 1");
  if (scenarios.empty()) {
    throw std::invalid_argument("run_grid: scenarios must be non-empty");
  }
  const int jobs = common::resolve_jobs(opt.jobs);
  const std::size_t n_tasks = scenarios.size() * static_cast<std::size_t>(runs);

  std::vector<Series> out(scenarios.size());
  for (auto& s : out) s.values.assign(static_cast<std::size_t>(runs), 0.0);
  std::vector<double> run_wall(n_tasks, 0.0);

  const auto t0 = Clock::now();
  // One task per (scenario, run) cell; slot writes keep the output ordering
  // independent of worker scheduling.
  common::parallel_for(n_tasks, jobs, [&](std::size_t task) {
    const int s = static_cast<int>(task / static_cast<std::size_t>(runs));
    const int r = static_cast<int>(task % static_cast<std::size_t>(runs));
    const auto t_run = Clock::now();
    const Trace trace =
        build_run_trace(scenarios[static_cast<std::size_t>(s)],
                        run_seed(seed, s, r));
    out[static_cast<std::size_t>(s)].values[static_cast<std::size_t>(r)] =
        score(trace, s, r);
    run_wall[task] = seconds_since(t_run);
  });

  if (report != nullptr) {
    report->runs = static_cast<int>(n_tasks);
    report->jobs = jobs;
    report->wall_s = seconds_since(t0);
    report->run_wall_s = std::move(run_wall);
  }
  return out;
}

}  // namespace tnb::sim
