#include "sim/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tnb::sim {

double Series::mean() const {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double Series::stddev() const {
  if (values.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double v : values) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values.size() - 1));
}

double Series::min() const {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double Series::max() const {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

Series run_repeated(const Scenario& scenario, int runs, std::uint64_t seed,
                    const std::function<double(const Trace&, int)>& score) {
  if (runs < 1) throw std::invalid_argument("run_repeated: runs must be >= 1");
  Series series;
  series.values.reserve(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    Rng rng(seed + static_cast<std::uint64_t>(r) * 0x9E3779B9ull);
    TraceOptions opt;
    opt.duration_s = scenario.duration_s;
    opt.load_pps = scenario.load_pps;
    opt.nodes = scenario.deployment.draw_nodes(rng);
    opt.channel = scenario.channel;
    opt.n_antennas = scenario.n_antennas;
    opt.implicit_header = scenario.implicit_header;
    const Trace trace = build_trace(scenario.params, opt, rng);
    series.values.push_back(score(trace, r));
  }
  return series;
}

}  // namespace tnb::sim
