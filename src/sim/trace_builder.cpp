#include "sim/trace_builder.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "channel/awgn.hpp"
#include "lora/frame.hpp"
#include "lora/modulator.hpp"

namespace tnb::sim {
namespace {

constexpr std::uint8_t kAppMagic[4] = {0xC0, 0xDE, 0x10, 0x8A};

}  // namespace

std::vector<std::uint8_t> make_app_payload(std::uint16_t node_id,
                                           std::uint16_t seq,
                                           std::size_t total_bytes, Rng& rng) {
  if (total_bytes < 8) {
    throw std::invalid_argument("make_app_payload: need at least 8 bytes");
  }
  std::vector<std::uint8_t> p(total_bytes);
  p[0] = kAppMagic[0];
  p[1] = kAppMagic[1];
  p[2] = kAppMagic[2];
  p[3] = kAppMagic[3];
  p[4] = static_cast<std::uint8_t>(node_id & 0xFF);
  p[5] = static_cast<std::uint8_t>(node_id >> 8);
  p[6] = static_cast<std::uint8_t>(seq & 0xFF);
  p[7] = static_cast<std::uint8_t>(seq >> 8);
  for (std::size_t i = 8; i < total_bytes; ++i) {
    p[i] = static_cast<std::uint8_t>(rng.uniform_index(256));
  }
  return p;
}

bool parse_app_payload(std::span<const std::uint8_t> payload,
                       std::uint16_t& node_id, std::uint16_t& seq) {
  if (payload.size() < 8) return false;
  if (payload[0] != kAppMagic[0] || payload[1] != kAppMagic[1] ||
      payload[2] != kAppMagic[2] || payload[3] != kAppMagic[3]) {
    return false;
  }
  node_id = static_cast<std::uint16_t>(payload[4] | (payload[5] << 8));
  seq = static_cast<std::uint16_t>(payload[6] | (payload[7] << 8));
  return true;
}

Trace build_trace(const lora::Params& params, const TraceOptions& opt, Rng& rng) {
  params.validate();
  if (opt.nodes.empty()) {
    throw std::invalid_argument("build_trace: no nodes configured");
  }

  Trace trace;
  trace.params = params;
  trace.noise_power =
      opt.add_noise ? chan::fullband_noise_power(params.osf) : 0.0;

  if (opt.n_antennas < 1) {
    throw std::invalid_argument("build_trace: need at least one antenna");
  }
  const std::size_t trace_samples =
      static_cast<std::size_t>(opt.duration_s * params.sample_rate_hz());
  trace.iq.assign(trace_samples, cfloat{0.0f, 0.0f});
  trace.extra_antennas.assign(opt.n_antennas - 1,
                              IqBuffer(trace_samples, cfloat{0.0f, 0.0f}));
  const auto antenna_at = [&trace](unsigned a) -> IqBuffer& {
    return a == 0 ? trace.iq : trace.extra_antennas[a - 1];
  };

  // Impairment chain: validated here, no-op configs dropped. An empty (or
  // all-no-op) pipeline never touches `rng`, keeping legacy traces
  // bit-identical.
  impair::Pipeline pipeline(opt.impairments, params);

  const lora::Modulator mod(params);
  // With a custom shift encoder the symbol count comes from the encoder
  // itself (it depends only on the payload length, fixed per trace).
  const std::size_t n_data_symbols =
      opt.shift_encoder
          ? opt.shift_encoder(
                    std::vector<std::uint8_t>(opt.app_payload_bytes, 0))
                .size()
          : (opt.implicit_header
                 ? lora::num_payload_symbols(params, opt.app_payload_bytes + 2)
                 : lora::num_packet_symbols(params, opt.app_payload_bytes + 2));
  const std::size_t pkt_samples = mod.packet_samples(n_data_symbols);
  if (pkt_samples >= trace_samples) {
    throw std::invalid_argument("build_trace: trace shorter than one packet");
  }

  // Synthesizes the packet of `rec` (rec.start_sample, cfo, snr already
  // set), runs the transmitter-side impairments, and superimposes it on
  // every antenna — shared by the legacy and traffic-model schedulers.
  const auto add_packet = [&](TxPacketRecord& rec) {
    const std::size_t start_int = static_cast<std::size_t>(rec.start_sample);
    lora::WaveformOptions wopt;
    wopt.frac_delay = rec.start_sample - static_cast<double>(start_int);
    wopt.cfo_hz = rec.cfo_hz;
    wopt.amplitude = chan::amplitude_for_snr_db(rec.snr_db);
    IqBuffer clean =
        opt.shift_encoder
            ? mod.synthesize_shifts(opt.shift_encoder(rec.app_payload), wopt)
            : mod.synthesize(opt.implicit_header
                                 ? lora::encode_payload_symbols(
                                       params,
                                       lora::assemble_payload(rec.app_payload))
                                 : lora::make_packet_symbols(params,
                                                             rec.app_payload),
                             wopt);
    if (pipeline.has_per_packet()) pipeline.apply_packet(clean, rng);
    rec.n_samples = clean.size();

    for (unsigned a = 0; a < opt.n_antennas; ++a) {
      IqBuffer pkt = clean;
      if (opt.channel != nullptr) {
        // Independent realization per antenna: receive diversity.
        opt.channel->apply(pkt, params.sample_rate_hz(), rng);
      }
      IqBuffer& dst = antenna_at(a);
      const std::size_t n_add = std::min(pkt.size(), trace_samples - start_int);
      for (std::size_t i = 0; i < n_add; ++i) {
        dst[start_int + i] += pkt[i];
      }
    }
  };

  std::vector<std::uint16_t> node_seq(opt.nodes.size(), 0);
  if (opt.traffic.has_value()) {
    const TrafficModel& tm = *opt.traffic;
    const double fs = params.sample_rate_hz();
    const std::vector<unsigned> node_sf =
        draw_sf_assignment(tm, opt.nodes.size(), params.sf, rng);

    // Frame layout of the ADR mix's foreign SFs (paper coding at that SF;
    // the trace SF keeps opt.shift_encoder). Built before the arrival
    // draws — no randomness involved.
    struct ForeignSf {
      lora::Params p;
      std::size_t n_symbols = 0;
      std::size_t pkt_samples = 0;
    };
    std::map<unsigned, ForeignSf> foreign;
    for (unsigned sf : node_sf) {
      if (sf == params.sf || foreign.count(sf) != 0) continue;
      ForeignSf f;
      f.p = params;
      f.p.sf = sf;
      f.p.ldro = params.ldro && sf >= 8;
      f.n_symbols =
          opt.implicit_header
              ? lora::num_payload_symbols(f.p, opt.app_payload_bytes + 2)
              : lora::num_packet_symbols(f.p, opt.app_payload_bytes + 2);
      f.pkt_samples = lora::Modulator(f.p).packet_samples(f.n_symbols);
      foreign.emplace(sf, f);
    }

    const auto airtime = [&](unsigned sf) {
      const std::size_t n =
          sf == params.sf ? pkt_samples : foreign.at(sf).pkt_samples;
      return static_cast<double>(n) / fs;
    };
    const TrafficDraw draw = draw_arrivals(tm, opt.load_pps, opt.duration_s,
                                           node_sf, airtime, rng);
    trace.duty_dropped = draw.duty_dropped;

    for (const PacketArrival& a : draw.arrivals) {
      const NodeConfig& node = opt.nodes[a.node];
      const double start = a.start_s * fs;
      if (a.sf == params.sf) {
        // Arrivals too close to the trace end to fit are dropped (an event
        // schedule, unlike the legacy placement, does not know the packet
        // length up front).
        if (start > static_cast<double>(trace_samples) -
                        static_cast<double>(pkt_samples) - 2.0) {
          continue;
        }
        TxPacketRecord rec;
        rec.node_id = node.id;
        rec.seq = node_seq[a.node]++;
        rec.app_payload =
            make_app_payload(node.id, rec.seq, opt.app_payload_bytes, rng);
        rec.cfo_hz = node.cfo_hz;
        rec.snr_db = node.snr_db;
        rec.n_data_symbols = n_data_symbols;
        rec.start_sample = start;
        add_packet(rec);
        trace.packets.push_back(std::move(rec));
      } else {
        const ForeignSf& f = foreign.at(a.sf);
        if (start > static_cast<double>(trace_samples) -
                        static_cast<double>(f.pkt_samples) - 2.0) {
          continue;
        }
        // A real transmission from an ADR-assigned node, but invisible to
        // the same-SF ground truth: synthesized into the waveform only.
        const std::uint16_t seq = node_seq[a.node]++;
        const std::vector<std::uint8_t> payload =
            make_app_payload(node.id, seq, opt.app_payload_bytes, rng);
        const std::size_t start_int = static_cast<std::size_t>(start);
        lora::WaveformOptions wopt;
        wopt.frac_delay = start - static_cast<double>(start_int);
        wopt.cfo_hz = node.cfo_hz;
        wopt.amplitude = chan::amplitude_for_snr_db(node.snr_db);
        const lora::Modulator fmod(f.p);
        IqBuffer clean = fmod.synthesize(
            opt.implicit_header
                ? lora::encode_payload_symbols(f.p,
                                               lora::assemble_payload(payload))
                : lora::make_packet_symbols(f.p, payload),
            wopt);
        if (pipeline.has_per_packet()) pipeline.apply_packet(clean, rng);
        for (unsigned ant = 0; ant < opt.n_antennas; ++ant) {
          IqBuffer pkt = clean;
          if (opt.channel != nullptr) {
            opt.channel->apply(pkt, fs, rng);
          }
          IqBuffer& dst = antenna_at(ant);
          const std::size_t n_add =
              std::min(pkt.size(), trace_samples - start_int);
          for (std::size_t i = 0; i < n_add; ++i) {
            dst[start_int + i] += pkt[i];
          }
        }
        ++trace.n_foreign;
      }
    }
  } else {
    // Legacy schedule: total packets at the offered load, split across
    // nodes as evenly as possible (the remainder goes to the first nodes,
    // so short traces still realize the exact offered load rather than a
    // per-node quantization).
    const std::size_t total_pkts = std::max<std::size_t>(
        1, static_cast<std::size_t>(opt.load_pps * opt.duration_s + 0.5));
    const std::size_t base = total_pkts / opt.nodes.size();
    const std::size_t extra = total_pkts % opt.nodes.size();

    for (std::size_t ni = 0; ni < opt.nodes.size(); ++ni) {
      const NodeConfig& node = opt.nodes[ni];
      const std::size_t count = base + (ni < extra ? 1 : 0);
      for (std::size_t k = 0; k < count; ++k) {
        TxPacketRecord rec;
        rec.node_id = node.id;
        rec.seq = node_seq[ni]++;
        rec.app_payload = make_app_payload(node.id, rec.seq,
                                           opt.app_payload_bytes, rng);
        rec.cfo_hz = node.cfo_hz;
        rec.snr_db = node.snr_db;
        rec.n_data_symbols = n_data_symbols;
        rec.start_sample = rng.uniform(
            0.0, static_cast<double>(trace_samples - pkt_samples - 2));
        add_packet(rec);
        trace.packets.push_back(std::move(rec));
      }
    }
  }

  std::sort(trace.packets.begin(), trace.packets.end(),
            [](const TxPacketRecord& a, const TxPacketRecord& b) {
              return a.start_sample < b.start_sample;
            });

  if (opt.add_noise) {
    chan::add_awgn(trace.iq, trace.noise_power, rng);
    for (IqBuffer& a : trace.extra_antennas) {
      chan::add_awgn(a, trace.noise_power, rng);
    }
  }

  if (pipeline.has_per_trace()) {
    std::vector<IqBuffer*> antennas{&trace.iq};
    for (IqBuffer& a : trace.extra_antennas) antennas.push_back(&a);
    pipeline.apply_trace(antennas, rng);
  }
  return trace;
}

std::vector<Trace> build_multichannel_traces(const lora::Params& params,
                                             const TraceOptions& opt,
                                             unsigned n_channels, Rng& rng) {
  std::vector<Trace> traces;
  traces.reserve(n_channels);
  for (unsigned c = 0; c < n_channels; ++c) {
    TraceOptions per_channel = opt;
    for (NodeConfig& node : per_channel.nodes) {
      node.id = static_cast<std::uint16_t>(node.id + c * 1000);
    }
    traces.push_back(build_trace(params, per_channel, rng));
  }
  return traces;
}

}  // namespace tnb::sim
