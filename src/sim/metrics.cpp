#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace tnb::sim {
namespace {

/// Finds the ground-truth record matching a decoded payload, or nullptr.
const TxPacketRecord* match(const Trace& trace, const DecodedPacket& pkt) {
  std::uint16_t node = 0, seq = 0;
  if (!parse_app_payload(pkt.payload, node, seq)) return nullptr;
  for (const TxPacketRecord& rec : trace.packets) {
    if (rec.node_id == node && rec.seq == seq) {
      if (rec.app_payload.size() == pkt.payload.size() &&
          std::equal(rec.app_payload.begin(), rec.app_payload.end(),
                     pkt.payload.begin())) {
        return &rec;
      }
      return nullptr;  // id matches but content differs: corrupted decode
    }
  }
  return nullptr;
}

}  // namespace

EvalResult evaluate(const Trace& trace, std::span<const DecodedPacket> decoded) {
  EvalResult r;
  r.transmitted = trace.packets.size();
  r.decoded_raw = decoded.size();
  std::set<std::pair<std::uint16_t, std::uint16_t>> seen;
  for (const DecodedPacket& pkt : decoded) {
    const TxPacketRecord* rec = match(trace, pkt);
    if (rec == nullptr) {
      ++r.false_packets;
      continue;
    }
    seen.insert({rec->node_id, rec->seq});
  }
  r.decoded_unique = seen.size();
  r.prr = r.transmitted == 0
              ? 0.0
              : static_cast<double>(r.decoded_unique) /
                    static_cast<double>(r.transmitted);
  return r;
}

std::map<std::uint16_t, double> per_node_prr(
    const Trace& trace, std::span<const DecodedPacket> decoded) {
  std::map<std::uint16_t, std::size_t> sent;
  for (const TxPacketRecord& rec : trace.packets) sent[rec.node_id]++;

  std::map<std::uint16_t, std::set<std::uint16_t>> got;
  for (const DecodedPacket& pkt : decoded) {
    const TxPacketRecord* rec = match(trace, pkt);
    if (rec != nullptr) got[rec->node_id].insert(rec->seq);
  }

  std::map<std::uint16_t, double> prr;
  for (const auto& [node, count] : sent) {
    const auto it = got.find(node);
    const std::size_t ok = it == got.end() ? 0 : it->second.size();
    prr[node] = static_cast<double>(ok) / static_cast<double>(count);
  }
  return prr;
}

std::vector<int> medium_usage_timeline(const Trace& trace, double bin_s) {
  const double rate = trace.params.sample_rate_hz();
  const double total_s = static_cast<double>(trace.iq.size()) / rate;
  const std::size_t n_bins = static_cast<std::size_t>(std::ceil(total_s / bin_s));
  std::vector<int> usage(n_bins, 0);
  for (const TxPacketRecord& rec : trace.packets) {
    const double t0 = rec.start_sample / rate;
    const double t1 = (rec.start_sample + static_cast<double>(rec.n_samples)) / rate;
    const std::size_t b0 = static_cast<std::size_t>(t0 / bin_s);
    const std::size_t b1 =
        std::min(n_bins - 1, static_cast<std::size_t>(t1 / bin_s));
    for (std::size_t b = b0; b <= b1 && b < n_bins; ++b) usage[b]++;
  }
  return usage;
}

int collision_level(const Trace& trace, std::size_t idx) {
  const TxPacketRecord& me = trace.packets.at(idx);
  const double my_start = me.start_sample;
  const double my_end = my_start + static_cast<double>(me.n_samples);

  // Sweep the overlap interval: collision level is the max number of other
  // packets concurrently on the air at any instant of my transmission.
  struct Event {
    double t;
    int delta;
  };
  std::vector<Event> events;
  for (std::size_t i = 0; i < trace.packets.size(); ++i) {
    if (i == idx) continue;
    const TxPacketRecord& other = trace.packets[i];
    const double s = std::max(other.start_sample, my_start);
    const double e = std::min(
        other.start_sample + static_cast<double>(other.n_samples), my_end);
    if (s < e) {
      events.push_back({s, +1});
      events.push_back({e, -1});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.t < b.t || (a.t == b.t && a.delta < b.delta);
  });
  int level = 0, best = 0;
  for (const Event& ev : events) {
    level += ev.delta;
    best = std::max(best, level);
  }
  return best;
}

std::vector<std::size_t> collision_level_histogram(
    const Trace& trace, std::span<const DecodedPacket> decoded,
    std::size_t max_level) {
  std::vector<std::size_t> counts(max_level + 1, 0);
  std::set<std::pair<std::uint16_t, std::uint16_t>> seen;
  for (const DecodedPacket& pkt : decoded) {
    const TxPacketRecord* rec = match(trace, pkt);
    if (rec == nullptr) continue;
    if (!seen.insert({rec->node_id, rec->seq}).second) continue;
    const std::size_t idx = static_cast<std::size_t>(rec - trace.packets.data());
    const int lvl = collision_level(trace, idx);
    counts[std::min<std::size_t>(static_cast<std::size_t>(lvl), max_level)]++;
  }
  return counts;
}

std::vector<std::pair<double, double>> prr_by_snr(
    const Trace& trace, std::span<const DecodedPacket> decoded,
    double bucket_db) {
  std::map<std::uint16_t, double> node_snr;
  for (const TxPacketRecord& rec : trace.packets) node_snr[rec.node_id] = rec.snr_db;
  const auto prr = per_node_prr(trace, decoded);

  std::map<long, std::pair<double, std::size_t>> buckets;  // edge -> (sum, n)
  for (const auto& [node, p] : prr) {
    const long b = static_cast<long>(std::floor(node_snr[node] / bucket_db));
    buckets[b].first += p;
    buckets[b].second += 1;
  }
  std::vector<std::pair<double, double>> out;
  out.reserve(buckets.size());
  for (const auto& [b, sum_n] : buckets) {
    out.emplace_back(static_cast<double>(b) * bucket_db,
                     sum_n.first / static_cast<double>(sum_n.second));
  }
  return out;
}

}  // namespace tnb::sim
