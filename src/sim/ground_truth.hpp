// Ground-truth serialization for trace corpora.
//
// A generated trace is stored as a raw IQ file (trace_io.hpp) plus a CSV
// ground-truth file with one row per transmitted packet; tnb_eval (and any
// external tool) can then score a decoder without access to the simulator
// state. The CSV is self-describing via its header row.
#pragma once

#include <string>
#include <vector>

#include "sim/trace_builder.hpp"

namespace tnb::sim {

/// Writes packets as CSV: node_id,seq,start_sample,cfo_hz,snr_db,
/// n_samples,n_data_symbols,payload_hex. Throws std::runtime_error on I/O
/// failure.
void write_ground_truth_csv(const std::string& path,
                            const std::vector<TxPacketRecord>& packets);

/// Reads the CSV written by write_ground_truth_csv. Throws
/// std::runtime_error on I/O or parse failure.
std::vector<TxPacketRecord> read_ground_truth_csv(const std::string& path);

/// Hex helpers (lowercase, two digits per byte).
std::string bytes_to_hex(std::span<const std::uint8_t> bytes);
std::vector<std::uint8_t> hex_to_bytes(const std::string& hex);

}  // namespace tnb::sim
