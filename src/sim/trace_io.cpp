#include "sim/trace_io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace tnb::sim {
namespace {

std::int16_t clip_i16(double v) {
  return static_cast<std::int16_t>(
      std::clamp(v, -32768.0, 32767.0));
}

}  // namespace

void write_trace_i16(const std::string& path, const IqBuffer& iq,
                     double scale) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_trace_i16: cannot open " + path);
  std::vector<std::int16_t> buf(2 * iq.size());
  for (std::size_t i = 0; i < iq.size(); ++i) {
    buf[2 * i] = clip_i16(iq[i].real() * scale);
    buf[2 * i + 1] = clip_i16(iq[i].imag() * scale);
  }
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size() * sizeof(std::int16_t)));
  if (!out) throw std::runtime_error("write_trace_i16: write failed: " + path);
}

IqBuffer read_trace_i16(const std::string& path, double scale) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("read_trace_i16: cannot open " + path);
  const std::streamsize bytes = in.tellg();
  in.seekg(0);
  const std::size_t n_values =
      static_cast<std::size_t>(bytes) / sizeof(std::int16_t);
  std::vector<std::int16_t> buf(n_values);
  in.read(reinterpret_cast<char*>(buf.data()),
          static_cast<std::streamsize>(n_values * sizeof(std::int16_t)));
  if (!in) throw std::runtime_error("read_trace_i16: read failed: " + path);

  IqBuffer iq(n_values / 2);
  const float inv = static_cast<float>(1.0 / scale);
  for (std::size_t i = 0; i < iq.size(); ++i) {
    iq[i] = {buf[2 * i] * inv, buf[2 * i + 1] * inv};
  }
  return iq;
}

}  // namespace tnb::sim
