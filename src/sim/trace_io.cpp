#include "sim/trace_io.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace tnb::sim {
namespace {

constexpr std::size_t kBytesPerSample = 2 * sizeof(std::int16_t);

std::int16_t clip_i16(double v) {
  // NaN compares false against both bounds, so std::clamp would pass it
  // through and the integer cast would be undefined behaviour; map it to 0
  // (±Inf clamps to the rails as usual).
  if (std::isnan(v)) return 0;
  return static_cast<std::int16_t>(
      std::clamp(v, -32768.0, 32767.0));
}

/// Reads exactly `want` bytes unless EOF intervenes; returns bytes read.
/// Retries partial reads (pipes deliver what they have, not what was
/// asked). Throws on hard I/O errors, reporting `offset` + progress.
std::size_t read_fully(std::istream& in, char* dst, std::size_t want,
                       std::uint64_t offset, const std::string& what) {
  std::size_t got = 0;
  while (got < want) {
    in.read(dst + got, static_cast<std::streamsize>(want - got));
    got += static_cast<std::size_t>(in.gcount());
    if (in.eof()) break;
    if (!in) {
      throw std::runtime_error(what + ": read failed at byte offset " +
                               std::to_string(offset + got));
    }
  }
  return got;
}

}  // namespace

void write_trace_i16(const std::string& path, const IqBuffer& iq,
                     double scale) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_trace_i16: cannot open " + path);
  std::vector<std::int16_t> buf(2 * iq.size());
  for (std::size_t i = 0; i < iq.size(); ++i) {
    buf[2 * i] = clip_i16(iq[i].real() * scale);
    buf[2 * i + 1] = clip_i16(iq[i].imag() * scale);
  }
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size() * sizeof(std::int16_t)));
  if (!out) throw std::runtime_error("write_trace_i16: write failed: " + path);
}

IqBuffer read_trace_i16(const std::string& path, double scale) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("read_trace_i16: cannot open " + path);
  const std::streamsize bytes = in.tellg();
  if (bytes < 0) {
    // tellg() failed (unseekable special file): -1 cast to size_t would
    // sail past the pair check as a huge bogus length.
    throw std::runtime_error("read_trace_i16: " + path +
                             ": cannot determine file size");
  }
  if (static_cast<std::size_t>(bytes) % kBytesPerSample != 0) {
    throw std::runtime_error(
        "read_trace_i16: " + path + ": size " + std::to_string(bytes) +
        " B is not a whole number of int16 IQ pairs");
  }
  in.seekg(0);
  const std::size_t n_samples = static_cast<std::size_t>(bytes) / kBytesPerSample;
  std::vector<std::int16_t> buf(2 * n_samples);
  const std::size_t got =
      read_fully(in, reinterpret_cast<char*>(buf.data()),
                 static_cast<std::size_t>(bytes), 0, "read_trace_i16: " + path);
  if (got != static_cast<std::size_t>(bytes)) {
    throw std::runtime_error("read_trace_i16: " + path + ": short read at byte offset " +
                             std::to_string(got) + " of " +
                             std::to_string(bytes));
  }

  IqBuffer iq(n_samples);
  const float inv = static_cast<float>(1.0 / scale);
  for (std::size_t i = 0; i < iq.size(); ++i) {
    iq[i] = {buf[2 * i] * inv, buf[2 * i + 1] * inv};
  }
  return iq;
}

std::size_t read_trace_i16_chunk(std::istream& in, IqBuffer& out,
                                 std::size_t max_samples, double scale,
                                 std::uint64_t* byte_offset,
                                 bool* truncated_tail) {
  out.clear();
  if (truncated_tail != nullptr) *truncated_tail = false;
  if (max_samples == 0 || in.eof()) return 0;

  // Read in bounded slices: the scratch buffer never exceeds kSliceSamples
  // no matter how large the caller's max_samples is, and `2 * max_samples`
  // can no longer overflow into a short allocation. read_fully retries
  // partial pipe reads, so only the final slice can come back short.
  constexpr std::size_t kSliceSamples = std::size_t{1} << 16;
  std::vector<std::int16_t> buf;
  const float inv = static_cast<float>(1.0 / scale);
  std::uint64_t offset = byte_offset != nullptr ? *byte_offset : 0;

  while (out.size() < max_samples) {
    const std::size_t ask = std::min(kSliceSamples, max_samples - out.size());
    buf.resize(2 * ask);
    const std::size_t want = ask * kBytesPerSample;
    const std::size_t got =
        read_fully(in, reinterpret_cast<char*>(buf.data()), want, offset,
                   "read_trace_i16_chunk");
    const std::size_t n_samples = got / kBytesPerSample;
    const std::size_t dangling = got % kBytesPerSample;
    const std::size_t base = out.size();
    out.resize(base + n_samples);
    for (std::size_t i = 0; i < n_samples; ++i) {
      out[base + i] = {buf[2 * i] * inv, buf[2 * i + 1] * inv};
    }
    offset += got;
    if (dangling != 0) {
      if (byte_offset != nullptr) *byte_offset = offset;
      if (truncated_tail != nullptr) {
        *truncated_tail = true;
        return out.size();
      }
      throw std::runtime_error(
          "read_trace_i16_chunk: stream ends mid IQ pair at byte offset " +
          std::to_string(offset));
    }
    if (got < want) break;  // clean end of stream
  }
  if (byte_offset != nullptr) *byte_offset = offset;
  return out.size();
}

}  // namespace tnb::sim
