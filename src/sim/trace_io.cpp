#include "sim/trace_io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace tnb::sim {
namespace {

constexpr std::size_t kBytesPerSample = 2 * sizeof(std::int16_t);

std::int16_t clip_i16(double v) {
  return static_cast<std::int16_t>(
      std::clamp(v, -32768.0, 32767.0));
}

/// Reads exactly `want` bytes unless EOF intervenes; returns bytes read.
/// Retries partial reads (pipes deliver what they have, not what was
/// asked). Throws on hard I/O errors, reporting `offset` + progress.
std::size_t read_fully(std::istream& in, char* dst, std::size_t want,
                       std::uint64_t offset, const std::string& what) {
  std::size_t got = 0;
  while (got < want) {
    in.read(dst + got, static_cast<std::streamsize>(want - got));
    got += static_cast<std::size_t>(in.gcount());
    if (in.eof()) break;
    if (!in) {
      throw std::runtime_error(what + ": read failed at byte offset " +
                               std::to_string(offset + got));
    }
  }
  return got;
}

}  // namespace

void write_trace_i16(const std::string& path, const IqBuffer& iq,
                     double scale) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_trace_i16: cannot open " + path);
  std::vector<std::int16_t> buf(2 * iq.size());
  for (std::size_t i = 0; i < iq.size(); ++i) {
    buf[2 * i] = clip_i16(iq[i].real() * scale);
    buf[2 * i + 1] = clip_i16(iq[i].imag() * scale);
  }
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size() * sizeof(std::int16_t)));
  if (!out) throw std::runtime_error("write_trace_i16: write failed: " + path);
}

IqBuffer read_trace_i16(const std::string& path, double scale) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("read_trace_i16: cannot open " + path);
  const std::streamsize bytes = in.tellg();
  if (static_cast<std::size_t>(bytes) % kBytesPerSample != 0) {
    throw std::runtime_error(
        "read_trace_i16: " + path + ": size " + std::to_string(bytes) +
        " B is not a whole number of int16 IQ pairs");
  }
  in.seekg(0);
  const std::size_t n_samples = static_cast<std::size_t>(bytes) / kBytesPerSample;
  std::vector<std::int16_t> buf(2 * n_samples);
  const std::size_t got =
      read_fully(in, reinterpret_cast<char*>(buf.data()),
                 static_cast<std::size_t>(bytes), 0, "read_trace_i16: " + path);
  if (got != static_cast<std::size_t>(bytes)) {
    throw std::runtime_error("read_trace_i16: " + path + ": short read at byte offset " +
                             std::to_string(got) + " of " +
                             std::to_string(bytes));
  }

  IqBuffer iq(n_samples);
  const float inv = static_cast<float>(1.0 / scale);
  for (std::size_t i = 0; i < iq.size(); ++i) {
    iq[i] = {buf[2 * i] * inv, buf[2 * i + 1] * inv};
  }
  return iq;
}

std::size_t read_trace_i16_chunk(std::istream& in, IqBuffer& out,
                                 std::size_t max_samples, double scale,
                                 std::uint64_t* byte_offset) {
  out.clear();
  if (max_samples == 0 || in.eof()) return 0;

  std::vector<std::int16_t> buf(2 * max_samples);
  const std::uint64_t offset = byte_offset != nullptr ? *byte_offset : 0;
  const std::size_t got =
      read_fully(in, reinterpret_cast<char*>(buf.data()),
                 buf.size() * sizeof(std::int16_t), offset,
                 "read_trace_i16_chunk");
  if (byte_offset != nullptr) *byte_offset += got;
  if (got % kBytesPerSample != 0) {
    throw std::runtime_error(
        "read_trace_i16_chunk: stream ends mid IQ pair at byte offset " +
        std::to_string(offset + got));
  }

  const std::size_t n_samples = got / kBytesPerSample;
  out.resize(n_samples);
  const float inv = static_cast<float>(1.0 / scale);
  for (std::size_t i = 0; i < n_samples; ++i) {
    out[i] = {buf[2 * i] * inv, buf[2 * i + 1] * inv};
  }
  return n_samples;
}

}  // namespace tnb::sim
