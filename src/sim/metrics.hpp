// Evaluation metrics: throughput, PRR, medium usage, collision levels.
//
// A decoded packet is credited only if its (node id, sequence number) pair
// matches a transmitted packet and the payload bytes are identical — the
// same accounting the paper uses via the node id and sequence number
// embedded in each packet's data.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "sim/trace_builder.hpp"

namespace tnb::sim {

/// One packet produced by any of the decoders under test.
struct DecodedPacket {
  std::vector<std::uint8_t> payload;  ///< app bytes (CRC stripped)
  double start_sample = 0.0;          ///< detected packet start in the trace
  double snr_db = 0.0;                ///< receiver-estimated SNR
  double cfo_hz = 0.0;                ///< receiver-estimated CFO
};

struct EvalResult {
  std::size_t transmitted = 0;
  std::size_t decoded_unique = 0;  ///< distinct correct (node, seq) pairs
  std::size_t decoded_raw = 0;     ///< CRC-passing outputs before dedup
  std::size_t false_packets = 0;   ///< CRC-passed but no matching ground truth
  double prr = 0.0;                ///< decoded_unique / transmitted
};

/// Scores decoder output against the trace ground truth.
EvalResult evaluate(const Trace& trace, std::span<const DecodedPacket> decoded);

/// Per-node packet receiving ratio, keyed by node id.
std::map<std::uint16_t, double> per_node_prr(
    const Trace& trace, std::span<const DecodedPacket> decoded);

/// Number of packets on the air over time, one entry per `bin_s` seconds
/// (paper Fig. 11; computed from ground truth, so it is exact here rather
/// than the paper's lower bound).
std::vector<int> medium_usage_timeline(const Trace& trace, double bin_s);

/// Collision level of transmitted packet `idx`: the highest number of other
/// packets simultaneously on the air during its transmission (paper Fig. 18).
int collision_level(const Trace& trace, std::size_t idx);

/// Collision level histogram restricted to a decoded subset: counts[k] =
/// number of decoded packets whose collision level is k (last bucket
/// aggregates >= counts.size()-1).
std::vector<std::size_t> collision_level_histogram(
    const Trace& trace, std::span<const DecodedPacket> decoded,
    std::size_t max_level);

/// Per-node PRR grouped into SNR buckets (paper Fig. 17). Returns pairs of
/// (bucket lower edge, mean PRR of nodes falling in the bucket); buckets
/// with no nodes are omitted.
std::vector<std::pair<double, double>> prr_by_snr(
    const Trace& trace, std::span<const DecodedPacket> decoded,
    double bucket_db);

}  // namespace tnb::sim
