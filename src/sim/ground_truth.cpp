#include "sim/ground_truth.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tnb::sim {
namespace {

constexpr char kHeader[] =
    "node_id,seq,start_sample,cfo_hz,snr_db,n_samples,n_data_symbols,"
    "payload_hex";

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::runtime_error("hex_to_bytes: invalid hex digit");
}

}  // namespace

std::string bytes_to_hex(std::span<const std::uint8_t> bytes) {
  static const char digits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0x0F]);
  }
  return out;
}

std::vector<std::uint8_t> hex_to_bytes(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    throw std::runtime_error("hex_to_bytes: odd-length hex string");
  }
  std::vector<std::uint8_t> out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((hex_digit(hex[2 * i]) << 4) |
                                       hex_digit(hex[2 * i + 1]));
  }
  return out;
}

void write_ground_truth_csv(const std::string& path,
                            const std::vector<TxPacketRecord>& packets) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_ground_truth_csv: cannot open " + path);
  }
  out << kHeader << "\n";
  out.precision(17);
  for (const TxPacketRecord& p : packets) {
    out << p.node_id << ',' << p.seq << ',' << p.start_sample << ','
        << p.cfo_hz << ',' << p.snr_db << ',' << p.n_samples << ','
        << p.n_data_symbols << ',' << bytes_to_hex(p.app_payload) << "\n";
  }
  if (!out) {
    throw std::runtime_error("write_ground_truth_csv: write failed: " + path);
  }
}

std::vector<TxPacketRecord> read_ground_truth_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_ground_truth_csv: cannot open " + path);
  }
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    throw std::runtime_error("read_ground_truth_csv: bad header in " + path);
  }
  std::vector<TxPacketRecord> packets;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string field;
    TxPacketRecord rec;
    auto next = [&]() -> std::string {
      if (!std::getline(ss, field, ',')) {
        throw std::runtime_error("read_ground_truth_csv: truncated row");
      }
      return field;
    };
    rec.node_id = static_cast<std::uint16_t>(std::stoul(next()));
    rec.seq = static_cast<std::uint16_t>(std::stoul(next()));
    rec.start_sample = std::stod(next());
    rec.cfo_hz = std::stod(next());
    rec.snr_db = std::stod(next());
    rec.n_samples = std::stoul(next());
    rec.n_data_symbols = std::stoul(next());
    rec.app_payload = hex_to_bytes(next());
    packets.push_back(std::move(rec));
  }
  return packets;
}

}  // namespace tnb::sim
