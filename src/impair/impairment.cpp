#include "impair/impairment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "channel/awgn.hpp"
#include "lora/modulator.hpp"

namespace tnb::impair {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kTwoPi = 2.0 * kPi;

/// CFO range of injected interferers, matching sim::kMaxCfoHz (paper 8.5).
/// Duplicated here because tnb_sim links against tnb_impair, not the other
/// way around.
constexpr double kInterfererMaxCfoHz = 4880.0;

/// Data symbols of an injected interferer burst. The interferer is raw
/// chirps (no frame coding — it only has to look like a foreign-SF LoRa
/// packet to the receiver), so any fixed count works; 24 symbols is in the
/// range of the paper's 14-byte payloads.
constexpr std::size_t kInterfererSymbols = 24;

double wrap_phase(double phi) {
  if (phi > kPi) return phi - kTwoPi;
  if (phi < -kPi) return phi + kTwoPi;
  return phi;
}

/// Transmitter oscillator phase noise: a Wiener process with per-sample
/// increment variance 2*pi*linewidth/fs (the Lorentzian-linewidth random
/// walk model). Pure rotation, so sample magnitudes are preserved.
class PhaseNoise final : public Impairment {
 public:
  PhaseNoise(const ImpairmentConfig& cfg, const lora::Params& params,
             obs::Registry* registry)
      : Impairment(cfg),
        sigma_(std::sqrt(kTwoPi * cfg.linewidth_hz / params.sample_rate_hz())) {
    if (obs::Registry* r = obs::resolve(registry); r != nullptr) {
      r->gauge("tnb_impair_phase_noise_linewidth_hz",
               "Configured oscillator linewidth")
          .set(static_cast<std::int64_t>(std::llround(cfg.linewidth_hz)));
    }
  }

  void reset() override { phi_ = 0.0; }

  void process(IqBuffer& buf, Rng& rng) override {
    for (cfloat& v : buf) {
      phi_ = wrap_phase(phi_ + sigma_ * rng.normal());
      const cfloat rot(static_cast<float>(std::cos(phi_)),
                       static_cast<float>(std::sin(phi_)));
      v *= rot;
    }
  }

 private:
  double sigma_;
  double phi_ = 0.0;
};

/// Receiver IQ imbalance: y = mu*x + nu*conj(x). Deterministic, so every
/// antenna sees the same front-end mismatch.
class IqImbalance final : public Impairment {
 public:
  IqImbalance(const ImpairmentConfig& cfg, const lora::Params&,
              obs::Registry* registry)
      : Impairment(cfg) {
    const auto [mu, nu] = iq_imbalance_coeffs(cfg);
    mu_ = cfloat(static_cast<float>(mu.real()), static_cast<float>(mu.imag()));
    nu_ = cfloat(static_cast<float>(nu.real()), static_cast<float>(nu.imag()));
    if (obs::Registry* r = obs::resolve(registry); r != nullptr) {
      r->gauge("tnb_impair_iq_gain_mdb", "IQ gain mismatch, milli-dB")
          .set(static_cast<std::int64_t>(std::llround(cfg.gain_db * 1000.0)));
      r->gauge("tnb_impair_iq_phase_mdeg", "IQ phase skew, milli-degrees")
          .set(static_cast<std::int64_t>(std::llround(cfg.phase_deg * 1000.0)));
    }
  }

  void process(IqBuffer& buf, Rng&) override {
    for (cfloat& v : buf) v = mu_ * v + nu_ * std::conj(v);
  }

 private:
  cfloat mu_{1.0f, 0.0f};
  cfloat nu_{0.0f, 0.0f};
};

/// ADC quantization: each component is rounded (half-even, matching
/// nearbyint under the default rounding mode) to a code in
/// [-2^(bits-1), 2^(bits-1)-1] at step full_scale/2^(bits-1), clipping at
/// the rails. NaN components map to 0, the same convention as
/// sim::write_trace_i16. Idempotent: reconstruction levels re-quantize to
/// themselves.
class Quantizer final : public Impairment {
 public:
  Quantizer(const ImpairmentConfig& cfg, const lora::Params&,
            obs::Registry* registry)
      : Impairment(cfg),
        step_(cfg.full_scale / static_cast<double>(1u << (cfg.bits - 1))),
        lo_(-static_cast<double>(1u << (cfg.bits - 1))),
        hi_(static_cast<double>(1u << (cfg.bits - 1)) - 1.0) {
    if (obs::Registry* r = obs::resolve(registry); r != nullptr) {
      clipped_total_ = r->counter("tnb_impair_clipped_samples_total",
                                  "Samples clipped at the ADC rails");
      quantized_total_ = r->counter("tnb_impair_quantized_samples_total",
                                    "Samples pushed through the quantizer");
      r->gauge("tnb_impair_quantize_bits", "Configured ADC bit depth")
          .set(static_cast<std::int64_t>(cfg.bits));
    }
  }

  void process(IqBuffer& buf, Rng&) override {
    std::uint64_t clipped = 0;
    for (cfloat& v : buf) {
      bool clip = false;
      v = cfloat(component(v.real(), clip), component(v.imag(), clip));
      if (clip) ++clipped;
    }
    stats_.clipped += clipped;
    stats_.total += buf.size();
    clipped_total_.inc(clipped);
    quantized_total_.inc(buf.size());
  }

  ClipStats clip_stats() const override { return stats_; }

 private:
  float component(float x, bool& clip) const {
    if (std::isnan(x)) return 0.0f;
    double code = std::nearbyint(static_cast<double>(x) / step_);
    if (code < lo_) {
      code = lo_;
      clip = true;
    } else if (code > hi_) {
      code = hi_;
      clip = true;
    }
    return static_cast<float>(code * step_);
  }

  double step_;
  double lo_;
  double hi_;
  ClipStats stats_;
  obs::CounterRef clipped_total_;
  obs::CounterRef quantized_total_;
};

/// Sample-clock drift: the receiver's ADC runs ppm parts-per-million fast,
/// so the stream is read at rate 1 + ppm*1e-6 input samples per output
/// sample, with the linear interpolation rx::extract_window uses (exact
/// pass-through at integral positions — rate 1.0 is byte-exact). Carries a
/// pending window across process() calls so streaming chunks resample
/// continuously.
class ClockDrift final : public Impairment {
 public:
  ClockDrift(const ImpairmentConfig& cfg, const lora::Params&,
             obs::Registry* registry)
      : Impairment(cfg), rate_(1.0 + cfg.ppm * 1e-6) {
    if (obs::Registry* r = obs::resolve(registry); r != nullptr) {
      r->gauge("tnb_impair_clock_drift_ppb",
               "Applied sample-clock offset, parts per billion")
          .set(static_cast<std::int64_t>(std::llround(cfg.ppm * 1000.0)));
    }
  }

  void reset() override {
    pending_.clear();
    pos_ = 0.0;
  }

  void process(IqBuffer& buf, Rng&) override {
    pending_.insert(pending_.end(), buf.begin(), buf.end());
    IqBuffer out;
    out.reserve(buf.size() + 1);
    while (true) {
      const auto i0 = static_cast<std::size_t>(pos_);
      const double frac = pos_ - static_cast<double>(i0);
      if (i0 >= pending_.size()) break;
      if (frac != 0.0 && i0 + 1 >= pending_.size()) break;
      out.push_back(sample_at(i0, frac));
      pos_ += rate_;
    }
    const std::size_t consumed =
        std::min(static_cast<std::size_t>(pos_), pending_.size());
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(consumed));
    pos_ -= static_cast<double>(consumed);
    buf = std::move(out);
  }

  void flush(IqBuffer& out) override {
    out.clear();
    while (static_cast<std::size_t>(pos_) < pending_.size()) {
      const auto i0 = static_cast<std::size_t>(pos_);
      const double frac = pos_ - static_cast<double>(i0);
      out.push_back(sample_at(i0, frac));  // zero past the end
      pos_ += rate_;
    }
    pending_.clear();
    pos_ = 0.0;
  }

 private:
  cfloat sample_at(std::size_t i0, double frac) const {
    if (frac == 0.0) return pending_[i0];
    const cfloat a = pending_[i0];
    const cfloat b =
        i0 + 1 < pending_.size() ? pending_[i0 + 1] : cfloat{0.0f, 0.0f};
    const auto w1 = static_cast<float>(frac);
    return a * (1.0f - w1) + b * w1;
  }

  double rate_;
  IqBuffer pending_;
  double pos_ = 0.0;
};

/// Foreign-SF interference: raw-chirp LoRa bursts at a different spreading
/// factor (same bandwidth and OSF) injected over the trace at an offered
/// load, each with a random CFO and uniform placement. Overrides
/// process_multi so all antennas of a trace receive the same on-air
/// interferers.
class InterSf final : public Impairment {
 public:
  InterSf(const ImpairmentConfig& cfg, const lora::Params& params,
          obs::Registry* registry)
      : Impairment(cfg), mod_(foreign_params(cfg, params)) {
    if (obs::Registry* r = obs::resolve(registry); r != nullptr) {
      injected_ = r->counter("tnb_impair_injected_packets_total",
                             "Foreign-SF interferers injected");
      r->gauge("tnb_impair_inter_sf", "Spreading factor of the interferers")
          .set(static_cast<std::int64_t>(cfg.sf));
    }
  }

  void process(IqBuffer& buf, Rng& rng) override {
    IqBuffer* one = &buf;
    process_multi(std::span<IqBuffer* const>(&one, 1), rng);
  }

  void process_multi(std::span<IqBuffer* const> bufs, Rng& rng) override {
    if (bufs.empty() || bufs.front()->empty()) return;
    const std::size_t trace_samples = bufs.front()->size();
    const double fs = mod_.params().sample_rate_hz();
    const std::size_t pkt_samples = mod_.packet_samples(kInterfererSymbols);
    const auto count = static_cast<std::size_t>(
        cfg_.pps * static_cast<double>(trace_samples) / fs + 0.5);
    const double start_max =
        trace_samples > pkt_samples + 2
            ? static_cast<double>(trace_samples - pkt_samples - 2)
            : 1.0;
    std::vector<std::uint32_t> shifts(kInterfererSymbols);
    for (std::size_t k = 0; k < count; ++k) {
      const double start = rng.uniform(0.0, start_max);
      lora::WaveformOptions wopt;
      wopt.cfo_hz = rng.uniform(-kInterfererMaxCfoHz, kInterfererMaxCfoHz);
      wopt.amplitude = chan::amplitude_for_snr_db(cfg_.snr_db);
      const auto start_int = static_cast<std::size_t>(start);
      wopt.frac_delay = start - static_cast<double>(start_int);
      for (std::uint32_t& s : shifts) {
        s = static_cast<std::uint32_t>(
            rng.uniform_index(mod_.params().n_bins()));
      }
      const IqBuffer pkt = mod_.synthesize_shifts(shifts, wopt);
      for (IqBuffer* buf : bufs) {
        const std::size_t n_add =
            std::min(pkt.size(), buf->size() > start_int
                                     ? buf->size() - start_int
                                     : std::size_t{0});
        for (std::size_t i = 0; i < n_add; ++i) {
          (*buf)[start_int + i] += pkt[i];
        }
      }
      injected_.inc();
    }
  }

 private:
  static lora::Params foreign_params(const ImpairmentConfig& cfg,
                                     const lora::Params& params) {
    lora::Params fp = params;
    fp.sf = cfg.sf;
    fp.ldro = false;  // irrelevant for raw-chirp synthesis
    fp.validate();
    return fp;
  }

  lora::Modulator mod_;
  obs::CounterRef injected_;
};

/// Mobile-node Doppler: f(t) = doppler_hz * cos(2 pi t / period_s + theta0)
/// with theta0 drawn uniformly per packet (each packet catches the node at
/// a random point of its trajectory). The frequency is integrated into a
/// phase ramp, so this is a pure rotation like phase noise.
class Doppler final : public Impairment {
 public:
  Doppler(const ImpairmentConfig& cfg, const lora::Params& params,
          obs::Registry* registry)
      : Impairment(cfg),
        dt_(1.0 / params.sample_rate_hz()),
        omega_(kTwoPi / cfg.period_s) {
    if (obs::Registry* r = obs::resolve(registry); r != nullptr) {
      r->gauge("tnb_impair_doppler_peak_hz", "Configured peak Doppler shift")
          .set(static_cast<std::int64_t>(std::llround(cfg.doppler_hz)));
    }
  }

  void reset() override {
    fresh_ = true;
    phi_ = 0.0;
    t_ = 0.0;
  }

  void process(IqBuffer& buf, Rng& rng) override {
    if (fresh_) {
      theta0_ = rng.uniform(0.0, kTwoPi);
      fresh_ = false;
    }
    for (cfloat& v : buf) {
      const double f = cfg_.doppler_hz * std::cos(omega_ * t_ + theta0_);
      phi_ = wrap_phase(phi_ + kTwoPi * f * dt_);
      const cfloat rot(static_cast<float>(std::cos(phi_)),
                       static_cast<float>(std::sin(phi_)));
      v *= rot;
      t_ += dt_;
    }
  }

 private:
  double dt_;
  double omega_;
  double theta0_ = 0.0;
  double phi_ = 0.0;
  double t_ = 0.0;
  bool fresh_ = true;
};

[[noreturn]] void bad_spec(const std::string& what) {
  throw std::invalid_argument("parse_impairment: " + what + " (" +
                              impairment_cli_help() + ")");
}

}  // namespace

void Impairment::process_multi(std::span<IqBuffer* const> bufs, Rng& rng) {
  for (IqBuffer* buf : bufs) {
    reset();
    process(*buf, rng);
  }
}

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kPhaseNoise: return "phase_noise";
    case Kind::kIqImbalance: return "iq_imbalance";
    case Kind::kQuantize: return "quantize";
    case Kind::kClockDrift: return "clock_drift";
    case Kind::kInterSf: return "inter_sf";
    case Kind::kDoppler: return "doppler";
  }
  return "?";
}

bool ImpairmentConfig::is_noop() const {
  switch (kind) {
    case Kind::kPhaseNoise: return linewidth_hz == 0.0;
    case Kind::kIqImbalance: return gain_db == 0.0 && phase_deg == 0.0;
    case Kind::kQuantize: return bits == 0;
    case Kind::kClockDrift: return ppm == 0.0;
    case Kind::kInterSf: return sf == 0 || pps == 0.0;
    case Kind::kDoppler: return doppler_hz == 0.0;
  }
  return true;
}

void ImpairmentConfig::validate() const {
  const auto fail = [this](const std::string& what) {
    throw std::invalid_argument(std::string("ImpairmentConfig(") +
                                kind_name(kind) + "): " + what);
  };
  switch (kind) {
    case Kind::kPhaseNoise:
      if (!(linewidth_hz >= 0.0) || linewidth_hz > 1e7) {
        fail("linewidth_hz must be in [0, 1e7]");
      }
      break;
    case Kind::kIqImbalance:
      if (!(std::abs(gain_db) <= 40.0)) fail("|gain_db| must be <= 40");
      if (!(std::abs(phase_deg) < 90.0)) fail("|phase_deg| must be < 90");
      break;
    case Kind::kQuantize:
      if (bits > 16) fail("bits must be in [0, 16]");
      if (!(full_scale > 0.0) || !std::isfinite(full_scale) ||
          full_scale > 1e6) {
        fail("full_scale must be in (0, 1e6]");
      }
      break;
    case Kind::kClockDrift:
      if (!(std::abs(ppm) < 1e5)) fail("|ppm| must be < 1e5");
      break;
    case Kind::kInterSf:
      if (sf != 0 && (sf < 5 || sf > 12)) fail("sf must be 0 or 5..12");
      if (!(pps >= 0.0) || pps > 1e4) fail("pps must be in [0, 1e4]");
      if (!(std::abs(snr_db) <= 60.0)) fail("|snr_db| must be <= 60");
      break;
    case Kind::kDoppler:
      if (!(std::abs(doppler_hz) <= 1e6)) fail("|doppler_hz| must be <= 1e6");
      if (!(period_s > 0.0) || !std::isfinite(period_s)) {
        fail("period_s must be positive");
      }
      break;
  }
}

std::string ImpairmentConfig::to_string() const {
  char buf[160];
  switch (kind) {
    case Kind::kPhaseNoise:
      std::snprintf(buf, sizeof buf, "phase_noise,linewidth_hz=%g",
                    linewidth_hz);
      break;
    case Kind::kIqImbalance:
      std::snprintf(buf, sizeof buf, "iq_imbalance,gain_db=%g,phase_deg=%g",
                    gain_db, phase_deg);
      break;
    case Kind::kQuantize:
      std::snprintf(buf, sizeof buf, "quantize,bits=%u,full_scale=%g", bits,
                    full_scale);
      break;
    case Kind::kClockDrift:
      std::snprintf(buf, sizeof buf, "clock_drift,ppm=%g", ppm);
      break;
    case Kind::kInterSf:
      std::snprintf(buf, sizeof buf, "inter_sf,sf=%u,pps=%g,snr_db=%g", sf,
                    pps, snr_db);
      break;
    case Kind::kDoppler:
      std::snprintf(buf, sizeof buf, "doppler,hz=%g,period_s=%g", doppler_hz,
                    period_s);
      break;
  }
  return buf;
}

std::string impairment_cli_help() {
  return "valid: phase_noise,linewidth_hz=F | "
         "iq_imbalance,gain_db=F,phase_deg=F | "
         "quantize,bits=N,full_scale=F | clock_drift,ppm=F | "
         "inter_sf,sf=N,pps=F,snr_db=F | doppler,hz=F,period_s=F";
}

ImpairmentConfig parse_impairment(const std::string& spec) {
  ImpairmentConfig cfg;
  std::size_t pos = spec.find(',');
  const std::string kind = spec.substr(0, pos);
  if (kind == "phase_noise") cfg.kind = Kind::kPhaseNoise;
  else if (kind == "iq_imbalance") cfg.kind = Kind::kIqImbalance;
  else if (kind == "quantize") cfg.kind = Kind::kQuantize;
  else if (kind == "clock_drift") cfg.kind = Kind::kClockDrift;
  else if (kind == "inter_sf") cfg.kind = Kind::kInterSf;
  else if (kind == "doppler") cfg.kind = Kind::kDoppler;
  else bad_spec("unknown impairment '" + kind + "'");

  while (pos != std::string::npos) {
    const std::size_t next = spec.find(',', pos + 1);
    const std::string item =
        spec.substr(pos + 1, next == std::string::npos ? next : next - pos - 1);
    pos = next;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) bad_spec("expected key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    double num = 0.0;
    try {
      std::size_t used = 0;
      num = std::stod(val, &used);
      if (used != val.size()) throw std::invalid_argument(val);
    } catch (const std::exception&) {
      bad_spec("bad value '" + val + "' for key '" + key + "'");
    }
    const bool ok = [&] {
      switch (cfg.kind) {
        case Kind::kPhaseNoise:
          if (key == "linewidth_hz" || key == "linewidth") {
            cfg.linewidth_hz = num;
            return true;
          }
          return false;
        case Kind::kIqImbalance:
          if (key == "gain_db") { cfg.gain_db = num; return true; }
          if (key == "phase_deg") { cfg.phase_deg = num; return true; }
          return false;
        case Kind::kQuantize:
          if (key == "bits") {
            if (num < 0.0 || num != std::floor(num)) return false;
            cfg.bits = static_cast<unsigned>(num);
            return true;
          }
          if (key == "full_scale") { cfg.full_scale = num; return true; }
          return false;
        case Kind::kClockDrift:
          if (key == "ppm") { cfg.ppm = num; return true; }
          return false;
        case Kind::kInterSf:
          if (key == "sf") {
            if (num < 0.0 || num != std::floor(num)) return false;
            cfg.sf = static_cast<unsigned>(num);
            return true;
          }
          if (key == "pps") { cfg.pps = num; return true; }
          if (key == "snr_db") { cfg.snr_db = num; return true; }
          return false;
        case Kind::kDoppler:
          if (key == "hz" || key == "doppler_hz") {
            cfg.doppler_hz = num;
            return true;
          }
          if (key == "period_s") { cfg.period_s = num; return true; }
          return false;
      }
      return false;
    }();
    if (!ok) {
      bad_spec("unknown key '" + key + "' for " + kind_name(cfg.kind));
    }
  }
  cfg.validate();
  return cfg;
}

std::pair<std::complex<double>, std::complex<double>> iq_imbalance_coeffs(
    const ImpairmentConfig& cfg) {
  const double eps = std::pow(10.0, cfg.gain_db / 20.0);
  const double phi = cfg.phase_deg * kPi / 180.0;
  const std::complex<double> e_neg(std::cos(phi), -std::sin(phi));
  const std::complex<double> e_pos(std::cos(phi), std::sin(phi));
  return {0.5 * (1.0 + eps * e_neg), 0.5 * (1.0 - eps * e_pos)};
}

cfloat iq_imbalance_invert(const ImpairmentConfig& cfg, cfloat y) {
  const auto [mu, nu] = iq_imbalance_coeffs(cfg);
  const std::complex<double> yd(y.real(), y.imag());
  const double det = std::norm(mu) - std::norm(nu);
  const std::complex<double> x = (std::conj(mu) * yd - nu * std::conj(yd)) / det;
  return cfloat(static_cast<float>(x.real()), static_cast<float>(x.imag()));
}

std::unique_ptr<Impairment> make_impairment(const ImpairmentConfig& cfg,
                                            const lora::Params& params,
                                            obs::Registry* registry) {
  cfg.validate();
  switch (cfg.kind) {
    case Kind::kPhaseNoise:
      return std::make_unique<PhaseNoise>(cfg, params, registry);
    case Kind::kIqImbalance:
      return std::make_unique<IqImbalance>(cfg, params, registry);
    case Kind::kQuantize:
      if (cfg.bits == 0) {
        // A disabled quantizer has no step size; substitute the widest
        // depth so direct construction of a no-op config stays total.
        ImpairmentConfig c = cfg;
        c.bits = 16;
        return std::make_unique<Quantizer>(c, params, registry);
      }
      return std::make_unique<Quantizer>(cfg, params, registry);
    case Kind::kClockDrift:
      return std::make_unique<ClockDrift>(cfg, params, registry);
    case Kind::kInterSf: {
      ImpairmentConfig c = cfg;
      if (c.sf == 0) c.sf = params.sf;  // no-op config: keep construction total
      return std::make_unique<InterSf>(c, params, registry);
    }
    case Kind::kDoppler:
      return std::make_unique<Doppler>(cfg, params, registry);
  }
  throw std::invalid_argument("make_impairment: unknown kind");
}

Pipeline::Pipeline(std::span<const ImpairmentConfig> configs,
                   const lora::Params& params, obs::Registry* registry) {
  for (const ImpairmentConfig& cfg : configs) {
    cfg.validate();
    if (cfg.is_noop()) continue;  // zero severity: no stage, no Rng draws
    auto stage = make_impairment(cfg, params, registry);
    (cfg.per_packet() ? packet_stages_ : trace_stages_).push_back(stage.get());
    stages_.push_back(std::move(stage));
  }
}

bool Pipeline::synthesis_only() const {
  for (const auto& s : stages_) {
    if (s->config().kind == Kind::kInterSf) return true;
  }
  return false;
}

void Pipeline::apply_packet(IqBuffer& packet, Rng& rng) {
  for (Impairment* s : packet_stages_) {
    s->reset();
    s->process(packet, rng);
  }
}

void Pipeline::apply_trace(std::span<IqBuffer* const> antennas, Rng& rng) {
  if (trace_stages_.empty() || antennas.empty()) return;
  std::vector<std::size_t> orig(antennas.size());
  for (std::size_t a = 0; a < antennas.size(); ++a) {
    orig[a] = antennas[a]->size();
  }
  for (Impairment* s : trace_stages_) {
    if (s->config().kind == Kind::kInterSf) {
      s->process_multi(antennas, rng);  // same interferers on every antenna
      continue;
    }
    for (IqBuffer* buf : antennas) {
      s->reset();
      s->process(*buf, rng);
      IqBuffer tail;
      s->flush(tail);
      buf->insert(buf->end(), tail.begin(), tail.end());
    }
  }
  // The resampler changes length slightly; restore the trace contract.
  for (std::size_t a = 0; a < antennas.size(); ++a) {
    antennas[a]->resize(orig[a], cfloat{0.0f, 0.0f});
  }
}

void Pipeline::apply_trace(IqBuffer& trace, Rng& rng) {
  IqBuffer* one = &trace;
  apply_trace(std::span<IqBuffer* const>(&one, 1), rng);
}

void Pipeline::process_stream(IqBuffer& chunk, Rng& rng) {
  for (auto& s : stages_) s->process(chunk, rng);
}

void Pipeline::flush_stream(IqBuffer& tail, Rng& rng) {
  tail.clear();
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    IqBuffer t;
    stages_[i]->flush(t);
    if (t.empty()) continue;
    for (std::size_t j = i + 1; j < stages_.size(); ++j) {
      stages_[j]->process(t, rng);
    }
    tail.insert(tail.end(), t.begin(), t.end());
  }
}

ClipStats Pipeline::clip_stats() const {
  ClipStats total;
  for (const auto& s : stages_) {
    const ClipStats c = s->clip_stats();
    total.clipped += c.clipped;
    total.total += c.total;
  }
  return total;
}

}  // namespace tnb::impair
