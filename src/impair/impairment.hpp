// tnb::impair — composable hardware-impairment pipeline.
//
// The paper's traces come from USRPs; real SX127x front ends add effects
// the clean synthesizer does not model: transmitter phase noise (a Wiener
// process whose variance is set by the oscillator linewidth), receiver IQ
// imbalance (gain/phase mismatch between the I and Q arms), coarse ADC
// quantization (int12/int8 with clipping), sample-clock drift (ppm offsets
// between transmitter and receiver clocks), interference from co-located
// networks running other spreading factors, and Doppler for mobile nodes.
//
// Each effect is an Impairment stage; an ordered chain of ImpairmentConfig
// entries builds a Pipeline. Stages are split by scope:
//
//   per-packet (transmitter side) — phase_noise, doppler. Applied to each
//     clean packet waveform before the channel, with state reset per packet
//     (every transmitter has its own oscillator trajectory).
//   per-trace (receiver side)     — iq_imbalance, quantize, clock_drift,
//     inter_sf. Applied to the summed trace after noise, in config order.
//
// All randomness is drawn from the caller's Rng in a fixed order, so traces
// are bit-identical for a fixed seed regardless of thread count. A config
// whose severity is zero (is_noop()) is dropped at Pipeline construction
// and consumes no Rng draws at all — a zero-severity chain is bit-identical
// to no chain, which the equality tests and the impair-smoke CI job pin.
//
// Streaming: the same stages run chunk-by-chunk via process_stream()
// (tnb_streamd --impair) with state carried across chunks; inter_sf is
// synthesis-only (an injected packet spans chunk boundaries) and is
// rejected there — see Pipeline::synthesis_only().
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "lora/params.hpp"
#include "obs/metrics.hpp"

namespace tnb::impair {

enum class Kind {
  kPhaseNoise,   ///< transmitter oscillator phase noise (Wiener process)
  kIqImbalance,  ///< receiver I/Q gain + phase mismatch
  kQuantize,     ///< ADC quantization with clipping
  kClockDrift,   ///< sample-clock offset in ppm (fractional resampling)
  kInterSf,      ///< foreign-SF LoRa packets injected as interference
  kDoppler,      ///< sinusoidal Doppler profile for a mobile node
};

/// CLI name of a kind ("phase_noise", "iq_imbalance", ...).
const char* kind_name(Kind kind);

/// Flat parameter record for one stage. Only the fields of `kind` are
/// meaningful; the rest keep their defaults. Defaults are chosen so a
/// default-constructed config of any kind is a no-op.
struct ImpairmentConfig {
  Kind kind = Kind::kPhaseNoise;

  // phase_noise: -3 dB oscillator linewidth. Wiener increments have
  // variance 2*pi*linewidth / fs per sample.
  double linewidth_hz = 0.0;

  // iq_imbalance: amplitude mismatch between the arms in dB and the phase
  // skew in degrees. y = mu*x + nu*conj(x) with eps = 10^(gain_db/20),
  // mu = (1 + eps*e^{-j phi})/2, nu = (1 - eps*e^{j phi})/2.
  double gain_db = 0.0;
  double phase_deg = 0.0;

  // quantize: ADC bit depth (0 disables; 8 = int8, 12 = int12) and the
  // full-scale input amplitude mapped to the positive rail. The default
  // full scale of 32 matches the int16 trace format's rail at the default
  // write scale of 1024 (32767/1024), so reconstruction levels of 8-bit
  // and 12-bit codes land exactly on the int16 grid — see
  // tests/vectors/impair_vectors.txt.
  unsigned bits = 0;
  double full_scale = 32.0;

  // clock_drift: receiver sampling-rate error in parts per million. The
  // stream is resampled at rate 1 + ppm*1e-6 with the same linear
  // interpolation as rx::extract_window; ppm = 0 is byte-exact.
  double ppm = 0.0;

  // inter_sf: offered load (packets/second) of interfering LoRa packets at
  // spreading factor `sf` (same bandwidth/OSF), each at `snr_db` with a
  // random CFO. sf = 0 or pps = 0 disables.
  unsigned sf = 0;
  double pps = 0.0;
  double snr_db = 10.0;

  // doppler: peak Doppler shift in Hz and the period of the sinusoidal
  // trajectory f(t) = doppler_hz * cos(2 pi t / period_s + theta0), theta0
  // drawn uniformly per packet.
  double doppler_hz = 0.0;
  double period_s = 10.0;

  /// True for transmitter-side stages applied per packet.
  bool per_packet() const {
    return kind == Kind::kPhaseNoise || kind == Kind::kDoppler;
  }

  /// True when the configured severity is zero — the stage would be the
  /// identity. No-op configs are dropped at Pipeline construction.
  bool is_noop() const;

  /// Throws std::invalid_argument on out-of-range parameters (negative
  /// linewidth, bits > 16, |ppm| >= 1e5, inter_sf SF outside 5..12, ...).
  void validate() const;

  /// Canonical CLI spec, parseable by parse_impairment.
  std::string to_string() const;
};

/// Parses a CLI impairment spec: "kind,key=val,key=val". Keys per kind:
///   phase_noise  linewidth_hz
///   iq_imbalance gain_db phase_deg
///   quantize     bits full_scale
///   clock_drift  ppm
///   inter_sf     sf pps snr_db
///   doppler      hz period_s
/// Throws std::invalid_argument (message lists valid names) on unknown
/// kinds/keys or malformed values. The result is validate()d.
ImpairmentConfig parse_impairment(const std::string& spec);

/// One-line CLI help for --impair (kinds and their keys).
std::string impairment_cli_help();

/// IQ-imbalance mixing coefficients (mu, nu) of a config.
std::pair<std::complex<double>, std::complex<double>> iq_imbalance_coeffs(
    const ImpairmentConfig& cfg);

/// Analytic inverse of the IQ-imbalance map: recovers x from
/// y = mu*x + nu*conj(x). Exposed for the property tests.
cfloat iq_imbalance_invert(const ImpairmentConfig& cfg, cfloat y);

/// Clipping accounting of quantize stages.
struct ClipStats {
  std::uint64_t clipped = 0;  ///< samples with at least one clipped component
  std::uint64_t total = 0;    ///< samples pushed through the quantizer

  double rate() const {
    return total > 0 ? static_cast<double>(clipped) / static_cast<double>(total)
                     : 0.0;
  }
};

/// One stage of the chain. process() transforms samples in place (the
/// resampler may change the buffer length) and draws randomness only from
/// the passed Rng; flush() drains samples a stateful stage still buffers.
class Impairment {
 public:
  explicit Impairment(const ImpairmentConfig& cfg) : cfg_(cfg) {}
  virtual ~Impairment() = default;

  const ImpairmentConfig& config() const { return cfg_; }

  /// Returns per-stage state to its initial value (start of a new packet /
  /// antenna). Does not touch the Rng.
  virtual void reset() {}

  virtual void process(IqBuffer& buf, Rng& rng) = 0;

  /// Applies the stage to several buffers that must receive the *same*
  /// realization (the antennas of one trace). The default resets and
  /// processes each buffer independently, which is correct for
  /// deterministic stages; inter_sf overrides it to draw its interferers
  /// once and inject them into every antenna.
  virtual void process_multi(std::span<IqBuffer* const> bufs, Rng& rng);

  /// Emits any samples still held back (the resampler's pending window).
  virtual void flush(IqBuffer& out) { out.clear(); }

  virtual ClipStats clip_stats() const { return {}; }

 protected:
  ImpairmentConfig cfg_;
};

/// Builds a single stage (registers its obs metrics against
/// obs::resolve(registry)). The config may be a no-op: callers that want
/// zero-severity dropping use Pipeline. Throws on invalid configs.
std::unique_ptr<Impairment> make_impairment(const ImpairmentConfig& cfg,
                                            const lora::Params& params,
                                            obs::Registry* registry = nullptr);

/// An ordered impairment chain split by scope. Construction validates every
/// config, drops no-ops, and registers obs metrics; an all-no-op (or empty)
/// chain yields an empty() pipeline that never touches the Rng.
class Pipeline {
 public:
  Pipeline() = default;
  Pipeline(std::span<const ImpairmentConfig> configs,
           const lora::Params& params, obs::Registry* registry = nullptr);

  bool empty() const { return stages_.empty(); }
  bool has_per_packet() const { return !packet_stages_.empty(); }
  bool has_per_trace() const { return !trace_stages_.empty(); }

  /// True when the chain contains a stage that can only run at synthesis
  /// time (inter_sf) — tnb_streamd rejects such chains.
  bool synthesis_only() const;

  /// Transmitter-side stages, state reset per call. Never changes size.
  void apply_packet(IqBuffer& packet, Rng& rng);

  /// Receiver-side stages over all antennas of one trace, in config order.
  /// Every antenna is restored to its original length afterwards (the
  /// resampler zero-pads or truncates the tail).
  void apply_trace(std::span<IqBuffer* const> antennas, Rng& rng);
  void apply_trace(IqBuffer& trace, Rng& rng);

  /// Streaming: every stage in config order, state carried across calls
  /// (no reset). The chunk may change length. Call flush_stream at end of
  /// stream to drain resampler tails through the remaining stages.
  void process_stream(IqBuffer& chunk, Rng& rng);
  void flush_stream(IqBuffer& tail, Rng& rng);

  /// Aggregated over all quantize stages.
  ClipStats clip_stats() const;

 private:
  std::vector<std::unique_ptr<Impairment>> stages_;  ///< config order
  std::vector<Impairment*> packet_stages_;
  std::vector<Impairment*> trace_stages_;
};

}  // namespace tnb::impair
