// Chunked IQ sources feeding the streaming gateway pipeline.
//
// A ChunkSource hands out bounded chunks of baseband samples so the
// consumer never has to hold a whole capture: file replay (optionally paced
// to real time, mimicking a live radio), any std::istream (tnb_streamd
// reads stdin this way), and an in-process buffer source for tests and
// examples. All int16 sources use the paper artifact's interleaved I/Q
// trace format via sim::read_trace_i16_chunk.
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <istream>
#include <span>
#include <string>

#include "common/types.hpp"

namespace tnb::stream {

class ChunkSource {
 public:
  virtual ~ChunkSource() = default;

  /// Fills `out` (replacing its contents) with up to `max_samples` IQ
  /// samples. Returns out.size(); 0 means end of stream.
  virtual std::size_t next(IqBuffer& out, std::size_t max_samples) = 0;
};

/// In-process source over a caller-owned buffer (tests, synthetic traces).
class BufferSource final : public ChunkSource {
 public:
  explicit BufferSource(std::span<const cfloat> samples) : samples_(samples) {}

  std::size_t next(IqBuffer& out, std::size_t max_samples) override;

 private:
  std::span<const cfloat> samples_;
  std::size_t pos_ = 0;
};

/// int16-interleaved IQ from an already open stream (e.g. stdin).
///
/// Short reads and a stream torn mid IQ pair (a producer killed between
/// the I and Q halves of a sample) are not fatal: next() delivers the
/// complete samples before the tear, records the condition, and ends the
/// stream — every further next() returns 0. The gateway then decodes
/// everything that arrived instead of aborting; callers that must treat a
/// torn tail as an error check truncated_tail() at end of stream.
class IstreamSource final : public ChunkSource {
 public:
  explicit IstreamSource(std::istream& in, double scale = 1024.0)
      : in_(&in), scale_(scale) {}

  std::size_t next(IqBuffer& out, std::size_t max_samples) override;

  /// Bytes consumed so far, dangling tail bytes included.
  std::uint64_t byte_offset() const { return byte_offset_; }

  /// True once the stream ended in the middle of an IQ pair; the dangling
  /// bytes were dropped and the stream is treated as finished.
  bool truncated_tail() const { return truncated_; }

 private:
  std::istream* in_;
  double scale_;
  std::uint64_t byte_offset_ = 0;
  bool truncated_ = false;
};

/// int16 file replay. With `pace_sample_rate_hz` > 0, next() sleeps so that
/// samples are released no faster than a live front end at that rate would
/// produce them — the file replays in real time against the ring buffer's
/// backpressure, like the paper's 1 Msps USRP feed.
class FileReplaySource final : public ChunkSource {
 public:
  FileReplaySource(const std::string& path, double scale = 1024.0,
                   double pace_sample_rate_hz = 0.0);

  std::size_t next(IqBuffer& out, std::size_t max_samples) override;

  /// True once the file ended in the middle of an IQ pair (see
  /// IstreamSource::truncated_tail).
  bool truncated_tail() const { return raw_.truncated_tail(); }

 private:
  std::ifstream file_;
  IstreamSource raw_;
  double rate_;
  std::uint64_t emitted_ = 0;
  std::chrono::steady_clock::time_point start_{};
  bool started_ = false;
};

}  // namespace tnb::stream
