#include "stream/chunk_source.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "sim/trace_io.hpp"

namespace tnb::stream {

std::size_t BufferSource::next(IqBuffer& out, std::size_t max_samples) {
  out.clear();
  const std::size_t n = std::min(max_samples, samples_.size() - pos_);
  out.assign(samples_.begin() + static_cast<std::ptrdiff_t>(pos_),
             samples_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return n;
}

std::size_t IstreamSource::next(IqBuffer& out, std::size_t max_samples) {
  if (truncated_) {
    out.clear();
    return 0;
  }
  return sim::read_trace_i16_chunk(*in_, out, max_samples, scale_,
                                   &byte_offset_, &truncated_);
}

FileReplaySource::FileReplaySource(const std::string& path, double scale,
                                   double pace_sample_rate_hz)
    : file_(path, std::ios::binary),
      raw_(file_, scale),
      rate_(pace_sample_rate_hz) {
  if (!file_) {
    throw std::runtime_error("FileReplaySource: cannot open " + path);
  }
}

std::size_t FileReplaySource::next(IqBuffer& out, std::size_t max_samples) {
  const std::size_t n = raw_.next(out, max_samples);
  if (n == 0 || rate_ <= 0.0) return n;
  if (!started_) {
    start_ = std::chrono::steady_clock::now();
    started_ = true;
  }
  emitted_ += n;
  // Release point of the last sample of this chunk on the live timeline.
  const auto due =
      start_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(
                       static_cast<double>(emitted_) / rate_));
  std::this_thread::sleep_until(due);
  return n;
}

}  // namespace tnb::stream
