#include "stream/streaming_receiver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "lora/frame.hpp"
#include "obs/json.hpp"

namespace tnb::stream {
namespace {

/// The liveness detector reuses the receiver's detector configuration with
/// a more permissive validation gate: everything the decode-time detector
/// would accept is strictly contained in what this one reports, so a cut
/// declared quiet by the liveness scan is quiet for the segment decode too.
/// Extra (false) detections only delay cuts; they never break equivalence.
rx::DetectorOptions liveness_options(rx::DetectorOptions opt) {
  opt.min_validation_score = std::max(4, opt.min_validation_score - 2);
  return opt;
}

}  // namespace

std::string StreamingStats::to_json() const {
  // Shared serialization path with obs::Snapshot::to_json — schema pinned
  // by tests/test_obs.cpp (StreamingStatsJson).
  obs::JsonWriter w;
  w.begin_object();
  w.field("samples_in", samples_in);
  w.field("chunks", chunks);
  w.field("segments", segments);
  w.field("forced_cuts", forced_cuts);
  w.field("spans_refined", spans_refined);
  w.field("samples_retired", samples_retired);
  w.field("live_packets", live_packets);
  w.field("peak_live_packets", peak_live_packets);
  w.field("high_water_samples", high_water_samples);
  w.field("packets_emitted", packets_emitted);
  w.key("rx").raw(rx.to_json());
  w.end_object();
  return w.take();
}

StreamingReceiver::StreamingReceiver(lora::Params p, rx::ReceiverOptions ropt,
                                     StreamingOptions sopt)
    : p_(p),
      sopt_(sopt),
      rx_(p, ropt),
      live_detector_(p, liveness_options(ropt.detector)),
      demod_(p),
      ws_(p) {
  p_.validate();
  const std::size_t sps = p_.sps();
  // The tail guard must cover a full preamble (12.25 T) plus the detector's
  // downchirp search and step-2 shifts (~4 T more); anything shorter could
  // cut through a preamble that is not yet visible.
  sopt_.tail_guard_symbols = std::max<std::size_t>(sopt_.tail_guard_symbols, 18);
  std::size_t max_pkt = sopt_.max_packet_symbols != 0
                            ? sopt_.max_packet_symbols
                            : static_cast<std::size_t>(
                                  std::max(1, ropt.max_tracked_symbols));
  max_span_samples_ = p_.preamble_samples() + (max_pkt + 2) * sps + 2 * sps;
  tail_guard_samples_ = sopt_.tail_guard_symbols * sps;
  // The window must fit one maximum packet span between two clean cuts,
  // plus the tail guard, or every cut would be forced.
  const std::size_t min_window =
      (max_span_samples_ + tail_guard_samples_) / sps + 8;
  sopt_.window_symbols = std::max(sopt_.window_symbols, min_window);
  window_samples_ = sopt_.window_symbols * sps;
  lookback_samples_ = 8 * sps;
  forced_cut_samples_ = window_samples_ + window_samples_ / 4;

  obs::Registry* reg = obs::resolve(ropt.metrics);
  if (reg != nullptr) {
    // Per-lane fleet receivers pass {channel, sf} here; the default (no
    // labels) keeps the single-gateway exposition schema unchanged.
    const obs::Labels& ls = ropt.metric_labels;
    obs_.chunks =
        reg->counter("tnb_stream_chunks_total", "Chunks ingested", ls);
    obs_.samples_in =
        reg->counter("tnb_stream_samples_in_total", "IQ samples ingested", ls);
    obs_.segments = reg->counter("tnb_stream_segments_total",
                                 "Segment decodes (clean + forced cuts)", ls);
    obs_.forced_cuts =
        reg->counter("tnb_stream_forced_cuts_total",
                     "Cuts that may have split a packet", ls);
    obs_.spans_refined =
        reg->counter("tnb_stream_spans_refined_total",
                     "Live spans shrunk via header checksum", ls);
    obs_.samples_retired = reg->counter("tnb_stream_samples_retired_total",
                                        "Decoded-and-released samples", ls);
    obs_.packets_emitted =
        reg->counter("tnb_stream_packets_emitted_total", "Decoded packets", ls);
    obs_.live_packets = reg->gauge("tnb_stream_live_packets",
                                   "Currently tracked detections", ls);
    obs_.peak_live_packets =
        reg->gauge("tnb_stream_peak_live_packets",
                   "Peak simultaneously tracked detections", ls);
    obs_.window_samples = reg->gauge("tnb_stream_window_samples",
                                     "Assembly-window resident IQ samples", ls);
    obs_.window_high_water =
        reg->gauge("tnb_stream_window_high_water_samples",
                   "Assembly-window high-water mark", ls);
    static constexpr double kSegmentBounds[] = {1e3, 4e3,  1.6e4, 6.6e4,
                                                2.6e5, 1.1e6, 4.2e6, 1.7e7};
    obs_.segment_samples =
        reg->histogram("tnb_stream_segment_samples", kSegmentBounds,
                       "Samples per decoded segment", ls);
    obs_.segment_decode =
        reg->histogram("tnb_stream_segment_decode_seconds",
                       obs::duration_bounds(),
                       "Wall-clock seconds per segment decode", ls);
  }
}

void StreamingReceiver::push_chunk(std::span<const cfloat> chunk) {
  if (finished_) {
    throw std::logic_error("StreamingReceiver: push_chunk after finish");
  }
  ++st_.chunks;
  obs_.chunks.inc();
  // Large chunks are ingested in window-sized slices with a flush attempt
  // between them, so a whole capture handed over at once still decodes with
  // O(window) resident IQ.
  const std::size_t slice_max = std::max(p_.sps(), window_samples_ / 2);
  for (std::size_t off = 0; off < chunk.size(); off += slice_max) {
    ingest(chunk.subspan(off, std::min(slice_max, chunk.size() - off)));
  }
}

void StreamingReceiver::ingest(std::span<const cfloat> slice) {
  buf_.insert(buf_.end(), slice.begin(), slice.end());
  st_.samples_in += slice.size();
  st_.high_water_samples = std::max(st_.high_water_samples, buf_.size());
  obs_.samples_in.inc(slice.size());
  obs_.window_samples.set(static_cast<std::int64_t>(buf_.size()));
  obs_.window_high_water.update_max(static_cast<std::int64_t>(buf_.size()));
  maybe_flush(/*eof=*/false);
}

void StreamingReceiver::finish() {
  if (finished_) return;
  finished_ = true;
  maybe_flush(/*eof=*/true);
  live_.clear();
  st_.live_packets = 0;
  obs_.live_packets.set(0);
  obs_.window_samples.set(0);
}

std::size_t StreamingReceiver::consume(ChunkSource& src,
                                       std::size_t chunk_samples) {
  IqBuffer chunk;
  std::size_t total = 0;
  while (src.next(chunk, chunk_samples) > 0) {
    push_chunk(chunk);
    total += chunk.size();
  }
  finish();
  return total;
}

void StreamingReceiver::scan_new_detections() {
  const std::size_t sps = p_.sps();
  const std::size_t end_g = base_ + buf_.size();
  if (end_g <= tail_guard_samples_) return;
  const std::size_t new_frontier = align_down(end_g - tail_guard_samples_);
  if (new_frontier <= det_frontier_) return;

  // Rescan a short overlap behind the old frontier: a preamble with t0 just
  // past it needs up to two symbols of leading context (the detector's
  // step-2 shifts), and its run's first window can sit 2 T before t0.
  std::size_t scan_start = base_;
  if (det_frontier_ > lookback_samples_) {
    scan_start = std::max(scan_start, align_down(det_frontier_ - lookback_samples_));
  }
  const std::span<const cfloat> region(buf_.data() + (scan_start - base_),
                                       buf_.size() - (scan_start - base_));
  const std::vector<rx::DetectedPacket> dets = live_detector_.detect(region, ws_);
  const double t_tol = 1.25 * static_cast<double>(sps);
  for (const rx::DetectedPacket& det : dets) {
    const double t0g = static_cast<double>(scan_start) + det.t0;
    bool dup = false;
    for (const LivePacket& lp : live_) {
      if (std::abs(lp.t0 - t0g) < t_tol) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    LivePacket lp;
    lp.t0 = t0g;
    lp.cfo_cycles = det.cfo_cycles;
    lp.span_start = t0g - 2.0 * static_cast<double>(sps);
    lp.span_end = t0g + static_cast<double>(max_span_samples_);
    live_.push_back(lp);
  }
  det_frontier_ = new_frontier;
  st_.live_packets = live_.size();
  st_.peak_live_packets = std::max(st_.peak_live_packets, live_.size());
  obs_.live_packets.set(static_cast<std::int64_t>(live_.size()));
  obs_.peak_live_packets.update_max(static_cast<std::int64_t>(live_.size()));
}

void StreamingReceiver::refine_live_spans() {
  const double sps = static_cast<double>(p_.sps());
  const double preamble = static_cast<double>(p_.preamble_samples());
  const double buffered = static_cast<double>(buf_.size());
  const double base = static_cast<double>(base_);
  const std::size_t hsyms = rx_.codec().header_symbols();
  for (LivePacket& lp : live_) {
    if (lp.header_tried) continue;
    if (hsyms == 0) {
      // Implicit header: nothing on-air to refine with; keep conservative.
      lp.header_tried = true;
      continue;
    }
    const double data_start = lp.t0 + preamble - base;
    if (data_start < 0.0) {
      lp.header_tried = true;  // preamble partly retired; keep conservative
      continue;
    }
    // Wait until all header symbols (plus rounding slack) are buffered.
    if (data_start + (static_cast<double>(hsyms) + 1.0) * sps > buffered) {
      continue;
    }
    lp.header_tried = true;

    std::vector<std::uint32_t> hs(hsyms);
    for (std::size_t d = 0; d < hsyms; ++d) {
      const auto w =
          static_cast<std::size_t>(data_start + static_cast<double>(d) * sps + 0.5);
      const std::size_t len =
          std::min<std::size_t>(p_.sps(), buf_.size() - w);
      hs[d] = demod_.demod_bin(std::span<const cfloat>(buf_.data() + w, len),
                               lp.cfo_cycles, ws_);
    }
    // The codec's advisory peek: frame length in data symbols when the
    // header checksum passes on the argmax bins.
    const std::optional<std::size_t> peeked = rx_.codec().peek_frame_symbols(hs);
    if (!peeked.has_value()) continue;

    // The checksum passed: shrink the span to the real packet length plus
    // the ~10-symbol trailing context the segment decoder needs (16 T for
    // margin). Under a collision a garbled argmax header almost always
    // fails the checksum and the conservative span stands.
    const double n_data = static_cast<double>(*peeked);
    const double refined = lp.t0 + preamble + (n_data + 16.0) * sps;
    if (refined < lp.span_end) {
      lp.span_end = refined;
      ++st_.spans_refined;
      obs_.spans_refined.inc();
    }
  }
}

std::size_t StreamingReceiver::best_clean_cut(std::size_t limit) const {
  const std::size_t sps = p_.sps();
  std::size_t c = limit;
  while (c >= sps) {
    const double g = static_cast<double>(base_ + c);
    const LivePacket* blocker = nullptr;
    for (const LivePacket& lp : live_) {
      if (lp.span_start < g && lp.span_end > g) {
        blocker = &lp;
        break;
      }
    }
    if (blocker == nullptr) return c;
    // Jump to just before the blocking packet's span and retry there.
    const double s = blocker->span_start - static_cast<double>(base_);
    if (s <= static_cast<double>(sps)) return 0;
    std::size_t nc = align_down(static_cast<std::size_t>(s));
    if (nc >= c) nc = c - sps;
    c = nc;
  }
  return 0;
}

void StreamingReceiver::maybe_flush(bool eof) {
  const std::size_t sps = p_.sps();
  for (;;) {
    const std::size_t buffered = buf_.size();
    if (!eof) {
      if (buffered < window_samples_) return;
      // A failed cut search is only retried after a few more symbols of
      // signal arrived; rescans stay O(1) per sample even for tiny chunks.
      if (buffered < min_next_attempt_) return;
    } else if (buffered == 0) {
      return;
    }

    std::size_t cut = 0;
    if (eof) {
      cut = buffered;
    } else {
      scan_new_detections();
      refine_live_spans();
      // Only cut where detections are final, with a two-symbol margin so
      // the next segment's detector sees every packet fully inside it.
      const std::size_t safe_end_g = det_frontier_ > 2 * sps
                                         ? det_frontier_ - 2 * sps
                                         : 0;
      if (safe_end_g <= base_ + sps) return;
      const std::size_t limit = align_down(safe_end_g - base_);
      cut = best_clean_cut(limit);
      if (cut == 0) {
        if (buffered >= forced_cut_samples_ && limit >= sps) {
          // Conservative live spans chain past the window. Cut as late as
          // possible: spans overestimate real packets by design, so the
          // latest cut gives every started packet the most trailing
          // context (the decoder needs some 10 symbols past a packet's
          // last data symbol) and usually lands on truly quiet air.
          cut = limit;
          ++st_.forced_cuts;
          obs_.forced_cuts.inc();
        } else {
          min_next_attempt_ = buffered + 4 * sps;
          return;
        }
      }
    }
    decode_segment(cut);
    min_next_attempt_ = 0;
  }
}

void StreamingReceiver::decode_segment(std::size_t cut) {
  const std::span<const cfloat> segment(buf_.data(), cut);
  Rng rng(sopt_.rng_seed);
  rx::ReceiverStats seg_stats;
  std::vector<sim::DecodedPacket> decoded;
  {
    const obs::ScopedSpan span(obs_.segment_decode);
    decoded = rx_.decode(segment, rng, &seg_stats);
  }
  st_.rx += seg_stats;
  ++st_.segments;
  obs_.segments.inc();
  obs_.segment_samples.observe(static_cast<double>(cut));
  for (sim::DecodedPacket& pkt : decoded) {
    pkt.start_sample += static_cast<double>(base_);
    ++st_.packets_emitted;
    obs_.packets_emitted.inc();
    if (on_packet_) on_packet_(pkt);
    if (sopt_.keep_packets) packets_.push_back(std::move(pkt));
  }

  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(cut));
  base_ += cut;
  st_.samples_retired += cut;
  obs_.samples_retired.inc(cut);
  obs_.window_samples.set(static_cast<std::int64_t>(buf_.size()));

  // Retire live packets that were decoded (or gave up) inside the segment;
  // after a forced cut, also drop remnants whose preamble is gone.
  const double b = static_cast<double>(base_);
  std::erase_if(live_, [b](const LivePacket& lp) {
    return lp.span_end <= b || lp.t0 < b;
  });
  st_.live_packets = live_.size();
  obs_.live_packets.set(static_cast<std::int64_t>(live_.size()));
}

std::size_t run_pipeline(
    ChunkSource& src, IqRing& ring, StreamingReceiver& rx,
    std::size_t chunk_samples, bool backpressure,
    const std::function<void(std::size_t samples_consumed)>& on_chunk) {
  std::thread producer([&] {
    IqBuffer chunk;
    while (src.next(chunk, chunk_samples) > 0) {
      if (backpressure) {
        ring.push(chunk);
      } else {
        ring.try_push(chunk);
      }
    }
    ring.close();
  });
  IqBuffer chunk;
  std::size_t total = 0;
  while (ring.pop(chunk, chunk_samples) > 0) {
    rx.push_chunk(chunk);
    total += chunk.size();
    if (on_chunk) on_chunk(total);
  }
  producer.join();
  rx.finish();
  return total;
}

}  // namespace tnb::stream
