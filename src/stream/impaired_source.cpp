#include "stream/impaired_source.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace tnb::stream {

ImpairedSource::ImpairedSource(std::unique_ptr<ChunkSource> inner,
                               std::span<const impair::ImpairmentConfig> configs,
                               const lora::Params& params, std::uint64_t seed,
                               obs::Registry* registry)
    : inner_(std::move(inner)),
      pipeline_(configs, params, registry),
      rng_(seed) {
  if (pipeline_.synthesis_only()) {
    throw std::invalid_argument(
        "ImpairedSource: inter_sf is synthesis-only (use tnb_gen --impair)");
  }
  if (pipeline_.has_per_packet()) {
    throw std::invalid_argument(
        "ImpairedSource: phase_noise/doppler are transmitter-side, applied "
        "per packet (use tnb_gen --impair)");
  }
}

std::size_t ImpairedSource::next(IqBuffer& out, std::size_t max_samples) {
  out.clear();
  while (out.size() < max_samples) {
    if (!carry_.empty()) {
      const std::size_t take =
          std::min(max_samples - out.size(), carry_.size());
      out.insert(out.end(), carry_.begin(),
                 carry_.begin() + static_cast<std::ptrdiff_t>(take));
      carry_.erase(carry_.begin(),
                   carry_.begin() + static_cast<std::ptrdiff_t>(take));
      continue;
    }
    if (drained_) break;
    if (inner_->next(chunk_, max_samples) == 0) {
      pipeline_.flush_stream(carry_, rng_);
      drained_ = true;
      continue;
    }
    pipeline_.process_stream(chunk_, rng_);
    carry_.swap(chunk_);  // carry_ is empty here
  }
  return out.size();
}

}  // namespace tnb::stream
