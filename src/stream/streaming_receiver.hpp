// StreamingReceiver: the offline tnb::rx::Receiver as a continuous gateway
// pipeline with bounded memory (paper Fig. 3, run on a flowing stream).
//
// Chunks of arbitrary size are assembled into a sliding window that always
// starts on a symbol boundary of the global sample grid. An incremental
// detection pass (the receiver's own Detector, run with a slightly more
// permissive validation gate) tracks live packets across chunk boundaries;
// whenever the window holds at least `window_symbols` of samples, the
// stream is cut at the latest symbol-aligned point that no live packet's
// span crosses, and the finished segment is decoded with the full offline
// Receiver (detection, Thrive, BEC, two-pass). Decoded packets are emitted
// with trace-global sample positions and their samples retire immediately.
//
// Because cuts land only on quiet, symbol-aligned points, segment decoding
// is exactly equivalent to one-shot decoding of the whole trace: detection
// windows, checking points, masks and history never span a cut, so the
// decoded packet set is identical for every chunk size (see DESIGN.md
// "Streaming gateway"). When traffic never goes quiet (packets chained
// back-to-back beyond the window), a forced cut bounds memory at the cost
// of the packets straddling it — counted in StreamingStats::forced_cuts.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/detect.hpp"
#include "core/receiver.hpp"
#include "lora/demodulator.hpp"
#include "obs/stage_timer.hpp"
#include "sim/metrics.hpp"
#include "stream/chunk_source.hpp"
#include "stream/ring_buffer.hpp"

namespace tnb::stream {

struct StreamingOptions {
  /// Assembly-window flush target W, in symbols. A segment cut is attempted
  /// once this much IQ is buffered; peak resident IQ stays below 2W
  /// regardless of trace length. Must comfortably exceed one maximum packet
  /// span (preamble + max_packet_symbols) or every cut is forced; the
  /// constructor raises it to that floor when set lower. The default fits
  /// two maximum spans plus the tail guard, so moderate collision clusters
  /// still leave clean cut points.
  std::size_t window_symbols = 320;
  /// Detection lookahead, in symbols: a cut needs this much signal beyond
  /// it so preambles starting just before the cut are already visible
  /// (preamble 12.25 T + step-2 validation span, see DESIGN.md).
  std::size_t tail_guard_symbols = 20;
  /// Span bound of a live packet whose header is still unknown, in data
  /// symbols. 0 = the receiver's max_tracked_symbols. Packets longer than
  /// this may be split by a segment cut.
  std::size_t max_packet_symbols = 0;
  /// Seed of the per-segment decode RNG (BEC's sampling fallback).
  std::uint64_t rng_seed = 1;
  /// Accumulate decoded packets for packets() in addition to the callback.
  bool keep_packets = true;
};

/// Per-stage counters of one streaming run, all in samples unless noted.
struct StreamingStats {
  std::size_t samples_in = 0;
  std::size_t chunks = 0;
  std::size_t segments = 0;          ///< decode calls (clean + forced cuts)
  std::size_t forced_cuts = 0;       ///< cuts that may have split a packet
  std::size_t spans_refined = 0;     ///< live spans shrunk via header decode
  std::size_t samples_retired = 0;   ///< decoded-and-released samples
  std::size_t live_packets = 0;      ///< currently tracked detections
  std::size_t peak_live_packets = 0;
  std::size_t high_water_samples = 0;  ///< assembly-window high-water mark
  std::size_t packets_emitted = 0;
  rx::ReceiverStats rx;              ///< merged over all segments

  /// Merges another run's counters (the fleet layer aggregates its
  /// per-(channel, SF) lanes into per-channel and fleet-total objects this
  /// way). Cumulative counters add; the occupancy marks (live_packets,
  /// peak_live_packets, high_water_samples) also add, making the merged
  /// marks the conservative simultaneous-occupancy bound across lanes
  /// rather than an observed joint peak.
  StreamingStats& operator+=(const StreamingStats& o) {
    samples_in += o.samples_in;
    chunks += o.chunks;
    segments += o.segments;
    forced_cuts += o.forced_cuts;
    spans_refined += o.spans_refined;
    samples_retired += o.samples_retired;
    live_packets += o.live_packets;
    peak_live_packets += o.peak_live_packets;
    high_water_samples += o.high_water_samples;
    packets_emitted += o.packets_emitted;
    rx += o.rx;
    return *this;
  }

  /// One-line JSON (same schema as ReceiverStats::to_json for the "rx"
  /// member; documented in DESIGN.md "Streaming gateway").
  std::string to_json() const;
};

class StreamingReceiver {
 public:
  StreamingReceiver(lora::Params p, rx::ReceiverOptions ropt = {},
                    StreamingOptions sopt = {});

  using PacketCallback = std::function<void(const sim::DecodedPacket&)>;
  /// Called for every decoded packet, with start_sample in trace-global
  /// coordinates. Invoked on the thread that calls push_chunk / finish.
  void set_packet_callback(PacketCallback cb) { on_packet_ = std::move(cb); }

  /// Feeds one chunk (any size; large chunks are ingested in window-sized
  /// slices so memory stays bounded even when a whole capture arrives at
  /// once). Decodes and emits whatever segments complete.
  void push_chunk(std::span<const cfloat> chunk);

  /// End of stream: decodes everything still buffered. Idempotent.
  void finish();

  /// Pull loop: drains `src` in `chunk_samples` chunks, then finish().
  /// Returns the total samples consumed.
  std::size_t consume(ChunkSource& src, std::size_t chunk_samples);

  const StreamingStats& stats() const { return st_; }
  const lora::Params& params() const { return p_; }
  const StreamingOptions& options() const { return sopt_; }

  /// Decoded packets accumulated so far (empty if keep_packets is false).
  const std::vector<sim::DecodedPacket>& packets() const { return packets_; }

 private:
  /// One detection being tracked across chunk boundaries, global samples.
  struct LivePacket {
    double t0 = 0.0;
    double cfo_cycles = 0.0;
    double span_start = 0.0;  ///< t0 minus the leading decode margin
    double span_end = 0.0;    ///< conservative end incl. trailing margin
    bool header_tried = false;  ///< span refinement attempted once
  };

  std::size_t align_down(std::size_t x) const { return x - x % p_.sps(); }

  void ingest(std::span<const cfloat> slice);
  void maybe_flush(bool eof);
  /// Extends live-packet tracking over newly arrived samples.
  void scan_new_detections();
  /// Shrinks conservative spans to the real packet length by argmax-
  /// demodulating the (checksum-protected) PHY header once its symbols
  /// are buffered. A failed checksum keeps the conservative span.
  void refine_live_spans();
  /// Largest aligned cut c in [sps, limit] no live span crosses; 0 = none.
  std::size_t best_clean_cut(std::size_t limit) const;
  /// Decodes buf_[0, cut) as one segment, emits, retires the samples.
  void decode_segment(std::size_t cut);

  lora::Params p_;
  StreamingOptions sopt_;
  rx::Receiver rx_;
  rx::Detector live_detector_;  ///< more permissive gate; cut safety only
  lora::Demodulator demod_;     ///< header demod for span refinement
  lora::Workspace ws_;          ///< scratch for live detection + header demod

  IqBuffer buf_;                ///< assembly window
  std::size_t base_ = 0;        ///< global offset of buf_[0]; multiple of sps
  std::size_t det_frontier_ = 0;   ///< global: detections final below this
  std::size_t min_next_attempt_ = 0;  ///< buffered-size throttle on rescans
  std::vector<LivePacket> live_;
  bool finished_ = false;

  std::size_t window_samples_;
  std::size_t tail_guard_samples_;
  std::size_t lookback_samples_;   ///< detection rescan overlap
  std::size_t max_span_samples_;   ///< conservative live-packet span
  std::size_t forced_cut_samples_;  ///< force a cut beyond this backlog

  StreamingStats st_;
  PacketCallback on_packet_;
  std::vector<sim::DecodedPacket> packets_;

  /// tnb_stream_* metrics mirroring StreamingStats (null handles when the
  /// registry — ReceiverOptions::metrics or the global — is disabled).
  struct Instrumentation {
    obs::CounterRef chunks;
    obs::CounterRef samples_in;
    obs::CounterRef segments;
    obs::CounterRef forced_cuts;
    obs::CounterRef spans_refined;
    obs::CounterRef samples_retired;
    obs::CounterRef packets_emitted;
    obs::GaugeRef live_packets;
    obs::GaugeRef peak_live_packets;
    obs::GaugeRef window_samples;
    obs::GaugeRef window_high_water;
    obs::HistogramRef segment_samples;
    obs::HistogramRef segment_decode;
  };
  Instrumentation obs_;
};

/// Runs the two-thread gateway pipeline: a producer thread drains `src`
/// into `ring` chunk by chunk (blocking push when `backpressure`, counted
/// drops otherwise), while the calling thread pops chunks and feeds `rx`,
/// then finishes it. `on_chunk`, when set, is called after each consumed
/// chunk (the daemon's periodic stats hook). Returns samples decoded.
std::size_t run_pipeline(
    ChunkSource& src, IqRing& ring, StreamingReceiver& rx,
    std::size_t chunk_samples, bool backpressure = true,
    const std::function<void(std::size_t samples_consumed)>& on_chunk = {});

}  // namespace tnb::stream
