#include "stream/ring_buffer.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace tnb::stream {

IqRing::IqRing(std::size_t capacity) : buf_(capacity) {
  if (capacity == 0) throw std::invalid_argument("IqRing: capacity must be > 0");
  st_.capacity = capacity;
}

void IqRing::append_locked(std::span<const cfloat> chunk) {
  const std::size_t cap = buf_.size();
  std::size_t tail = (head_ + size_) % cap;
  std::size_t remaining = chunk.size();
  const cfloat* src = chunk.data();
  while (remaining > 0) {
    const std::size_t run = std::min(remaining, cap - tail);
    std::memcpy(buf_.data() + tail, src, run * sizeof(cfloat));
    src += run;
    remaining -= run;
    tail = (tail + run) % cap;
  }
  size_ += chunk.size();
  st_.pushed += chunk.size();
  st_.high_water = std::max(st_.high_water, size_);
}

std::size_t IqRing::push(std::span<const cfloat> chunk) {
  std::size_t accepted = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (accepted < chunk.size()) {
    cv_space_.wait(lock, [&] { return size_ < buf_.size() || closed_; });
    if (closed_) break;
    const std::size_t n =
        std::min(chunk.size() - accepted, buf_.size() - size_);
    append_locked(chunk.subspan(accepted, n));
    accepted += n;
    cv_data_.notify_one();
  }
  return accepted;
}

std::size_t IqRing::try_push(std::span<const cfloat> chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return 0;
  const std::size_t n = std::min(chunk.size(), buf_.size() - size_);
  append_locked(chunk.first(n));
  st_.dropped += chunk.size() - n;
  if (n > 0) cv_data_.notify_one();
  return n;
}

std::size_t IqRing::pop(IqBuffer& out, std::size_t max_samples) {
  out.clear();
  std::unique_lock<std::mutex> lock(mu_);
  cv_data_.wait(lock, [&] { return size_ > 0 || closed_; });
  const std::size_t n = std::min(size_, max_samples);
  out.resize(n);
  const std::size_t cap = buf_.size();
  std::size_t got = 0;
  while (got < n) {
    const std::size_t run = std::min(n - got, cap - head_);
    std::memcpy(out.data() + got, buf_.data() + head_, run * sizeof(cfloat));
    head_ = (head_ + run) % cap;
    got += run;
  }
  size_ -= n;
  st_.popped += n;
  if (n > 0) cv_space_.notify_one();
  return n;
}

void IqRing::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_data_.notify_all();
  cv_space_.notify_all();
}

bool IqRing::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t IqRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

RingStats IqRing::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return st_;
}

}  // namespace tnb::stream
