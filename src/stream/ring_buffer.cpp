#include "stream/ring_buffer.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "obs/stage_timer.hpp"

namespace tnb::stream {

IqRing::IqRing(std::size_t capacity, obs::Registry* metrics) : buf_(capacity) {
  if (capacity == 0) throw std::invalid_argument("IqRing: capacity must be > 0");
  st_.capacity = capacity;
  obs::Registry* reg = obs::resolve(metrics);
  if (reg != nullptr) {
    obs_.pushed = reg->counter("tnb_ring_pushed_samples_total",
                               "Samples accepted into the IQ ring");
    obs_.popped = reg->counter("tnb_ring_popped_samples_total",
                               "Samples drained from the IQ ring");
    obs_.dropped =
        reg->counter("tnb_ring_dropped_samples_total",
                     "Samples discarded (try_push overflow or closed ring)");
    obs_.buffered =
        reg->gauge("tnb_ring_buffered_samples", "Samples currently buffered");
    obs_.high_water = reg->gauge("tnb_ring_high_water_samples",
                                 "Peak simultaneously buffered samples");
    obs_.push_wait = reg->histogram(
        "tnb_ring_push_wait_seconds", obs::duration_bounds(),
        "Producer time blocked waiting for ring space (per push call)");
    obs_.pop_wait = reg->histogram(
        "tnb_ring_pop_wait_seconds", obs::duration_bounds(),
        "Consumer time blocked waiting for samples (per pop call)");
  }
}

void IqRing::append_locked(std::span<const cfloat> chunk) {
  const std::size_t cap = buf_.size();
  std::size_t tail = (head_ + size_) % cap;
  std::size_t remaining = chunk.size();
  const cfloat* src = chunk.data();
  while (remaining > 0) {
    const std::size_t run = std::min(remaining, cap - tail);
    std::memcpy(buf_.data() + tail, src, run * sizeof(cfloat));
    src += run;
    remaining -= run;
    tail = (tail + run) % cap;
  }
  size_ += chunk.size();
  st_.pushed += chunk.size();
  st_.high_water = std::max(st_.high_water, size_);
  obs_.pushed.inc(chunk.size());
  obs_.buffered.set(static_cast<std::int64_t>(size_));
  obs_.high_water.update_max(static_cast<std::int64_t>(size_));
}

void IqRing::drop_locked(std::size_t n) {
  st_.dropped += n;
  obs_.dropped.inc(n);
}

std::size_t IqRing::push(std::span<const cfloat> chunk) {
  std::size_t accepted = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (accepted < chunk.size()) {
    if (size_ >= buf_.size() && !closed_) {
      // Only a full ring reaches the condition wait; the span then times
      // genuine backpressure, not the uncontended fast path.
      const obs::ScopedSpan span(obs_.push_wait);
      cv_space_.wait(lock, [&] { return size_ < buf_.size() || closed_; });
    }
    if (closed_) break;
    const std::size_t n =
        std::min(chunk.size() - accepted, buf_.size() - size_);
    append_locked(chunk.subspan(accepted, n));
    accepted += n;
    cv_data_.notify_one();
  }
  // A close() racing this push discards the remainder: account it as
  // dropped so pushed + dropped always equals the samples offered.
  if (accepted < chunk.size()) drop_locked(chunk.size() - accepted);
  return accepted;
}

std::size_t IqRing::try_push(std::span<const cfloat> chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) {
    // A closed ring accepts nothing; without this the samples would
    // vanish from the pushed/dropped accounting entirely.
    drop_locked(chunk.size());
    return 0;
  }
  const std::size_t n = std::min(chunk.size(), buf_.size() - size_);
  append_locked(chunk.first(n));
  drop_locked(chunk.size() - n);
  if (n > 0) cv_data_.notify_one();
  return n;
}

std::size_t IqRing::pop(IqBuffer& out, std::size_t max_samples) {
  out.clear();
  std::unique_lock<std::mutex> lock(mu_);
  if (size_ == 0 && !closed_) {
    const obs::ScopedSpan span(obs_.pop_wait);
    cv_data_.wait(lock, [&] { return size_ > 0 || closed_; });
  }
  const std::size_t n = std::min(size_, max_samples);
  out.resize(n);
  const std::size_t cap = buf_.size();
  std::size_t got = 0;
  while (got < n) {
    const std::size_t run = std::min(n - got, cap - head_);
    std::memcpy(out.data() + got, buf_.data() + head_, run * sizeof(cfloat));
    head_ = (head_ + run) % cap;
    got += run;
  }
  size_ -= n;
  st_.popped += n;
  obs_.popped.inc(n);
  obs_.buffered.set(static_cast<std::int64_t>(size_));
  if (n > 0) cv_space_.notify_one();
  return n;
}

void IqRing::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_data_.notify_all();
  cv_space_.notify_all();
}

bool IqRing::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t IqRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

RingStats IqRing::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return st_;
}

}  // namespace tnb::stream
