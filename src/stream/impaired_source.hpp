// ChunkSource decorator applying a tnb::impair chain to a live stream.
//
// tnb_streamd --impair wraps its input source in an ImpairedSource so the
// gateway decodes the stream as a degraded front end would deliver it.
// Stages run in config order with state carried across chunks (the
// resampler's pending window), and randomness comes from a dedicated
// seeded Rng — the decoded output is deterministic for a fixed (input,
// chain, seed). Only receiver-side stages are accepted: inter_sf is
// synthesis-only (an injected packet spans chunk boundaries) and
// phase_noise/doppler are transmitter-side per-packet effects; both are
// rejected at construction.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "impair/impairment.hpp"
#include "stream/chunk_source.hpp"

namespace tnb::stream {

class ImpairedSource final : public ChunkSource {
 public:
  /// Throws std::invalid_argument on invalid configs or a chain containing
  /// a synthesis-only stage (inter_sf).
  ImpairedSource(std::unique_ptr<ChunkSource> inner,
                 std::span<const impair::ImpairmentConfig> configs,
                 const lora::Params& params, std::uint64_t seed,
                 obs::Registry* registry = nullptr);

  /// Pulls from the inner source, runs the chain, and delivers at most
  /// `max_samples` — a slow-clock resampler (ppm < 0) emits more samples
  /// than it consumes, so the surplus is carried into the next call. At
  /// inner end-of-stream the chain is flushed once and its tail delivered.
  std::size_t next(IqBuffer& out, std::size_t max_samples) override;

  impair::ClipStats clip_stats() const { return pipeline_.clip_stats(); }

 private:
  std::unique_ptr<ChunkSource> inner_;
  impair::Pipeline pipeline_;
  Rng rng_;
  IqBuffer carry_;   ///< processed samples beyond the last call's budget
  IqBuffer chunk_;   ///< scratch for inner reads
  bool drained_ = false;
};

}  // namespace tnb::stream
