// Fixed-capacity single-producer/single-consumer IQ ring buffer.
//
// The gateway ingestion path (tools/tnb_streamd, stream::run_pipeline) runs
// the sample source and the StreamingReceiver on separate threads with this
// ring in between. push() blocks while the ring is full — backpressure
// against a producer that outruns the decoder (file replay without pacing).
// try_push() never blocks: it accepts what fits and counts what it had to
// drop, the overrun policy of a real radio front end whose DMA buffer is
// fixed. All counters are exposed through RingStats for the daemon's
// periodic stats line.
//
// Synchronization is a mutex + two condition variables rather than a
// lock-free queue: producers and consumers move whole chunks (thousands of
// samples) per call, so locking is amortized far below the FFT work per
// sample and stays trivially correct under TSan.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace tnb::stream {

/// Ring counters, all in samples. Invariant: every sample offered to the
/// ring is accounted exactly once — pushed + dropped equals the total
/// offered through push()/try_push(), including samples discarded because
/// the ring was (or became) closed mid-call.
struct RingStats {
  std::size_t capacity = 0;
  std::size_t pushed = 0;      ///< accepted into the ring
  std::size_t popped = 0;
  std::size_t dropped = 0;     ///< discarded: try_push overflow or closed ring
  std::size_t high_water = 0;  ///< max simultaneously buffered
};

class IqRing {
 public:
  /// `metrics` (nullptr = obs::Registry::global(), resolved here) mirrors
  /// the RingStats counters as tnb_ring_* metrics and records blocking
  /// push/pop wait durations into histograms.
  explicit IqRing(std::size_t capacity, obs::Registry* metrics = nullptr);

  IqRing(const IqRing&) = delete;
  IqRing& operator=(const IqRing&) = delete;

  /// Producer: appends all of `chunk`, blocking while the ring is full.
  /// Returns the samples accepted (less than chunk.size() only if close()
  /// was called concurrently).
  std::size_t push(std::span<const cfloat> chunk);

  /// Producer: appends what fits and drops the rest (counted in
  /// stats().dropped). Never blocks. Returns the samples accepted.
  std::size_t try_push(std::span<const cfloat> chunk);

  /// Consumer: moves up to `max_samples` into `out` (replacing its
  /// contents), blocking until samples are available or the ring is
  /// closed. Returns out.size(); 0 means closed and fully drained.
  std::size_t pop(IqBuffer& out, std::size_t max_samples);

  /// Producer: end of stream. Unblocks a waiting consumer (and any push).
  void close();

  bool closed() const;
  std::size_t size() const;
  RingStats stats() const;

 private:
  void append_locked(std::span<const cfloat> chunk);
  void drop_locked(std::size_t n);

  std::vector<cfloat> buf_;
  std::size_t head_ = 0;  ///< next pop index
  std::size_t size_ = 0;  ///< buffered samples
  bool closed_ = false;
  RingStats st_;
  mutable std::mutex mu_;
  std::condition_variable cv_data_;   ///< consumer: samples available
  std::condition_variable cv_space_;  ///< producer: room available

  struct Instrumentation {
    obs::CounterRef pushed;
    obs::CounterRef popped;
    obs::CounterRef dropped;
    obs::GaugeRef buffered;
    obs::GaugeRef high_water;
    obs::HistogramRef push_wait;
    obs::HistogramRef pop_wait;
  };
  Instrumentation obs_;  ///< null handles when metrics are disabled
};

}  // namespace tnb::stream
