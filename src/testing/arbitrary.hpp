// Structured generators: FuzzInput bytes -> valid domain objects.
//
// Each generator maps *any* byte string onto a valid instance (Params that
// pass validate(), Headers with in-range fields, payloads within the on-air
// length limit), so harnesses separate two concerns: the oracles probe
// decoder behaviour under adversarial *signal* corruption, while the raw
// byte-level harnesses probe parser totality on malformed *input*. Keeping
// the generators in one place also pins the byte layout the corpus seeds
// under tests/fuzz/corpus/ were written against.
#pragma once

#include <cstdint>
#include <vector>

#include "lora/header.hpp"
#include "lora/params.hpp"
#include "testing/fuzz_input.hpp"

namespace tnb::testing {

/// A Params that always satisfies Params::validate(). OSF is kept in
/// {1,2,4,8} and SF/CR/LDRO cover their full valid ranges.
lora::Params arbitrary_params(FuzzInput& in);

/// Like arbitrary_params but with OSF pinned to 1 and SF capped, for
/// harnesses whose cost scales with samples per symbol (streaming).
lora::Params arbitrary_params_small(FuzzInput& in);

/// A Header with valid field ranges (CR 1..4); payload_len spans 0..255.
lora::Header arbitrary_header(FuzzInput& in);

/// Application payload of 1..max_bytes bytes (on-air limit: +2 CRC bytes
/// must stay <= 255).
std::vector<std::uint8_t> arbitrary_payload(FuzzInput& in,
                                            std::size_t max_bytes = 64);

/// Corrupts up to `max_symbols` entries of `symbols` in place, each by a
/// nonzero XOR within the SF-bit symbol range. Returns the indices hit
/// (deduplicated). max_symbols = 0 corrupts nothing.
std::vector<std::size_t> corrupt_symbols(std::vector<std::uint32_t>& symbols,
                                         unsigned sf, FuzzInput& in,
                                         std::size_t max_symbols);

/// Corrupts the given block columns in place (rows of 4+CR bits): each
/// error column gets a nonzero XOR pattern somewhere, mirroring the
/// one-symbol-one-column error model BEC is built on.
void corrupt_block_columns(std::vector<std::uint8_t>& rows,
                           const std::vector<unsigned>& cols, FuzzInput& in);

/// `n_cols` distinct column indices out of [0, 4+cr).
std::vector<unsigned> arbitrary_columns(FuzzInput& in, unsigned cr,
                                        unsigned n_cols);

}  // namespace tnb::testing
