// FuzzInput: turns an arbitrary byte string into structured values.
//
// The correctness-tooling subsystem (DESIGN.md "Correctness tooling") drives
// every oracle from raw bytes so the same harness body serves three
// masters: a libFuzzer engine mutating inputs (-DTNB_FUZZ=ON), the ctest
// replay driver re-running the checked-in corpus, and the driver's
// deterministic randomized sweep (tnb::Rng from a pinned seed). The reader
// follows the FuzzedDataProvider contract: consuming past the end of the
// input yields zeros instead of failing, so every harness is total — any
// byte string maps to *some* structured input, and a short corpus seed
// still exercises the code behind it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace tnb::testing {

class FuzzInput {
 public:
  FuzzInput(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit FuzzInput(std::span<const std::uint8_t> bytes)
      : FuzzInput(bytes.data(), bytes.size()) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool empty() const { return pos_ == size_; }

  /// Next byte; 0 once the input is exhausted.
  std::uint8_t u8() {
    return pos_ < size_ ? data_[pos_++] : std::uint8_t{0};
  }

  /// Little-endian unsigned of up to 8 bytes, zero-padded at end of input.
  std::uint64_t u64(unsigned n_bytes = 8) {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < n_bytes && i < 8; ++i) {
      v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    }
    return v;
  }

  bool boolean() { return (u8() & 1) != 0; }

  /// Uniform integer in [lo, hi] (inclusive; collapses to lo when hi<=lo).
  /// Uses modulo reduction: every value reachable, bias irrelevant here.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    if (hi <= lo) return lo;
    const std::uint64_t range = hi - lo + 1;
    // 4 bytes cover every range the harnesses use while keeping corpus
    // seeds compact; ranges beyond 2^32 would need u64() directly.
    return lo + (range > 0xFFFFFFFFull ? u64() : u64(4)) % range;
  }

  /// Uniform double in [0, 1) from 4 bytes.
  double unit() { return static_cast<double>(u64(4)) * 0x1p-32; }

  double real(double lo, double hi) { return lo + unit() * (hi - lo); }

  /// Up to `n` raw bytes (fewer when the input runs out — never padded,
  /// so byte-level parsers see exactly what the corpus file holds).
  std::vector<std::uint8_t> bytes(std::size_t n) {
    const std::size_t take = std::min(n, remaining());
    std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + take);
    pos_ += take;
    return out;
  }

  /// Everything left, without padding.
  std::vector<std::uint8_t> rest() { return bytes(remaining()); }

  /// View of everything left (no copy); consumes the input.
  std::span<const std::uint8_t> rest_view() {
    std::span<const std::uint8_t> v(data_ + pos_, remaining());
    pos_ = size_;
    return v;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace tnb::testing
