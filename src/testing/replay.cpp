#include "testing/replay.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace tnb::testing {

namespace {

bool read_file(const std::filesystem::path& path,
               std::vector<std::uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return true;
}

/// Runs one input through the target, reporting any escaped exception as a
/// crash tagged with `label`.
bool run_one(FuzzTarget target, const std::vector<std::uint8_t>& data,
             const std::string& label) {
  try {
    target(data.empty() ? nullptr : data.data(), data.size());
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replay: FAILED on %s (%zu bytes)\n  %s\n",
                 label.c_str(), data.size(), e.what());
  } catch (...) {
    std::fprintf(stderr, "replay: FAILED on %s (%zu bytes): non-std exception\n",
                 label.c_str(), data.size());
  }
  return false;
}

}  // namespace

int replay_main(int argc, char** argv, FuzzTarget target) {
  std::size_t rand_cases = 0;
  std::uint64_t seed = 0x7E57C0DE5EEDull;
  std::size_t max_len = 512;
  std::vector<std::filesystem::path> corpus_paths;

  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "replay: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--rand") == 0) {
      rand_cases = std::strtoull(need_value("--rand"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(need_value("--seed"), nullptr, 0);
    } else if (std::strcmp(argv[i], "--max-len") == 0) {
      max_len = std::strtoull(need_value("--max-len"), nullptr, 10);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [--rand N] [--seed S] [--max-len L] [PATH...]\n",
                   argv[0]);
      return 2;
    } else {
      corpus_paths.emplace_back(argv[i]);
    }
  }

  // Corpus replay: files directly, directories expanded and name-sorted so
  // the run order never depends on readdir order.
  std::vector<std::filesystem::path> files;
  for (const auto& path : corpus_paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::filesystem::path> entries;
      for (const auto& e : std::filesystem::directory_iterator(path, ec)) {
        if (e.is_regular_file()) entries.push_back(e.path());
      }
      std::sort(entries.begin(), entries.end());
      files.insert(files.end(), entries.begin(), entries.end());
    } else if (std::filesystem::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      std::fprintf(stderr, "replay: no such corpus path: %s\n",
                   path.string().c_str());
      return 2;
    }
  }

  std::size_t failures = 0;
  std::vector<std::uint8_t> data;
  for (const auto& f : files) {
    if (!read_file(f, data)) {
      std::fprintf(stderr, "replay: cannot read %s\n", f.string().c_str());
      return 2;
    }
    if (!run_one(target, data, f.string())) ++failures;
  }

  Rng rng(seed);
  for (std::size_t i = 0; i < rand_cases; ++i) {
    data.resize(rng.uniform_index(static_cast<std::uint64_t>(max_len) + 1));
    for (auto& b : data) {
      b = static_cast<std::uint8_t>(rng.uniform_index(256));
    }
    if (!run_one(target, data, "random case #" + std::to_string(i) +
                                   " (seed " + std::to_string(seed) + ")")) {
      ++failures;
    }
  }

  std::printf("replay: %zu corpus file(s) + %zu random case(s), %zu failure(s)\n",
              files.size(), rand_cases, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace tnb::testing
