// Deterministic replay driver for the fuzz harnesses.
//
// Every harness in tests/fuzz/ defines the libFuzzer entry point
// `LLVMFuzzerTestOneInput`. Under -DTNB_FUZZ=ON that symbol is driven by
// the real fuzzing engine; in the default build each harness links
// replay_main.cpp instead and becomes a plain ctest binary:
//
//   fuzz_<name> [--rand N] [--seed S] [--max-len L] [PATH...]
//
// Each PATH is a corpus file or a directory of corpus files (sorted by
// name, so runs are reproducible). After the corpus, N random inputs are
// generated from a tnb::Rng pinned to S — fully deterministic, so a clean
// local run guarantees a clean CI run. Exit status: 0 all inputs clean,
// 1 an input crashed an oracle (the offending corpus file or random-case
// index is printed), 2 usage error / unreadable path.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tnb::testing {

/// The libFuzzer target signature (return value is ignored).
using FuzzTarget = int (*)(const std::uint8_t* data, std::size_t size);

int replay_main(int argc, char** argv, FuzzTarget target);

}  // namespace tnb::testing
