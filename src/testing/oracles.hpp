// Round-trip oracles for the decode pipeline (DESIGN.md "Correctness
// tooling").
//
// Each oracle consumes a FuzzInput, derives a structured case from it, and
// checks an invariant the coding chain / parser stack promises
// mechanically — the invertible-contract view of the gray/whitening/
// interleave/Hamming/CRC chain that receivers like the EPFL multi-user
// GNU Radio decoder rely on. A violation throws OracleFailure (which a
// fuzzing engine or the replay driver turns into a crash with the
// offending input); genuine memory errors are left to ASan/UBSan.
//
// Two kinds of oracle coexist:
//   * totality — arbitrary bytes through a parser must never crash, leak,
//     or overflow, only return a value or throw the documented
//     std::runtime_error (header nibbles, int16 trace bytes, Prometheus
//     text);
//   * round-trip — decode(impair(encode(x))) must be x or a reported
//     failure whenever the impairment is within the documented correction
//     capability, and decode(encode(x)) == x always.
//
// The oracles deliberately avoid asserting facts that hold only with high
// probability under *random* inputs (e.g. "no 16-bit CRC collision"), so
// the same binary is sound both as a libFuzzer target and as the
// deterministic corpus-replay ctest. Probabilistic-but-pinned variants
// live in tests/ (test_bec.cpp BecFalseAccept) where the seed is fixed.
#pragma once

#include <stdexcept>
#include <string>

#include "testing/fuzz_input.hpp"

namespace tnb::testing {

/// An oracle property was violated (a real correctness finding, as opposed
/// to a rejected malformed input).
struct OracleFailure : std::logic_error {
  using std::logic_error::logic_error;
};

[[noreturn]] void oracle_fail(const char* file, int line,
                              const std::string& msg);

#define TNB_ORACLE(cond, msg)                                  \
  do {                                                         \
    if (!(cond)) ::tnb::testing::oracle_fail(__FILE__, __LINE__, msg); \
  } while (0)

// ---- coding chain (lora::gray / whitening / interleaver / hamming / crc) --
/// Involutions and bijections of the primitive stages on arbitrary data.
void oracle_primitives_roundtrip(FuzzInput& in);
/// Full chain: make_packet_symbols -> default decode == identity, BEC
/// decode == identity, for an arbitrary valid (SF, CR, LDRO) and payload.
void oracle_coding_chain_roundtrip(FuzzInput& in);
/// Arbitrary symbol corruption: decoders never crash; anything they accept
/// passed its integrity gate (header checksum / payload CRC).
void oracle_coding_chain_corrupted(FuzzInput& in);

// ---- lora::header ----
/// Serialize/parse identity at every SF, through nibbles, symbols, default
/// decode and BEC; single-symbol corruption still yields the true header.
void oracle_header_roundtrip(FuzzInput& in);
/// header_from_nibbles on arbitrary bytes: total, and any accepted header
/// is a serialize/parse fixpoint.
void oracle_header_parse_total(FuzzInput& in);

// ---- core::Bec ----
/// decode_block on an arbitrary in-contract block: candidates are valid
/// codeword blocks, deduplicated, led by the default-decoder block.
void oracle_bec_arbitrary_block(FuzzInput& in);
/// Any corruption within the documented capability (1 column at every CR,
/// 2 columns at CR 4) must put the original block among the candidates.
void oracle_bec_correctable(FuzzInput& in);
/// Packet level: one corrupted symbol per block decodes ok, and whatever
/// decode_payload_bec accepts carries a valid packet CRC — the gate never
/// reports ok on a payload that fails it.
void oracle_bec_packet(FuzzInput& in);

// ---- sim::trace_io ----
/// Arbitrary bytes through read_trace_i16_chunk: total; sample count and
/// truncation status exactly reflect the byte count; values match a
/// reference little-endian int16 decode.
void oracle_trace_chunk_arbitrary(FuzzInput& in);
/// int16-grid samples serialize -> chunked read == identity for any chunk
/// size; byte_offset lands on the exact byte count.
void oracle_trace_roundtrip(FuzzInput& in);
/// stream::IstreamSource over a torn stream: partial chunk + status, then
/// a clean end of stream — never an exception for a mid-pair tail.
void oracle_chunk_source_truncation(FuzzInput& in);

// ---- stream::StreamingReceiver ----
/// Chunked ingestion of arbitrary IQ at fuzz-chosen chunk boundaries
/// decodes the same packet set as one-shot ingestion, with consistent
/// sample accounting, and never crashes.
void oracle_streaming_chunk_invariance(FuzzInput& in);

// ---- fleet::Channelizer / fleet::Fleet ----
/// taps == 1 analysis inverts mix_channels to float rounding, the output
/// is bit-identical for any two wideband chunkings, and a sub-block tail
/// is sticky: counted in pending_samples(), never emitted (the
/// IstreamSource torn-pair semantics one level up).
void oracle_channelizer_roundtrip(FuzzInput& in);
/// Fleet differential: a multi-lane fleet over arbitrary wideband IQ
/// produces exactly the ledger of a single-lane fleet fed the same stream
/// at different chunk boundaries — entry for entry, after finalize.
void oracle_fleet_differential(FuzzInput& in);

// ---- wire::WireCodec (the gr-lora-sdr wire format) ----
/// Wire primitive invariants on arbitrary data: whitening involution,
/// Hamming encode/decode identity plus single-error correction at CR >= 3,
/// diagonal interleaver bijection, Gray shift mapping identity (with the
/// reduced-rate +1/+2 absorption), header serialize/parse fixpoint.
void oracle_wire_primitives_roundtrip(FuzzInput& in);
/// Full wire frame: encode_shifts -> decode_header/decode_frame == identity
/// for an arbitrary valid (SF, CR, LDRO, explicit/implicit) and payload.
void oracle_wire_codec_roundtrip(FuzzInput& in);
/// WireCodec decode on arbitrary bins: total — never crashes — and an
/// accepted frame reports exactly the header's CRC-exclusive payload
/// length. (CRC acceptance on random bins is probabilistic, so the oracle
/// does not assert rejection; the pinned-seed variant lives in test_wire.)
void oracle_wire_codec_totality(FuzzInput& in);

// ---- dsp::FftBackend ----
/// Every registered backend on an arbitrary pow2 size (2 .. 2^15) and
/// arbitrary int16-grid spectrum: forward -> inverse recovers the input
/// within a stage-scaled float bound, transform_batch is bit-identical to
/// the same transforms run one row at a time, and repeating a transform
/// on identical input is bit-identical (no hidden state).
void oracle_fft_backend(FuzzInput& in);

// ---- impair::Pipeline / sim traffic models ----
/// An arbitrary impairment chain (0..4 stages, severities across the full
/// validated range) plus an optional traffic model keeps sim::build_trace
/// total: every sample of every antenna is finite, all antennas have the
/// trace length, every ground-truth record lies inside the trace, and
/// rebuilding from the same seed is bit-identical (no hidden state across
/// packets or stages).
void oracle_impairment_totality(FuzzInput& in);

// ---- base::CoRaDetector / base::LZnSync (the baseline peers) ----
/// Arbitrary IQ through a fuzz-chosen baseline receiver (CoRa, CoRa+,
/// CoRa-TnB, LZn-Thrive): total — never crashes — deterministic for a
/// fixed Rng seed, and every reported packet has finite fields and an
/// in-air-limit payload.
void oracle_baseline_receiver_totality(FuzzInput& in);
/// LZnSync::sync on arbitrary IQ: total, every detection finite and
/// in-bounds with a score that meets the configured threshold, and the
/// detection list identical across repeated calls.
void oracle_lzn_sync_totality(FuzzInput& in);

}  // namespace tnb::testing
