#include "testing/oracles.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <complex>
#include <cstring>
#include <sstream>
#include <vector>

#include "baselines/factories.hpp"
#include "baselines/lzn_sync.hpp"
#include "common/rng.hpp"
#include "core/bec.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_backend.hpp"
#include "fleet/channelizer.hpp"
#include "fleet/fleet.hpp"
#include "lora/crc.hpp"
#include "lora/frame.hpp"
#include "lora/gray.hpp"
#include "lora/hamming.hpp"
#include "lora/header.hpp"
#include "lora/interleaver.hpp"
#include "lora/modulator.hpp"
#include "lora/whitening.hpp"
#include "sim/trace_builder.hpp"
#include "sim/trace_io.hpp"
#include "stream/chunk_source.hpp"
#include "stream/streaming_receiver.hpp"
#include "testing/arbitrary.hpp"
#include "wire/wire_codec.hpp"
#include "wire/wire_format.hpp"

namespace tnb::testing {

void oracle_fail(const char* file, int line, const std::string& msg) {
  throw OracleFailure(std::string(file) + ":" + std::to_string(line) +
                      ": oracle violated: " + msg);
}

namespace {

/// Serializes IQ-pair int16s little-endian — the reference encoder the
/// trace_io oracles diff the production reader against.
std::string serialize_i16_le(const std::vector<std::int16_t>& vals) {
  std::string bytes;
  bytes.reserve(vals.size() * 2);
  for (std::int16_t v : vals) {
    const auto u = static_cast<std::uint16_t>(v);
    bytes.push_back(static_cast<char>(u & 0xFF));
    bytes.push_back(static_cast<char>(u >> 8));
  }
  return bytes;
}

std::int16_t i16_at(std::span<const std::uint8_t> bytes, std::size_t i) {
  return static_cast<std::int16_t>(
      static_cast<std::uint16_t>(bytes[2 * i]) |
      (static_cast<std::uint16_t>(bytes[2 * i + 1]) << 8));
}

}  // namespace

// ---------------------------------------------------------------- primitives

void oracle_primitives_roundtrip(FuzzInput& in) {
  // Gray code is a bijection on any 32-bit value.
  const std::uint32_t x = static_cast<std::uint32_t>(in.u64(4));
  TNB_ORACLE(lora::gray_decode(lora::gray_encode(x)) == x, "gray o gray^-1");
  TNB_ORACLE(lora::gray_encode(lora::gray_decode(x)) == x, "gray^-1 o gray");

  // Whitening is an involution on any byte string.
  std::vector<std::uint8_t> data =
      in.bytes(static_cast<std::size_t>(in.uniform(0, 128)));
  const std::vector<std::uint8_t> orig = data;
  lora::whiten(data);
  lora::whiten(data);
  TNB_ORACLE(data == orig, "whitening not an involution");

  // Interleaver is a bijection, and one corrupted symbol lands in exactly
  // one column of the deinterleaved block — the error model BEC rests on.
  const unsigned sf = static_cast<unsigned>(in.uniform(5, 12));
  const unsigned cr = static_cast<unsigned>(in.uniform(1, 4));
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << (4 + cr)) - 1u);
  std::vector<std::uint8_t> rows(sf);
  for (auto& r : rows) r = static_cast<std::uint8_t>(in.u8() & mask);
  auto symbols = lora::interleave_block(rows, sf, cr);
  TNB_ORACLE(lora::deinterleave_block(symbols, sf, cr) == rows,
             "interleaver round trip");
  const unsigned victim = static_cast<unsigned>(in.uniform(0, 4 + cr - 1));
  const std::uint32_t sym_mask = (1u << sf) - 1u;
  symbols[victim] ^= static_cast<std::uint32_t>(in.uniform(1, sym_mask));
  const auto back = lora::deinterleave_block(symbols, sf, cr);
  for (unsigned r = 0; r < sf; ++r) {
    TNB_ORACLE((static_cast<std::uint8_t>(back[r] ^ rows[r]) &
                static_cast<std::uint8_t>(~(1u << victim))) == 0,
               "symbol corruption escaped its column");
  }

  // Hamming: every nibble encodes to its codebook entry and decodes back
  // at distance 0; at CR >= 3 a single-bit error still decodes back.
  const std::uint8_t nib = static_cast<std::uint8_t>(in.u8() & 0x0F);
  for (unsigned c = 1; c <= 4; ++c) {
    const std::uint8_t cw = lora::encode_cr(nib, c);
    TNB_ORACLE(cw == lora::codewords(c)[nib], "encode_cr vs codebook");
    const auto d0 = lora::default_decode(cw, c);
    TNB_ORACLE(d0.data == nib && d0.distance == 0, "clean codeword decode");
    if (c >= 3) {
      const unsigned bit = static_cast<unsigned>(in.uniform(0, 4 + c - 1));
      const auto d1 = lora::default_decode(
          static_cast<std::uint8_t>(cw ^ (1u << bit)), c);
      TNB_ORACLE(d1.data == nib, "1-bit error not corrected at CR>=3");
    }
  }

  // CRC16: assembled payloads verify; any single-bit flip is caught.
  std::vector<std::uint8_t> app =
      in.bytes(static_cast<std::size_t>(in.uniform(1, 64)));
  if (app.empty()) app.push_back(0);
  auto payload = lora::assemble_payload(app);
  TNB_ORACLE(lora::check_payload_crc(payload), "fresh payload fails CRC");
  const std::size_t fb = static_cast<std::size_t>(
      in.uniform(0, payload.size() * 8 - 1));
  payload[fb / 8] ^= static_cast<std::uint8_t>(1u << (fb % 8));
  TNB_ORACLE(!lora::check_payload_crc(payload),
             "single-bit flip passed CRC16");
}

// --------------------------------------------------------------- full chain

void oracle_coding_chain_roundtrip(FuzzInput& in) {
  const lora::Params p = arbitrary_params(in);
  const std::vector<std::uint8_t> app = arbitrary_payload(in, 48);
  const auto payload = lora::assemble_payload(app);
  const auto symbols = lora::make_packet_symbols(p, app);
  TNB_ORACLE(symbols.size() == lora::num_packet_symbols(p, payload.size()),
             "packet symbol count");
  const std::uint32_t lim = 1u << p.bits_per_symbol();
  for (std::uint32_t s : symbols) {
    TNB_ORACLE(s < lim, "symbol value out of SF range");
  }

  const std::span<const std::uint32_t> all(symbols);
  const auto hdr = lora::decode_header_default(p, all.first(lora::kHeaderSymbols));
  TNB_ORACLE(hdr.has_value(), "clean header failed default decode");
  TNB_ORACLE(hdr->payload_len == payload.size() && hdr->cr == p.cr,
             "clean header fields");

  const auto pay = lora::decode_payload_default(
      p, all.subspan(lora::kHeaderSymbols), payload.size());
  TNB_ORACLE(pay.has_value(), "clean payload failed default decode");
  TNB_ORACLE(*pay == payload, "clean payload default decode mismatch");

  // BEC on a clean packet: the default-decoder block is candidate #1 and
  // already carries a valid CRC, so the result is deterministic.
  Rng rng(in.u64());
  const rx::BecPacketResult r = rx::decode_payload_bec(
      p, all.subspan(lora::kHeaderSymbols), payload.size(), rng);
  TNB_ORACLE(r.ok, "clean payload failed BEC decode");
  TNB_ORACLE(r.payload == payload, "clean payload BEC mismatch");
  TNB_ORACLE(r.rescued_codewords == 0, "clean packet claims rescues");

  const auto hdr_bec =
      rx::decode_header_bec(p, all.first(lora::kHeaderSymbols));
  TNB_ORACLE(hdr_bec.has_value() && *hdr_bec == *hdr,
             "clean header BEC mismatch");
}

void oracle_coding_chain_corrupted(FuzzInput& in) {
  const lora::Params p = arbitrary_params(in);
  const std::vector<std::uint8_t> app = arbitrary_payload(in, 48);
  const auto payload = lora::assemble_payload(app);
  std::vector<std::uint32_t> symbols = lora::make_packet_symbols(p, app);
  corrupt_symbols(symbols, p.bits_per_symbol(), in, symbols.size());

  const std::span<const std::uint32_t> all(symbols);
  // Totality: arbitrary corruption must only ever yield nullopt/!ok or a
  // value that passed the integrity gate.
  const auto hdr = lora::decode_header_default(p, all.first(lora::kHeaderSymbols));
  if (hdr.has_value()) {
    TNB_ORACLE(hdr->cr >= 1 && hdr->cr <= 4, "accepted header has bad CR");
  }
  const auto hdr_bec = rx::decode_header_bec(p, all.first(lora::kHeaderSymbols));
  if (hdr_bec.has_value()) {
    TNB_ORACLE(hdr_bec->cr >= 1 && hdr_bec->cr <= 4,
               "accepted BEC header has bad CR");
  }

  const auto pay = lora::decode_payload_default(
      p, all.subspan(lora::kHeaderSymbols), payload.size());
  if (pay.has_value()) {
    TNB_ORACLE(lora::check_payload_crc(*pay),
               "default decode accepted a payload failing its CRC");
    TNB_ORACLE(pay->size() == payload.size(), "accepted payload length");
  }

  Rng rng(in.u64());
  rx::BecStats stats;
  const rx::BecPacketResult r = rx::decode_payload_bec(
      p, all.subspan(lora::kHeaderSymbols), payload.size(), rng, &stats);
  if (r.ok) {
    TNB_ORACLE(lora::check_payload_crc(r.payload),
               "BEC accepted a payload failing its CRC");
    TNB_ORACLE(r.payload.size() == payload.size(), "BEC payload length");
  }
  TNB_ORACLE(stats.crc_checks <= rx::bec_w_budget(p.cr),
             "BEC exceeded its W budget");
}

// -------------------------------------------------------------------- header

void oracle_header_roundtrip(FuzzInput& in) {
  const lora::Params p = arbitrary_params(in);
  const lora::Header h = arbitrary_header(in);
  const unsigned sf_bits = p.bits_per_symbol();

  const auto nibbles = lora::header_to_nibbles(h, sf_bits);
  TNB_ORACLE(nibbles.size() == sf_bits, "header nibble count");
  const auto parsed = lora::header_from_nibbles(nibbles);
  TNB_ORACLE(parsed.has_value() && *parsed == h, "header nibble round trip");

  auto symbols = lora::encode_header_symbols(p, h);
  TNB_ORACLE(symbols.size() == lora::kHeaderSymbols, "header symbol count");
  const auto dec = lora::decode_header_default(p, symbols);
  TNB_ORACLE(dec.has_value() && *dec == h, "header symbol round trip");

  // One corrupted symbol = one corrupted column of the CR-4 header block:
  // every row is within distance 1, the default decoder cleans all of
  // them, and both decoders must return exactly h.
  const std::size_t victim =
      static_cast<std::size_t>(in.uniform(0, symbols.size() - 1));
  const std::uint32_t sym_mask = (1u << sf_bits) - 1u;
  symbols[victim] ^= static_cast<std::uint32_t>(in.uniform(1, sym_mask));
  const auto dec1 = lora::decode_header_default(p, symbols);
  TNB_ORACLE(dec1.has_value() && *dec1 == h,
             "1-symbol corruption broke default header decode");
  const auto bec1 = rx::decode_header_bec(p, symbols);
  TNB_ORACLE(bec1.has_value() && *bec1 == h,
             "1-symbol corruption broke BEC header decode");
}

void oracle_header_parse_total(FuzzInput& in) {
  const std::vector<std::uint8_t> raw =
      in.bytes(static_cast<std::size_t>(in.uniform(0, 64)));
  const auto parsed = lora::header_from_nibbles(raw);
  if (raw.size() < 5) {
    TNB_ORACLE(!parsed.has_value(), "accepted a <5-nibble header");
    return;
  }
  if (!parsed.has_value()) return;
  // Accepted headers are serialize/parse fixpoints.
  TNB_ORACLE(parsed->cr >= 1 && parsed->cr <= 4, "accepted header bad CR");
  const unsigned sf = static_cast<unsigned>(std::max<std::size_t>(raw.size(), 6));
  const auto nibbles = lora::header_to_nibbles(*parsed, sf);
  const auto again = lora::header_from_nibbles(nibbles);
  TNB_ORACLE(again.has_value() && *again == *parsed,
             "accepted header is not a serialize/parse fixpoint");
}

// ----------------------------------------------------------------------- BEC

namespace {

std::vector<std::uint8_t> arbitrary_codeword_block(FuzzInput& in, unsigned sf,
                                                   unsigned cr) {
  std::vector<std::uint8_t> rows(sf);
  for (auto& r : rows) {
    r = lora::codewords(cr)[in.uniform(0, 15)];
  }
  return rows;
}

bool block_in(const std::vector<std::vector<std::uint8_t>>& candidates,
              const std::vector<std::uint8_t>& truth) {
  return std::find(candidates.begin(), candidates.end(), truth) !=
         candidates.end();
}

}  // namespace

void oracle_bec_arbitrary_block(FuzzInput& in) {
  const unsigned sf = static_cast<unsigned>(in.uniform(5, 12));
  const unsigned cr = static_cast<unsigned>(in.uniform(1, 4));
  const rx::Bec bec(sf, cr);
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << (4 + cr)) - 1u);
  std::vector<std::uint8_t> rows(sf);
  for (auto& r : rows) r = static_cast<std::uint8_t>(in.u8() & mask);

  rx::BecStats stats;
  const auto cands = bec.decode_block(rows, &stats);
  TNB_ORACLE(!cands.empty(), "no candidates for an in-contract block");
  if (cr == 1) {
    // CR 1 contract (paper 6.4): a block whose rows all pass parity is its
    // own single candidate; otherwise only the <= 5 Delta' column rewrites
    // are offered — Gamma is deliberately absent, keeping the packet-level
    // combination count at 5^k, which the W = 125 budget is sized for.
    const bool all_pass = std::all_of(
        rows.begin(), rows.end(), [](std::uint8_t r) {
          return std::popcount(static_cast<unsigned>(r)) % 2 == 0;
        });
    if (all_pass) {
      TNB_ORACLE(cands.size() == 1 &&
                     cands[0] == std::vector<std::uint8_t>(rows.begin(),
                                                           rows.end()),
                 "parity-clean CR1 block is not its own single candidate");
    } else {
      TNB_ORACLE(cands.size() <= 4 + cr, "CR1 produced more than one Delta' "
                                         "candidate per column");
    }
  } else {
    // CR >= 2: candidate #1 is the cleaned block Gamma (per-row default
    // decode), so a caller taking the first candidate gets exactly the
    // default decoder's answer.
    for (unsigned r = 0; r < sf; ++r) {
      TNB_ORACLE(cands[0][r] == lora::default_decode(rows[r], cr).codeword,
                 "first candidate is not the default-decoder block");
    }
  }
  for (std::size_t i = 0; i < cands.size(); ++i) {
    TNB_ORACLE(cands[i].size() == sf, "candidate row count");
    for (std::uint8_t row : cands[i]) {
      const auto& cb = lora::codewords(cr);
      TNB_ORACLE(std::find(cb.begin(), cb.end(), row) != cb.end(),
                 "candidate contains a non-codeword row");
    }
    for (std::size_t j = i + 1; j < cands.size(); ++j) {
      TNB_ORACLE(cands[i] != cands[j], "duplicate candidates");
    }
  }
}

void oracle_bec_correctable(FuzzInput& in) {
  const unsigned sf = static_cast<unsigned>(in.uniform(5, 12));
  const unsigned cr = static_cast<unsigned>(in.uniform(1, 4));
  const rx::Bec bec(sf, cr);
  const auto truth = arbitrary_codeword_block(in, sf, cr);
  // Documented guaranteed capability (paper Table 1 / tests): one error
  // column at every CR, two at CR 4. (Two columns at CR 3 succeed with
  // probability 1 - ~2^-SF — probabilistic, so not asserted here.)
  const unsigned t =
      cr == 4 ? static_cast<unsigned>(in.uniform(1, 2)) : 1u;
  const auto cols = arbitrary_columns(in, cr, t);
  auto rx_rows = truth;
  corrupt_block_columns(rx_rows, cols, in);
  const auto cands = bec.decode_block(rx_rows);
  TNB_ORACLE(block_in(cands, truth),
             "correctable corruption lost the original block (cr=" +
                 std::to_string(cr) + ", t=" + std::to_string(t) + ")");
}

void oracle_bec_packet(FuzzInput& in) {
  const lora::Params p = arbitrary_params(in);
  const std::vector<std::uint8_t> app = arbitrary_payload(in, 32);
  const auto payload = lora::assemble_payload(app);
  std::vector<std::uint32_t> symbols = lora::encode_payload_symbols(p, payload);

  // One corrupted symbol in each of at most two blocks: inside both BEC's
  // per-block capability and the packet-assembly W budget, so the decode
  // is guaranteed (the paper's operating envelope, mirrored by
  // tests/test_bec.cpp BecPacket).
  const std::size_t cols = p.codeword_len();
  const std::size_t n_blocks = symbols.size() / cols;
  const std::uint32_t sym_mask = (1u << p.bits_per_symbol()) - 1u;
  std::vector<std::size_t> hit;
  hit.push_back(static_cast<std::size_t>(in.uniform(0, n_blocks - 1)));
  if (n_blocks > 1 && in.boolean()) {
    // A second, distinct block — two corruptions in one block would be two
    // error columns, beyond the guarantee at CR < 4.
    const std::size_t step =
        1 + static_cast<std::size_t>(in.uniform(0, n_blocks - 2));
    hit.push_back((hit[0] + step) % n_blocks);
  }
  for (std::size_t blk : hit) {
    const std::size_t victim =
        blk * cols + static_cast<std::size_t>(in.uniform(0, cols - 1));
    symbols[victim] ^= static_cast<std::uint32_t>(in.uniform(1, sym_mask));
  }

  Rng rng(in.u64());
  rx::BecStats stats;
  const rx::BecPacketResult r =
      rx::decode_payload_bec(p, symbols, payload.size(), rng, &stats);
  TNB_ORACLE(r.ok, "within-capability corruption failed packet BEC");
  TNB_ORACLE(lora::check_payload_crc(r.payload),
             "accepted payload fails its own CRC");
  TNB_ORACLE(r.payload.size() == payload.size(), "accepted payload length");
  TNB_ORACLE(stats.crc_checks <= rx::bec_w_budget(p.cr), "W budget exceeded");
}

// ------------------------------------------------------------------ trace io

void oracle_trace_chunk_arbitrary(FuzzInput& in) {
  const bool tolerate_tear = in.boolean();
  const std::size_t max_samples = static_cast<std::size_t>(in.uniform(1, 1500));
  const std::vector<std::uint8_t> bytes = in.rest();
  const double scale = 1024.0;
  const float inv = static_cast<float>(1.0 / scale);

  std::istringstream s(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  IqBuffer assembled, piece;
  std::uint64_t offset = 0;
  bool truncated = false;
  bool threw = false;
  try {
    bool t = false;
    while (sim::read_trace_i16_chunk(s, piece, max_samples, scale, &offset,
                                     tolerate_tear ? &t : nullptr) > 0) {
      assembled.insert(assembled.end(), piece.begin(), piece.end());
      if (t) {
        truncated = true;
        break;
      }
    }
    truncated = truncated || t;
  } catch (const std::runtime_error&) {
    threw = true;
  }

  const bool torn = bytes.size() % 4 != 0;
  if (tolerate_tear) {
    TNB_ORACLE(!threw, "chunk reader threw despite truncated_tail flag");
    TNB_ORACLE(truncated == torn, "truncated_tail flag wrong");
    TNB_ORACLE(offset == bytes.size(), "byte_offset != bytes consumed");
  } else {
    TNB_ORACLE(threw == torn, "legacy mid-pair contract changed");
  }
  if (!threw) {
    TNB_ORACLE(assembled.size() == bytes.size() / 4,
               "sample count != floor(bytes/4)");
    for (std::size_t i = 0; i < assembled.size(); ++i) {
      const cfloat want{i16_at(bytes, 2 * i) * inv,
                        i16_at(bytes, 2 * i + 1) * inv};
      TNB_ORACLE(assembled[i] == want, "sample value mismatch");
    }
  }
}

void oracle_trace_roundtrip(FuzzInput& in) {
  const std::size_t chunk = static_cast<std::size_t>(in.uniform(1, 700));
  const std::size_t n = static_cast<std::size_t>(in.uniform(0, 600));
  std::vector<std::int16_t> vals(2 * n);
  for (auto& v : vals) v = static_cast<std::int16_t>(in.u64(2));

  std::istringstream s(serialize_i16_le(vals));
  IqBuffer assembled, piece;
  std::uint64_t offset = 0;
  while (sim::read_trace_i16_chunk(s, piece, chunk, 1024.0, &offset) > 0) {
    TNB_ORACLE(piece.size() <= chunk, "chunk larger than requested");
    assembled.insert(assembled.end(), piece.begin(), piece.end());
  }
  TNB_ORACLE(offset == 4 * n, "round-trip byte_offset");
  TNB_ORACLE(assembled.size() == n, "round-trip sample count");
  const float inv = static_cast<float>(1.0 / 1024.0);
  for (std::size_t i = 0; i < n; ++i) {
    const cfloat want{vals[2 * i] * inv, vals[2 * i + 1] * inv};
    TNB_ORACLE(assembled[i] == want, "round-trip sample mismatch");
  }
}

void oracle_chunk_source_truncation(FuzzInput& in) {
  const std::size_t max_samples = static_cast<std::size_t>(in.uniform(1, 900));
  const std::vector<std::uint8_t> bytes = in.rest();
  std::istringstream s(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  stream::IstreamSource src(s);
  IqBuffer chunk;
  std::size_t total = 0;
  while (src.next(chunk, max_samples) > 0) total += chunk.size();
  TNB_ORACLE(total == bytes.size() / 4, "IstreamSource sample total");
  TNB_ORACLE(src.truncated_tail() == (bytes.size() % 4 != 0),
             "IstreamSource truncation status");
  TNB_ORACLE(src.byte_offset() == bytes.size(), "IstreamSource byte_offset");
  // End of stream is sticky.
  TNB_ORACLE(src.next(chunk, max_samples) == 0, "read past end of stream");
}

// ----------------------------------------------------------------- streaming

void oracle_streaming_chunk_invariance(FuzzInput& in) {
  const lora::Params p = arbitrary_params_small(in);

  // The stimulus: either a clean synthesized packet embedded in silence
  // (so segments actually decode something) or arbitrary int16-grid IQ.
  IqBuffer iq;
  if (in.boolean()) {
    std::vector<std::uint8_t> app = arbitrary_payload(in, 12);
    const auto symbols = lora::make_packet_symbols(p, app);
    lora::Modulator mod(p);
    lora::WaveformOptions wopt;
    wopt.cfo_hz = in.real(-200.0, 200.0);
    wopt.frac_delay = in.unit() * 0.99;
    const IqBuffer pkt = mod.synthesize(symbols, wopt);
    const std::size_t lead =
        static_cast<std::size_t>(in.uniform(0, 4)) * p.sps() + p.sps();
    iq.assign(lead, cfloat{0.0f, 0.0f});
    iq.insert(iq.end(), pkt.begin(), pkt.end());
    iq.insert(iq.end(), 8 * p.sps(), cfloat{0.0f, 0.0f});
  } else {
    const std::size_t n = static_cast<std::size_t>(in.uniform(256, 6000));
    iq.resize(n);
    const float inv = 1.0f / 1024.0f;
    for (auto& v : iq) {
      v = {static_cast<std::int16_t>(in.u64(2)) * inv,
           static_cast<std::int16_t>(in.u64(2)) * inv};
    }
  }

  stream::StreamingOptions sopt;
  sopt.rng_seed = in.u64();
  sopt.max_packet_symbols = 64;
  sopt.window_symbols = static_cast<std::size_t>(in.uniform(40, 160));

  stream::StreamingReceiver one_shot(p, {}, sopt);
  one_shot.push_chunk(iq);
  one_shot.finish();

  stream::StreamingReceiver chunked(p, {}, sopt);
  std::size_t pos = 0;
  while (pos < iq.size()) {
    const std::size_t len = std::min<std::size_t>(
        static_cast<std::size_t>(in.uniform(1, 2048)), iq.size() - pos);
    chunked.push_chunk(std::span<const cfloat>(iq).subspan(pos, len));
    pos += len;
  }
  chunked.finish();

  TNB_ORACLE(one_shot.stats().samples_in == iq.size() &&
                 chunked.stats().samples_in == iq.size(),
             "streaming samples_in accounting");
  TNB_ORACLE(chunked.stats().samples_retired <= chunked.stats().samples_in,
             "retired more samples than ingested");

  const auto& a = one_shot.packets();
  const auto& b = chunked.packets();
  TNB_ORACLE(a.size() == b.size(),
             "chunking changed the number of decoded packets (" +
                 std::to_string(a.size()) + " vs " + std::to_string(b.size()) +
                 ")");
  for (std::size_t i = 0; i < a.size(); ++i) {
    TNB_ORACLE(a[i].payload == b[i].payload, "chunking changed a payload");
    TNB_ORACLE(a[i].start_sample == b[i].start_sample,
               "chunking moved a packet start");
    TNB_ORACLE(a[i].cfo_hz == b[i].cfo_hz && a[i].snr_db == b[i].snr_db,
               "chunking changed packet estimates");
  }
}

// --------------------------------------------------------------------- fleet

namespace {

/// int16-grid IQ of n samples, the quantization every capture enters with.
IqBuffer arbitrary_iq(FuzzInput& in, std::size_t n) {
  IqBuffer iq(n);
  const float inv = 1.0f / 1024.0f;
  for (auto& v : iq) {
    v = {static_cast<std::int16_t>(in.u64(2)) * inv,
         static_cast<std::int16_t>(in.u64(2)) * inv};
  }
  return iq;
}

/// Pushes `iq` through a fresh taps == 1 Channelizer at fuzz-chosen chunk
/// boundaries and returns the per-channel output.
std::vector<IqBuffer> channelize_chunked(FuzzInput& in,
                                         std::span<const cfloat> iq,
                                         unsigned n_channels,
                                         std::size_t* pending = nullptr) {
  fleet::Channelizer chan({.n_channels = n_channels, .taps = 1});
  std::vector<IqBuffer> out(n_channels);
  std::size_t pos = 0;
  while (pos < iq.size()) {
    const std::size_t len = std::min<std::size_t>(
        static_cast<std::size_t>(in.uniform(1, 1024)), iq.size() - pos);
    chan.push(iq.subspan(pos, len), out);
    pos += len;
  }
  if (pending != nullptr) *pending = chan.pending_samples();
  return out;
}

}  // namespace

void oracle_channelizer_roundtrip(FuzzInput& in) {
  const unsigned n_channels = 1u << in.uniform(0, 4);  // 1..16
  const std::size_t blocks = static_cast<std::size_t>(in.uniform(1, 96));
  std::vector<IqBuffer> channels(n_channels);
  for (auto& c : channels) c = arbitrary_iq(in, blocks);
  const IqBuffer wideband = fleet::mix_channels(channels, n_channels);

  // A fuzz-chosen sub-block tail must be sticky: never emitted, exactly
  // accounted in pending_samples(). (n_channels == 1 has no sub-block
  // granularity — every sample is a whole block.)
  const std::size_t tail =
      static_cast<std::size_t>(in.uniform(0, n_channels - 1));
  IqBuffer input = wideband;
  input.insert(input.end(), tail, cfloat{0.1f, -0.1f});
  std::size_t pending_a = 0;
  const auto out_a = channelize_chunked(in, input, n_channels, &pending_a);
  TNB_ORACLE(pending_a == tail, "sub-block tail not accounted in pending");

  std::size_t pending_b = 0;
  const auto out_b = channelize_chunked(in, input, n_channels, &pending_b);
  TNB_ORACLE(pending_a == pending_b, "chunking changed the pending tail");
  for (unsigned k = 0; k < n_channels; ++k) {
    TNB_ORACLE(out_a[k].size() == blocks,
               "channel output length != whole blocks");
    TNB_ORACLE(out_a[k] == out_b[k],
               "wideband chunking changed channel output");
    for (std::size_t m = 0; m < blocks; ++m) {
      TNB_ORACLE(std::abs(out_a[k][m] - channels[k][m]) < 1e-3f,
                 "taps == 1 analysis did not invert mix_channels");
    }
  }
}

void oracle_fleet_differential(FuzzInput& in) {
  lora::Params p = arbitrary_params_small(in);
  const unsigned n_channels = 1u << in.uniform(0, 1);  // 1 or 2
  const std::size_t n =
      static_cast<std::size_t>(in.uniform(256, 4000)) * n_channels;
  const IqBuffer wideband = arbitrary_iq(in, n);

  fleet::FleetOptions fopt;
  fopt.n_channels = n_channels;
  fopt.sfs = {p.sf};
  fopt.taps = 1;
  fopt.dispatch_samples = static_cast<std::size_t>(in.uniform(64, 2048));
  fopt.lane_queue_chunks = static_cast<std::size_t>(in.uniform(1, 4));
  fopt.stream.max_packet_symbols = 64;
  fopt.stream.window_symbols = static_cast<std::size_t>(in.uniform(40, 160));
  fopt.stream.rng_seed = in.u64();

  const auto run = [&](int lanes, std::uint64_t chunk_lo) {
    fleet::FleetOptions o = fopt;
    o.lanes = lanes;
    fleet::Fleet fl(p, o);
    std::size_t pos = 0;
    while (pos < wideband.size()) {
      const std::size_t len = std::min<std::size_t>(
          static_cast<std::size_t>(in.uniform(chunk_lo, 4096)),
          wideband.size() - pos);
      fl.push_wideband(std::span<const cfloat>(wideband).subspan(pos, len));
      pos += len;
    }
    fl.finish();
    return fl.ledger();
  };

  const auto a = run(1, 1);
  const auto b = run(static_cast<int>(in.uniform(2, 3)), 16);
  TNB_ORACLE(a.size() == b.size(),
             "lane count changed the fleet packet count (" +
                 std::to_string(a.size()) + " vs " + std::to_string(b.size()) +
                 ")");
  for (std::size_t i = 0; i < a.size(); ++i) {
    TNB_ORACLE(a[i].channel == b[i].channel && a[i].sf == b[i].sf,
               "ledger entry origin mismatch");
    TNB_ORACLE(a[i].t0 == b[i].t0, "ledger entry t0 mismatch");
    TNB_ORACLE(a[i].pkt.payload == b[i].pkt.payload,
               "ledger entry payload mismatch");
  }
}

// --------------------------------------------------------------- fft backend

void oracle_fft_backend(FuzzInput& in) {
  // Arbitrary pow2 size up to 2^15 (the largest demod transform:
  // SF 12 x OSF 8) on an arbitrary registered backend.
  const unsigned log2n = static_cast<unsigned>(in.uniform(1, 15));
  const std::size_t n = std::size_t{1} << log2n;
  const auto backends = dsp::fft_backends();
  const dsp::FftBackend& be = *backends[in.uniform(0, backends.size() - 1)];
  const auto& plan = dsp::fft_plan(n);
  const IqBuffer input = arbitrary_iq(in, n);

  // Repeating the same transform on the same bytes is bit-identical:
  // backends keep no hidden state (scratch reuse must not leak between
  // calls — the kissfft backend's thread-local buffer, for one).
  IqBuffer a = input, b = input;
  be.transform(plan, a.data(), false);
  be.transform(plan, b.data(), false);
  TNB_ORACLE(std::memcmp(a.data(), b.data(), n * sizeof(cfloat)) == 0,
             std::string(be.name()) + ": transform not deterministic");

  // forward -> inverse recovers the input. Float error compounds once per
  // butterfly stage each way; bound it in ULP of the peak input magnitude
  // (int16-grid inputs keep the dynamic range tame).
  be.transform(plan, a.data(), true);
  float peak = 1.0f;
  for (const cfloat& v : input) {
    peak = std::max({peak, std::abs(v.real()), std::abs(v.imag())});
  }
  const float tol = (64.0f + 32.0f * static_cast<float>(log2n)) * peak *
                    std::ldexp(1.0f, -23);
  for (std::size_t i = 0; i < n; ++i) {
    TNB_ORACLE(std::abs(a[i].real() - input[i].real()) <= tol &&
                   std::abs(a[i].imag() - input[i].imag()) <= tol,
               std::string(be.name()) + ": forward->inverse drifted at bin " +
                   std::to_string(i));
  }

  // transform_batch over rows cut from the same bytes == one transform
  // per row, bit for bit (cap the total at 2^15 elements to keep replay
  // fast). Rows repeat the fuzzed spectrum; the bit-identity contract
  // doesn't care.
  const std::size_t count =
      in.uniform(1, std::max<std::size_t>(1, (std::size_t{1} << 15) / n));
  IqBuffer batched(count * n), singles(count * n);
  for (std::size_t r = 0; r < count; ++r) {
    std::memcpy(batched.data() + r * n, input.data(), n * sizeof(cfloat));
  }
  std::memcpy(singles.data(), batched.data(), count * n * sizeof(cfloat));
  const bool inverse = in.boolean();
  be.transform_batch(plan, batched.data(), count, inverse);
  for (std::size_t r = 0; r < count; ++r) {
    be.transform(plan, singles.data() + r * n, inverse);
  }
  TNB_ORACLE(std::memcmp(batched.data(), singles.data(),
                         count * n * sizeof(cfloat)) == 0,
             std::string(be.name()) + ": transform_batch != per-row transform");
}

// ---------------------------------------------------------- impair / traffic

void oracle_impairment_totality(FuzzInput& in) {
  lora::Params p;
  p.sf = static_cast<unsigned>(in.uniform(5, 8));
  p.cr = static_cast<unsigned>(in.uniform(1, 4));
  p.osf = static_cast<unsigned>(in.uniform(1, 2));
  p.ldro = in.boolean() && p.sf >= 8;  // LDRO is only valid at SF >= 8

  sim::TraceOptions opt;
  // At least ~1.5 packet airtimes, so the build_trace "trace shorter than
  // one packet" precondition holds for every drawn (SF, osf, LDRO).
  const std::size_t pkt_samples = lora::Modulator(p).packet_samples(
      lora::num_packet_symbols(p, opt.app_payload_bytes + 2));
  const double min_duration =
      1.5 * static_cast<double>(pkt_samples) / p.sample_rate_hz();
  opt.duration_s = std::max(in.real(0.05, 0.25), min_duration);
  opt.load_pps = in.real(0.0, 30.0);
  opt.n_antennas = static_cast<unsigned>(in.uniform(1, 2));
  opt.implicit_header = in.boolean();
  const std::size_t n_nodes = in.uniform(1, 4);
  for (std::size_t k = 0; k < n_nodes; ++k) {
    sim::NodeConfig node;
    node.id = static_cast<std::uint16_t>(k + 1);
    node.snr_db = in.real(-5.0, 20.0);
    node.cfo_hz = in.real(-sim::kMaxCfoHz, sim::kMaxCfoHz);
    opt.nodes.push_back(node);
  }

  const std::size_t n_stages = in.uniform(0, 4);
  for (std::size_t k = 0; k < n_stages; ++k) {
    impair::ImpairmentConfig cfg;
    switch (in.uniform(0, 5)) {
      case 0:
        cfg.kind = impair::Kind::kPhaseNoise;
        cfg.linewidth_hz = in.real(0.0, 1e5);
        break;
      case 1:
        cfg.kind = impair::Kind::kIqImbalance;
        cfg.gain_db = in.real(-6.0, 6.0);
        cfg.phase_deg = in.real(-45.0, 45.0);
        break;
      case 2:
        cfg.kind = impair::Kind::kQuantize;
        cfg.bits = static_cast<unsigned>(in.uniform(0, 16));
        cfg.full_scale = in.real(0.1, 64.0);
        break;
      case 3:
        cfg.kind = impair::Kind::kClockDrift;
        cfg.ppm = in.real(-500.0, 500.0);
        break;
      case 4:
        cfg.kind = impair::Kind::kInterSf;
        cfg.sf = static_cast<unsigned>(in.uniform(5, 12));
        cfg.pps = in.real(0.0, 50.0);
        cfg.snr_db = in.real(-10.0, 20.0);
        break;
      default:
        cfg.kind = impair::Kind::kDoppler;
        cfg.doppler_hz = in.real(-5e3, 5e3);
        cfg.period_s = in.real(0.1, 20.0);
        break;
    }
    opt.impairments.push_back(cfg);
  }
  if (in.boolean()) {
    sim::TrafficModel tm;
    tm.arrivals = static_cast<sim::Arrivals>(in.uniform(0, 2));
    tm.duty_cycle = in.boolean() ? in.real(0.0, 1.0) : 0.0;
    if (in.boolean()) {
      tm.sf_weights = {{p.sf, in.real(0.1, 1.0)},
                       {static_cast<unsigned>(in.uniform(5, 12)),
                        in.real(0.0, 1.0)}};
    }
    opt.traffic = tm;
  }
  const std::uint64_t seed = in.u64();

  const auto build = [&] {
    Rng rng(seed);
    return sim::build_trace(p, opt, rng);
  };
  const sim::Trace a = build();
  TNB_ORACLE(!a.iq.empty(), "empty trace");
  TNB_ORACLE(a.extra_antennas.size() + 1 == opt.n_antennas ||
                 (opt.n_antennas == 1 && a.extra_antennas.empty()),
             "antenna count mismatch");
  const auto check_finite = [](const IqBuffer& buf) {
    for (const cfloat& v : buf) {
      TNB_ORACLE(std::isfinite(v.real()) && std::isfinite(v.imag()),
                 "non-finite sample in built trace");
    }
  };
  check_finite(a.iq);
  for (const IqBuffer& ant : a.extra_antennas) {
    TNB_ORACLE(ant.size() == a.iq.size(), "antenna length mismatch");
    check_finite(ant);
  }
  for (const sim::TxPacketRecord& rec : a.packets) {
    TNB_ORACLE(rec.start_sample >= 0.0 &&
                   rec.start_sample + static_cast<double>(rec.n_samples) <=
                       static_cast<double>(a.iq.size()) + 1.0,
               "ground-truth record outside the trace");
  }

  const sim::Trace b = build();
  TNB_ORACLE(a.iq == b.iq && a.extra_antennas == b.extra_antennas,
             "same-seed rebuild not bit-identical");
  TNB_ORACLE(a.packets.size() == b.packets.size() &&
                 a.n_foreign == b.n_foreign &&
                 a.duty_dropped == b.duty_dropped,
             "same-seed rebuild ground truth mismatch");
}

// ----------------------------------------------------------------- baselines

void oracle_baseline_receiver_totality(FuzzInput& in) {
  const lora::Params p = arbitrary_params_small(in);
  static constexpr base::Scheme kSchemes[] = {
      base::Scheme::kCoRa, base::Scheme::kCoRaBec, base::Scheme::kCoRaTnB,
      base::Scheme::kLZnThrive};
  const base::Scheme scheme = kSchemes[in.uniform(0, 3)];
  const std::size_t n = static_cast<std::size_t>(in.uniform(0, 24)) * p.sps();
  const IqBuffer iq = arbitrary_iq(in, n);
  const std::uint64_t seed = in.u64();

  const auto run = [&] {
    rx::Receiver r = base::make_receiver(scheme, p);
    Rng rng(seed);
    return r.decode(iq, rng);
  };
  const auto a = run();
  for (const auto& pkt : a) {
    TNB_ORACLE(std::isfinite(pkt.start_sample) && std::isfinite(pkt.cfo_hz),
               "decoded packet with non-finite fields");
    TNB_ORACLE(pkt.payload.size() <= 255, "payload beyond the on-air limit");
  }
  const auto b = run();
  TNB_ORACLE(a.size() == b.size(),
             "baseline decode not deterministic (packet count)");
  for (std::size_t i = 0; i < a.size(); ++i) {
    TNB_ORACLE(a[i].payload == b[i].payload &&
                   a[i].start_sample == b[i].start_sample,
               "baseline decode not deterministic (packet content)");
  }
}

void oracle_lzn_sync_totality(FuzzInput& in) {
  const lora::Params p = arbitrary_params_small(in);
  base::LZnOptions opt;
  opt.refine = in.boolean();
  const std::size_t n = static_cast<std::size_t>(in.uniform(0, 30)) * p.sps();
  const IqBuffer iq = arbitrary_iq(in, n);

  base::LZnSync sync(p, opt);
  const auto a = sync.sync(iq);
  for (const auto& d : a) {
    TNB_ORACLE(std::isfinite(d.t0) && std::isfinite(d.cfo_cycles),
               "detection with non-finite timing/CFO");
    TNB_ORACLE(d.t0 > -static_cast<double>(p.sps()) &&
                   d.t0 < static_cast<double>(iq.size()),
               "detection outside the trace");
    TNB_ORACLE(d.validation_score >= opt.min_validation_score &&
                   d.validation_score <= 12,
               "validation score out of contract");
  }
  const auto b = sync.sync(iq);
  TNB_ORACLE(a.size() == b.size(), "sync not deterministic (count)");
  for (std::size_t i = 0; i < a.size(); ++i) {
    TNB_ORACLE(a[i].t0 == b[i].t0 && a[i].cfo_cycles == b[i].cfo_cycles,
               "sync not deterministic (detection)");
  }
}

void oracle_wire_primitives_roundtrip(FuzzInput& in) {
  // Whitening is an involution on arbitrary bytes.
  std::vector<std::uint8_t> data =
      in.bytes(static_cast<std::size_t>(in.uniform(0, 96)));
  const std::vector<std::uint8_t> orig = data;
  wire::whiten(data);
  wire::whiten(data);
  TNB_ORACLE(data == orig, "wire whitening not an involution");

  // Hamming encode -> data extraction / nearest decode == identity, and
  // single-bit errors are corrected where d_min >= 3 (CR 3-4).
  const unsigned cr = static_cast<unsigned>(in.uniform(1, 4));
  const std::uint8_t nib = static_cast<std::uint8_t>(in.u8() & 0x0F);
  const std::uint8_t cw = wire::wire_encode(nib, cr);
  TNB_ORACLE(wire::wire_data(cw, cr) == nib, "wire_data of a codeword");
  TNB_ORACLE(wire::wire_decode(cw, cr).data == nib, "wire_decode clean");
  if (cr >= 3) {
    const unsigned bit = static_cast<unsigned>(in.uniform(0, 4 + cr - 1));
    const auto fixed =
        wire::wire_decode(static_cast<std::uint8_t>(cw ^ (1u << bit)), cr);
    TNB_ORACLE(fixed.data == nib, "single-bit error not corrected");
  }

  // Diagonal interleaver is a bijection for every supported geometry.
  const unsigned sf_app = static_cast<unsigned>(in.uniform(5, 12));
  const unsigned cwl = 4 + cr;
  std::vector<std::uint8_t> rows(sf_app);
  for (auto& r : rows) {
    r = static_cast<std::uint8_t>(in.u8() & ((1u << cwl) - 1u));
  }
  const auto symbols = wire::wire_interleave(rows, sf_app, cwl);
  TNB_ORACLE(wire::wire_deinterleave(symbols, sf_app, cwl) == rows,
             "wire interleaver round trip");

  // Gray +1 shift mapping: symbol -> shift -> symbol == identity; the
  // reduced-rate truncation absorbs +1 and +2 bin offsets.
  const unsigned sf = static_cast<unsigned>(in.uniform(5, 12));
  const std::uint32_t n = 1u << sf;
  const std::uint32_t v = static_cast<std::uint32_t>(in.u64(4)) & (n - 1u);
  TNB_ORACLE(wire::wire_symbol_for_bin(wire::wire_shift_for_symbol(v, sf, false),
                                       sf, false) == v,
             "wire gray round trip");
  if (sf >= 7) {
    const std::uint32_t vr = v & ((n >> 2) - 1u);
    const std::uint32_t shift = wire::wire_shift_for_symbol(vr, sf, true);
    const std::uint32_t off = static_cast<std::uint32_t>(in.uniform(0, 2));
    TNB_ORACLE(wire::wire_symbol_for_bin((shift + off) & (n - 1u), sf, true) ==
                   vr,
               "reduced-rate gray round trip");
  }

  // Header serialize/parse fixpoint for in-contract fields.
  wire::WireHeader h;
  h.payload_len = static_cast<std::uint8_t>(in.uniform(1, 255));
  h.cr = static_cast<std::uint8_t>(in.uniform(1, 4));
  h.has_crc = in.boolean();
  const auto parsed = wire::parse_wire_header(wire::wire_header_nibbles(h));
  TNB_ORACLE(parsed.has_value() && parsed->payload_len == h.payload_len &&
                 parsed->cr == h.cr && parsed->has_crc == h.has_crc,
             "wire header not a serialize/parse fixpoint");
}

namespace {

/// Fuzz-chosen wire codec configuration (valid by construction).
rx::CodecConfig arbitrary_wire_config(FuzzInput& in, std::size_t app_len) {
  rx::CodecConfig cfg;
  cfg.params.sf = static_cast<unsigned>(in.uniform(5, 12));
  cfg.params.cr = static_cast<unsigned>(in.uniform(1, 4));
  cfg.params.ldro = cfg.params.sf >= 8 && in.boolean();
  cfg.params.osf = 1;
  cfg.use_bec = in.boolean();
  if (in.boolean()) {
    cfg.implicit_header =
        rx::ImplicitHeader{static_cast<std::uint8_t>(app_len + 2),
                           static_cast<std::uint8_t>(cfg.params.cr)};
  }
  return cfg;
}

}  // namespace

void oracle_wire_codec_roundtrip(FuzzInput& in) {
  const std::size_t app_len = static_cast<std::size_t>(in.uniform(1, 48));
  const rx::CodecConfig cfg = arbitrary_wire_config(in, app_len);
  const wire::WireCodec codec(cfg);
  std::vector<std::uint8_t> app = in.bytes(app_len);
  app.resize(app_len, 0);

  const auto shifts = codec.encode_shifts(app);
  TNB_ORACLE(shifts.size() == codec.frame_symbols(app.size()),
             "encode_shifts size != frame_symbols");
  const std::uint32_t n_bins = 1u << cfg.params.sf;
  for (std::uint32_t s : shifts) {
    TNB_ORACLE(s < n_bins, "shift out of bin range");
  }

  lora::Header h;
  if (cfg.implicit_header.has_value()) {
    const auto ih = codec.implicit_header();
    TNB_ORACLE(ih.has_value(), "implicit config without implicit_header()");
    h = *ih;
  } else {
    const auto hdr = codec.decode_header(
        std::span<const std::uint32_t>(shifts).first(8), nullptr);
    TNB_ORACLE(hdr.has_value(), "clean wire header failed to decode");
    TNB_ORACLE(hdr->payload_len == app.size() + 2, "wire header length");
    h = *hdr;
  }
  TNB_ORACLE(codec.header_symbols() + codec.payload_symbols(h) == shifts.size(),
             "frame symbol accounting");

  Rng rng(in.u64(4));
  const auto r = codec.decode_frame(shifts, h, rng, nullptr);
  TNB_ORACLE(r.ok, "clean wire frame failed to decode");
  TNB_ORACLE(r.payload == app, "wire codec round trip");
}

void oracle_wire_codec_totality(FuzzInput& in) {
  const std::size_t app_len = static_cast<std::size_t>(in.uniform(1, 32));
  const rx::CodecConfig cfg = arbitrary_wire_config(in, app_len);
  const wire::WireCodec codec(cfg);
  const std::uint32_t n_bins = 1u << cfg.params.sf;

  lora::Header h;
  if (const auto ih = codec.implicit_header(); ih.has_value()) {
    h = *ih;
  } else {
    h.payload_len = static_cast<std::uint8_t>(app_len + 2);
    h.cr = static_cast<std::uint8_t>(cfg.params.cr);
    h.has_crc = true;
  }
  const std::size_t n_syms = codec.header_symbols() + codec.payload_symbols(h);
  std::vector<std::uint32_t> bins(n_syms);
  for (auto& b : bins) {
    b = static_cast<std::uint32_t>(in.u64(4)) & (n_bins - 1u);
  }
  // Arbitrary bins: decode_header may reject, decode_frame may fail, but
  // neither may crash, and an accepted frame has a consistent payload.
  if (!cfg.implicit_header.has_value()) {
    (void)codec.decode_header(std::span<const std::uint32_t>(bins).first(8),
                              nullptr);
    (void)codec.peek_frame_symbols(
        std::span<const std::uint32_t>(bins).first(8));
  }
  Rng rng(in.u64(4));
  const auto r = codec.decode_frame(bins, h, rng, nullptr);
  if (r.ok) {
    const std::size_t wire_len =
        h.has_crc ? (h.payload_len >= 2 ? h.payload_len - 2u : 0u)
                  : h.payload_len;
    TNB_ORACLE(r.payload.size() == wire_len, "accepted frame length");
  }
}

}  // namespace tnb::testing
