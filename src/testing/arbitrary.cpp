#include "testing/arbitrary.hpp"

#include <algorithm>

namespace tnb::testing {

lora::Params arbitrary_params(FuzzInput& in) {
  lora::Params p;
  p.sf = static_cast<unsigned>(in.uniform(5, 12));
  p.cr = static_cast<unsigned>(in.uniform(1, 4));
  static constexpr unsigned kOsf[] = {1, 2, 4, 8};
  p.osf = kOsf[in.uniform(0, 3)];
  p.ldro = p.sf >= 8 && in.boolean();
  p.validate();
  return p;
}

lora::Params arbitrary_params_small(FuzzInput& in) {
  lora::Params p;
  p.sf = static_cast<unsigned>(in.uniform(7, 8));
  p.cr = static_cast<unsigned>(in.uniform(1, 4));
  p.osf = 1;
  p.ldro = p.sf >= 8 && in.boolean();
  p.validate();
  return p;
}

lora::Header arbitrary_header(FuzzInput& in) {
  lora::Header h;
  h.payload_len = in.u8();
  h.cr = static_cast<std::uint8_t>(in.uniform(1, 4));
  h.has_crc = in.boolean();
  return h;
}

std::vector<std::uint8_t> arbitrary_payload(FuzzInput& in,
                                            std::size_t max_bytes) {
  const std::size_t n = static_cast<std::size_t>(
      in.uniform(1, std::min<std::uint64_t>(max_bytes, 253)));
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = in.u8();
  return out;
}

std::vector<std::size_t> corrupt_symbols(std::vector<std::uint32_t>& symbols,
                                         unsigned sf, FuzzInput& in,
                                         std::size_t max_symbols) {
  std::vector<std::size_t> hit;
  if (symbols.empty() || max_symbols == 0) return hit;
  const std::uint32_t mask = (1u << sf) - 1u;
  const std::size_t n = static_cast<std::size_t>(in.uniform(0, max_symbols));
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t idx =
        static_cast<std::size_t>(in.uniform(0, symbols.size() - 1));
    const std::uint32_t x = static_cast<std::uint32_t>(in.uniform(1, mask));
    symbols[idx] ^= x;
    if (std::find(hit.begin(), hit.end(), idx) == hit.end()) hit.push_back(idx);
  }
  return hit;
}

void corrupt_block_columns(std::vector<std::uint8_t>& rows,
                           const std::vector<unsigned>& cols, FuzzInput& in) {
  for (unsigned c : cols) {
    bool any = false;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      // Force at least one flip in the column (otherwise it would not be
      // an error column): the last row flips when nothing else did.
      const bool flip = (r + 1 == rows.size() && !any) ? true : in.boolean();
      if (flip) {
        rows[r] ^= static_cast<std::uint8_t>(1u << c);
        any = true;
      }
    }
  }
}

std::vector<unsigned> arbitrary_columns(FuzzInput& in, unsigned cr,
                                        unsigned n_cols) {
  const unsigned cols = 4 + cr;
  std::vector<unsigned> all(cols);
  for (unsigned c = 0; c < cols; ++c) all[c] = c;
  // Partial Fisher-Yates driven by the input bytes.
  std::vector<unsigned> out;
  for (unsigned k = 0; k < n_cols && k < cols; ++k) {
    const unsigned j =
        static_cast<unsigned>(in.uniform(k, cols - 1));
    std::swap(all[k], all[j]);
    out.push_back(all[k]);
  }
  return out;
}

}  // namespace tnb::testing
