#include "wire/wire_codec.hpp"

#include <algorithm>
#include <stdexcept>

namespace tnb::wire {
namespace {

/// On-air symbol values of one block of raw bins.
std::vector<std::uint32_t> bins_to_symbols(std::span<const std::uint32_t> bins,
                                           unsigned sf, bool reduced) {
  std::vector<std::uint32_t> values(bins.size());
  for (std::size_t i = 0; i < bins.size(); ++i) {
    values[i] = wire_symbol_for_bin(bins[i], sf, reduced);
  }
  return values;
}

/// Nearest-codeword data nibbles of a block's rows (the non-BEC decode and
/// the baseline for rescued-codeword accounting).
std::vector<std::uint8_t> default_nibbles(std::span<const std::uint8_t> rows,
                                          unsigned cr) {
  std::vector<std::uint8_t> nibbles(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    nibbles[r] = wire_decode(rows[r], cr).data;
  }
  return nibbles;
}

}  // namespace

WireCodec::WireCodec(const rx::CodecConfig& cfg) : cfg_(cfg) {
  cfg_.params.validate();
}

std::size_t WireCodec::header_symbols() const {
  return cfg_.implicit_header.has_value() ? 0 : 8;
}

std::optional<lora::Header> WireCodec::implicit_header() const {
  if (!cfg_.implicit_header.has_value()) return std::nullopt;
  lora::Header h;
  h.payload_len = cfg_.implicit_header->payload_len;
  h.cr = cfg_.implicit_header->cr;
  h.has_crc = true;
  return h;
}

WireLayout WireCodec::layout_for(const lora::Header& h) const {
  WireLayout l;
  l.sf = cfg_.params.sf;
  l.ldro = cfg_.params.ldro;
  l.explicit_header = !cfg_.implicit_header.has_value();
  l.cr = h.cr;
  l.has_crc = h.has_crc;
  // payload_len includes the CRC16 (receiver-wide convention); a degenerate
  // implicit config shorter than the CRC gets a zero-byte wire payload.
  l.wire_len = h.has_crc ? (h.payload_len >= 2 ? h.payload_len - 2u : 0u)
                         : h.payload_len;
  return l;
}

WireLayout WireCodec::tx_layout(std::size_t app_bytes) const {
  WireLayout l;
  l.sf = cfg_.params.sf;
  l.ldro = cfg_.params.ldro;
  l.explicit_header = !cfg_.implicit_header.has_value();
  l.cr = cfg_.implicit_header.has_value() ? cfg_.implicit_header->cr
                                          : cfg_.params.cr;
  l.has_crc = true;
  l.wire_len = app_bytes;
  return l;
}

std::vector<std::uint8_t> WireCodec::block0_rows(
    std::span<const std::uint32_t> bins) const {
  WireLayout l;
  l.sf = cfg_.params.sf;
  const std::vector<std::uint32_t> values =
      bins_to_symbols(bins.first(8), l.sf, l.reduced0());
  return wire_deinterleave(values, l.sf_app0(), 8);
}

std::optional<lora::Header> WireCodec::decode_header(
    std::span<const std::uint32_t> bins, rx::BecStats* stats) const {
  if (bins.size() < 8) return std::nullopt;
  const std::vector<std::uint8_t> rows = block0_rows(bins);
  const unsigned sf_app = static_cast<unsigned>(rows.size());

  const auto to_header = [](const WireHeader& wh) -> std::optional<lora::Header> {
    const unsigned on_air = wh.payload_len + (wh.has_crc ? 2u : 0u);
    if (on_air > 255) return std::nullopt;  // would overflow the length byte
    lora::Header h;
    h.payload_len = static_cast<std::uint8_t>(on_air);
    h.cr = wh.cr;
    h.has_crc = wh.has_crc;
    return h;
  };

  if (cfg_.use_bec) {
    const rx::Bec bec(sf_app, 4, wire_codewords(4));
    for (const auto& cand : bec.decode_block(rows, stats)) {
      std::vector<std::uint8_t> nibbles(5);
      for (unsigned r = 0; r < 5; ++r) nibbles[r] = wire_data(cand[r], 4);
      const auto wh = parse_wire_header(nibbles);
      if (wh.has_value()) {
        const auto h = to_header(*wh);
        if (h.has_value()) return h;
      }
    }
    return std::nullopt;
  }
  const std::vector<std::uint8_t> nibbles = default_nibbles(rows, 4);
  const auto wh = parse_wire_header(std::span(nibbles).first(5));
  if (!wh.has_value()) return std::nullopt;
  return to_header(*wh);
}

std::size_t WireCodec::payload_symbols(const lora::Header& h) const {
  return layout_for(h).total_symbols() - header_symbols();
}

rx::FrameDecodeResult WireCodec::decode_frame(
    std::span<const std::uint32_t> bins, const lora::Header& h, Rng& rng,
    rx::BecStats* stats) const {
  rx::FrameDecodeResult result;
  const WireLayout l = layout_for(h);
  if (bins.size() < l.total_symbols()) return result;

  // Deinterleave every block into codeword rows.
  std::vector<std::vector<std::uint8_t>> block_rows;
  std::vector<unsigned> block_cr;
  block_rows.push_back(block0_rows(bins));
  block_cr.push_back(4);
  const unsigned cwl = 4 + l.cr;
  for (std::size_t b = 0; b < l.blocks_rest(); ++b) {
    const auto values = bins_to_symbols(bins.subspan(8 + b * cwl, cwl), l.sf,
                                        l.reduced_rest());
    block_rows.push_back(wire_deinterleave(values, l.rows_rest(), cwl));
    block_cr.push_back(l.cr);
  }

  // Candidate decodings per block (BEC repair or nearest-codeword only).
  std::vector<std::vector<std::vector<std::uint8_t>>> candidates;
  std::vector<std::vector<std::uint8_t>> defaults;
  for (std::size_t b = 0; b < block_rows.size(); ++b) {
    defaults.push_back(default_nibbles(block_rows[b], block_cr[b]));
    if (cfg_.use_bec) {
      const rx::Bec bec(static_cast<unsigned>(block_rows[b].size()),
                        block_cr[b], wire_codewords(block_cr[b]));
      candidates.push_back(bec.decode_block(block_rows[b], stats));
    } else {
      std::vector<std::uint8_t> cleaned(block_rows[b].size());
      for (std::size_t r = 0; r < block_rows[b].size(); ++r) {
        cleaned[r] = wire_decode(block_rows[b][r], block_cr[b]).codeword;
      }
      candidates.push_back({std::move(cleaned)});
    }
  }

  // Assembles the nibble stream of one candidate combination and checks the
  // payload CRC16 (mirrors rx::decode_payload_bec::try_combo).
  auto try_combo = [&](std::span<const std::size_t> combo) -> bool {
    std::vector<std::uint8_t> nibbles;
    nibbles.reserve(l.nib_total());
    for (std::size_t b = 0; b < candidates.size(); ++b) {
      const auto& rows = candidates[b][combo[b]];
      const std::size_t first = b == 0 && l.explicit_header ? 5 : 0;
      for (std::size_t r = first; r < rows.size(); ++r) {
        nibbles.push_back(wire_data(rows[r], block_cr[b]));
      }
    }
    if (nibbles.size() < l.nib_total()) return false;
    nibbles.resize(l.nib_total());

    std::vector<std::uint8_t> bytes(l.wire_len);
    for (std::size_t i = 0; i < l.wire_len; ++i) {
      bytes[i] = static_cast<std::uint8_t>((nibbles[2 * i] & 0x0F) |
                                           ((nibbles[2 * i + 1] & 0x0F) << 4));
    }
    whiten(bytes);  // involution: recover the application payload
    if (l.has_crc) {
      const std::size_t c = 2 * l.wire_len;
      const std::uint16_t rx_crc = static_cast<std::uint16_t>(
          (nibbles[c] & 0x0F) | ((nibbles[c + 1] & 0x0F) << 4) |
          ((nibbles[c + 2] & 0x0F) << 8) | ((nibbles[c + 3] & 0x0F) << 12));
      if (stats != nullptr) ++stats->crc_checks;
      if (payload_crc16(bytes) != rx_crc) return false;
    }

    result.ok = true;
    result.payload = std::move(bytes);
    result.rescued_codewords = 0;
    for (std::size_t b = 0; b < candidates.size(); ++b) {
      const auto& rows = candidates[b][combo[b]];
      for (std::size_t r = 0; r < rows.size(); ++r) {
        if (wire_data(rows[r], block_cr[b]) != defaults[b][r]) {
          ++result.rescued_codewords;
        }
      }
    }
    return true;
  };

  std::size_t total = 1;
  bool overflow = false;
  for (const auto& c : candidates) {
    if (total > 1'000'000 / std::max<std::size_t>(c.size(), 1)) {
      overflow = true;
      break;
    }
    total *= c.size();
  }
  const std::size_t w = rx::bec_w_budget(l.cr);

  std::vector<std::size_t> combo(candidates.size(), 0);
  if (!l.has_crc) {
    // Nothing to arbitrate with: take the default decode as-is.
    try_combo(combo);
    return result;
  }
  if (!overflow && total <= w) {
    for (std::size_t it = 0; it < total; ++it) {
      if (try_combo(combo)) return result;
      for (std::size_t b = 0; b < combo.size(); ++b) {
        if (++combo[b] < candidates[b].size()) break;
        combo[b] = 0;
      }
    }
    return result;
  }
  if (try_combo(combo)) return result;
  for (std::size_t it = 1; it < w; ++it) {
    for (std::size_t b = 0; b < combo.size(); ++b) {
      combo[b] = rng.uniform_index(candidates[b].size());
    }
    if (try_combo(combo)) return result;
  }
  return result;
}

std::optional<std::size_t> WireCodec::peek_frame_symbols(
    std::span<const std::uint32_t> header_bins) const {
  if (cfg_.implicit_header.has_value() || header_bins.size() < 8) {
    return std::nullopt;
  }
  const std::vector<std::uint8_t> rows = block0_rows(header_bins);
  const std::vector<std::uint8_t> nibbles = default_nibbles(rows, 4);
  const auto wh = parse_wire_header(std::span(nibbles).first(5));
  if (!wh.has_value()) return std::nullopt;
  WireLayout l;
  l.sf = cfg_.params.sf;
  l.ldro = cfg_.params.ldro;
  l.explicit_header = true;
  l.cr = wh->cr;
  l.has_crc = wh->has_crc;
  l.wire_len = wh->payload_len;
  return l.total_symbols();
}

std::vector<std::uint32_t> WireCodec::encode_shifts(
    std::span<const std::uint8_t> app_bytes) const {
  if (app_bytes.size() > 253) {
    throw std::invalid_argument("WireCodec::encode_shifts: payload too long");
  }
  const WireLayout l = tx_layout(app_bytes.size());

  // Whitened payload nibbles (low nibble first) plus the raw CRC nibbles.
  std::vector<std::uint8_t> whitened(app_bytes.begin(), app_bytes.end());
  whiten(whitened);
  std::vector<std::uint8_t> nibbles;
  nibbles.reserve(l.nib_total());
  for (std::uint8_t b : whitened) {
    nibbles.push_back(b & 0x0F);
    nibbles.push_back(static_cast<std::uint8_t>(b >> 4));
  }
  const std::uint16_t crc = payload_crc16(app_bytes);
  for (unsigned s = 0; s < 16; s += 4) {
    nibbles.push_back(static_cast<std::uint8_t>((crc >> s) & 0x0F));
  }

  std::vector<std::uint32_t> shifts;
  shifts.reserve(l.total_symbols());
  std::size_t next = 0;
  const auto take = [&]() -> std::uint8_t {
    return next < nibbles.size() ? nibbles[next++] : 0;
  };

  // Block 0: header rows (explicit mode) then payload rows, always CR 4/8.
  std::vector<std::uint8_t> rows(l.sf_app0());
  std::size_t r0 = 0;
  if (l.explicit_header) {
    WireHeader wh;
    wh.payload_len = static_cast<std::uint8_t>(l.wire_len);
    wh.cr = static_cast<std::uint8_t>(l.cr);
    wh.has_crc = l.has_crc;
    const auto hn = wire_header_nibbles(wh);
    for (; r0 < 5; ++r0) rows[r0] = wire_encode(hn[r0], 4);
  }
  for (; r0 < rows.size(); ++r0) rows[r0] = wire_encode(take(), 4);
  for (std::uint32_t v : wire_interleave(rows, l.sf_app0(), 8)) {
    shifts.push_back(wire_shift_for_symbol(v, l.sf, l.reduced0()));
  }

  // Rest blocks at the configured coding rate.
  const unsigned cwl = 4 + l.cr;
  for (std::size_t b = 0; b < l.blocks_rest(); ++b) {
    std::vector<std::uint8_t> rrows(l.rows_rest());
    for (auto& row : rrows) row = wire_encode(take(), l.cr);
    for (std::uint32_t v : wire_interleave(rrows, l.rows_rest(), cwl)) {
      shifts.push_back(wire_shift_for_symbol(v, l.sf, l.reduced_rest()));
    }
  }
  return shifts;
}

std::size_t WireCodec::frame_symbols(std::size_t app_bytes) const {
  return tx_layout(app_bytes).total_symbols();
}

rx::CodecFactory wire_codec_factory() {
  return [](const rx::CodecConfig& cfg) -> std::unique_ptr<const rx::FrameCodec> {
    return std::make_unique<WireCodec>(cfg);
  };
}

}  // namespace tnb::wire
