#include "wire/wire_format.hpp"

#include <bit>
#include <stdexcept>

#include "lora/gray.hpp"

namespace tnb::wire {

std::vector<std::uint8_t> whitening_sequence(std::size_t n) {
  std::vector<std::uint8_t> seq(n);
  std::uint8_t s = 0xFF;
  for (std::size_t i = 0; i < n; ++i) {
    seq[i] = s;
    s = whitening_next(s);
  }
  return seq;
}

void whiten(std::span<std::uint8_t> bytes) {
  std::uint8_t s = 0xFF;
  for (std::uint8_t& b : bytes) {
    b ^= s;
    s = whitening_next(s);
  }
}

std::uint16_t payload_crc16(std::span<const std::uint8_t> payload) {
  const auto step = [](std::uint16_t crc, std::uint8_t byte) {
    crc = static_cast<std::uint16_t>(crc ^ (static_cast<std::uint16_t>(byte) << 8));
    for (int b = 0; b < 8; ++b) {
      crc = static_cast<std::uint16_t>((crc & 0x8000) != 0 ? (crc << 1) ^ 0x1021
                                                           : crc << 1);
    }
    return crc;
  };
  std::uint16_t crc = 0;
  if (payload.size() < 2) {
    for (std::uint8_t b : payload) crc = step(crc, b);
    return crc;
  }
  for (std::size_t i = 0; i + 2 < payload.size(); ++i) crc = step(crc, payload[i]);
  // SX127x quirk: the last two bytes are mixed in raw instead of shifted
  // through the polynomial.
  crc = static_cast<std::uint16_t>(
      crc ^ payload[payload.size() - 1] ^
      (static_cast<std::uint16_t>(payload[payload.size() - 2]) << 8));
  return crc;
}

std::uint8_t wire_encode(std::uint8_t nibble, unsigned cr) {
  if (cr < 1 || cr > 4) throw std::invalid_argument("wire_encode: CR must be 1..4");
  const unsigned n = nibble & 0x0F;
  const unsigned d0 = n & 1, d1 = (n >> 1) & 1, d2 = (n >> 2) & 1, d3 = (n >> 3) & 1;
  if (cr == 1) {
    const unsigned p = d0 ^ d1 ^ d2 ^ d3;
    return static_cast<std::uint8_t>((n << 1) | p);
  }
  const unsigned p0 = d3 ^ d2 ^ d1;
  const unsigned p1 = d2 ^ d1 ^ d0;
  const unsigned p2 = d3 ^ d2 ^ d0;
  const unsigned p3 = d3 ^ d1 ^ d0;
  const unsigned full8 = (n << 4) | (p0 << 3) | (p1 << 2) | (p2 << 1) | p3;
  return static_cast<std::uint8_t>(full8 >> (4 - cr));
}

const std::array<std::uint8_t, 16>& wire_codewords(unsigned cr) {
  static const auto tables = [] {
    std::array<std::array<std::uint8_t, 16>, 5> t{};
    for (unsigned c = 1; c <= 4; ++c) {
      for (unsigned d = 0; d < 16; ++d) {
        t[c][d] = wire_encode(static_cast<std::uint8_t>(d), c);
      }
    }
    return t;
  }();
  if (cr < 1 || cr > 4) throw std::invalid_argument("wire_codewords: CR must be 1..4");
  return tables[cr];
}

WireDecode wire_decode(std::uint8_t received, unsigned cr) {
  const auto& book = wire_codewords(cr);
  WireDecode best;
  unsigned best_dist = 9;
  for (unsigned d = 0; d < 16; ++d) {
    const unsigned dist = static_cast<unsigned>(
        std::popcount(static_cast<unsigned>(received ^ book[d])));
    if (dist < best_dist) {
      best_dist = dist;
      best.data = static_cast<std::uint8_t>(d);
      best.codeword = book[d];
    }
  }
  return best;
}

std::vector<std::uint32_t> wire_interleave(
    std::span<const std::uint8_t> codewords, unsigned sf_app, unsigned cw_len) {
  if (codewords.size() != sf_app) {
    throw std::invalid_argument("wire_interleave: need sf_app codewords");
  }
  std::vector<std::uint32_t> symbols(cw_len, 0);
  for (unsigned i = 0; i < cw_len; ++i) {
    for (unsigned j = 0; j < sf_app; ++j) {
      const unsigned r = (i + sf_app - 1 - (j % sf_app)) % sf_app;  // (i-j-1) mod sf_app
      const unsigned bit = (codewords[r] >> (cw_len - 1 - i)) & 1u;
      symbols[i] |= bit << (sf_app - 1 - j);
    }
  }
  return symbols;
}

std::vector<std::uint8_t> wire_deinterleave(
    std::span<const std::uint32_t> symbols, unsigned sf_app, unsigned cw_len) {
  if (symbols.size() != cw_len) {
    throw std::invalid_argument("wire_deinterleave: need cw_len symbols");
  }
  std::vector<std::uint8_t> codewords(sf_app, 0);
  for (unsigned i = 0; i < cw_len; ++i) {
    for (unsigned j = 0; j < sf_app; ++j) {
      const unsigned r = (i + sf_app - 1 - (j % sf_app)) % sf_app;
      const unsigned bit = (symbols[i] >> (sf_app - 1 - j)) & 1u;
      codewords[r] = static_cast<std::uint8_t>(codewords[r] |
                                               (bit << (cw_len - 1 - i)));
    }
  }
  return codewords;
}

std::uint32_t wire_shift_for_symbol(std::uint32_t v, unsigned sf, bool reduced) {
  const std::uint32_t n = 1u << sf;
  const std::uint32_t g = lora::gray_decode(v);
  const std::uint32_t shift = reduced ? g * 4 + 1 : g + 1;
  return shift & (n - 1);
}

std::uint32_t wire_symbol_for_bin(std::uint32_t bin, unsigned sf, bool reduced) {
  const std::uint32_t n = 1u << sf;
  const std::uint32_t x = (bin + n - 1) & (n - 1);  // (bin - 1) mod 2^sf
  return lora::gray_encode(reduced ? x >> 2 : x);
}

std::array<std::uint8_t, 5> wire_header_nibbles(const WireHeader& h) {
  const unsigned len = h.payload_len;
  std::array<std::uint8_t, 5> n{};
  n[0] = static_cast<std::uint8_t>(len >> 4);
  n[1] = static_cast<std::uint8_t>(len & 0x0F);
  n[2] = static_cast<std::uint8_t>(((h.cr & 0x7) << 1) | (h.has_crc ? 1 : 0));
  const auto bit = [&](unsigned nibble, unsigned b) -> unsigned {
    return (n[nibble] >> b) & 1u;
  };
  const unsigned c4 = bit(0, 3) ^ bit(0, 2) ^ bit(0, 1) ^ bit(0, 0);
  const unsigned c3 = bit(0, 3) ^ bit(1, 3) ^ bit(1, 2) ^ bit(1, 1) ^ bit(2, 0);
  const unsigned c2 = bit(0, 2) ^ bit(1, 3) ^ bit(1, 0) ^ bit(2, 3) ^ bit(2, 1);
  const unsigned c1 = bit(0, 1) ^ bit(1, 2) ^ bit(1, 0) ^ bit(2, 2) ^ bit(2, 1) ^
                      bit(2, 0);
  const unsigned c0 = bit(0, 0) ^ bit(1, 1) ^ bit(2, 3) ^ bit(2, 2) ^ bit(2, 1) ^
                      bit(2, 0);
  n[3] = static_cast<std::uint8_t>(c4);
  n[4] = static_cast<std::uint8_t>((c3 << 3) | (c2 << 2) | (c1 << 1) | c0);
  return n;
}

std::optional<WireHeader> parse_wire_header(std::span<const std::uint8_t> nibbles) {
  if (nibbles.size() < 5) return std::nullopt;
  WireHeader h;
  h.payload_len = static_cast<std::uint8_t>(((nibbles[0] & 0x0F) << 4) |
                                            (nibbles[1] & 0x0F));
  h.cr = static_cast<std::uint8_t>((nibbles[2] >> 1) & 0x7);
  h.has_crc = (nibbles[2] & 1) != 0;
  if (h.cr < 1 || h.cr > 4) return std::nullopt;
  if (h.payload_len < 1) return std::nullopt;
  const auto expect = wire_header_nibbles(h);
  if ((nibbles[3] & 0x01) != expect[3]) return std::nullopt;
  if ((nibbles[4] & 0x0F) != expect[4]) return std::nullopt;
  return h;
}

}  // namespace tnb::wire
