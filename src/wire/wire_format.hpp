// gr-lora-sdr-compatible wire-format primitives (DESIGN.md "Wire format").
//
// Real LoRa transmitters (SX127x/SX126x, and the gr-lora-sdr / lora-lite-phy
// software implementations this module mirrors — SNIPPETS.md snippets 1-3)
// use different coding conventions than the paper's simplified frame format:
//
//   * Gray mapping with a +1 chirp-shift offset; reduced-rate blocks
//     (the sf_app = sf-2 header block, and every block under LDRO) multiply
//     the Gray-decoded symbol by 4 so the two LSBs of the shift are dead.
//   * A diagonal interleaver: on-air symbol i carries bit i (MSB-first) of
//     every codeword, rotated down the rows — so a corrupted symbol still
//     corrupts exactly one bit position of every codeword, which is the
//     column error model TnB's BEC is built on.
//   * MSB-first Hamming: codeword = d3 d2 d1 d0 p0 p1 p2 p3 truncated to
//     4+CR bits; CR 4/5 replaces p0 with the overall parity (even-weight
//     code, detection only), CR 4/7-4/8 correct single errors.
//   * The SX127x 8-bit whitening LFSR (x^8+x^6+x^5+x^4+1, seed 0xFF)
//     applied to payload bytes only — header and CRC16 go out raw.
//   * An explicit header of 5 nibbles (length, CR, CRC flag, 5-bit
//     checksum) carried in the first rows of the reduced-rate first block.
//   * Payload CRC16 (poly 0x1021, init 0) over all but the last two bytes,
//     then XORed with the last two bytes, appended low-nibble-first.
//
// Everything here is pure bit manipulation; wire_codec.hpp assembles these
// into the FrameCodec the receivers consume.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace tnb::wire {

// ---------------------------------------------------------------- whitening

/// Advances the SX127x whitening LFSR by one byte-step.
constexpr std::uint8_t whitening_next(std::uint8_t s) {
  const unsigned fb = ((s >> 7) ^ (s >> 5) ^ (s >> 4) ^ (s >> 3)) & 1u;
  return static_cast<std::uint8_t>(((s << 1) | fb) & 0xFF);
}

/// First `n` bytes of the whitening sequence (0xFF, 0xFE, 0xFC, ...).
std::vector<std::uint8_t> whitening_sequence(std::size_t n);

/// XORs `bytes` with the whitening sequence in place (an involution).
void whiten(std::span<std::uint8_t> bytes);

// ------------------------------------------------------------------- CRC16

/// Payload CRC16: poly 0x1021, init 0x0000 over payload[0..n-2), then XORed
/// with the last two payload bytes (the SX127x quirk). Payloads under two
/// bytes get the plain CRC of all bytes.
std::uint16_t payload_crc16(std::span<const std::uint8_t> payload);

// ----------------------------------------------------------------- Hamming

/// Encodes a data nibble into a (4+cr)-bit wire codeword, MSB-first
/// d3 d2 d1 d0 parity... (CR 1 is data + overall parity).
std::uint8_t wire_encode(std::uint8_t nibble, unsigned cr);

/// Data nibble of a wire codeword (the top 4 of its 4+cr bits).
constexpr std::uint8_t wire_data(std::uint8_t codeword, unsigned cr) {
  return static_cast<std::uint8_t>((codeword >> cr) & 0x0F);
}

/// The 16 wire codewords of a coding rate, indexed by data nibble.
const std::array<std::uint8_t, 16>& wire_codewords(unsigned cr);

/// Nearest-codeword decode (Hamming distance; ties break to the smallest
/// data nibble, matching the paper decoder's scan order). CR >= 3
/// guarantees single-error correction; CR 1-2 only detect.
struct WireDecode {
  std::uint8_t data = 0;
  std::uint8_t codeword = 0;
};
WireDecode wire_decode(std::uint8_t received, unsigned cr);

// -------------------------------------------------------------- interleaver

/// Diagonal interleave: `codewords` holds sf_app rows of cw_len bits;
/// returns cw_len on-air symbol values of sf_app bits each. Symbol i bit j
/// (MSB-first) is bit i (MSB-first) of codeword (i - j - 1) mod sf_app.
std::vector<std::uint32_t> wire_interleave(
    std::span<const std::uint8_t> codewords, unsigned sf_app, unsigned cw_len);

/// Inverse of wire_interleave: cw_len symbols -> sf_app codeword rows.
/// One corrupted symbol corrupts one bit position of every row.
std::vector<std::uint8_t> wire_deinterleave(
    std::span<const std::uint32_t> symbols, unsigned sf_app, unsigned cw_len);

// ------------------------------------------------------------ gray mapping

/// Chirp shift of an on-air symbol value: gray-decode, +1 offset, times 4
/// on reduced-rate blocks (sf_app = sf - 2).
std::uint32_t wire_shift_for_symbol(std::uint32_t v, unsigned sf, bool reduced);

/// On-air symbol value of a demodulated peak bin (inverse of
/// wire_shift_for_symbol; the /4 truncates, absorbing +1/+2-bin errors on
/// reduced-rate blocks).
std::uint32_t wire_symbol_for_bin(std::uint32_t bin, unsigned sf, bool reduced);

// ------------------------------------------------------------------ header

struct WireHeader {
  std::uint8_t payload_len = 0;  ///< wire length: app bytes EXCLUDING CRC16
  std::uint8_t cr = 1;
  bool has_crc = true;
};

/// The 5 on-air header nibbles: len_hi, len_lo, (cr << 1) | has_crc, then
/// the 5-bit checksum split c4 / c3c2c1c0.
std::array<std::uint8_t, 5> wire_header_nibbles(const WireHeader& h);

/// Parses and validates 5 header nibbles: checksum must match, CR in 1..4,
/// length >= 1.
std::optional<WireHeader> parse_wire_header(std::span<const std::uint8_t> nibbles);

// ------------------------------------------------------------ frame layout

/// Symbol/nibble layout of one wire frame. Block 0 is always 8 symbols at
/// CR 4/8, reduced-rate (sf_app = sf - 2) for SF >= 7; in explicit-header
/// mode its first 5 rows carry the header nibbles and the rest the first
/// payload nibbles. Remaining blocks run at the configured CR, reduced only
/// under LDRO.
struct WireLayout {
  unsigned sf = 7;
  unsigned cr = 1;          ///< payload coding rate
  bool ldro = false;
  bool explicit_header = true;
  bool has_crc = true;
  std::size_t wire_len = 0;  ///< payload bytes excluding CRC16

  unsigned sf_app0() const { return sf >= 7 ? sf - 2 : sf; }
  bool reduced0() const { return sf >= 7; }
  unsigned rows_rest() const { return ldro ? sf - 2 : sf; }
  bool reduced_rest() const { return ldro; }

  /// Total payload nibbles: 2 per byte plus 4 raw CRC nibbles.
  std::size_t nib_total() const {
    return 2 * wire_len + (has_crc ? 4 : 0);
  }
  /// Payload nibbles carried by block 0 (after the 5 header rows).
  std::size_t nib0() const {
    return sf_app0() - (explicit_header ? 5u : 0u);
  }
  std::size_t blocks_rest() const {
    const std::size_t total = nib_total();
    const std::size_t first = nib0();
    if (total <= first) return 0;
    return (total - first + rows_rest() - 1) / rows_rest();
  }
  /// Total data symbols: the 8-symbol first block plus (4+cr) per rest block.
  std::size_t total_symbols() const { return 8 + blocks_rest() * (4 + cr); }
};

}  // namespace tnb::wire
