// Wire-format packet synthesis: WireCodec's encode chain in front of the
// raw-shift modulator. The preamble (8 upchirps, sync 8/16, 2.25
// downchirps) is shared with the paper format, so the TnB detector and
// synchronizer work on wire frames unchanged.
#pragma once

#include <optional>

#include "lora/modulator.hpp"
#include "wire/wire_codec.hpp"

namespace tnb::wire {

class WireModulator {
 public:
  /// Explicit-header frames by default; pass `implicit` to omit the header
  /// (the receiver must then be configured with the same ImplicitHeader).
  explicit WireModulator(lora::Params p,
                         std::optional<rx::ImplicitHeader> implicit = {});

  const lora::Params& params() const { return mod_.params(); }

  /// Raw chirp shifts of a frame for an application payload (header and
  /// CRC16 appended per the wire format).
  std::vector<std::uint32_t> shifts(std::span<const std::uint8_t> app_bytes) const;

  /// Data symbols of a frame for an application payload size.
  std::size_t frame_symbols(std::size_t app_bytes) const;

  /// Frame duration in receiver samples (preamble included).
  std::size_t packet_samples(std::size_t app_bytes) const;

  /// Full baseband IQ of one wire frame.
  IqBuffer synthesize(std::span<const std::uint8_t> app_bytes,
                      const lora::WaveformOptions& opt = {}) const;

 private:
  lora::Modulator mod_;
  WireCodec codec_;
};

}  // namespace tnb::wire
