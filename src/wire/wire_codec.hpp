// wire::WireCodec — the gr-lora-sdr wire format behind the FrameCodec seam.
//
// Frame layout (see wire_format.hpp for the primitives):
//
//   block 0:  8 symbols, always CR 4/8, reduced rate (sf_app = sf-2) for
//             SF >= 7. Explicit mode: rows 0-4 carry the header nibbles,
//             rows 5.. the first whitened payload nibbles. Implicit mode:
//             every row is payload.
//   rest:     (4+cr)-symbol blocks of sf rows (sf-2 under LDRO) at the
//             configured coding rate, zero-padded at the end.
//
// Decoding reuses TnB's BEC machinery: the diagonal interleaver preserves
// the one-symbol-one-column error model, so rx::Bec runs unchanged with the
// wire codebook, and the packet-level candidate-combination search under
// the W budget with CRC16 arbitration mirrors rx::decode_payload_bec.
//
// lora::Header::payload_len keeps the receiver-wide convention of on-air
// bytes INCLUDING the CRC16; the conversion to the wire header's
// CRC-exclusive length field happens here.
#pragma once

#include "core/frame_codec.hpp"
#include "wire/wire_format.hpp"

namespace tnb::wire {

class WireCodec final : public rx::FrameCodec {
 public:
  explicit WireCodec(const rx::CodecConfig& cfg);

  std::size_t header_symbols() const override;
  std::optional<lora::Header> implicit_header() const override;
  std::optional<lora::Header> decode_header(std::span<const std::uint32_t> bins,
                                            rx::BecStats* stats) const override;
  std::size_t payload_symbols(const lora::Header& h) const override;
  rx::FrameDecodeResult decode_frame(std::span<const std::uint32_t> bins,
                                     const lora::Header& h, Rng& rng,
                                     rx::BecStats* stats) const override;
  std::optional<std::size_t> peek_frame_symbols(
      std::span<const std::uint32_t> header_bins) const override;
  std::vector<std::uint32_t> encode_shifts(
      std::span<const std::uint8_t> app_bytes) const override;
  std::size_t frame_symbols(std::size_t app_bytes) const override;

 private:
  WireLayout layout_for(const lora::Header& h) const;
  /// Layout used on the encode side (CR from the config, CRC always on).
  WireLayout tx_layout(std::size_t app_bytes) const;
  /// Block-0 codeword rows from the first 8 raw bins.
  std::vector<std::uint8_t> block0_rows(
      std::span<const std::uint32_t> bins) const;

  rx::CodecConfig cfg_;
};

/// ReceiverOptions::codec_factory building WireCodecs — the `--wire-format`
/// switch of tnb_gen / tnb_eval / tnb_streamd.
rx::CodecFactory wire_codec_factory();

}  // namespace tnb::wire
