#include "wire/wire_modulator.hpp"

namespace tnb::wire {
namespace {

rx::CodecConfig make_config(const lora::Params& p,
                            std::optional<rx::ImplicitHeader> implicit) {
  rx::CodecConfig cfg;
  cfg.params = p;
  cfg.implicit_header = implicit;
  return cfg;
}

}  // namespace

WireModulator::WireModulator(lora::Params p,
                             std::optional<rx::ImplicitHeader> implicit)
    : mod_(p), codec_(make_config(p, implicit)) {}

std::vector<std::uint32_t> WireModulator::shifts(
    std::span<const std::uint8_t> app_bytes) const {
  return codec_.encode_shifts(app_bytes);
}

std::size_t WireModulator::frame_symbols(std::size_t app_bytes) const {
  return codec_.frame_symbols(app_bytes);
}

std::size_t WireModulator::packet_samples(std::size_t app_bytes) const {
  return mod_.packet_samples(frame_symbols(app_bytes));
}

IqBuffer WireModulator::synthesize(std::span<const std::uint8_t> app_bytes,
                                   const lora::WaveformOptions& opt) const {
  return mod_.synthesize_shifts(shifts(app_bytes), opt);
}

}  // namespace tnb::wire
