// AVX2+FMA FftBackend. This TU is the only one compiled with
// -mavx2 -mfma (dsp/CMakeLists.txt); it is registered at runtime only
// when common::cpu_has_avx2() holds, so the rest of the library keeps
// the baseline ISA and a fat binary still runs on older machines.
//
// Complex multiplies use the fmaddsub idiom (one fused rounding instead
// of mul+add), so outputs differ from the scalar backend by a few ULP —
// the tolerance-equivalence contract of DESIGN.md "SIMD demod backends".
// Within this backend everything is deterministic, and batching never
// changes per-transform arithmetic.
#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstddef>

#include "dsp/fft.hpp"
#include "dsp/fft_backend.hpp"

namespace tnb::dsp {
namespace {

/// Element-wise complex product of 4 interleaved complex floats:
/// even lane a.re*b.re - a.im*b.im, odd lane a.re*b.im + a.im*b.re.
inline __m256 cmul(__m256 a, __m256 b) {
  const __m256 ar = _mm256_moveldup_ps(a);
  const __m256 ai = _mm256_movehdup_ps(a);
  const __m256 bs = _mm256_permute_ps(b, 0xB1);  // swap re/im per complex
  return _mm256_fmaddsub_ps(ar, b, _mm256_mul_ps(ai, bs));
}

/// Scalar butterfly fallback for tiny transforms (n < 16): the channelizer
/// runs 2..8-point DFTs where vector setup would dominate. Same code as
/// the scalar backend, so tiny sizes are additionally bit-identical.
void butterflies_scalar(float* af, const float* twf, std::size_t n) {
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t step = n / len;
    for (std::size_t block = 0; block < n; block += len) {
      std::size_t tw_idx = 0;
      float* lo = af + 2 * block;
      float* hi = af + 2 * (block + half);
      for (std::size_t k = 0; k < 2 * half; k += 2, tw_idx += 2 * step) {
        const float wr = twf[tw_idx], wi = twf[tw_idx + 1];
        const float br = hi[k], bi = hi[k + 1];
        const float vr = br * wr - bi * wi;
        const float vi = br * wi + bi * wr;
        const float ur = lo[k], ui = lo[k + 1];
        lo[k] = ur + vr;
        lo[k + 1] = ui + vi;
        hi[k] = ur - vr;
        hi[k + 1] = ui - vi;
      }
    }
  }
}

/// Stage len == 2 (twiddle 1): out pairs (a+b, a-b), 2 butterflies per
/// 256-bit vector. Requires n % 4 == 0.
void stage_len2(float* af, std::size_t n) {
  for (std::size_t i = 0; i < 2 * n; i += 8) {
    const __m256 v = _mm256_loadu_ps(af + i);
    const __m256 s = _mm256_permute_ps(v, _MM_SHUFFLE(1, 0, 3, 2));
    const __m256 add = _mm256_add_ps(v, s);   // lo slots: a+b
    const __m256 sub = _mm256_sub_ps(s, v);   // hi slots: a-b
    _mm256_storeu_ps(af + i, _mm256_blend_ps(add, sub, 0xCC));
  }
}

/// Stage len == 4 (twiddles {1, -j} forward / {1, +j} inverse): one
/// 4-complex block per 256-bit vector. Requires n % 4 == 0.
void stage_len4(float* af, std::size_t n, bool inverse) {
  // z = [c2r, c2i, c3i, -c3r] (forward: c3 * -j) in the low lane and its
  // negation in the high lane, built from one permute and one sign flip.
  // Inverse uses c3 * +j = (-c3i, c3r): the sign mask moves one slot.
  const __m256i fwd_mask = _mm256_set_epi32(
      0, static_cast<int>(0x80000000), static_cast<int>(0x80000000),
      static_cast<int>(0x80000000), static_cast<int>(0x80000000), 0, 0, 0);
  const __m256i inv_mask = _mm256_set_epi32(
      static_cast<int>(0x80000000), 0, static_cast<int>(0x80000000),
      static_cast<int>(0x80000000), 0, static_cast<int>(0x80000000), 0, 0);
  const __m256 mask =
      _mm256_castsi256_ps(inverse ? inv_mask : fwd_mask);
  for (std::size_t i = 0; i < 2 * n; i += 8) {
    const __m256 v = _mm256_loadu_ps(af + i);
    const __m256 x = _mm256_permute2f128_ps(v, v, 0x11);  // [c2 c3 | c2 c3]
    const __m256 y = _mm256_permute_ps(x, _MM_SHUFFLE(2, 3, 1, 0));
    const __m256 lo = _mm256_permute2f128_ps(v, v, 0x00);  // [c0 c1 | c0 c1]
    _mm256_storeu_ps(af + i, _mm256_add_ps(lo, _mm256_xor_ps(y, mask)));
  }
}

/// Generic stage (len >= 8, half >= 4): packed per-stage twiddles, 4
/// butterflies per iteration.
void stage_generic(float* af, const float* stage_tw, std::size_t n,
                   std::size_t len) {
  const std::size_t half = len >> 1;
  const float* tw = stage_tw + 2 * (half - 1);
  for (std::size_t block = 0; block < n; block += len) {
    float* lo = af + 2 * block;
    float* hi = af + 2 * (block + half);
    for (std::size_t k = 0; k < 2 * half; k += 8) {
      const __m256 w = _mm256_loadu_ps(tw + k);
      const __m256 b = _mm256_loadu_ps(hi + k);
      const __m256 v = cmul(b, w);
      const __m256 u = _mm256_loadu_ps(lo + k);
      _mm256_storeu_ps(lo + k, _mm256_add_ps(u, v));
      _mm256_storeu_ps(hi + k, _mm256_sub_ps(u, v));
    }
  }
}

class Avx2Backend final : public FftBackend {
 public:
  const char* name() const override { return "avx2"; }

  void transform(const FftPlan& plan, cfloat* a, bool inverse) const override {
    const std::size_t n = plan.size();
    bit_reverse(plan, a);
    float* af = reinterpret_cast<float*>(a);
    if (n < 16) {
      const float* twf =
          reinterpret_cast<const float*>(plan.twiddles(inverse).data());
      butterflies_scalar(af, twf, n);
    } else {
      const float* stage_tw =
          reinterpret_cast<const float*>(plan.stage_twiddles(inverse).data());
      stage_len2(af, n);
      stage_len4(af, n, inverse);
      for (std::size_t len = 8; len <= n; len <<= 1) {
        stage_generic(af, stage_tw, n, len);
      }
    }
    if (inverse) scale_inverse(n, a);
  }

  void dechirp_rotate(const cfloat* w, std::size_t m, const cfloat* c,
                      const cfloat* r, cfloat* out) const override {
    const float* wf = reinterpret_cast<const float*>(w);
    const float* cf = reinterpret_cast<const float*>(c);
    const float* rf = reinterpret_cast<const float*>(r);
    float* of = reinterpret_cast<float*>(out);
    std::size_t i = 0;
    for (; i + 8 <= 2 * m; i += 8) {
      const __m256 t = cmul(_mm256_loadu_ps(wf + i), _mm256_loadu_ps(cf + i));
      _mm256_storeu_ps(of + i, cmul(t, _mm256_loadu_ps(rf + i)));
    }
    for (; i < 2 * m; i += 2) {
      const float ar = wf[i], ai = wf[i + 1];
      const float br = cf[i], bi = cf[i + 1];
      const float tr = ar * br - ai * bi;
      const float ti = ar * bi + ai * br;
      const float pr = rf[i], pi = rf[i + 1];
      of[i] = tr * pr - ti * pi;
      of[i + 1] = tr * pi + ti * pr;
    }
  }

  void mag_fold(const cfloat* s, std::size_t n, std::size_t image,
                float* out) const override {
    const float* sf = reinterpret_cast<const float*>(s);
    const float* gf = sf + 2 * image;
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
      __m256 norms = norms8(sf + 2 * k);
      if (image != 0) norms = _mm256_add_ps(norms, norms8(gf + 2 * k));
      _mm256_storeu_ps(out + k, norms);
    }
    for (; k < n; ++k) {
      const float re = sf[2 * k], im = sf[2 * k + 1];
      float v = re * re + im * im;
      if (image != 0) {
        const float re2 = gf[2 * k], im2 = gf[2 * k + 1];
        v += re2 * re2 + im2 * im2;
      }
      out[k] = v;
    }
  }

  void rotate_accumulate(const cfloat* s, std::size_t n, cfloat rot,
                         cfloat* sum) const override {
    const float rr = rot.real(), ri = rot.imag();
    const __m256 rotv = _mm256_setr_ps(rr, ri, rr, ri, rr, ri, rr, ri);
    const float* sf = reinterpret_cast<const float*>(s);
    float* af = reinterpret_cast<float*>(sum);
    std::size_t i = 0;
    for (; i + 8 <= 2 * n; i += 8) {
      const __m256 v = cmul(_mm256_loadu_ps(sf + i), rotv);
      _mm256_storeu_ps(af + i, _mm256_add_ps(_mm256_loadu_ps(af + i), v));
    }
    for (; i < 2 * n; i += 2) {
      const float sr = sf[i], si = sf[i + 1];
      af[i] += sr * rr - si * ri;
      af[i + 1] += sr * ri + si * rr;
    }
  }

 private:
  /// |.|^2 of 8 consecutive interleaved complex floats, packed in order.
  static inline __m256 norms8(const float* p) {
    const __m256 a = _mm256_loadu_ps(p);
    const __m256 b = _mm256_loadu_ps(p + 8);
    const __m256 h =
        _mm256_hadd_ps(_mm256_mul_ps(a, a), _mm256_mul_ps(b, b));
    // hadd interleaves 128-bit lanes; one 64-bit-granular permute
    // restores bin order.
    return _mm256_castpd_ps(_mm256_permute4x64_pd(_mm256_castps_pd(h),
                                                  _MM_SHUFFLE(3, 1, 2, 0)));
  }
};

}  // namespace

const FftBackend* tnb_fft_backend_avx2() {
  static const Avx2Backend be;
  return &be;
}

}  // namespace tnb::dsp

#endif  // x86_64
