// Radix-2 complex FFT with a per-size plan cache.
//
// Every transform in TnB has power-of-two length (2^SF, or 2^SF * OSF for
// oversampled symbols, at most 2^12 * 8 = 32768), so an iterative
// Cooley-Tukey radix-2 transform with precomputed twiddles is sufficient and
// keeps the library dependency-free.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace tnb::dsp {

/// Precomputed transform of one fixed power-of-two size.
///
/// A plan is immutable after construction and safe to share across threads
/// for concurrent `forward`/`inverse` calls on distinct buffers.
class FftPlan {
 public:
  /// Creates a plan for transforms of length `n`. Throws std::invalid_argument
  /// if `n` is not a power of two.
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward DFT (engineering sign convention: X[k] = sum x[n] e^{-j2pi nk/N}).
  void forward(std::span<cfloat> data) const;

  /// In-place inverse DFT, normalized by 1/N.
  void inverse(std::span<cfloat> data) const;

  /// Out-of-place forward transform. `out` must have the plan's size;
  /// `in` may be shorter and is zero-padded.
  void forward(std::span<const cfloat> in, std::span<cfloat> out) const;

 private:
  void transform(std::span<cfloat> data, bool inverse) const;

  std::size_t n_;
  unsigned log2n_;
  std::vector<std::uint32_t> bitrev_;
  std::vector<cfloat> twiddle_fwd_;  // e^{-j 2 pi k / N}, k in [0, N/2)
  std::vector<cfloat> twiddle_inv_;
};

/// Returns a shared plan for length `n`, creating it on first use.
/// Thread-safe and lock-free: the cache is a fixed array of atomic plan
/// pointers indexed by log2(n), so the steady-state lookup is one acquire
/// load and concurrent callers never contend (DESIGN.md "Hot-path
/// kernels"). Plans live for the lifetime of the process. Throws
/// std::invalid_argument unless `n` is a power of two no larger than 2^24.
const FftPlan& fft_plan(std::size_t n);

/// Convenience wrappers over the plan cache.
void fft_inplace(std::span<cfloat> data);
void ifft_inplace(std::span<cfloat> data);
std::vector<cfloat> fft(std::span<const cfloat> data);
std::vector<cfloat> ifft(std::span<const cfloat> data);

}  // namespace tnb::dsp
