// Radix-2 complex FFT with a per-size plan cache.
//
// Every transform in TnB has power-of-two length (2^SF, or 2^SF * OSF for
// oversampled symbols, at most 2^12 * 8 = 32768), so an iterative
// Cooley-Tukey radix-2 transform with precomputed twiddles is sufficient and
// keeps the library dependency-free.
//
// A plan owns the size-dependent tables (bit-reverse permutation, twiddles
// in both stride-indexed and per-stage packed layouts); the arithmetic is
// executed by the process-global dsp::FftBackend (fft_backend.hpp), so one
// runtime dispatch decision serves scalar, AVX2, AVX-512 and NEON kernels.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace tnb::dsp {

/// Precomputed transform of one fixed power-of-two size.
///
/// A plan is immutable after construction and safe to share across threads
/// for concurrent `forward`/`inverse` calls on distinct buffers.
class FftPlan {
 public:
  /// Creates a plan for transforms of length `n`. Throws std::invalid_argument
  /// if `n` is not a power of two.
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }
  unsigned log2n() const { return log2n_; }

  /// In-place forward DFT (engineering sign convention: X[k] = sum x[n] e^{-j2pi nk/N}).
  void forward(std::span<cfloat> data) const;

  /// In-place inverse DFT, normalized by 1/N.
  void inverse(std::span<cfloat> data) const;

  /// Out-of-place forward transform. `out` must have the plan's size;
  /// `in` may be shorter and is zero-padded.
  void forward(std::span<const cfloat> in, std::span<cfloat> out) const;

  /// Batched in-place forward DFT: `count` independent transforms over
  /// contiguous plan-size rows of `data` (data.size() == count * size()),
  /// executed in one backend invocation so the twiddle / bit-reverse
  /// tables are loaded once per batch. Bit-identical to `count`
  /// successive forward() calls on the same backend.
  void forward_batch(std::span<cfloat> data, std::size_t count) const;

  /// Batched in-place inverse DFT (see forward_batch), 1/N-normalized.
  void inverse_batch(std::span<cfloat> data, std::size_t count) const;

  // --- Table access for FftBackend implementations. ---

  /// Bit-reverse permutation, length size().
  std::span<const std::uint32_t> bitrev() const { return bitrev_; }

  /// Stride-indexed twiddles e^{-+j 2 pi k / N}, k in [0, N/2): stage with
  /// butterfly half-width h uses entries k * (N / 2h).
  std::span<const cfloat> twiddles(bool inverse) const {
    return inverse ? twiddle_inv_ : twiddle_fwd_;
  }

  /// Per-stage packed twiddles, length N-1: the stage with half-width h
  /// (h = 1, 2, 4, ..., N/2) owns the h contiguous entries starting at
  /// offset h-1. Same values as twiddles(), laid out so SIMD butterfly
  /// loops load them with unit stride.
  std::span<const cfloat> stage_twiddles(bool inverse) const {
    return inverse ? stage_tw_inv_ : stage_tw_fwd_;
  }

 private:
  void transform(std::span<cfloat> data, bool inverse) const;

  std::size_t n_;
  unsigned log2n_;
  std::vector<std::uint32_t> bitrev_;
  std::vector<cfloat> twiddle_fwd_;  // e^{-j 2 pi k / N}, k in [0, N/2)
  std::vector<cfloat> twiddle_inv_;
  std::vector<cfloat> stage_tw_fwd_;  // packed per stage, N-1 entries
  std::vector<cfloat> stage_tw_inv_;
};

/// Returns a shared plan for length `n`, creating it on first use.
/// Thread-safe and lock-free: the cache is a fixed array of atomic plan
/// pointers indexed by log2(n), so the steady-state lookup is one acquire
/// load and concurrent callers never contend (DESIGN.md "Hot-path
/// kernels"). Plans live for the lifetime of the process. Throws
/// std::invalid_argument unless `n` is a power of two no larger than 2^24.
const FftPlan& fft_plan(std::size_t n);

/// Convenience wrappers over the plan cache.
void fft_inplace(std::span<cfloat> data);
void ifft_inplace(std::span<cfloat> data);
std::vector<cfloat> fft(std::span<const cfloat> data);
std::vector<cfloat> ifft(std::span<const cfloat> data);

}  // namespace tnb::dsp
