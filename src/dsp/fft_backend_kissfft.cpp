// Optional KissFFT FftBackend (-DTNB_KISSFFT=ON and a system kissfft).
// Exists for cross-validation of the hand-written kernels against an
// independent FFT implementation, not for speed: it is registered right
// after scalar and never auto-selected ahead of the SIMD backends.
//
// KissFFT computes an unnormalized inverse, so the shared 1/N scaling is
// applied here; the elementwise kernels (dechirp/fold/rotate) fall
// through to the scalar base-class implementations.
#if defined(TNB_HAVE_KISSFFT)

#include <kiss_fft.h>

#include <cstddef>
#include <map>
#include <mutex>
#include <vector>

#include "dsp/fft.hpp"
#include "dsp/fft_backend.hpp"

static_assert(sizeof(kiss_fft_cpx) == sizeof(tnb::cfloat),
              "kissfft must be built with float kiss_fft_scalar");

namespace tnb::dsp {
namespace {

/// Process-lifetime kiss_fft configs, one per (size, direction). Config
/// allocation is rare (plan sizes are few) and guarded; the configs
/// themselves are immutable and safe for concurrent kiss_fft() calls.
kiss_fft_cfg config_for(std::size_t n, bool inverse) {
  static std::mutex mu;
  static std::map<std::pair<std::size_t, bool>, kiss_fft_cfg> cache;
  const std::scoped_lock lock(mu);
  auto [it, inserted] = cache.try_emplace({n, inverse}, nullptr);
  if (inserted) {
    it->second = kiss_fft_alloc(static_cast<int>(n), inverse ? 1 : 0, nullptr,
                                nullptr);
  }
  return it->second;
}

class KissFftBackend final : public FftBackend {
 public:
  const char* name() const override { return "kissfft"; }

  void transform(const FftPlan& plan, cfloat* a, bool inverse) const override {
    const std::size_t n = plan.size();
    // kiss_fft is out-of-place; reuse a thread-local scratch so the
    // steady state stays allocation-free (Workspace contract).
    thread_local std::vector<cfloat> scratch;
    if (scratch.size() < n) scratch.resize(n);
    kiss_fft(config_for(n, inverse), reinterpret_cast<kiss_fft_cpx*>(a),
             reinterpret_cast<kiss_fft_cpx*>(scratch.data()));
    for (std::size_t i = 0; i < n; ++i) a[i] = scratch[i];
    if (inverse) scale_inverse(n, a);
  }
};

}  // namespace

const FftBackend* tnb_fft_backend_kissfft() {
  static const KissFftBackend be;
  return &be;
}

}  // namespace tnb::dsp

#endif  // TNB_HAVE_KISSFFT
