#include "dsp/peak_finder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tnb::dsp {
namespace {

/// Parabolic interpolation of the true maximum around sample `i`.
double interpolate_peak(std::span<const float> x, std::size_t i) {
  if (i == 0 || i + 1 >= x.size()) return static_cast<double>(i);
  const double ym1 = x[i - 1];
  const double y0 = x[i];
  const double yp1 = x[i + 1];
  const double denom = ym1 - 2.0 * y0 + yp1;
  if (denom >= 0.0) return static_cast<double>(i);  // not a strict max
  const double delta = 0.5 * (ym1 - yp1) / denom;
  return static_cast<double>(i) + std::clamp(delta, -0.5, 0.5);
}

/// Core linear-scan peak search over `x` with selectivity `sel`.
///
/// Walks the samples tracking the deepest valley since the last accepted
/// peak. A local maximum becomes a candidate once it rises `sel` above that
/// valley; it is accepted once the signal subsequently drops `sel` below the
/// candidate (or the series ends). A later, higher maximum before that drop
/// replaces the candidate — identical in effect to Yoder's alternating
/// max/min scan.
std::vector<std::size_t> scan(std::span<const float> x, double sel) {
  std::vector<std::size_t> peaks;
  const std::size_t n = x.size();
  if (n == 0) return peaks;

  double left_min = x[0];
  bool have_candidate = false;
  double cand_mag = -std::numeric_limits<double>::infinity();
  std::size_t cand_idx = 0;

  for (std::size_t i = 1; i < n; ++i) {
    const double v = x[i];
    if (have_candidate) {
      if (v > cand_mag) {
        cand_mag = v;
        cand_idx = i;
      } else if (cand_mag - v >= sel) {
        peaks.push_back(cand_idx);
        have_candidate = false;
        left_min = v;
      }
    } else {
      if (v < left_min) left_min = v;
      if (v - left_min >= sel) {
        have_candidate = true;
        cand_mag = v;
        cand_idx = i;
      }
    }
  }
  // Yoder keeps a trailing candidate only when endpoints are included; for
  // signal vectors a candidate at the very end that never descended is still
  // a real peak if it rose by sel, so keep it.
  if (have_candidate) peaks.push_back(cand_idx);
  return peaks;
}

}  // namespace

std::vector<Peak> find_peaks(std::span<const float> x,
                             const PeakFinderOptions& opt) {
  std::vector<Peak> result;
  const std::size_t n = x.size();
  if (n < 2) return result;

  double sel = opt.sel;
  if (sel < 0.0) {
    const auto [mn, mx] = std::minmax_element(x.begin(), x.end());
    sel = (static_cast<double>(*mx) - static_cast<double>(*mn)) / 4.0;
  }

  std::vector<std::size_t> idx;
  if (opt.circular) {
    // Extend by half the vector on both sides so peaks near the wrap point
    // see their true valleys; then map back and deduplicate.
    const std::size_t ext = n / 2;
    std::vector<float> wrapped(n + 2 * ext);
    for (std::size_t i = 0; i < wrapped.size(); ++i) {
      wrapped[i] = x[(i + n - ext) % n];
    }
    std::vector<std::size_t> raw = scan(wrapped, sel);
    for (std::size_t i : raw) {
      if (i >= ext && i < ext + n) idx.push_back(i - ext);
    }
    std::sort(idx.begin(), idx.end());
    idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
  } else {
    idx = scan(x, sel);
  }

  result.reserve(idx.size());
  for (std::size_t i : idx) {
    if (opt.use_threshold && x[i] < opt.threshold) continue;
    result.push_back(Peak{i, x[i], interpolate_peak(x, i)});
  }

  std::sort(result.begin(), result.end(),
            [](const Peak& a, const Peak& b) { return a.value > b.value; });
  if (opt.max_peaks != 0 && result.size() > opt.max_peaks) {
    result.resize(opt.max_peaks);
  }
  return result;
}

}  // namespace tnb::dsp
