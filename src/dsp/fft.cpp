#include "dsp/fft.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "common/math_util.hpp"
#include "dsp/fft_backend.hpp"

namespace tnb::dsp {

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (!is_pow2(n)) {
    throw std::invalid_argument("FftPlan: size must be a power of two");
  }
  log2n_ = log2_pow2(n);

  bitrev_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t r = 0;
    std::size_t x = i;
    for (unsigned b = 0; b < log2n_; ++b) {
      r = (r << 1) | (x & 1);
      x >>= 1;
    }
    bitrev_[i] = r;
  }

  twiddle_fwd_.resize(n / 2);
  twiddle_inv_.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ang = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    twiddle_fwd_[k] = {static_cast<float>(std::cos(ang)),
                       static_cast<float>(std::sin(ang))};
    twiddle_inv_[k] = std::conj(twiddle_fwd_[k]);
  }

  // Per-stage packed layout: the stage with half-width h reads the same
  // h values the strided loop reads (stride n / 2h over the table
  // above), copied contiguously so SIMD butterflies load them with unit
  // stride. Exactly the same floats — layout only, never recomputed.
  if (n >= 2) {
    stage_tw_fwd_.resize(n - 1);
    stage_tw_inv_.resize(n - 1);
    for (std::size_t half = 1; half <= n / 2; half <<= 1) {
      const std::size_t step = n / (2 * half);
      for (std::size_t k = 0; k < half; ++k) {
        stage_tw_fwd_[half - 1 + k] = twiddle_fwd_[k * step];
        stage_tw_inv_[half - 1 + k] = twiddle_inv_[k * step];
      }
    }
  }
}

void FftPlan::transform(std::span<cfloat> data, bool inverse) const {
  if (data.size() != n_) {
    throw std::invalid_argument("FftPlan: buffer size mismatch");
  }
  active_fft_backend().transform(*this, data.data(), inverse);
}

void FftPlan::forward(std::span<cfloat> data) const { transform(data, false); }

void FftPlan::inverse(std::span<cfloat> data) const { transform(data, true); }

void FftPlan::forward(std::span<const cfloat> in, std::span<cfloat> out) const {
  if (out.size() != n_ || in.size() > n_) {
    throw std::invalid_argument("FftPlan: buffer size mismatch");
  }
  std::copy(in.begin(), in.end(), out.begin());
  std::fill(out.begin() + static_cast<std::ptrdiff_t>(in.size()), out.end(),
            cfloat{0.0f, 0.0f});
  transform(out, false);
}

void FftPlan::forward_batch(std::span<cfloat> data, std::size_t count) const {
  if (data.size() != n_ * count) {
    throw std::invalid_argument("FftPlan: batch buffer size mismatch");
  }
  if (count == 0) return;
  active_fft_backend().transform_batch(*this, data.data(), count, false);
}

void FftPlan::inverse_batch(std::span<cfloat> data, std::size_t count) const {
  if (data.size() != n_ * count) {
    throw std::invalid_argument("FftPlan: batch buffer size mismatch");
  }
  if (count == 0) return;
  active_fft_backend().transform_batch(*this, data.data(), count, true);
}

namespace {

/// Largest supported log2 size of the shared plan cache. TnB transforms
/// are at most 2^SF * OSF = 2^12 * 8 = 2^15; 2^24 leaves generous room.
constexpr unsigned kMaxPlanLog2 = 24;

}  // namespace

const FftPlan& fft_plan(std::size_t n) {
  // Lock-free lookup: one atomic plan pointer per power-of-two size,
  // indexed by log2(n). Steady state is a single acquire load, so
  // concurrent decodes (--jobs, the streaming pipeline) never contend.
  // On a first-use race both threads build a plan and the CAS loser
  // discards its copy — plans are immutable and cheap relative to the
  // transforms they serve. Published plans live for the process.
  static std::array<std::atomic<const FftPlan*>, kMaxPlanLog2 + 1> cache{};

  if (!is_pow2(n)) {
    throw std::invalid_argument("fft_plan: size must be a power of two");
  }
  const unsigned l = log2_pow2(n);
  if (l > kMaxPlanLog2) {
    throw std::invalid_argument("fft_plan: size exceeds 2^24");
  }
  std::atomic<const FftPlan*>& slot = cache[l];
  const FftPlan* plan = slot.load(std::memory_order_acquire);
  if (plan != nullptr) return *plan;

  auto fresh = std::make_unique<const FftPlan>(n);
  const FftPlan* expected = nullptr;
  if (slot.compare_exchange_strong(expected, fresh.get(),
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    return *fresh.release();
  }
  return *expected;
}

void fft_inplace(std::span<cfloat> data) { fft_plan(data.size()).forward(data); }

void ifft_inplace(std::span<cfloat> data) { fft_plan(data.size()).inverse(data); }

std::vector<cfloat> fft(std::span<const cfloat> data) {
  std::vector<cfloat> out(data.begin(), data.end());
  fft_inplace(out);
  return out;
}

std::vector<cfloat> ifft(std::span<const cfloat> data) {
  std::vector<cfloat> out(data.begin(), data.end());
  ifft_inplace(out);
  return out;
}

}  // namespace tnb::dsp
