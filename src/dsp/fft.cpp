#include "dsp/fft.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "common/math_util.hpp"

namespace tnb::dsp {

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (!is_pow2(n)) {
    throw std::invalid_argument("FftPlan: size must be a power of two");
  }
  log2n_ = log2_pow2(n);

  bitrev_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t r = 0;
    std::size_t x = i;
    for (unsigned b = 0; b < log2n_; ++b) {
      r = (r << 1) | (x & 1);
      x >>= 1;
    }
    bitrev_[i] = r;
  }

  twiddle_fwd_.resize(n / 2);
  twiddle_inv_.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ang = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    twiddle_fwd_[k] = {static_cast<float>(std::cos(ang)),
                       static_cast<float>(std::sin(ang))};
    twiddle_inv_[k] = std::conj(twiddle_fwd_[k]);
  }
}

void FftPlan::transform(std::span<cfloat> data, bool inverse) const {
  if (data.size() != n_) {
    throw std::invalid_argument("FftPlan: buffer size mismatch");
  }
  cfloat* a = data.data();

  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(a[i], a[j]);
  }

  // Butterflies on float lanes. The explicit real/imag form keeps the
  // exact operation order of the std::complex butterfly it replaced —
  // (ac-bd, ad+bc) for the twiddle product, then componentwise add/sub —
  // but drops the NaN-recovery branch std::complex multiplication inlines
  // to, which blocks auto-vectorization of the stage loop (DESIGN.md
  // "Hot-path kernels"). std::complex guarantees (re, im) array layout.
  const std::vector<cfloat>& tw = inverse ? twiddle_inv_ : twiddle_fwd_;
  const float* twf = reinterpret_cast<const float*>(tw.data());
  float* af = reinterpret_cast<float*>(a);
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t step = n_ / len;  // twiddle stride for this stage
    for (std::size_t block = 0; block < n_; block += len) {
      std::size_t tw_idx = 0;
      float* lo = af + 2 * block;
      float* hi = af + 2 * (block + half);
      for (std::size_t k = 0; k < 2 * half; k += 2, tw_idx += 2 * step) {
        const float wr = twf[tw_idx], wi = twf[tw_idx + 1];
        const float br = hi[k], bi = hi[k + 1];
        const float vr = br * wr - bi * wi;
        const float vi = br * wi + bi * wr;
        const float ur = lo[k], ui = lo[k + 1];
        lo[k] = ur + vr;
        lo[k + 1] = ui + vi;
        hi[k] = ur - vr;
        hi[k + 1] = ui - vi;
      }
    }
  }

  if (inverse) {
    const float scale = 1.0f / static_cast<float>(n_);
    for (std::size_t i = 0; i < n_; ++i) a[i] *= scale;
  }
}

void FftPlan::forward(std::span<cfloat> data) const { transform(data, false); }

void FftPlan::inverse(std::span<cfloat> data) const { transform(data, true); }

void FftPlan::forward(std::span<const cfloat> in, std::span<cfloat> out) const {
  if (out.size() != n_ || in.size() > n_) {
    throw std::invalid_argument("FftPlan: buffer size mismatch");
  }
  std::copy(in.begin(), in.end(), out.begin());
  std::fill(out.begin() + static_cast<std::ptrdiff_t>(in.size()), out.end(),
            cfloat{0.0f, 0.0f});
  transform(out, false);
}

namespace {

/// Largest supported log2 size of the shared plan cache. TnB transforms
/// are at most 2^SF * OSF = 2^12 * 8 = 2^15; 2^24 leaves generous room.
constexpr unsigned kMaxPlanLog2 = 24;

}  // namespace

const FftPlan& fft_plan(std::size_t n) {
  // Lock-free lookup: one atomic plan pointer per power-of-two size,
  // indexed by log2(n). Steady state is a single acquire load, so
  // concurrent decodes (--jobs, the streaming pipeline) never contend.
  // On a first-use race both threads build a plan and the CAS loser
  // discards its copy — plans are immutable and cheap relative to the
  // transforms they serve. Published plans live for the process.
  static std::array<std::atomic<const FftPlan*>, kMaxPlanLog2 + 1> cache{};

  if (!is_pow2(n)) {
    throw std::invalid_argument("fft_plan: size must be a power of two");
  }
  const unsigned l = log2_pow2(n);
  if (l > kMaxPlanLog2) {
    throw std::invalid_argument("fft_plan: size exceeds 2^24");
  }
  std::atomic<const FftPlan*>& slot = cache[l];
  const FftPlan* plan = slot.load(std::memory_order_acquire);
  if (plan != nullptr) return *plan;

  auto fresh = std::make_unique<const FftPlan>(n);
  const FftPlan* expected = nullptr;
  if (slot.compare_exchange_strong(expected, fresh.get(),
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    return *fresh.release();
  }
  return *expected;
}

void fft_inplace(std::span<cfloat> data) { fft_plan(data.size()).forward(data); }

void ifft_inplace(std::span<cfloat> data) { fft_plan(data.size()).inverse(data); }

std::vector<cfloat> fft(std::span<const cfloat> data) {
  std::vector<cfloat> out(data.begin(), data.end());
  fft_inplace(out);
  return out;
}

std::vector<cfloat> ifft(std::span<const cfloat> data) {
  std::vector<cfloat> out(data.begin(), data.end());
  ifft_inplace(out);
  return out;
}

}  // namespace tnb::dsp
