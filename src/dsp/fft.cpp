#include "dsp/fft.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "common/math_util.hpp"

namespace tnb::dsp {

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (!is_pow2(n)) {
    throw std::invalid_argument("FftPlan: size must be a power of two");
  }
  log2n_ = log2_pow2(n);

  bitrev_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t r = 0;
    std::size_t x = i;
    for (unsigned b = 0; b < log2n_; ++b) {
      r = (r << 1) | (x & 1);
      x >>= 1;
    }
    bitrev_[i] = r;
  }

  twiddle_fwd_.resize(n / 2);
  twiddle_inv_.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ang = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    twiddle_fwd_[k] = {static_cast<float>(std::cos(ang)),
                       static_cast<float>(std::sin(ang))};
    twiddle_inv_[k] = std::conj(twiddle_fwd_[k]);
  }
}

void FftPlan::transform(std::span<cfloat> data, bool inverse) const {
  if (data.size() != n_) {
    throw std::invalid_argument("FftPlan: buffer size mismatch");
  }
  cfloat* a = data.data();

  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(a[i], a[j]);
  }

  const std::vector<cfloat>& tw = inverse ? twiddle_inv_ : twiddle_fwd_;
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t step = n_ / len;  // twiddle stride for this stage
    for (std::size_t block = 0; block < n_; block += len) {
      std::size_t tw_idx = 0;
      for (std::size_t k = 0; k < half; ++k, tw_idx += step) {
        const cfloat w = tw[tw_idx];
        const cfloat u = a[block + k];
        const cfloat v = a[block + k + half] * w;
        a[block + k] = u + v;
        a[block + k + half] = u - v;
      }
    }
  }

  if (inverse) {
    const float scale = 1.0f / static_cast<float>(n_);
    for (std::size_t i = 0; i < n_; ++i) a[i] *= scale;
  }
}

void FftPlan::forward(std::span<cfloat> data) const { transform(data, false); }

void FftPlan::inverse(std::span<cfloat> data) const { transform(data, true); }

void FftPlan::forward(std::span<const cfloat> in, std::span<cfloat> out) const {
  if (out.size() != n_ || in.size() > n_) {
    throw std::invalid_argument("FftPlan: buffer size mismatch");
  }
  std::copy(in.begin(), in.end(), out.begin());
  std::fill(out.begin() + static_cast<std::ptrdiff_t>(in.size()), out.end(),
            cfloat{0.0f, 0.0f});
  transform(out, false);
}

const FftPlan& fft_plan(std::size_t n) {
  static std::mutex mutex;
  static std::map<std::size_t, std::unique_ptr<FftPlan>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, std::make_unique<FftPlan>(n)).first;
  }
  return *it->second;
}

void fft_inplace(std::span<cfloat> data) { fft_plan(data.size()).forward(data); }

void ifft_inplace(std::span<cfloat> data) { fft_plan(data.size()).inverse(data); }

std::vector<cfloat> fft(std::span<const cfloat> data) {
  std::vector<cfloat> out(data.begin(), data.end());
  fft_inplace(out);
  return out;
}

std::vector<cfloat> ifft(std::span<const cfloat> data) {
  std::vector<cfloat> out(data.begin(), data.end());
  ifft_inplace(out);
  return out;
}

}  // namespace tnb::dsp
