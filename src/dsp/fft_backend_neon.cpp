// NEON FftBackend for AArch64 (gateway-class ARM hosts). NEON is
// baseline on AArch64 so this TU needs no extra ISA flags; it is gated
// on the architecture at compile time and on common::cpu_has_neon() at
// registration. 128-bit vectors hold 2 interleaved complex floats, so
// every radix-2 stage with half-width >= 2 vectorizes directly off the
// packed per-stage twiddles; only n < 4 falls back to scalar.
//
// Same tolerance-equivalence contract as the x86 SIMD backends: vfmaq
// fuses the multiply-accumulate inside complex products, deterministic
// within the backend, batch == N x single bit-identically.
#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstddef>

#include "dsp/fft.hpp"
#include "dsp/fft_backend.hpp"

namespace tnb::dsp {
namespace {

/// Element-wise complex product of 2 interleaved complex floats.
inline float32x4_t cmul(float32x4_t a, float32x4_t b) {
  const float32x4_t sign = {-1.0f, 1.0f, -1.0f, 1.0f};
  const float32x4_t ar = vtrn1q_f32(a, a);   // [ar0 ar0 ar1 ar1]
  const float32x4_t ai = vtrn2q_f32(a, a);   // [ai0 ai0 ai1 ai1]
  const float32x4_t bs = vrev64q_f32(b);     // [bi0 br0 bi1 br1]
  // (-ai*bi, ai*br) + ar*(br, bi) = (ar*br - ai*bi, ar*bi + ai*br)
  return vfmaq_f32(vmulq_f32(vmulq_f32(ai, bs), sign), ar, b);
}

void butterflies_scalar(float* af, const float* twf, std::size_t n) {
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t step = n / len;
    for (std::size_t block = 0; block < n; block += len) {
      std::size_t tw_idx = 0;
      float* lo = af + 2 * block;
      float* hi = af + 2 * (block + half);
      for (std::size_t k = 0; k < 2 * half; k += 2, tw_idx += 2 * step) {
        const float wr = twf[tw_idx], wi = twf[tw_idx + 1];
        const float br = hi[k], bi = hi[k + 1];
        const float vr = br * wr - bi * wi;
        const float vi = br * wi + bi * wr;
        const float ur = lo[k], ui = lo[k + 1];
        lo[k] = ur + vr;
        lo[k + 1] = ui + vi;
        hi[k] = ur - vr;
        hi[k + 1] = ui - vi;
      }
    }
  }
}

/// Stage len == 2 (twiddle 1): one butterfly (2 complex) per vector.
void stage_len2(float* af, std::size_t n) {
  for (std::size_t i = 0; i < 2 * n; i += 4) {
    const float32x4_t v = vld1q_f32(af + i);
    const float32x4_t s = vextq_f32(v, v, 2);  // swap complex pair
    const float32x4_t add = vaddq_f32(v, s);
    const float32x4_t sub = vsubq_f32(s, v);
    vst1q_f32(af + i, vcombine_f32(vget_low_f32(add), vget_high_f32(sub)));
  }
}

/// Generic stage (len >= 4, half >= 2): packed per-stage twiddles, 2
/// butterflies per iteration.
void stage_generic(float* af, const float* stage_tw, std::size_t n,
                   std::size_t len) {
  const std::size_t half = len >> 1;
  const float* tw = stage_tw + 2 * (half - 1);
  for (std::size_t block = 0; block < n; block += len) {
    float* lo = af + 2 * block;
    float* hi = af + 2 * (block + half);
    for (std::size_t k = 0; k < 2 * half; k += 4) {
      const float32x4_t w = vld1q_f32(tw + k);
      const float32x4_t b = vld1q_f32(hi + k);
      const float32x4_t v = cmul(b, w);
      const float32x4_t u = vld1q_f32(lo + k);
      vst1q_f32(lo + k, vaddq_f32(u, v));
      vst1q_f32(hi + k, vsubq_f32(u, v));
    }
  }
}

class NeonBackend final : public FftBackend {
 public:
  const char* name() const override { return "neon"; }

  void transform(const FftPlan& plan, cfloat* a, bool inverse) const override {
    const std::size_t n = plan.size();
    bit_reverse(plan, a);
    float* af = reinterpret_cast<float*>(a);
    if (n < 4) {
      const float* twf =
          reinterpret_cast<const float*>(plan.twiddles(inverse).data());
      butterflies_scalar(af, twf, n);
    } else {
      const float* stage_tw =
          reinterpret_cast<const float*>(plan.stage_twiddles(inverse).data());
      stage_len2(af, n);
      for (std::size_t len = 4; len <= n; len <<= 1) {
        stage_generic(af, stage_tw, n, len);
      }
    }
    if (inverse) scale_inverse(n, a);
  }

  void dechirp_rotate(const cfloat* w, std::size_t m, const cfloat* c,
                      const cfloat* r, cfloat* out) const override {
    const float* wf = reinterpret_cast<const float*>(w);
    const float* cf = reinterpret_cast<const float*>(c);
    const float* rf = reinterpret_cast<const float*>(r);
    float* of = reinterpret_cast<float*>(out);
    std::size_t i = 0;
    for (; i + 4 <= 2 * m; i += 4) {
      const float32x4_t t = cmul(vld1q_f32(wf + i), vld1q_f32(cf + i));
      vst1q_f32(of + i, cmul(t, vld1q_f32(rf + i)));
    }
    for (; i < 2 * m; i += 2) {
      const float ar = wf[i], ai = wf[i + 1];
      const float br = cf[i], bi = cf[i + 1];
      const float tr = ar * br - ai * bi;
      const float ti = ar * bi + ai * br;
      const float pr = rf[i], pi = rf[i + 1];
      of[i] = tr * pr - ti * pi;
      of[i + 1] = tr * pi + ti * pr;
    }
  }

  void mag_fold(const cfloat* s, std::size_t n, std::size_t image,
                float* out) const override {
    const float* sf = reinterpret_cast<const float*>(s);
    const float* gf = sf + 2 * image;
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
      float32x4_t norms = norms4(sf + 2 * k);
      if (image != 0) norms = vaddq_f32(norms, norms4(gf + 2 * k));
      vst1q_f32(out + k, norms);
    }
    for (; k < n; ++k) {
      const float re = sf[2 * k], im = sf[2 * k + 1];
      float v = re * re + im * im;
      if (image != 0) {
        const float re2 = gf[2 * k], im2 = gf[2 * k + 1];
        v += re2 * re2 + im2 * im2;
      }
      out[k] = v;
    }
  }

  void rotate_accumulate(const cfloat* s, std::size_t n, cfloat rot,
                         cfloat* sum) const override {
    const float rr = rot.real(), ri = rot.imag();
    const float32x4_t rotv = {rr, ri, rr, ri};
    const float* sf = reinterpret_cast<const float*>(s);
    float* af = reinterpret_cast<float*>(sum);
    std::size_t i = 0;
    for (; i + 4 <= 2 * n; i += 4) {
      const float32x4_t v = cmul(vld1q_f32(sf + i), rotv);
      vst1q_f32(af + i, vaddq_f32(vld1q_f32(af + i), v));
    }
    for (; i < 2 * n; i += 2) {
      const float sr = sf[i], si = sf[i + 1];
      af[i] += sr * rr - si * ri;
      af[i + 1] += sr * ri + si * rr;
    }
  }

 private:
  /// |.|^2 of 4 consecutive interleaved complex floats, packed in order.
  static inline float32x4_t norms4(const float* p) {
    const float32x4x2_t d = vld2q_f32(p);  // deinterleave re/im
    return vfmaq_f32(vmulq_f32(d.val[1], d.val[1]), d.val[0], d.val[0]);
  }
};

}  // namespace

const FftBackend* tnb_fft_backend_neon() {
  static const NeonBackend be;
  return &be;
}

}  // namespace tnb::dsp

#endif  // __aarch64__
