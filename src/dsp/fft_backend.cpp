#include "dsp/fft_backend.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "common/cpu.hpp"
#include "dsp/fft.hpp"

// Factories of the SIMD TUs compiled in by CMake (dsp/CMakeLists.txt).
// Each returns a process-lifetime singleton; whether it is *registered*
// is decided here at runtime by the CPU predicates, so a binary built
// with every backend still runs correctly on a machine without them.
#if defined(TNB_SIMD_X86)
namespace tnb::dsp {
const FftBackend* tnb_fft_backend_avx2();
const FftBackend* tnb_fft_backend_avx512();
}  // namespace tnb::dsp
#endif
#if defined(TNB_SIMD_NEON)
namespace tnb::dsp {
const FftBackend* tnb_fft_backend_neon();
}  // namespace tnb::dsp
#endif
#if defined(TNB_HAVE_KISSFFT)
namespace tnb::dsp {
const FftBackend* tnb_fft_backend_kissfft();
}  // namespace tnb::dsp
#endif

namespace tnb::dsp {

void FftBackend::bit_reverse(const FftPlan& plan, cfloat* a) {
  const std::span<const std::uint32_t> rev = plan.bitrev();
  const std::size_t n = plan.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = rev[i];
    if (i < j) std::swap(a[i], a[j]);
  }
}

void FftBackend::scale_inverse(std::size_t n, cfloat* a) {
  const float scale = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) a[i] *= scale;
}

void FftBackend::transform_batch(const FftPlan& plan, cfloat* data,
                                 std::size_t count, bool inverse) const {
  // One backend invocation for the whole batch: the plan's tables (and
  // this backend's dispatch decision) are resolved once, and successive
  // rows of the same size keep the twiddles hot in cache. Per-row
  // arithmetic is exactly transform(), so batch == N x single for every
  // backend, bit-identically.
  const std::size_t n = plan.size();
  for (std::size_t b = 0; b < count; ++b) {
    transform(plan, data + b * n, inverse);
  }
}

void FftBackend::dechirp_rotate(const cfloat* w, std::size_t m, const cfloat* c,
                                const cfloat* r, cfloat* out) const {
  // Strided real/imag form with the exact (ac-bd, ad+bc) operation order
  // of the scalar complex loop it replaced (see DESIGN.md "Hot-path
  // kernels"); GCC/Clang auto-vectorize it at the baseline ISA, and with
  // no FMA at baseline x86-64 the result is bit-identical to the
  // pre-backend code.
  const float* wf = reinterpret_cast<const float*>(w);
  const float* cf = reinterpret_cast<const float*>(c);
  const float* rf = reinterpret_cast<const float*>(r);
  float* of = reinterpret_cast<float*>(out);
  for (std::size_t i = 0; i < 2 * m; i += 2) {
    const float ar = wf[i], ai = wf[i + 1];
    const float br = cf[i], bi = cf[i + 1];
    const float tr = ar * br - ai * bi;
    const float ti = ar * bi + ai * br;
    const float pr = rf[i], pi = rf[i + 1];
    of[i] = tr * pr - ti * pi;
    of[i + 1] = tr * pi + ti * pr;
  }
}

void FftBackend::mag_fold(const cfloat* s, std::size_t n, std::size_t image,
                          float* out) const {
  const float* sf = reinterpret_cast<const float*>(s);
  if (image == 0) {
    for (std::size_t k = 0; k < n; ++k) {
      const float re = sf[2 * k], im = sf[2 * k + 1];
      out[k] = re * re + im * im;
    }
    return;
  }
  const float* gf = sf + 2 * image;
  for (std::size_t k = 0; k < n; ++k) {
    const float re = sf[2 * k], im = sf[2 * k + 1];
    const float re2 = gf[2 * k], im2 = gf[2 * k + 1];
    out[k] = (re * re + im * im) + (re2 * re2 + im2 * im2);
  }
}

void FftBackend::rotate_accumulate(const cfloat* s, std::size_t n, cfloat rot,
                                   cfloat* sum) const {
  const float rr = rot.real();
  const float ri = rot.imag();
  const float* sf = reinterpret_cast<const float*>(s);
  float* af = reinterpret_cast<float*>(sum);
  for (std::size_t i = 0; i < 2 * n; i += 2) {
    const float sr = sf[i], si = sf[i + 1];
    af[i] += sr * rr - si * ri;
    af[i + 1] += sr * ri + si * rr;
  }
}

namespace {

class ScalarBackend final : public FftBackend {
 public:
  const char* name() const override { return "scalar"; }

  void transform(const FftPlan& plan, cfloat* a, bool inverse) const override {
    const std::size_t n = plan.size();
    bit_reverse(plan, a);

    // Butterflies on float lanes. The explicit real/imag form keeps the
    // exact operation order of the std::complex butterfly it replaced —
    // (ac-bd, ad+bc) for the twiddle product, then componentwise add/sub —
    // but drops the NaN-recovery branch std::complex multiplication
    // inlines to, which blocks auto-vectorization of the stage loop
    // (DESIGN.md "Hot-path kernels"). std::complex guarantees (re, im)
    // array layout.
    const std::span<const cfloat> tw = plan.twiddles(inverse);
    const float* twf = reinterpret_cast<const float*>(tw.data());
    float* af = reinterpret_cast<float*>(a);
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const std::size_t half = len >> 1;
      const std::size_t step = n / len;  // twiddle stride for this stage
      for (std::size_t block = 0; block < n; block += len) {
        std::size_t tw_idx = 0;
        float* lo = af + 2 * block;
        float* hi = af + 2 * (block + half);
        for (std::size_t k = 0; k < 2 * half; k += 2, tw_idx += 2 * step) {
          const float wr = twf[tw_idx], wi = twf[tw_idx + 1];
          const float br = hi[k], bi = hi[k + 1];
          const float vr = br * wr - bi * wi;
          const float vi = br * wi + bi * wr;
          const float ur = lo[k], ui = lo[k + 1];
          lo[k] = ur + vr;
          lo[k + 1] = ui + vi;
          hi[k] = ur - vr;
          hi[k + 1] = ui - vi;
        }
      }
    }

    if (inverse) scale_inverse(n, a);
  }
};

/// Available backends in ascending preference order, scalar first.
/// Built once; the list is immutable afterwards so lock-free readers are
/// safe for the life of the process.
const std::vector<const FftBackend*>& registry() {
  static const std::vector<const FftBackend*> backends = [] {
    std::vector<const FftBackend*> v;
    v.push_back(&fft_backend_scalar());
#if defined(TNB_HAVE_KISSFFT)
    // Available but never auto-selected ahead of the SIMD backends:
    // it exists for cross-validation, not speed.
    v.push_back(tnb_fft_backend_kissfft());
#endif
#if defined(TNB_SIMD_NEON)
    if (common::cpu_has_neon()) v.push_back(tnb_fft_backend_neon());
#endif
#if defined(TNB_SIMD_X86)
    if (common::cpu_has_avx2()) v.push_back(tnb_fft_backend_avx2());
    if (common::cpu_has_avx512()) v.push_back(tnb_fft_backend_avx512());
#endif
    return v;
  }();
  return backends;
}

std::atomic<const FftBackend*> g_active{nullptr};
std::once_flag g_env_once;

/// Selects a backend without touching the env once-flag (shared by the
/// public setter and the env application below).
bool select_backend(std::string_view name) {
  const FftBackend* b = nullptr;
  if (name == "auto") {
    b = registry().back();  // ascending preference; scalar-only => scalar
  } else {
    b = find_fft_backend(name);
    if (b == nullptr) return false;
  }
  g_active.store(b, std::memory_order_release);
  return true;
}

/// Applies TNB_FFT_BACKEND exactly once, before the first dispatch.
/// Unset keeps the scalar default; a bad value warns and keeps scalar
/// (decoding with the wrong backend silently would be worse than slow).
void apply_env() {
  const char* env = std::getenv("TNB_FFT_BACKEND");
  if (env == nullptr || *env == '\0') return;
  if (!select_backend(env)) {
    std::fprintf(stderr,
                 "tnb: TNB_FFT_BACKEND='%s' is not available (have: %s); "
                 "using scalar\n",
                 env, fft_backend_names().c_str());
  }
}

}  // namespace

const FftBackend& fft_backend_scalar() {
  static const ScalarBackend scalar;
  return scalar;
}

std::span<const FftBackend* const> fft_backends() { return registry(); }

const FftBackend* find_fft_backend(std::string_view name) {
  for (const FftBackend* b : registry()) {
    if (name == b->name()) return b;
  }
  return nullptr;
}

const FftBackend& active_fft_backend() {
  std::call_once(g_env_once, apply_env);
  const FftBackend* b = g_active.load(std::memory_order_acquire);
  return b != nullptr ? *b : fft_backend_scalar();
}

bool set_fft_backend(std::string_view name) {
  // Consume the env once-flag first so an explicit selection (CLI flag,
  // test) is never overwritten by a later lazy TNB_FFT_BACKEND read:
  // flag > env > scalar default.
  std::call_once(g_env_once, [] {});
  return select_backend(name);
}

std::string fft_backend_names() {
  std::string s = "auto";
  for (const FftBackend* b : registry()) {
    s += ' ';
    s += b->name();
  }
  return s;
}

}  // namespace tnb::dsp
