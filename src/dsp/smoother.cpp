#include "dsp/smoother.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tnb::dsp {

std::vector<double> smooth_moving(std::span<const double> data,
                                  std::size_t window) {
  const std::size_t n = data.size();
  std::vector<double> out(data.begin(), data.end());
  if (n == 0 || window <= 1) return out;
  if (window % 2 == 0) ++window;
  const std::size_t half = window / 2;

  // Prefix sums give O(n) evaluation for any window.
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + data[i];

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(n - 1, i + half);
    out[i] = (prefix[hi + 1] - prefix[lo]) / static_cast<double>(hi - lo + 1);
  }
  return out;
}

std::size_t default_smooth_window(std::size_t n) {
  // smoothdata picks a window from the data's energy distribution; for the
  // slowly-varying peak-height series here a fixed fraction works as well.
  std::size_t w = std::max<std::size_t>(3, n / 4);
  return std::min<std::size_t>(w, 25);
}

std::vector<double> smooth_fit(std::span<const double> data) {
  return smooth_moving(data, default_smooth_window(data.size()));
}

double median_of(std::span<const double> data) {
  if (data.empty()) return 0.0;
  std::vector<double> tmp(data.begin(), data.end());
  const std::size_t mid = tmp.size() / 2;
  std::nth_element(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(mid),
                   tmp.end());
  double m = tmp[mid];
  if (tmp.size() % 2 == 0) {
    // Lower middle: largest of the first half.
    double lower =
        *std::max_element(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(mid));
    m = (m + lower) / 2.0;
  }
  return m;
}

double median_abs_dev(std::span<const double> data,
                      std::span<const double> fit) {
  if (data.size() != fit.size()) {
    throw std::invalid_argument("median_abs_dev: size mismatch");
  }
  std::vector<double> dev(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    dev[i] = std::abs(data[i] - fit[i]);
  }
  return median_of(dev);
}

}  // namespace tnb::dsp
