// AVX-512F FftBackend: 512-bit butterflies for stage half-widths >= 8,
// falling back to 256-bit code for the narrow early stages (where a zmm
// would span multiple butterfly blocks) and scalar for tiny transforms.
// Compiled with -mavx512f -mavx512vl (dsp/CMakeLists.txt) and registered
// only when common::cpu_has_avx512() holds.
//
// Same tolerance-equivalence contract as the AVX2 backend: FMA
// contraction inside complex multiplies, deterministic within the
// backend, batch == N x single bit-identically.
#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstddef>

#include "dsp/fft.hpp"
#include "dsp/fft_backend.hpp"

namespace tnb::dsp {
namespace {

inline __m256 cmul256(__m256 a, __m256 b) {
  const __m256 ar = _mm256_moveldup_ps(a);
  const __m256 ai = _mm256_movehdup_ps(a);
  const __m256 bs = _mm256_permute_ps(b, 0xB1);
  return _mm256_fmaddsub_ps(ar, b, _mm256_mul_ps(ai, bs));
}

/// 8 complex products per vector; same idiom as cmul256 widened.
inline __m512 cmul512(__m512 a, __m512 b) {
  const __m512 ar = _mm512_moveldup_ps(a);
  const __m512 ai = _mm512_movehdup_ps(a);
  const __m512 bs = _mm512_permute_ps(b, 0xB1);
  return _mm512_fmaddsub_ps(ar, b, _mm512_mul_ps(ai, bs));
}

void butterflies_scalar(float* af, const float* twf, std::size_t n) {
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t step = n / len;
    for (std::size_t block = 0; block < n; block += len) {
      std::size_t tw_idx = 0;
      float* lo = af + 2 * block;
      float* hi = af + 2 * (block + half);
      for (std::size_t k = 0; k < 2 * half; k += 2, tw_idx += 2 * step) {
        const float wr = twf[tw_idx], wi = twf[tw_idx + 1];
        const float br = hi[k], bi = hi[k + 1];
        const float vr = br * wr - bi * wi;
        const float vi = br * wi + bi * wr;
        const float ur = lo[k], ui = lo[k + 1];
        lo[k] = ur + vr;
        lo[k + 1] = ui + vi;
        hi[k] = ur - vr;
        hi[k + 1] = ui - vi;
      }
    }
  }
}

void stage_len2(float* af, std::size_t n) {
  for (std::size_t i = 0; i < 2 * n; i += 8) {
    const __m256 v = _mm256_loadu_ps(af + i);
    const __m256 s = _mm256_permute_ps(v, _MM_SHUFFLE(1, 0, 3, 2));
    const __m256 add = _mm256_add_ps(v, s);
    const __m256 sub = _mm256_sub_ps(s, v);
    _mm256_storeu_ps(af + i, _mm256_blend_ps(add, sub, 0xCC));
  }
}

void stage_len4(float* af, std::size_t n, bool inverse) {
  const __m256i fwd_mask = _mm256_set_epi32(
      0, static_cast<int>(0x80000000), static_cast<int>(0x80000000),
      static_cast<int>(0x80000000), static_cast<int>(0x80000000), 0, 0, 0);
  const __m256i inv_mask = _mm256_set_epi32(
      static_cast<int>(0x80000000), 0, static_cast<int>(0x80000000),
      static_cast<int>(0x80000000), 0, static_cast<int>(0x80000000), 0, 0);
  const __m256 mask = _mm256_castsi256_ps(inverse ? inv_mask : fwd_mask);
  for (std::size_t i = 0; i < 2 * n; i += 8) {
    const __m256 v = _mm256_loadu_ps(af + i);
    const __m256 x = _mm256_permute2f128_ps(v, v, 0x11);
    const __m256 y = _mm256_permute_ps(x, _MM_SHUFFLE(2, 3, 1, 0));
    const __m256 lo = _mm256_permute2f128_ps(v, v, 0x00);
    _mm256_storeu_ps(af + i, _mm256_add_ps(lo, _mm256_xor_ps(y, mask)));
  }
}

/// Stage len == 8 (half == 4): one 256-bit butterfly per block half.
void stage_len8(float* af, const float* stage_tw, std::size_t n) {
  const float* tw = stage_tw + 2 * 3;  // half - 1 == 3
  const __m256 w = _mm256_loadu_ps(tw);
  for (std::size_t block = 0; block < n; block += 8) {
    float* lo = af + 2 * block;
    float* hi = lo + 8;
    const __m256 v = cmul256(_mm256_loadu_ps(hi), w);
    const __m256 u = _mm256_loadu_ps(lo);
    _mm256_storeu_ps(lo, _mm256_add_ps(u, v));
    _mm256_storeu_ps(hi, _mm256_sub_ps(u, v));
  }
}

/// Generic stage (len >= 16, half >= 8): packed per-stage twiddles, 8
/// butterflies per 512-bit iteration.
void stage_generic(float* af, const float* stage_tw, std::size_t n,
                   std::size_t len) {
  const std::size_t half = len >> 1;
  const float* tw = stage_tw + 2 * (half - 1);
  for (std::size_t block = 0; block < n; block += len) {
    float* lo = af + 2 * block;
    float* hi = af + 2 * (block + half);
    for (std::size_t k = 0; k < 2 * half; k += 16) {
      const __m512 w = _mm512_loadu_ps(tw + k);
      const __m512 b = _mm512_loadu_ps(hi + k);
      const __m512 v = cmul512(b, w);
      const __m512 u = _mm512_loadu_ps(lo + k);
      _mm512_storeu_ps(lo + k, _mm512_add_ps(u, v));
      _mm512_storeu_ps(hi + k, _mm512_sub_ps(u, v));
    }
  }
}

class Avx512Backend final : public FftBackend {
 public:
  const char* name() const override { return "avx512"; }

  void transform(const FftPlan& plan, cfloat* a, bool inverse) const override {
    const std::size_t n = plan.size();
    bit_reverse(plan, a);
    float* af = reinterpret_cast<float*>(a);
    if (n < 32) {
      const float* twf =
          reinterpret_cast<const float*>(plan.twiddles(inverse).data());
      butterflies_scalar(af, twf, n);
    } else {
      const float* stage_tw =
          reinterpret_cast<const float*>(plan.stage_twiddles(inverse).data());
      stage_len2(af, n);
      stage_len4(af, n, inverse);
      stage_len8(af, stage_tw, n);
      for (std::size_t len = 16; len <= n; len <<= 1) {
        stage_generic(af, stage_tw, n, len);
      }
    }
    if (inverse) scale_inverse(n, a);
  }

  void dechirp_rotate(const cfloat* w, std::size_t m, const cfloat* c,
                      const cfloat* r, cfloat* out) const override {
    const float* wf = reinterpret_cast<const float*>(w);
    const float* cf = reinterpret_cast<const float*>(c);
    const float* rf = reinterpret_cast<const float*>(r);
    float* of = reinterpret_cast<float*>(out);
    std::size_t i = 0;
    for (; i + 16 <= 2 * m; i += 16) {
      const __m512 t =
          cmul512(_mm512_loadu_ps(wf + i), _mm512_loadu_ps(cf + i));
      _mm512_storeu_ps(of + i, cmul512(t, _mm512_loadu_ps(rf + i)));
    }
    for (; i < 2 * m; i += 2) {
      const float ar = wf[i], ai = wf[i + 1];
      const float br = cf[i], bi = cf[i + 1];
      const float tr = ar * br - ai * bi;
      const float ti = ar * bi + ai * br;
      const float pr = rf[i], pi = rf[i + 1];
      of[i] = tr * pr - ti * pi;
      of[i + 1] = tr * pi + ti * pr;
    }
  }

  void mag_fold(const cfloat* s, std::size_t n, std::size_t image,
                float* out) const override {
    const float* sf = reinterpret_cast<const float*>(s);
    const float* gf = sf + 2 * image;
    std::size_t k = 0;
    for (; k + 16 <= n; k += 16) {
      __m512 norms = norms16(sf + 2 * k);
      if (image != 0) norms = _mm512_add_ps(norms, norms16(gf + 2 * k));
      _mm512_storeu_ps(out + k, norms);
    }
    for (; k < n; ++k) {
      const float re = sf[2 * k], im = sf[2 * k + 1];
      float v = re * re + im * im;
      if (image != 0) {
        const float re2 = gf[2 * k], im2 = gf[2 * k + 1];
        v += re2 * re2 + im2 * im2;
      }
      out[k] = v;
    }
  }

  void rotate_accumulate(const cfloat* s, std::size_t n, cfloat rot,
                         cfloat* sum) const override {
    const float rr = rot.real(), ri = rot.imag();
    const __m512 rotv = _mm512_setr_ps(rr, ri, rr, ri, rr, ri, rr, ri, rr, ri,
                                       rr, ri, rr, ri, rr, ri);
    const float* sf = reinterpret_cast<const float*>(s);
    float* af = reinterpret_cast<float*>(sum);
    std::size_t i = 0;
    for (; i + 16 <= 2 * n; i += 16) {
      const __m512 v = cmul512(_mm512_loadu_ps(sf + i), rotv);
      _mm512_storeu_ps(af + i, _mm512_add_ps(_mm512_loadu_ps(af + i), v));
    }
    for (; i < 2 * n; i += 2) {
      const float sr = sf[i], si = sf[i + 1];
      af[i] += sr * rr - si * ri;
      af[i + 1] += sr * ri + si * rr;
    }
  }

 private:
  /// |.|^2 of 16 consecutive interleaved complex floats, packed in order:
  /// even/odd-lane compaction across two zmm loads, then one fmadd.
  static inline __m512 norms16(const float* p) {
    const __m512 a = _mm512_loadu_ps(p);
    const __m512 b = _mm512_loadu_ps(p + 16);
    const __m512i even = _mm512_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14, 16, 18,
                                           20, 22, 24, 26, 28, 30);
    const __m512i odd = _mm512_setr_epi32(1, 3, 5, 7, 9, 11, 13, 15, 17, 19,
                                          21, 23, 25, 27, 29, 31);
    const __m512 re = _mm512_permutex2var_ps(a, even, b);
    const __m512 im = _mm512_permutex2var_ps(a, odd, b);
    return _mm512_fmadd_ps(re, re, _mm512_mul_ps(im, im));
  }
};

}  // namespace

const FftBackend* tnb_fft_backend_avx512() {
  static const Avx512Backend be;
  return &be;
}

}  // namespace tnb::dsp

#endif  // x86_64
