// Moving-average smoothing and robust deviation statistics.
//
// Thrive's history cost fits a smooth curve through the peak heights a node
// has produced so far (the paper uses MATLAB `smoothdata`, whose default
// method is a centered moving mean with a data-driven window). The fitted
// value extrapolated one symbol ahead gives the expected peak height A, and
// the median absolute deviation between data and fit gives the spread D.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tnb::dsp {

/// Centered moving average with window `window` (forced odd). Near the
/// edges the window shrinks symmetrically, matching MATLAB `movmean`
/// semantics. `window` <= 1 returns the input unchanged.
std::vector<double> smooth_moving(std::span<const double> data,
                                  std::size_t window);

/// Heuristic smoothing window for n samples, mirroring `smoothdata`'s
/// "small fraction of the data, at least a few samples" behaviour.
std::size_t default_smooth_window(std::size_t n);

/// smooth_moving with the default window for the data length.
std::vector<double> smooth_fit(std::span<const double> data);

/// Median of a sequence (copies; n == 0 returns 0).
double median_of(std::span<const double> data);

/// Median of |data[i] - fit[i]|. Sizes must match.
double median_abs_dev(std::span<const double> data,
                      std::span<const double> fit);

}  // namespace tnb::dsp
