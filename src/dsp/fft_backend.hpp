// Pluggable SIMD backends for the demodulation hot path (ROADMAP item 2,
// DESIGN.md "SIMD demod backends").
//
// A backend implements the four kernels every TnB receiver spends its
// time in: the radix-2 FFT over a plan's precomputed tables, the fused
// dechirp + CFO rotation, the magnitude-squared fold of a spectrum into a
// signal vector, and FracSync's rotate-accumulate. Backends are selected
// at runtime — by CPU-feature dispatch ("auto"), the TNB_FFT_BACKEND
// environment variable, or the tools' --fft-backend flag — and installed
// process-globally; FftPlan and the lora/core kernels route every call
// through the active backend.
//
// Contract:
//  - "scalar" is always available, is the default, and is bit-identical
//    to the pre-backend code (the decode-ab-diff CI job gates this).
//  - SIMD backends (avx2 / avx512 / neon) legitimately reorder float ops
//    (FMA contraction inside complex multiplies), so their outputs are
//    equivalent only to tolerance; tests/test_fft_backend.cpp pins the
//    per-transform ULP bound and the end-to-end decode agreement.
//  - For any single backend, results are deterministic and
//    `forward_batch` is bit-identical to the same calls made one at a
//    time (batching only amortizes table/twiddle loads, it never changes
//    per-transform arithmetic).
//
// Adding a backend: implement the virtuals in a new TU (compile it with
// the ISA flags it needs, never the whole library), expose a
// `const FftBackend* tnb_fft_backend_<name>()` factory, and register it
// in fft_backend.cpp behind a CPU-feature predicate (common/cpu.hpp).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace tnb::dsp {

class FftPlan;

class FftBackend {
 public:
  virtual ~FftBackend() = default;

  /// Stable lower-case identifier ("scalar", "avx2", ...), used by the
  /// --fft-backend flag, TNB_FFT_BACKEND, and the obs info gauge.
  virtual const char* name() const = 0;

  /// Full in-place DFT of one plan-size buffer: bit-reverse permutation,
  /// butterflies, and (for the inverse) 1/N scaling.
  virtual void transform(const FftPlan& plan, cfloat* data,
                         bool inverse) const = 0;

  /// `count` independent in-place transforms over contiguous plan-size
  /// rows of `data`. Bit-identical to `count` transform() calls on the
  /// same backend; the default implementation is exactly that loop.
  virtual void transform_batch(const FftPlan& plan, cfloat* data,
                               std::size_t count, bool inverse) const;

  /// Fused dechirp + CFO rotation: out[i] = (w[i] * c[i]) * r[i] over `m`
  /// complex elements, each product expanded as (ac-bd, ad+bc).
  virtual void dechirp_rotate(const cfloat* w, std::size_t m, const cfloat* c,
                              const cfloat* r, cfloat* out) const;

  /// Magnitude-squared fold: out[k] = |s[k]|^2 for k in [0, n), plus
  /// |s[k + image]|^2 when `image` != 0 (the oversampling image).
  virtual void mag_fold(const cfloat* s, std::size_t n, std::size_t image,
                        float* out) const;

  /// Coherent accumulation: sum[k] += s[k] * rot over n complex elements.
  virtual void rotate_accumulate(const cfloat* s, std::size_t n, cfloat rot,
                                 cfloat* sum) const;

 protected:
  /// Shared scalar pieces for implementations: the bit-reverse
  /// permutation and the inverse 1/N scaling (elementwise, so SIMD
  /// variants of the scaling stay bit-identical anyway).
  static void bit_reverse(const FftPlan& plan, cfloat* data);
  static void scale_inverse(std::size_t n, cfloat* data);
};

/// The always-available scalar reference backend (bit-identical to the
/// pre-backend FFT/demod code).
const FftBackend& fft_backend_scalar();

/// Backends compiled in AND supported by this CPU, scalar first, in
/// ascending preference order ("auto" picks the last).
std::span<const FftBackend* const> fft_backends();

/// Available backend with `name`, or nullptr if unknown, not compiled
/// in, or unsupported by this CPU.
const FftBackend* find_fft_backend(std::string_view name);

/// The process-global active backend. The first call applies the
/// TNB_FFT_BACKEND environment variable ("auto", "scalar", "avx2", ...);
/// unset or invalid values leave the scalar default (invalid values warn
/// on stderr). Thread-safe; the returned reference is valid forever.
const FftBackend& active_fft_backend();

/// Installs the backend named `name` ("auto" selects the most preferred
/// available backend). Returns false — and changes nothing — when the
/// name is not available. Call before spawning decode threads: the
/// switch is atomic, but mixing backends within one decode would mix
/// rounding behaviors mid-packet.
bool set_fft_backend(std::string_view name);

/// Space-separated names of the available backends plus "auto", for CLI
/// help and error messages.
std::string fft_backend_names();

}  // namespace tnb::dsp
