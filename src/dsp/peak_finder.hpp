// Selectivity-based peak finder.
//
// A C++ port of the algorithm in Nathanael Yoder's MATLAB `peakfinder`
// (MATLAB Central #25500), which the TnB paper uses to locate peaks in LoRa
// signal vectors. A local maximum is reported as a peak only if it rises by
// at least `sel` above the surrounding valleys, which suppresses noise
// ripple without a hard amplitude threshold.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tnb::dsp {

struct Peak {
  std::size_t index = 0;   ///< sample index of the maximum
  float value = 0.0f;      ///< height at the maximum
  double frac_index = 0.0; ///< parabolic-interpolated fractional location
};

struct PeakFinderOptions {
  /// Minimum rise above surrounding valleys for a maximum to count as a peak.
  /// If negative (default), uses (max - min) / 4 as in Yoder's peakfinder.
  double sel = -1.0;
  /// Peaks strictly below this value are discarded. Default: no threshold.
  double threshold = 0.0;
  bool use_threshold = false;
  /// Treat the input as circular (LoRa signal vectors are: bin 0 is adjacent
  /// to bin N-1, so a peak may straddle the wrap point).
  bool circular = false;
  /// Keep at most this many peaks (the highest ones). 0 = unlimited.
  std::size_t max_peaks = 0;
};

/// Finds peaks in `x`. Returned peaks are sorted by descending height.
std::vector<Peak> find_peaks(std::span<const float> x,
                             const PeakFinderOptions& opt = {});

}  // namespace tnb::dsp
