// Small numeric helpers used throughout TnB.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace tnb {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Euclidean (always non-negative) modulo for signed integers.
constexpr std::int64_t floor_mod(std::int64_t a, std::int64_t m) {
  std::int64_t r = a % m;
  return r < 0 ? r + m : r;
}

/// Euclidean modulo for doubles; result in [0, m).
inline double floor_mod(double a, double m) {
  double r = std::fmod(a, m);
  return r < 0 ? r + m : r;
}

/// Wrap a value into the symmetric interval [-m/2, m/2).
inline double wrap_half(double a, double m) {
  return floor_mod(a + m / 2.0, m) - m / 2.0;
}

inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }
inline double linear_to_db(double lin) { return 10.0 * std::log10(lin); }

/// Amplitude scale factor corresponding to a power ratio in dB.
inline double db_to_amplitude(double db) { return std::pow(10.0, db / 20.0); }

/// True if x is a power of two (and nonzero).
constexpr bool is_pow2(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// log2 of a power of two.
constexpr unsigned log2_pow2(std::size_t x) {
  unsigned l = 0;
  while (x > 1) {
    x >>= 1;
    ++l;
  }
  return l;
}

}  // namespace tnb
