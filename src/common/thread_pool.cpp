#include "common/thread_pool.hpp"

#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace tnb::common {

int default_jobs() {
  const char* v = std::getenv("TNB_JOBS");
  if (v == nullptr || *v == '\0') return 1;
  const long n = std::strtol(v, nullptr, 10);
  return n > 0 ? static_cast<int>(n) : 1;
}

int resolve_jobs(int jobs) { return jobs > 0 ? jobs : default_jobs(); }

ThreadPool::ThreadPool(int threads, std::size_t queue_capacity)
    : queue_capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  if (threads < 0) throw std::invalid_argument("ThreadPool: threads < 0");
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_task(std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    std::unique_lock lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Inline degenerate case: run on the caller, deliver errors via wait().
    run_task(task);
    return;
  }
  {
    std::unique_lock lock(mu_);
    cv_space_.wait(lock, [this] { return queue_.size() < queue_capacity_; });
    queue_.push_back(std::move(task));
    ++unfinished_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  std::exception_ptr err;
  {
    std::unique_lock lock(mu_);
    cv_idle_.wait(lock, [this] { return unfinished_ == 0; });
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping so the destructor never drops
      // submitted work.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    cv_space_.notify_one();
    run_task(task);
    {
      std::unique_lock lock(mu_);
      if (--unfinished_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace tnb::common
