// Dependency-free thread pool for fanning out independent simulation runs.
//
// The experiment layer (sim::run_repeated / sim::run_grid) and the bench
// drivers submit coarse per-run tasks; determinism is preserved by deriving
// each task's RNG seed from its index and writing results into pre-sized
// slots, so scheduling order never affects output. The pool itself is
// deliberately small: submit/wait, a bounded queue (back-pressure for
// producers that outrun the workers), and exception propagation to the
// waiter.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

namespace tnb::common {

/// Worker count from the TNB_JOBS environment variable (clamped to >= 1);
/// 1 when unset or unparsable.
int default_jobs();

/// Resolves a user-facing jobs request: values > 0 pass through, anything
/// else (0, negative) falls back to default_jobs() / TNB_JOBS.
int resolve_jobs(int jobs);

/// Fixed-size pool of workers draining a bounded FIFO task queue.
///
/// - `threads == 0` degenerates to inline execution: submit() runs the task
///   on the calling thread (exceptions are still delivered via wait()).
/// - submit() blocks while the queue holds `queue_capacity` pending tasks.
/// - wait() blocks until every submitted task has finished and rethrows the
///   first task exception, after which the pool is reusable.
/// - The destructor drains the queue (all submitted tasks run) and joins.
class ThreadPool {
 public:
  explicit ThreadPool(int threads, std::size_t queue_capacity = 1024);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 for the inline degenerate case).
  int size() const { return static_cast<int>(workers_.size()); }

  void submit(std::function<void()> task);
  void wait();

 private:
  void worker_loop();
  void run_task(std::function<void()>& task);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::size_t queue_capacity_;
  std::size_t unfinished_ = 0;  ///< queued + currently running
  bool stop_ = false;
  std::exception_ptr first_error_;
  mutable std::mutex mu_;
  std::condition_variable cv_task_;   ///< workers: a task is available
  std::condition_variable cv_space_;  ///< producers: queue has room
  std::condition_variable cv_idle_;   ///< waiters: everything finished
};

/// Runs body(i) for i in [0, n). `jobs <= 1` (after resolve_jobs) executes
/// inline on the calling thread, in index order, and lets exceptions
/// propagate directly; otherwise min(jobs, n) workers execute the indices
/// in unspecified order and the first task exception is rethrown here.
template <typename Body>
void parallel_for(std::size_t n, int jobs, Body&& body) {
  jobs = resolve_jobs(jobs);
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool(static_cast<int>(
      std::min(static_cast<std::size_t>(jobs), n)));
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([i, &body] { body(i); });
  }
  pool.wait();
}

}  // namespace tnb::common
