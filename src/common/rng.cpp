#include "common/rng.hpp"

#include <cmath>

#include "common/math_util.hpp"

namespace tnb {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // splitmix64 expansion guarantees a non-zero state for any seed.
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Lemire-style rejection-free for our purposes: bias is negligible for
  // n << 2^64, but use rejection to keep exactness.
  std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = r * std::sin(kTwoPi * u2);
  has_cached_normal_ = true;
  return r * std::cos(kTwoPi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

cfloat Rng::complex_normal(double variance) {
  const double sigma = std::sqrt(variance / 2.0);
  return {static_cast<float>(normal() * sigma),
          static_cast<float>(normal() * sigma)};
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace tnb
