// Deterministic, fast random number generation.
//
// TnB's simulator and the Monte-Carlo analyses need reproducible streams that
// are cheap to fork (one independent stream per node / per channel tap).
// xoshiro256++ is used as the core generator; splitmix64 seeds it.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace tnb {

/// xoshiro256++ PRNG with Gaussian / uniform helpers.
///
/// Satisfies UniformRandomBitGenerator so it can also drive <random>
/// distributions, but the members below avoid libstdc++'s unspecified
/// distribution algorithms so results are stable across toolchains.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second deviate).
  double normal();

  /// Normal with given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Circularly-symmetric complex Gaussian with E[|z|^2] = variance.
  cfloat complex_normal(double variance = 1.0);

  /// Fork an independent generator (jump via reseeding from this stream).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace tnb
