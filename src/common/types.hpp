// Fundamental value types shared across the TnB libraries.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace tnb {

/// Baseband IQ sample. Single precision keeps 30 s traces (~30 M samples at
/// 1 Msps) within a few hundred MB and matches the 16-bit USRP source data.
using cfloat = std::complex<float>;

/// A contiguous run of IQ samples (one trace, one packet, one symbol...).
using IqBuffer = std::vector<cfloat>;

/// Power spectrum of one dechirped symbol, length 2^SF ("signal vector").
using SignalVector = std::vector<float>;

}  // namespace tnb
