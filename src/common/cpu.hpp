// Runtime CPU-feature detection for the SIMD kernel dispatch
// (dsp/fft_backend.hpp). Header-only: each predicate is a cheap wrapper
// over the compiler's CPU model (x86) or the architecture baseline
// (AArch64, where NEON is mandatory), and returns false on every other
// platform so callers never need their own #ifdef ladders.
#pragma once

namespace tnb::common {

/// True when the CPU executes AVX2 + FMA (the avx2 backend's contract).
inline bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

/// True when the CPU executes AVX-512F (the avx512 backend's contract;
/// the backend only uses foundation ops plus the AVX2 subset).
inline bool cpu_has_avx512() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx512f") && cpu_has_avx2();
#else
  return false;
#endif
}

/// True on AArch64, where Advanced SIMD (NEON) is part of the baseline.
inline bool cpu_has_neon() {
#if defined(__aarch64__) || defined(_M_ARM64)
  return true;
#else
  return false;
#endif
}

}  // namespace tnb::common
