// Cache-line/SIMD-aligned vectors for the demodulation hot path.
//
// The zero-allocation kernels (lora::Workspace) hold their scratch in
// 64-byte-aligned storage so the strided real/imag loops vectorize with
// aligned loads and scratch buffers never share a cache line with
// unrelated state. Alignment is an optimization, not a contract: every
// kernel also accepts plain std::vector storage.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace tnb::common {

/// Minimal aligned allocator (C++17 aligned operator new). Alignment must
/// be a power of two and at least alignof(T).
template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::align_val_t kAlign{Alignment};

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, kAlign);
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };
  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// std::vector with 64-byte-aligned storage.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace tnb::common
