// Merged packet ledger of a gateway fleet (tnb::fleet).
//
// Every lane's decoded packets land here, tagged with where they came from
// — (channel, SF, lane) — and when: t0 is the packet's detected start in
// channel-rate samples, which all lanes share (fs is SF-independent), so
// entries from different channels and SFs order on one common clock.
// Appends are thread-safe (lanes run on fleet workers); finalize() freezes
// the ledger into the canonical deterministic order, sorted by
// (t0, channel, sf, payload), which is identical for every lane count,
// chunk size, and scheduling interleaving (DESIGN.md "Gateway fleet").
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/metrics.hpp"

namespace tnb::fleet {

struct LedgerEntry {
  unsigned channel = 0;
  unsigned sf = 0;
  unsigned lane = 0;       ///< lane index in fleet order (channel-major)
  double t0 = 0.0;         ///< == pkt.start_sample, channel-rate samples
  sim::DecodedPacket pkt;
};

/// Canonical ledger order: (t0, channel, sf, payload bytes).
bool ledger_entry_less(const LedgerEntry& a, const LedgerEntry& b);

class PacketLedger {
 public:
  /// `metrics` (nullptr = obs::Registry::global(), resolved here) counts
  /// merges as tnb_fleet_ledger_merges_total.
  explicit PacketLedger(obs::Registry* metrics = nullptr);

  PacketLedger(const PacketLedger&) = delete;
  PacketLedger& operator=(const PacketLedger&) = delete;

  /// Thread-safe append from any lane worker. Throws after finalize().
  void append(LedgerEntry entry);

  std::size_t size() const;

  /// Sorts into the canonical order and freezes the ledger. Idempotent;
  /// call once the fleet has wound down (no concurrent appends).
  const std::vector<LedgerEntry>& finalize();

 private:
  mutable std::mutex mu_;
  std::vector<LedgerEntry> entries_;
  bool finalized_ = false;
  obs::CounterRef merges_;
};

}  // namespace tnb::fleet
