// Critically-sampled DFT polyphase channelizer — the fleet's wideband
// front end (tnb::fleet, DESIGN.md "Gateway fleet").
//
// A real gateway digitizes one wideband stream covering N adjacent LoRa
// channels at Fs = N x fs (fs = per-channel rate, bandwidth x OSF) and
// splits it into N baseband streams. Channel k is centered at k * fs with
// FFT bin wrapping: indices above N/2 alias to negative frequencies, so
// channel 0 sits at DC and channel N/2 at the band edge. Each block of N
// wideband samples yields exactly one output sample per channel: the
// polyphase branches filter the block history with a prototype lowpass,
// then one N-point DFT separates the channels.
//
// With taps == 1 the prototype is the rectangular window and the analysis
// is the exact inverse (to float rounding) of mix_channels' block-DFT
// synthesis — the property the fleet's ground-truth differential tests
// stand on. taps > 1 selects a Hann-windowed-sinc prototype that trades
// exact reconstruction for adjacent-channel rejection on real captures
// (tests/test_channelizer.cpp pins the leakage tolerance).
//
// A wideband stream rarely ends on a block boundary; the sub-block tail is
// dropped and reported via partial_tail_samples(), mirroring the sticky
// torn-pair semantics of stream::IstreamSource one level up.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "stream/chunk_source.hpp"

namespace tnb::fleet {

struct ChannelizerOptions {
  /// Channels across the wideband input; must be a power of two (the
  /// separating DFT runs on the shared dsp::fft_plan cache).
  unsigned n_channels = 8;
  /// Polyphase prototype taps per branch: 1 = rectangular (perfect
  /// reconstruction of block-aligned synthesis), >1 = Hann-windowed sinc.
  unsigned taps = 1;

  void validate() const;
};

/// Center frequency of channel k relative to the wideband center, in units
/// of the per-channel sample rate fs (k > N/2 wraps negative).
double channel_center_offset(unsigned k, unsigned n_channels);

class Channelizer {
 public:
  explicit Channelizer(ChannelizerOptions opt);

  unsigned n_channels() const { return opt_.n_channels; }
  const ChannelizerOptions& options() const { return opt_; }

  /// Consumes wideband samples and appends each channel's new baseband
  /// samples to out[k]; out.size() must equal n_channels(). Block assembly
  /// is internal, so the per-channel output is bit-identical for every way
  /// of chunking the same wideband stream.
  void push(std::span<const cfloat> wideband, std::vector<IqBuffer>& out);

  /// Whole blocks processed so far (one output sample per channel each).
  std::size_t blocks() const { return blocks_; }

  /// Wideband samples buffered below one block. Whatever remains at end of
  /// stream is a truncated tail: dropped, never emitted.
  std::size_t pending_samples() const { return pending_.size(); }

 private:
  void process_block(const cfloat* block, std::vector<IqBuffer>& out);

  ChannelizerOptions opt_;
  std::vector<float> proto_;  ///< prototype filter, taps x N, time-major
  IqBuffer pending_;          ///< sub-block wideband tail
  IqBuffer recent_;           ///< last `taps` blocks, oldest first
  IqBuffer work_;             ///< N-point DFT scratch
  std::size_t blocks_ = 0;
};

/// Exact synthesis inverse of the taps == 1 analysis: sample m of channel k
/// is held for one wideband block and mixed to center k * fs, i.e.
/// w[m*N + r] = sum_k x_k[m] * e^{+j 2 pi k r / N}. Shorter channels are
/// zero-padded to the longest; channels.size() must not exceed n_channels
/// (missing channels transmit silence).
IqBuffer mix_channels(std::span<const IqBuffer> channels, unsigned n_channels);

/// Pulls one wideband ChunkSource through a shared Channelizer and buffers
/// per-channel output for the ChannelSource views below. Intended for
/// consumers that drain all channels at a similar pace (the buffered lead
/// of any channel is bounded by what the laggard has not read yet).
class ChannelSplitter {
 public:
  ChannelSplitter(stream::ChunkSource& wideband, ChannelizerOptions opt,
                  std::size_t wideband_chunk_samples = 1 << 16);

  unsigned n_channels() const { return chan_.n_channels(); }

  /// Fills `out` with up to max_samples of channel k, pumping the wideband
  /// source as needed. Returns out.size(); 0 = wideband end of stream and
  /// channel k fully drained.
  std::size_t next_for(unsigned channel, IqBuffer& out,
                       std::size_t max_samples);

  const Channelizer& channelizer() const { return chan_; }

 private:
  stream::ChunkSource* src_;
  Channelizer chan_;
  std::size_t chunk_samples_;
  std::vector<IqBuffer> buffered_;  ///< per-channel, not yet handed out
  std::vector<std::size_t> read_;   ///< consumed prefix of buffered_[k]
  IqBuffer scratch_;
  bool eof_ = false;
};

/// One channel of a ChannelSplitter as a stream::ChunkSource — a fleet lane
/// (or a plain StreamingReceiver) can consume a single channel of a
/// wideband capture through the ordinary chunked-source interface.
class ChannelSource final : public stream::ChunkSource {
 public:
  ChannelSource(ChannelSplitter& splitter, unsigned channel)
      : splitter_(&splitter), channel_(channel) {}

  std::size_t next(IqBuffer& out, std::size_t max_samples) override {
    return splitter_->next_for(channel_, out, max_samples);
  }

 private:
  ChannelSplitter* splitter_;
  unsigned channel_;
};

}  // namespace tnb::fleet
