#include "fleet/fleet.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/json.hpp"

namespace tnb::fleet {

std::string FleetStats::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("fleet").begin_object();
  w.field("channels", static_cast<std::uint64_t>(channels));
  w.key("sfs").begin_array();
  for (unsigned sf : sfs) w.value(std::uint64_t{sf});
  w.end_array();
  w.field("lanes", static_cast<std::uint64_t>(lanes));
  w.field("wideband_samples_in", wideband_samples_in);
  w.field("wideband_blocks", wideband_blocks);
  w.field("partial_tail_samples", partial_tail_samples);
  w.field("chunks_dispatched", chunks_dispatched);
  w.field("steals", steals);
  w.field("resident_iq_samples", resident_iq_samples);
  w.field("resident_iq_high_water", resident_iq_high_water);
  w.field("resident_iq_bound", resident_iq_bound);
  w.field("packets", packets);
  w.end_object();
  // Per-channel objects merge every SF lane of that channel; "totals"
  // merges every lane. Both reuse StreamingStats::to_json so the nested
  // schema is the single-gateway one.
  w.key("channels").begin_object();
  unsigned last_channel = 0;
  stream::StreamingStats acc;
  bool open = false;
  for (const auto& [info, st] : lane_stats) {
    if (open && info.channel != last_channel) {
      w.key(std::to_string(last_channel)).raw(acc.to_json());
      acc = stream::StreamingStats{};
    }
    last_channel = info.channel;
    acc += st;
    open = true;
  }
  if (open) w.key(std::to_string(last_channel)).raw(acc.to_json());
  w.end_object();
  stream::StreamingStats totals;
  for (const auto& [info, st] : lane_stats) totals += st;
  w.key("totals").raw(totals.to_json());
  w.end_object();
  return w.take();
}

Fleet::Fleet(lora::Params base, FleetOptions opt)
    : base_(base),
      opt_(std::move(opt)),
      chan_(ChannelizerOptions{opt_.n_channels, opt_.taps}),
      ledger_(opt_.receiver.metrics) {
  base_.validate();
  if (opt_.sfs.empty()) {
    throw std::invalid_argument("FleetOptions: sfs must not be empty");
  }
  unsigned max_sf = 0;
  for (unsigned sf : opt_.sfs) max_sf = std::max(max_sf, sf);
  dispatch_samples_ = opt_.dispatch_samples != 0
                          ? opt_.dispatch_samples
                          : 16 * (std::size_t{1} << max_sf) * base_.osf;
  opt_.lane_queue_chunks = std::max<std::size_t>(opt_.lane_queue_chunks, 1);
  staging_.resize(opt_.n_channels);

  const std::size_t n_lanes =
      static_cast<std::size_t>(opt_.n_channels) * opt_.sfs.size();
  obs::Registry* reg = obs::resolve(opt_.receiver.metrics);
  lanes_.reserve(n_lanes);
  for (unsigned c = 0; c < opt_.n_channels; ++c) {
    for (unsigned sf : opt_.sfs) {
      lora::Params p = base_;
      p.sf = sf;
      p.validate();
      rx::ReceiverOptions ropt = opt_.receiver;
      ropt.metric_labels = {{"channel", std::to_string(c)},
                            {"sf", std::to_string(sf)}};
      stream::StreamingOptions sopt = opt_.stream;
      sopt.keep_packets = false;  // the ledger owns the packets
      auto lane = std::make_unique<Lane>(p, ropt, sopt);
      lane->info.channel = c;
      lane->info.sf = sf;
      lane->info.window_samples = lane->rx.options().window_symbols * p.sps();
      const unsigned idx = static_cast<unsigned>(lanes_.size());
      lane->rx.set_packet_callback(
          [this, c, sf, idx](const sim::DecodedPacket& pkt) {
            ledger_.append(LedgerEntry{c, sf, idx, pkt.start_sample, pkt});
          });
      if (reg != nullptr) {
        lane->queue_depth =
            reg->gauge("tnb_fleet_lane_queue_depth", "Queued lane chunks",
                       ropt.metric_labels);
      }
      lanes_.push_back(std::move(lane));
    }
  }

  // Backpressure ceiling: per lane, the assembly window peaks below 2W
  // (StreamingReceiver invariant) and the queue holds lane_queue_chunks
  // chunks plus the one in flight.
  resident_bound_ = 0;
  for (const auto& lane : lanes_) {
    resident_bound_ += 2 * lane->info.window_samples +
                       (opt_.lane_queue_chunks + 1) * dispatch_samples_;
  }

  n_workers_ = static_cast<unsigned>(std::clamp<std::size_t>(
      static_cast<std::size_t>(common::resolve_jobs(opt_.lanes)), 1,
      lanes_.size()));
  steals_.assign(n_workers_, 0);
  if (reg != nullptr) {
    obs_.wideband_samples_in = reg->counter(
        "tnb_fleet_wideband_samples_in_total", "Wideband IQ samples ingested");
    obs_.chunks_dispatched = reg->counter("tnb_fleet_chunks_dispatched_total",
                                          "Lane chunks enqueued");
    obs_.partial_tail =
        reg->counter("tnb_fleet_partial_tail_samples_total",
                     "Sub-block wideband tail samples dropped at end of stream");
    obs_.resident_iq = reg->gauge("tnb_fleet_resident_iq_samples",
                                  "IQ samples resident across all lanes");
    obs_.resident_iq_high_water =
        reg->gauge("tnb_fleet_resident_iq_high_water_samples",
                   "High-water mark of resident IQ samples");
    obs_.steals.reserve(n_workers_);
    for (unsigned wkr = 0; wkr < n_workers_; ++wkr) {
      obs_.steals.push_back(
          reg->counter("tnb_fleet_steals_total", "Lanes run by a foreign worker",
                       {{"worker", std::to_string(wkr)}}));
    }
  }

  pool_ = std::make_unique<common::ThreadPool>(static_cast<int>(n_workers_));
  for (unsigned wkr = 0; wkr < n_workers_; ++wkr) {
    pool_->submit([this, wkr] { worker_loop(wkr); });
  }
}

Fleet::~Fleet() {
  if (!finished_) {
    try {
      finish();
    } catch (...) {
      // A lane's decode exception was already delivered (or is undeliverable
      // from a destructor); the workers have wound down either way.
    }
  }
}

void Fleet::resident_add(std::size_t n) {
  if (n == 0) return;
  const std::size_t now =
      resident_.fetch_add(n, std::memory_order_relaxed) + n;
  std::size_t cur = resident_peak_.load(std::memory_order_relaxed);
  while (cur < now && !resident_peak_.compare_exchange_weak(
                          cur, now, std::memory_order_relaxed)) {
  }
  obs_.resident_iq.add(static_cast<std::int64_t>(n));
  obs_.resident_iq_high_water.update_max(static_cast<std::int64_t>(now));
}

void Fleet::resident_sub(std::size_t n) {
  if (n == 0) return;
  resident_.fetch_sub(n, std::memory_order_relaxed);
  obs_.resident_iq.add(-static_cast<std::int64_t>(n));
}

void Fleet::enqueue(Lane& lane, IqBuffer chunk) {
  const std::size_t n = chunk.size();
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_space_.wait(lk, [&] {
      return lane.q.size() < opt_.lane_queue_chunks || lane.finished;
    });
    if (lane.finished) return;  // lane died mid-run; drop, don't deadlock
    lane.q.push_back(std::move(chunk));
    lane.queued_samples += n;
    ++chunks_dispatched_;
    lane.queue_depth.set(static_cast<std::int64_t>(lane.q.size()));
  }
  obs_.chunks_dispatched.inc();
  resident_add(n);
  cv_work_.notify_one();
}

void Fleet::dispatch_staged(unsigned channel, bool eof) {
  IqBuffer& buf = staging_[channel];
  const std::size_t lanes_per_channel = opt_.sfs.size();
  const std::size_t first = channel * lanes_per_channel;
  std::size_t pos = 0;
  while (buf.size() - pos >= dispatch_samples_ ||
         (eof && pos < buf.size())) {
    const std::size_t take = std::min(dispatch_samples_, buf.size() - pos);
    for (std::size_t l = 0; l < lanes_per_channel; ++l) {
      IqBuffer chunk(buf.begin() + static_cast<std::ptrdiff_t>(pos),
                     buf.begin() + static_cast<std::ptrdiff_t>(pos + take));
      enqueue(*lanes_[first + l], std::move(chunk));
    }
    pos += take;
  }
  buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(pos));
}

void Fleet::push_wideband(std::span<const cfloat> wideband) {
  if (finished_) {
    throw std::logic_error("Fleet: push_wideband after finish");
  }
  chan_.push(wideband, staging_);
  for (unsigned c = 0; c < opt_.n_channels; ++c) dispatch_staged(c, false);
  obs_.wideband_samples_in.inc(wideband.size());
  std::lock_guard<std::mutex> lk(mu_);
  wideband_samples_in_ += wideband.size();
  wideband_blocks_ = chan_.blocks();
}

void Fleet::finish() {
  if (finished_) return;
  for (unsigned c = 0; c < opt_.n_channels; ++c) dispatch_staged(c, true);
  obs_.partial_tail.inc(chan_.pending_samples());
  {
    std::lock_guard<std::mutex> lk(mu_);
    partial_tail_samples_ = chan_.pending_samples();
    wideband_blocks_ = chan_.blocks();
    done_ = true;
  }
  cv_work_.notify_all();
  pool_->wait();  // rethrows the first lane exception, if any
  ledger_.finalize();
  finished_ = true;
}

std::size_t Fleet::consume(stream::ChunkSource& src,
                           std::size_t chunk_samples) {
  IqBuffer chunk;
  std::size_t total = 0;
  while (src.next(chunk, chunk_samples) > 0) {
    push_wideband(chunk);
    total += chunk.size();
  }
  finish();
  return total;
}

const std::vector<LedgerEntry>& Fleet::ledger() {
  if (!finished_) {
    throw std::logic_error("Fleet: ledger() before finish()");
  }
  return ledger_.finalize();
}

stream::StreamingStats Fleet::lane_stream_stats(std::size_t i) const {
  std::lock_guard<std::mutex> lk(mu_);
  return lanes_[i]->snapshot;
}

FleetStats Fleet::stats() const {
  FleetStats s;
  s.channels = opt_.n_channels;
  s.sfs = opt_.sfs;
  s.lanes = n_workers_;
  s.resident_iq_samples = resident_.load(std::memory_order_relaxed);
  s.resident_iq_high_water = resident_peak_.load(std::memory_order_relaxed);
  s.resident_iq_bound = resident_bound_;
  s.packets = ledger_.size();
  std::lock_guard<std::mutex> lk(mu_);
  s.wideband_samples_in = wideband_samples_in_;
  s.wideband_blocks = wideband_blocks_;
  s.partial_tail_samples = partial_tail_samples_;
  s.chunks_dispatched = chunks_dispatched_;
  for (std::size_t st : steals_) s.steals += st;
  s.lane_stats.reserve(lanes_.size());
  for (const auto& lane : lanes_) {
    s.lane_stats.emplace_back(lane->info, lane->snapshot);
  }
  return s;
}

bool Fleet::all_lanes_finished() const {
  for (const auto& lane : lanes_) {
    if (!lane->finished) return false;
  }
  return true;
}

Fleet::Lane* Fleet::pick_lane(unsigned worker, bool* stolen) {
  const auto runnable = [this](const Lane& lane) {
    return !lane.claimed && !lane.finished &&
           (!lane.q.empty() || done_);
  };
  for (std::size_t i = worker; i < lanes_.size(); i += n_workers_) {
    if (runnable(*lanes_[i])) {
      *stolen = false;
      return lanes_[i].get();
    }
  }
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (i % n_workers_ != worker && runnable(*lanes_[i])) {
      *stolen = true;
      return lanes_[i].get();
    }
  }
  return nullptr;
}

void Fleet::worker_loop(unsigned worker) {
  for (;;) {
    Lane* lane = nullptr;
    bool stolen = false;
    IqBuffer chunk;
    bool do_finish = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] {
        lane = pick_lane(worker, &stolen);
        return lane != nullptr || (done_ && all_lanes_finished());
      });
      if (lane == nullptr) break;  // every lane finished: wind down
      if (stolen) {
        ++steals_[worker];
        if (worker < obs_.steals.size()) obs_.steals[worker].inc();
      }
      lane->claimed = true;
      if (!lane->q.empty()) {
        chunk = std::move(lane->q.front());
        lane->q.pop_front();
        lane->queued_samples -= chunk.size();
        lane->queue_depth.set(static_cast<std::int64_t>(lane->q.size()));
      } else {
        do_finish = true;  // done_ and drained: run the lane's finish()
      }
    }
    cv_space_.notify_all();
    // `claimed` gives this worker exclusive, mutex-ordered access to the
    // lane's receiver and snapshot until it is released below.
    const std::size_t prev_retired = lane->snapshot.samples_retired;
    try {
      if (do_finish) {
        lane->rx.finish();
      } else {
        lane->rx.push_chunk(chunk);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      lane->finished = true;  // release everyone waiting on this lane
      lane->claimed = false;
      cv_work_.notify_all();
      cv_space_.notify_all();
      throw;  // delivered by ThreadPool::wait in finish()
    }
    stream::StreamingStats snap = lane->rx.stats();
    std::size_t freed = snap.samples_retired - prev_retired;
    if (do_finish) {
      // Whatever the final flush could not retire (e.g. a trailing torn
      // packet) leaves the window with the lane; zero the lane's share.
      freed += snap.samples_in - snap.samples_retired;
    }
    resident_sub(freed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      lane->snapshot = std::move(snap);
      lane->claimed = false;
      if (do_finish) {
        lane->finished = true;
      } else {
        ++lane->chunks_done;
      }
    }
    cv_work_.notify_all();
  }
  cv_work_.notify_all();  // wake siblings so they observe the wind-down
}

std::size_t run_fleet_pipeline(
    stream::ChunkSource& src, stream::IqRing& ring, Fleet& fleet,
    std::size_t chunk_samples, bool backpressure,
    const std::function<void(std::size_t samples_consumed)>& on_chunk) {
  std::thread producer([&] {
    IqBuffer chunk;
    while (src.next(chunk, chunk_samples) > 0) {
      if (backpressure) {
        ring.push(chunk);
      } else {
        ring.try_push(chunk);
      }
    }
    ring.close();
  });
  IqBuffer chunk;
  std::size_t total = 0;
  while (ring.pop(chunk, chunk_samples) > 0) {
    fleet.push_wideband(chunk);
    total += chunk.size();
    if (on_chunk) on_chunk(total);
  }
  producer.join();
  fleet.finish();
  return total;
}

}  // namespace tnb::fleet
