#include "fleet/channelizer.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/fft.hpp"

namespace tnb::fleet {
namespace {

bool power_of_two(unsigned n) { return n != 0 && (n & (n - 1)) == 0; }

/// Hann-windowed sinc lowpass with cutoff at the channel half-width
/// (fs / 2 of the wideband rate N * fs), length taps * N, normalized per
/// polyphase branch so a constant (block-held, bin-centered) input passes
/// with unit gain — which keeps SNR estimates downstream calibrated.
std::vector<float> prototype_filter(unsigned n, unsigned taps) {
  const std::size_t len = static_cast<std::size_t>(n) * taps;
  std::vector<float> h(len);
  if (taps == 1) {
    std::fill(h.begin(), h.end(), 1.0f);
    return h;
  }
  const double center = (static_cast<double>(len) - 1.0) / 2.0;
  for (std::size_t i = 0; i < len; ++i) {
    const double x = (static_cast<double>(i) - center) / static_cast<double>(n);
    const double sinc =
        x == 0.0 ? 1.0
                 : std::sin(std::numbers::pi * x) / (std::numbers::pi * x);
    const double hann =
        0.5 - 0.5 * std::cos(2.0 * std::numbers::pi *
                             (static_cast<double>(i) + 0.5) /
                             static_cast<double>(len));
    // Stored block-reversed: process_block weights input phase r of tap t
    // with proto[t*N + r], which reaches the impulse response at delay
    // t*N + (N-1-r) — reversing each block here makes the effective
    // filter the smooth windowed sinc rather than a per-block-scrambled
    // one (whose stopband would degenerate to the rectangular window's).
    h[i / n * n + (n - 1 - i % n)] = static_cast<float>(sinc * hann);
  }
  // Branch-wise DC normalization: sum_t h[t*N + r] == 1 for every r.
  for (unsigned r = 0; r < n; ++r) {
    double s = 0.0;
    for (unsigned t = 0; t < taps; ++t) s += h[t * n + r];
    if (s != 0.0) {
      for (unsigned t = 0; t < taps; ++t) {
        h[t * n + r] = static_cast<float>(h[t * n + r] / s);
      }
    }
  }
  return h;
}

}  // namespace

void ChannelizerOptions::validate() const {
  if (!power_of_two(n_channels) || n_channels > 1024) {
    throw std::invalid_argument(
        "ChannelizerOptions: n_channels must be a power of two <= 1024");
  }
  if (taps < 1 || taps > 32) {
    throw std::invalid_argument("ChannelizerOptions: taps must be 1..32");
  }
}

double channel_center_offset(unsigned k, unsigned n_channels) {
  const double kk = static_cast<double>(k % n_channels);
  return kk <= n_channels / 2 ? kk : kk - static_cast<double>(n_channels);
}

Channelizer::Channelizer(ChannelizerOptions opt) : opt_(opt) {
  opt_.validate();
  proto_ = prototype_filter(opt_.n_channels, opt_.taps);
  recent_.assign(static_cast<std::size_t>(opt_.n_channels) * opt_.taps,
                 cfloat{0.0f, 0.0f});
  work_.resize(opt_.n_channels);
}

void Channelizer::push(std::span<const cfloat> wideband,
                       std::vector<IqBuffer>& out) {
  if (out.size() != opt_.n_channels) {
    throw std::invalid_argument("Channelizer::push: out.size() != n_channels");
  }
  const std::size_t n = opt_.n_channels;
  if (n == 1) {  // degenerate single-channel fleet: pure passthrough
    out[0].insert(out[0].end(), wideband.begin(), wideband.end());
    blocks_ += wideband.size();
    return;
  }

  // Fast path: whole blocks straight from the input once the carried-over
  // tail (if any) has been completed and processed.
  std::size_t pos = 0;
  if (!pending_.empty()) {
    const std::size_t need = n - pending_.size();
    const std::size_t take = std::min(need, wideband.size());
    pending_.insert(pending_.end(), wideband.begin(),
                    wideband.begin() + static_cast<std::ptrdiff_t>(take));
    pos = take;
    if (pending_.size() < n) return;
    process_block(pending_.data(), out);
    pending_.clear();
  }
  for (; pos + n <= wideband.size(); pos += n) {
    process_block(wideband.data() + pos, out);
  }
  pending_.insert(pending_.end(),
                  wideband.begin() + static_cast<std::ptrdiff_t>(pos),
                  wideband.end());
}

void Channelizer::process_block(const cfloat* block, std::vector<IqBuffer>& out) {
  const std::size_t n = opt_.n_channels;
  const float inv_n = 1.0f / static_cast<float>(n);
  if (opt_.taps == 1) {
    std::copy(block, block + n, work_.begin());
  } else {
    // Slide the block history (oldest first) and filter each polyphase
    // branch: v[r] = sum_t h[t*N + r] * w[(m-t)*N + r], newest block t = 0.
    const std::size_t taps = opt_.taps;
    std::copy(recent_.begin() + static_cast<std::ptrdiff_t>(n), recent_.end(),
              recent_.begin());
    std::copy(block, block + n, recent_.end() - static_cast<std::ptrdiff_t>(n));
    for (std::size_t r = 0; r < n; ++r) {
      cfloat acc{0.0f, 0.0f};
      for (std::size_t t = 0; t < taps; ++t) {
        acc += proto_[t * n + r] * recent_[(taps - 1 - t) * n + r];
      }
      work_[r] = acc;
    }
  }
  // One N-point DFT separates the channels; the mixing phase is
  // block-periodic (e^{-j 2 pi k (mN + r) / N} = e^{-j 2 pi k r / N}), so
  // no per-block phase correction is needed.
  dsp::fft_plan(n).forward(work_);
  for (std::size_t k = 0; k < n; ++k) {
    out[k].push_back(work_[k] * inv_n);
  }
  ++blocks_;
}

IqBuffer mix_channels(std::span<const IqBuffer> channels, unsigned n_channels) {
  ChannelizerOptions opt;
  opt.n_channels = n_channels;
  opt.validate();
  if (channels.size() > n_channels) {
    throw std::invalid_argument("mix_channels: more channels than n_channels");
  }
  std::size_t longest = 0;
  for (const IqBuffer& c : channels) longest = std::max(longest, c.size());
  const std::size_t n = n_channels;
  IqBuffer wideband(longest * n);
  if (longest == 0) return wideband;
  if (n == 1) {
    std::copy(channels[0].begin(), channels[0].end(), wideband.begin());
    return wideband;
  }
  const dsp::FftPlan& plan = dsp::fft_plan(n);
  IqBuffer work(n);
  const float gain = static_cast<float>(n);  // undo the IFFT's 1/N
  for (std::size_t m = 0; m < longest; ++m) {
    for (std::size_t k = 0; k < n; ++k) {
      work[k] = k < channels.size() && m < channels[k].size()
                    ? channels[k][m]
                    : cfloat{0.0f, 0.0f};
    }
    plan.inverse(work);
    for (std::size_t r = 0; r < n; ++r) {
      wideband[m * n + r] = work[r] * gain;
    }
  }
  return wideband;
}

ChannelSplitter::ChannelSplitter(stream::ChunkSource& wideband,
                                 ChannelizerOptions opt,
                                 std::size_t wideband_chunk_samples)
    : src_(&wideband),
      chan_(opt),
      chunk_samples_(std::max<std::size_t>(wideband_chunk_samples, 1)),
      buffered_(opt.n_channels),
      read_(opt.n_channels, 0) {}

std::size_t ChannelSplitter::next_for(unsigned channel, IqBuffer& out,
                                      std::size_t max_samples) {
  out.clear();
  if (channel >= chan_.n_channels() || max_samples == 0) return 0;
  IqBuffer& buf = buffered_[channel];
  std::size_t& rd = read_[channel];
  while (buf.size() - rd == 0 && !eof_) {
    if (src_->next(scratch_, chunk_samples_) == 0) {
      eof_ = true;
      break;
    }
    chan_.push(scratch_, buffered_);
  }
  const std::size_t take = std::min(max_samples, buf.size() - rd);
  out.assign(buf.begin() + static_cast<std::ptrdiff_t>(rd),
             buf.begin() + static_cast<std::ptrdiff_t>(rd + take));
  rd += take;
  if (rd == buf.size()) {  // fully drained: reclaim the channel buffer
    buf.clear();
    rd = 0;
  }
  return out.size();
}

}  // namespace tnb::fleet
