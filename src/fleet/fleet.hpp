// tnb::fleet — the multi-channel gateway: one wideband stream, a
// channelizer front end, and per-(channel, SF) StreamingReceiver lanes
// scheduled on a work-stealing worker pool, merging into one packet
// ledger (ROADMAP item 1; DESIGN.md "Gateway fleet").
//
// Data path: push_wideband() (producer thread) channelizes into per-
// channel staging buffers; every `dispatch_samples` of a channel becomes
// one chunk, copied into the bounded queue of each of that channel's SF
// lanes (blocking when a queue is full — backpressure bounds total
// resident IQ). `lanes` workers drain the queues: each worker owns a
// round-robin partition of the lanes and steals a runnable lane from the
// others when its own are idle (counted per worker). A lane is only ever
// processed by one worker at a time and its chunks in arrival order, so
// every lane decodes exactly as a standalone StreamingReceiver fed the
// same channel stream — scheduling affects wall clock, never output.
// Decoded packets are appended to the PacketLedger tagged with
// (channel, SF, lane, t0); after finish() the ledger freezes into its
// canonical (t0, channel) order, identical for every lane count and
// chunk size.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include <condition_variable>

#include "common/thread_pool.hpp"
#include "fleet/channelizer.hpp"
#include "fleet/ledger.hpp"
#include "stream/ring_buffer.hpp"
#include "stream/streaming_receiver.hpp"

namespace tnb::fleet {

struct FleetOptions {
  /// Channels in the wideband input (power of two, see ChannelizerOptions).
  unsigned n_channels = 8;
  /// One lane per (channel, SF): every channel is decoded at each of these
  /// spreading factors in parallel, the way a real gateway listens on
  /// SF7-12 per frequency.
  std::vector<unsigned> sfs = {8};
  /// Worker threads draining the lanes. <= 0 resolves via TNB_JOBS
  /// (common::resolve_jobs); the lane count caps it.
  int lanes = 1;
  /// Chunk granularity handed to a lane, in channel-rate samples.
  /// 0 = 16 symbols of the largest configured SF.
  std::size_t dispatch_samples = 0;
  /// Bounded per-lane queue, in chunks; the producer blocks when full.
  std::size_t lane_queue_chunks = 4;
  /// Channelizer prototype taps (1 = exact block-DFT reconstruction).
  unsigned taps = 1;
  /// Per-lane streaming configuration (window, rng_seed, ...).
  /// keep_packets is forced off — the ledger owns the packets.
  stream::StreamingOptions stream;
  /// Per-lane receiver configuration; metric_labels is overwritten with
  /// each lane's {channel, sf} labels.
  rx::ReceiverOptions receiver;
};

/// Identity and geometry of one lane.
struct LaneInfo {
  unsigned channel = 0;
  unsigned sf = 0;
  /// Effective assembly window (after the StreamingReceiver's floor), in
  /// channel-rate samples; resident IQ per lane stays below twice this.
  std::size_t window_samples = 0;
};

/// Counters of one fleet run. Cumulative like ReceiverStats: snapshots
/// taken mid-run (the daemon's periodic stats line) are consistent,
/// monotone views.
struct FleetStats {
  unsigned channels = 0;
  std::vector<unsigned> sfs;
  unsigned lanes = 0;                      ///< worker threads
  std::size_t wideband_samples_in = 0;
  std::size_t wideband_blocks = 0;         ///< channelizer blocks processed
  std::size_t partial_tail_samples = 0;    ///< sub-block tail dropped at EOF
  std::size_t chunks_dispatched = 0;       ///< lane-chunks enqueued
  std::size_t steals = 0;                  ///< lanes run by a foreign worker
  std::size_t resident_iq_samples = 0;     ///< queued + assembly, all lanes
  std::size_t resident_iq_high_water = 0;
  std::size_t resident_iq_bound = 0;       ///< documented ceiling (2W/lane + queues)
  std::size_t packets = 0;                 ///< ledger size
  /// Per-lane streaming stats, fleet lane order (channel-major, then SF).
  std::vector<std::pair<LaneInfo, stream::StreamingStats>> lane_stats;

  /// One-line JSON: {"fleet":{totals...},"channels":{"0":{merged
  /// StreamingStats of channel 0's lanes},...},"totals":{merged
  /// StreamingStats of every lane}} — schema pinned by
  /// tests/test_obs.cpp (FleetStatsJson), documented in DESIGN.md
  /// "Gateway fleet".
  std::string to_json() const;
};

class Fleet {
 public:
  /// `base` carries the shared PHY configuration (bandwidth, OSF, CR);
  /// each lane clones it with its own SF. Worker threads start here.
  Fleet(lora::Params base, FleetOptions opt);
  /// Winds down the workers (finish() if the caller has not already).
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// Feeds wideband samples (any chunking — the channelizer reassembles
  /// blocks): channelize, stage, dispatch to lane queues. Blocks while
  /// lane queues are full. Throws std::logic_error after finish().
  void push_wideband(std::span<const cfloat> wideband);

  /// End of stream: dispatches every staged sample (the channelizer's
  /// sub-block tail is dropped and counted), lets the lanes drain and
  /// finish, joins the workers, freezes the ledger. Idempotent.
  void finish();

  /// Pull loop: drains `src` in `chunk_samples` wideband chunks, then
  /// finish(). Returns total wideband samples consumed.
  std::size_t consume(stream::ChunkSource& src, std::size_t chunk_samples);

  /// The frozen, canonically ordered ledger. Only valid after finish().
  const std::vector<LedgerEntry>& ledger();

  /// Aggregated counters; safe to call concurrently with the run (the
  /// per-lane stream stats are the lane's last post-chunk snapshot).
  FleetStats stats() const;

  std::size_t lane_count() const { return lanes_.size(); }
  const LaneInfo& lane_info(std::size_t i) const { return lanes_[i]->info; }
  /// Post-chunk snapshot of one lane's streaming stats (exact after
  /// finish()).
  stream::StreamingStats lane_stream_stats(std::size_t i) const;

  const FleetOptions& options() const { return opt_; }
  const lora::Params& base_params() const { return base_; }

 private:
  struct Lane {
    LaneInfo info;
    stream::StreamingReceiver rx;
    std::deque<IqBuffer> q;            ///< guarded by Fleet::mu_
    std::size_t queued_samples = 0;
    bool claimed = false;              ///< a worker is inside rx right now
    bool finished = false;
    std::size_t chunks_done = 0;
    stream::StreamingStats snapshot;   ///< rx.stats() copy, post-chunk
    obs::GaugeRef queue_depth;

    Lane(const lora::Params& p, const rx::ReceiverOptions& ropt,
         const stream::StreamingOptions& sopt)
        : rx(p, ropt, sopt) {}
  };

  void worker_loop(unsigned worker);
  /// Own partition first, then steal; nullptr = nothing runnable.
  Lane* pick_lane(unsigned worker, bool* stolen);
  bool all_lanes_finished() const;
  void enqueue(Lane& lane, IqBuffer chunk);
  void dispatch_staged(unsigned channel, bool eof);
  void resident_add(std::size_t n);
  void resident_sub(std::size_t n);

  lora::Params base_;
  FleetOptions opt_;
  std::size_t dispatch_samples_ = 0;
  unsigned n_workers_ = 1;

  Channelizer chan_;
  std::vector<IqBuffer> staging_;  ///< per-channel, producer thread only
  std::vector<std::unique_ptr<Lane>> lanes_;  ///< channel-major, then SF
  PacketLedger ledger_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   ///< workers: a lane became runnable
  std::condition_variable cv_space_;  ///< producer: a queue has room
  bool done_ = false;                 ///< no more chunks will be enqueued
  bool finished_ = false;

  std::size_t wideband_samples_in_ = 0;   ///< guarded by mu_
  std::size_t wideband_blocks_ = 0;       ///< guarded by mu_
  std::size_t partial_tail_samples_ = 0;  ///< guarded by mu_
  std::size_t chunks_dispatched_ = 0;     ///< guarded by mu_
  std::vector<std::size_t> steals_;      ///< per worker, guarded by mu_
  std::atomic<std::size_t> resident_{0};
  std::atomic<std::size_t> resident_peak_{0};
  std::size_t resident_bound_ = 0;

  std::unique_ptr<common::ThreadPool> pool_;  ///< built once n_workers_ known

  struct Instrumentation {
    obs::CounterRef wideband_samples_in;
    obs::CounterRef chunks_dispatched;
    obs::CounterRef partial_tail;
    obs::GaugeRef resident_iq;
    obs::GaugeRef resident_iq_high_water;
    std::vector<obs::CounterRef> steals;  ///< per worker
  };
  Instrumentation obs_;
};

/// Two-thread wideband pipeline, the fleet twin of stream::run_pipeline: a
/// producer thread drains `src` into `ring` (blocking push when
/// `backpressure`, counted drops otherwise) while the calling thread pops
/// wideband chunks into `fleet`, then finishes it. `on_chunk`, when set,
/// is called after each consumed chunk with the running wideband sample
/// total (the daemon's stats hook). Returns wideband samples consumed.
std::size_t run_fleet_pipeline(
    stream::ChunkSource& src, stream::IqRing& ring, Fleet& fleet,
    std::size_t chunk_samples, bool backpressure = true,
    const std::function<void(std::size_t samples_consumed)>& on_chunk = {});

}  // namespace tnb::fleet
