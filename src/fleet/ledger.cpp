#include "fleet/ledger.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

namespace tnb::fleet {

bool ledger_entry_less(const LedgerEntry& a, const LedgerEntry& b) {
  return std::tie(a.t0, a.channel, a.sf, a.pkt.payload) <
         std::tie(b.t0, b.channel, b.sf, b.pkt.payload);
}

PacketLedger::PacketLedger(obs::Registry* metrics) {
  obs::Registry* reg = obs::resolve(metrics);
  if (reg != nullptr) {
    merges_ = reg->counter("tnb_fleet_ledger_merges_total",
                           "Packets merged into the fleet ledger");
  }
}

void PacketLedger::append(LedgerEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (finalized_) {
    throw std::logic_error("PacketLedger: append after finalize");
  }
  entries_.push_back(std::move(entry));
  merges_.inc();
}

std::size_t PacketLedger::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

const std::vector<LedgerEntry>& PacketLedger::finalize() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!finalized_) {
    std::sort(entries_.begin(), entries_.end(), ledger_entry_less);
    finalized_ = true;
  }
  return entries_;
}

}  // namespace tnb::fleet
