#include "baselines/argmax_assigner.hpp"

#include "lora/demodulator.hpp"

namespace tnb::base {

ArgmaxAssigner::ArgmaxAssigner(lora::Params p) : p_(p) { p_.validate(); }

std::vector<rx::Assignment> ArgmaxAssigner::assign(const rx::AssignInput& in) {
  std::vector<rx::Assignment> out(in.symbols.size());
  for (std::size_t i = 0; i < in.symbols.size(); ++i) {
    const rx::ActiveSymbol& sym = in.symbols[i];
    const rx::PacketContext& ctx =
        in.contexts[static_cast<std::size_t>(sym.packet)];
    const rx::SymbolView& view =
        in.sig->data_symbol(sym.packet, ctx, sym.data_idx);
    const std::size_t bin = lora::Demodulator::argmax(view.sv);
    out[i] = {sym.packet, sym.data_idx, static_cast<int>(bin),
              static_cast<double>(view.sv[bin])};
  }
  return out;
}

}  // namespace tnb::base
