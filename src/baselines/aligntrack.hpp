// AlignTrack* — the peak-assignment core of AlignTrack (Chen & Wang, ICNP
// 2021), reimplemented as in the paper's Section 8.2.
//
// A peak is considered aligned to a symbol if it is higher in that symbol's
// signal vector than at the corresponding (alpha-mapped) locations in every
// other packet's signal vectors. When several peaks of one symbol qualify —
// which happens whenever an accidental (noise/interference) peak shows up
// in one vector only — an arbitrary choice has to be made; this is the
// weakness the paper observes at SF 10 (Section 8.4).
#pragma once

#include "core/assign.hpp"
#include "lora/params.hpp"

namespace tnb::base {

class AlignTrackStar final : public rx::PeakAssigner {
 public:
  explicit AlignTrackStar(lora::Params p);

  std::vector<rx::Assignment> assign(const rx::AssignInput& in) override;

 private:
  lora::Params p_;
};

}  // namespace tnb::base
