#include "baselines/cic.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_util.hpp"
#include "core/window.hpp"
#include "dsp/fft.hpp"
#include "dsp/peak_finder.hpp"
#include "dsp/smoother.hpp"
#include "lora/chirp.hpp"
#include "lora/demodulator.hpp"

namespace tnb::base {

CicAssigner::CicAssigner(lora::Params p, CicOptions opt) : p_(p), opt_(opt) {
  p_.validate();
}

SignalVector CicAssigner::subwindow_spectrum(const rx::AssignInput& in,
                                             double w_start, double a,
                                             double b, double cfo) const {
  const std::size_t sps = p_.sps();
  const std::size_t n = p_.n_bins();
  const std::size_t off = static_cast<std::size_t>(std::max(0.0, a - w_start));
  const std::size_t len =
      std::min(sps - off, static_cast<std::size_t>(std::max(0.0, b - a)));

  std::vector<cfloat> seg(len);
  rx::extract_window(in.sig->antenna(0), a, seg);

  // Dechirp the segment with the matching slice of the downchirp and CFO
  // phasor, keeping its position inside the symbol so the tone bin is the
  // same as in the full-window spectrum.
  std::vector<cfloat> buf(sps, cfloat{0.0f, 0.0f});
  const double dphi = -kTwoPi * cfo / static_cast<double>(sps);
  for (std::size_t i = 0; i < len; ++i) {
    const double u = static_cast<double>(off + i) / p_.osf;
    const cfloat ref = lora::eval_downchirp(u, n);
    const double ph = dphi * static_cast<double>(off + i);
    const cfloat rot{static_cast<float>(std::cos(ph)),
                     static_cast<float>(std::sin(ph))};
    buf[off + i] = seg[i] * ref * rot;
  }
  dsp::fft_inplace(buf);

  SignalVector sv(n);
  const std::size_t image = n * (p_.osf - 1);
  float mx = 0.0f;
  for (std::size_t k = 0; k < n; ++k) {
    sv[k] = std::norm(buf[k]);
    if (p_.osf > 1) sv[k] += std::norm(buf[k + image]);
    mx = std::max(mx, sv[k]);
  }
  if (mx > 0.0f) {
    for (float& v : sv) v /= mx;
  }
  return sv;
}

std::vector<rx::Assignment> CicAssigner::assign(const rx::AssignInput& in) {
  const std::size_t n = p_.n_bins();
  const double nd = static_cast<double>(n);
  const double sps = static_cast<double>(p_.sps());
  const double min_len = sps / static_cast<double>(opt_.min_subwindow_div);

  std::vector<rx::Assignment> out(in.symbols.size());
  for (std::size_t i = 0; i < in.symbols.size(); ++i) {
    const rx::ActiveSymbol& sym = in.symbols[i];
    const rx::PacketContext& ctx =
        in.contexts[static_cast<std::size_t>(sym.packet)];
    const double w = sym.window_start;
    const double cfo = ctx.cfo_cycles();
    out[i].packet = sym.packet;
    out[i].data_idx = sym.data_idx;

    // Interferer boundaries inside [w, w+sps).
    std::vector<double> cuts{w, w + sps};
    for (std::size_t k = 0; k < in.symbols.size(); ++k) {
      if (k == i) continue;
      double b = in.symbols[k].window_start;
      if (b <= w) b += sps;
      if (b > w && b < w + sps) cuts.push_back(b);
    }
    std::sort(cuts.begin(), cuts.end());

    // The target's tone persists across every sub-window; an interferer's
    // tone leaves the peak set of the sub-windows beyond its boundary.
    // Candidates are the full-window peaks; each sub-window votes for the
    // candidates that still show a peak near the candidate bin.
    const rx::SymbolView& view =
        in.sig->data_symbol(sym.packet, ctx, sym.data_idx);
    const auto& masks = in.masked_bins[i];
    std::vector<const dsp::Peak*> candidates;
    for (const dsp::Peak& pk : view.peaks) {
      bool masked = false;
      for (double mb : masks) {
        if (std::abs(wrap_half(pk.frac_index - mb, nd)) <= 1.5) {
          masked = true;
          break;
        }
      }
      if (!masked) candidates.push_back(&pk);
    }
    if (candidates.empty()) {
      out[i].bin = static_cast<int>(lora::Demodulator::argmax(view.sv));
      out[i].height = view.sv[static_cast<std::size_t>(out[i].bin)];
      continue;
    }

    std::vector<int> votes(candidates.size(), 0);
    int n_subwindows = 0;
    for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
      const double len = cuts[c + 1] - cuts[c];
      if (len < min_len) continue;
      const SignalVector sub =
          subwindow_spectrum(in, w, cuts[c], cuts[c + 1], cfo);
      ++n_subwindows;
      std::vector<double> tmp(sub.begin(), sub.end());
      const double med = std::max(dsp::median_of(tmp), 1e-30);
      // Spectral resolution of a short sub-window widens the match window.
      const int tol =
          static_cast<int>(std::lround(std::max(1.5, 0.75 * sps / len)));
      for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
        const int base = static_cast<int>(candidates[ci]->index);
        double e = 0.0;
        for (int d = -tol; d <= tol; ++d) {
          const std::size_t b = static_cast<std::size_t>(
              floor_mod(base + d, static_cast<std::int64_t>(n)));
          e = std::max(e, static_cast<double>(sub[b]));
        }
        // A tone is "present" if it clearly rises above this sub-window's
        // noise floor.
        if (e >= 6.0 * med) ++votes[ci];
      }
    }

    // The target's tone must survive in every sub-window: among fully
    // persistent candidates pick the tallest (candidates are height-sorted);
    // if none persists everywhere, fall back to the most votes.
    std::size_t best_ci = candidates.size();
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      if (votes[ci] == n_subwindows) {
        best_ci = ci;
        break;
      }
    }
    if (best_ci == candidates.size()) {
      best_ci = 0;
      for (std::size_t ci = 1; ci < candidates.size(); ++ci) {
        if (votes[ci] > votes[best_ci]) best_ci = ci;
      }
    }
    out[i].bin = static_cast<int>(candidates[best_ci]->index);
    out[i].height = candidates[best_ci]->value;
  }
  return out;
}

}  // namespace tnb::base
