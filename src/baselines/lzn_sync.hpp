// LZn-style collision-robust frame synchronization (Álamos et al.,
// PAPERS.md), implemented as an rx::FrameSync front end — a drop-in
// alternative to the receiver's built-in Detector + FracSync block
// (installed via Receiver::set_sync_factory).
//
// Where Detector demodulates each symbol-length window once and calls a
// preamble from a run of matching peaks, LZn slides the window at a
// sub-symbol step and non-coherently ACCUMULATES the folded spectra of the
// 8 preamble-upchirp positions: A_k = sum_{j=0..7} SV(k + j*T). All eight
// upchirps share one dechirp bin, so the accumulation grows the preamble
// peak ~8x while a collider's data symbols (whose bins change every T)
// stay spread — the SNR headroom that lets a weak preamble surface under a
// strong collider. The accumulated peak is then resolved exactly like the
// paper's step 3 (downchirp hypotheses -> eps/delta -> 12-point validation
// at +/-2 symbol shifts) and optionally polished by FracSync, so the
// returned detections feed the unchanged checking-point walk.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "core/frac_sync.hpp"
#include "core/frame_sync.hpp"
#include "lora/demodulator.hpp"
#include "lora/params.hpp"

namespace tnb::base {

struct LZnOptions {
  /// Sub-symbol window positions per symbol period (the slide granularity;
  /// must divide the samples-per-symbol).
  std::size_t steps_per_symbol = 2;
  /// Accumulated-spectrum peaks must exceed this multiple of the noise
  /// floor. Lower than Detector's 8: accumulation already buys ~8x.
  double peak_floor_ratio = 5.0;
  /// Minimum consecutive accumulation steps with a matching peak. The
  /// slot-support gate below carries the specificity; the run check only
  /// rejects one-step flukes.
  std::size_t min_run = 3;
  /// An accumulated peak only counts when at least this many of its 8
  /// contributing slot spectra carry energy at the peak bin. A preamble
  /// feeds all 8 slots; a lone collider data symbol (which persists across
  /// ~15 overlapping accumulation windows) feeds exactly one.
  int min_slot_support = 6;
  /// Per-slot energy (at the peak bin, +/-1) must reach this fraction of
  /// the peak's mean slot contribution (value / 8) to count as support.
  double slot_support_ratio = 0.2;
  /// Maximum peaks tracked per accumulation step.
  std::size_t max_peaks_per_step = 8;
  /// |CFO| bound (cycles/symbol) for the half-period branch pick.
  double max_cfo_cycles = 0.0;  ///< 0 = derive from 4.88 kHz and params
  /// Minimum step-2 validation checks (out of 12) to accept a preamble.
  int min_validation_score = 8;
  /// A validation check must also hold this fraction of its own window's
  /// spectrum maximum — the floor ratio alone passes on sidelobe leakage
  /// when the noise floor is tiny (high SNR). Far sidelobes of a dominant
  /// peak sit near 1e-3 of it; a weak packet under a strong collider
  /// (near-far) still holds ~1e-1..1e-2, so 5e-3 separates the two.
  double validation_dominance_ratio = 5e-3;
  /// Polish accepted detections with FracSync (gated, like the built-in
  /// front end) — gives sub-sample timing at high SNR.
  bool refine = true;
};

class LZnSync final : public rx::FrameSync {
 public:
  explicit LZnSync(lora::Params p, LZnOptions opt = {});

  std::vector<rx::DetectedPacket> sync(
      std::span<const cfloat> trace) override;

 private:
  struct Candidate {
    double w0 = 0.0;    ///< trace position of the strongest accumulated peak
    double x1 = 0.0;    ///< interpolated accumulated-upchirp peak (bins)
    double power = 0.0;
  };

  /// Slides + accumulates, returning preamble candidates.
  std::vector<Candidate> find_candidates(std::span<const cfloat> trace,
                                         lora::Workspace& ws);

  /// Downchirp hypotheses + step-3 math + 12-point validation for one
  /// candidate (mirrors Detector::resolve_candidate on the finer grid).
  void resolve(std::span<const cfloat> trace, const Candidate& cand,
               lora::Workspace& ws,
               std::vector<rx::DetectedPacket>& out) const;

  /// Peak energy at `bin` (+/-1) of the dechirped window at `start`:
  /// {relative to the spectrum's noise floor, relative to its maximum}.
  std::pair<double, double> energy_at(std::span<const cfloat> trace,
                                      double start, double cfo_cycles,
                                      std::size_t bin, bool up,
                                      lora::Workspace& ws) const;

  lora::Params p_;
  LZnOptions opt_;
  lora::Demodulator demod_;
  rx::FracSync fsync_;
};

}  // namespace tnb::base
