// The original LoRa demodulator as a peak assigner: every symbol takes the
// tallest bin of its own aligned signal vector, ignoring collisions. This is
// the "LoRaPHY" baseline of the paper's evaluation.
#pragma once

#include "core/assign.hpp"
#include "lora/params.hpp"

namespace tnb::base {

class ArgmaxAssigner final : public rx::PeakAssigner {
 public:
  explicit ArgmaxAssigner(lora::Params p);

  std::vector<rx::Assignment> assign(const rx::AssignInput& in) override;

 private:
  lora::Params p_;
};

}  // namespace tnb::base
