#include "baselines/sic.hpp"

#include <cmath>

#include "lora/frame.hpp"
#include "lora/modulator.hpp"

namespace tnb::base {

SicDecoder::SicDecoder(lora::Params p, SicOptions opt)
    : p_(p), opt_(std::move(opt)) {
  p_.validate();
}

void SicDecoder::cancel(IqBuffer& work, const sim::DecodedPacket& pkt,
                        double cfo_hz) const {
  const auto symbols = lora::make_packet_symbols(p_, pkt.payload);
  const lora::Modulator mod(p_);
  lora::WaveformOptions wopt;
  const double start_floor = std::floor(pkt.start_sample);
  wopt.frac_delay = pkt.start_sample - start_floor;
  wopt.cfo_hz = cfo_hz;
  const IqBuffer ref = mod.synthesize(symbols, wopt);

  const std::ptrdiff_t t0 = static_cast<std::ptrdiff_t>(start_floor);
  const std::size_t sps = p_.sps();
  // Per-symbol complex gain: robust to slow fading across the packet.
  for (std::size_t off = 0; off < ref.size(); off += sps) {
    const std::size_t len = std::min(sps, ref.size() - off);
    std::complex<double> num{0.0, 0.0};
    double den = 0.0;
    for (std::size_t i = 0; i < len; ++i) {
      const std::ptrdiff_t t = t0 + static_cast<std::ptrdiff_t>(off + i);
      if (t < 0 || t >= static_cast<std::ptrdiff_t>(work.size())) continue;
      const cfloat w = work[static_cast<std::size_t>(t)];
      const cfloat r = ref[off + i];
      num += std::complex<double>(w.real(), w.imag()) *
             std::conj(std::complex<double>(r.real(), r.imag()));
      den += std::norm(r);
    }
    if (den <= 0.0) continue;
    const cfloat gain{static_cast<float>(num.real() / den),
                      static_cast<float>(num.imag() / den)};
    for (std::size_t i = 0; i < len; ++i) {
      const std::ptrdiff_t t = t0 + static_cast<std::ptrdiff_t>(off + i);
      if (t < 0 || t >= static_cast<std::ptrdiff_t>(work.size())) continue;
      work[static_cast<std::size_t>(t)] -= gain * ref[off + i];
    }
  }
}

std::vector<sim::DecodedPacket> SicDecoder::decode(
    std::span<const cfloat> trace, Rng& rng) const {
  IqBuffer work(trace.begin(), trace.end());
  std::vector<sim::DecodedPacket> out;
  const rx::Receiver vanilla(p_, opt_.vanilla);
  const double dup_tol = 0.5 * static_cast<double>(p_.sps());

  for (int round = 0; round < opt_.max_rounds; ++round) {
    const auto decoded = vanilla.decode(work, rng);
    std::size_t fresh = 0;
    for (const sim::DecodedPacket& pkt : decoded) {
      bool dup = false;
      for (const sim::DecodedPacket& seen : out) {
        if (std::abs(seen.start_sample - pkt.start_sample) < dup_tol) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
      out.push_back(pkt);
      cancel(work, pkt, pkt.cfo_hz);
      ++fresh;
    }
    if (fresh == 0) break;  // residual yields nothing new
  }
  return out;
}

}  // namespace tnb::base
