#include "baselines/lzn_sync.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/math_util.hpp"
#include "core/window.hpp"
#include "dsp/peak_finder.hpp"
#include "dsp/smoother.hpp"

namespace tnb::base {
namespace {

/// Noise-floor proxy (same convention as Detector's): the median, kept
/// above a tiny fraction of the maximum so noiseless traces do not make
/// every spectral leak look significant.
double noise_floor(std::span<const float> x) {
  thread_local std::vector<double> tmp;
  tmp.assign(x.begin(), x.end());
  const double med = dsp::median_of(tmp);
  float mx = 0.0f;
  for (float v : x) mx = std::max(mx, v);
  return std::max({med, static_cast<double>(mx) * 1e-5, 1e-30});
}

double cyclic_dist(double a, double b, double n) {
  return std::abs(wrap_half(a - b, n));
}

}  // namespace

LZnSync::LZnSync(lora::Params p, LZnOptions opt)
    : p_(p), opt_(opt), demod_(p), fsync_(p) {
  p_.validate();
  if (opt_.steps_per_symbol == 0 ||
      p_.sps() % opt_.steps_per_symbol != 0) {
    throw std::invalid_argument(
        "LZnSync: steps_per_symbol must divide samples-per-symbol");
  }
  if (opt_.max_cfo_cycles <= 0.0) {
    opt_.max_cfo_cycles = p_.cfo_hz_to_cycles(4880.0) + 1.0;
  }
}

std::vector<LZnSync::Candidate> LZnSync::find_candidates(
    std::span<const cfloat> trace, lora::Workspace& ws) {
  const std::size_t sps = p_.sps();
  const std::size_t s = opt_.steps_per_symbol;
  const std::size_t step = sps / s;
  const std::size_t nb = p_.n_bins();
  const double nd = static_cast<double>(nb);

  std::vector<Candidate> candidates;
  if (trace.size() < sps) return candidates;
  const std::size_t n_steps = (trace.size() - sps) / step + 1;
  // Accumulating A_k needs the per-step spectra of positions k .. k+7T: a
  // ring of the last 7*s + 1 steps.
  const std::size_t ring_len = 7 * s + 1;
  std::vector<SignalVector> ring(ring_len);
  std::vector<char> valid(ring_len, 0);
  std::vector<float> acc(nb);

  struct Run {
    std::size_t first = 0;
    std::size_t last = 0;
    double bin = 0.0;         // running (latest) interpolated location
    double power_sum = 0.0;
    double best_frac = 0.0;   // location of the strongest accumulated peak
    double best_power = 0.0;
    std::size_t best_step = 0;
  };
  std::vector<Run> active;

  auto finalize = [&](const Run& r) {
    if (r.last - r.first + 1 < opt_.min_run) return;
    Candidate c;
    c.w0 = static_cast<double>(r.best_step * step);
    c.x1 = r.best_frac;
    c.power = r.best_power;
    candidates.push_back(c);
  };

  dsp::PeakFinderOptions pf;
  pf.circular = true;
  pf.max_peaks = opt_.max_peaks_per_step;
  // A collider can mask up to a symbol of steps; tolerate that gap before
  // retiring a run.
  const std::size_t gap = s + 1;

  for (std::size_t m = 0; m < n_steps; ++m) {
    SignalVector& sv = ring[m % ring_len];
    demod_.signal_vector_into(trace.subspan(m * step, sps), 0.0, /*up=*/true,
                              ws, sv);
    bool ok = true;
    for (float v : sv) {
      if (!std::isfinite(v)) {
        ok = false;
        break;
      }
    }
    valid[m % ring_len] = ok ? 1 : 0;
    if (m + 1 < ring_len) continue;  // window span not yet full

    const std::size_t k = m - 7 * s;  // accumulation anchored at step k
    std::fill(acc.begin(), acc.end(), 0.0f);
    bool all_valid = true;
    for (std::size_t j = 0; j < 8; ++j) {
      const std::size_t slot = (k + j * s) % ring_len;
      if (!valid[slot]) {
        all_valid = false;
        break;
      }
      const SignalVector& part = ring[slot];
      for (std::size_t b = 0; b < nb; ++b) acc[b] += part[b];
    }

    std::vector<dsp::Peak> peaks;
    if (all_valid) {
      const double floor = noise_floor(acc);
      if (std::isfinite(floor)) {
        pf.sel = 4.0 * floor;
        pf.use_threshold = true;
        pf.threshold = opt_.peak_floor_ratio * floor;
        peaks = dsp::find_peaks(acc, pf);
      }
    }

    // Slot-support gate: a preamble peak draws on all 8 accumulated slots;
    // a collider data symbol — which survives in ~2*8*s overlapping
    // accumulation windows and would otherwise fake a long run — draws on
    // exactly one. Keep only peaks most slots vouch for.
    std::erase_if(peaks, [&](const dsp::Peak& pk) {
      const double need = opt_.slot_support_ratio * pk.value / 8.0;
      int support = 0;
      for (std::size_t j = 0; j < 8; ++j) {
        const SignalVector& part = ring[(k + j * s) % ring_len];
        double e = 0.0;
        for (int d = -1; d <= 1; ++d) {
          const std::size_t b = static_cast<std::size_t>(
              floor_mod(static_cast<std::int64_t>(pk.index) + d,
                        static_cast<std::int64_t>(nb)));
          e = std::max(e, static_cast<double>(part[b]));
        }
        if (e >= need) ++support;
      }
      return support < opt_.min_slot_support;
    });

    for (const dsp::Peak& pk : peaks) {
      const double loc = pk.frac_index;
      bool matched = false;
      for (Run& r : active) {
        if (r.last + gap < k) continue;
        if (r.last == k) continue;  // already extended this step
        if (cyclic_dist(r.bin, loc, nd) <= 1.5) {
          r.last = k;
          r.bin = loc;
          r.power_sum += pk.value;
          if (pk.value > r.best_power) {
            r.best_power = pk.value;
            r.best_frac = loc;
            r.best_step = k;
          }
          matched = true;
          break;
        }
      }
      if (!matched) {
        Run r;
        r.first = r.last = k;
        r.bin = loc;
        r.power_sum = pk.value;
        r.best_frac = loc;
        r.best_power = pk.value;
        r.best_step = k;
        active.push_back(r);
      }
    }
    // Retire runs that fell out of the gap tolerance.
    std::vector<Run> still;
    for (const Run& r : active) {
      if (r.last + gap >= k) {
        still.push_back(r);
      } else {
        finalize(r);
      }
    }
    active = std::move(still);
  }
  for (const Run& r : active) finalize(r);

  // Strongest candidates first; bound the resolve work on hostile traces.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.power > b.power;
            });
  if (candidates.size() > 16) candidates.resize(16);
  return candidates;
}

std::pair<double, double> LZnSync::energy_at(std::span<const cfloat> trace,
                                             double start, double cfo_cycles,
                                             std::size_t bin, bool up,
                                             lora::Workspace& ws) const {
  const std::size_t sps = p_.sps();
  const std::size_t n = p_.n_bins();
  auto& window = ws.iq_scratch(0);
  window.resize(sps);
  rx::extract_window(trace, start, window);
  SignalVector& sv = ws.sv_scratch(0);
  demod_.signal_vector_into(window, cfo_cycles, up, ws, sv);
  const double floor = noise_floor(sv);
  double e = 0.0;
  for (int d = -1; d <= 1; ++d) {
    const std::size_t b =
        static_cast<std::size_t>(floor_mod(static_cast<std::int64_t>(bin) + d,
                                           static_cast<std::int64_t>(n)));
    e = std::max(e, static_cast<double>(sv[b]));
  }
  double mx = 0.0;
  for (float v : sv) mx = std::max(mx, static_cast<double>(v));
  return {e / floor, mx > 0.0 ? e / mx : 0.0};
}

void LZnSync::resolve(std::span<const cfloat> trace, const Candidate& cand,
                      lora::Workspace& ws,
                      std::vector<rx::DetectedPacket>& out) const {
  const std::size_t sps = p_.sps();
  const double n = static_cast<double>(p_.n_bins());
  const double osf = static_cast<double>(p_.osf);
  const std::size_t w0i = static_cast<std::size_t>(cand.w0);

  // Downchirp peak hypotheses (x2) in symbol-length windows after the
  // accumulated run — same alignment class as w0, so (x1+x2)/2 still
  // isolates eps.
  dsp::PeakFinderOptions pf;
  pf.circular = true;
  pf.max_peaks = 4;
  struct DownHyp {
    double x2 = 0.0;
    double height = 0.0;
  };
  std::vector<DownHyp> hyps;
  SignalVector& sv = ws.sv_scratch(0);
  for (std::size_t m = 7; m <= 13; ++m) {
    const std::size_t start = w0i + m * sps;
    if (start + sps > trace.size()) break;
    demod_.signal_vector_into(trace.subspan(start, sps), 0.0, /*up=*/false,
                              ws, sv);
    bool ok = true;
    for (float v : sv) {
      if (!std::isfinite(v)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    const double floor = noise_floor(sv);
    pf.use_threshold = true;
    pf.threshold = opt_.peak_floor_ratio * floor;
    for (const dsp::Peak& pk : dsp::find_peaks(sv, pf)) {
      bool merged = false;
      for (DownHyp& h : hyps) {
        if (cyclic_dist(h.x2, pk.frac_index, n) <= 1.0) {
          if (pk.value > h.height) {
            h.height = pk.value;
            h.x2 = pk.frac_index;
          }
          merged = true;
          break;
        }
      }
      if (!merged) {
        hyps.push_back({pk.frac_index, static_cast<double>(pk.value)});
      }
    }
  }
  if (hyps.empty()) return;  // no downchirp anywhere: not a LoRa preamble
  std::sort(hyps.begin(), hyps.end(),
            [](const DownHyp& a, const DownHyp& b) {
              return a.height > b.height;
            });
  if (hyps.size() > 6) hyps.resize(6);

  int best_score = -1;
  double best_t0 = 0.0, best_eps = 0.0, best_strength = 0.0;
  for (const DownHyp& hyp : hyps) {
    // Step 3: x1 = delta + eps, x2 = -delta + eps (mod N); (x1+x2)/2 gives
    // eps up to an N/2 ambiguity that the CFO bound resolves.
    const double sum = floor_mod((cand.x1 + hyp.x2) / 2.0, n / 2.0);
    double eps = wrap_half(sum, n / 2.0);
    if (std::abs(eps) > opt_.max_cfo_cycles) {
      const double alt = eps > 0 ? eps - n / 2.0 : eps + n / 2.0;
      if (std::abs(alt) > opt_.max_cfo_cycles) continue;
      eps = alt;
    }
    const double delta = floor_mod(cand.x1 - eps, n);  // chirp samples

    // 12-point validation at +/-2 symbol shifts (8 upchirps at bin 0, the
    // two sync words, both downchirps).
    const double t0_prelim = cand.w0 - delta * osf;
    for (int j = -2; j <= 2; ++j) {
      const double t0 =
          t0_prelim + static_cast<double>(j) * static_cast<double>(sps);
      if (t0 < -0.5) continue;
      int score = 0;
      double strength = 0.0;
      // A check passes on the floor ratio AND on a share of its window's
      // spectrum maximum: at high SNR the floor is tiny and the sidelobes
      // of a strong peak elsewhere would otherwise validate a misplaced
      // hypothesis 12/12.
      auto check = [&](double sym_idx, std::size_t bin, bool up) {
        const double start = t0 + sym_idx * static_cast<double>(sps);
        if (start + static_cast<double>(sps) >
            static_cast<double>(trace.size())) {
          return;
        }
        const auto [rel, dom] = energy_at(trace, start, eps, bin, up, ws);
        if (rel >= opt_.peak_floor_ratio &&
            dom >= opt_.validation_dominance_ratio) {
          ++score;
          strength += rel;
        }
      };
      for (int m = 0; m < 8; ++m) check(m, 0, true);
      check(8.0, lora::kSyncShift1, true);
      check(9.0, lora::kSyncShift2, true);
      check(10.0, 0, false);
      check(11.0, 0, false);
      if (score > best_score ||
          (score == best_score && strength > best_strength)) {
        best_score = score;
        best_t0 = t0;
        best_eps = eps;
        best_strength = strength;
      }
      if (best_score == 12) break;
    }
    if (best_score == 12) break;
  }
  if (best_score < opt_.min_validation_score) return;

  rx::DetectedPacket pkt;
  pkt.t0 = best_t0;
  pkt.cfo_cycles = best_eps;
  pkt.strength = best_strength;
  pkt.validation_score = best_score;
  out.push_back(pkt);
}

std::vector<rx::DetectedPacket> LZnSync::sync(std::span<const cfloat> trace) {
  std::vector<rx::DetectedPacket> out;
  if (trace.size() < p_.sps()) return out;
  lora::Workspace ws(p_);

  const std::vector<Candidate> candidates = find_candidates(trace, ws);
  for (const Candidate& cand : candidates) {
    resolve(trace, cand, ws, out);
  }
  std::sort(out.begin(), out.end(),
            [](const rx::DetectedPacket& a, const rx::DetectedPacket& b) {
              return a.t0 < b.t0;
            });

  // Deduplicate along the timing/CFO ambiguity line (same convention as
  // Detector: shifting t0/OSF and the CFO together leaves upchirps
  // invariant, so near-coincident detections on that line are one packet).
  std::vector<rx::DetectedPacket> dedup;
  const double t_tol = 1.25 * static_cast<double>(p_.sps());
  const double nd = static_cast<double>(p_.n_bins());
  for (const rx::DetectedPacket& pkt : out) {
    bool merged = false;
    for (rx::DetectedPacket& kept : dedup) {
      const double dt_bins = (pkt.t0 - kept.t0) / static_cast<double>(p_.osf);
      const double dcfo = pkt.cfo_cycles - kept.cfo_cycles;
      if (std::abs(kept.t0 - pkt.t0) < t_tol &&
          std::abs(wrap_half(dt_bins + dcfo, nd)) < 2.0) {
        if (pkt.validation_score > kept.validation_score ||
            (pkt.validation_score == kept.validation_score &&
             pkt.strength > kept.strength)) {
          kept = pkt;
        }
        merged = true;
        break;
      }
    }
    if (!merged) dedup.push_back(pkt);
  }

  if (opt_.refine) {
    for (rx::DetectedPacket& det : dedup) {
      const rx::FracSyncResult r =
          fsync_.refine(trace, det.t0, det.cfo_cycles, ws);
      // Trust the refinement only under the Q* gate, like the built-in
      // front end: an interferer can steer the ungated fallback.
      if (r.gated) {
        det.t0 += r.dt;
        det.cfo_cycles += r.df;
      }
    }
  }
  return dedup;
}

}  // namespace tnb::base
