#include "baselines/aligntrack.hpp"

#include <cmath>

#include "common/math_util.hpp"
#include "core/sibling.hpp"

namespace tnb::base {

AlignTrackStar::AlignTrackStar(lora::Params p) : p_(p) { p_.validate(); }

std::vector<rx::Assignment> AlignTrackStar::assign(const rx::AssignInput& in) {
  const std::size_t n = p_.n_bins();
  const double nd = static_cast<double>(n);
  constexpr double kTol = 1.5;

  std::vector<rx::Assignment> out(in.symbols.size());
  for (std::size_t i = 0; i < in.symbols.size(); ++i) {
    const rx::ActiveSymbol& sym = in.symbols[i];
    const rx::PacketContext& ctx =
        in.contexts[static_cast<std::size_t>(sym.packet)];
    const rx::SymbolView& view =
        in.sig->data_symbol(sym.packet, ctx, sym.data_idx);
    const double alpha_i = ctx.alpha_at(sym.window_start);

    out[i].packet = sym.packet;
    out[i].data_idx = sym.data_idx;

    const auto& masks = in.masked_bins[i];
    const dsp::Peak* fallback = nullptr;   // tallest unmasked peak
    const dsp::Peak* chosen = nullptr;     // first aligned peak (peaks are
                                           // height-sorted, so "first" =
                                           // tallest aligned)
    for (const dsp::Peak& pk : view.peaks) {
      bool masked = false;
      for (double mb : masks) {
        if (std::abs(wrap_half(pk.frac_index - mb, nd)) <= kTol) {
          masked = true;
          break;
        }
      }
      if (masked) continue;
      if (fallback == nullptr) fallback = &pk;

      bool aligned = true;
      for (const rx::SiblingWindow& w : rx::sibling_windows(in, i)) {
        const rx::PacketContext& wctx =
            in.contexts[static_cast<std::size_t>(w.packet)];
        const double expected = rx::map_bin(
            pk.frac_index, alpha_i, wctx.alpha_at(w.window_start), n);
        if (rx::sibling_height(in, w, expected, kTol) >=
            static_cast<double>(pk.value)) {
          aligned = false;
          break;
        }
      }
      if (aligned) {
        chosen = &pk;
        break;
      }
    }
    const dsp::Peak* pick = chosen != nullptr ? chosen : fallback;
    if (pick != nullptr) {
      out[i].bin = static_cast<int>(pick->index);
      out[i].height = pick->value;
    } else {
      const std::size_t bin = lora::Demodulator::argmax(view.sv);
      out[i].bin = static_cast<int>(bin);
      out[i].height = view.sv[bin];
    }
  }
  return out;
}

}  // namespace tnb::base
