#include "baselines/factories.hpp"

#include <stdexcept>

#include "baselines/aligntrack.hpp"
#include "baselines/argmax_assigner.hpp"
#include "baselines/cic.hpp"

namespace tnb::base {

std::string scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kTnB: return "TnB";
    case Scheme::kThrive: return "Thrive";
    case Scheme::kSibling: return "Sibling";
    case Scheme::kLoRaPhy: return "LoRaPHY";
    case Scheme::kCic: return "CIC";
    case Scheme::kCicBec: return "CIC+";
    case Scheme::kAlignTrack: return "AlignTrack*";
    case Scheme::kAlignTrackBec: return "AlignTrack*+";
  }
  throw std::invalid_argument("scheme_name: unknown scheme");
}

std::vector<Scheme> all_schemes() {
  return {Scheme::kTnB,     Scheme::kThrive,     Scheme::kSibling,
          Scheme::kLoRaPhy, Scheme::kCic,        Scheme::kCicBec,
          Scheme::kAlignTrack, Scheme::kAlignTrackBec};
}

rx::Receiver make_receiver(Scheme s, const lora::Params& p,
                           std::optional<rx::ImplicitHeader> implicit) {
  rx::ReceiverOptions opt;
  opt.implicit_header = implicit;
  switch (s) {
    case Scheme::kTnB:
      break;  // defaults: Thrive + history + BEC + two passes
    case Scheme::kThrive:
      opt.use_bec = false;
      break;
    case Scheme::kSibling:
      opt.use_bec = false;
      opt.use_history = false;
      break;
    case Scheme::kLoRaPhy:
      opt.use_bec = false;
      opt.two_pass = false;
      break;
    case Scheme::kCic:
      opt.use_bec = false;
      break;
    case Scheme::kCicBec:
      break;
    case Scheme::kAlignTrack:
      opt.use_bec = false;
      break;
    case Scheme::kAlignTrackBec:
      break;
  }
  rx::Receiver receiver(p, opt);
  switch (s) {
    case Scheme::kLoRaPhy:
      receiver.set_assigner_factory(
          [p]() { return std::make_unique<ArgmaxAssigner>(p); });
      break;
    case Scheme::kCic:
    case Scheme::kCicBec:
      receiver.set_assigner_factory(
          [p]() { return std::make_unique<CicAssigner>(p); });
      break;
    case Scheme::kAlignTrack:
    case Scheme::kAlignTrackBec:
      receiver.set_assigner_factory(
          [p]() { return std::make_unique<AlignTrackStar>(p); });
      break;
    default:
      break;  // Thrive family uses the receiver's default factory
  }
  return receiver;
}

}  // namespace tnb::base
