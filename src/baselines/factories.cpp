#include "baselines/factories.hpp"

#include <stdexcept>

#include "baselines/aligntrack.hpp"
#include "baselines/argmax_assigner.hpp"
#include "baselines/cic.hpp"
#include "baselines/cora.hpp"
#include "baselines/hybrid.hpp"
#include "baselines/lzn_sync.hpp"

namespace tnb::base {

std::string scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kTnB: return "TnB";
    case Scheme::kThrive: return "Thrive";
    case Scheme::kSibling: return "Sibling";
    case Scheme::kLoRaPhy: return "LoRaPHY";
    case Scheme::kCic: return "CIC";
    case Scheme::kCicBec: return "CIC+";
    case Scheme::kAlignTrack: return "AlignTrack*";
    case Scheme::kAlignTrackBec: return "AlignTrack*+";
    case Scheme::kCoRa: return "CoRa";
    case Scheme::kCoRaBec: return "CoRa+";
    case Scheme::kLZnThrive: return "LZn-Thrive";
    case Scheme::kCoRaTnB: return "CoRa-TnB";
  }
  throw std::invalid_argument("scheme_name: unknown scheme");
}

std::string scheme_cli_name(Scheme s) {
  std::string token;
  for (char c : scheme_name(s)) {
    if (c == '*') continue;  // "AlignTrack*" -> "aligntrack"
    token.push_back(
        c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
  }
  return token;
}

std::optional<Scheme> parse_scheme(const std::string& token) {
  for (Scheme s : all_schemes()) {
    if (scheme_cli_name(s) == token) return s;
  }
  return std::nullopt;
}

std::string scheme_cli_list() {
  std::string list;
  for (Scheme s : all_schemes()) {
    if (!list.empty()) list += ", ";
    list += scheme_cli_name(s);
  }
  return list;
}

bool scheme_uses_custom_sync(Scheme s) {
  return s == Scheme::kLZnThrive;
}

std::vector<Scheme> all_schemes() {
  return {Scheme::kTnB,        Scheme::kThrive,
          Scheme::kSibling,    Scheme::kLoRaPhy,
          Scheme::kCic,        Scheme::kCicBec,
          Scheme::kAlignTrack, Scheme::kAlignTrackBec,
          Scheme::kCoRa,       Scheme::kCoRaBec,
          Scheme::kLZnThrive,  Scheme::kCoRaTnB};
}

rx::Receiver make_receiver(Scheme s, const lora::Params& p,
                           std::optional<rx::ImplicitHeader> implicit,
                           rx::CodecFactory codec) {
  rx::ReceiverOptions opt;
  opt.implicit_header = implicit;
  opt.codec_factory = std::move(codec);
  switch (s) {
    case Scheme::kTnB:
      break;  // defaults: Thrive + history + BEC + two passes
    case Scheme::kThrive:
      opt.use_bec = false;
      break;
    case Scheme::kSibling:
      opt.use_bec = false;
      opt.use_history = false;
      break;
    case Scheme::kLoRaPhy:
      opt.use_bec = false;
      opt.two_pass = false;
      break;
    case Scheme::kCic:
      opt.use_bec = false;
      break;
    case Scheme::kCicBec:
      break;
    case Scheme::kAlignTrack:
      opt.use_bec = false;
      break;
    case Scheme::kAlignTrackBec:
      break;
    case Scheme::kCoRa:
      opt.use_bec = false;
      break;
    case Scheme::kCoRaBec:
      break;
    case Scheme::kLZnThrive:
      opt.use_bec = false;
      break;
    case Scheme::kCoRaTnB:
      break;  // BEC + two passes, like TnB
  }
  rx::Receiver receiver(p, opt);
  switch (s) {
    case Scheme::kLoRaPhy:
      receiver.set_assigner_factory(
          [p]() { return std::make_unique<ArgmaxAssigner>(p); });
      break;
    case Scheme::kCic:
    case Scheme::kCicBec:
      receiver.set_assigner_factory(
          [p]() { return std::make_unique<CicAssigner>(p); });
      break;
    case Scheme::kAlignTrack:
    case Scheme::kAlignTrackBec:
      receiver.set_assigner_factory(
          [p]() { return std::make_unique<AlignTrackStar>(p); });
      break;
    case Scheme::kCoRa:
    case Scheme::kCoRaBec:
      receiver.set_assigner_factory(
          [p]() { return std::make_unique<CoRaDetector>(p); });
      break;
    case Scheme::kCoRaTnB:
      receiver.set_assigner_factory(
          [p]() { return std::make_unique<HybridAssigner>(p); });
      break;
    default:
      break;  // Thrive family uses the receiver's default factory
  }
  if (scheme_uses_custom_sync(s)) {
    receiver.set_sync_factory(
        [p]() { return std::make_unique<LZnSync>(p); });
  }
  return receiver;
}

}  // namespace tnb::base
