#include "baselines/hybrid.hpp"

namespace tnb::base {

HybridAssigner::HybridAssigner(lora::Params p, HybridOptions opt)
    : p_(p),
      opt_(opt),
      cora_(p, opt.cora),
      thrive_(p, opt.thrive) {
  p_.validate();
}

std::vector<rx::Assignment> HybridAssigner::assign(const rx::AssignInput& in) {
  std::vector<double> confidence;
  std::vector<rx::Assignment> out = cora_.assign_with_confidence(in, confidence);
  ++stats_.calls;
  stats_.symbols += out.size();

  bool any_doubtful = false;
  for (double c : confidence) {
    if (c < opt_.escalate_below) {
      any_doubtful = true;
      break;
    }
  }
  if (!any_doubtful) return out;

  // Thrive sees the full checking point (its cost model needs every
  // symbol's peaks anyway); only the doubtful symbols take its verdict.
  const std::vector<rx::Assignment> arbitrated = thrive_.assign(in);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (confidence[i] < opt_.escalate_below) {
      out[i] = arbitrated[i];
      ++stats_.escalated;
    }
  }
  return out;
}

}  // namespace tnb::base
