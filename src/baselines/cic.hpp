// CIC — Concurrent Interference Cancellation (Shahid et al., SIGCOMM 2021),
// reimplemented around its core idea.
//
// Within a target symbol's window, interfering packets' symbol boundaries
// cut the window into sub-windows. The target's dechirped tone keeps the
// same frequency across all of them (its chirp is continuous over the whole
// window), while every interferer's tone changes frequency at its own
// boundary. CIC therefore computes the spectrum of each sufficiently-long
// sub-window and keeps, per bin, the *minimum* normalized energy across
// sub-windows: interferers are cancelled because their energy moves, and
// the target bin survives the intersection.
#pragma once

#include "core/assign.hpp"
#include "lora/params.hpp"

namespace tnb::base {

struct CicOptions {
  /// Sub-windows shorter than sps/min_subwindow_div are merged into their
  /// neighbour (too little signal to resolve a peak).
  unsigned min_subwindow_div = 8;
};

class CicAssigner final : public rx::PeakAssigner {
 public:
  explicit CicAssigner(lora::Params p, CicOptions opt = {});

  std::vector<rx::Assignment> assign(const rx::AssignInput& in) override;

 private:
  /// Folded, max-normalized spectrum of trace[a, b) dechirped as part of
  /// the target symbol starting at `w_start` with CFO `cfo`.
  SignalVector subwindow_spectrum(const rx::AssignInput& in, double w_start,
                                  double a, double b, double cfo) const;

  lora::Params p_;
  CicOptions opt_;
};

}  // namespace tnb::base
