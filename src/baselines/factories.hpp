// Preconfigured receivers for every scheme in the paper's evaluation
// (Section 8.2 and 8.5) plus the related-work peers and hybrids of ISSUE 7:
// TnB, Thrive (TnB without BEC), Sibling (Thrive without the history cost),
// LoRaPHY, CIC, CIC+BEC, AlignTrack*, AlignTrack*+BEC, CoRa, CoRa+BEC,
// LZn-Thrive (LZn-style sync front end feeding Thrive) and CoRa-TnB (CoRa
// first pass, Thrive arbitrating low-confidence symbols, BEC). All share
// the same checking-point machinery, differing only in the peak assigner,
// the synchronization front end and the error-correction decoder —
// mirroring how the paper lends its packet detection to the compared
// schemes so the comparison isolates the algorithms.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/receiver.hpp"

namespace tnb::base {

enum class Scheme {
  kTnB,            ///< Thrive + BEC, two passes
  kThrive,         ///< Thrive + default decoder
  kSibling,        ///< sibling cost only + default decoder
  kLoRaPhy,        ///< per-symbol argmax + default decoder, single pass
  kCic,            ///< CIC assignment + default decoder
  kCicBec,         ///< CIC assignment + BEC ("CIC+")
  kAlignTrack,     ///< AlignTrack* assignment + default decoder
  kAlignTrackBec,  ///< AlignTrack* assignment + BEC ("AlignTrack*+")
  kCoRa,           ///< CoRa amplitude decision + default decoder
  kCoRaBec,        ///< CoRa amplitude decision + BEC ("CoRa+")
  kLZnThrive,      ///< LZn-style sync front end + Thrive + default decoder
  kCoRaTnB,        ///< CoRa first pass, Thrive arbiter, BEC ("CoRa-TnB")
};

/// Human-readable scheme name as used in the paper's figures.
std::string scheme_name(Scheme s);

/// Lowercase command-line token for the scheme (what tnb_eval --scheme
/// accepts): scheme_name lowercased with '*' dropped, e.g. "aligntrack+".
std::string scheme_cli_name(Scheme s);

/// Parses a command-line token (as produced by scheme_cli_name);
/// std::nullopt on an unknown token.
std::optional<Scheme> parse_scheme(const std::string& token);

/// Comma-separated scheme_cli_name list of all schemes, for --help text
/// and unknown-scheme error messages.
std::string scheme_cli_list();

/// True for schemes that replace the Detector + FracSync front end with
/// their own synchronizer — their detections cannot be shared with the
/// default-front-end schemes.
bool scheme_uses_custom_sync(Scheme s);

/// All schemes, in the order the paper lists them (new peers appended).
std::vector<Scheme> all_schemes();

/// Builds a fully configured receiver for the scheme. `implicit` switches
/// every scheme to LoRa implicit-header operation; `codec` overrides the
/// frame-coding convention (null = paper format, wire::wire_codec_factory()
/// = gr-lora-sdr wire format) — orthogonal to the scheme, which only picks
/// the peak assigner / sync front end / error-correction decoder.
rx::Receiver make_receiver(Scheme s, const lora::Params& p,
                           std::optional<rx::ImplicitHeader> implicit = {},
                           rx::CodecFactory codec = {});

}  // namespace tnb::base
