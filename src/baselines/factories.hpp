// Preconfigured receivers for every scheme in the paper's evaluation
// (Section 8.2 and 8.5): TnB, Thrive (TnB without BEC), Sibling (Thrive
// without the history cost), LoRaPHY, CIC, CIC+BEC, AlignTrack*, and
// AlignTrack*+BEC. All share the same detection / synchronization /
// checking-point machinery, differing only in the peak assigner and the
// error-correction decoder — mirroring how the paper lends its packet
// detection to the compared schemes so the comparison isolates the
// assignment and decoding algorithms.
#pragma once

#include <string>
#include <vector>

#include "core/receiver.hpp"

namespace tnb::base {

enum class Scheme {
  kTnB,            ///< Thrive + BEC, two passes
  kThrive,         ///< Thrive + default decoder
  kSibling,        ///< sibling cost only + default decoder
  kLoRaPhy,        ///< per-symbol argmax + default decoder, single pass
  kCic,            ///< CIC assignment + default decoder
  kCicBec,         ///< CIC assignment + BEC ("CIC+")
  kAlignTrack,     ///< AlignTrack* assignment + default decoder
  kAlignTrackBec,  ///< AlignTrack* assignment + BEC ("AlignTrack*+")
};

/// Human-readable scheme name as used in the paper's figures.
std::string scheme_name(Scheme s);

/// All schemes, in the order the paper lists them.
std::vector<Scheme> all_schemes();

/// Builds a fully configured receiver for the scheme. `implicit` switches
/// every scheme to LoRa implicit-header operation.
rx::Receiver make_receiver(Scheme s, const lora::Params& p,
                           std::optional<rx::ImplicitHeader> implicit = {});

}  // namespace tnb::base
