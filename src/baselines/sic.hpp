// Successive interference cancellation, in the style of mLoRa (Wang et
// al., ICNP 2019) — an extension baseline beyond the paper's evaluation
// set (its related work, Section 2).
//
// Rounds: detect packets, decode the strongest one the vanilla way
// (per-symbol argmax + default Hamming decoding), re-synthesize its
// waveform from the decoded bits, estimate a per-symbol complex gain by
// correlation, subtract, and repeat on the residual. Works when packets
// are separable by power ordering; degrades when powers are comparable —
// the weakness that motivates joint approaches like TnB.
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/receiver.hpp"

namespace tnb::base {

struct SicOptions {
  int max_rounds = 6;      ///< cancellation rounds (packets decoded)
  rx::ReceiverOptions vanilla;  ///< per-round decoder configuration

  SicOptions() {
    vanilla.use_bec = false;
    vanilla.two_pass = false;
  }
};

class SicDecoder {
 public:
  explicit SicDecoder(lora::Params p, SicOptions opt = {});

  /// Decodes by successive cancellation. Each round removes every packet
  /// decoded so far from the residual before re-detecting.
  std::vector<sim::DecodedPacket> decode(std::span<const cfloat> trace,
                                         Rng& rng) const;

 private:
  /// Subtracts the reconstructed waveform of a decoded packet from `work`.
  /// The packet's symbols are re-encoded from `app_payload`; the complex
  /// gain is estimated per symbol by correlating `work` against the
  /// unit-amplitude reference.
  void cancel(IqBuffer& work, const sim::DecodedPacket& pkt,
              double cfo_hz) const;

  lora::Params p_;
  SicOptions opt_;
};

}  // namespace tnb::base
