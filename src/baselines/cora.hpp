// CoRa — low-complexity collision-resistant symbol decision (Álamos et al.,
// PAPERS.md), reimplemented as a PeakAssigner peer of CicAssigner and
// AlignTrackStar.
//
// Where Thrive ranks peaks by the cross-packet sibling cost (O(M^2) signal
// vectors per checking point) and CIC re-FFTs sub-windows, CoRa decides each
// symbol from its own cached signal vector alone: the transmitted tone spans
// the full symbol window, so its peak amplitude matches the amplitude the
// node's preamble promised, while an interferer whose symbol boundary
// crosses the window contributes a *pair* of fragment tones whose amplitudes
// split as f : (1-f) at the boundary fraction f. CoRa eliminates
// amplitude-consistent fragment pairs, then picks the surviving peak whose
// amplitude is closest to the expectation from the peak-height history.
// Everything it consults (cached symbol view, boundary geometry, history) is
// already at hand — no extra spectra, hence "low complexity".
//
// assign_with_confidence exposes a per-symbol confidence in [0, 1] (how
// cleanly the amplitude match singled out one peak), which the CoRa->TnB
// hybrid (hybrid.hpp) uses to escalate only doubtful symbols to Thrive.
#pragma once

#include "core/assign.hpp"
#include "lora/params.hpp"

namespace tnb::base {

struct CoRaOptions {
  /// Peaks whose amplitude is within this relative error of the history
  /// expectation are protected from fragment elimination (they are
  /// plausibly the target even if a boundary could explain them).
  double amp_tol = 0.3;
  /// A peak pair is a fragment pair if the two interferer-amplitude
  /// estimates a_p/f and a_q/(1-f) agree within this relative tolerance.
  double fragment_tol = 0.25;
  /// Cyclic-bin distance to a masked (known-interference) location at
  /// which a peak is discarded, matching the CIC/AlignTrack convention.
  double mask_tol = 1.5;
  /// Candidate peaks examined per symbol (height-sorted view peaks).
  std::size_t max_candidates = 8;
  /// Boundary fractions closer than this to the window edge are ignored:
  /// the smaller fragment carries too little energy to show as a peak.
  double min_boundary_frac = 0.04;
};

class CoRaDetector final : public rx::PeakAssigner {
 public:
  explicit CoRaDetector(lora::Params p, CoRaOptions opt = {});

  std::vector<rx::Assignment> assign(const rx::AssignInput& in) override;

  /// Like assign(), additionally writing one confidence in [0, 1] per
  /// symbol into `confidence` (resized to in.symbols.size()).
  std::vector<rx::Assignment> assign_with_confidence(
      const rx::AssignInput& in, std::vector<double>& confidence);

 private:
  lora::Params p_;
  CoRaOptions opt_;
};

}  // namespace tnb::base
