#include "baselines/cora.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_util.hpp"
#include "lora/demodulator.hpp"

namespace tnb::base {
namespace {

double clamp01(double v) { return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v); }

}  // namespace

CoRaDetector::CoRaDetector(lora::Params p, CoRaOptions opt)
    : p_(p), opt_(opt) {
  p_.validate();
}

std::vector<rx::Assignment> CoRaDetector::assign(const rx::AssignInput& in) {
  std::vector<double> confidence;
  return assign_with_confidence(in, confidence);
}

std::vector<rx::Assignment> CoRaDetector::assign_with_confidence(
    const rx::AssignInput& in, std::vector<double>& confidence) {
  const std::size_t n = p_.n_bins();
  const double nd = static_cast<double>(n);
  const double sps = static_cast<double>(p_.sps());

  std::vector<rx::Assignment> out(in.symbols.size());
  confidence.assign(in.symbols.size(), 0.0);

  for (std::size_t i = 0; i < in.symbols.size(); ++i) {
    const rx::ActiveSymbol& sym = in.symbols[i];
    const rx::PacketContext& ctx =
        in.contexts[static_cast<std::size_t>(sym.packet)];
    const double w = sym.window_start;
    out[i].packet = sym.packet;
    out[i].data_idx = sym.data_idx;

    const rx::SymbolView& view =
        in.sig->data_symbol(sym.packet, ctx, sym.data_idx);

    // Candidate peaks: unmasked view peaks (height-sorted by the finder).
    const auto& masks = in.masked_bins[i];
    struct Cand {
      int bin = 0;
      double height = 0.0;  ///< folded power (what histories record)
      double amp = 0.0;     ///< sqrt(power): the linear amplitude proxy
      bool fragment = false;
    };
    std::vector<Cand> cands;
    for (const dsp::Peak& pk : view.peaks) {
      if (cands.size() >= opt_.max_candidates) break;
      bool masked = false;
      for (double mb : masks) {
        if (std::abs(wrap_half(pk.frac_index - mb, nd)) <= opt_.mask_tol) {
          masked = true;
          break;
        }
      }
      if (masked) continue;
      Cand c;
      c.bin = static_cast<int>(pk.index);
      c.height = pk.value;
      c.amp = std::sqrt(std::max(0.0, static_cast<double>(pk.value)));
      cands.push_back(c);
    }
    if (cands.empty()) {
      // Nothing above the peak finder's bar: plain argmax keeps the symbol
      // assignable (the decoder may still rescue it).
      out[i].bin = static_cast<int>(lora::Demodulator::argmax(view.sv));
      out[i].height = view.sv[static_cast<std::size_t>(out[i].bin)];
      confidence[i] = 0.0;
      continue;
    }

    // Expected amplitude from the node's peak-height history (heights are
    // folded powers; the preamble bootstrap makes the history non-empty).
    double expect = 0.0;
    if (static_cast<std::size_t>(sym.packet) < in.history.size()) {
      const rx::PeakHistory::Estimate est =
          in.history[static_cast<std::size_t>(sym.packet)].estimate_for(
              sym.data_idx, in.second_pass);
      expect = std::sqrt(std::max(0.0, est.a));
    }

    // Interferer symbol-boundary fractions inside [w, w + sps): each is a
    // point where another packet's tone may end and a new one begin,
    // splitting into an f : (1-f) fragment pair.
    std::vector<double> fracs;
    for (std::size_t k = 0; k < in.symbols.size(); ++k) {
      if (in.symbols[k].packet == sym.packet) continue;
      double b = in.symbols[k].window_start;
      if (b <= w) b += sps;
      if (b <= w || b >= w + sps) continue;
      const double f = (b - w) / sps;
      if (f < opt_.min_boundary_frac || f > 1.0 - opt_.min_boundary_frac) {
        continue;
      }
      bool dup = false;
      for (double g : fracs) {
        if (std::abs(g - f) < 1e-6) {
          dup = true;
          break;
        }
      }
      if (!dup) fracs.push_back(f);
    }

    // Fragment elimination: a pair (p, q) whose amplitudes are consistent
    // with ONE interferer tone of amplitude A split at some boundary
    // (a_p ~ f*A, a_q ~ (1-f)*A) is interference, not the target. Peaks
    // already matching the expected amplitude are protected.
    for (std::size_t pi = 0; pi < cands.size(); ++pi) {
      for (std::size_t qi = 0; qi < cands.size(); ++qi) {
        if (pi == qi) continue;
        for (double f : fracs) {
          const double a1 = cands[pi].amp / f;
          const double a2 = cands[qi].amp / (1.0 - f);
          const double hi = std::max(a1, a2);
          if (hi <= 0.0) continue;
          if (std::abs(a1 - a2) / hi > opt_.fragment_tol) continue;
          const auto protected_peak = [&](const Cand& c) {
            return expect > 0.0 &&
                   std::abs(c.amp - expect) / expect <= opt_.amp_tol;
          };
          if (!protected_peak(cands[pi])) cands[pi].fragment = true;
          if (!protected_peak(cands[qi])) cands[qi].fragment = true;
        }
      }
    }

    // Decision: the surviving peak whose amplitude best matches the
    // history expectation; fragments rejoin (with a confidence penalty)
    // only when elimination wiped out every candidate.
    std::vector<std::size_t> pool;
    for (std::size_t c = 0; c < cands.size(); ++c) {
      if (!cands[c].fragment) pool.push_back(c);
    }
    double penalty = 1.0;
    if (pool.empty()) {
      for (std::size_t c = 0; c < cands.size(); ++c) pool.push_back(c);
      penalty = 0.5;
    }

    std::size_t best = pool[0];
    double conf;
    if (expect > 0.0) {
      double e_best = 1e300, e_second = 1e300;
      for (std::size_t c : pool) {
        const double e = std::abs(cands[c].amp - expect) / expect;
        if (e < e_best) {
          e_second = e_best;
          e_best = e;
          best = c;
        } else if (e < e_second) {
          e_second = e;
        }
      }
      conf = clamp01(1.0 - e_best);
      // An almost-as-good runner-up means the amplitude match did not
      // really discriminate.
      if (e_second - e_best < 0.15) conf *= 0.5;
    } else {
      // No usable history: tallest unmasked peak, low confidence.
      conf = 0.3;
    }
    out[i].bin = cands[best].bin;
    out[i].height = cands[best].height;
    confidence[i] = conf * penalty;
  }
  return out;
}

}  // namespace tnb::base
