// CoRa->TnB hybrid assignment: CoRa's cheap amplitude decision first,
// Thrive's full peak-matching cost only as the arbiter for symbols CoRa is
// not confident about.
//
// CoRa reads one cached signal vector per symbol; Thrive evaluates up to
// 2M^2 cross-packet sibling costs per checking point. The hybrid keeps
// Thrive's accuracy where it matters (ambiguous, collided symbols) at
// CoRa's cost where it does not (symbols with one clean amplitude match) —
// a composition the TnB paper never evaluated (ISSUE 7).
#pragma once

#include "baselines/cora.hpp"
#include "core/thrive.hpp"
#include "lora/params.hpp"

namespace tnb::base {

struct HybridOptions {
  /// Symbols whose CoRa confidence falls below this are re-decided by
  /// Thrive. 0 never escalates (pure CoRa); 1 always does (pure Thrive).
  double escalate_below = 0.7;
  CoRaOptions cora;
  rx::ThriveOptions thrive;
};

/// Work counters for the escalation split (bench/eval reporting).
struct HybridStats {
  std::size_t calls = 0;      ///< checking points processed
  std::size_t symbols = 0;    ///< total symbols decided
  std::size_t escalated = 0;  ///< symbols re-decided by Thrive
};

class HybridAssigner final : public rx::PeakAssigner {
 public:
  explicit HybridAssigner(lora::Params p, HybridOptions opt = {});

  std::vector<rx::Assignment> assign(const rx::AssignInput& in) override;

  const HybridStats& stats() const { return stats_; }

 private:
  lora::Params p_;
  HybridOptions opt_;
  CoRaDetector cora_;
  rx::Thrive thrive_;
  HybridStats stats_;
};

}  // namespace tnb::base
