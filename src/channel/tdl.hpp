// Generic 3GPP tapped-delay-line fading channels (TS 36.101 Annex B.2).
//
// ETU is the profile the paper evaluates (see etu.hpp); EPA and EVA — the
// pedestrian and vehicular siblings — are provided for sensitivity studies
// beyond the paper (bench_channels compares all three).
#pragma once

#include <vector>

#include "channel/fading.hpp"

namespace tnb::chan {

/// One multipath profile: excess delays and relative tap powers.
struct TdlProfile {
  const char* name = "";
  std::vector<double> delays_s;
  std::vector<double> powers_db;
};

TdlProfile epa_profile();  ///< Extended Pedestrian A (delay spread 43 ns)
TdlProfile eva_profile();  ///< Extended Vehicular A (delay spread 357 ns)
TdlProfile etu_profile();  ///< Extended Typical Urban (delay spread 991 ns)

/// Tapped-delay-line Rayleigh channel over an arbitrary profile, with
/// Jakes Doppler. EtuChannel is equivalent to TdlChannel(etu_profile(), 5).
class TdlChannel final : public Channel {
 public:
  TdlChannel(TdlProfile profile, double doppler_hz,
             unsigned n_oscillators = 16);

  const TdlProfile& profile() const { return profile_; }

  void apply(IqBuffer& iq, double sample_rate_hz, Rng& rng) const override;

 private:
  TdlProfile profile_;
  double doppler_hz_;
  unsigned n_oscillators_;
};

}  // namespace tnb::chan
