// LTE Extended Typical Urban (ETU) multipath channel.
//
// Tapped-delay-line model from 3GPP TS 36.101 Annex B.2: nine Rayleigh taps
// with excess delays up to 5 us, each fading independently with a Jakes
// Doppler spectrum. The paper uses ETU with a 5 Hz Doppler to stress TnB
// with strong multipath and fluctuation (Section 8.5). EPA/EVA siblings
// and the generic tapped-delay-line live in tdl.hpp.
#pragma once

#include "channel/tdl.hpp"

namespace tnb::chan {

class EtuChannel final : public Channel {
 public:
  explicit EtuChannel(double doppler_hz = 5.0, unsigned n_oscillators = 16)
      : tdl_(etu_profile(), doppler_hz, n_oscillators) {}

  void apply(IqBuffer& iq, double sample_rate_hz, Rng& rng) const override {
    tdl_.apply(iq, sample_rate_hz, rng);
  }

 private:
  TdlChannel tdl_;
};

}  // namespace tnb::chan
