#include "channel/awgn.hpp"

#include "common/math_util.hpp"

namespace tnb::chan {

void add_awgn(std::span<cfloat> buf, double noise_power, Rng& rng) {
  if (noise_power <= 0.0) return;
  for (cfloat& v : buf) v += rng.complex_normal(noise_power);
}

double fullband_noise_power(unsigned osf) { return static_cast<double>(osf); }

double amplitude_for_snr_db(double snr_db) { return db_to_amplitude(snr_db); }

}  // namespace tnb::chan
