#include "channel/tdl.hpp"

#include <cmath>
#include <cstddef>

#include "common/math_util.hpp"

namespace tnb::chan {

TdlProfile epa_profile() {
  return {"EPA",
          {0e-9, 30e-9, 70e-9, 90e-9, 110e-9, 190e-9, 410e-9},
          {0.0, -1.0, -2.0, -3.0, -8.0, -17.2, -20.8}};
}

TdlProfile eva_profile() {
  return {"EVA",
          {0e-9, 30e-9, 150e-9, 310e-9, 370e-9, 710e-9, 1090e-9, 1730e-9,
           2510e-9},
          {0.0, -1.5, -1.4, -3.6, -0.6, -9.1, -7.0, -12.0, -16.9}};
}

TdlProfile etu_profile() {
  return {"ETU",
          {0e-9, 50e-9, 120e-9, 200e-9, 230e-9, 500e-9, 1600e-9, 2300e-9,
           5000e-9},
          {-1.0, -1.0, -1.0, 0.0, 0.0, 0.0, -3.0, -5.0, -7.0}};
}

TdlChannel::TdlChannel(TdlProfile profile, double doppler_hz,
                       unsigned n_oscillators)
    : profile_(std::move(profile)),
      doppler_hz_(doppler_hz),
      n_oscillators_(n_oscillators) {}

void TdlChannel::apply(IqBuffer& iq, double sample_rate_hz, Rng& rng) const {
  if (iq.empty()) return;

  // Discrete tap set: each physical tap lands at a fractional sample delay
  // and is split across the two neighbouring integer delays.
  struct DiscreteTap {
    std::size_t delay;
    double amplitude;
    JakesProcess fader;
  };
  std::vector<DiscreteTap> taps;
  for (std::size_t t = 0; t < profile_.delays_s.size(); ++t) {
    const double power = db_to_linear(profile_.powers_db[t]);
    const double d = profile_.delays_s[t] * sample_rate_hz;
    const std::size_t d0 = static_cast<std::size_t>(d);
    const double frac = d - static_cast<double>(d0);
    const double amp = std::sqrt(power);
    if (frac < 1e-9) {
      taps.push_back({d0, amp, JakesProcess(doppler_hz_, rng, n_oscillators_)});
    } else {
      taps.push_back(
          {d0, amp * (1.0 - frac), JakesProcess(doppler_hz_, rng, n_oscillators_)});
      taps.push_back(
          {d0 + 1, amp * frac, JakesProcess(doppler_hz_, rng, n_oscillators_)});
    }
  }
  // Normalize by the realized discrete-tap power.
  double total_power = 0.0;
  for (const DiscreteTap& tap : taps) total_power += tap.amplitude * tap.amplitude;
  const double norm = 1.0 / std::sqrt(total_power);

  // Fader gains sampled at coherence-block boundaries, linearly
  // interpolated in between (stepping the phase mid-symbol would splatter
  // the dechirped tone).
  const std::size_t block =
      std::max<std::size_t>(1, static_cast<std::size_t>(sample_rate_hz /
                                                        (doppler_hz_ * 256.0 + 1.0)));
  const IqBuffer in = iq;
  std::fill(iq.begin(), iq.end(), cfloat{0.0f, 0.0f});
  const std::size_t n_blocks = in.size() / block + 2;
  std::vector<cfloat> gains(n_blocks);
  for (const DiscreteTap& tap : taps) {
    const float a = static_cast<float>(tap.amplitude * norm);
    for (std::size_t b = 0; b < n_blocks; ++b) {
      gains[b] = tap.fader.at(static_cast<double>(b * block) / sample_rate_hz);
    }
    for (std::size_t i = 0; i + tap.delay < in.size(); ++i) {
      const std::size_t b = i / block;
      const float frac =
          static_cast<float>(i % block) / static_cast<float>(block);
      const cfloat gain = (1.0f - frac) * gains[b] + frac * gains[b + 1];
      iq[i + tap.delay] += a * gain * in[i];
    }
  }
}

}  // namespace tnb::chan
