// Additive white Gaussian noise.
//
// Convention used across the simulator: the *in-band* noise power (within
// the LoRa signal bandwidth BW) is 1.0, so a packet at SNR gamma is
// transmitted with amplitude sqrt(gamma). Because the receiver samples at
// OSF x BW, white noise of per-sample variance OSF carries unit power per
// BW of bandwidth.
#pragma once

#include <span>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace tnb::chan {

/// Adds complex Gaussian noise of per-sample variance `noise_power`.
void add_awgn(std::span<cfloat> buf, double noise_power, Rng& rng);

/// Per-sample noise variance that realizes unit in-band noise power at
/// oversampling factor `osf`.
double fullband_noise_power(unsigned osf);

/// Transmit amplitude for a target SNR (dB) under the unit in-band noise
/// convention.
double amplitude_for_snr_db(double snr_db);

}  // namespace tnb::chan
