#include "channel/fading.hpp"

#include <cmath>

#include "common/math_util.hpp"

namespace tnb::chan {

SlowFlatFadingChannel::SlowFlatFadingChannel(double sigma_db,
                                             double coherence_time_s)
    : sigma_db_(sigma_db), coherence_time_s_(coherence_time_s) {}

void SlowFlatFadingChannel::apply(IqBuffer& iq, double sample_rate_hz,
                                  Rng& rng) const {
  if (iq.empty()) return;
  const std::size_t step =
      std::max<std::size_t>(1, static_cast<std::size_t>(coherence_time_s_ *
                                                        sample_rate_hz));
  const std::size_t n_steps = iq.size() / step + 2;

  // Gain (dB) random walk, linearly interpolated between step boundaries.
  std::vector<double> gain_db(n_steps);
  gain_db[0] = rng.normal(0.0, sigma_db_);
  for (std::size_t k = 1; k < n_steps; ++k) {
    gain_db[k] = gain_db[k - 1] + rng.normal(0.0, sigma_db_);
  }
  for (std::size_t i = 0; i < iq.size(); ++i) {
    const std::size_t k = i / step;
    const double frac = static_cast<double>(i % step) / static_cast<double>(step);
    const double db = gain_db[k] * (1.0 - frac) + gain_db[k + 1] * frac;
    iq[i] *= static_cast<float>(db_to_amplitude(db));
  }
}

JakesProcess::JakesProcess(double doppler_hz, Rng& rng, unsigned n_oscillators) {
  osc_.resize(n_oscillators);
  for (unsigned m = 0; m < n_oscillators; ++m) {
    // Random arrival angles give a stationary approximation of the Jakes
    // spectrum (Monte-Carlo sum-of-sinusoids).
    const double alpha = rng.uniform(0.0, kTwoPi);
    osc_[m].freq_hz = doppler_hz * std::cos(alpha);
    osc_[m].phase = rng.uniform(0.0, kTwoPi);
  }
  norm_ = 1.0 / std::sqrt(static_cast<double>(n_oscillators));
}

cfloat JakesProcess::at(double t_s) const {
  double re = 0.0, im = 0.0;
  for (const Osc& o : osc_) {
    const double ph = kTwoPi * o.freq_hz * t_s + o.phase;
    re += std::cos(ph);
    im += std::sin(ph);
  }
  return {static_cast<float>(re * norm_), static_cast<float>(im * norm_)};
}

}  // namespace tnb::chan
