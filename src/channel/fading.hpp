// Fading processes: per-packet channels applied to a clean packet waveform.
//
// Two models are used in the evaluation:
//  * SlowFlatFadingChannel — a slowly drifting log-amplitude (AR(1) at
//    symbol granularity), reproducing the gentle per-packet peak-height
//    fluctuation visible in the paper's experimental traces (Fig. 6).
//  * JakesProcess — a classical sum-of-sinusoids Rayleigh fader with the
//    Jakes Doppler spectrum; the building block of the ETU channel.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace tnb::chan {

/// Abstract per-packet channel. Implementations transform the packet IQ in
/// place; time 0 is the first sample of the buffer.
class Channel {
 public:
  virtual ~Channel() = default;

  /// Applies the channel. `sample_rate_hz` is the receiver rate; `rng`
  /// provides the realization (each call draws an independent one).
  virtual void apply(IqBuffer& iq, double sample_rate_hz, Rng& rng) const = 0;
};

/// No-op channel (AWGN-only operation).
class IdentityChannel final : public Channel {
 public:
  void apply(IqBuffer&, double, Rng&) const override {}
};

/// Random-walk log-amplitude fluctuation, constant phase.
class SlowFlatFadingChannel final : public Channel {
 public:
  /// `sigma_db` — standard deviation of the per-coherence-step amplitude
  /// increment; `coherence_time_s` — duration of one step.
  SlowFlatFadingChannel(double sigma_db, double coherence_time_s);

  void apply(IqBuffer& iq, double sample_rate_hz, Rng& rng) const override;

 private:
  double sigma_db_;
  double coherence_time_s_;
};

/// Sum-of-sinusoids Rayleigh fading process with Jakes Doppler spectrum.
/// One instance describes one realization of one tap; E[|g|^2] = 1.
class JakesProcess {
 public:
  /// `n_oscillators` trades fidelity of the Doppler spectrum for speed.
  JakesProcess(double doppler_hz, Rng& rng, unsigned n_oscillators = 16);

  /// Complex gain at time t (seconds).
  cfloat at(double t_s) const;

 private:
  struct Osc {
    double freq_hz;   // Doppler shift of this path
    double phase;     // random initial phase
  };
  std::vector<Osc> osc_;
  double norm_;
};

}  // namespace tnb::chan
