// Snapshot exporters: Prometheus text exposition and one-line JSON.
//
// Prometheus format (https://prometheus.io/docs/instrumenting/exposition_formats/):
// one HELP/TYPE pair per metric family (consecutive same-name snapshot
// entries share a family — Snapshot is sorted by name), histogram buckets
// emitted cumulatively with `le` labels plus the `_sum`/`_count` series.
// Values print as %.17g so counters survive a round trip through a float
// parser exactly.
#include <cinttypes>
#include <cstdio>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace tnb::obs {
namespace {

const char* kind_name(Snapshot::Kind k) {
  switch (k) {
    case Snapshot::Kind::kCounter: return "counter";
    case Snapshot::Kind::kGauge: return "gauge";
    case Snapshot::Kind::kHistogram: return "histogram";
  }
  return "untyped";
}

/// Escapes a HELP text / label value for the text format.
std::string escape(const std::string& s, bool label_value) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else if (c == '"' && label_value) out += "\\\"";
    else out += c;
  }
  return out;
}

/// `{a="x",b="y"}` — empty string when there are no labels. `extra`
/// appends one more label (the histogram `le`).
std::string label_block(const Labels& labels, const std::string& extra_key = "",
                        const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + escape(v, /*label_value=*/true) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + extra_value + "\"";
  }
  return out + "}";
}

void append_sample(std::string& out, const std::string& series,
                   const std::string& labels, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += series + labels + " " + buf + "\n";
}

std::string format_bound(double b) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", b);
  return buf;
}

/// JSON metric key: name plus any labels, e.g. `tnb_stage{stage=detect}`.
std::string json_key(const Snapshot::Metric& m) {
  if (m.labels.empty()) return m.name;
  std::string out = m.name + "{";
  bool first = true;
  for (const auto& [k, v] : m.labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=" + v;
  }
  return out + "}";
}

}  // namespace

std::string Snapshot::to_prometheus() const {
  std::string out;
  const std::string* open_family = nullptr;
  for (const Metric& m : metrics) {
    if (open_family == nullptr || *open_family != m.name) {
      out += "# HELP " + m.name + " " +
             escape(m.help.empty() ? m.name : m.help, false) + "\n";
      out += "# TYPE " + m.name + " " + kind_name(m.kind) + "\n";
      open_family = &m.name;
    }
    switch (m.kind) {
      case Kind::kCounter:
      case Kind::kGauge:
        append_sample(out, m.name, label_block(m.labels), m.value);
        break;
      case Kind::kHistogram: {
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < m.buckets.size(); ++i) {
          cum += m.buckets[i];
          const std::string le =
              i < m.bounds.size() ? format_bound(m.bounds[i]) : "+Inf";
          append_sample(out, m.name + "_bucket", label_block(m.labels, "le", le),
                        static_cast<double>(cum));
        }
        append_sample(out, m.name + "_sum", label_block(m.labels), m.sum);
        append_sample(out, m.name + "_count", label_block(m.labels),
                      static_cast<double>(m.count));
        break;
      }
    }
  }
  return out;
}

std::string histogram_summary(const Snapshot::Metric& h) {
  if (h.count == 0) return "n=0";
  char buf[128];
  std::snprintf(buf, sizeof buf, "n=%" PRIu64 " mean=%.4g p50=%.4g p99=%.4g",
                h.count, h.sum / static_cast<double>(h.count),
                histogram_quantile(h, 0.5), histogram_quantile(h, 0.99));
  return buf;
}

std::string Snapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const Metric& m : metrics) {
    if (m.kind == Kind::kCounter) {
      w.field(json_key(m), static_cast<std::uint64_t>(m.value));
    }
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const Metric& m : metrics) {
    if (m.kind == Kind::kGauge) {
      w.field(json_key(m), static_cast<std::int64_t>(m.value));
    }
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const Metric& m : metrics) {
    if (m.kind != Kind::kHistogram) continue;
    w.key(json_key(m)).begin_object();
    w.field("count", m.count);
    w.field("sum", m.sum);
    w.key("bounds").begin_array();
    for (const double b : m.bounds) w.value(b);
    w.end_array();
    w.key("buckets").begin_array();
    for (const std::uint64_t b : m.buckets) w.value(b);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

}  // namespace tnb::obs
