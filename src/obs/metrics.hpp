// tnb::obs — the observability subsystem's metric primitives and registry.
//
// A Registry owns named counters, gauges and fixed-bucket histograms.
// Registration (cold path) takes a mutex; every update (hot path) is a
// relaxed atomic on a metric that never moves, so pipeline stages and the
// streaming ring can record from any thread without coordination. Handles
// (CounterRef & co.) are nullable: instrumentation sites built against a
// null registry carry a null handle and every record call degenerates to a
// pointer test, which is how the whole subsystem is disabled with zero
// overhead — see Registry::global().
//
// A Snapshot is a consistent-enough point-in-time copy of every metric
// (counters may advance between reads; each individual value is atomic),
// exported either as Prometheus text exposition or one-line JSON
// (exposition.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace tnb::obs {

/// Label set of one metric, e.g. {{"stage", "detect"}}. Order is
/// significant for identity (registration serializes them as given).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous signed value (queue depths, high-water marks).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger (lock-free running maximum).
  void update_max(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram (Prometheus semantics: `bounds` are inclusive
/// upper bounds, one implicit +Inf bucket on top). Buckets are stored
/// non-cumulative internally; exporters emit the cumulative form.
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket i (i == bounds().size() is +Inf).
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  ///< bounds+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};  ///< CAS-accumulated (see observe())
};

/// Nullable handles: a default-constructed ref records nothing. All
/// instrumentation goes through these so a disabled registry costs one
/// branch per site.
class CounterRef {
 public:
  CounterRef() = default;
  explicit CounterRef(Counter* c) : c_(c) {}
  void inc(std::uint64_t n = 1) const {
    if (c_ != nullptr) c_->inc(n);
  }
  bool enabled() const { return c_ != nullptr; }
  std::uint64_t value() const { return c_ != nullptr ? c_->value() : 0; }

 private:
  Counter* c_ = nullptr;
};

class GaugeRef {
 public:
  GaugeRef() = default;
  explicit GaugeRef(Gauge* g) : g_(g) {}
  void set(std::int64_t v) const {
    if (g_ != nullptr) g_->set(v);
  }
  void add(std::int64_t d) const {
    if (g_ != nullptr) g_->add(d);
  }
  void update_max(std::int64_t v) const {
    if (g_ != nullptr) g_->update_max(v);
  }
  bool enabled() const { return g_ != nullptr; }
  std::int64_t value() const { return g_ != nullptr ? g_->value() : 0; }

 private:
  Gauge* g_ = nullptr;
};

class HistogramRef {
 public:
  HistogramRef() = default;
  explicit HistogramRef(Histogram* h) : h_(h) {}
  void observe(double v) const {
    if (h_ != nullptr) h_->observe(v);
  }
  bool enabled() const { return h_ != nullptr; }
  std::uint64_t count() const { return h_ != nullptr ? h_->count() : 0; }
  double sum() const { return h_ != nullptr ? h_->sum() : 0.0; }

 private:
  Histogram* h_ = nullptr;
};

/// Point-in-time copy of a registry, ready for exposition. Metrics are
/// ordered by (name, labels) so output is deterministic.
struct Snapshot {
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Metric {
    Kind kind = Kind::kCounter;
    std::string name;
    std::string help;
    Labels labels;
    double value = 0.0;           ///< counter / gauge
    std::vector<double> bounds;   ///< histogram upper bounds
    std::vector<std::uint64_t> buckets;  ///< non-cumulative, bounds+1 slots
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  std::vector<Metric> metrics;

  /// Lvalue-qualified: the pointer aims into this snapshot, so calling it
  /// on a temporary (`reg.snapshot().find(...)`) would dangle — deleted.
  const Metric* find(std::string_view name, const Labels& labels = {}) const&;
  const Metric* find(std::string_view name,
                     const Labels& labels = {}) const&& = delete;

  /// Prometheus text exposition (HELP/TYPE per family, cumulative
  /// histogram buckets with le labels, counters suffixed _total by
  /// convention of the caller-supplied names).
  std::string to_prometheus() const;

  /// One-line JSON: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;
};

/// Estimated q-quantile (0..1) of a snapshot histogram, by linear
/// interpolation inside the owning bucket; observations beyond the last
/// finite bound clamp to it. NaN when the histogram is empty.
double histogram_quantile(const Snapshot::Metric& h, double q);

/// One-line human summary of a snapshot histogram:
/// "n=<count> mean=<m> p50=<q50> p99=<q99>" ("n=0" when empty). Values are
/// in the histogram's native unit; the caller provides context.
std::string histogram_summary(const Snapshot::Metric& h);

/// Thread-safe registry of named metrics. Registering the same
/// (name, labels) twice returns the same metric; re-registering under a
/// different kind (or different histogram bounds) throws.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  CounterRef counter(const std::string& name, const std::string& help = "",
                     Labels labels = {});
  GaugeRef gauge(const std::string& name, const std::string& help = "",
                 Labels labels = {});
  HistogramRef histogram(const std::string& name,
                         std::span<const double> bounds,
                         const std::string& help = "", Labels labels = {});

  Snapshot snapshot() const;

  /// Process-wide registry used by instrumentation sites that were not
  /// handed one explicitly (Receiver, StreamingReceiver, IqRing default to
  /// it). Null — the default — disables those sites entirely: handles
  /// resolved against a null registry are null and never touch memory.
  static Registry* global();
  /// Installs (or, with nullptr, removes) the process-wide registry.
  /// Affects instrumented objects constructed afterwards.
  static void set_global(Registry* r);

 private:
  struct Entry {
    Snapshot::Kind kind;
    std::string name;
    std::string help;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_insert(Snapshot::Kind kind, const std::string& name,
                        const std::string& help, Labels&& labels);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< stable addresses
};

/// Resolves the registry an instrumented component should record into:
/// the explicit one when given, else the process-wide global (may be null).
inline Registry* resolve(Registry* explicit_registry) {
  return explicit_registry != nullptr ? explicit_registry : Registry::global();
}

}  // namespace tnb::obs
