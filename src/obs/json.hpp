// Minimal one-line JSON object/array writer — the single serialization
// path behind every stats line the tools print (obs::Snapshot::to_json,
// rx::ReceiverStats::to_json, stream::StreamingStats::to_json), so the
// schemas cannot drift apart field by field.
//
// Emission is strictly append-only and in call order; keys are written
// exactly as given (callers pass plain identifiers). Strings are escaped
// per RFC 8259; doubles use %.9g (shortest round-trippable for the float
// data carried here) and non-finite values serialize as null.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cmath>
#include <string>
#include <string_view>

namespace tnb::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    comma();
    out_ += '{';
    first_ = true;
    return *this;
  }
  JsonWriter& end_object() {
    out_ += '}';
    first_ = false;
    return *this;
  }
  JsonWriter& begin_array() {
    comma();
    out_ += '[';
    first_ = true;
    return *this;
  }
  JsonWriter& end_array() {
    out_ += ']';
    first_ = false;
    return *this;
  }

  /// Writes `"key":` — must be followed by exactly one value/container.
  JsonWriter& key(std::string_view k) {
    comma();
    string_raw(k);
    out_ += ':';
    first_ = true;  // the upcoming value must not be comma-prefixed
    return *this;
  }

  JsonWriter& value(std::uint64_t v) {
    comma();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    out_ += buf;
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    comma();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out_ += buf;
    return *this;
  }
  JsonWriter& value(std::uint32_t v) { return value(std::uint64_t{v}); }
  JsonWriter& value(std::int32_t v) { return value(std::int64_t{v}); }
  JsonWriter& value(double v) {
    comma();
    if (!std::isfinite(v)) {
      out_ += "null";
      return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    out_ += buf;
    return *this;
  }
  JsonWriter& value(std::string_view s) {
    comma();
    string_raw(s);
    return *this;
  }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  /// Without this overload a string literal would convert to bool (a
  /// standard conversion beats string_view's converting constructor).
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }

  /// Splices a pre-serialized JSON fragment in value position (used to
  /// embed one stats object inside another without re-parsing).
  JsonWriter& raw(std::string_view json) {
    comma();
    out_.append(json);
    return *this;
  }

  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma() {
    if (!first_) out_ += ',';
    first_ = false;
  }
  void string_raw(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  bool first_ = true;
};

}  // namespace tnb::obs
