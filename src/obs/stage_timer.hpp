// Scoped wall-clock spans feeding per-stage duration histograms.
//
// The seven pipeline stages (paper Fig. 3 plus TnB's second pass) share
// one metric family, `tnb_stage_duration_seconds`, distinguished by a
// `stage` label; StageTimer resolves the seven handles once per Receiver
// so the hot path never touches the registry lock. When the registry is
// null every handle is null and ScopedSpan skips the clock reads — the
// instrumented pipeline runs the exact same decode arithmetic either way
// (tests/test_obs_determinism.cpp holds it to bit-identical output).
//
// Spans nest: the `assign` span covers Thrive's whole assignment call and
// therefore contains the `sigcalc` spans of the cache misses it triggers.
// Stage sums are "time spent inside this stage", not a disjoint partition
// of the decode wall clock.
#pragma once

#include <chrono>
#include <span>

#include "obs/metrics.hpp"

namespace tnb::obs {

/// Stage label values, in pipeline order.
inline constexpr const char* kStageDetect = "detect";
inline constexpr const char* kStageFracSync = "frac_sync";
inline constexpr const char* kStageSigCalc = "sigcalc";
inline constexpr const char* kStageAssign = "assign";
inline constexpr const char* kStageHeader = "header";
inline constexpr const char* kStageBec = "bec";
inline constexpr const char* kStageSecondPass = "second_pass";

inline constexpr const char* kStageMetricName = "tnb_stage_duration_seconds";

/// Duration buckets shared by every *_seconds histogram: 1 µs .. 10 s in
/// roughly 1-3-10 steps — wide enough for a whole second pass, fine
/// enough to separate a cached signal-vector hit from an FFT.
inline std::span<const double> duration_bounds() {
  static constexpr double kBounds[] = {1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4,
                                       1e-3, 3e-3, 1e-2, 3e-2, 0.1,  0.3,
                                       1.0,  3.0,  10.0};
  return kBounds;
}

/// RAII span: observes the elapsed seconds into a histogram when it goes
/// out of scope. A span on a null handle reads no clock at all.
class ScopedSpan {
 public:
  explicit ScopedSpan(HistogramRef h) : h_(h) {
    if (h_.enabled()) t0_ = std::chrono::steady_clock::now();
  }
  ~ScopedSpan() { stop(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Ends the span early (idempotent).
  void stop() {
    if (!h_.enabled() || stopped_) return;
    stopped_ = true;
    h_.observe(std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0_)
                   .count());
  }

 private:
  HistogramRef h_;
  std::chrono::steady_clock::time_point t0_;
  bool stopped_ = false;
};

/// The seven per-stage histogram handles, resolved once. All seven are
/// registered eagerly so an exposition always carries the full stage set,
/// observed or not.
struct StageTimer {
  HistogramRef detect;
  HistogramRef frac_sync;
  HistogramRef sigcalc;
  HistogramRef assign;
  HistogramRef header;
  HistogramRef bec;
  HistogramRef second_pass;

  /// `extra` labels are appended after the `stage` label on every handle —
  /// the fleet layer passes {channel, sf} so each lane gets its own series
  /// while the label-free single-receiver schema stays unchanged.
  static StageTimer for_registry(Registry* reg, const Labels& extra = {}) {
    StageTimer t;
    if (reg == nullptr) return t;
    const auto stage = [reg, &extra](const char* name) {
      Labels labels{{"stage", name}};
      labels.insert(labels.end(), extra.begin(), extra.end());
      return reg->histogram(kStageMetricName, duration_bounds(),
                            "Wall-clock seconds spent per pipeline stage",
                            std::move(labels));
    };
    t.detect = stage(kStageDetect);
    t.frac_sync = stage(kStageFracSync);
    t.sigcalc = stage(kStageSigCalc);
    t.assign = stage(kStageAssign);
    t.header = stage(kStageHeader);
    t.bec = stage(kStageBec);
    t.second_pass = stage(kStageSecondPass);
    return t;
  }
};

}  // namespace tnb::obs
