#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tnb::obs {
namespace {

std::atomic<Registry*> g_global{nullptr};

}  // namespace

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      buckets_(new std::atomic<std::uint64_t>[bounds.size() + 1]) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "obs::Histogram: bounds must be strictly increasing");
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // std::atomic<double>::fetch_add is C++20 but not universally lock-free;
  // an explicit CAS loop keeps the dependency surface minimal and is what
  // libstdc++ emits for it anyway.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

Registry* Registry::global() {
  return g_global.load(std::memory_order_acquire);
}

void Registry::set_global(Registry* r) {
  g_global.store(r, std::memory_order_release);
}

Registry::Entry& Registry::find_or_insert(Snapshot::Kind kind,
                                          const std::string& name,
                                          const std::string& help,
                                          Labels&& labels) {
  for (const std::unique_ptr<Entry>& e : entries_) {
    if (e->name == name && e->labels == labels) {
      if (e->kind != kind) {
        throw std::invalid_argument("obs::Registry: metric '" + name +
                                    "' re-registered as a different kind");
      }
      return *e;
    }
  }
  entries_.push_back(std::make_unique<Entry>());
  Entry& e = *entries_.back();
  e.kind = kind;
  e.name = name;
  e.help = help;
  e.labels = std::move(labels);
  return e;
}

CounterRef Registry::counter(const std::string& name, const std::string& help,
                             Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e =
      find_or_insert(Snapshot::Kind::kCounter, name, help, std::move(labels));
  if (e.counter == nullptr) e.counter = std::make_unique<Counter>();
  return CounterRef(e.counter.get());
}

GaugeRef Registry::gauge(const std::string& name, const std::string& help,
                         Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e =
      find_or_insert(Snapshot::Kind::kGauge, name, help, std::move(labels));
  if (e.gauge == nullptr) e.gauge = std::make_unique<Gauge>();
  return GaugeRef(e.gauge.get());
}

HistogramRef Registry::histogram(const std::string& name,
                                 std::span<const double> bounds,
                                 const std::string& help, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = find_or_insert(Snapshot::Kind::kHistogram, name, help,
                            std::move(labels));
  if (e.histogram == nullptr) {
    e.histogram = std::make_unique<Histogram>(bounds);
  } else if (!std::equal(bounds.begin(), bounds.end(),
                         e.histogram->bounds().begin(),
                         e.histogram->bounds().end())) {
    throw std::invalid_argument("obs::Registry: histogram '" + name +
                                "' re-registered with different bounds");
  }
  return HistogramRef(e.histogram.get());
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.metrics.reserve(entries_.size());
    for (const std::unique_ptr<Entry>& e : entries_) {
      Snapshot::Metric m;
      m.kind = e->kind;
      m.name = e->name;
      m.help = e->help;
      m.labels = e->labels;
      switch (e->kind) {
        case Snapshot::Kind::kCounter:
          m.value = static_cast<double>(e->counter->value());
          break;
        case Snapshot::Kind::kGauge:
          m.value = static_cast<double>(e->gauge->value());
          break;
        case Snapshot::Kind::kHistogram: {
          const Histogram& h = *e->histogram;
          m.bounds = h.bounds();
          m.buckets.resize(m.bounds.size() + 1);
          for (std::size_t i = 0; i < m.buckets.size(); ++i) {
            m.buckets[i] = h.bucket_count(i);
          }
          m.count = h.count();
          m.sum = h.sum();
          break;
        }
      }
      snap.metrics.push_back(std::move(m));
    }
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const Snapshot::Metric& a, const Snapshot::Metric& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snap;
}

const Snapshot::Metric* Snapshot::find(std::string_view name,
                                       const Labels& labels) const& {
  for (const Metric& m : metrics) {
    if (m.name == name && m.labels == labels) return &m;
  }
  return nullptr;
}

double histogram_quantile(const Snapshot::Metric& h, double q) {
  if (h.count == 0) return std::nan("");
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(h.count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    const std::uint64_t prev = cum;
    cum += h.buckets[i];
    if (static_cast<double>(cum) < rank) continue;
    // +Inf bucket (or rank inside bucket i): interpolate on [lo, hi].
    if (i >= h.bounds.size()) return h.bounds.empty() ? 0.0 : h.bounds.back();
    const double lo = i == 0 ? 0.0 : h.bounds[i - 1];
    const double hi = h.bounds[i];
    if (h.buckets[i] == 0) return hi;
    const double frac =
        (rank - static_cast<double>(prev)) / static_cast<double>(h.buckets[i]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return h.bounds.empty() ? 0.0 : h.bounds.back();
}

}  // namespace tnb::obs
