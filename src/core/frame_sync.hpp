// Frame-synchronization front-end seam.
//
// The receiver's default front end is Detector (coarse preamble detection,
// paper Section 7 steps 1-3) followed by FracSync (step 4). A FrameSync
// implementation replaces that whole block for one antenna: it receives the
// raw trace and returns fully refined detections, ready for the checking-
// point walk. Baseline synchronizers from the related work (LZn-style
// collision-robust sync, src/baselines/lzn_sync.hpp) plug in here via
// Receiver::set_sync_factory, mirroring how PeakAssigner swaps the
// assignment strategy.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "core/detect.hpp"

namespace tnb::rx {

class FrameSync {
 public:
  virtual ~FrameSync() = default;

  /// Detects and synchronizes every packet preamble in `trace`. Returned
  /// detections carry refined (t0, cfo) on the receiver grid, sorted by t0
  /// and deduplicated within the antenna; cross-antenna merging stays the
  /// receiver's job.
  virtual std::vector<DetectedPacket> sync(std::span<const cfloat> trace) = 0;
};

}  // namespace tnb::rx
