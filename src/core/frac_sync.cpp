#include "core/frac_sync.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/window.hpp"

#include "common/math_util.hpp"

namespace tnb::rx {
namespace {

/// Band-average power gain of the linear interpolator used for fractional
/// window extraction, as a function of the sub-sample offset theta. Q must
/// be normalized by this, or the interpolation loss (maximal at theta=0.5)
/// would bias the timing search toward integer offsets.
double interp_gain(double theta, unsigned osf) {
  theta -= std::floor(theta);
  const double x = kPi / static_cast<double>(osf);
  const double band_mean_cos = osf == 1 ? 0.0 : std::sin(x) / x;
  return (1.0 - theta) * (1.0 - theta) + theta * theta +
         2.0 * theta * (1.0 - theta) * band_mean_cos;
}

}  // namespace

FracSync::FracSync(lora::Params p) : p_(p), demod_(p) { p_.validate(); }

double FracSync::q(std::span<const cfloat> trace, double t0, double cfo_cycles,
                   double dt, double df, bool gate) const {
  const std::size_t sps = p_.sps();
  const std::size_t n = p_.n_bins();
  const double cfo = cfo_cycles + df;

  std::vector<cfloat> window(sps);
  std::vector<cfloat> up_sum(sps, cfloat{0.0f, 0.0f});
  std::vector<cfloat> down_sum(sps, cfloat{0.0f, 0.0f});

  // The correction must be phase-continuous across the whole preamble: the
  // dechirped tone of symbol m carries the CFO phase accumulated since the
  // packet start (2 pi cfo m), and only a correction with the same global
  // phase makes the coherent sum collapse unless cfo is exact — which is
  // precisely the sensitivity Q relies on. dechirp_fft restarts its phasor
  // per window, so the inter-symbol part is applied here.
  auto add_with_symbol_phase = [&](std::vector<cfloat>& sum,
                                   std::vector<cfloat> spec, int m) {
    const double ph = -kTwoPi * cfo * static_cast<double>(m);
    const cfloat rot{static_cast<float>(std::cos(ph)),
                     static_cast<float>(std::sin(ph))};
    for (std::size_t k = 0; k < sps; ++k) sum[k] += spec[k] * rot;
  };
  for (int m = 0; m < static_cast<int>(lora::kPreambleUpchirps); ++m) {
    const double start = t0 + dt + static_cast<double>(m) * static_cast<double>(sps);
    extract_window(trace, start, window);
    add_with_symbol_phase(up_sum, demod_.dechirp_fft(window, cfo, /*up=*/true), m);
  }
  for (int m = 10; m <= 11; ++m) {
    const double start = t0 + dt + static_cast<double>(m) * static_cast<double>(sps);
    extract_window(trace, start, window);
    add_with_symbol_phase(down_sum, demod_.dechirp_fft(window, cfo, /*up=*/false), m);
  }

  SignalVector up_sv, down_sv;
  demod_.fold(up_sum, up_sv);
  demod_.fold(down_sum, down_sv);
  const std::size_t up_peak = lora::Demodulator::argmax(up_sv);
  const std::size_t down_peak = lora::Demodulator::argmax(down_sv);
  if (gate && (up_peak != 0 || down_peak != 0)) return 0.0;
  (void)n;
  const double gain = interp_gain(t0 + dt, p_.osf);
  return (static_cast<double>(up_sv[up_peak]) +
          static_cast<double>(down_sv[down_peak])) /
         gain;
}

FracSyncResult FracSync::refine(std::span<const cfloat> trace, double t0,
                                double cfo_cycles) const {
  // Phase 1: df along dt = 0, from -1 to 0 in steps of 1/16 (17 points),
  // ungated Q. Finds the correct fractional CFO or one off by +/-1.
  //
  // Optimization: the 10 window spectra are computed once; each df
  // candidate only re-weights them by the inter-symbol phase rotation
  // e^{-j 2 pi df m}, which is the term that makes the coherent sum
  // collapse off the correct-CFO line (the intra-symbol scalloping of df
  // affects all candidates' peaks almost equally and is ignored here;
  // phases 2-3 use the exact objective).
  const std::size_t sps = p_.sps();
  std::vector<std::vector<cfloat>> up_spec, down_spec;
  {
    std::vector<cfloat> window(sps);
    for (int m = 0; m < static_cast<int>(lora::kPreambleUpchirps); ++m) {
      extract_window(trace, t0 + m * static_cast<double>(sps), window);
      up_spec.push_back(demod_.dechirp_fft(window, cfo_cycles, true));
    }
    for (int m = 10; m <= 11; ++m) {
      extract_window(trace, t0 + m * static_cast<double>(sps), window);
      down_spec.push_back(demod_.dechirp_fft(window, cfo_cycles, false));
    }
  }
  double best_q = -1.0, df_star = 0.0;
  std::vector<cfloat> up_sum(sps), down_sum(sps);
  SignalVector up_sv, down_sv;
  for (int i = 0; i <= 16; ++i) {
    const double df = -1.0 + static_cast<double>(i) / 16.0;
    std::fill(up_sum.begin(), up_sum.end(), cfloat{0.0f, 0.0f});
    std::fill(down_sum.begin(), down_sum.end(), cfloat{0.0f, 0.0f});
    auto rotate_add = [&](std::vector<cfloat>& sum,
                          const std::vector<cfloat>& spec, int m) {
      // Same phase-continuity as q(): the full correction (coarse + df)
      // determines the inter-symbol rotation.
      const double ph = -kTwoPi * (cfo_cycles + df) * static_cast<double>(m);
      const cfloat rot{static_cast<float>(std::cos(ph)),
                       static_cast<float>(std::sin(ph))};
      for (std::size_t k = 0; k < sps; ++k) sum[k] += spec[k] * rot;
    };
    for (int m = 0; m < static_cast<int>(up_spec.size()); ++m) {
      rotate_add(up_sum, up_spec[static_cast<std::size_t>(m)], m);
    }
    for (int m = 0; m < static_cast<int>(down_spec.size()); ++m) {
      rotate_add(down_sum, down_spec[static_cast<std::size_t>(m)], 10 + m);
    }
    demod_.fold(up_sum, up_sv);
    demod_.fold(down_sum, down_sv);
    const double v =
        static_cast<double>(up_sv[lora::Demodulator::argmax(up_sv)]) +
        static_cast<double>(down_sv[lora::Demodulator::argmax(down_sv)]);
    if (v > best_q) {
      best_q = v;
      df_star = df;
    }
  }

  // Phase 2: 10 points of gated Q* on two CFO lines (df*, df*+1), dt from
  // -1 to 1 receiver samples in steps of 1/2.
  double best_q2 = 0.0, dt_hat = 0.0, df_hat = df_star;
  bool gated = false;
  for (int line = 0; line < 2; ++line) {
    const double df = df_star + static_cast<double>(line);
    for (int i = -2; i <= 2; ++i) {
      const double dt = static_cast<double>(i) / 2.0;
      const double v = q(trace, t0, cfo_cycles, dt, df, /*gate=*/true);
      if (v > best_q2) {
        best_q2 = v;
        dt_hat = dt;
        df_hat = df;
        gated = true;
      }
    }
  }
  if (!gated) {
    // The Q* gate never passed (heavy collision on the preamble): fall
    // back to the ungated objective on the same grid.
    for (int line = 0; line < 2; ++line) {
      const double df = df_star + static_cast<double>(line);
      for (int i = -2; i <= 2; ++i) {
        const double dt = static_cast<double>(i) / 2.0;
        const double v = q(trace, t0, cfo_cycles, dt, df, /*gate=*/false);
        if (v > best_q2) {
          best_q2 = v;
          dt_hat = dt;
          df_hat = df;
        }
      }
    }
  }

  // Phase 3: OSF+1 points along dt in [dt_hat - 1/2, dt_hat + 1/2] at the
  // chosen CFO line.
  double best_q3 = best_q2, dt_fin = dt_hat;
  for (unsigned i = 0; i <= p_.osf; ++i) {
    const double dt =
        dt_hat - 0.5 + static_cast<double>(i) / static_cast<double>(p_.osf);
    const double v = q(trace, t0, cfo_cycles, dt, df_hat, gated);
    if (v > best_q3) {
      best_q3 = v;
      dt_fin = dt;
    }
  }

  FracSyncResult r;
  r.dt = dt_fin;
  r.df = df_hat;
  r.q = best_q3;
  r.gated = gated;
  return r;
}

}  // namespace tnb::rx
