#include "core/frac_sync.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/window.hpp"

#include "common/math_util.hpp"
#include "dsp/fft_backend.hpp"

namespace tnb::rx {
namespace {

// Workspace general-slot layout used by FracSync (and only while a
// FracSync call is running; slots are free for other components between
// calls). Slot 0 holds a 10-window block — preamble spectra during
// phase 1, extracted windows during phases 2/3; slot 4 holds the batched
// spectra eval_preamble derives from the slot-0 windows (kept separate so
// one extraction serves many CFO candidates).
constexpr std::size_t kSlotBlock = 0;
constexpr std::size_t kSlotUpSum = 2;
constexpr std::size_t kSlotDownSum = 3;
constexpr std::size_t kSlotSpectra = 4;

/// Preamble windows entering Q: 8 upchirps plus the 2 full downchirps.
constexpr std::size_t kQWindows = lora::kPreambleUpchirps + 2;

/// Band-average power gain of the linear interpolator used for fractional
/// window extraction, as a function of the sub-sample offset theta. Q must
/// be normalized by this, or the interpolation loss (maximal at theta=0.5)
/// would bias the timing search toward integer offsets.
double interp_gain(double theta, unsigned osf) {
  theta -= std::floor(theta);
  const double x = kPi / static_cast<double>(osf);
  const double band_mean_cos = osf == 1 ? 0.0 : std::sin(x) / x;
  return (1.0 - theta) * (1.0 - theta) + theta * theta +
         2.0 * theta * (1.0 - theta) * band_mean_cos;
}

/// The inter-symbol phase rotation of preamble symbol m: the dechirped
/// tone carries the CFO phase accumulated since the packet start
/// (2 pi cfo m), and only a correction with the same global phase makes
/// the coherent sum collapse unless cfo is exact — precisely the
/// sensitivity Q relies on. dechirp_fft restarts its phasor per window,
/// so the inter-symbol part is applied here.
cfloat symbol_phase(double cfo, int m) {
  const double ph = -kTwoPi * cfo * static_cast<double>(m);
  return {static_cast<float>(std::cos(ph)), static_cast<float>(std::sin(ph))};
}

/// sum[k] += spec[k] * rot, routed through the active SIMD backend.
inline void rotate_accumulate(const cfloat* spec, std::size_t n, cfloat rot,
                              cfloat* sum) {
  dsp::active_fft_backend().rotate_accumulate(spec, n, rot, sum);
}

}  // namespace

FracSync::FracSync(lora::Params p) : p_(p), demod_(p) { p_.validate(); }

void FracSync::extract_preamble(std::span<const cfloat> trace, double start,
                                lora::Workspace& ws) const {
  const std::size_t sps = p_.sps();
  auto& block = ws.iq_scratch(kSlotBlock);
  block.resize(kQWindows * sps);
  for (int m = 0; m < static_cast<int>(lora::kPreambleUpchirps); ++m) {
    extract_window(trace, start + static_cast<double>(m) * static_cast<double>(sps),
                   std::span<cfloat>(block.data() + static_cast<std::size_t>(m) * sps, sps));
  }
  for (int m = 10; m <= 11; ++m) {
    extract_window(trace, start + static_cast<double>(m) * static_cast<double>(sps),
                   std::span<cfloat>(block.data() + static_cast<std::size_t>(m - 2) * sps, sps));
  }
}

FracSync::QEval FracSync::eval_preamble(double theta, double cfo,
                                        lora::Workspace& ws) const {
  const std::size_t sps = p_.sps();
  const cfloat* block = ws.iq_scratch(kSlotBlock).data();
  auto& spectra = ws.iq_scratch(kSlotSpectra);
  auto& up_sum = ws.iq_scratch(kSlotUpSum);
  auto& down_sum = ws.iq_scratch(kSlotDownSum);
  spectra.resize(kQWindows * sps);
  up_sum.assign(sps, cfloat{0.0f, 0.0f});
  down_sum.assign(sps, cfloat{0.0f, 0.0f});

  // All 10 spectra in two batched invocations (8 upchirp windows, then
  // the 2 downchirps): one phasor lookup and one forward_batch per
  // direction instead of 10 interleaved single transforms.
  constexpr std::size_t kUp = lora::kPreambleUpchirps;
  demod_.dechirp_fft_batch_into(std::span<const cfloat>(block, kUp * sps), kUp,
                                cfo, /*up=*/true, ws,
                                std::span<cfloat>(spectra.data(), kUp * sps));
  demod_.dechirp_fft_batch_into(
      std::span<const cfloat>(block + kUp * sps, 2 * sps), 2, cfo,
      /*up=*/false, ws,
      std::span<cfloat>(spectra.data() + kUp * sps, 2 * sps));

  for (int m = 0; m < static_cast<int>(kUp); ++m) {
    rotate_accumulate(spectra.data() + static_cast<std::size_t>(m) * sps, sps,
                      symbol_phase(cfo, m), up_sum.data());
  }
  for (int m = 10; m <= 11; ++m) {
    rotate_accumulate(spectra.data() + static_cast<std::size_t>(m - 2) * sps,
                      sps, symbol_phase(cfo, m), down_sum.data());
  }

  SignalVector& up_sv = ws.sv_scratch(0);
  SignalVector& down_sv = ws.sv_scratch(1);
  demod_.fold(up_sum, up_sv);
  demod_.fold(down_sum, down_sv);
  const std::size_t up_peak = lora::Demodulator::argmax(up_sv);
  const std::size_t down_peak = lora::Demodulator::argmax(down_sv);
  const double gain = interp_gain(theta, p_.osf);
  QEval e;
  e.value = (static_cast<double>(up_sv[up_peak]) +
             static_cast<double>(down_sv[down_peak])) /
            gain;
  e.gate_pass = up_peak == 0 && down_peak == 0;
  return e;
}

double FracSync::q(std::span<const cfloat> trace, double t0, double cfo_cycles,
                   double dt, double df, bool gate) const {
  thread_local lora::Workspace tls_ws;
  lora::Workspace& ws = tls_ws;
  ws.reserve(p_);
  extract_preamble(trace, t0 + dt, ws);
  const QEval e = eval_preamble(t0 + dt, cfo_cycles + df, ws);
  if (gate && !e.gate_pass) return 0.0;
  return e.value;
}

FracSyncResult FracSync::refine(std::span<const cfloat> trace, double t0,
                                double cfo_cycles) const {
  thread_local lora::Workspace tls_ws;
  return refine(trace, t0, cfo_cycles, tls_ws);
}

FracSyncResult FracSync::refine(std::span<const cfloat> trace, double t0,
                                double cfo_cycles, lora::Workspace& ws) const {
  ws.reserve(p_);
  const std::size_t sps = p_.sps();

  // Phase 1: df along dt = 0, from -1 to 0 in steps of 1/16 (17 points),
  // ungated Q. Finds the correct fractional CFO or one off by +/-1.
  //
  // Optimization: the 10 window spectra are computed once; each df
  // candidate only re-weights them by the inter-symbol phase rotation
  // e^{-j 2 pi df m}, which is the term that makes the coherent sum
  // collapse off the correct-CFO line (the intra-symbol scalloping of df
  // affects all candidates' peaks almost equally and is ignored here;
  // phases 2-3 use the exact objective).
  auto& spectra = ws.iq_scratch(kSlotBlock);
  spectra.resize(kQWindows * sps);
  {
    // Extract the 10 windows into the block, then dechirp+transform them
    // in place with two batched invocations (split on chirp direction).
    extract_preamble(trace, t0, ws);
    constexpr std::size_t kUp = lora::kPreambleUpchirps;
    const std::span<cfloat> up_rows(spectra.data(), kUp * sps);
    const std::span<cfloat> down_rows(spectra.data() + kUp * sps, 2 * sps);
    demod_.dechirp_fft_batch_into(up_rows, kUp, cfo_cycles, /*up=*/true, ws,
                                  up_rows);
    demod_.dechirp_fft_batch_into(down_rows, 2, cfo_cycles, /*up=*/false, ws,
                                  down_rows);
  }
  double best_q = -1.0, df_star = 0.0;
  {
    auto& up_sum = ws.iq_scratch(kSlotUpSum);
    auto& down_sum = ws.iq_scratch(kSlotDownSum);
    SignalVector& up_sv = ws.sv_scratch(0);
    SignalVector& down_sv = ws.sv_scratch(1);
    for (int i = 0; i <= 16; ++i) {
      const double df = -1.0 + static_cast<double>(i) / 16.0;
      up_sum.assign(sps, cfloat{0.0f, 0.0f});
      down_sum.assign(sps, cfloat{0.0f, 0.0f});
      // Same phase-continuity as eval_preamble: the full correction
      // (coarse + df) determines the inter-symbol rotation.
      for (int m = 0; m < static_cast<int>(lora::kPreambleUpchirps); ++m) {
        rotate_accumulate(spectra.data() + static_cast<std::size_t>(m) * sps,
                          sps, symbol_phase(cfo_cycles + df, m), up_sum.data());
      }
      for (int m = 10; m <= 11; ++m) {
        rotate_accumulate(spectra.data() + static_cast<std::size_t>(m - 2) * sps,
                          sps, symbol_phase(cfo_cycles + df, m), down_sum.data());
      }
      demod_.fold(up_sum, up_sv);
      demod_.fold(down_sum, down_sv);
      const double v =
          static_cast<double>(up_sv[lora::Demodulator::argmax(up_sv)]) +
          static_cast<double>(down_sv[lora::Demodulator::argmax(down_sv)]);
      if (v > best_q) {
        best_q = v;
        df_star = df;
      }
    }
  }

  // Phases 2/3 run through a per-refine evaluation cache. Each (dt, df)
  // point is the exact objective — computed once, remembered with its Q*
  // gate verdict — and for a fixed dt the 10 extracted windows are shared
  // across both CFO lines. The gated -> ungated fallback and the phase-3
  // points that land back on the phase-2 grid are then pure cache hits.
  struct CachedEval {
    double dt, df;
    QEval e;
  };
  std::vector<CachedEval> cache;
  cache.reserve(2 * 5 + static_cast<std::size_t>(p_.osf) + 1);
  double block_dt = 0.0;
  bool block_valid = false;
  auto eval_cached = [&](double dt, double df) -> QEval {
    for (const CachedEval& c : cache) {
      if (c.dt == dt && c.df == df) return c.e;
    }
    if (!block_valid || block_dt != dt) {
      extract_preamble(trace, t0 + dt, ws);
      block_dt = dt;
      block_valid = true;
    }
    const QEval e = eval_preamble(t0 + dt, cfo_cycles + df, ws);
    cache.push_back({dt, df, e});
    return e;
  };

  // Phase 2: 10 points of gated Q* on two CFO lines (df*, df*+1), dt from
  // -1 to 1 receiver samples in steps of 1/2. Evaluation is dt-major so
  // each dt's windows are extracted once for both lines; the best point
  // is then selected in the original line-major order, so exact ties
  // resolve identically to the uncached search.
  for (int i = -2; i <= 2; ++i) {
    for (int line = 0; line < 2; ++line) {
      eval_cached(static_cast<double>(i) / 2.0,
                  df_star + static_cast<double>(line));
    }
  }
  double best_q2 = 0.0, dt_hat = 0.0, df_hat = df_star;
  bool gated = false;
  for (int line = 0; line < 2; ++line) {
    const double df = df_star + static_cast<double>(line);
    for (int i = -2; i <= 2; ++i) {
      const double dt = static_cast<double>(i) / 2.0;
      const QEval e = eval_cached(dt, df);
      const double v = e.gate_pass ? e.value : 0.0;
      if (v > best_q2) {
        best_q2 = v;
        dt_hat = dt;
        df_hat = df;
        gated = true;
      }
    }
  }
  if (!gated) {
    // The Q* gate never passed (heavy collision on the preamble): fall
    // back to the ungated objective on the same grid — all cache hits.
    for (int line = 0; line < 2; ++line) {
      const double df = df_star + static_cast<double>(line);
      for (int i = -2; i <= 2; ++i) {
        const double dt = static_cast<double>(i) / 2.0;
        const QEval e = eval_cached(dt, df);
        if (e.value > best_q2) {
          best_q2 = e.value;
          dt_hat = dt;
          df_hat = df;
        }
      }
    }
  }

  // Phase 3: OSF+1 points along dt in [dt_hat - 1/2, dt_hat + 1/2] at the
  // chosen CFO line. The endpoints and midpoint revisit the phase-2 grid
  // and hit the cache.
  double best_q3 = best_q2, dt_fin = dt_hat;
  for (unsigned i = 0; i <= p_.osf; ++i) {
    const double dt =
        dt_hat - 0.5 + static_cast<double>(i) / static_cast<double>(p_.osf);
    const QEval e = eval_cached(dt, df_hat);
    const double v = gated ? (e.gate_pass ? e.value : 0.0) : e.value;
    if (v > best_q3) {
      best_q3 = v;
      dt_fin = dt;
    }
  }

  FracSyncResult r;
  r.dt = dt_fin;
  r.df = df_hat;
  r.q = best_q3;
  r.gated = gated;
  return r;
}

}  // namespace tnb::rx
