#include "core/detect.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_util.hpp"
#include "core/window.hpp"
#include "dsp/peak_finder.hpp"
#include "dsp/smoother.hpp"

namespace tnb::rx {
namespace {

/// Noise-floor proxy of a signal vector: its median, kept above a tiny
/// fraction of the maximum so noiseless traces (unit tests, saturated
/// captures) do not make every spectral leak look significant. The median
/// scratch is per-thread so the per-window call allocates nothing once warm.
double noise_floor(std::span<const float> x) {
  thread_local std::vector<double> tmp;
  tmp.assign(x.begin(), x.end());
  const double med = dsp::median_of(tmp);
  float mx = 0.0f;
  for (float v : x) mx = std::max(mx, v);
  return std::max({med, static_cast<double>(mx) * 1e-5, 1e-30});
}

/// Cyclic distance between two bins.
double cyclic_dist(double a, double b, double n) {
  return std::abs(wrap_half(a - b, n));
}

}  // namespace

Detector::Detector(lora::Params params, DetectorOptions opt)
    : p_(params), opt_(opt), demod_(params) {
  p_.validate();
  if (opt_.max_cfo_cycles <= 0.0) {
    opt_.max_cfo_cycles = p_.cfo_hz_to_cycles(4880.0) + 1.0;
  }
}

std::vector<Detector::Candidate> Detector::find_runs(
    std::span<const cfloat> trace, lora::Workspace& ws) const {
  const std::size_t sps = p_.sps();
  const double n = static_cast<double>(p_.n_bins());
  const std::size_t n_windows = trace.size() / sps;

  struct Run {
    std::size_t first = 0;
    std::size_t last = 0;
    double bin = 0.0;        // running (latest) interpolated location
    double power_sum = 0.0;
    double best_frac = 0.0;  // interpolated location of the strongest peak
    double best_power = 0.0;
  };
  std::vector<Run> active;
  std::vector<Candidate> candidates;

  auto finalize = [&](const Run& r) {
    if (r.last - r.first + 1 < opt_.min_run) return;
    Candidate c;
    c.first_window = r.first;
    c.run_len = r.last - r.first + 1;
    c.x1 = r.best_frac;
    c.mean_power = r.power_sum / static_cast<double>(c.run_len);
    candidates.push_back(c);
  };

  dsp::PeakFinderOptions pf;
  pf.circular = true;
  pf.max_peaks = opt_.max_peaks_per_window;

  // Scan windows in batches of 8: they are contiguous full-symbol slices
  // of the trace demodulated at CFO 0, so each chunk is one batched
  // dechirp+FFT invocation (slot 1; slot 0 belongs to the later
  // resolve_candidate phase). The run-tracking below is unchanged and
  // still walks windows strictly in order.
  constexpr std::size_t kScanBatch = 8;
  auto& spectra = ws.iq_scratch(1);
  spectra.resize(kScanBatch * sps);
  SignalVector& sv = ws.sv_scratch(0);
  for (std::size_t k0 = 0; k0 < n_windows; k0 += kScanBatch) {
    const std::size_t batch = std::min(kScanBatch, n_windows - k0);
    demod_.dechirp_fft_batch_into(
        trace.subspan(k0 * sps, batch * sps), batch, 0.0, /*up=*/true, ws,
        std::span<cfloat>(spectra.data(), batch * sps));
    for (std::size_t j = 0; j < batch; ++j) {
      const std::size_t k = k0 + j;
      demod_.fold(std::span<const cfloat>(spectra.data() + j * sps, sps), sv);
      const double floor = noise_floor(sv);
      // Selectivity relative to the noise floor: a weak preamble must stay
      // visible next to a strong collider (>20 dB SNR spread, paper Fig. 10).
      pf.sel = 4.0 * floor;
      pf.use_threshold = true;
      pf.threshold = opt_.peak_floor_ratio * floor;
      const auto peaks = dsp::find_peaks(sv, pf);

      for (const dsp::Peak& pk : peaks) {
        const double loc = pk.frac_index;
        bool matched = false;
        for (Run& r : active) {
          // Tolerate a single missed window (a collider can mask one peak).
          if (r.last + 2 < k) continue;
          if (r.last == k) continue;  // already extended this window
          if (cyclic_dist(r.bin, loc, n) <= 1.5) {
            r.last = k;
            r.bin = loc;
            r.power_sum += pk.value;
            if (pk.value > r.best_power) {
              r.best_power = pk.value;
              r.best_frac = loc;
            }
            matched = true;
            break;
          }
        }
        if (!matched) {
          Run r;
          r.first = r.last = k;
          r.bin = loc;
          r.power_sum = pk.value;
          r.best_frac = loc;
          r.best_power = pk.value;
          active.push_back(r);
        }
      }
      // Retire runs that have missed two consecutive windows.
      std::vector<Run> still;
      for (std::size_t ri = 0; ri < active.size(); ++ri) {
        if (active[ri].last + 2 > k) {
          still.push_back(active[ri]);
        } else {
          finalize(active[ri]);
        }
      }
      active = std::move(still);
    }
  }
  for (const Run& r : active) finalize(r);
  return candidates;
}

double Detector::relative_energy_at(std::span<const cfloat> trace, double start,
                                    double cfo_cycles, std::size_t bin, bool up,
                                    lora::Workspace& ws) const {
  const std::size_t sps = p_.sps();
  const std::size_t n = p_.n_bins();
  auto& window = ws.iq_scratch(0);
  window.resize(sps);
  extract_window(trace, start, window);
  SignalVector& sv = ws.sv_scratch(0);
  demod_.signal_vector_into(window, cfo_cycles, up, ws, sv);
  const double floor = noise_floor(sv);
  double e = 0.0;
  for (int d = -1; d <= 1; ++d) {
    const std::size_t b =
        static_cast<std::size_t>(floor_mod(static_cast<std::int64_t>(bin) + d,
                                           static_cast<std::int64_t>(n)));
    e = std::max(e, static_cast<double>(sv[b]));
  }
  return e / floor;
}

void Detector::resolve_candidate(std::span<const cfloat> trace,
                                 const Candidate& cand, lora::Workspace& ws,
                                 std::vector<DetectedPacket>& out) const {
  const std::size_t sps = p_.sps();
  const double n = static_cast<double>(p_.n_bins());
  const double osf = static_cast<double>(p_.osf);

  // --- Collect downchirp peak hypotheses (x2) after the run. With
  // collided preambles the strongest downchirp in this range can belong to
  // another packet, so every distinct peak location is tried and step-2
  // validation arbitrates. ---
  dsp::PeakFinderOptions pf;
  pf.circular = true;
  pf.max_peaks = 4;
  struct DownHyp {
    double x2 = 0.0;
    double height = 0.0;
  };
  std::vector<DownHyp> hyps;
  const std::size_t k_lo = cand.first_window + 7;
  const std::size_t k_hi = cand.first_window + 13;
  SignalVector& sv = ws.sv_scratch(0);
  for (std::size_t k = k_lo; k <= k_hi; ++k) {
    if ((k + 1) * sps > trace.size()) break;
    demod_.signal_vector_into(trace.subspan(k * sps, sps), 0.0, /*up=*/false,
                              ws, sv);
    const double floor = noise_floor(sv);
    pf.use_threshold = true;
    pf.threshold = opt_.peak_floor_ratio * floor;
    for (const dsp::Peak& pk : dsp::find_peaks(sv, pf)) {
      bool merged = false;
      for (DownHyp& h : hyps) {
        if (cyclic_dist(h.x2, pk.frac_index, n) <= 1.0) {
          if (pk.value > h.height) {
            h.height = pk.value;
            h.x2 = pk.frac_index;
          }
          merged = true;
          break;
        }
      }
      if (!merged) hyps.push_back({pk.frac_index, static_cast<double>(pk.value)});
    }
  }
  if (hyps.empty()) return;  // no downchirp anywhere: not a LoRa preamble
  std::sort(hyps.begin(), hyps.end(),
            [](const DownHyp& a, const DownHyp& b) { return a.height > b.height; });
  if (hyps.size() > 6) hyps.resize(6);

  int best_score = -1;
  double best_t0 = 0.0, best_eps = 0.0, best_strength = 0.0;
  for (const DownHyp& hyp : hyps) {
    // --- Step 3: coarse CFO and timing from x1, x2. ---
    // x1 = delta + eps, x2 = -delta + eps (mod N). (x1+x2)/2 gives eps up
    // to a N/2 ambiguity; the CFO bound picks the right branch.
    const double s = floor_mod((cand.x1 + hyp.x2) / 2.0, n / 2.0);
    double eps = wrap_half(s, n / 2.0);
    if (std::abs(eps) > opt_.max_cfo_cycles) {
      const double alt = eps > 0 ? eps - n / 2.0 : eps + n / 2.0;
      if (std::abs(alt) > opt_.max_cfo_cycles) continue;
      eps = alt;
    }
    const double delta = floor_mod(cand.x1 - eps, n);  // chirp samples

    // --- Step 2: validate candidate start times at j*T offsets. ---
    const double w0 = static_cast<double>(cand.first_window * sps);
    const double t0_prelim = w0 - delta * osf;
    for (int j = -2; j <= 2; ++j) {
      const double t0 =
          t0_prelim + static_cast<double>(j) * static_cast<double>(sps);
      if (t0 < -0.5) continue;
      int score = 0;
      double strength = 0.0;
      auto check = [&](double sym_idx, std::size_t bin, bool up) {
        const double start = t0 + sym_idx * static_cast<double>(sps);
        if (start + static_cast<double>(sps) >
            static_cast<double>(trace.size())) {
          return;
        }
        const double rel = relative_energy_at(trace, start, eps, bin, up, ws);
        if (rel >= opt_.peak_floor_ratio) {
          ++score;
          strength += rel;
        }
      };
      for (int m = 0; m < 8; ++m) check(m, 0, true);
      check(8.0, lora::kSyncShift1, true);
      check(9.0, lora::kSyncShift2, true);
      check(10.0, 0, false);
      check(11.0, 0, false);
      if (score > best_score ||
          (score == best_score && strength > best_strength)) {
        best_score = score;
        best_t0 = t0;
        best_eps = eps;
        best_strength = strength;
      }
      if (best_score == 12) break;  // perfect: no point shifting further
    }
    if (best_score == 12) break;
  }
  if (best_score < opt_.min_validation_score) return;

  DetectedPacket pkt;
  pkt.t0 = best_t0;
  pkt.cfo_cycles = best_eps;
  pkt.strength = best_strength;
  pkt.validation_score = best_score;
  out.push_back(pkt);
}

std::vector<DetectedPacket> Detector::detect(std::span<const cfloat> trace) const {
  thread_local lora::Workspace tls_ws;
  return detect(trace, tls_ws);
}

std::vector<DetectedPacket> Detector::detect(std::span<const cfloat> trace,
                                             lora::Workspace& ws) const {
  ws.reserve(p_);
  std::vector<DetectedPacket> out;
  const std::vector<Candidate> candidates = find_runs(trace, ws);
  for (const Candidate& cand : candidates) {
    resolve_candidate(trace, cand, ws, out);
  }
  std::sort(out.begin(), out.end(),
            [](const DetectedPacket& a, const DetectedPacket& b) {
              return a.t0 < b.t0;
            });
  // Deduplicate detections of the same packet: runs can split on a fade,
  // and the timing/CFO ambiguity (shifting both t0/OSF and the CFO by the
  // same amount leaves the upchirp peaks invariant) produces ghosts along
  // the dt/OSF == dcfo line.
  std::vector<DetectedPacket> dedup;
  const double t_tol = 1.25 * static_cast<double>(p_.sps());
  const double nd = static_cast<double>(p_.n_bins());
  for (const DetectedPacket& pkt : out) {
    bool merged = false;
    for (DetectedPacket& kept : dedup) {
      const double dt_bins = (pkt.t0 - kept.t0) / static_cast<double>(p_.osf);
      const double dcfo = pkt.cfo_cycles - kept.cfo_cycles;
      // Two detections whose (timing, CFO) pairs sit on the same upchirp
      // ambiguity line (wrap(dt/OSF + dcfo) ~ 0) describe the same signal.
      if (std::abs(kept.t0 - pkt.t0) < t_tol &&
          std::abs(wrap_half(dt_bins + dcfo, nd)) < 2.0) {
        if (pkt.validation_score > kept.validation_score ||
            (pkt.validation_score == kept.validation_score &&
             pkt.strength > kept.strength)) {
          kept = pkt;
        }
        merged = true;
        break;
      }
    }
    if (!merged) dedup.push_back(pkt);
  }
  return dedup;
}

}  // namespace tnb::rx
