#include "core/thrive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_util.hpp"
#include "core/sibling.hpp"

namespace tnb::rx {

double map_bin(double b, double alpha_from, double alpha_to, std::size_t n) {
  return floor_mod(b + (alpha_to - alpha_from), static_cast<double>(n));
}

std::vector<SiblingWindow> sibling_windows(const AssignInput& in,
                                           std::size_t sym_idx) {
  const ActiveSymbol& me = in.symbols[sym_idx];
  std::vector<SiblingWindow> out;
  out.reserve(2 * in.symbols.size());
  for (std::size_t k = 0; k < in.symbols.size(); ++k) {
    if (k == sym_idx) continue;
    const ActiveSymbol& other = in.symbols[k];
    const PacketContext& ctx = in.contexts[static_cast<std::size_t>(other.packet)];

    auto push = [&](int d) {
      if (d < 0) return;
      if (ctx.n_data_symbols >= 0 && d >= ctx.n_data_symbols) return;
      out.push_back({other.packet, d, ctx.data_symbol_start(d)});
    };
    push(other.data_idx);
    // The neighbour covering the part of my window the aligned symbol
    // misses: the next symbol if the other boundary precedes mine, the
    // previous one otherwise.
    if (other.window_start <= me.window_start) {
      push(other.data_idx + 1);
    } else {
      push(other.data_idx - 1);
    }
  }
  return out;
}

double sibling_height(const AssignInput& in, const SiblingWindow& w,
                      double expected_bin, double tol) {
  const PacketContext& ctx = in.contexts[static_cast<std::size_t>(w.packet)];
  const SymbolView& view = in.sig->data_symbol(w.packet, ctx, w.data_idx);
  const std::size_t n = view.sv.size();
  double best = -1.0;
  for (const dsp::Peak& pk : view.peaks) {
    const double d = std::abs(
        wrap_half(pk.frac_index - expected_bin, static_cast<double>(n)));
    if (d <= tol && pk.value > best) best = pk.value;
  }
  if (best >= 0.0) return best;
  const std::size_t bin = static_cast<std::size_t>(
      floor_mod(static_cast<std::int64_t>(std::lround(expected_bin)),
                static_cast<std::int64_t>(n)));
  return static_cast<double>(view.sv[bin]);
}

Thrive::Thrive(lora::Params p, ThriveOptions opt) : p_(p), opt_(opt) {
  p_.validate();
}

std::vector<Assignment> Thrive::assign(const AssignInput& in) {
  const std::size_t m = in.symbols.size();
  std::vector<Assignment> result(m);
  if (m == 0) return result;
  ++stats_.calls;
  stats_.symbols += m;
  const std::size_t n = p_.n_bins();
  const double nd = static_cast<double>(n);

  struct Candidate {
    double bin = 0.0;     // fractional peak location
    double height = 0.0;
    double cost = 0.0;
    bool alive = true;
  };
  struct SymbolState {
    const ActiveSymbol* sym = nullptr;
    double alpha = 0.0;
    std::vector<Candidate> cands;
    bool done = false;
  };
  std::vector<SymbolState> state(m);

  const std::size_t max_peaks = 2 * m;

  for (std::size_t i = 0; i < m; ++i) {
    const ActiveSymbol& sym = in.symbols[i];
    const PacketContext& ctx = in.contexts[static_cast<std::size_t>(sym.packet)];
    SymbolState& st = state[i];
    st.sym = &sym;
    st.alpha = ctx.alpha_at(sym.window_start);
    result[i].packet = sym.packet;
    result[i].data_idx = sym.data_idx;

    const SymbolView& view = in.sig->data_symbol(sym.packet, ctx, sym.data_idx);

    // History estimate for this packet (first pass: extrapolated from what
    // has been seen so far; second pass: fitted over the whole packet).
    bool have_hist = false;
    PeakHistory::Estimate est;
    if (opt_.use_history &&
        static_cast<std::size_t>(sym.packet) < in.history.size() &&
        !in.history[static_cast<std::size_t>(sym.packet)].empty()) {
      est = in.history[static_cast<std::size_t>(sym.packet)].estimate_for(
          sym.data_idx, in.second_pass);
      have_hist = true;
    }

    const auto& masks = in.masked_bins[i];
    for (const dsp::Peak& pk : view.peaks) {
      if (st.cands.size() >= max_peaks) break;
      bool masked = false;
      for (double mb : masks) {
        if (std::abs(wrap_half(pk.frac_index - mb, nd)) <= opt_.sibling_tol) {
          masked = true;
          break;
        }
      }
      if (masked) continue;

      Candidate c;
      c.bin = pk.frac_index;
      c.height = pk.value;

      // Sibling cost: the same tone viewed through every other packet's
      // alignment; the owner sees the tallest version.
      double h_star = c.height;
      for (const SiblingWindow& w : sibling_windows(in, i)) {
        const PacketContext& wctx =
            in.contexts[static_cast<std::size_t>(w.packet)];
        const double expected =
            map_bin(c.bin, st.alpha, wctx.alpha_at(w.window_start), n);
        h_star = std::max(
            h_star, sibling_height(in, w, expected, opt_.sibling_tol));
      }
      const double ratio = c.height / h_star;
      c.cost = (1.0 - ratio) * (1.0 - ratio);
      ++stats_.cost_evaluations;

      // History cost (Eq. 2).
      if (have_hist) {
        const double u = est.upper();
        const double l = est.lower();
        double f = 0.0;
        if (c.height > u && c.height > 0.0) {
          const double r = 1.0 - u / c.height;
          f = opt_.omega * r * r;
        } else if (c.height < l && l > 0.0) {
          const double r = 1.0 - c.height / l;
          f = opt_.omega * r * r;
        }
        c.cost += f;
      }
      st.cands.push_back(c);
    }
  }

  // Iterative assignment (paper 5.3.4).
  for (std::size_t iter = 0; iter < m; ++iter) {
    // Global minimum cost among alive candidates of unassigned symbols.
    double min_cost = std::numeric_limits<double>::infinity();
    for (const SymbolState& st : state) {
      if (st.done) continue;
      for (const Candidate& c : st.cands) {
        if (c.alive) min_cost = std::min(min_cost, c.cost);
      }
    }
    if (!std::isfinite(min_cost)) break;  // no assignable peaks remain
    ++stats_.iterations;

    // Select the symbol: unique holder of the min, else fewest min-cost
    // peaks, else lowest index.
    constexpr double kTieTol = 1e-12;
    std::size_t chosen = m;
    std::size_t fewest = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < m; ++i) {
      if (state[i].done) continue;
      std::size_t count = 0;
      for (const Candidate& c : state[i].cands) {
        if (c.alive && c.cost <= min_cost + kTieTol) ++count;
      }
      if (count > 0 && count < fewest) {
        fewest = count;
        chosen = i;
      }
    }
    if (chosen == m) break;

    SymbolState& st = state[chosen];
    Candidate* best = nullptr;
    for (Candidate& c : st.cands) {
      if (c.alive && c.cost <= min_cost + kTieTol) {
        best = &c;
        break;
      }
    }
    st.done = true;
    result[chosen].bin = static_cast<int>(
        floor_mod(static_cast<std::int64_t>(std::lround(best->bin)),
                  static_cast<std::int64_t>(n)));
    result[chosen].height = best->height;

    // Mask the assigned peak's siblings in the remaining symbols.
    for (std::size_t k = 0; k < m; ++k) {
      if (state[k].done) continue;
      const double expected = map_bin(best->bin, st.alpha, state[k].alpha, n);
      for (Candidate& c : state[k].cands) {
        if (c.alive &&
            std::abs(wrap_half(c.bin - expected, nd)) <= opt_.sibling_tol) {
          c.alive = false;
        }
      }
    }
  }

  // Symbols whose candidate lists drained: fall back to the tallest
  // non-masked bin so every symbol still demodulates to something.
  for (std::size_t i = 0; i < m; ++i) {
    if (result[i].bin >= 0) continue;
    ++stats_.fallbacks;
    const ActiveSymbol& sym = in.symbols[i];
    const PacketContext& ctx = in.contexts[static_cast<std::size_t>(sym.packet)];
    const SymbolView& view = in.sig->data_symbol(sym.packet, ctx, sym.data_idx);
    double best_v = -1.0;
    std::size_t best_b = 0;
    for (std::size_t b = 0; b < view.sv.size(); ++b) {
      bool masked = false;
      for (double mb : in.masked_bins[i]) {
        if (std::abs(wrap_half(static_cast<double>(b) - mb, nd)) <=
            opt_.sibling_tol) {
          masked = true;
          break;
        }
      }
      if (!masked && view.sv[b] > best_v) {
        best_v = view.sv[b];
        best_b = b;
      }
    }
    result[i].bin = static_cast<int>(best_b);
    result[i].height = best_v;
  }
  return result;
}

}  // namespace tnb::rx
