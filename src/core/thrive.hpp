// Thrive: peak assignment by matching cost (paper Section 5).
//
// For every candidate peak of every symbol at a checking point, Thrive
// computes a matching cost = sibling cost + history cost:
//   * sibling cost  w = (1 - eta/H*)^2, where H* is the tallest height the
//     same physical tone reaches across all packets' aligned signal vectors
//     — the peak "thrives" (is tallest) under its true owner's alignment
//     and CFO correction;
//   * history cost  F (Eq. 2, weight omega) penalizes heights outside the
//     [L, U] band predicted by the node's peak-height history.
// Assignment is iterative: pick the globally cheapest peak (ties: the
// symbol with the fewest minimum-cost peaks), assign it, mask its siblings
// from the remaining symbols, repeat.
#pragma once

#include "core/assign.hpp"
#include "lora/params.hpp"

namespace tnb::rx {

struct ThriveOptions {
  double omega = 0.1;        ///< history-cost weight (paper value)
  bool use_history = true;   ///< false = the paper's "Sibling" configuration
  double sibling_tol = 1.5;  ///< bins: a found peak within this cyclic
                             ///< distance of the expected location is the
                             ///< sibling; otherwise the raw vector value at
                             ///< the expected bin is used
};

/// Work counters, matching the complexity discussion of paper 5.3.5: at a
/// checking point with M symbols, at most 2M^2 peak costs are evaluated and
/// the assignment loop runs at most M iterations.
struct ThriveStats {
  std::size_t calls = 0;            ///< checking points processed
  std::size_t symbols = 0;          ///< total symbols assigned
  std::size_t cost_evaluations = 0; ///< peak matching costs computed
  std::size_t iterations = 0;       ///< assignment-loop iterations
  std::size_t fallbacks = 0;        ///< symbols resolved by argmax fallback
};

class Thrive final : public PeakAssigner {
 public:
  explicit Thrive(lora::Params p, ThriveOptions opt = {});

  std::vector<Assignment> assign(const AssignInput& in) override;

  const ThriveStats& stats() const { return stats_; }

 private:
  lora::Params p_;
  ThriveOptions opt_;
  ThriveStats stats_;
};

}  // namespace tnb::rx
