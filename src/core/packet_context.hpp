// Per-packet geometry and the signal calculation component (paper Fig. 3).
//
// A PacketContext pins down one detected packet's timeline on the receiver
// grid: where each preamble slot and each data symbol window starts, given
// the packet's synchronized t0 and CFO. SigCalc computes and caches the
// aligned, CFO-corrected signal vectors of those windows — summed over
// antennas when more than one is supplied (paper Section 3).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "core/detect.hpp"
#include "dsp/peak_finder.hpp"
#include "lora/demodulator.hpp"
#include "lora/params.hpp"
#include "obs/metrics.hpp"

namespace tnb::rx {

class PacketContext {
 public:
  PacketContext(const lora::Params& p, const DetectedPacket& det);

  double t0() const { return t0_; }
  double cfo_cycles() const { return cfo_; }

  /// Start (receiver samples) of the data section: t0 + 12.25 T.
  double data_start() const { return data_start_; }

  /// Window start of data symbol d.
  double data_symbol_start(int d) const {
    return data_start_ + static_cast<double>(d) * sps_;
  }

  /// Data symbol whose window contains trace position `pos`, or nullopt if
  /// `pos` falls in the preamble / outside the packet. `n_data_symbols` < 0
  /// means the payload length is still unknown (header not yet decoded):
  /// any non-negative index is accepted.
  std::optional<int> data_symbol_at(double pos, int n_data_symbols) const;

  /// True if `pos` lies within the packet's preamble section.
  bool in_preamble(double pos) const {
    return pos >= t0_ && pos < data_start_;
  }

  /// Boundary offset used by Thrive's alpha: the packet's symbol boundary
  /// position in chirp samples minus its CFO in cycles. Two windows W_i and
  /// W_k observe the same physical tone at bins differing by
  /// (W_i - W_k)/OSF - (cfo_i - cfo_k); see DESIGN.md.
  double alpha_at(double window_start) const {
    return window_start / osf_ - cfo_;
  }

  /// Number of data symbols, once known (-1 before header decode).
  int n_data_symbols = -1;

 private:
  double t0_;
  double cfo_;
  double sps_;
  double osf_;
  double data_start_;
};

/// Cached symbol view: power signal vector plus its candidate peaks.
struct SymbolView {
  SignalVector sv;
  std::vector<dsp::Peak> peaks;  ///< circular peak-finder output, by height
  double median = 0.0;           ///< noise-floor proxy of sv
};

class SigCalc {
 public:
  /// `antennas` must all have the same length; signal vectors are summed
  /// across them.
  SigCalc(const lora::Params& p,
          std::vector<std::span<const cfloat>> antennas);

  const lora::Params& params() const { return p_; }
  std::span<const cfloat> antenna(std::size_t a) const { return antennas_[a]; }
  std::size_t n_antennas() const { return antennas_.size(); }
  std::size_t trace_len() const { return antennas_[0].size(); }

  /// Signal vector + peaks of data symbol `d` of packet `pkt` (cached).
  const SymbolView& data_symbol(int pkt_index, const PacketContext& ctx, int d);

  /// Uncached signal vector of an arbitrary window aligned to `cfo_cycles`.
  SignalVector vector_at(double window_start, double cfo_cycles, bool up) const;

  /// Heights of the 8 preamble upchirp peaks (folded power at bin 0),
  /// bootstrapping the packet's peak history.
  std::vector<double> preamble_heights(const PacketContext& ctx) const;

  /// Drops cached symbols of packet `pkt_index` (end of packet / memory).
  void evict(int pkt_index);

  /// Times every cache-miss signal calculation (window extraction, FFT,
  /// peak finding) into `h` — the pipeline's "sigcalc" stage. A null
  /// handle (the default) records nothing.
  void set_stage_histogram(obs::HistogramRef h) { sigcalc_hist_ = h; }

  /// Maximum peaks the cached peak finder keeps per symbol.
  static constexpr std::size_t kMaxPeaks = 32;

 private:
  /// Zero-allocation core of `vector_at`: writes the summed signal vector
  /// into `out` using the member workspace for all scratch.
  void vector_at_into(double window_start, double cfo_cycles, bool up,
                      SignalVector& out) const;

  lora::Params p_;
  std::vector<std::span<const cfloat>> antennas_;
  lora::Demodulator demod_;
  std::map<std::pair<int, int>, SymbolView> cache_;
  obs::HistogramRef sigcalc_hist_;
  /// SigCalc is used from one thread at a time (like the cache); the
  /// workspace and median scratch make repeat symbol computations
  /// allocation-free. Mutable: scratch, not state.
  mutable lora::Workspace ws_;
  mutable std::vector<double> median_scratch_;
};

}  // namespace tnb::rx
