#include "core/window.hpp"

#include <cmath>

namespace tnb::rx {

void extract_window(std::span<const cfloat> trace, double start,
                    std::span<cfloat> out) {
  const double floor_start = std::floor(start);
  const std::ptrdiff_t i0 = static_cast<std::ptrdiff_t>(floor_start);
  const float frac = static_cast<float>(start - floor_start);
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(trace.size());

  if (frac == 0.0f) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      const std::ptrdiff_t idx = i0 + static_cast<std::ptrdiff_t>(i);
      out[i] = (idx >= 0 && idx < n) ? trace[static_cast<std::size_t>(idx)]
                                     : cfloat{0.0f, 0.0f};
    }
    return;
  }
  const float w0 = 1.0f - frac;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::ptrdiff_t idx = i0 + static_cast<std::ptrdiff_t>(i);
    const cfloat a = (idx >= 0 && idx < n) ? trace[static_cast<std::size_t>(idx)]
                                           : cfloat{0.0f, 0.0f};
    const cfloat b = (idx + 1 >= 0 && idx + 1 < n)
                         ? trace[static_cast<std::size_t>(idx + 1)]
                         : cfloat{0.0f, 0.0f};
    out[i] = w0 * a + frac * b;
  }
}

}  // namespace tnb::rx
