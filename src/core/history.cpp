#include "core/history.hpp"

#include <algorithm>
#include <limits>

#include "dsp/smoother.hpp"

namespace tnb::rx {

void PeakHistory::bootstrap(std::span<const double> preamble_heights) {
  for (double h : preamble_heights) {
    heights_.push_back(h);
    positions_.push_back(-1);
  }
}

void PeakHistory::record(int data_idx, double height) {
  heights_.push_back(height);
  positions_.push_back(data_idx);
}

PeakHistory::Estimate PeakHistory::estimate_for(int data_idx,
                                                bool second_pass) const {
  Estimate e;
  if (heights_.empty()) return e;

  if (!second_pass) {
    // Fit over everything observed so far; extrapolate from the last point.
    const std::vector<double> fit = dsp::smooth_fit(heights_);
    e.a = fit.back();
    e.d = dsp::median_abs_dev(heights_, fit);
    return e;
  }

  // Second pass: fit over the full series and read the value at the sample
  // recorded for this symbol (or the nearest recorded neighbour).
  const std::vector<double> fit = dsp::smooth_fit(heights_);
  std::size_t best = heights_.size() - 1;
  int best_gap = std::numeric_limits<int>::max();
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    if (positions_[i] < 0) continue;
    const int gap = std::abs(positions_[i] - data_idx);
    if (gap < best_gap) {
      best_gap = gap;
      best = i;
    }
  }
  e.a = fit[best];
  e.d = dsp::median_abs_dev(heights_, fit);
  return e;
}

}  // namespace tnb::rx
