// Monte-Carlo measurement of BEC's block-decoding capability (paper
// Table 1 and the Fig. 20 simulation curve).
//
// Extracted from the bench drivers so the golden-value regression test and
// the benches share one implementation: for a fixed (seed, trial count) the
// RNG consumption below is part of the contract — reordering draws shifts
// every published number.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace tnb::rx {

/// Outcome counts of one Monte-Carlo cell (one Table 1 row).
struct BecMcResult {
  int trials = 0;
  int ok_default = 0;  ///< every row decoded by nearest-codeword alone
  int ok_bec = 0;      ///< truth among BEC's candidate blocks

  double default_rate() const {
    return trials > 0 ? static_cast<double>(ok_default) / trials : 0.0;
  }
  double bec_rate() const {
    return trials > 0 ? static_cast<double>(ok_bec) / trials : 0.0;
  }
};

/// Random SF x (4+CR) blocks with exactly `n_err_cols` corrupted columns
/// (each corrupted column flips at least one bit); counts how often the
/// per-row default decoder recovers the block and how often BEC does.
/// `rng` is consumed sequentially — thread one generator through a sweep to
/// reproduce the published Table 1 / Fig. 20 sequences.
BecMcResult bec_capability_mc(unsigned sf, unsigned cr, unsigned n_err_cols,
                              int trials, Rng& rng);

}  // namespace tnb::rx
