#include "core/bec_analysis.hpp"

#include <cmath>

namespace tnb::rx {
namespace {

double binom(unsigned n, unsigned k) {
  double r = 1.0;
  for (unsigned i = 1; i <= k; ++i) {
    r *= static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return r;
}

}  // namespace

std::vector<double> bec_psi(unsigned sf, unsigned max_x) {
  std::vector<double> psi(max_x + 1, 0.0);
  for (unsigned x = 1; x <= max_x; ++x) {
    double v = std::pow(static_cast<double>(x) / 8.0, static_cast<double>(sf));
    for (unsigned y = 1; y < x; ++y) {
      v -= binom(x, y) * psi[y];
    }
    psi[x] = v;
  }
  return psi;
}

double bec_cr4_3col_error_probability(unsigned sf) {
  const std::vector<double> psi = bec_psi(sf, 4);
  return psi[1] + 7.0 * psi[2] + 9.0 * psi[3] + 3.0 * psi[4] +
         std::pow(2.0, -static_cast<double>(sf));
}

double bec_cr3_2col_error_probability(unsigned sf) {
  return std::pow(2.0, -static_cast<double>(sf));
}

}  // namespace tnb::rx
