#include "core/frame_codec.hpp"

#include "lora/frame.hpp"

namespace tnb::rx {

std::unique_ptr<const FrameCodec> make_frame_codec(const CodecConfig& cfg,
                                                   const CodecFactory& factory) {
  if (factory) return factory(cfg);
  return std::make_unique<PaperCodec>(cfg);
}

PaperCodec::PaperCodec(const CodecConfig& cfg) : cfg_(cfg) {
  cfg_.params.validate();
}

std::size_t PaperCodec::header_symbols() const {
  return cfg_.implicit_header.has_value() ? 0 : lora::kHeaderSymbols;
}

std::optional<lora::Header> PaperCodec::implicit_header() const {
  if (!cfg_.implicit_header.has_value()) return std::nullopt;
  lora::Header h;
  h.payload_len = cfg_.implicit_header->payload_len;
  h.cr = cfg_.implicit_header->cr;
  h.has_crc = true;
  return h;
}

std::optional<lora::Header> PaperCodec::decode_header(
    std::span<const std::uint32_t> bins, BecStats* stats) const {
  std::vector<std::uint32_t> hs(bins.size());
  for (std::size_t d = 0; d < bins.size(); ++d) {
    hs[d] = cfg_.params.value_for_shift(bins[d]);
  }
  if (cfg_.use_bec) return decode_header_bec(cfg_.params, hs, stats);
  return lora::decode_header_default(cfg_.params, hs);
}

std::size_t PaperCodec::payload_symbols(const lora::Header& h) const {
  lora::Params pp = cfg_.params;
  pp.cr = h.cr;
  return lora::num_payload_symbols(pp, h.payload_len);
}

FrameDecodeResult PaperCodec::decode_frame(std::span<const std::uint32_t> bins,
                                           const lora::Header& h, Rng& rng,
                                           BecStats* stats) const {
  FrameDecodeResult out;
  const std::size_t hsyms = header_symbols();
  std::vector<std::uint32_t> ps;
  ps.reserve(bins.size() - hsyms);
  for (std::size_t d = hsyms; d < bins.size(); ++d) {
    ps.push_back(cfg_.params.value_for_shift(bins[d]));
  }
  lora::Params pp = cfg_.params;
  pp.cr = h.cr;
  if (cfg_.use_bec) {
    BecPacketResult r = decode_payload_bec(pp, ps, h.payload_len, rng, stats);
    out.ok = r.ok;
    out.payload = std::move(r.payload);
    out.rescued_codewords = r.rescued_codewords;
  } else {
    auto r = lora::decode_payload_default(pp, ps, h.payload_len);
    out.ok = r.has_value();
    if (out.ok) out.payload = std::move(*r);
  }
  if (out.ok) {
    // Strip the CRC16: the application payload is what gets reported.
    out.payload.resize(out.payload.size() >= 2 ? out.payload.size() - 2 : 0);
  }
  return out;
}

std::optional<std::size_t> PaperCodec::peek_frame_symbols(
    std::span<const std::uint32_t> header_bins) const {
  std::vector<std::uint32_t> hs(header_bins.size());
  for (std::size_t d = 0; d < header_bins.size(); ++d) {
    hs[d] = cfg_.params.value_for_shift(header_bins[d]);
  }
  const std::optional<lora::Header> hdr =
      lora::decode_header_default(cfg_.params, hs);
  if (!hdr.has_value() || hdr->cr < 1 || hdr->cr > 4) return std::nullopt;
  lora::Params pp = cfg_.params;
  pp.cr = hdr->cr;
  return lora::kHeaderSymbols + lora::num_payload_symbols(pp, hdr->payload_len);
}

std::vector<std::uint32_t> PaperCodec::encode_shifts(
    std::span<const std::uint8_t> app_bytes) const {
  lora::Params pp = cfg_.params;
  std::vector<std::uint32_t> values;
  if (cfg_.implicit_header.has_value()) {
    pp.cr = cfg_.implicit_header->cr;
    values = lora::encode_payload_symbols(pp, lora::assemble_payload(app_bytes));
  } else {
    values = lora::make_packet_symbols(pp, app_bytes);
  }
  const std::uint32_t mask = static_cast<std::uint32_t>(pp.n_bins() - 1);
  std::vector<std::uint32_t> shifts(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    shifts[i] = pp.shift_for_value(values[i]) & mask;
  }
  return shifts;
}

std::size_t PaperCodec::frame_symbols(std::size_t app_bytes) const {
  lora::Params pp = cfg_.params;
  if (cfg_.implicit_header.has_value()) {
    pp.cr = cfg_.implicit_header->cr;
    return lora::num_payload_symbols(pp, app_bytes + 2);
  }
  return lora::num_packet_symbols(pp, app_bytes + 2);
}

}  // namespace tnb::rx
