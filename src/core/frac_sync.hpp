// Fractional timing / CFO estimation (paper Section 7, step 4).
//
// After coarse synchronization the residual timing error is below one
// receiver sample and the residual CFO below one bin. The estimator
// evaluates Q(dt, df) — the coherent peak energy of the preamble when the
// windows are shifted by dt receiver samples and the CFO correction is
// offset by df cycles — over a three-phase search of 17 + 10 + (OSF+1)
// points, exploiting that Q is high along the correct-CFO line (possibly
// off by +/-1 cycle) and that Q* (Q gated on the peaks being at location 1)
// rejects the off-by-one lines.
#pragma once

#include <span>

#include "common/types.hpp"
#include "lora/demodulator.hpp"
#include "lora/params.hpp"

namespace tnb::rx {

struct FracSyncResult {
  double dt = 0.0;      ///< timing refinement, receiver samples
  double df = 0.0;      ///< CFO refinement, cycles per symbol
  double q = 0.0;       ///< objective at the chosen point
  bool gated = true;    ///< false if the Q* gate never passed (fallback used)
};

class FracSync {
 public:
  explicit FracSync(lora::Params p);

  /// Refines (t0, cfo) of a coarsely-synchronized packet whose preamble
  /// starts at `t0` in `trace`. Add the returned dt/df to the coarse values.
  FracSyncResult refine(std::span<const cfloat> trace, double t0,
                        double cfo_cycles) const;

  /// The search objective (exposed for tests and the Fig. 8 bench).
  /// Returns the preamble peak energy; if `gate` is set, returns 0 unless
  /// both the upchirp-sum and downchirp-sum peaks are at bin 0.
  double q(std::span<const cfloat> trace, double t0, double cfo_cycles,
           double dt, double df, bool gate) const;

 private:
  lora::Params p_;
  lora::Demodulator demod_;
};

}  // namespace tnb::rx
