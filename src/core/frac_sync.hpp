// Fractional timing / CFO estimation (paper Section 7, step 4).
//
// After coarse synchronization the residual timing error is below one
// receiver sample and the residual CFO below one bin. The estimator
// evaluates Q(dt, df) — the coherent peak energy of the preamble when the
// windows are shifted by dt receiver samples and the CFO correction is
// offset by df cycles — over a three-phase search of 17 + 10 + (OSF+1)
// points, exploiting that Q is high along the correct-CFO line (possibly
// off by +/-1 cycle) and that Q* (Q gated on the peaks being at location 1)
// rejects the off-by-one lines.
//
// refine() runs the search through a per-refine evaluation cache: for a
// fixed dt the 10 preamble windows are extracted once and shared across
// both CFO lines, and each evaluated (dt, df) point stores both its
// ungated value and its Q* gate verdict — so the gated -> ungated fallback
// and the phase-3 points that revisit the phase-2 grid cost nothing. The
// cache is bit-exact: every point is still the exact objective (spectra
// are keyed by the full CFO including df, never approximated), and ties
// are resolved in the original search order, so refine() returns exactly
// what an uncached grid search over q() returns (pinned by
// tests/test_demod_workspace.cpp).
#pragma once

#include <span>

#include "common/types.hpp"
#include "lora/demodulator.hpp"
#include "lora/params.hpp"

namespace tnb::rx {

struct FracSyncResult {
  double dt = 0.0;      ///< timing refinement, receiver samples
  double df = 0.0;      ///< CFO refinement, cycles per symbol
  double q = 0.0;       ///< objective at the chosen point
  bool gated = true;    ///< false if the Q* gate never passed (fallback used)
};

class FracSync {
 public:
  explicit FracSync(lora::Params p);

  /// Refines (t0, cfo) of a coarsely-synchronized packet whose preamble
  /// starts at `t0` in `trace`. Add the returned dt/df to the coarse
  /// values. `ws` supplies all scratch (general slots 0-3 and SV slots
  /// 0-1 are clobbered); the overload without one uses a per-thread
  /// workspace.
  FracSyncResult refine(std::span<const cfloat> trace, double t0,
                        double cfo_cycles, lora::Workspace& ws) const;
  FracSyncResult refine(std::span<const cfloat> trace, double t0,
                        double cfo_cycles) const;

  /// The search objective (exposed for tests and the Fig. 8 bench).
  /// Returns the preamble peak energy; if `gate` is set, returns 0 unless
  /// both the upchirp-sum and downchirp-sum peaks are at bin 0.
  double q(std::span<const cfloat> trace, double t0, double cfo_cycles,
           double dt, double df, bool gate) const;

 private:
  /// One exact objective evaluation: the ungated value plus the Q* gate
  /// verdict, so a single computation serves both gatings.
  struct QEval {
    double value = 0.0;
    bool gate_pass = false;
  };

  /// Extracts the 10 preamble windows (8 up, 2 down) starting at `start`
  /// (= t0 + dt) into the workspace window block.
  void extract_preamble(std::span<const cfloat> trace, double start,
                        lora::Workspace& ws) const;

  /// Evaluates the objective from the extracted window block at the full
  /// CFO correction `cfo` (= coarse + df); `theta` (= t0 + dt) selects the
  /// interpolation-gain normalization.
  QEval eval_preamble(double theta, double cfo, lora::Workspace& ws) const;

  lora::Params p_;
  lora::Demodulator demod_;
};

}  // namespace tnb::rx
