// The TnB receiver (paper Fig. 3 and Section 4).
//
// Pipeline: detect packets (+ fractional sync) -> walk checking points
// every 2^SF chirp samples, collecting the data symbols that intersect each
// -> hand them to the peak assigner (Thrive by default; AlignTrack* and the
// argmax baseline are drop-in) with known peaks masked -> decode the PHY
// header once its 8 symbols are assigned, then the payload once complete,
// with BEC or the default Hamming decoder. Packets that fail get a second
// pass in which correctly-decoded packets' peaks are masked and the peak
// history is fitted over the whole packet.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/assign.hpp"
#include "core/bec.hpp"
#include "core/detect.hpp"
#include "core/frac_sync.hpp"
#include "core/frame_codec.hpp"
#include "core/frame_sync.hpp"
#include "core/thrive.hpp"
#include "obs/stage_timer.hpp"
#include "sim/metrics.hpp"

namespace tnb::rx {

struct ReceiverOptions {
  bool use_bec = true;      ///< false = default Hamming decoder ("Thrive")
  bool use_history = true;  ///< false = sibling cost only ("Sibling")
  bool two_pass = true;
  bool use_frac_sync = true;
  DetectorOptions detector;
  ThriveOptions thrive;
  /// Engaged when set: no header symbols are expected or decoded.
  std::optional<ImplicitHeader> implicit_header;
  /// Frame-coding convention applied to assigned peak bins. Null selects
  /// the paper format (PaperCodec, byte-identical to the pre-seam
  /// receiver); wire::wire_codec_factory() selects the gr-lora-sdr wire
  /// format. The factory receives this receiver's {params, use_bec,
  /// implicit_header} as its CodecConfig.
  CodecFactory codec_factory;
  /// Stop tracking a packet whose header has not resolved after this many
  /// data symbols (robustness against false detections).
  int max_tracked_symbols = 96;
  /// Observability registry for per-stage timing histograms and decode
  /// counters. nullptr falls back to obs::Registry::global() (resolved at
  /// Receiver construction); when that is also null, instrumentation is
  /// fully disabled and the decode output is bit-identical either way.
  obs::Registry* metrics = nullptr;
  /// Extra labels appended to every metric this receiver (and a
  /// StreamingReceiver wrapping it) registers — the fleet layer passes
  /// {channel, sf} so each lane gets its own metric series. Labels never
  /// affect decode arithmetic; the default (empty) keeps the label-free
  /// single-receiver exposition schema.
  obs::Labels metric_labels;
};

/// Decode counters. Every field accumulates: passing the same object to
/// several decode calls (or merging per-run objects with operator+=) yields
/// the totals, so a segmented/streaming decode reports the same stats as a
/// one-shot decode.
struct ReceiverStats {
  std::size_t detected = 0;
  std::size_t header_ok = 0;
  std::size_t crc_ok = 0;
  std::size_t decoded_first_pass = 0;
  std::size_t decoded_second_pass = 0;
  BecStats bec;
  /// Rescued-codeword count of each decoded packet (paper Fig. 16).
  std::vector<std::size_t> rescued_per_packet;

  /// Merges counters from another decode (parallel sweeps and the fleet's
  /// per-channel aggregation merge per-run stats into one report);
  /// rescued_per_packet is concatenated. Self-merge (`s += s`) doubles
  /// every counter — the concatenation is sized up front so inserting from
  /// our own vector never walks invalidated iterators.
  ReceiverStats& operator+=(const ReceiverStats& o) {
    detected += o.detected;
    header_ok += o.header_ok;
    crc_ok += o.crc_ok;
    decoded_first_pass += o.decoded_first_pass;
    decoded_second_pass += o.decoded_second_pass;
    bec += o.bec;
    const std::size_t n = o.rescued_per_packet.size();
    rescued_per_packet.reserve(rescued_per_packet.size() + n);
    for (std::size_t i = 0; i < n; ++i) {
      rescued_per_packet.push_back(o.rescued_per_packet[i]);
    }
    return *this;
  }

  /// One-line JSON, the shared report format of tnb_eval and tnb_streamd
  /// (schema documented in DESIGN.md "Streaming gateway").
  /// rescued_per_packet is summarized as its length and sum.
  std::string to_json() const;
};

class Receiver {
 public:
  explicit Receiver(lora::Params p, ReceiverOptions opt = {});

  /// Installs a peak-assignment strategy factory (called once per decode).
  /// Default: Thrive with the configured options.
  using AssignerFactory = std::function<std::unique_ptr<PeakAssigner>()>;
  void set_assigner_factory(AssignerFactory factory);

  /// Installs a frame-synchronization front end factory (called once per
  /// detect pass; the instance is shared across that pass's antennas). When
  /// set, detect() hands each antenna to the FrameSync instead of the
  /// built-in Detector + FracSync block — the front end owns its own
  /// refinement (use_frac_sync is ignored). Cross-antenna merging is
  /// unchanged. Default: none (built-in front end).
  using SyncFactory = std::function<std::unique_ptr<FrameSync>()>;
  void set_sync_factory(SyncFactory factory);

  /// Decodes a single-antenna trace.
  std::vector<sim::DecodedPacket> decode(std::span<const cfloat> trace,
                                         Rng& rng,
                                         ReceiverStats* stats = nullptr) const;

  /// Decodes a multi-antenna trace (signal vectors summed across antennas;
  /// detection runs on antenna 0).
  std::vector<sim::DecodedPacket> decode_multi(
      std::vector<std::span<const cfloat>> antennas, Rng& rng,
      ReceiverStats* stats = nullptr) const;

  /// Runs detection + fractional sync only. The result can be fed to
  /// decode_with_detections — e.g. to decode the same trace with several
  /// schemes without re-detecting (all schemes share TnB's detector, as in
  /// the paper's methodology).
  std::vector<DetectedPacket> detect(
      std::vector<std::span<const cfloat>> antennas) const;

  /// Decodes with externally supplied (already refined) detections.
  std::vector<sim::DecodedPacket> decode_with_detections(
      std::vector<std::span<const cfloat>> antennas,
      std::vector<DetectedPacket> detections, Rng& rng,
      ReceiverStats* stats = nullptr) const;

  const lora::Params& params() const { return p_; }
  const ReceiverOptions& options() const { return opt_; }
  /// The frame codec decoding this receiver's packets (never null).
  const FrameCodec& codec() const { return *codec_; }

 private:
  struct Instrumentation {
    obs::StageTimer stages;
    obs::CounterRef detected;
    obs::CounterRef header_ok;
    obs::CounterRef crc_ok;
    obs::CounterRef decoded_first_pass;
    obs::CounterRef decoded_second_pass;
  };

  lora::Params p_;
  ReceiverOptions opt_;
  /// Shared so Receiver stays copyable (lanes copy their template receiver).
  std::shared_ptr<const FrameCodec> codec_;
  AssignerFactory factory_;
  SyncFactory sync_factory_;  ///< empty = built-in Detector + FracSync
  Instrumentation obs_;       ///< null handles when metrics are disabled
};

}  // namespace tnb::rx
