// Peak-height history tracking for Thrive's history cost (paper 5.3.3).
//
// For each packet the receiver keeps the heights of the peaks it has seen
// (the 8 preamble upchirps bootstrap the series, then every assigned data
// symbol appends one sample). A moving-mean curve fit through the series
// gives the expected height A and the median absolute deviation D; the
// upper/lower estimates are U = A + 4D and L = max(0, A - 4D) (Fig. 6).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tnb::rx {

class PeakHistory {
 public:
  /// Seeds the series with the preamble peak heights.
  void bootstrap(std::span<const double> preamble_heights);

  /// Records the height assigned to data symbol `data_idx`. Symbols are
  /// recorded in increasing order as checking points advance; gaps (symbols
  /// that received no assignment) are simply absent from the series.
  void record(int data_idx, double height);

  struct Estimate {
    double a = 0.0;  ///< expected peak height
    double d = 0.0;  ///< deviation (median |data - fit|)
    double upper() const { return a + 4.0 * d; }
    double lower() const { return a - 4.0 * d > 0.0 ? a - 4.0 * d : 0.0; }
  };

  /// Estimate for data symbol `data_idx`. In the first pass the fit runs on
  /// the samples observed so far and A is the fitted value at the last
  /// observed symbol (S_i^{-1}); in the second pass the fit runs on the
  /// whole series and A is the fitted value at S_i itself.
  Estimate estimate_for(int data_idx, bool second_pass) const;

  bool empty() const { return heights_.empty(); }
  std::size_t size() const { return heights_.size(); }
  std::span<const double> heights() const { return heights_; }

 private:
  std::vector<double> heights_;   // series values in arrival order
  std::vector<int> positions_;    // data_idx per sample (-1 for preamble)
};

}  // namespace tnb::rx
