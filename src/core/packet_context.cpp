#include "core/packet_context.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/window.hpp"
#include "dsp/smoother.hpp"
#include "obs/stage_timer.hpp"

namespace tnb::rx {

PacketContext::PacketContext(const lora::Params& p, const DetectedPacket& det)
    : t0_(det.t0),
      cfo_(det.cfo_cycles),
      sps_(static_cast<double>(p.sps())),
      osf_(static_cast<double>(p.osf)) {
  const double preamble_symbols =
      static_cast<double>(lora::kPreambleUpchirps + lora::kSyncSymbols) +
      lora::kPreambleDownchirps;
  data_start_ = t0_ + preamble_symbols * sps_;
}

std::optional<int> PacketContext::data_symbol_at(double pos,
                                                 int n_data) const {
  if (pos < data_start_) return std::nullopt;
  const int d = static_cast<int>(std::floor((pos - data_start_) / sps_));
  if (n_data >= 0 && d >= n_data) return std::nullopt;
  return d;
}

SigCalc::SigCalc(const lora::Params& p,
                 std::vector<std::span<const cfloat>> antennas)
    : p_(p), antennas_(std::move(antennas)), demod_(p) {
  if (antennas_.empty()) {
    throw std::invalid_argument("SigCalc: need at least one antenna");
  }
  for (const auto& a : antennas_) {
    if (a.size() != antennas_[0].size()) {
      throw std::invalid_argument("SigCalc: antenna length mismatch");
    }
  }
}

void SigCalc::vector_at_into(double window_start, double cfo_cycles, bool up,
                             SignalVector& out) const {
  const std::size_t sps = p_.sps();
  ws_.reserve(p_);
  auto& window = ws_.iq_scratch(0);
  window.resize(sps);
  for (std::size_t a = 0; a < antennas_.size(); ++a) {
    extract_window(antennas_[a], window_start, window);
    if (a == 0) {
      demod_.signal_vector_into(window, cfo_cycles, up, ws_, out);
    } else {
      SignalVector& sv = ws_.sv_scratch(0);
      demod_.signal_vector_into(window, cfo_cycles, up, ws_, sv);
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += sv[i];
    }
  }
}

SignalVector SigCalc::vector_at(double window_start, double cfo_cycles,
                                bool up) const {
  SignalVector sum;
  vector_at_into(window_start, cfo_cycles, up, sum);
  return sum;
}

const SymbolView& SigCalc::data_symbol(int pkt_index, const PacketContext& ctx,
                                       int d) {
  const auto key = std::make_pair(pkt_index, d);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  const obs::ScopedSpan span(sigcalc_hist_);
  SymbolView view;
  vector_at_into(ctx.data_symbol_start(d), ctx.cfo_cycles(), /*up=*/true,
                 view.sv);
  {
    median_scratch_.assign(view.sv.begin(), view.sv.end());
    view.median = dsp::median_of(median_scratch_);
  }
  dsp::PeakFinderOptions pf;
  pf.circular = true;
  pf.max_peaks = kMaxPeaks;
  // Selectivity relative to the noise floor, not the tallest peak: in a
  // collision the SNR spread between nodes exceeds 20 dB (paper Fig. 10),
  // and a weak node's peak must survive in its own candidate list next to
  // a strong collider's.
  pf.sel = 4.0 * view.median;
  pf.use_threshold = true;
  pf.threshold = 4.0 * view.median;
  view.peaks = dsp::find_peaks(view.sv, pf);
  return cache_.emplace(key, std::move(view)).first->second;
}

std::vector<double> SigCalc::preamble_heights(const PacketContext& ctx) const {
  std::vector<double> heights;
  heights.reserve(lora::kPreambleUpchirps);
  const double sps = static_cast<double>(p_.sps());
  // Keeps the full-vector float path (not folded_power_at, which sums in
  // double) so the heights stay bit-identical to the original by-value code.
  SignalVector& sv = ws_.sv_scratch(1);
  if (antennas_.size() == 1) {
    // Single-antenna fast path: all 8 upchirp windows share the packet's
    // CFO, so extract them into one block (slot 5 — free between
    // component calls) and run one batched dechirp+FFT in place, folding
    // each spectrum afterwards. Same per-window arithmetic as the loop
    // below.
    ws_.reserve(p_);
    const std::size_t isps = p_.sps();
    constexpr std::size_t kUp = lora::kPreambleUpchirps;
    auto& block = ws_.iq_scratch(5);
    block.resize(kUp * isps);
    for (std::size_t m = 0; m < kUp; ++m) {
      extract_window(antennas_[0], ctx.t0() + static_cast<double>(m) * sps,
                     std::span<cfloat>(block.data() + m * isps, isps));
    }
    const std::span<cfloat> rows(block.data(), kUp * isps);
    demod_.dechirp_fft_batch_into(rows, kUp, ctx.cfo_cycles(), /*up=*/true,
                                  ws_, rows);
    for (std::size_t m = 0; m < kUp; ++m) {
      demod_.fold(std::span<const cfloat>(block.data() + m * isps, isps), sv);
      heights.push_back(static_cast<double>(sv[0]));
    }
    return heights;
  }
  for (std::size_t m = 0; m < lora::kPreambleUpchirps; ++m) {
    vector_at_into(ctx.t0() + static_cast<double>(m) * sps, ctx.cfo_cycles(),
                   /*up=*/true, sv);
    heights.push_back(static_cast<double>(sv[0]));
  }
  return heights;
}

void SigCalc::evict(int pkt_index) {
  auto it = cache_.lower_bound({pkt_index, std::numeric_limits<int>::min()});
  while (it != cache_.end() && it->first.first == pkt_index) {
    it = cache_.erase(it);
  }
}

}  // namespace tnb::rx
