#include "core/packet_context.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/window.hpp"
#include "dsp/smoother.hpp"
#include "obs/stage_timer.hpp"

namespace tnb::rx {

PacketContext::PacketContext(const lora::Params& p, const DetectedPacket& det)
    : t0_(det.t0),
      cfo_(det.cfo_cycles),
      sps_(static_cast<double>(p.sps())),
      osf_(static_cast<double>(p.osf)) {
  const double preamble_symbols =
      static_cast<double>(lora::kPreambleUpchirps + lora::kSyncSymbols) +
      lora::kPreambleDownchirps;
  data_start_ = t0_ + preamble_symbols * sps_;
}

std::optional<int> PacketContext::data_symbol_at(double pos,
                                                 int n_data) const {
  if (pos < data_start_) return std::nullopt;
  const int d = static_cast<int>(std::floor((pos - data_start_) / sps_));
  if (n_data >= 0 && d >= n_data) return std::nullopt;
  return d;
}

SigCalc::SigCalc(const lora::Params& p,
                 std::vector<std::span<const cfloat>> antennas)
    : p_(p), antennas_(std::move(antennas)), demod_(p) {
  if (antennas_.empty()) {
    throw std::invalid_argument("SigCalc: need at least one antenna");
  }
  for (const auto& a : antennas_) {
    if (a.size() != antennas_[0].size()) {
      throw std::invalid_argument("SigCalc: antenna length mismatch");
    }
  }
}

SignalVector SigCalc::vector_at(double window_start, double cfo_cycles,
                                bool up) const {
  const std::size_t sps = p_.sps();
  std::vector<cfloat> window(sps);
  SignalVector sum;
  for (std::size_t a = 0; a < antennas_.size(); ++a) {
    extract_window(antennas_[a], window_start, window);
    SignalVector sv = demod_.signal_vector(window, cfo_cycles, up);
    if (a == 0) {
      sum = std::move(sv);
    } else {
      for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += sv[i];
    }
  }
  return sum;
}

const SymbolView& SigCalc::data_symbol(int pkt_index, const PacketContext& ctx,
                                       int d) {
  const auto key = std::make_pair(pkt_index, d);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  const obs::ScopedSpan span(sigcalc_hist_);
  SymbolView view;
  view.sv = vector_at(ctx.data_symbol_start(d), ctx.cfo_cycles(), /*up=*/true);
  {
    std::vector<double> tmp(view.sv.begin(), view.sv.end());
    view.median = dsp::median_of(tmp);
  }
  dsp::PeakFinderOptions pf;
  pf.circular = true;
  pf.max_peaks = kMaxPeaks;
  // Selectivity relative to the noise floor, not the tallest peak: in a
  // collision the SNR spread between nodes exceeds 20 dB (paper Fig. 10),
  // and a weak node's peak must survive in its own candidate list next to
  // a strong collider's.
  pf.sel = 4.0 * view.median;
  pf.use_threshold = true;
  pf.threshold = 4.0 * view.median;
  view.peaks = dsp::find_peaks(view.sv, pf);
  return cache_.emplace(key, std::move(view)).first->second;
}

std::vector<double> SigCalc::preamble_heights(const PacketContext& ctx) const {
  std::vector<double> heights;
  heights.reserve(lora::kPreambleUpchirps);
  const double sps = static_cast<double>(p_.sps());
  for (std::size_t m = 0; m < lora::kPreambleUpchirps; ++m) {
    const SignalVector sv = vector_at(ctx.t0() + static_cast<double>(m) * sps,
                                      ctx.cfo_cycles(), /*up=*/true);
    heights.push_back(static_cast<double>(sv[0]));
  }
  return heights;
}

void SigCalc::evict(int pkt_index) {
  auto it = cache_.lower_bound({pkt_index, std::numeric_limits<int>::min()});
  while (it != cache_.end() && it->first.first == pkt_index) {
    it = cache_.erase(it);
  }
}

}  // namespace tnb::rx
