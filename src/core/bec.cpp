#include "core/bec.hpp"

#include <algorithm>
#include <bit>
#include <set>
#include <stdexcept>

#include "lora/frame.hpp"
#include "lora/hamming.hpp"
#include "lora/interleaver.hpp"

namespace tnb::rx {
namespace {

unsigned weight(std::uint8_t x) {
  return static_cast<unsigned>(std::popcount(static_cast<unsigned>(x)));
}

/// Appends `rows` to `out` unless an identical candidate is present.
void push_unique(std::vector<std::vector<std::uint8_t>>& out,
                 std::vector<std::uint8_t> rows) {
  for (const auto& existing : out) {
    if (existing == rows) return;
  }
  out.push_back(std::move(rows));
}

}  // namespace

BecStats& BecStats::operator+=(const BecStats& o) {
  delta_prime += o.delta_prime;
  delta1 += o.delta1;
  delta2 += o.delta2;
  delta3 += o.delta3;
  crc_checks += o.crc_checks;
  blocks_no_repair += o.blocks_no_repair;
  candidate_blocks += o.candidate_blocks;
  return *this;
}

Bec::Bec(unsigned sf, unsigned cr) : sf_(sf), cr_(cr) {
  // SF here is the block row count; the wire format's reduced-rate header
  // block has sf_app = sf - 2 rows, so 5 rows (SF5, or SF7 reduced) is the
  // floor.
  if (sf < 5 || sf > 12) throw std::invalid_argument("Bec: SF must be 5..12");
  if (cr < 1 || cr > 4) throw std::invalid_argument("Bec: CR must be 1..4");
  n_cols_ = 4 + cr;
  dmin_ = lora::min_distance(cr);
  for (unsigned d = 0; d < 16; ++d) book_[d] = lora::codewords(cr)[d];
}

Bec::Bec(unsigned sf, unsigned cr, const std::array<std::uint8_t, 16>& codebook)
    : Bec(sf, cr) {
  book_ = codebook;
  dmin_ = n_cols_;  // linear code: dmin = min nonzero codeword weight
  for (unsigned d = 1; d < 16; ++d) dmin_ = std::min(dmin_, weight(book_[d]));
}

std::uint8_t Bec::nearest(std::uint8_t row) const {
  unsigned best_dist = 9;
  std::uint8_t best = 0;
  for (unsigned d = 0; d < 16; ++d) {
    const unsigned dist = weight(static_cast<std::uint8_t>(row ^ book_[d]));
    if (dist < best_dist) {
      best_dist = dist;
      best = book_[d];
    }
  }
  return best;
}

std::vector<std::uint8_t> Bec::companions(std::uint8_t mask) const {
  std::vector<std::uint8_t> out;
  if (weight(mask) >= dmin_) return out;
  for (unsigned d = 1; d < 16; ++d) {
    const std::uint8_t cw = book_[d];
    if (weight(cw) != dmin_) continue;
    if ((cw & mask) != mask) continue;
    out.push_back(static_cast<std::uint8_t>(cw ^ mask));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::optional<std::vector<std::uint8_t>> Bec::delta1(
    std::span<const std::uint8_t> rows, std::uint8_t mask,
    BecStats* stats) const {
  if (stats != nullptr) ++stats->delta1;
  const std::uint8_t keep = static_cast<std::uint8_t>(
      ~mask & ((1u << n_cols_) - 1u));
  std::vector<std::uint8_t> fixed(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    bool found = false;
    for (unsigned d = 0; d < 16; ++d) {
      const std::uint8_t cw = book_[d];
      if (((cw ^ rows[r]) & keep) == 0) {
        fixed[r] = cw;
        found = true;
        break;  // unique: |mask| < dmin
      }
    }
    if (!found) return std::nullopt;
  }
  return fixed;
}

std::vector<unsigned> Bec::delta2_mismatch_columns(
    std::span<const std::uint8_t> rows, std::span<const std::uint8_t> gamma,
    std::span<const unsigned> diff_weight, unsigned k1) const {
  std::set<unsigned> cols;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (diff_weight[r] != 2) continue;
    const std::uint8_t flipped =
        static_cast<std::uint8_t>(rows[r] ^ (1u << k1));
    bool found = false;
    for (unsigned d = 0; d < 16 && !found; ++d) {
      const std::uint8_t cw = book_[d];
      const std::uint8_t diff = static_cast<std::uint8_t>(cw ^ flipped);
      if (weight(diff) == 1) {
        cols.insert(static_cast<unsigned>(std::countr_zero(
            static_cast<unsigned>(diff))));
        found = true;
      }
    }
    if (!found) return {};  // no distance-1 codeword: scan fails
  }
  (void)gamma;
  return std::vector<unsigned>(cols.begin(), cols.end());
}

std::optional<std::vector<std::uint8_t>> Bec::delta2(
    std::span<const std::uint8_t> rows, std::span<const std::uint8_t> gamma,
    std::span<const unsigned> diff_weight, unsigned k1,
    BecStats* stats) const {
  if (stats != nullptr) ++stats->delta2;
  std::vector<std::uint8_t> fixed(rows.size());
  int mismatch_col = -1;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (diff_weight[r] == 0) {
      fixed[r] = rows[r];
      continue;
    }
    if (diff_weight[r] == 1) {
      fixed[r] = gamma[r];
      continue;
    }
    const std::uint8_t flipped =
        static_cast<std::uint8_t>(rows[r] ^ (1u << k1));
    bool found = false;
    for (unsigned d = 0; d < 16 && !found; ++d) {
      const std::uint8_t cw = book_[d];
      const std::uint8_t diff = static_cast<std::uint8_t>(cw ^ flipped);
      if (weight(diff) == 1) {
        const int col = std::countr_zero(static_cast<unsigned>(diff));
        if (mismatch_col < 0) mismatch_col = col;
        if (col != mismatch_col) return std::nullopt;  // inconsistent
        fixed[r] = cw;
        found = true;
      }
    }
    if (!found) return std::nullopt;
  }
  return fixed;
}

std::optional<std::vector<std::uint8_t>> Bec::delta3(
    std::span<const std::uint8_t> rows, std::span<const unsigned> diff_weight,
    unsigned k1, unsigned k2, BecStats* stats) const {
  if (stats != nullptr) ++stats->delta3;
  const std::uint8_t flip =
      static_cast<std::uint8_t>((1u << k1) | (1u << k2));
  std::vector<std::uint8_t> fixed(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (diff_weight[r] == 0) {
      fixed[r] = rows[r];
      continue;
    }
    const std::uint8_t candidate = static_cast<std::uint8_t>(rows[r] ^ flip);
    bool found = false;
    for (unsigned d = 0; d < 16 && !found; ++d) {
      if (book_[d] == candidate) {
        fixed[r] = candidate;
        found = true;
      }
    }
    if (!found) return std::nullopt;
  }
  return fixed;
}

std::vector<std::vector<std::uint8_t>> Bec::decode_cr1(
    std::span<const std::uint8_t> rows, BecStats* stats) const {
  std::vector<std::vector<std::uint8_t>> out;
  bool all_pass = true;
  for (std::uint8_t row : rows) {
    if (weight(row) % 2 != 0) {
      all_pass = false;
      break;
    }
  }
  if (all_pass) {
    push_unique(out, std::vector<std::uint8_t>(rows.begin(), rows.end()));
    return out;
  }

  // Repair with each of the 5 columns: rewrite the column so every row's
  // parity holds (Delta'). The received block itself fails parity, so only
  // the 5 BEC-fixed blocks are candidates (paper 6.4) — keeping the
  // packet-level combination count at 5^k for k corrupted blocks, which is
  // what the W = 125 budget is sized for.
  for (unsigned k = 0; k < n_cols_; ++k) {
    if (stats != nullptr) ++stats->delta_prime;
    std::vector<std::uint8_t> fixed(rows.begin(), rows.end());
    for (std::uint8_t& row : fixed) {
      const std::uint8_t rest = static_cast<std::uint8_t>(row & ~(1u << k));
      const unsigned parity = weight(rest) % 2;
      row = static_cast<std::uint8_t>(rest | (parity << k));
    }
    if (stats != nullptr) ++stats->candidate_blocks;
    push_unique(out, std::move(fixed));
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> Bec::decode_block(
    std::span<const std::uint8_t> rows, BecStats* stats) const {
  if (rows.size() != sf_) {
    throw std::invalid_argument("Bec::decode_block: need SF rows");
  }
  if (cr_ == 1) return decode_cr1(rows, stats);

  // Cleaned block Gamma and the difference classes.
  std::vector<std::uint8_t> gamma(sf_);
  std::vector<unsigned> dw(sf_);
  std::uint8_t xi = 0;
  bool any_diff = false;
  bool has_phi2 = false;
  for (unsigned r = 0; r < sf_; ++r) {
    gamma[r] = nearest(rows[r]);
    const std::uint8_t diff = static_cast<std::uint8_t>(rows[r] ^ gamma[r]);
    dw[r] = weight(diff);
    if (dw[r] == 1) xi |= diff;
    if (dw[r] == 2) has_phi2 = true;
    if (dw[r] != 0) any_diff = true;
  }
  const unsigned xi_size = weight(xi);

  std::vector<std::vector<std::uint8_t>> out;
  push_unique(out, gamma);

  auto add = [&](std::optional<std::vector<std::uint8_t>> fixed) {
    if (fixed.has_value()) {
      if (stats != nullptr) ++stats->candidate_blocks;
      push_unique(out, std::move(*fixed));
    }
  };

  if (!any_diff) return out;  // no error

  if (cr_ == 2 || cr_ == 3) {
    const unsigned max_xi = cr_ == 2 ? 2 : 3;
    if (xi_size == 0) return out;           // no single-diff evidence
    if (cr_ == 3 && xi_size == 1) return out;  // one error column: Gamma is right
    if (xi_size > max_xi) {                 // too many error columns
      if (stats != nullptr) ++stats->blocks_no_repair;
      return out;
    }
    // Complete Xi with the companion, then repair with every subset of the
    // hypothesis size (1 column for CR2, 2 columns for CR3).
    std::uint8_t full = xi;
    if (xi_size == max_xi - 1) {
      const auto comps = companions(xi);
      if (!comps.empty()) full = static_cast<std::uint8_t>(xi | comps[0]);
    }
    std::vector<unsigned> cols;
    for (unsigned c = 0; c < n_cols_; ++c) {
      if (full & (1u << c)) cols.push_back(c);
    }
    if (cr_ == 2) {
      for (unsigned c : cols) {
        add(delta1(rows, static_cast<std::uint8_t>(1u << c), stats));
      }
    } else {
      for (std::size_t a = 0; a < cols.size(); ++a) {
        for (std::size_t b = a + 1; b < cols.size(); ++b) {
          add(delta1(rows,
                     static_cast<std::uint8_t>((1u << cols[a]) | (1u << cols[b])),
                     stats));
        }
      }
    }
    if (out.size() == 1 && stats != nullptr) ++stats->blocks_no_repair;
    return out;
  }

  // ---- CR 4 ----
  if (xi_size == 1 && !has_phi2) return out;  // single error column

  // 2-column errors (paper 6.7.1): possible only when |Xi| <= 2.
  if (xi_size <= 2) {
    std::vector<std::vector<std::uint8_t>> two_col;
    auto add2 = [&](std::optional<std::vector<std::uint8_t>> fixed) {
      if (fixed.has_value()) {
        if (stats != nullptr) ++stats->candidate_blocks;
        push_unique(two_col, std::move(*fixed));
      }
    };
    if (xi_size == 0 && has_phi2) {
      // Every phi2 row must point at the same companion group.
      std::set<std::uint8_t> group;
      bool consistent = true;
      bool first = true;
      for (unsigned r = 0; r < sf_ && consistent; ++r) {
        if (dw[r] != 2) continue;
        const std::uint8_t pair = static_cast<std::uint8_t>(rows[r] ^ gamma[r]);
        std::set<std::uint8_t> g{pair};
        for (std::uint8_t c : companions(pair)) g.insert(c);
        if (first) {
          group = g;
          first = false;
        } else if (g != group) {
          consistent = false;
        }
      }
      if (consistent && !group.empty()) {
        for (std::uint8_t pair : group) {
          const unsigned k1 =
              static_cast<unsigned>(std::countr_zero(static_cast<unsigned>(pair)));
          const unsigned k2 = static_cast<unsigned>(std::countr_zero(
              static_cast<unsigned>(pair & (pair - 1))));
          add2(delta3(rows, dw, k1, k2, stats));
        }
      }
    } else if (xi_size == 1) {
      const unsigned k1 =
          static_cast<unsigned>(std::countr_zero(static_cast<unsigned>(xi)));
      add2(delta2(rows, gamma, dw, k1, stats));
    } else if (xi_size == 2) {
      add2(delta1(rows, xi, stats));
    }
    if (!two_col.empty()) {
      for (auto& c : two_col) push_unique(out, std::move(c));
      return out;
    }
  }

  // 3-column errors (paper 6.7.2): possible only when 1 <= |Xi| <= 4.
  if (xi_size == 0 || xi_size > 4) {
    if (stats != nullptr) ++stats->blocks_no_repair;
    return out;
  }

  std::vector<unsigned> xi_cols;
  for (unsigned c = 0; c < n_cols_; ++c) {
    if (xi & (1u << c)) xi_cols.push_back(c);
  }

  auto try_all_triples = [&](std::uint8_t four_cols) {
    std::vector<unsigned> cols;
    for (unsigned c = 0; c < n_cols_; ++c) {
      if (four_cols & (1u << c)) cols.push_back(c);
    }
    for (std::size_t skip = 0; skip < cols.size(); ++skip) {
      std::uint8_t mask = 0;
      for (std::size_t i = 0; i < cols.size(); ++i) {
        if (i != skip) mask |= static_cast<std::uint8_t>(1u << cols[i]);
      }
      add(delta1(rows, mask, stats));
    }
  };

  if (xi_size == 1) {
    const unsigned k1 = xi_cols[0];
    const std::vector<unsigned> mismatch =
        delta2_mismatch_columns(rows, gamma, dw, k1);
    if (stats != nullptr) ++stats->delta2;
    if (mismatch.size() == 2) {
      std::uint8_t set = static_cast<std::uint8_t>(
          (1u << k1) | (1u << mismatch[0]) | (1u << mismatch[1]));
      const auto comps = companions(set);
      if (!comps.empty()) set |= comps[0];
      try_all_triples(set);
    } else if (mismatch.size() == 3) {
      const std::uint8_t set = static_cast<std::uint8_t>(
          (1u << k1) | (1u << mismatch[0]) | (1u << mismatch[1]) |
          (1u << mismatch[2]));
      try_all_triples(set);
    }
  } else if (xi_size == 2) {
    // Six Delta_1 attempts: Xi plus each other column.
    std::vector<unsigned> extras_ok;
    std::vector<std::vector<std::uint8_t>> fixes;
    for (unsigned c = 0; c < n_cols_; ++c) {
      if (xi & (1u << c)) continue;
      auto fixed = delta1(rows, static_cast<std::uint8_t>(xi | (1u << c)), stats);
      if (fixed.has_value()) {
        extras_ok.push_back(c);
        fixes.push_back(std::move(*fixed));
      }
    }
    for (auto& f : fixes) {
      if (stats != nullptr) ++stats->candidate_blocks;
      push_unique(out, std::move(f));
    }
    if (extras_ok.size() == 2) {
      // Xi may hold the companion: also test the two swapped hypotheses
      // (c3, c4, k1) and (c3, c4, k2).
      const std::uint8_t pair = static_cast<std::uint8_t>(
          (1u << extras_ok[0]) | (1u << extras_ok[1]));
      for (unsigned k : xi_cols) {
        add(delta1(rows, static_cast<std::uint8_t>(pair | (1u << k)), stats));
      }
    }
  } else if (xi_size == 3) {
    std::uint8_t set = xi;
    const auto comps = companions(xi);
    if (!comps.empty()) set |= comps[0];
    try_all_triples(set);
  } else {  // xi_size == 4
    try_all_triples(xi);
  }

  if (out.size() == 1 && stats != nullptr) ++stats->blocks_no_repair;
  return out;
}

std::size_t bec_w_budget(unsigned cr) { return cr == 1 ? 125 : 16; }

BecPacketResult decode_payload_bec(const lora::Params& p,
                                   std::span<const std::uint32_t> symbols,
                                   std::size_t payload_len, Rng& rng,
                                   BecStats* stats, std::size_t w_override) {
  BecPacketResult result;
  const std::size_t needed = lora::num_payload_symbols(p, payload_len);
  if (symbols.size() < needed) return result;

  const auto blocks =
      lora::payload_blocks_from_symbols(p, symbols.first(needed));
  const Bec bec(p.bits_per_symbol(), p.cr);

  std::vector<std::vector<std::vector<std::uint8_t>>> candidates;
  candidates.reserve(blocks.size());
  for (const auto& blk : blocks) {
    candidates.push_back(bec.decode_block(blk, stats));
  }

  // Default (all-Gamma) nibbles, for rescued-codeword accounting.
  std::vector<std::vector<std::uint8_t>> default_nibbles;
  for (const auto& blk : blocks) {
    std::vector<std::uint8_t> nib(p.bits_per_symbol());
    for (unsigned r = 0; r < p.bits_per_symbol(); ++r) {
      nib[r] = lora::default_decode(blk[r], p.cr).data;
    }
    default_nibbles.push_back(std::move(nib));
  }

  std::size_t total = 1;
  bool overflow = false;
  for (const auto& c : candidates) {
    if (total > 1'000'000 / std::max<std::size_t>(c.size(), 1)) {
      overflow = true;
      break;
    }
    total *= c.size();
  }
  const std::size_t w = w_override != 0 ? w_override : bec_w_budget(p.cr);

  auto try_combo = [&](std::span<const std::size_t> combo) -> bool {
    std::vector<std::vector<std::uint8_t>> nibbles;
    nibbles.reserve(candidates.size());
    for (std::size_t b = 0; b < candidates.size(); ++b) {
      const auto& rows = candidates[b][combo[b]];
      std::vector<std::uint8_t> nib(p.bits_per_symbol());
      for (unsigned r = 0; r < p.bits_per_symbol(); ++r) nib[r] = rows[r] & 0x0F;
      nibbles.push_back(std::move(nib));
    }
    std::vector<std::uint8_t> payload =
        lora::payload_from_block_nibbles(p, nibbles, payload_len);
    if (stats != nullptr) ++stats->crc_checks;
    if (!lora::check_payload_crc(payload)) return false;

    result.ok = true;
    result.payload = std::move(payload);
    result.rescued_codewords = 0;
    for (std::size_t b = 0; b < candidates.size(); ++b) {
      const auto& rows = candidates[b][combo[b]];
      for (unsigned r = 0; r < p.bits_per_symbol(); ++r) {
        if ((rows[r] & 0x0F) != default_nibbles[b][r]) {
          ++result.rescued_codewords;
        }
      }
    }
    return true;
  };

  std::vector<std::size_t> combo(candidates.size(), 0);
  if (!overflow && total <= w) {
    // Enumerate every combination, starting with all-Gamma.
    for (std::size_t it = 0; it < total; ++it) {
      if (try_combo(combo)) return result;
      for (std::size_t b = 0; b < combo.size(); ++b) {
        if (++combo[b] < candidates[b].size()) break;
        combo[b] = 0;
      }
    }
    return result;
  }

  // Randomly sample W combinations (always include the all-Gamma one).
  if (try_combo(combo)) return result;
  for (std::size_t it = 1; it < w; ++it) {
    for (std::size_t b = 0; b < combo.size(); ++b) {
      combo[b] = rng.uniform_index(candidates[b].size());
    }
    if (try_combo(combo)) return result;
  }
  return result;
}

std::optional<lora::Header> decode_header_bec(
    const lora::Params& p, std::span<const std::uint32_t> header_symbols,
    BecStats* stats) {
  if (header_symbols.size() < lora::kHeaderSymbols) return std::nullopt;
  const std::vector<std::uint8_t> rows = lora::deinterleave_block(
      header_symbols.first(lora::kHeaderSymbols), p.bits_per_symbol(), 4);
  const Bec bec(p.bits_per_symbol(), 4);
  const auto candidates = bec.decode_block(rows, stats);
  for (const auto& cand : candidates) {
    std::vector<std::uint8_t> nibbles(p.bits_per_symbol());
    for (unsigned r = 0; r < p.bits_per_symbol(); ++r) nibbles[r] = cand[r] & 0x0F;
    const auto hdr = lora::header_from_nibbles(nibbles);
    if (hdr.has_value()) return hdr;
  }
  return std::nullopt;
}

}  // namespace tnb::rx
