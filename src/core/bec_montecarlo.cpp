#include "core/bec_montecarlo.hpp"

#include <set>
#include <vector>

#include "core/bec.hpp"
#include "lora/hamming.hpp"

namespace tnb::rx {

BecMcResult bec_capability_mc(unsigned sf, unsigned cr, unsigned n_err_cols,
                              int trials, Rng& rng) {
  const Bec bec(sf, cr);
  BecMcResult result;
  result.trials = trials;
  for (int t = 0; t < trials; ++t) {
    std::vector<std::uint8_t> truth(sf);
    for (auto& r : truth) r = lora::codewords(cr)[rng.uniform_index(16)];

    std::set<unsigned> cols;
    while (cols.size() < n_err_cols) {
      cols.insert(static_cast<unsigned>(rng.uniform_index(4 + cr)));
    }
    std::vector<std::uint8_t> received = truth;
    for (unsigned c : cols) {
      bool any = false;
      while (!any) {
        for (std::size_t r = 0; r < received.size(); ++r) {
          received[r] = static_cast<std::uint8_t>(received[r] & ~(1u << c));
          const unsigned orig = (truth[r] >> c) & 1u;
          const unsigned bit = rng.uniform() < 0.5 ? orig ^ 1u : orig;
          received[r] |= static_cast<std::uint8_t>(bit << c);
          if (bit != orig) any = true;
        }
      }
    }

    bool def_ok = true;
    for (unsigned r = 0; r < sf; ++r) {
      if (lora::default_decode(received[r], cr).codeword != truth[r]) {
        def_ok = false;
        break;
      }
    }
    if (def_ok) ++result.ok_default;

    for (const auto& cand : bec.decode_block(received)) {
      if (cand == truth) {
        ++result.ok_bec;
        break;
      }
    }
  }
  return result;
}

}  // namespace tnb::rx
