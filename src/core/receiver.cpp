#include "core/receiver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/math_util.hpp"
#include "core/sibling.hpp"
#include "dsp/fft_backend.hpp"
#include "core/snr.hpp"
#include "lora/frame.hpp"
#include "lora/gray.hpp"
#include "obs/json.hpp"

namespace tnb::rx {
namespace {

/// Receiver-side tracking state of one detected packet.
struct Tracked {
  PacketContext ctx;
  bool dead = false;         ///< header failed / gave up
  bool decoded = false;
  lora::Header header;
  bool have_header = false;
  std::size_t header_syms = lora::kHeaderSymbols;  ///< 0 in implicit mode
  std::vector<int> bins;     ///< assigned peak bin per data symbol (-1 unset)
  std::vector<std::uint8_t> payload;  ///< app bytes once decoded
  std::size_t rescued = 0;

  explicit Tracked(PacketContext c) : ctx(std::move(c)) {}

  std::uint32_t bin_at(int d) const {
    return static_cast<std::uint32_t>(bins[static_cast<std::size_t>(d)]);
  }
};

}  // namespace

std::string ReceiverStats::to_json() const {
  const std::size_t rescued_codewords = std::accumulate(
      rescued_per_packet.begin(), rescued_per_packet.end(), std::size_t{0});
  // Shared serialization path with obs::Snapshot::to_json — schema pinned
  // by tests/test_obs.cpp (ReceiverStatsJson).
  obs::JsonWriter w;
  w.begin_object();
  w.field("detected", detected);
  w.field("header_ok", header_ok);
  w.field("crc_ok", crc_ok);
  w.field("decoded_first_pass", decoded_first_pass);
  w.field("decoded_second_pass", decoded_second_pass);
  w.key("bec").begin_object();
  w.field("delta_prime", bec.delta_prime);
  w.field("delta1", bec.delta1);
  w.field("delta2", bec.delta2);
  w.field("delta3", bec.delta3);
  w.field("crc_checks", bec.crc_checks);
  w.field("blocks_no_repair", bec.blocks_no_repair);
  w.field("candidate_blocks", bec.candidate_blocks);
  w.end_object();
  // rescued_per_packet summarized as its length and sum (Fig. 16 keeps
  // the full vector; the stats line only needs the totals).
  w.field("rescued_packets", rescued_per_packet.size());
  w.field("rescued_codewords", rescued_codewords);
  w.end_object();
  return w.take();
}

Receiver::Receiver(lora::Params p, ReceiverOptions opt)
    : p_(p), opt_(opt) {
  p_.validate();
  codec_ = make_frame_codec({p_, opt_.use_bec, opt_.implicit_header},
                            opt_.codec_factory);
  ThriveOptions topt = opt_.thrive;
  topt.use_history = opt_.use_history;
  const lora::Params params = p_;
  factory_ = [params, topt]() -> std::unique_ptr<PeakAssigner> {
    return std::make_unique<Thrive>(params, topt);
  };
  obs::Registry* reg = obs::resolve(opt_.metrics);
  obs_.stages = obs::StageTimer::for_registry(reg, opt_.metric_labels);
  if (reg != nullptr) {
    const obs::Labels& extra = opt_.metric_labels;
    const auto with_extra = [&extra](obs::Labels labels) {
      labels.insert(labels.end(), extra.begin(), extra.end());
      return labels;
    };
    obs_.detected = reg->counter("tnb_rx_detected_total",
                                 "Packets detected (after dedup)", extra);
    obs_.header_ok =
        reg->counter("tnb_rx_header_ok_total", "PHY headers decoded", extra);
    obs_.crc_ok = reg->counter("tnb_rx_crc_ok_total",
                               "Payload CRC16 checks passed", extra);
    obs_.decoded_first_pass =
        reg->counter("tnb_rx_decoded_total", "Packets fully decoded",
                     with_extra({{"pass", "first"}}));
    obs_.decoded_second_pass =
        reg->counter("tnb_rx_decoded_total", "Packets fully decoded",
                     with_extra({{"pass", "second"}}));
    // Info-style gauge: constant 1, the label carries which FFT backend
    // the demod hot path dispatches to (scalar / avx2 / ...).
    reg->gauge("tnb_fft_backend_info", "Active dsp::FftBackend (info label)",
               with_extra({{"backend", dsp::active_fft_backend().name()}}))
        .set(1.0);
  }
}

void Receiver::set_assigner_factory(AssignerFactory factory) {
  factory_ = std::move(factory);
}

void Receiver::set_sync_factory(SyncFactory factory) {
  sync_factory_ = std::move(factory);
}

std::vector<sim::DecodedPacket> Receiver::decode(
    std::span<const cfloat> trace, Rng& rng, ReceiverStats* stats) const {
  return decode_multi({trace}, rng, stats);
}

std::vector<DetectedPacket> Receiver::detect(
    std::vector<std::span<const cfloat>> antennas) const {
  std::vector<DetectedPacket> detections;
  if (antennas.empty() || antennas[0].empty()) return detections;
  if (sync_factory_) {
    // Custom front end (set_sync_factory): the FrameSync owns detection AND
    // refinement per antenna; only the cross-antenna merge below is shared.
    const std::unique_ptr<FrameSync> fs = sync_factory_();
    for (const auto& ant : antennas) {
      std::vector<DetectedPacket> found;
      {
        const obs::ScopedSpan span(obs_.stages.detect);
        found = fs->sync(ant);
      }
      detections.insert(detections.end(), found.begin(), found.end());
    }
  } else {
    const Detector detector(p_, opt_.detector);
    const FracSync fsync(p_);
    lora::Workspace ws(p_);  // one workspace serves the whole detection pass

    // Detect on every antenna: a packet faded on one antenna during its
    // preamble is often clean on another (the diversity TnB2ant relies on).
    for (const auto& ant : antennas) {
      std::vector<DetectedPacket> found;
      {
        const obs::ScopedSpan span(obs_.stages.detect);
        found = detector.detect(ant, ws);
      }
      if (opt_.use_frac_sync) {
        const obs::ScopedSpan span(obs_.stages.frac_sync);
        for (DetectedPacket& det : found) {
          const FracSyncResult r =
              fsync.refine(ant, det.t0, det.cfo_cycles, ws);
          // Only trust the refinement when the Q* gate confirmed it: with a
          // heavily collided preamble the ungated fallback can be steered by
          // an interferer, and the coarse estimate is then the safer choice.
          if (r.gated) {
            det.t0 += r.dt;
            det.cfo_cycles += r.df;
          }
        }
      }
      detections.insert(detections.end(), found.begin(), found.end());
    }
  }
  if (antennas.size() > 1) {
    // Merge duplicates across antennas (same packet, near-equal timing/CFO).
    std::sort(detections.begin(), detections.end(),
              [](const DetectedPacket& a, const DetectedPacket& b) {
                return a.t0 < b.t0;
              });
    std::vector<DetectedPacket> merged;
    const double t_tol = 0.25 * static_cast<double>(p_.sps());
    for (const DetectedPacket& det : detections) {
      bool dup = false;
      for (DetectedPacket& kept : merged) {
        if (std::abs(kept.t0 - det.t0) < t_tol &&
            std::abs(kept.cfo_cycles - det.cfo_cycles) < 2.0) {
          if (det.validation_score > kept.validation_score ||
              (det.validation_score == kept.validation_score &&
               det.strength > kept.strength)) {
            kept = det;
          }
          dup = true;
          break;
        }
      }
      if (!dup) merged.push_back(det);
    }
    detections = std::move(merged);
  }
  return detections;
}

std::vector<sim::DecodedPacket> Receiver::decode_multi(
    std::vector<std::span<const cfloat>> antennas, Rng& rng,
    ReceiverStats* stats) const {
  return decode_with_detections(antennas, detect(antennas), rng, stats);
}

std::vector<sim::DecodedPacket> Receiver::decode_with_detections(
    std::vector<std::span<const cfloat>> antennas,
    std::vector<DetectedPacket> detections, Rng& rng,
    ReceiverStats* stats) const {
  std::vector<sim::DecodedPacket> out;
  if (antennas.empty() || antennas[0].empty()) return out;
  if (stats != nullptr) stats->detected += detections.size();
  obs_.detected.inc(detections.size());
  if (detections.empty()) return out;

  SigCalc sig(p_, antennas);
  sig.set_stage_histogram(obs_.stages.sigcalc);

  std::vector<Tracked> pkts;
  std::vector<PacketContext> contexts;
  pkts.reserve(detections.size());
  const std::optional<lora::Header> implicit = codec_->implicit_header();
  for (const DetectedPacket& det : detections) {
    PacketContext ctx(p_, det);
    pkts.emplace_back(ctx);
    Tracked& t = pkts.back();
    t.header_syms = codec_->header_symbols();
    if (implicit.has_value()) {
      t.header = *implicit;
      t.have_header = true;
      t.ctx.n_data_symbols =
          static_cast<int>(codec_->payload_symbols(t.header));
    }
    contexts.push_back(t.ctx);
  }

  std::vector<PeakHistory> history(pkts.size());
  {
    // Preamble-height bootstrap is uncached signal calculation.
    const obs::ScopedSpan span(obs_.stages.sigcalc);
    for (std::size_t i = 0; i < pkts.size(); ++i) {
      const std::vector<double> pre = sig.preamble_heights(pkts[i].ctx);
      history[i].bootstrap(pre);
    }
  }

  const double sps = static_cast<double>(p_.sps());
  const std::size_t n_checkpoints = sig.trace_len() / p_.sps() + 2;
  std::unique_ptr<PeakAssigner> assigner = factory_();

  // Decodes header / payload of packet `pi` as soon as enough symbols are
  // assigned. Returns true if the packet reached a terminal state.
  auto try_decode = [&](std::size_t pi, bool second_pass) {
    Tracked& t = pkts[pi];
    if (t.dead || t.decoded) return;

    // Header: the codec's leading data symbols (none in implicit mode).
    if (!t.have_header) {
      if (t.bins.size() < t.header_syms) return;
      bool complete = true;
      std::vector<std::uint32_t> hs(t.header_syms);
      for (std::size_t d = 0; d < t.header_syms; ++d) {
        if (t.bins[d] < 0) {
          complete = false;
          break;
        }
        hs[d] = t.bin_at(static_cast<int>(d));
      }
      if (!complete) return;
      std::optional<lora::Header> hdr;
      {
        const obs::ScopedSpan span(obs_.stages.header);
        hdr = codec_->decode_header(hs,
                                    stats != nullptr ? &stats->bec : nullptr);
      }
      if (!hdr.has_value()) {
        if (static_cast<int>(t.bins.size()) >= opt_.max_tracked_symbols) {
          t.dead = true;
        }
        // Header may still resolve on the second pass with better masking.
        if (!second_pass && !opt_.two_pass) t.dead = true;
        if (second_pass) t.dead = true;
        return;
      }
      t.header = *hdr;
      t.have_header = true;
      const int n_data = static_cast<int>(
          t.header_syms + codec_->payload_symbols(t.header));
      t.ctx.n_data_symbols = n_data;
      contexts[pi].n_data_symbols = n_data;
      if (stats != nullptr) ++stats->header_ok;
      obs_.header_ok.inc();
    }

    // Payload: the codec consumes the whole frame's bins (the wire format's
    // header block carries payload nibbles in its spare rows).
    const int n_data = t.ctx.n_data_symbols;
    if (static_cast<int>(t.bins.size()) < n_data) return;
    // Assignments arrive in symbol order, so by the time the tail is set the
    // header bins are too; the full check guards the second pass, where the
    // header survives the bin reset.
    for (int d = 0; d < n_data; ++d) {
      if (t.bins[static_cast<std::size_t>(d)] < 0) return;
    }
    std::vector<std::uint32_t> fs;
    fs.reserve(static_cast<std::size_t>(n_data));
    for (int d = 0; d < n_data; ++d) fs.push_back(t.bin_at(d));
    FrameDecodeResult r;
    {
      const obs::ScopedSpan span(obs_.stages.bec);
      r = codec_->decode_frame(fs, t.header, rng,
                               stats != nullptr ? &stats->bec : nullptr);
    }
    if (!r.ok) {
      if (second_pass || !opt_.two_pass) t.dead = true;
      return;
    }
    t.decoded = true;
    t.rescued = r.rescued_codewords;
    t.payload = std::move(r.payload);
    if (stats != nullptr) {
      ++stats->crc_ok;
      if (second_pass) {
        ++stats->decoded_second_pass;
      } else {
        ++stats->decoded_first_pass;
      }
      stats->rescued_per_packet.push_back(r.rescued_codewords);
    }
    obs_.crc_ok.inc();
    (second_pass ? obs_.decoded_second_pass : obs_.decoded_first_pass).inc();
  };

  // Known-peak masks for symbol (pi, window W): preamble overlaps of every
  // other packet plus assigned bins of decoded packets.
  auto masks_for = [&](std::size_t pi, double w) {
    std::vector<double> masks;
    const double alpha_i = pkts[pi].ctx.alpha_at(w);
    const std::size_t n = p_.n_bins();
    for (std::size_t k = 0; k < pkts.size(); ++k) {
      if (k == pi) continue;
      const Tracked& other = pkts[k];
      const double t0k = other.ctx.t0();
      const double w_end = w + sps;
      // Preamble upchirps [t0, t0+8T).
      const double up_end = t0k + 8.0 * sps;
      if (w < up_end && w_end > t0k) {
        masks.push_back(map_bin(0.0, other.ctx.alpha_at(t0k), alpha_i, n));
      }
      // Sync symbols at slots 8 and 9 (shifts 8 and 16).
      for (int s = 0; s < 2; ++s) {
        const double ss = t0k + (8.0 + s) * sps;
        if (w < ss + sps && w_end > ss) {
          const double shift = s == 0 ? lora::kSyncShift1 : lora::kSyncShift2;
          masks.push_back(map_bin(shift, other.ctx.alpha_at(ss), alpha_i, n));
        }
      }
      // Assigned bins of decoded packets.
      if (other.decoded) {
        const double ds = other.ctx.data_start();
        const int d0 = static_cast<int>(std::floor((w - ds) / sps));
        for (int d = d0; d <= d0 + 1; ++d) {
          if (d < 0 || d >= static_cast<int>(other.bins.size())) continue;
          const int bin = other.bins[static_cast<std::size_t>(d)];
          if (bin < 0) continue;
          const double slot_start = other.ctx.data_symbol_start(d);
          if (w < slot_start + sps && w_end > slot_start) {
            masks.push_back(map_bin(static_cast<double>(bin),
                                    other.ctx.alpha_at(slot_start), alpha_i, n));
          }
        }
      }
    }
    return masks;
  };

  auto run_pass = [&](bool second_pass) {
    for (std::size_t j = 0; j < n_checkpoints; ++j) {
      const double c = static_cast<double>(j) * sps;
      std::vector<ActiveSymbol> active;
      for (std::size_t pi = 0; pi < pkts.size(); ++pi) {
        Tracked& t = pkts[pi];
        if (t.dead || t.decoded) continue;
        int limit = t.ctx.n_data_symbols;
        if (limit < 0) limit = opt_.max_tracked_symbols;
        const auto d = t.ctx.data_symbol_at(c, limit);
        if (!d.has_value()) continue;
        active.push_back({static_cast<int>(pi), *d,
                          t.ctx.data_symbol_start(*d)});
      }
      if (active.empty()) continue;
      std::sort(active.begin(), active.end(),
                [](const ActiveSymbol& a, const ActiveSymbol& b) {
                  return a.window_start < b.window_start;
                });

      std::vector<std::vector<double>> masks(active.size());
      for (std::size_t i = 0; i < active.size(); ++i) {
        masks[i] = masks_for(static_cast<std::size_t>(active[i].packet),
                             active[i].window_start);
      }

      AssignInput in;
      in.symbols = active;
      in.contexts = contexts;
      in.masked_bins = masks;
      in.sig = &sig;
      in.history = history;
      in.second_pass = second_pass;
      std::vector<Assignment> assignments;
      {
        // Includes the sigcalc spans of cache misses it triggers (stage
        // sums overlap; see obs/stage_timer.hpp).
        const obs::ScopedSpan span(obs_.stages.assign);
        assignments = assigner->assign(in);
      }

      for (const Assignment& a : assignments) {
        Tracked& t = pkts[static_cast<std::size_t>(a.packet)];
        if (t.bins.size() <= static_cast<std::size_t>(a.data_idx)) {
          t.bins.resize(static_cast<std::size_t>(a.data_idx) + 1, -1);
        }
        t.bins[static_cast<std::size_t>(a.data_idx)] = a.bin;
        if (!second_pass) {
          history[static_cast<std::size_t>(a.packet)].record(a.data_idx,
                                                             a.height);
        }
        try_decode(static_cast<std::size_t>(a.packet), second_pass);
      }
    }
  };

  run_pass(/*second_pass=*/false);

  if (opt_.two_pass) {
    bool any_failed = false;
    for (Tracked& t : pkts) {
      if (!t.decoded) {
        any_failed = true;
        t.dead = false;        // give failed packets another chance
        std::fill(t.bins.begin(), t.bins.end(), -1);
      }
    }
    if (any_failed) {
      const obs::ScopedSpan span(obs_.stages.second_pass);
      run_pass(/*second_pass=*/true);
    }
  }

  for (const Tracked& t : pkts) {
    if (t.decoded) {
      out.push_back({t.payload, t.ctx.t0(),
                     estimate_snr_db(t.ctx, sig),
                     p_.cfo_cycles_to_hz(t.ctx.cfo_cycles())});
    }
  }
  return out;
}

}  // namespace tnb::rx
