// Per-packet SNR estimation from preamble peak heights.
//
// The paper's artifact reports an estimated SNR for every decoded packet,
// derived from the peak heights of its decoded symbols. The folded peak of
// a clean upchirp at amplitude A is (sps*A)^2 while a noise bin averages
// sps*sigma^2, so the in-band SNR A^2/(sigma^2/OSF) equals
// peak / (noise_bin_mean * 2^SF). The noise mean is taken from the median
// of the signal vector (median of an exponential = ln 2 times its mean).
#pragma once

#include "core/packet_context.hpp"

namespace tnb::rx {

/// Estimated in-band SNR (dB) of a detected packet, from the median of its
/// preamble upchirp peaks against the noise floor of its signal vectors.
double estimate_snr_db(const PacketContext& ctx, const SigCalc& sig);

}  // namespace tnb::rx
