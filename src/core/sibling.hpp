// Sibling-window geometry shared by Thrive and AlignTrack*.
//
// A tone transmitted inside symbol S_i of packet i also appears, at a
// predictable bin offset, in the (at most) two consecutive symbol windows
// of every other packet that overlap S_i (paper 5.3.2-5.3.3). The bin
// mapping uses alpha = window_start/OSF - cfo: a peak at bin b observed in
// a window with alpha_a sits at bin b + (alpha_b - alpha_a) (mod 2^SF) in a
// window with alpha_b.
#pragma once

#include <vector>

#include "core/assign.hpp"

namespace tnb::rx {

struct SiblingWindow {
  int packet = 0;
  int data_idx = 0;
  double window_start = 0.0;
};

/// Maps bin `b` from a window with `alpha_from` to the window with
/// `alpha_to`; returns a fractional bin in [0, n).
double map_bin(double b, double alpha_from, double alpha_to, std::size_t n);

/// The symbol windows of *other* packets overlapping `in.symbols[sym_idx]`:
/// for each other active symbol, itself plus its neighbour on the
/// overlapping side. Windows outside the packet's data section are skipped.
std::vector<SiblingWindow> sibling_windows(const AssignInput& in,
                                           std::size_t sym_idx);

/// Height of the sibling of a peak expected at (fractional) bin
/// `expected_bin` in window `w`: the height of a found peak within `tol`
/// bins, or the raw signal-vector value at the rounded expected bin when no
/// peak was identified there (paper 5.3.3).
double sibling_height(const AssignInput& in, const SiblingWindow& w,
                      double expected_bin, double tol);

}  // namespace tnb::rx
