// FrameCodec: the symbol-coding seam of the receiver pipeline.
//
// The TnB pipeline separates *peak assignment* (detection, Thrive, masking,
// two-pass — which raw FFT bin each data symbol peaked at) from *frame
// coding* (how those bins map to bits: gray convention, interleaver,
// Hamming variant, whitening, header layout, CRC). A FrameCodec owns the
// second half: it consumes the raw peak bins the assigner produced and
// yields headers and payloads, and on the transmit side turns application
// bytes into raw chirp shifts for the modulator.
//
// Two implementations exist as runtime-selectable peers:
//   * PaperCodec (this library) — the paper's simplified frame format, the
//     default; byte-identical to the pre-seam receiver (decode-ab-diff CI).
//   * wire::WireCodec (src/wire/) — the gr-lora-sdr-compatible wire format
//     real LoRa transmitters emit (DESIGN.md "Wire format").
//
// Receivers construct their codec once via make_frame_codec: a null
// ReceiverOptions::codec_factory yields the PaperCodec. The codec operates
// on raw bins (not gray-mapped values) because the bin -> bit mapping is
// format- and position-dependent: the wire format's first block runs at a
// reduced rate with its own gray offset.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/bec.hpp"
#include "lora/header.hpp"
#include "lora/params.hpp"

namespace tnb::rx {

/// Implicit-header operation: the receiver knows the payload length and
/// coding rate a priori and packets carry no PHY header symbols (LoRa's
/// implicit header mode).
struct ImplicitHeader {
  std::uint8_t payload_len = 0;  ///< on-air bytes including CRC16
  std::uint8_t cr = 4;
};

/// Everything a codec needs to configure itself for one receiver.
struct CodecConfig {
  lora::Params params;
  bool use_bec = true;  ///< BEC block repair vs the default per-row decoder
  std::optional<ImplicitHeader> implicit_header;
};

struct FrameDecodeResult {
  bool ok = false;
  std::vector<std::uint8_t> payload;  ///< application bytes, CRC16 stripped
  std::size_t rescued_codewords = 0;  ///< rows BEC decoded differently (and
                                      ///< correctly) than the default decoder
};

class FrameCodec {
 public:
  virtual ~FrameCodec() = default;

  /// Leading data symbols that carry the PHY header (0 in implicit mode —
  /// then every data symbol is payload and decode_header is never called).
  virtual std::size_t header_symbols() const = 0;

  /// The configured implicit header as a lora::Header (payload_len includes
  /// the CRC16), or nullopt in explicit-header mode.
  virtual std::optional<lora::Header> implicit_header() const = 0;

  /// Decodes the header from the first header_symbols() raw peak bins.
  virtual std::optional<lora::Header> decode_header(
      std::span<const std::uint32_t> bins, BecStats* stats) const = 0;

  /// Data symbols following the header for a decoded/implicit header.
  virtual std::size_t payload_symbols(const lora::Header& h) const = 0;

  /// Decodes the payload from the raw bins of the WHOLE frame (header
  /// symbols included — the wire format's header block carries payload
  /// nibbles in its spare rows, so the payload is not a suffix slice).
  virtual FrameDecodeResult decode_frame(std::span<const std::uint32_t> bins,
                                         const lora::Header& h, Rng& rng,
                                         BecStats* stats) const = 0;

  /// Streaming span refinement: given argmax bins of the first
  /// header_symbols() data symbols, the total frame length in data symbols
  /// if the header passes its checksum; nullopt otherwise (the caller keeps
  /// its conservative span). Uses the default decoder — refinement is
  /// advisory, never decode-bearing.
  virtual std::optional<std::size_t> peek_frame_symbols(
      std::span<const std::uint32_t> header_bins) const = 0;

  /// Transmit side: application bytes -> raw chirp shifts of the full frame
  /// (header included in explicit mode; CRC appended here).
  virtual std::vector<std::uint32_t> encode_shifts(
      std::span<const std::uint8_t> app_bytes) const = 0;

  /// Total frame length in data symbols for an application payload size.
  virtual std::size_t frame_symbols(std::size_t app_bytes) const = 0;
};

/// Builds a codec for `cfg`: `factory` when set, the PaperCodec otherwise.
using CodecFactory =
    std::function<std::unique_ptr<const FrameCodec>(const CodecConfig&)>;
std::unique_ptr<const FrameCodec> make_frame_codec(const CodecConfig& cfg,
                                                   const CodecFactory& factory);

/// The paper's frame format (lora/frame.hpp) behind the codec interface.
/// Arithmetic is identical to the pre-seam receiver: bins map through
/// Params::value_for_shift, then decode_header_bec / decode_payload_bec or
/// the default decoders, with the CRC16 stripped from accepted payloads.
class PaperCodec final : public FrameCodec {
 public:
  explicit PaperCodec(const CodecConfig& cfg);

  std::size_t header_symbols() const override;
  std::optional<lora::Header> implicit_header() const override;
  std::optional<lora::Header> decode_header(std::span<const std::uint32_t> bins,
                                            BecStats* stats) const override;
  std::size_t payload_symbols(const lora::Header& h) const override;
  FrameDecodeResult decode_frame(std::span<const std::uint32_t> bins,
                                 const lora::Header& h, Rng& rng,
                                 BecStats* stats) const override;
  std::optional<std::size_t> peek_frame_symbols(
      std::span<const std::uint32_t> header_bins) const override;
  std::vector<std::uint32_t> encode_shifts(
      std::span<const std::uint8_t> app_bytes) const override;
  std::size_t frame_symbols(std::size_t app_bytes) const override;

 private:
  CodecConfig cfg_;
};

}  // namespace tnb::rx
