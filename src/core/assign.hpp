// Peak-assignment strategy interface.
//
// At every checking point the receiver hands the intersecting data symbols
// to a PeakAssigner, which decides which FFT peak belongs to which packet.
// Thrive (the paper's algorithm), AlignTrack* and the argmax baseline all
// implement this interface, so they can be swapped inside the same receiver
// — exactly how the paper evaluates them (Section 8.2).
#pragma once

#include <span>
#include <vector>

#include "core/history.hpp"
#include "core/packet_context.hpp"

namespace tnb::rx {

/// One data symbol intersecting the current checking point.
struct ActiveSymbol {
  int packet = 0;             ///< index into the receiver's context array
  int data_idx = 0;           ///< data symbol index within that packet
  double window_start = 0.0;  ///< receiver-sample start of the symbol window
};

/// The decision for one symbol.
struct Assignment {
  int packet = 0;
  int data_idx = 0;
  int bin = -1;        ///< assigned peak bin; -1 if nothing assignable
  double height = 0.0; ///< height of the assigned peak (history update)
};

/// Everything a strategy may consult. Spans index by the same packet ids as
/// ActiveSymbol::packet.
struct AssignInput {
  std::span<const ActiveSymbol> symbols;            ///< sorted by window_start
  std::span<const PacketContext> contexts;
  /// Per active symbol: bins of known peaks (preamble overlaps, packets
  /// already decoded) that must not be assigned.
  std::span<const std::vector<double>> masked_bins;
  SigCalc* sig = nullptr;
  /// Peak-height history per packet (may be empty when histories are off).
  std::span<PeakHistory> history;
  bool second_pass = false;
};

class PeakAssigner {
 public:
  virtual ~PeakAssigner() = default;

  /// Returns one Assignment per entry of `in.symbols`, in the same order.
  virtual std::vector<Assignment> assign(const AssignInput& in) = 0;
};

}  // namespace tnb::rx
