// Packet detection (paper Section 7, steps 1-3).
//
// Step 1 finds preambles by looking for peaks at the same bin in several
// consecutive symbol-length windows (the 8 preamble upchirps all produce
// the same misalignment peak). Step 3 combines the upchirp peak location x1
// with the downchirp peak location x2 into a coarse timing / CFO estimate
// (timing ~ (x1-x2)/2, CFO ~ (x1+x2)/2, after resolving the half-period
// ambiguity with the CFO bound). Step 2's sanity test slides the start by
// {-2T..2T} and validates that upchirp, sync and downchirp peaks land at
// their expected locations, discarding false preambles.
//
// Step 4 (fractional refinement) lives in frac_sync.hpp.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "lora/demodulator.hpp"
#include "lora/params.hpp"

namespace tnb::rx {

/// One detected packet, in receiver-grid coordinates.
struct DetectedPacket {
  double t0 = 0.0;          ///< packet start (fractional receiver sample)
  double cfo_cycles = 0.0;  ///< CFO in cycles per symbol
  double strength = 0.0;    ///< mean preamble peak power (detection score)
  int validation_score = 0; ///< how many of the 12 step-2 checks passed
};

struct DetectorOptions {
  /// A signal-vector peak qualifies as a preamble candidate only if it is
  /// at least this many times the vector's median (noise floor proxy).
  double peak_floor_ratio = 8.0;
  /// Minimum consecutive windows with a matching peak to call a preamble.
  std::size_t min_run = 5;
  /// Maximum |CFO| in cycles per symbol used to resolve the (x1+x2)/2
  /// half-period ambiguity. Defaults to the +/-4.88 kHz bound of the paper.
  double max_cfo_cycles = 0.0;  ///< 0 = derive from 4.88 kHz and params
  /// Minimum step-2 validation checks (out of 12) to accept a preamble.
  int min_validation_score = 8;
  /// Maximum peaks examined per detection window.
  std::size_t max_peaks_per_window = 12;
};

class Detector {
 public:
  Detector(lora::Params params, DetectorOptions opt = {});

  /// Detects all preambles in `trace`. Results are coarse (integer-sample
  /// timing, integer-bin CFO with interpolation refinement); feed them to
  /// FracSync for the paper's step-4 refinement. Sorted by t0. `ws`
  /// supplies all demodulation scratch (general slot 0 and SV slot 0 are
  /// clobbered); the overload without one uses a per-thread workspace.
  std::vector<DetectedPacket> detect(std::span<const cfloat> trace,
                                     lora::Workspace& ws) const;
  std::vector<DetectedPacket> detect(std::span<const cfloat> trace) const;

 private:
  struct Candidate {
    std::size_t first_window = 0;
    std::size_t run_len = 0;
    double x1 = 0.0;  ///< interpolated upchirp peak location (bins)
    double mean_power = 0.0;
  };

  std::vector<Candidate> find_runs(std::span<const cfloat> trace,
                                   lora::Workspace& ws) const;

  /// Steps 2+3 for one candidate; returns validated packets (possibly none).
  void resolve_candidate(std::span<const cfloat> trace, const Candidate& cand,
                         lora::Workspace& ws,
                         std::vector<DetectedPacket>& out) const;

  /// Folded energy near `bin` (max over bin-1..bin+1, cyclic) of the signal
  /// vector of the window starting at `start`, relative to the vector
  /// median. `up` selects the dechirp reference.
  double relative_energy_at(std::span<const cfloat> trace, double start,
                            double cfo_cycles, std::size_t bin, bool up,
                            lora::Workspace& ws) const;

  lora::Params p_;
  DetectorOptions opt_;
  lora::Demodulator demod_;
};

}  // namespace tnb::rx
