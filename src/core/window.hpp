// Fractional-sample window extraction from a trace.
#pragma once

#include <cstddef>
#include <span>

#include "common/types.hpp"

namespace tnb::rx {

/// Copies `out.size()` samples starting at the (possibly fractional)
/// position `start` of `trace` into `out`, using linear interpolation for
/// the sub-sample offset. Samples outside the trace read as zero, so
/// windows at the trace edges are implicitly zero-padded.
void extract_window(std::span<const cfloat> trace, double start,
                    std::span<cfloat> out);

}  // namespace tnb::rx
