// Closed-form decoding-error analysis of BEC (paper Appendix A.7).
//
// Under the independence assumption (each bit of an error column flips with
// probability 1/2), the probability that exactly x distinct error
// combinations appear across the SF rows follows the recursion
//   Psi_x = (x/8)^SF - sum_{y<x} C(x,y) Psi_y,
// and Lemma 4 gives the CR-4 three-error-column decoding error probability
//   Psi_1 + 7 Psi_2 + 9 Psi_3 + 3 Psi_4 + 2^-SF.
#pragma once

#include <vector>

namespace tnb::rx {

/// Psi_x for x = 1..max_x at the given SF (index 0 unused).
std::vector<double> bec_psi(unsigned sf, unsigned max_x);

/// Lemma 4: decoding error probability of CR 4 with 3 error columns.
double bec_cr4_3col_error_probability(unsigned sf);

/// Appendix A.5: CR 3 with 2 error columns fails with probability 2^-SF.
double bec_cr3_2col_error_probability(unsigned sf);

}  // namespace tnb::rx
