// Block Error Correction (paper Section 6, Appendix A).
//
// LoRa arranges codewords in SF x (4+CR) blocks where one corrupted symbol
// corrupts one *column*. BEC decodes the block jointly: it diffs the
// received block R against the per-row nearest-codeword "cleaned" block
// Gamma, reads off the set Xi of single-difference columns (each is a true
// error column or the *companion* of the true error columns — the column
// the default decoder wrongly flips), and repairs R under every plausible
// hypothesis for the true error columns. The packet-level CRC arbitrates
// among the resulting BEC-fixed blocks.
//
// Repair methods (paper 6.3): Delta' (CR 1 checksum rewrite), Delta_1
// (mask a column set, re-match rows), Delta_2 (flip one known column, allow
// one consistent mismatch column), Delta_3 (flip two columns, exact match).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "lora/header.hpp"
#include "lora/params.hpp"

namespace tnb::rx {

/// Instrumentation counters (Table 2, Fig. 16).
struct BecStats {
  std::size_t delta_prime = 0;  ///< Delta' applications
  std::size_t delta1 = 0;       ///< Delta_1 applications (incl. failed)
  std::size_t delta2 = 0;
  std::size_t delta3 = 0;
  std::size_t crc_checks = 0;        ///< packet-level CRC evaluations
  std::size_t blocks_no_repair = 0;  ///< blocks returned as Gamma only
  std::size_t candidate_blocks = 0;  ///< BEC-fixed blocks produced

  BecStats& operator+=(const BecStats& o);
};

/// Joint decoder for one SF x (4+CR) code block.
class Bec {
 public:
  /// Paper codebook (lora::codewords) for the given coding rate.
  Bec(unsigned sf, unsigned cr);

  /// Custom linear codebook: `codebook[d]` is the (4+cr)-bit codeword of
  /// data nibble d. The column error model is codebook-agnostic — the wire
  /// codec passes its column-major (bit-reversed) codewords here so BEC
  /// repairs gr-lora-sdr blocks too. The minimum distance is derived from
  /// the codebook (minimum nonzero codeword weight; the code is linear).
  Bec(unsigned sf, unsigned cr, const std::array<std::uint8_t, 16>& codebook);

  unsigned sf() const { return sf_; }
  unsigned cr() const { return cr_; }

  /// Candidate decodings of a received block (`rows.size() == sf`, each row
  /// 4+CR bits). The first candidate is always the default-decoder cleaned
  /// block; further candidates are BEC-fixed blocks in repair order.
  /// Candidates are deduplicated.
  std::vector<std::vector<std::uint8_t>> decode_block(
      std::span<const std::uint8_t> rows, BecStats* stats = nullptr) const;

  /// Companions of the column set `mask` (paper A.1): every column set that
  /// completes `mask` to a minimum-weight codeword. |mask| must be below
  /// the code's minimum distance.
  std::vector<std::uint8_t> companions(std::uint8_t mask) const;

 private:
  std::vector<std::vector<std::uint8_t>> decode_cr1(
      std::span<const std::uint8_t> rows, BecStats* stats) const;

  /// Delta_1: mask the columns in `mask`, re-match every row against the
  /// codebook. Returns the repaired rows or nullopt.
  std::optional<std::vector<std::uint8_t>> delta1(
      std::span<const std::uint8_t> rows, std::uint8_t mask,
      BecStats* stats) const;

  /// Delta_2: flip column `k1` in the weight-2-difference rows; each must
  /// land at distance exactly 1 from a codeword, all with the same
  /// mismatch column. Returns repaired rows or nullopt.
  std::optional<std::vector<std::uint8_t>> delta2(
      std::span<const std::uint8_t> rows,
      std::span<const std::uint8_t> gamma,
      std::span<const unsigned> diff_weight, unsigned k1,
      BecStats* stats) const;

  /// Delta_2 scan used for 3-column discovery: the distinct mismatch
  /// columns of the weight-2 rows after flipping `k1` (empty = some row has
  /// no distance-1 codeword).
  std::vector<unsigned> delta2_mismatch_columns(
      std::span<const std::uint8_t> rows,
      std::span<const std::uint8_t> gamma,
      std::span<const unsigned> diff_weight, unsigned k1) const;

  /// Delta_3: flip columns `k1`,`k2` in weight-2 rows; each must equal a
  /// codeword exactly.
  std::optional<std::vector<std::uint8_t>> delta3(
      std::span<const std::uint8_t> rows,
      std::span<const unsigned> diff_weight, unsigned k1, unsigned k2,
      BecStats* stats) const;

  /// Nearest codeword to `row` under the codebook (Hamming distance, first
  /// strictly-smaller match wins — identical tie-break to
  /// lora::default_decode, which keeps the paper path byte-identical).
  std::uint8_t nearest(std::uint8_t row) const;

  unsigned sf_;
  unsigned cr_;
  unsigned n_cols_;
  unsigned dmin_;
  std::array<std::uint8_t, 16> book_;
};

/// CRC budget W per coding rate (paper 6.9): 125 for CR 1, 16 otherwise.
std::size_t bec_w_budget(unsigned cr);

struct BecPacketResult {
  bool ok = false;
  std::vector<std::uint8_t> payload;  ///< dewhitened bytes incl. CRC16
  std::size_t rescued_codewords = 0;  ///< rows decoded differently (and
                                      ///< correctly) than the default decoder
};

/// Decodes payload symbols with BEC: per-block candidates, packet assembly
/// under the W budget, packet CRC arbitration. `w_override` replaces the
/// CR-dependent default budget (paper 6.9 notes that W=25 at CR 1 loses
/// under 5% of packets; the ablation bench measures this).
BecPacketResult decode_payload_bec(const lora::Params& p,
                                   std::span<const std::uint32_t> symbols,
                                   std::size_t payload_len, Rng& rng,
                                   BecStats* stats = nullptr,
                                   std::size_t w_override = 0);

/// Decodes the 8 header symbols with BEC (CR 4 block); the header checksum
/// arbitrates among candidates.
std::optional<lora::Header> decode_header_bec(
    const lora::Params& p, std::span<const std::uint32_t> header_symbols,
    BecStats* stats = nullptr);

}  // namespace tnb::rx
