#include "core/snr.hpp"

#include <cmath>

#include "common/math_util.hpp"
#include "dsp/smoother.hpp"

namespace tnb::rx {

double estimate_snr_db(const PacketContext& ctx, const SigCalc& sig) {
  const lora::Params& p = sig.params();
  const double sps = static_cast<double>(p.sps());

  // Median peak across the 8 preamble upchirps resists collisions hitting
  // part of the preamble.
  std::vector<double> heights = sig.preamble_heights(ctx);
  const double peak = dsp::median_of(heights);

  // Noise floor: median over the bins of one preamble signal vector,
  // excluding the peak's neighbourhood implicitly (one bin of 2^SF barely
  // moves a median), corrected from median to mean of the exponential.
  const SignalVector sv =
      sig.vector_at(ctx.t0(), ctx.cfo_cycles(), /*up=*/true);
  std::vector<double> bins(sv.begin(), sv.end());
  const double noise_median = dsp::median_of(bins);
  const double noise_mean = noise_median / std::log(2.0);
  if (noise_mean <= 0.0 || peak <= 0.0) return 60.0;  // noiseless trace

  const double n_bins = sps / static_cast<double>(p.osf);
  const double snr = peak / (noise_mean * n_bins);
  return linear_to_db(std::max(snr, 1e-6));
}

}  // namespace tnb::rx
