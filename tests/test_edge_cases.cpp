// Edge-of-envelope coverage: extreme payload sizes, smallest/largest SF,
// slow-fading end-to-end, and frame arithmetic corners.
#include <gtest/gtest.h>

#include "channel/fading.hpp"
#include "common/rng.hpp"
#include "core/receiver.hpp"
#include "lora/demodulator.hpp"
#include "lora/frame.hpp"
#include "lora/modulator.hpp"
#include "sim/metrics.hpp"
#include "sim/trace_builder.hpp"

namespace tnb {
namespace {

class PayloadSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PayloadSize, FrameRoundTripAnySize) {
  const std::size_t bytes = GetParam();
  lora::Params p{.sf = 9, .cr = 2, .bandwidth_hz = 125e3, .osf = 1};
  Rng rng(bytes);
  std::vector<std::uint8_t> app(bytes);
  for (auto& b : app) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  const auto symbols = lora::make_packet_symbols(p, app);
  const auto hdr = lora::decode_header_default(
      p, std::span<const std::uint32_t>(symbols).first(lora::kHeaderSymbols));
  ASSERT_TRUE(hdr.has_value());
  EXPECT_EQ(hdr->payload_len, bytes + 2);
  const auto payload = lora::decode_payload_default(
      p, std::span<const std::uint32_t>(symbols).subspan(lora::kHeaderSymbols),
      hdr->payload_len);
  ASSERT_TRUE(payload.has_value());
  EXPECT_TRUE(std::equal(app.begin(), app.end(), payload->begin()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PayloadSize,
                         ::testing::Values(1u, 2u, 15u, 16u, 64u, 128u, 253u));

TEST(EdgeCases, Sf6SmallestFrame) {
  lora::Params p{.sf = 6, .cr = 4, .bandwidth_hz = 125e3, .osf = 1};
  std::vector<std::uint8_t> app{0xAA};
  const auto symbols = lora::make_packet_symbols(p, app);
  // Header block (8) + ceil(6 nibbles / 6) * 8.
  EXPECT_EQ(symbols.size(), lora::num_packet_symbols(p, 3));
  for (std::uint32_t s : symbols) EXPECT_LT(s, 64u);
}

TEST(EdgeCases, Sf12ModemRoundTrip) {
  lora::Params p{.sf = 12, .cr = 1, .bandwidth_hz = 125e3, .osf = 1};
  lora::Modulator mod(p);
  lora::Demodulator demod(p);
  std::vector<std::uint8_t> app(14, 0xC3);
  const auto symbols = lora::make_packet_symbols(p, app);
  const IqBuffer pkt = mod.synthesize(symbols);
  const std::size_t start = static_cast<std::size_t>(12.25 * p.sps());
  for (std::size_t s = 0; s < symbols.size(); ++s) {
    EXPECT_EQ(demod.demod_value(
                  std::span<const cfloat>(pkt).subspan(start + s * p.sps(),
                                                       p.sps()),
                  0.0),
              symbols[s]);
  }
}

TEST(EdgeCases, SlowFadingEndToEnd) {
  // Gentle amplitude fluctuation (the paper's Fig. 6 behaviour): the
  // history cost must track it, not fight it.
  lora::Params p{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 4};
  chan::SlowFlatFadingChannel fading(0.3, 0.01);
  Rng rng(5);
  sim::TraceOptions opt;
  opt.duration_s = 2.0;
  opt.load_pps = 6.0;
  opt.nodes = {{1, 18.0, 900.0}, {2, 14.0, -2100.0}};
  opt.channel = &fading;
  const sim::Trace trace = sim::build_trace(p, opt, rng);
  rx::Receiver receiver(p);
  Rng rx_rng(6);
  const auto result = sim::evaluate(trace, receiver.decode(trace.iq, rx_rng));
  EXPECT_GE(result.prr, 0.7) << result.decoded_unique << "/" << result.transmitted;
}

TEST(EdgeCases, MinimumOsfOne) {
  lora::Params p{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 1};
  Rng rng(7);
  sim::TraceOptions opt;
  opt.duration_s = 1.0;
  opt.load_pps = 2.0;
  opt.nodes = {{1, 20.0, 400.0}};
  const sim::Trace trace = sim::build_trace(p, opt, rng);
  rx::Receiver receiver(p);
  Rng rx_rng(8);
  const auto result = sim::evaluate(trace, receiver.decode(trace.iq, rx_rng));
  EXPECT_EQ(result.decoded_unique, result.transmitted);
}

TEST(EdgeCases, NumSymbolsMonotoneInPayload) {
  lora::Params p{.sf = 10, .cr = 3};
  std::size_t prev = 0;
  for (std::size_t bytes = 1; bytes <= 64; ++bytes) {
    const std::size_t n = lora::num_payload_symbols(p, bytes);
    EXPECT_GE(n, prev);
    EXPECT_EQ(n % p.codeword_len(), 0u);
    prev = n;
  }
}

}  // namespace
}  // namespace tnb
