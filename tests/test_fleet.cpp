// tnb::fleet differential lane equivalence: fleet decode of an N-channel
// composite must be packet-identical, per channel, to N independent
// one-shot Receiver::decode runs on the same channelized streams — for
// every lane count and every wideband chunk size — and the merged ledger
// must come out in one deterministic order regardless of scheduling.
// This binary also runs under the thread-sanitizer CI job.
#include "fleet/fleet.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/receiver.hpp"
#include "fleet/channelizer.hpp"
#include "sim/trace_builder.hpp"
#include "stream/chunk_source.hpp"

namespace tnb::fleet {
namespace {

// osf 2 keeps the FFTs small enough for many-lane tests (same trade as
// test_streaming / test_concurrency).
lora::Params test_params(unsigned sf = 8) {
  return {.sf = sf, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
}

sim::TraceOptions traffic(double duration_s, double load_pps) {
  sim::TraceOptions opt;
  opt.duration_s = duration_s;
  opt.load_pps = load_pps;
  opt.nodes = {{1, 20.0, 900.0}, {2, 15.0, -1800.0}, {3, 12.0, 400.0}};
  return opt;
}

/// The composite stimulus plus its channelized per-channel ground truth.
struct Composite {
  IqBuffer wideband;
  std::vector<IqBuffer> channels;  ///< offline taps == 1 channelizer output
};

Composite make_composite(const std::vector<IqBuffer>& per_channel,
                         unsigned n_channels) {
  Composite c;
  c.wideband = mix_channels(per_channel, n_channels);
  Channelizer chan({.n_channels = n_channels, .taps = 1});
  c.channels.resize(n_channels);
  chan.push(c.wideband, c.channels);
  return c;
}

std::vector<std::vector<std::uint8_t>> payload_multiset(
    const std::vector<sim::DecodedPacket>& pkts) {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(pkts.size());
  for (const auto& p : pkts) out.push_back(p.payload);
  std::sort(out.begin(), out.end());
  return out;
}

/// Ledger entries of one (channel, sf) lane as a decoded packet list.
std::vector<sim::DecodedPacket> lane_packets(
    const std::vector<LedgerEntry>& ledger, unsigned channel, unsigned sf) {
  std::vector<sim::DecodedPacket> out;
  for (const auto& e : ledger) {
    if (e.channel == channel && e.sf == sf) out.push_back(e.pkt);
  }
  return out;
}

TEST(Fleet, DifferentialLaneEquivalence) {
  // N = 4 channels of independent collided traffic, J in {1, 2, 8}
  // workers, three wideband chunkings (sub-block odd, bulk, whole trace).
  const lora::Params p = test_params();
  const unsigned n_channels = 4;
  Rng rng(42);
  const auto traces = sim::build_multichannel_traces(
      p, traffic(1.5, 8.0), n_channels, rng);
  std::vector<IqBuffer> per_channel;
  for (const auto& t : traces) per_channel.push_back(t.iq);
  const Composite comp = make_composite(per_channel, n_channels);

  // Ground truth: N independent one-shot decodes of the channelized
  // streams (the headline claim's right-hand side).
  rx::Receiver oneshot(p);
  std::vector<std::vector<sim::DecodedPacket>> reference(n_channels);
  std::size_t total_ref = 0;
  for (unsigned c = 0; c < n_channels; ++c) {
    Rng drng(1);
    reference[c] = oneshot.decode(comp.channels[c], drng);
    total_ref += reference[c].size();
  }
  ASSERT_GE(total_ref, 3u) << "composite too quiet to be a meaningful test";

  for (const int lanes : {1, 2, 8}) {
    for (const std::size_t chunk :
         {std::size_t{999}, std::size_t{65536}, comp.wideband.size()}) {
      SCOPED_TRACE("lanes=" + std::to_string(lanes) +
                   " chunk=" + std::to_string(chunk));
      FleetOptions fopt;
      fopt.n_channels = n_channels;
      fopt.sfs = {p.sf};
      fopt.lanes = lanes;
      fopt.stream.window_symbols = 512;
      fopt.stream.rng_seed = 1;
      Fleet fleet(p, fopt);
      stream::BufferSource src(comp.wideband);
      EXPECT_EQ(fleet.consume(src, chunk), comp.wideband.size());

      const auto& ledger = fleet.ledger();
      for (unsigned c = 0; c < n_channels; ++c) {
        const auto got = lane_packets(ledger, c, p.sf);
        EXPECT_EQ(payload_multiset(got), payload_multiset(reference[c]))
            << "channel " << c;
        // t0 is trace-global on the shared per-channel clock.
        std::vector<double> got_t0, want_t0;
        for (const auto& pkt : got) got_t0.push_back(pkt.start_sample);
        for (const auto& pkt : reference[c]) {
          want_t0.push_back(pkt.start_sample);
        }
        std::sort(got_t0.begin(), got_t0.end());
        std::sort(want_t0.begin(), want_t0.end());
        ASSERT_EQ(got_t0.size(), want_t0.size());
        for (std::size_t i = 0; i < got_t0.size(); ++i) {
          EXPECT_NEAR(got_t0[i], want_t0[i], 1.0);
        }
      }

      // The equivalence property stands on clean cuts only.
      const FleetStats st = fleet.stats();
      ASSERT_EQ(st.lane_stats.size(), n_channels);
      const std::size_t blocks = comp.wideband.size() / n_channels;
      for (const auto& [info, lane_st] : st.lane_stats) {
        EXPECT_EQ(lane_st.forced_cuts, 0u);
        EXPECT_EQ(lane_st.samples_in, blocks);
        EXPECT_EQ(lane_st.samples_retired, blocks);
      }
      EXPECT_EQ(st.wideband_samples_in, comp.wideband.size());
      EXPECT_EQ(st.wideband_blocks, blocks);
      EXPECT_EQ(st.packets, ledger.size());
      EXPECT_EQ(st.resident_iq_samples, 0u);
      EXPECT_LE(st.resident_iq_high_water, st.resident_iq_bound);
    }
  }
}

TEST(Fleet, WideSfMatrixAcrossEightChannels) {
  // N = 8 channels, each carrying traffic at its own SF out of 7..12, and
  // a lane bank listening at every SF on every channel (48 lanes). Every
  // lane must reproduce its channelized one-shot reference — the lanes
  // whose SF does not match their channel's traffic included.
  const std::vector<unsigned> sfs = {7, 8, 9, 10, 11, 12};
  // Traffic sits at SF 7..10 — an SF 11/12 packet would not fit the short
  // trace — but the SF 11/12 lanes still run and must agree with their
  // (empty or false-detection) references.
  const auto traffic_sf = [](unsigned c) { return 7 + c % 4; };
  const unsigned n_channels = 8;
  Rng rng(77);
  std::vector<IqBuffer> per_channel(n_channels);
  for (unsigned c = 0; c < n_channels; ++c) {
    const lora::Params pc = test_params(traffic_sf(c));
    sim::TraceOptions topt = traffic(1.0, 5.0);
    for (auto& node : topt.nodes) {
      node.id = static_cast<std::uint16_t>(node.id + c * 1000);
    }
    per_channel[c] = sim::build_trace(pc, topt, rng).iq;
  }
  const Composite comp = make_composite(per_channel, n_channels);

  FleetOptions fopt;
  fopt.n_channels = n_channels;
  fopt.sfs = sfs;
  fopt.lanes = 8;
  fopt.stream.rng_seed = 1;
  Fleet fleet(test_params(), fopt);
  stream::BufferSource src(comp.wideband);
  fleet.consume(src, 65536);
  const auto& ledger = fleet.ledger();
  EXPECT_GE(ledger.size(), n_channels) << "matrix decoded almost nothing";

  std::size_t matched_lanes_with_packets = 0;
  for (unsigned c = 0; c < n_channels; ++c) {
    for (unsigned sf : sfs) {
      SCOPED_TRACE("channel=" + std::to_string(c) + " sf=" + std::to_string(sf));
      rx::Receiver oneshot(test_params(sf));
      Rng drng(1);
      const auto reference = oneshot.decode(comp.channels[c], drng);
      const auto got = lane_packets(ledger, c, sf);
      EXPECT_EQ(payload_multiset(got), payload_multiset(reference));
      if (sf == traffic_sf(c) && !reference.empty()) {
        ++matched_lanes_with_packets;
      }
    }
  }
  EXPECT_GE(matched_lanes_with_packets, n_channels / 2)
      << "too few matching-SF lanes decoded traffic to be meaningful";
}

TEST(Fleet, LedgerOrderIsDeterministicAcrossSchedules) {
  const lora::Params p = test_params();
  const unsigned n_channels = 4;
  Rng rng(42);
  const auto traces = sim::build_multichannel_traces(
      p, traffic(1.2, 8.0), n_channels, rng);
  std::vector<IqBuffer> per_channel;
  for (const auto& t : traces) per_channel.push_back(t.iq);
  const Composite comp = make_composite(per_channel, n_channels);

  struct Run {
    int lanes;
    std::size_t chunk;
  };
  std::vector<std::vector<LedgerEntry>> ledgers;
  for (const Run r : {Run{1, 65536}, Run{2, 999}, Run{8, 4096}}) {
    FleetOptions fopt;
    fopt.n_channels = n_channels;
    fopt.sfs = {p.sf};
    fopt.lanes = r.lanes;
    fopt.stream.rng_seed = 1;
    Fleet fleet(p, fopt);
    stream::BufferSource src(comp.wideband);
    fleet.consume(src, r.chunk);
    ledgers.push_back(fleet.ledger());
  }
  ASSERT_GE(ledgers[0].size(), 3u);
  for (std::size_t i = 1; i < ledgers.size(); ++i) {
    ASSERT_EQ(ledgers[i].size(), ledgers[0].size());
    for (std::size_t j = 0; j < ledgers[0].size(); ++j) {
      EXPECT_EQ(ledgers[i][j].channel, ledgers[0][j].channel);
      EXPECT_EQ(ledgers[i][j].sf, ledgers[0][j].sf);
      EXPECT_EQ(ledgers[i][j].t0, ledgers[0][j].t0);
      EXPECT_EQ(ledgers[i][j].pkt.payload, ledgers[0][j].pkt.payload);
    }
  }
  // Canonical order: sorted by (t0, channel), lane tag matches the
  // channel-major lane layout.
  const auto& led = ledgers[0];
  for (std::size_t j = 0; j + 1 < led.size(); ++j) {
    EXPECT_FALSE(ledger_entry_less(led[j + 1], led[j])) << "entry " << j;
  }
  for (const auto& e : led) EXPECT_EQ(e.lane, e.channel);  // one SF per channel
}

TEST(Fleet, FleetOfOneMatchesStreamingReceiver) {
  // N = 1 degenerates to a passthrough channelizer: the single lane must
  // behave exactly like a standalone StreamingReceiver on the raw trace.
  const lora::Params p = test_params();
  Rng rng(7);
  const sim::Trace trace = sim::build_trace(p, traffic(1.5, 10.0), rng);

  stream::StreamingOptions sopt;
  sopt.window_symbols = 512;
  sopt.rng_seed = 1;
  stream::StreamingReceiver srx(p, {}, sopt);
  stream::BufferSource ssrc(trace.iq);
  srx.consume(ssrc, 4096);
  ASSERT_GE(srx.packets().size(), 2u);

  FleetOptions fopt;
  fopt.n_channels = 1;
  fopt.sfs = {p.sf};
  fopt.lanes = 2;  // more workers than lanes: clamped, still correct
  fopt.stream = sopt;
  Fleet fleet(p, fopt);
  stream::BufferSource fsrc(trace.iq);
  fleet.consume(fsrc, 4096);

  std::vector<sim::DecodedPacket> got;
  for (const auto& e : fleet.ledger()) {
    EXPECT_EQ(e.channel, 0u);
    EXPECT_EQ(e.sf, p.sf);
    EXPECT_EQ(e.t0, e.pkt.start_sample);
    got.push_back(e.pkt);
  }
  EXPECT_EQ(payload_multiset(got), payload_multiset(srx.packets()));
}

TEST(Fleet, LifecycleAndAccounting) {
  const lora::Params p = test_params();
  FleetOptions fopt;
  fopt.n_channels = 2;
  fopt.sfs = {p.sf};
  fopt.dispatch_samples = 1024;
  Fleet fleet(p, fopt);

  // 2 channels x 100 blocks + a 1-sample sub-block tail.
  const IqBuffer wideband(2 * 100 + 1, cfloat{0.01f, 0.0f});
  fleet.push_wideband(wideband);
  EXPECT_THROW(fleet.ledger(), std::logic_error);
  fleet.finish();
  fleet.finish();  // idempotent
  EXPECT_THROW(fleet.push_wideband(wideband), std::logic_error);
  EXPECT_TRUE(fleet.ledger().empty());

  const FleetStats st = fleet.stats();
  EXPECT_EQ(st.wideband_samples_in, wideband.size());
  EXPECT_EQ(st.wideband_blocks, 100u);
  EXPECT_EQ(st.partial_tail_samples, 1u);
  EXPECT_EQ(st.chunks_dispatched, 2u);  // one short chunk per lane at EOF
  EXPECT_EQ(st.resident_iq_samples, 0u);
  ASSERT_EQ(st.lane_stats.size(), 2u);
  for (const auto& [info, lane_st] : st.lane_stats) {
    EXPECT_EQ(lane_st.samples_in, 100u);
    EXPECT_EQ(info.sf, p.sf);
  }

  FleetOptions bad;
  bad.n_channels = 2;
  bad.sfs.clear();
  EXPECT_THROW(Fleet(p, bad), std::invalid_argument);
  bad = FleetOptions{};
  bad.n_channels = 3;  // not a power of two
  EXPECT_THROW(Fleet(p, bad), std::invalid_argument);
}

}  // namespace
}  // namespace tnb::fleet
