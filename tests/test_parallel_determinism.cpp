// Parallel-execution determinism: run_repeated / run_grid must produce
// bit-identical Series.values for every jobs value — same seed derivation
// per (scenario, run) and results written to pre-sized slots, so worker
// scheduling can never reorder or perturb the output.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/factories.hpp"
#include "core/receiver.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"

namespace tnb::sim {
namespace {

Scenario light_scenario() {
  Scenario sc;
  sc.params = lora::Params{.sf = 7, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
  sc.deployment = indoor_deployment();
  sc.deployment.n_nodes = 3;
  sc.load_pps = 4.0;
  sc.duration_s = 1.0;
  return sc;
}

Scenario heavy_scenario() {
  Scenario sc;
  sc.params = lora::Params{.sf = 8, .cr = 2, .bandwidth_hz = 125e3, .osf = 2};
  sc.deployment = outdoor1_deployment();
  sc.deployment.n_nodes = 4;
  sc.load_pps = 6.0;
  sc.duration_s = 1.0;
  return sc;
}

/// Thread-safe score: full receive pipeline, seeded only by the run index.
double decode_score(const Trace& t, int run) {
  const rx::Receiver receiver(t.params);
  Rng rng(1000 + static_cast<std::uint64_t>(run));
  const auto decoded = receiver.decode(t.iq, rng);
  return static_cast<double>(evaluate(t, decoded).decoded_unique) +
         1e-7 * static_cast<double>(t.packets.size());
}

/// Cheap pure score exercising trace structure only.
double trace_score(const Trace& t, int) {
  double s = static_cast<double>(t.packets.size());
  for (const auto& p : t.packets) {
    s += 1e-9 * static_cast<double>(p.start_sample);
  }
  return s;
}

TEST(ParallelDeterminism, RunRepeatedMatchesSequential) {
  for (const Scenario& sc : {light_scenario(), heavy_scenario()}) {
    for (std::uint64_t seed : {42ull, 1234567ull}) {
      RunReport seq_report, par_report;
      const Series seq = run_repeated(sc, 6, seed, decode_score,
                                      RunOptions{.jobs = 1}, &seq_report);
      const Series par = run_repeated(sc, 6, seed, decode_score,
                                      RunOptions{.jobs = 8}, &par_report);
      EXPECT_EQ(par.values, seq.values);  // bit-exact, same order
      EXPECT_EQ(seq_report.jobs, 1);
      EXPECT_EQ(par_report.jobs, 8);
      EXPECT_EQ(par_report.runs, 6);
      EXPECT_EQ(par_report.run_wall_s.size(), 6u);
      EXPECT_GT(par_report.sequential_s(), 0.0);
    }
  }
}

TEST(ParallelDeterminism, BaselineSchemesMatchSequential) {
  // The new-subsystem schemes (ISSUE 7): CoRa's amplitude decision and the
  // CoRa->TnB hybrid (plus LZn's custom sync front end) must be
  // bit-identical for any jobs value, like every other scheme in the grid.
  for (const base::Scheme scheme :
       {base::Scheme::kCoRa, base::Scheme::kCoRaTnB,
        base::Scheme::kLZnThrive}) {
    const auto score = [scheme](const Trace& t, int run) {
      rx::Receiver receiver = base::make_receiver(scheme, t.params);
      Rng rng(1000 + static_cast<std::uint64_t>(run));
      const auto decoded = receiver.decode(t.iq, rng);
      return static_cast<double>(evaluate(t, decoded).decoded_unique) +
             1e-7 * static_cast<double>(t.packets.size());
    };
    const Scenario sc = light_scenario();
    const Series seq =
        run_repeated(sc, 4, 42, score, RunOptions{.jobs = 1});
    const Series par =
        run_repeated(sc, 4, 42, score, RunOptions{.jobs = 8});
    EXPECT_EQ(par.values, seq.values)
        << base::scheme_name(scheme) << " not jobs-deterministic";
  }
}

TEST(ParallelDeterminism, LegacyOverloadUnchanged) {
  // The historical 4-argument form is the jobs=1 path: same seeds, same
  // values as before the pool existed.
  const Scenario sc = light_scenario();
  const Series legacy = run_repeated(sc, 4, 7, trace_score);
  const Series par =
      run_repeated(sc, 4, 7, trace_score, RunOptions{.jobs = 8});
  EXPECT_EQ(legacy.values, par.values);
}

TEST(ParallelDeterminism, RunGridMatchesSequentialAcrossScenarios) {
  const std::vector<Scenario> grid = {light_scenario(), heavy_scenario()};
  auto score = [](const Trace& t, int scenario, int run) {
    return trace_score(t, run) + 1000.0 * scenario;
  };
  for (std::uint64_t seed : {42ull, 99ull}) {
    const auto seq =
        run_grid(grid, 5, seed, score, RunOptions{.jobs = 1});
    const auto par =
        run_grid(grid, 5, seed, score, RunOptions{.jobs = 8});
    ASSERT_EQ(seq.size(), 2u);
    ASSERT_EQ(par.size(), 2u);
    for (std::size_t s = 0; s < grid.size(); ++s) {
      EXPECT_EQ(par[s].values, seq[s].values);
    }
  }
}

TEST(ParallelDeterminism, GridScenarioZeroMatchesRunRepeated) {
  // run_grid's scenario-0 seed derivation is the run_repeated derivation,
  // so a 1-scenario grid is exactly a repeated run.
  const std::vector<Scenario> grid = {light_scenario()};
  const Series repeated = run_repeated(light_scenario(), 3, 11, trace_score);
  const auto as_grid = run_grid(
      grid, 3, 11, [](const Trace& t, int, int run) {
        return trace_score(t, run);
      });
  EXPECT_EQ(as_grid.front().values, repeated.values);
}

TEST(ParallelDeterminism, GridValidatesArguments) {
  const std::vector<Scenario> grid = {light_scenario()};
  EXPECT_THROW(run_grid(grid, 0, 1,
                        [](const Trace&, int, int) { return 0.0; }),
               std::invalid_argument);
  EXPECT_THROW(run_grid(std::span<const Scenario>{}, 1, 1,
                        [](const Trace&, int, int) { return 0.0; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace tnb::sim
