#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <numeric>

#include "common/rng.hpp"
#include "lora/crc.hpp"
#include "lora/frame.hpp"
#include "lora/gray.hpp"
#include "lora/header.hpp"
#include "lora/interleaver.hpp"
#include "lora/whitening.hpp"

namespace tnb::lora {
namespace {

TEST(Gray, RoundTrip) {
  for (std::uint32_t x = 0; x < 4096; ++x) {
    EXPECT_EQ(gray_decode(gray_encode(x)), x);
    EXPECT_EQ(gray_encode(gray_decode(x)), x);
  }
}

TEST(Gray, AdjacentValuesDifferByOneBit) {
  for (std::uint32_t x = 0; x < 1023; ++x) {
    const std::uint32_t d = gray_encode(x) ^ gray_encode(x + 1);
    EXPECT_EQ(d & (d - 1), 0u);  // power of two -> exactly one bit
    EXPECT_NE(d, 0u);
  }
}

TEST(Gray, ShiftValueMappingInverse) {
  for (std::uint32_t v = 0; v < 1024; ++v) {
    EXPECT_EQ(value_for_shift(shift_for_value(v)), v);
  }
}

TEST(Whitening, IsInvolution) {
  Rng rng(1);
  std::vector<std::uint8_t> data(64);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  std::vector<std::uint8_t> orig = data;
  whiten(data);
  EXPECT_NE(data, orig);  // sequence is nontrivial
  whiten(data);
  EXPECT_EQ(data, orig);
}

TEST(Whitening, SequenceIsDeterministicAndBalanced) {
  auto a = whitening_sequence(512);
  auto b = whitening_sequence(512);
  EXPECT_EQ(a, b);
  // A PN9 sequence is nearly balanced: count ones across bits.
  std::size_t ones = 0;
  for (std::uint8_t byte : a) ones += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(byte)));
  EXPECT_NEAR(static_cast<double>(ones), 512 * 4.0, 512 * 0.5);
}

TEST(Whitening, PrefixConsistency) {
  auto longer = whitening_sequence(100);
  auto shorter = whitening_sequence(10);
  EXPECT_TRUE(std::equal(shorter.begin(), shorter.end(), longer.begin()));
}

class InterleaverRoundTrip
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(InterleaverRoundTrip, Bijective) {
  const auto [sf, cr] = GetParam();
  Rng rng(sf * 10 + cr);
  std::vector<std::uint8_t> rows(sf);
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << (4 + cr)) - 1u);
  for (auto& r : rows) r = static_cast<std::uint8_t>(rng.uniform_index(256)) & mask;
  const auto symbols = interleave_block(rows, sf, cr);
  ASSERT_EQ(symbols.size(), 4 + cr);
  for (std::uint32_t s : symbols) EXPECT_LT(s, 1u << sf);
  const auto back = deinterleave_block(symbols, sf, cr);
  EXPECT_EQ(back, rows);
}

INSTANTIATE_TEST_SUITE_P(
    SfCrGrid, InterleaverRoundTrip,
    ::testing::Combine(::testing::Values(5u, 7u, 8u, 10u, 12u),
                       ::testing::Values(1u, 2u, 3u, 4u)));

TEST(Interleaver, OneSymbolCorruptsOneColumn) {
  // The property BEC depends on: flipping bits of one received symbol
  // changes exactly one column of the deinterleaved block.
  const unsigned sf = 8, cr = 3;
  Rng rng(77);
  std::vector<std::uint8_t> rows(sf);
  for (auto& r : rows) r = static_cast<std::uint8_t>(rng.uniform_index(128));
  auto symbols = interleave_block(rows, sf, cr);
  const unsigned victim = 5;
  symbols[victim] ^= 0xA5 & ((1u << sf) - 1u);  // corrupt symbol 5
  const auto back = deinterleave_block(symbols, sf, cr);
  for (unsigned r = 0; r < sf; ++r) {
    const std::uint8_t diff = back[r] ^ rows[r];
    EXPECT_EQ(diff & static_cast<std::uint8_t>(~(1u << victim)), 0)
        << "row " << r << " differs outside column " << victim;
  }
}

TEST(Interleaver, SizeValidation) {
  std::vector<std::uint8_t> rows(7);
  EXPECT_THROW(interleave_block(rows, 8, 4), std::invalid_argument);
  std::vector<std::uint32_t> syms(7);
  EXPECT_THROW(deinterleave_block(syms, 8, 4), std::invalid_argument);
}

TEST(Crc16, KnownVector) {
  // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
  const std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16(msg), 0x29B1);
}

TEST(Crc16, DetectsSingleBitFlip) {
  Rng rng(9);
  std::vector<std::uint8_t> msg(32);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  const std::uint16_t good = crc16(msg);
  for (std::size_t byte = 0; byte < msg.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      msg[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc16(msg), good);
      msg[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

TEST(HeaderChecksum, SensitiveToEveryField) {
  const std::uint8_t base = header_checksum(16, 3, true);
  EXPECT_NE(header_checksum(17, 3, true), base);
  EXPECT_NE(header_checksum(16, 4, true), base);
  EXPECT_NE(header_checksum(16, 3, false), base);
}

TEST(Header, NibbleRoundTrip) {
  for (unsigned sf : {5u, 7u, 8u, 10u, 12u}) {
    for (unsigned cr = 1; cr <= 4; ++cr) {
      Header h{.payload_len = 16, .cr = static_cast<std::uint8_t>(cr), .has_crc = true};
      const auto nibbles = header_to_nibbles(h, sf);
      ASSERT_EQ(nibbles.size(), sf);
      const auto parsed = header_from_nibbles(nibbles);
      ASSERT_TRUE(parsed.has_value());
      EXPECT_EQ(*parsed, h);
    }
  }
}

TEST(Header, CorruptedChecksumRejected) {
  Header h{.payload_len = 16, .cr = 3, .has_crc = true};
  auto nibbles = header_to_nibbles(h, 8);
  nibbles[0] ^= 0x1;  // corrupt the length field
  EXPECT_FALSE(header_from_nibbles(nibbles).has_value());
}

TEST(Header, NonzeroPaddingRejected) {
  Header h{.payload_len = 16, .cr = 3, .has_crc = true};
  auto nibbles = header_to_nibbles(h, 8);
  nibbles[6] = 0xF;
  EXPECT_FALSE(header_from_nibbles(nibbles).has_value());
}

TEST(Header, SymbolRoundTripThroughDefaultDecode) {
  Params p{.sf = 10, .cr = 2};
  Header h{.payload_len = 18, .cr = 2, .has_crc = true};
  const auto syms = encode_header_symbols(p, h);
  ASSERT_EQ(syms.size(), kHeaderSymbols);
  const auto parsed = decode_header_default(p, syms);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, h);
}

TEST(Frame, NibbleByteRoundTrip) {
  std::vector<std::uint8_t> bytes{0x12, 0xAB, 0xF0, 0x07};
  const auto nibbles = bytes_to_nibbles(bytes);
  ASSERT_EQ(nibbles.size(), 8u);
  EXPECT_EQ(nibbles[0], 0x2);
  EXPECT_EQ(nibbles[1], 0x1);
  EXPECT_EQ(nibbles_to_bytes(nibbles), bytes);
}

TEST(Frame, PayloadBlockCounts) {
  // Paper: a 16-byte packet has 3 to 5 blocks depending on SF.
  EXPECT_EQ(num_payload_blocks(8, 16), 4u);   // 32 nibbles / 8
  EXPECT_EQ(num_payload_blocks(10, 16), 4u);  // ceil(32/10)
  EXPECT_EQ(num_payload_blocks(12, 16), 3u);
  EXPECT_EQ(num_payload_blocks(7, 16), 5u);
}

TEST(Frame, AssembleAndCheckCrc) {
  std::vector<std::uint8_t> app{1, 2, 3, 4, 5};
  auto payload = assemble_payload(app);
  ASSERT_EQ(payload.size(), 7u);
  EXPECT_TRUE(check_payload_crc(payload));
  payload[2] ^= 0x40;
  EXPECT_FALSE(check_payload_crc(payload));
}

TEST(Frame, CheckCrcRejectsTinyInputs) {
  std::vector<std::uint8_t> two{1, 2};
  EXPECT_FALSE(check_payload_crc(two));
}

class FrameRoundTrip : public ::testing::TestWithParam<
                           std::tuple<unsigned, unsigned, bool>> {};

TEST_P(FrameRoundTrip, EncodeDecodeClean) {
  const auto [sf, cr, ldro] = GetParam();
  if (ldro && sf < 8) {
    GTEST_SKIP() << "LDRO needs SF >= 8 (Params::validate)";
  }
  Params p{.sf = sf, .cr = cr, .ldro = ldro};
  p.validate();
  Rng rng(sf * 100 + cr * 10 + (ldro ? 1 : 0));
  std::vector<std::uint8_t> app(14);
  for (auto& b : app) b = static_cast<std::uint8_t>(rng.uniform_index(256));

  const auto symbols = make_packet_symbols(p, app);
  ASSERT_EQ(symbols.size(), num_packet_symbols(p, app.size() + 2));
  for (std::uint32_t s : symbols) EXPECT_LT(s, 1u << p.bits_per_symbol());

  // Header first.
  const auto hdr = decode_header_default(
      p, std::span<const std::uint32_t>(symbols).first(kHeaderSymbols));
  ASSERT_TRUE(hdr.has_value());
  EXPECT_EQ(hdr->payload_len, app.size() + 2);
  EXPECT_EQ(hdr->cr, cr);

  const auto payload = decode_payload_default(
      p, std::span<const std::uint32_t>(symbols).subspan(kHeaderSymbols),
      hdr->payload_len);
  ASSERT_TRUE(payload.has_value());
  ASSERT_EQ(payload->size(), app.size() + 2);
  EXPECT_TRUE(std::equal(app.begin(), app.end(), payload->begin()));
}

// The full supported grid: every SF x CR x LDRO combination (invalid
// LDRO/SF pairs skip themselves above).
INSTANTIATE_TEST_SUITE_P(
    SfCrLdroGrid, FrameRoundTrip,
    ::testing::Combine(::testing::Values(5u, 6u, 7u, 8u, 9u, 10u, 11u, 12u),
                       ::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Bool()));

TEST(Frame, DecodeSurvivesOneBitErrorPerCodewordAtCr4) {
  Params p{.sf = 8, .cr = 4};
  std::vector<std::uint8_t> app(14, 0x5A);
  auto symbols = make_packet_symbols(p, app);
  // Flip one bit in one payload symbol: lands in one column of one block;
  // each affected codeword sees at most 1 bit error, correctable at CR4.
  symbols[kHeaderSymbols + 2] ^= 1u;
  const auto payload = decode_payload_default(
      p, std::span<const std::uint32_t>(symbols).subspan(kHeaderSymbols), 16);
  ASSERT_TRUE(payload.has_value());
}

TEST(Frame, DecodeFailsCrcOnHeavyCorruption) {
  Params p{.sf = 8, .cr = 1};
  std::vector<std::uint8_t> app(14, 0x33);
  auto symbols = make_packet_symbols(p, app);
  for (std::size_t i = kHeaderSymbols; i < symbols.size(); i += 2) {
    symbols[i] ^= 0xFF;
  }
  const auto payload = decode_payload_default(
      p, std::span<const std::uint32_t>(symbols).subspan(kHeaderSymbols), 16);
  EXPECT_FALSE(payload.has_value());
}

TEST(Frame, PayloadTooLongThrows) {
  Params p{.sf = 8, .cr = 4};
  std::vector<std::uint8_t> app(300);
  EXPECT_THROW(make_packet_symbols(p, app), std::invalid_argument);
}

}  // namespace
}  // namespace tnb::lora
