// fleet::Channelizer: the taps == 1 analysis must invert mix_channels
// exactly (to float rounding), output must be invariant to wideband
// chunking, sub-block tails must be sticky, and the taps > 1 prototype
// must buy adjacent-channel rejection — including the DC and band-edge
// channels a real gateway parks traffic on.
#include "fleet/channelizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "common/rng.hpp"
#include "core/receiver.hpp"
#include "sim/trace_builder.hpp"
#include "stream/chunk_source.hpp"

namespace tnb::fleet {
namespace {

lora::Params test_params() {
  return {.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
}

IqBuffer random_iq(std::size_t n, Rng& rng) {
  IqBuffer iq(n);
  for (auto& v : iq) {
    v = {static_cast<float>(rng.uniform() * 2.0 - 1.0),
         static_cast<float>(rng.uniform() * 2.0 - 1.0)};
  }
  return iq;
}

std::vector<IqBuffer> channelize_all(std::span<const cfloat> wideband,
                                     ChannelizerOptions opt,
                                     std::size_t chunk = 0) {
  Channelizer chan(opt);
  std::vector<IqBuffer> out(opt.n_channels);
  if (chunk == 0) {
    chan.push(wideband, out);
  } else {
    for (std::size_t pos = 0; pos < wideband.size(); pos += chunk) {
      chan.push(wideband.subspan(pos, std::min(chunk, wideband.size() - pos)),
                out);
    }
  }
  return out;
}

double channel_power(const IqBuffer& c) {
  double p = 0.0;
  for (const cfloat& v : c) p += std::norm(v);
  return c.empty() ? 0.0 : p / static_cast<double>(c.size());
}

std::vector<std::vector<std::uint8_t>> payload_multiset(
    const std::vector<sim::DecodedPacket>& pkts) {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(pkts.size());
  for (const auto& p : pkts) out.push_back(p.payload);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Channelizer, CenterOffsetsWrapAtNyquist) {
  EXPECT_EQ(channel_center_offset(0, 8), 0.0);
  EXPECT_EQ(channel_center_offset(1, 8), 1.0);
  EXPECT_EQ(channel_center_offset(4, 8), 4.0);   // band edge
  EXPECT_EQ(channel_center_offset(5, 8), -3.0);  // wraps negative
  EXPECT_EQ(channel_center_offset(7, 8), -1.0);
}

TEST(Channelizer, OptionsValidate) {
  EXPECT_THROW(Channelizer({.n_channels = 0}), std::invalid_argument);
  EXPECT_THROW(Channelizer({.n_channels = 6}), std::invalid_argument);
  EXPECT_THROW(Channelizer({.n_channels = 2048}), std::invalid_argument);
  EXPECT_THROW(Channelizer({.n_channels = 8, .taps = 0}),
               std::invalid_argument);
  EXPECT_THROW(Channelizer({.n_channels = 8, .taps = 64}),
               std::invalid_argument);
  EXPECT_NO_THROW(Channelizer({.n_channels = 1, .taps = 1}));
}

TEST(Channelizer, Taps1RoundTripIsExact) {
  Rng rng(3);
  for (unsigned n : {1u, 2u, 8u, 16u}) {
    SCOPED_TRACE("n_channels=" + std::to_string(n));
    std::vector<IqBuffer> channels(n);
    for (auto& c : channels) c = random_iq(257, rng);
    const IqBuffer wideband = mix_channels(channels, n);
    ASSERT_EQ(wideband.size(), 257u * n);

    const auto out = channelize_all(wideband, {.n_channels = n, .taps = 1});
    for (unsigned k = 0; k < n; ++k) {
      ASSERT_EQ(out[k].size(), channels[k].size());
      float worst = 0.0f;
      for (std::size_t m = 0; m < out[k].size(); ++m) {
        worst = std::max(worst, std::abs(out[k][m] - channels[k][m]));
      }
      EXPECT_LT(worst, 1e-4f) << "channel " << k;
    }
  }
}

TEST(Channelizer, OutputInvariantToWidebandChunking) {
  Rng rng(11);
  const IqBuffer wideband = random_iq(8 * 300 + 5, rng);  // sub-block tail
  for (unsigned taps : {1u, 4u}) {
    const ChannelizerOptions opt{.n_channels = 8, .taps = taps};
    const auto whole = channelize_all(wideband, opt);
    for (std::size_t chunk : {1ul, 7ul, 8ul, 1000ul}) {
      SCOPED_TRACE("taps=" + std::to_string(taps) +
                   " chunk=" + std::to_string(chunk));
      const auto chunked = channelize_all(wideband, opt, chunk);
      for (unsigned k = 0; k < 8; ++k) EXPECT_EQ(whole[k], chunked[k]);
    }
  }
}

TEST(Channelizer, SubBlockTailIsStickyAndNeverEmitted) {
  Rng rng(5);
  const IqBuffer wideband = random_iq(8 * 40 + 3, rng);
  Channelizer chan({.n_channels = 8, .taps = 1});
  std::vector<IqBuffer> out(8);
  chan.push(wideband, out);
  EXPECT_EQ(chan.blocks(), 40u);
  EXPECT_EQ(chan.pending_samples(), 3u);
  for (const auto& c : out) EXPECT_EQ(c.size(), 40u);
  // Completing the block flushes it; the tail was held, not dropped early.
  const IqBuffer rest(5, cfloat{1.0f, 0.0f});
  chan.push(rest, out);
  EXPECT_EQ(chan.blocks(), 41u);
  EXPECT_EQ(chan.pending_samples(), 0u);
  for (const auto& c : out) EXPECT_EQ(c.size(), 41u);
}

TEST(Channelizer, WidebandToneSortsIntoItsChannel) {
  // A tone at channel k's center must come out flat in channel k and (for
  // taps == 1, bin-centered) vanish everywhere else.
  const unsigned n = 8;
  for (unsigned k : {0u, 3u, 4u, 7u}) {  // DC, interior, band edge, negative
    SCOPED_TRACE("channel " + std::to_string(k));
    IqBuffer wideband(n * 64);
    for (std::size_t i = 0; i < wideband.size(); ++i) {
      const double ph = 2.0 * std::numbers::pi * k *
                        static_cast<double>(i % n) / static_cast<double>(n);
      wideband[i] = {static_cast<float>(std::cos(ph)),
                     static_cast<float>(std::sin(ph))};
    }
    const auto out = channelize_all(wideband, {.n_channels = n, .taps = 1});
    for (unsigned c = 0; c < n; ++c) {
      const double p = channel_power(out[c]);
      if (c == k) {
        EXPECT_NEAR(p, 1.0, 1e-4);
      } else {
        EXPECT_LT(p, 1e-8);
      }
    }
  }
}

TEST(Channelizer, WindowedPrototypeRejectsAdjacentChannelLeakage) {
  // An off-center tone (inside channel 2's band but away from the bin
  // center) leaks into other channels through the analysis sidelobes. The
  // taps == 4 windowed-sinc prototype must beat the rectangular taps == 1
  // analysis by a clear margin in the non-adjacent channels, and keep
  // leakage there at least 25 dB below the in-channel power.
  const unsigned n = 8;
  const double f = (2.0 + 0.3) / n;  // 0.3 channels off center 2
  IqBuffer wideband(n * 4096);
  for (std::size_t i = 0; i < wideband.size(); ++i) {
    const double ph = 2.0 * std::numbers::pi * f * static_cast<double>(i);
    wideband[i] = {static_cast<float>(std::cos(ph)),
                   static_cast<float>(std::sin(ph))};
  }
  const auto rect = channelize_all(wideband, {.n_channels = n, .taps = 1});
  const auto wind = channelize_all(wideband, {.n_channels = n, .taps = 4});
  const double in_rect = channel_power(rect[2]);
  const double in_wind = channel_power(wind[2]);
  EXPECT_GT(in_wind, 0.25 * in_rect);  // passband survives the window
  double far_rect = 0.0, far_wind = 0.0;
  for (unsigned c = 0; c < n; ++c) {
    if (c == 1 || c == 2 || c == 3) continue;  // skip tone + adjacent
    far_rect = std::max(far_rect, channel_power(rect[c]));
    far_wind = std::max(far_wind, channel_power(wind[c]));
  }
  EXPECT_LT(far_wind, far_rect / 4.0)
      << "windowed prototype no better than rectangular";
  EXPECT_LT(far_wind, in_wind * std::pow(10.0, -25.0 / 10.0));
}

TEST(Channelizer, DecodeOnDcAndEdgeChannelsMatchesOriginal) {
  // End to end at the decode level: packets transmitted on the DC channel
  // and on the band-edge channel (the wrap cases) of an 8-channel
  // composite must decode from the channelized streams exactly as from
  // the original baseband traces.
  const lora::Params p = test_params();
  Rng rng(21);
  sim::TraceOptions topt;
  topt.duration_s = 1.5;
  topt.load_pps = 6.0;
  topt.nodes = {{1, 18.0, 700.0}, {2, 14.0, -1200.0}};
  const unsigned n = 8;
  const sim::Trace dc_trace = sim::build_trace(p, topt, rng);
  const sim::Trace edge_trace = sim::build_trace(p, topt, rng);

  std::vector<IqBuffer> channels(n);
  channels[0] = dc_trace.iq;        // DC
  channels[n / 2] = edge_trace.iq;  // band edge (wraps to -fs*N/2)
  const IqBuffer wideband = mix_channels(channels, n);
  const auto out = channelize_all(wideband, {.n_channels = n, .taps = 1});

  Rng d1(1), d2(1), d3(1), d4(1);
  rx::Receiver rx(p);
  const auto ref_dc = rx.decode(dc_trace.iq, d1);
  const auto got_dc = rx.decode(out[0], d2);
  const auto ref_edge = rx.decode(edge_trace.iq, d3);
  const auto got_edge = rx.decode(out[n / 2], d4);
  ASSERT_GE(ref_dc.size(), 2u) << "DC trace too quiet to be meaningful";
  ASSERT_GE(ref_edge.size(), 2u) << "edge trace too quiet to be meaningful";
  EXPECT_EQ(payload_multiset(got_dc), payload_multiset(ref_dc));
  EXPECT_EQ(payload_multiset(got_edge), payload_multiset(ref_edge));
}

TEST(Channelizer, ChannelSourceDeliversEveryChannel) {
  Rng rng(9);
  const unsigned n = 4;
  std::vector<IqBuffer> channels(n);
  for (auto& c : channels) c = random_iq(1000, rng);
  const IqBuffer wideband = mix_channels(channels, n);

  stream::BufferSource src(wideband);
  ChannelSplitter split(src, {.n_channels = n, .taps = 1}, 777);
  std::vector<ChannelSource> sources;
  sources.reserve(n);
  for (unsigned k = 0; k < n; ++k) sources.emplace_back(split, k);

  // Interleaved draining with uneven chunk sizes across channels.
  std::vector<IqBuffer> got(n);
  IqBuffer chunk;
  bool progress = true;
  while (progress) {
    progress = false;
    for (unsigned k = 0; k < n; ++k) {
      if (sources[k].next(chunk, 100 + 37 * k) > 0) {
        got[k].insert(got[k].end(), chunk.begin(), chunk.end());
        progress = true;
      }
    }
  }
  for (unsigned k = 0; k < n; ++k) {
    ASSERT_EQ(got[k].size(), channels[k].size());
    float worst = 0.0f;
    for (std::size_t m = 0; m < got[k].size(); ++m) {
      worst = std::max(worst, std::abs(got[k][m] - channels[k][m]));
    }
    EXPECT_LT(worst, 1e-4f) << "channel " << k;
    // Sticky end of stream.
    EXPECT_EQ(sources[k].next(chunk, 64), 0u);
  }
}

}  // namespace
}  // namespace tnb::fleet
