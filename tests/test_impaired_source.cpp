// Tests for stream::ImpairedSource — the ChunkSource decorator tnb_streamd
// --impair wraps around its input: stage-state continuity across chunk
// boundaries, the carry buffer's max_samples contract, flush-at-EOF, and
// the construction-time rejection of non-stream stages.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "stream/impaired_source.hpp"

namespace {

using namespace tnb;

lora::Params test_params() {
  return lora::Params{.sf = 7, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
}

/// ChunkSource serving a fixed buffer in caller-controlled chunk sizes.
class VectorSource final : public stream::ChunkSource {
 public:
  explicit VectorSource(IqBuffer data, std::size_t serve = 0)
      : data_(std::move(data)), serve_(serve) {}

  std::size_t next(IqBuffer& out, std::size_t max_samples) override {
    const std::size_t cap = serve_ > 0 ? std::min(serve_, max_samples)
                                       : max_samples;
    const std::size_t n = std::min(cap, data_.size() - pos_);
    out.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
               data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return n;
  }

 private:
  IqBuffer data_;
  std::size_t serve_;
  std::size_t pos_ = 0;
};

IqBuffer random_iq(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  IqBuffer buf(n);
  for (cfloat& v : buf) {
    v = cfloat(static_cast<float>(rng.uniform(-1.0, 1.0)),
               static_cast<float>(rng.uniform(-1.0, 1.0)));
  }
  return buf;
}

IqBuffer drain(stream::ChunkSource& src, std::size_t chunk) {
  IqBuffer all, tmp;
  while (src.next(tmp, chunk) > 0) {
    all.insert(all.end(), tmp.begin(), tmp.end());
  }
  return all;
}

std::vector<impair::ImpairmentConfig> chain(
    std::initializer_list<const char*> specs) {
  std::vector<impair::ImpairmentConfig> out;
  for (const char* s : specs) out.push_back(impair::parse_impairment(s));
  return out;
}

// The output must not depend on how the stream is chunked: stage state
// (the resampler's pending window, the IQ coefficients) carries across
// chunk boundaries.
TEST(ImpairedSource, ChunkingInvariant) {
  const lora::Params params = test_params();
  const IqBuffer data = random_iq(40000, 1);
  const auto configs = chain({"iq_imbalance,gain_db=1,phase_deg=4",
                              "clock_drift,ppm=300", "quantize,bits=10"});
  IqBuffer ref;
  {
    stream::ImpairedSource src(std::make_unique<VectorSource>(data), configs,
                               params, /*seed=*/5);
    ref = drain(src, data.size() + 16);
  }
  EXPECT_FALSE(ref.empty());
  for (std::size_t chunk : {64u, 1000u, 4096u, 9999u}) {
    stream::ImpairedSource src(std::make_unique<VectorSource>(data), configs,
                               params, 5);
    const IqBuffer got = drain(src, chunk);
    EXPECT_TRUE(got == ref) << "chunk=" << chunk;
  }
  // Also invariant in the *inner* source's serving size.
  for (std::size_t serve : {17u, 333u}) {
    stream::ImpairedSource src(
        std::make_unique<VectorSource>(data, serve), configs, params, 5);
    const IqBuffer got = drain(src, 4096);
    EXPECT_TRUE(got == ref) << "serve=" << serve;
  }
}

// next() must never deliver more than max_samples even when a slow-clock
// resampler (ppm < 0) emits more samples than it consumed.
TEST(ImpairedSource, RespectsMaxSamplesWithSlowClock) {
  const lora::Params params = test_params();
  const IqBuffer data = random_iq(30000, 2);
  stream::ImpairedSource src(std::make_unique<VectorSource>(data),
                             chain({"clock_drift,ppm=-5000"}), params, 3);
  IqBuffer tmp, all;
  std::size_t n;
  while ((n = src.next(tmp, 1024)) > 0) {
    EXPECT_LE(n, 1024u);
    EXPECT_EQ(n, tmp.size());
    all.insert(all.end(), tmp.begin(), tmp.end());
  }
  // ppm = -5000 stretches the stream by a factor 1/(1 - 5e-3): more out
  // than in, delivered without violating the budget.
  EXPECT_GT(all.size(), data.size());
  const double expected =
      static_cast<double>(data.size()) / (1.0 - 5000.0 * 1e-6);
  EXPECT_NEAR(static_cast<double>(all.size()), expected, 3.0);
}

// A no-op chain passes samples through byte-exactly.
TEST(ImpairedSource, NoopChainPassesThrough) {
  const lora::Params params = test_params();
  const IqBuffer data = random_iq(10000, 4);
  stream::ImpairedSource src(
      std::make_unique<VectorSource>(data),
      chain({"quantize,bits=0", "clock_drift,ppm=0"}), params, 1);
  const IqBuffer got = drain(src, 777);
  EXPECT_TRUE(got == data);
}

// Quantizer clip stats are visible through the decorator.
TEST(ImpairedSource, ExposesClipStats) {
  const lora::Params params = test_params();
  IqBuffer data = random_iq(5000, 5);
  for (cfloat& v : data) v *= 100.0f;  // everything beyond full_scale=1
  stream::ImpairedSource src(std::make_unique<VectorSource>(data),
                             chain({"quantize,bits=8,full_scale=1"}), params,
                             1);
  drain(src, 512);
  EXPECT_EQ(src.clip_stats().total, data.size());
  EXPECT_GT(src.clip_stats().rate(), 0.9);
}

// Construction rejects stages that cannot run on a live stream.
TEST(ImpairedSource, RejectsNonStreamStages) {
  const lora::Params params = test_params();
  const auto make = [&](std::initializer_list<const char*> specs) {
    stream::ImpairedSource src(std::make_unique<VectorSource>(IqBuffer(16)),
                               chain(specs), params, 1);
  };
  EXPECT_THROW(make({"inter_sf,sf=9,pps=2"}), std::invalid_argument);
  EXPECT_THROW(make({"phase_noise,linewidth_hz=100"}), std::invalid_argument);
  EXPECT_THROW(make({"doppler,hz=100"}), std::invalid_argument);
  EXPECT_THROW(make({"quantize,bits=8", "doppler,hz=50"}),
               std::invalid_argument);
  EXPECT_NO_THROW(make({"iq_imbalance,gain_db=1", "quantize,bits=8",
                        "clock_drift,ppm=20"}));
}

}  // namespace
