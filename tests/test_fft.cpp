#include "dsp/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/math_util.hpp"
#include "common/rng.hpp"

namespace tnb::dsp {
namespace {

/// O(n^2) reference DFT.
std::vector<cfloat> naive_dft(std::span<const cfloat> x) {
  const std::size_t n = x.size();
  std::vector<cfloat> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) {
      const double ang = -kTwoPi * static_cast<double>(k * i) / static_cast<double>(n);
      acc += std::complex<double>(x[i].real(), x[i].imag()) *
             std::complex<double>(std::cos(ang), std::sin(ang));
    }
    out[k] = {static_cast<float>(acc.real()), static_cast<float>(acc.imag())};
  }
  return out;
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<cfloat> x(n);
  for (auto& v : x) v = rng.complex_normal();

  std::vector<cfloat> got = fft(x);
  std::vector<cfloat> want = naive_dft(x);
  const float tol = 1e-3f * static_cast<float>(n);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(got[k].real(), want[k].real(), tol) << "bin " << k;
    EXPECT_NEAR(got[k].imag(), want[k].imag(), tol) << "bin " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes,
                         ::testing::Values(2, 4, 8, 16, 64, 256, 1024));

TEST(Fft, RoundTripIdentity) {
  Rng rng(99);
  std::vector<cfloat> x(2048);
  for (auto& v : x) v = rng.complex_normal();
  std::vector<cfloat> y = ifft(fft(x));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-3f);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-3f);
  }
}

TEST(Fft, PureToneLandsOnItsBin) {
  const std::size_t n = 512;
  const std::size_t k0 = 37;
  std::vector<cfloat> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = kTwoPi * static_cast<double>(k0 * i) / static_cast<double>(n);
    x[i] = {static_cast<float>(std::cos(ang)), static_cast<float>(std::sin(ang))};
  }
  std::vector<cfloat> X = fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == k0) {
      EXPECT_NEAR(std::abs(X[k]), static_cast<float>(n), 1e-2f * n);
    } else {
      EXPECT_LT(std::abs(X[k]), 1e-2f * n);
    }
  }
}

TEST(Fft, LinearityHolds) {
  Rng rng(5);
  const std::size_t n = 256;
  std::vector<cfloat> a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.complex_normal();
    b[i] = rng.complex_normal();
    sum[i] = a[i] + 2.0f * b[i];
  }
  auto A = fft(a), B = fft(b), S = fft(sum);
  for (std::size_t k = 0; k < n; ++k) {
    const cfloat want = A[k] + 2.0f * B[k];
    EXPECT_NEAR(S[k].real(), want.real(), 1e-2f);
    EXPECT_NEAR(S[k].imag(), want.imag(), 1e-2f);
  }
}

TEST(Fft, ParsevalEnergyConserved) {
  Rng rng(8);
  const std::size_t n = 1024;
  std::vector<cfloat> x(n);
  double te = 0.0;
  for (auto& v : x) {
    v = rng.complex_normal();
    te += std::norm(v);
  }
  auto X = fft(x);
  double fe = 0.0;
  for (auto& v : X) fe += std::norm(v);
  EXPECT_NEAR(fe / static_cast<double>(n), te, 1e-2 * te);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  EXPECT_THROW(FftPlan(0), std::invalid_argument);
  EXPECT_THROW(FftPlan(3), std::invalid_argument);
  EXPECT_THROW(FftPlan(1000), std::invalid_argument);
}

TEST(Fft, OutOfPlaceZeroPads) {
  const FftPlan& plan = fft_plan(64);
  std::vector<cfloat> in(16, cfloat{1.0f, 0.0f});
  std::vector<cfloat> out(64);
  plan.forward(in, out);
  // DC bin = sum of inputs = 16.
  EXPECT_NEAR(out[0].real(), 16.0f, 1e-3f);
  EXPECT_NEAR(out[0].imag(), 0.0f, 1e-3f);
}

TEST(Fft, PlanCacheReturnsSameInstance) {
  const FftPlan& a = fft_plan(128);
  const FftPlan& b = fft_plan(128);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.size(), 128u);
}

TEST(Fft, SizeOneIsIdentity) {
  FftPlan plan(1);
  std::vector<cfloat> x{cfloat{2.5f, -1.5f}};
  plan.forward(std::span<cfloat>(x));
  EXPECT_NEAR(x[0].real(), 2.5f, 1e-6f);
  EXPECT_NEAR(x[0].imag(), -1.5f, 1e-6f);
}

}  // namespace
}  // namespace tnb::dsp
