// Pinned ADC-quantizer reference vectors: tests/vectors/impair_vectors.txt
// is produced by the independent Python implementation in
// gen_impair_vectors.py, so impair::Quantizer and the generator can only
// agree by implementing the same conventions (half-even rounding, rail
// clipping, NaN -> 0, double-precision reconstruction cast to float32).
// Each record is checked bit-exactly, including the int16 the trace writer
// stores at its default scale — the quantize -> write_trace_i16 ->
// read_trace_i16 interaction that makes full_scale=32 reconstruction
// levels survive the int16 grid losslessly at bits <= 12.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "impair/impairment.hpp"
#include "sim/trace_io.hpp"

namespace {

using namespace tnb;

struct Case {
  float in = 0.0f;
  float out = 0.0f;
  bool clip = false;
  std::int16_t i16 = 0;
};

struct Config {
  unsigned bits = 0;
  double full_scale = 0.0;
  std::vector<Case> cases;
};

float parse_f32_hex(const std::string& hex) {
  std::uint32_t bits = 0;
  // Little-endian byte order: first hex pair is the lowest-address byte.
  for (int b = 3; b >= 0; --b) {
    bits = (bits << 8) |
           std::stoul(hex.substr(2 * static_cast<std::size_t>(b), 2),
                      nullptr, 16);
  }
  return std::bit_cast<float>(bits);
}

std::vector<Config> load_vectors(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<Config> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("config ", 0) == 0) {
      Config c;
      EXPECT_EQ(2, std::sscanf(line.c_str(), "config bits=%u full_scale=%lf",
                               &c.bits, &c.full_scale))
          << line;
      out.push_back(c);
    } else if (line.rfind("case ", 0) == 0) {
      char in_hex[16] = {0}, out_hex[16] = {0};
      int clip = 0, i16 = 0;
      EXPECT_EQ(4, std::sscanf(line.c_str(),
                               "case in=%15s out=%15s clip=%d i16=%d",
                               in_hex, out_hex, &clip, &i16))
          << line;
      Case k;
      k.in = parse_f32_hex(in_hex);
      k.out = parse_f32_hex(out_hex);
      k.clip = clip != 0;
      k.i16 = static_cast<std::int16_t>(i16);
      out.back().cases.push_back(k);
    }
  }
  return out;
}

std::uint32_t bits_of(float f) { return std::bit_cast<std::uint32_t>(f); }

TEST(ImpairGolden, QuantizerMatchesReference) {
  const auto configs = load_vectors(TNB_IMPAIR_VECTOR_FILE);
  ASSERT_GE(configs.size(), 4u);
  const lora::Params params{.sf = 8, .cr = 4, .bandwidth_hz = 125e3,
                            .osf = 4};
  for (const Config& c : configs) {
    SCOPED_TRACE("bits=" + std::to_string(c.bits) +
                 " full_scale=" + std::to_string(c.full_scale));
    ASSERT_GE(c.cases.size(), 20u);
    impair::ImpairmentConfig cfg;
    cfg.kind = impair::Kind::kQuantize;
    cfg.bits = c.bits;
    cfg.full_scale = c.full_scale;
    const auto q = impair::make_impairment(cfg, params);
    IqBuffer buf;
    std::size_t expect_clipped = 0;
    for (const Case& k : c.cases) {
      buf.emplace_back(k.in, k.in);
      if (k.clip) ++expect_clipped;
    }
    Rng rng(1);
    q->process(buf, rng);
    for (std::size_t i = 0; i < c.cases.size(); ++i) {
      SCOPED_TRACE("case " + std::to_string(i));
      EXPECT_EQ(bits_of(buf[i].real()), bits_of(c.cases[i].out));
      EXPECT_EQ(bits_of(buf[i].imag()), bits_of(c.cases[i].out));
    }
    EXPECT_EQ(q->clip_stats().clipped, expect_clipped);
    EXPECT_EQ(q->clip_stats().total, c.cases.size());

    // The pinned int16 column: what write_trace_i16 stores at its default
    // scale of 1024, via a real write -> raw-read round trip.
    const std::string path =
        ::testing::TempDir() + "impair_golden_" + std::to_string(c.bits) +
        "_" + std::to_string(static_cast<int>(c.full_scale)) + ".bin";
    sim::write_trace_i16(path, buf);
    std::ifstream raw(path, std::ios::binary);
    ASSERT_TRUE(raw.good());
    for (std::size_t i = 0; i < c.cases.size(); ++i) {
      SCOPED_TRACE("case " + std::to_string(i));
      std::int16_t pair[2] = {0, 0};
      raw.read(reinterpret_cast<char*>(pair), sizeof pair);
      ASSERT_TRUE(raw.good());
      EXPECT_EQ(pair[0], c.cases[i].i16);
      EXPECT_EQ(pair[1], c.cases[i].i16);
    }
    std::remove(path.c_str());
  }
}

// At bits <= 12 and the default full_scale=32, every reconstruction level
// lands exactly on the int16 grid at scale 1024, so a write -> read round
// trip through the trace format returns the quantized samples bit-exactly.
TEST(ImpairGolden, ReconstructionSurvivesTraceFormat) {
  const auto configs = load_vectors(TNB_IMPAIR_VECTOR_FILE);
  const lora::Params params{.sf = 8, .cr = 4, .bandwidth_hz = 125e3,
                            .osf = 4};
  for (const Config& c : configs) {
    if (c.full_scale != 32.0 || c.bits > 12) continue;
    SCOPED_TRACE("bits=" + std::to_string(c.bits));
    IqBuffer buf;
    for (const Case& k : c.cases) {
      if (std::abs(k.out) * 1024.0 > 32767.0) continue;  // beyond i16 rails
      // Zeros are skipped: the negated imag component makes a -0.0, and
      // the int16 grid has only one zero to read back.
      if (k.out == 0.0f) continue;
      buf.emplace_back(k.out, -k.out);
    }
    const std::string path = ::testing::TempDir() + "impair_golden_rt_" +
                             std::to_string(c.bits) + ".bin";
    sim::write_trace_i16(path, buf);
    const IqBuffer back = sim::read_trace_i16(path);
    std::remove(path.c_str());
    ASSERT_EQ(back.size(), buf.size());
    for (std::size_t i = 0; i < buf.size(); ++i) {
      EXPECT_EQ(bits_of(back[i].real()), bits_of(buf[i].real())) << i;
      EXPECT_EQ(bits_of(back[i].imag()), bits_of(buf[i].imag())) << i;
    }
  }
}

}  // namespace
