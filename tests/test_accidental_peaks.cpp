// The paper's Section 8.4 mechanism, reproduced at unit level: an
// "accidental" peak (noise/interference burst visible in one signal vector
// only) has no siblings, so AlignTrack* considers it aligned and — having
// to make an arbitrary choice among aligned peaks — often picks it. Thrive
// gives the same peak a zero sibling cost too, but its height falls outside
// the packet's peak-height history band, and the history cost (Eq. 2)
// breaks the tie toward the true peak.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/aligntrack.hpp"
#include "channel/awgn.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/thrive.hpp"
#include "lora/chirp.hpp"
#include "lora/frame.hpp"
#include "lora/modulator.hpp"

namespace tnb::rx {
namespace {

struct Fixture {
  lora::Params p{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
  IqBuffer trace;
  std::vector<PacketContext> contexts;
  std::vector<std::uint32_t> symbols;
  int victim = 12;          ///< data symbol carrying the accidental peak
  std::uint32_t fake_bin = 200;

  explicit Fixture(Rng& rng, double fake_amp) {
    const lora::Modulator mod(p);
    std::vector<std::uint8_t> app(14, 0x66);
    symbols = lora::make_packet_symbols(p, app);
    const IqBuffer pkt = mod.synthesize(symbols);
    const double t0 = 4.0 * p.sps();
    trace.assign(pkt.size() + 8 * p.sps(), cfloat{0.0f, 0.0f});
    for (std::size_t i = 0; i < pkt.size(); ++i) {
      trace[static_cast<std::size_t>(t0) + i] += pkt[i];
    }
    contexts.emplace_back(p, DetectedPacket{t0, 0.0, 0.0, 12});
    contexts[0].n_data_symbols = static_cast<int>(symbols.size());

    // Accidental peak: a chirp burst at a different shift confined to ONE
    // symbol window — it dechirps to a tall tone there and nowhere else.
    const double w = contexts[0].data_symbol_start(victim);
    const auto burst = lora::make_upchirp(p, fake_bin);
    for (std::size_t i = 0; i < burst.size(); ++i) {
      trace[static_cast<std::size_t>(w) + i] +=
          static_cast<float>(fake_amp) * burst[i];
    }
    chan::add_awgn(trace, 0.3, rng);
  }

  int assign_victim(PeakAssigner& assigner, SigCalc& sig,
                    std::span<PeakHistory> hist) {
    AssignInput in;
    const ActiveSymbol sym{0, victim, contexts[0].data_symbol_start(victim)};
    std::vector<ActiveSymbol> act{sym};
    std::vector<std::vector<double>> masks(1);
    in.symbols = act;
    in.contexts = contexts;
    in.masked_bins = masks;
    in.sig = &sig;
    in.history = hist;
    return assigner.assign(in)[0].bin;
  }
};

/// Seeds the packet's history with its true (clean) peak heights up to the
/// victim symbol.
void seed_history(Fixture& fx, SigCalc& sig, PeakHistory& hist) {
  hist.bootstrap(sig.preamble_heights(fx.contexts[0]));
  for (int d = 0; d < fx.victim; ++d) {
    const auto& view = sig.data_symbol(0, fx.contexts[0], d);
    const std::uint32_t bin = fx.p.shift_for_value(
        fx.symbols[static_cast<std::size_t>(d)]);
    hist.record(d, view.sv[bin]);
  }
}

TEST(AccidentalPeaks, ThriveHistoryRejectsTooTallImpostor) {
  Rng rng(1);
  Fixture fx(rng, 2.5);  // impostor ~6x the true peak power
  SigCalc sig(fx.p, {fx.trace});
  std::vector<PeakHistory> hist(1);
  seed_history(fx, sig, hist[0]);
  const int want = static_cast<int>(fx.p.shift_for_value(
      fx.symbols[static_cast<std::size_t>(fx.victim)]));

  Thrive thrive(fx.p);
  EXPECT_EQ(fx.assign_victim(thrive, sig, hist), want)
      << "Thrive's history cost must reject the out-of-band impostor";
}

TEST(AccidentalPeaks, AlignTrackPicksTheImpostor) {
  // AlignTrack* has no history: the impostor is aligned (no siblings) and
  // taller, so its arbitrary choice lands on the wrong peak — the Section
  // 8.4 failure mode.
  Rng rng(1);
  Fixture fx(rng, 2.5);
  SigCalc sig(fx.p, {fx.trace});
  std::vector<PeakHistory> hist(1);  // ignored by AlignTrack*
  const int want = static_cast<int>(fx.p.shift_for_value(
      fx.symbols[static_cast<std::size_t>(fx.victim)]));

  base::AlignTrackStar at(fx.p);
  const int got = fx.assign_victim(at, sig, hist);
  EXPECT_NE(got, want);
  EXPECT_NEAR(static_cast<double>(got), static_cast<double>(fx.fake_bin), 1.5);
}

TEST(AccidentalPeaks, SiblingOnlyThriveAlsoFooled) {
  // Without the history cost, Thrive degenerates the same way — the
  // "Sibling" ablation of Fig. 15.
  Rng rng(1);
  Fixture fx(rng, 2.5);
  SigCalc sig(fx.p, {fx.trace});
  std::vector<PeakHistory> hist(1);
  seed_history(fx, sig, hist[0]);
  const int want = static_cast<int>(fx.p.shift_for_value(
      fx.symbols[static_cast<std::size_t>(fx.victim)]));

  ThriveOptions opt;
  opt.use_history = false;
  Thrive sibling(fx.p, opt);
  const int got = fx.assign_victim(sibling, sig, hist);
  EXPECT_NE(got, want) << "sibling cost alone cannot separate the impostor";
}

}  // namespace
}  // namespace tnb::rx
