// Thread-safety of the shared state (the FFT plan cache is the only
// process-global): concurrent decodes on distinct traces must be safe and
// produce the same results as sequential decodes.
#include <gtest/gtest.h>

#include <array>
#include <thread>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/receiver.hpp"
#include "dsp/fft.hpp"
#include "sim/metrics.hpp"
#include "sim/trace_builder.hpp"

namespace tnb {
namespace {

void expect_stats_equal(const rx::ReceiverStats& a,
                        const rx::ReceiverStats& b) {
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.header_ok, b.header_ok);
  EXPECT_EQ(a.crc_ok, b.crc_ok);
  EXPECT_EQ(a.decoded_first_pass, b.decoded_first_pass);
  EXPECT_EQ(a.decoded_second_pass, b.decoded_second_pass);
  EXPECT_EQ(a.bec.delta_prime, b.bec.delta_prime);
  EXPECT_EQ(a.bec.delta1, b.bec.delta1);
  EXPECT_EQ(a.bec.delta2, b.bec.delta2);
  EXPECT_EQ(a.bec.delta3, b.bec.delta3);
  EXPECT_EQ(a.bec.crc_checks, b.bec.crc_checks);
  EXPECT_EQ(a.bec.blocks_no_repair, b.bec.blocks_no_repair);
  EXPECT_EQ(a.bec.candidate_blocks, b.bec.candidate_blocks);
  EXPECT_EQ(a.rescued_per_packet, b.rescued_per_packet);
}

TEST(Concurrency, PlanCacheUnderConcurrentCreation) {
  std::vector<std::thread> threads;
  std::vector<const dsp::FftPlan*> plans(8, nullptr);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t, &plans] {
      // Mix of new and repeated sizes from several threads.
      const std::size_t n = t % 2 == 0 ? 4096 : 16384;
      plans[static_cast<std::size_t>(t)] = &dsp::fft_plan(n);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 8; t += 2) {
    EXPECT_EQ(plans[static_cast<std::size_t>(t)], plans[0]);
  }
  for (int t = 1; t < 8; t += 2) {
    EXPECT_EQ(plans[static_cast<std::size_t>(t)], plans[1]);
  }
}

TEST(Concurrency, PlanCacheLockFreeHammerMixedSizes) {
  // 16 threads hammering the lock-free plan cache with mixed sizes,
  // including the first-use CAS races: every thread must observe the same
  // plan pointer per size (exactly one plan wins per slot), and repeated
  // lookups must stay stable. Runs under the TSan CI job.
  constexpr int kThreads = 16;
  constexpr unsigned kLo = 6, kHi = 15;  // 2^6 .. 2^15
  constexpr int kRounds = 200;
  std::vector<std::array<const dsp::FftPlan*, kHi - kLo + 1>> seen(kThreads);
  for (auto& s : seen) s.fill(nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &seen] {
      for (int round = 0; round < kRounds; ++round) {
        // Each thread walks the sizes in a different order.
        for (unsigned i = 0; i <= kHi - kLo; ++i) {
          const unsigned l = kLo + (i + static_cast<unsigned>(t)) % (kHi - kLo + 1);
          const dsp::FftPlan& plan = dsp::fft_plan(std::size_t{1} << l);
          ASSERT_EQ(plan.size(), std::size_t{1} << l);
          const dsp::FftPlan*& slot =
              seen[static_cast<std::size_t>(t)][l - kLo];
          if (slot == nullptr) {
            slot = &plan;
          } else {
            ASSERT_EQ(slot, &plan);  // pointer stable across lookups
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (unsigned i = 0; i <= kHi - kLo; ++i) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[static_cast<std::size_t>(t)][i], seen[0][i])
          << "size 2^" << (kLo + i);
    }
  }
  // Contract violations stay exceptions, not UB, under the lock-free path.
  EXPECT_THROW(dsp::fft_plan(1000), std::invalid_argument);
  EXPECT_THROW(dsp::fft_plan(std::size_t{1} << 25), std::invalid_argument);
}

TEST(Concurrency, ParallelDecodesMatchSequential) {
  lora::Params p{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
  std::vector<sim::Trace> traces;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    sim::TraceOptions opt;
    opt.duration_s = 1.0;
    opt.load_pps = 5.0;
    opt.nodes = {{1, 20.0, 900.0}, {2, 15.0, -1800.0}};
    traces.push_back(sim::build_trace(p, opt, rng));
  }

  const rx::Receiver receiver(p);
  std::vector<std::size_t> sequential;
  for (const auto& trace : traces) {
    Rng rng(99);
    sequential.push_back(
        sim::evaluate(trace, receiver.decode(trace.iq, rng)).decoded_unique);
  }

  std::vector<std::size_t> parallel(traces.size(), 0);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    threads.emplace_back([&, i] {
      Rng rng(99);
      parallel[i] = sim::evaluate(traces[i],
                                  receiver.decode(traces[i].iq, rng))
                        .decoded_unique;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(parallel, sequential);
}

// Stress: 8 threads decode the *same* collided trace concurrently through
// one shared Receiver. Every decode must reproduce the sequential
// ReceiverStats counter-for-counter — this guards the FFT plan cache and
// any state a pooled execution layer might share across runs.
TEST(Concurrency, SameTraceStressMatchesSequentialStats) {
  lora::Params p{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
  Rng trace_rng(17);
  sim::TraceOptions opt;
  opt.duration_s = 1.5;
  opt.load_pps = 8.0;
  opt.nodes = {{1, 20.0, 900.0},
               {2, 16.0, -1800.0},
               {3, 12.0, 400.0},
               {4, 18.0, -600.0}};
  const sim::Trace trace = sim::build_trace(p, opt, trace_rng);

  const rx::Receiver receiver(p);
  rx::ReceiverStats seq_stats;
  std::size_t seq_decoded;
  {
    Rng rng(5);
    seq_decoded =
        sim::evaluate(trace, receiver.decode(trace.iq, rng, &seq_stats))
            .decoded_unique;
  }

  constexpr int kThreads = 8;
  std::vector<rx::ReceiverStats> stats(kThreads);
  std::vector<std::size_t> decoded(kThreads, 0);
  common::parallel_for(kThreads, kThreads, [&](std::size_t t) {
    Rng rng(5);
    decoded[t] =
        sim::evaluate(trace, receiver.decode(trace.iq, rng, &stats[t]))
            .decoded_unique;
  });
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(decoded[static_cast<std::size_t>(t)], seq_decoded)
        << "thread " << t;
    expect_stats_equal(stats[static_cast<std::size_t>(t)], seq_stats);
  }
}

}  // namespace
}  // namespace tnb
