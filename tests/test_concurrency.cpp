// Thread-safety of the shared state (the FFT plan cache is the only
// process-global): concurrent decodes on distinct traces must be safe and
// produce the same results as sequential decodes.
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.hpp"
#include "core/receiver.hpp"
#include "dsp/fft.hpp"
#include "sim/metrics.hpp"
#include "sim/trace_builder.hpp"

namespace tnb {
namespace {

TEST(Concurrency, PlanCacheUnderConcurrentCreation) {
  std::vector<std::thread> threads;
  std::vector<const dsp::FftPlan*> plans(8, nullptr);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t, &plans] {
      // Mix of new and repeated sizes from several threads.
      const std::size_t n = t % 2 == 0 ? 4096 : 16384;
      plans[static_cast<std::size_t>(t)] = &dsp::fft_plan(n);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 8; t += 2) {
    EXPECT_EQ(plans[static_cast<std::size_t>(t)], plans[0]);
  }
  for (int t = 1; t < 8; t += 2) {
    EXPECT_EQ(plans[static_cast<std::size_t>(t)], plans[1]);
  }
}

TEST(Concurrency, ParallelDecodesMatchSequential) {
  lora::Params p{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
  std::vector<sim::Trace> traces;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    sim::TraceOptions opt;
    opt.duration_s = 1.0;
    opt.load_pps = 5.0;
    opt.nodes = {{1, 20.0, 900.0}, {2, 15.0, -1800.0}};
    traces.push_back(sim::build_trace(p, opt, rng));
  }

  const rx::Receiver receiver(p);
  std::vector<std::size_t> sequential;
  for (const auto& trace : traces) {
    Rng rng(99);
    sequential.push_back(
        sim::evaluate(trace, receiver.decode(trace.iq, rng)).decoded_unique);
  }

  std::vector<std::size_t> parallel(traces.size(), 0);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    threads.emplace_back([&, i] {
      Rng rng(99);
      parallel[i] = sim::evaluate(traces[i],
                                  receiver.decode(traces[i].iq, rng))
                        .decoded_unique;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(parallel, sequential);
}

}  // namespace
}  // namespace tnb
