// StreamingReceiver: chunked gateway decode must be equivalent to one-shot
// Receiver::decode for every chunk size, with O(window) resident IQ (see
// DESIGN.md "Streaming gateway").
#include "stream/streaming_receiver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/receiver.hpp"
#include "sim/trace_builder.hpp"

namespace tnb::stream {
namespace {

// osf 2 keeps the FFTs small enough for a multi-decode test (same trade as
// test_concurrency).
lora::Params test_params() {
  return {.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
}

sim::Trace collision_trace(double duration_s, double load_pps,
                           std::uint64_t seed) {
  Rng rng(seed);
  sim::TraceOptions opt;
  opt.duration_s = duration_s;
  opt.load_pps = load_pps;
  opt.nodes = {{1, 20.0, 900.0}, {2, 15.0, -1800.0}, {3, 12.0, 400.0}};
  return sim::build_trace(test_params(), opt, rng);
}

/// Payload multiset: the equivalence bar is the decoded packet set, not the
/// emission order (segments emit in time order, one-shot in resolve order).
std::vector<std::vector<std::uint8_t>> payload_multiset(
    const std::vector<sim::DecodedPacket>& pkts) {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(pkts.size());
  for (const auto& p : pkts) out.push_back(p.payload);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<double> sorted_starts(const std::vector<sim::DecodedPacket>& pkts) {
  std::vector<double> out;
  out.reserve(pkts.size());
  for (const auto& p : pkts) out.push_back(p.start_sample);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Streaming, ChunkBoundaryEquivalence) {
  const lora::Params p = test_params();
  const sim::Trace trace = collision_trace(3.0, 8.0, 42);

  rx::Receiver oneshot(p);
  Rng rng(1);
  rx::ReceiverStats oneshot_stats;
  const auto reference = oneshot.decode(trace.iq, rng, &oneshot_stats);
  ASSERT_GE(reference.size(), 3u) << "trace too quiet to be a meaningful test";

  // 2^SF/4 and 2^SF samples (sub-symbol chunks), 64k, and the whole trace
  // in one push — the decoded packet set must be identical to one-shot.
  const std::vector<std::size_t> chunk_sizes = {
      (std::size_t{1} << p.sf) / 4, std::size_t{1} << p.sf, 65536,
      trace.iq.size()};
  for (const std::size_t chunk : chunk_sizes) {
    SCOPED_TRACE("chunk=" + std::to_string(chunk));
    StreamingOptions sopt;
    sopt.window_symbols = 256;
    sopt.rng_seed = 1;
    StreamingReceiver srx(p, {}, sopt);
    BufferSource source(trace.iq);
    EXPECT_EQ(srx.consume(source, chunk), trace.iq.size());

    EXPECT_EQ(payload_multiset(srx.packets()), payload_multiset(reference));
    // Streaming reports trace-global positions; compare against one-shot.
    const auto got = sorted_starts(srx.packets());
    const auto want = sorted_starts(reference);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i], want[i], 1.0);
    }

    const StreamingStats& st = srx.stats();
    const std::size_t window_samples =
        srx.options().window_symbols * p.sps();
    EXPECT_GE(st.segments, 2u) << "cuts never happened; trivial equivalence";
    EXPECT_LT(st.high_water_samples, 2 * window_samples);
    EXPECT_EQ(st.samples_in, trace.iq.size());
    EXPECT_EQ(st.samples_retired, trace.iq.size());
    EXPECT_EQ(st.packets_emitted, reference.size());
    // Per-segment stats merge to the one-shot totals: each packet is seen
    // by exactly one segment, so the accumulated counters match.
    EXPECT_EQ(st.rx.crc_ok, oneshot_stats.crc_ok);
    EXPECT_EQ(st.rx.header_ok, oneshot_stats.header_ok);
    EXPECT_EQ(st.rx.decoded_first_pass, oneshot_stats.decoded_first_pass);
    EXPECT_EQ(st.rx.decoded_second_pass, oneshot_stats.decoded_second_pass);
    EXPECT_EQ(st.rx.detected, oneshot_stats.detected);
  }
}

TEST(Streaming, CallbackSeesEveryPacketOnce) {
  const lora::Params p = test_params();
  const sim::Trace trace = collision_trace(2.0, 8.0, 7);
  StreamingOptions sopt;
  sopt.window_symbols = 256;
  StreamingReceiver srx(p, {}, sopt);
  std::size_t called = 0;
  srx.set_packet_callback([&](const sim::DecodedPacket&) { ++called; });
  BufferSource source(trace.iq);
  srx.consume(source, 4096);
  EXPECT_EQ(called, srx.packets().size());
  EXPECT_EQ(called, srx.stats().packets_emitted);
}

TEST(Streaming, RingPipelineMatchesDirectConsume) {
  const lora::Params p = test_params();
  const sim::Trace trace = collision_trace(2.0, 10.0, 11);

  StreamingOptions sopt;
  sopt.window_symbols = 256;
  StreamingReceiver direct(p, {}, sopt);
  BufferSource direct_src(trace.iq);
  direct.consume(direct_src, 4096);

  StreamingReceiver piped(p, {}, sopt);
  BufferSource piped_src(trace.iq);
  IqRing ring(16384);
  const std::size_t total = run_pipeline(piped_src, ring, piped, 4096);

  EXPECT_EQ(total, trace.iq.size());
  EXPECT_EQ(ring.stats().dropped, 0u);
  EXPECT_EQ(payload_multiset(piped.packets()), payload_multiset(direct.packets()));
  EXPECT_EQ(piped.stats().segments, direct.stats().segments);
}

TEST(Streaming, FinishIsIdempotentAndPushAfterFinishThrows) {
  const lora::Params p = test_params();
  StreamingReceiver srx(p);
  IqBuffer quiet(4 * p.sps());
  srx.push_chunk(quiet);
  srx.finish();
  srx.finish();
  EXPECT_EQ(srx.stats().samples_in, quiet.size());
  EXPECT_EQ(srx.stats().samples_retired, quiet.size());
  EXPECT_THROW(srx.push_chunk(quiet), std::logic_error);
}

TEST(Streaming, WindowIsRaisedToFitOneMaxPacketSpan) {
  const lora::Params p = test_params();
  StreamingOptions sopt;
  sopt.window_symbols = 1;  // absurdly small; the constructor must fix it
  StreamingReceiver srx(p, {}, sopt);
  const std::size_t max_pkt = 96;  // ReceiverOptions().max_tracked_symbols
  EXPECT_GE(srx.options().window_symbols,
            (p.preamble_samples() + max_pkt * p.sps()) / p.sps());
}

TEST(Streaming, BoundedMemoryUnderContinuousTraffic) {
  // Heavy load: live-packet spans chain past the window, so clean cuts are
  // rare and memory is bounded by forced cuts instead. Equivalence is not
  // guaranteed here (forced cuts may split packets) — the bound is.
  const lora::Params p = test_params();
  const sim::Trace trace = collision_trace(4.0, 40.0, 5);
  StreamingOptions sopt;
  sopt.window_symbols = 1;  // raised to the floor: the tightest legal window
  StreamingReceiver srx(p, {}, sopt);
  BufferSource source(trace.iq);
  srx.consume(source, 8192);

  const StreamingStats& st = srx.stats();
  const std::size_t window_samples = srx.options().window_symbols * p.sps();
  EXPECT_LT(st.high_water_samples, 2 * window_samples);
  EXPECT_EQ(st.samples_retired, trace.iq.size());
  EXPECT_GE(st.segments, trace.iq.size() / (2 * window_samples));
}

}  // namespace
}  // namespace tnb::stream
