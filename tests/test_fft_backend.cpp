// FftBackend contracts (DESIGN.md "SIMD demod backends"):
//  - scalar-vs-SIMD per-transform equivalence to a ULP-scaled bound over
//    the full SF 5..12 x OSF {1, 8} size grid,
//  - forward_batch bit-identical to N single transforms on every backend,
//  - same-backend determinism (two runs, memcmp-equal),
//  - elementwise kernel (dechirp/fold/rotate) equivalence,
//  - forward -> inverse round trip per backend,
//  - end-to-end decode agreement between scalar and each SIMD backend.
//
// On machines without AVX2 (or non-x86 without NEON) only the scalar
// backend registers and the cross-backend loops are vacuously empty —
// the suite still passes, it just covers less.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "core/receiver.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_backend.hpp"
#include "lora/chirp.hpp"
#include "lora/demodulator.hpp"
#include "sim/deployment.hpp"
#include "sim/metrics.hpp"
#include "sim/trace_builder.hpp"

namespace tnb::dsp {
namespace {

/// Selects a backend for one test and restores the scalar default on
/// exit, so test order can never leak a SIMD selection into suites that
/// assume the bit-identity contract.
class BackendGuard {
 public:
  explicit BackendGuard(const char* name) {
    EXPECT_TRUE(set_fft_backend(name));
  }
  ~BackendGuard() { set_fft_backend("scalar"); }
};

std::vector<const FftBackend*> simd_backends() {
  std::vector<const FftBackend*> v;
  for (const FftBackend* b : fft_backends()) {
    if (std::string_view(b->name()) != "scalar") v.push_back(b);
  }
  return v;
}

std::vector<cfloat> random_buffer(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cfloat> buf(n);
  for (auto& v : buf) v = rng.complex_normal();
  return buf;
}

float max_abs(std::span<const cfloat> x) {
  float m = 0.0f;
  for (const cfloat& v : x) {
    m = std::max({m, std::abs(v.real()), std::abs(v.imag())});
  }
  return m;
}

/// Per-element bound for scalar-vs-SIMD transform outputs: a fixed ULP
/// budget per butterfly stage (FMA contraction changes each complex
/// multiply by at most a few ULP, and the error compounds once per
/// stage), scaled by the spectrum's magnitude. Expressed in ULP of
/// max|X| so the bound tracks the data instead of an absolute epsilon.
float transform_tolerance(std::size_t n, float scale) {
  const float log2n = std::log2(static_cast<float>(n));
  const float ulps = 32.0f + 16.0f * log2n;
  return ulps * scale * std::ldexp(1.0f, -23);
}

void expect_close(std::span<const cfloat> a, std::span<const cfloat> b,
                  float tol, const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i].real(), b[i].real(), tol) << what << " bin " << i;
    ASSERT_NEAR(a[i].imag(), b[i].imag(), tol) << what << " bin " << i;
  }
}

TEST(FftBackend, RegistryHasScalarFirst) {
  const auto backends = fft_backends();
  ASSERT_FALSE(backends.empty());
  EXPECT_STREQ(backends.front()->name(), "scalar");
  EXPECT_EQ(&fft_backend_scalar(), backends.front());
  EXPECT_NE(fft_backend_names().find("auto"), std::string::npos);
  EXPECT_NE(fft_backend_names().find("scalar"), std::string::npos);
}

TEST(FftBackend, FindAndSetValidateNames) {
  EXPECT_EQ(find_fft_backend("no-such-backend"), nullptr);
  EXPECT_FALSE(set_fft_backend("no-such-backend"));
  EXPECT_STREQ(active_fft_backend().name(), "scalar");  // unchanged
  {
    BackendGuard guard("auto");
    EXPECT_STREQ(active_fft_backend().name(), fft_backends().back()->name());
  }
  EXPECT_STREQ(active_fft_backend().name(), "scalar");
}

TEST(FftBackend, TransformEquivalenceAcrossSizes) {
  // SF 5..12 x OSF {1, 8}: every transform size the demod hot path uses
  // (32 .. 32768), forward and inverse.
  for (unsigned sf = 5; sf <= 12; ++sf) {
    for (const unsigned osf : {1u, 8u}) {
      const std::size_t n = (std::size_t{1} << sf) * osf;
      const auto& plan = fft_plan(n);
      const std::vector<cfloat> input = random_buffer(n, 100 + sf * 10 + osf);
      for (const bool inverse : {false, true}) {
        std::vector<cfloat> ref = input;
        fft_backend_scalar().transform(plan, ref.data(), inverse);
        const float tol = transform_tolerance(n, std::max(max_abs(ref), 1.0f));
        for (const FftBackend* be : simd_backends()) {
          std::vector<cfloat> out = input;
          be->transform(plan, out.data(), inverse);
          expect_close(ref, out, tol, be->name());
        }
      }
    }
  }
}

TEST(FftBackend, BatchBitIdenticalToSingles) {
  constexpr std::size_t kCount = 5;
  for (const std::size_t n : {32u, 1024u, 8192u}) {
    const auto& plan = fft_plan(n);
    const std::vector<cfloat> input = random_buffer(n * kCount, 7);
    for (const FftBackend* be : fft_backends()) {
      for (const bool inverse : {false, true}) {
        std::vector<cfloat> batched = input;
        be->transform_batch(plan, batched.data(), kCount, inverse);
        std::vector<cfloat> singles = input;
        for (std::size_t b = 0; b < kCount; ++b) {
          be->transform(plan, singles.data() + b * n, inverse);
        }
        EXPECT_EQ(std::memcmp(batched.data(), singles.data(),
                              batched.size() * sizeof(cfloat)),
                  0)
            << be->name() << " n=" << n << " inverse=" << inverse;
      }
    }
  }
}

TEST(FftBackend, SameBackendDeterminism) {
  const std::size_t n = 4096;
  const auto& plan = fft_plan(n);
  const std::vector<cfloat> input = random_buffer(n, 11);
  for (const FftBackend* be : fft_backends()) {
    std::vector<cfloat> a = input, b = input;
    be->transform(plan, a.data(), false);
    be->transform(plan, b.data(), false);
    EXPECT_EQ(std::memcmp(a.data(), b.data(), n * sizeof(cfloat)), 0)
        << be->name();
  }
}

TEST(FftBackend, RoundTripRecoversInput) {
  for (const FftBackend* be : fft_backends()) {
    for (const std::size_t n : {64u, 2048u, 32768u}) {
      const auto& plan = fft_plan(n);
      const std::vector<cfloat> input = random_buffer(n, 13);
      std::vector<cfloat> buf = input;
      be->transform(plan, buf.data(), false);
      be->transform(plan, buf.data(), true);
      const float tol =
          2.0f * transform_tolerance(n, std::max(max_abs(input), 1.0f));
      expect_close(input, buf, tol, be->name());
    }
  }
}

TEST(FftBackend, ElementwiseKernelsMatchScalar) {
  // Odd length exercises every backend's scalar tail loop.
  const std::size_t m = 1003;
  const std::vector<cfloat> w = random_buffer(m, 21);
  const std::vector<cfloat> c = random_buffer(m, 22);
  const std::vector<cfloat> r = random_buffer(m, 23);
  const FftBackend& scalar = fft_backend_scalar();

  std::vector<cfloat> ref_dc(m);
  scalar.dechirp_rotate(w.data(), m, c.data(), r.data(), ref_dc.data());
  std::vector<float> ref_mag(m / 2);
  scalar.mag_fold(w.data(), m / 2, m / 2, ref_mag.data());
  std::vector<float> ref_mag_flat(m);
  scalar.mag_fold(w.data(), m, 0, ref_mag_flat.data());
  std::vector<cfloat> ref_acc = c;
  scalar.rotate_accumulate(w.data(), m, cfloat{0.6f, -0.8f}, ref_acc.data());

  // Two chained complex multiplies / a two-term power sum: a few ULP of
  // the element magnitude covers any FMA contraction.
  const float tol = 16.0f * std::ldexp(std::max(max_abs(ref_dc), 4.0f), -23);
  const float mag_peak = *std::max_element(ref_mag_flat.begin(), ref_mag_flat.end());
  const float mag_tol = 16.0f * std::ldexp(std::max(mag_peak, 4.0f), -23);
  for (const FftBackend* be : simd_backends()) {
    std::vector<cfloat> dc(m);
    be->dechirp_rotate(w.data(), m, c.data(), r.data(), dc.data());
    expect_close(ref_dc, dc, tol, be->name());

    std::vector<float> mag(m / 2);
    be->mag_fold(w.data(), m / 2, m / 2, mag.data());
    for (std::size_t k = 0; k < mag.size(); ++k) {
      ASSERT_NEAR(ref_mag[k], mag[k], mag_tol) << be->name() << " fold " << k;
    }
    std::vector<float> mag_flat(m);
    be->mag_fold(w.data(), m, 0, mag_flat.data());
    for (std::size_t k = 0; k < m; ++k) {
      ASSERT_NEAR(ref_mag_flat[k], mag_flat[k], mag_tol)
          << be->name() << " flat " << k;
    }

    std::vector<cfloat> acc = c;
    be->rotate_accumulate(w.data(), m, cfloat{0.6f, -0.8f}, acc.data());
    expect_close(ref_acc, acc, tol, be->name());
  }
}

TEST(FftBackend, DemodBatchMatchesSinglesBitIdentically) {
  // The lora::Demodulator batch entry point: per backend, one
  // dechirp_fft_batch_into call over packed windows must reproduce the
  // per-window dechirp_fft_into results byte for byte.
  const lora::Params p{.sf = 7, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
  const lora::Demodulator demod(p);
  const std::size_t sps = p.sps();
  constexpr std::size_t kCount = 4;
  std::vector<cfloat> windows;
  for (std::size_t i = 0; i < kCount; ++i) {
    const auto sym =
        lora::make_upchirp(p, static_cast<std::uint32_t>(17 * i + 3));
    windows.insert(windows.end(), sym.begin(), sym.end());
  }
  for (const FftBackend* be : fft_backends()) {
    BackendGuard guard(be->name());
    lora::Workspace ws(p);
    std::vector<cfloat> batched(kCount * sps);
    demod.dechirp_fft_batch_into(windows, kCount, 0.37, /*up=*/true, ws,
                                 batched);
    std::vector<cfloat> single(sps);
    for (std::size_t i = 0; i < kCount; ++i) {
      demod.dechirp_fft_into(
          std::span<const cfloat>(windows.data() + i * sps, sps), 0.37,
          /*up=*/true, ws, single);
      EXPECT_EQ(std::memcmp(batched.data() + i * sps, single.data(),
                            sps * sizeof(cfloat)),
                0)
          << be->name() << " window " << i;
    }
  }
}

TEST(FftBackend, EndToEndDecodeAgreement) {
  // Decode one simulated multi-packet trace with the scalar backend and
  // with every SIMD backend. SIMD rounding may legitimately flip a
  // borderline packet, so the gate is >= 99% agreement (with one packet
  // of slack for small samples), not bit-identity.
  sim::TraceOptions opt;
  opt.duration_s = 2.0;
  opt.load_pps = 6.0;
  const lora::Params p{.sf = 7, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
  Rng trace_rng(99);
  opt.nodes = sim::indoor_deployment().draw_nodes(trace_rng);
  opt.nodes.resize(4);
  const sim::Trace trace = sim::build_trace(p, opt, trace_rng);
  const rx::Receiver receiver(p);

  auto decode_count = [&]() {
    Rng rng(5);
    const auto decoded = receiver.decode(trace.iq, rng);
    return sim::evaluate(trace, decoded).decoded_unique;
  };

  std::size_t scalar_count = 0;
  {
    BackendGuard guard("scalar");
    scalar_count = decode_count();
  }
  ASSERT_GT(scalar_count, 0u) << "scenario decodes nothing; test is vacuous";

  for (const FftBackend* be : simd_backends()) {
    BackendGuard guard(be->name());
    const std::size_t count = decode_count();
    const std::size_t slack =
        std::max<std::size_t>(1, scalar_count / 100);  // >= 99% agreement
    EXPECT_GE(count + slack, scalar_count) << be->name();
    EXPECT_LE(count, scalar_count + slack) << be->name();
  }
}

}  // namespace
}  // namespace tnb::dsp
