#include "core/receiver.hpp"

#include <gtest/gtest.h>

#include "baselines/factories.hpp"
#include "channel/awgn.hpp"
#include "common/rng.hpp"
#include "sim/metrics.hpp"
#include "sim/trace_builder.hpp"

namespace tnb::rx {
namespace {

lora::Params fast_params(unsigned cr = 4) {
  return lora::Params{.sf = 8, .cr = cr, .bandwidth_hz = 125e3, .osf = 4};
}

sim::Trace make_trace(const lora::Params& p, double load_pps, double duration_s,
                      std::vector<sim::NodeConfig> nodes, Rng& rng,
                      const chan::Channel* channel = nullptr) {
  sim::TraceOptions opt;
  opt.duration_s = duration_s;
  opt.load_pps = load_pps;
  opt.nodes = std::move(nodes);
  opt.channel = channel;
  return sim::build_trace(p, opt, rng);
}

TEST(Receiver, DecodesSinglePacketCleanly) {
  const lora::Params p = fast_params();
  Rng rng(1);
  const sim::Trace trace =
      make_trace(p, 2.0, 1.0, {{1, 20.0, 1000.0}}, rng);
  Receiver receiver(p);
  Rng rx_rng(2);
  ReceiverStats stats;
  const auto decoded = receiver.decode(trace.iq, rx_rng, &stats);
  const auto result = sim::evaluate(trace, decoded);
  EXPECT_EQ(result.decoded_unique, trace.packets.size());
  EXPECT_EQ(result.false_packets, 0u);
  EXPECT_EQ(stats.detected, trace.packets.size());
  EXPECT_EQ(stats.header_ok, trace.packets.size());
}

class ReceiverCr : public ::testing::TestWithParam<unsigned> {};

TEST_P(ReceiverCr, DecodesAllCrValues) {
  const lora::Params p = fast_params(GetParam());
  // Random start times can overlap a single node's packets; find a
  // collision-free layout so every CR must decode everything.
  sim::Trace trace;
  for (std::uint64_t seed = GetParam() * 11;; ++seed) {
    Rng rng(seed);
    trace = make_trace(p, 3.0, 1.2, {{1, 18.0, -2000.0}}, rng);
    bool clean = true;
    for (std::size_t i = 0; i < trace.packets.size(); ++i) {
      if (sim::collision_level(trace, i) > 0) clean = false;
    }
    if (clean) break;
    ASSERT_LT(seed, GetParam() * 11 + 50) << "no collision-free seed";
  }
  Receiver receiver(p);
  Rng rx_rng(3);
  const auto decoded = receiver.decode(trace.iq, rx_rng);
  const auto result = sim::evaluate(trace, decoded);
  EXPECT_EQ(result.decoded_unique, trace.packets.size()) << "cr=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllCr, ReceiverCr, ::testing::Values(1u, 2u, 3u, 4u));

TEST(Receiver, DecodesTwoCollidingPackets) {
  const lora::Params p = fast_params();
  Rng rng(4);
  // Load high enough that the two nodes' packets overlap frequently.
  const sim::Trace trace = make_trace(
      p, 10.0, 1.5, {{1, 22.0, 1500.0}, {2, 16.0, -3000.0}}, rng);
  Receiver receiver(p);
  Rng rx_rng(5);
  const auto decoded = receiver.decode(trace.iq, rx_rng);
  const auto result = sim::evaluate(trace, decoded);
  // TnB should decode the large majority despite collisions (the paper's
  // own PRR under load is well below 1; the 4-way pileups in this trace are
  // the genuinely hard cases).
  EXPECT_GE(result.prr, 0.75) << result.decoded_unique << "/" << result.transmitted;
}

TEST(Receiver, OutperformsVanillaUnderCollisions) {
  const lora::Params p = fast_params();
  Rng rng(6);
  const sim::Trace trace = make_trace(
      p, 14.0, 2.0,
      {{1, 24.0, 2500.0}, {2, 15.0, -1200.0}, {3, 19.0, 400.0}}, rng);

  Rng rng_a(7), rng_b(7);
  Receiver tnb_rx(p);
  const auto tnb_result =
      sim::evaluate(trace, tnb_rx.decode(trace.iq, rng_a));

  rx::Receiver vanilla = base::make_receiver(base::Scheme::kLoRaPhy, p);
  const auto vanilla_result =
      sim::evaluate(trace, vanilla.decode(trace.iq, rng_b));

  EXPECT_GE(tnb_result.decoded_unique, vanilla_result.decoded_unique);
  EXPECT_GE(tnb_result.prr, 0.5);
}

TEST(Receiver, EmptyTraceDecodesNothing) {
  const lora::Params p = fast_params();
  IqBuffer trace(50 * p.sps(), cfloat{0.0f, 0.0f});
  Rng rng(8);
  chan::add_awgn(trace, chan::fullband_noise_power(p.osf), rng);
  Receiver receiver(p);
  ReceiverStats stats;
  EXPECT_TRUE(receiver.decode(trace, rng, &stats).empty());
  EXPECT_EQ(stats.detected, 0u);
}

TEST(Receiver, TruncatedTraceIsSafe) {
  // A packet that runs past the end of the trace must not crash the
  // receiver (windows zero-pad; CRC simply fails).
  const lora::Params p = fast_params();
  Rng rng(9);
  const sim::Trace trace =
      make_trace(p, 2.0, 1.0, {{1, 20.0, 0.0}}, rng);
  IqBuffer cut(trace.iq.begin(),
               trace.iq.begin() + static_cast<std::ptrdiff_t>(trace.iq.size() / 2));
  Receiver receiver(p);
  Rng rx_rng(10);
  const auto decoded = receiver.decode(cut, rx_rng);  // must not crash
  const auto result = sim::evaluate(trace, decoded);
  EXPECT_EQ(result.false_packets, 0u);
}

TEST(Receiver, BecConfigRescuesMoreThanDefault) {
  // At low SNR, symbol errors appear; TnB (with BEC) must decode at least
  // as many packets as Thrive (without).
  const lora::Params p = fast_params(3);
  Rng rng(11);
  const sim::Trace trace = make_trace(
      p, 8.0, 2.0, {{1, 7.0, 1000.0}, {2, 6.0, -2000.0}}, rng);

  Rng rng_a(12), rng_b(12);
  rx::Receiver tnb_rx = base::make_receiver(base::Scheme::kTnB, p);
  rx::Receiver thrive_rx = base::make_receiver(base::Scheme::kThrive, p);
  const auto with_bec = sim::evaluate(trace, tnb_rx.decode(trace.iq, rng_a));
  const auto without = sim::evaluate(trace, thrive_rx.decode(trace.iq, rng_b));
  EXPECT_GE(with_bec.decoded_unique, without.decoded_unique);
}

TEST(Receiver, TwoAntennasBeatOneAtLowSnr) {
  const lora::Params p = fast_params();
  Rng rng(13);
  sim::TraceOptions opt;
  opt.duration_s = 2.0;
  opt.load_pps = 6.0;
  opt.nodes = {{1, -2.0, 1500.0}, {2, -3.0, -800.0}};
  const sim::Trace trace = sim::build_trace(p, opt, rng);
  // Second antenna: same packets, independent noise. Rebuild with the same
  // node/packet layout is not possible through the public API, so emulate
  // diversity by decoding the same trace twice vs once — here we just check
  // the multi-antenna entry point functions with duplicated input.
  Receiver receiver(p);
  Rng rx_rng(14);
  const auto decoded =
      receiver.decode_multi({trace.iq, trace.iq}, rx_rng);
  const auto result = sim::evaluate(trace, decoded);
  Rng rx_rng2(14);
  const auto single = receiver.decode(trace.iq, rx_rng2);
  const auto single_result = sim::evaluate(trace, single);
  EXPECT_GE(result.decoded_unique, single_result.decoded_unique);
}

TEST(Receiver, StatsAreConsistent) {
  const lora::Params p = fast_params();
  Rng rng(15);
  const sim::Trace trace = make_trace(
      p, 8.0, 2.0, {{1, 20.0, 500.0}, {2, 14.0, -1500.0}}, rng);
  Receiver receiver(p);
  Rng rx_rng(16);
  ReceiverStats stats;
  const auto decoded = receiver.decode(trace.iq, rx_rng, &stats);
  EXPECT_EQ(stats.crc_ok, decoded.size());
  EXPECT_EQ(stats.rescued_per_packet.size(), decoded.size());
  EXPECT_EQ(stats.decoded_first_pass + stats.decoded_second_pass, decoded.size());
  EXPECT_LE(stats.header_ok, stats.detected + stats.decoded_second_pass);
}

}  // namespace
}  // namespace tnb::rx
