#include "lora/hamming.hpp"

#include <gtest/gtest.h>

#include <bit>

namespace tnb::lora {
namespace {

unsigned weight(std::uint8_t x) { return static_cast<unsigned>(std::popcount(static_cast<unsigned>(x))); }

TEST(Hamming, PaperExampleCodeword) {
  // Paper Section 3: data '1001' -> codeword '10011100'.
  // The paper writes bits left-to-right as columns 1..8; our storage is
  // LSB-first, so data 1001 (d1=1, d2=0, d3=0, d4=1) is nibble 0b1001.
  const std::uint8_t cw = hamming_encode8(0b1001);
  EXPECT_EQ(cw & 1, 1);         // c1 = 1
  EXPECT_EQ((cw >> 1) & 1, 0);  // c2 = 0
  EXPECT_EQ((cw >> 2) & 1, 0);  // c3 = 0
  EXPECT_EQ((cw >> 3) & 1, 1);  // c4 = 1
  EXPECT_EQ((cw >> 4) & 1, 1);  // c5 = 1
  EXPECT_EQ((cw >> 5) & 1, 1);  // c6 = 1
  EXPECT_EQ((cw >> 6) & 1, 0);  // c7 = 0
  EXPECT_EQ((cw >> 7) & 1, 0);  // c8 = 0
}

TEST(Hamming, Cr3PaperExample) {
  // Paper: with CR 3 the transmitted codeword for '1001' is '1001110'.
  const std::uint8_t cw = encode_cr(0b1001, 3);
  EXPECT_EQ(cw, 0b0111001);
}

TEST(Hamming, Cr1IsChecksum) {
  for (std::uint8_t d = 0; d < 16; ++d) {
    const std::uint8_t cw = encode_cr(d, 1);
    EXPECT_EQ(weight(cw) % 2, 0u) << "CR1 codeword must have even parity";
    EXPECT_EQ(cw & 0x0F, d);
  }
}

TEST(Hamming, CodeIsLinear) {
  for (unsigned cr = 2; cr <= 4; ++cr) {
    const auto& t = codewords(cr);
    for (unsigned a = 0; a < 16; ++a) {
      for (unsigned b = 0; b < 16; ++b) {
        EXPECT_EQ(t[a] ^ t[b], t[a ^ b]) << "cr=" << cr;
      }
    }
  }
}

TEST(Hamming, Cr1IsAlsoLinear) {
  const auto& t = codewords(1);
  for (unsigned a = 0; a < 16; ++a) {
    for (unsigned b = 0; b < 16; ++b) EXPECT_EQ(t[a] ^ t[b], t[a ^ b]);
  }
}

class HammingMinDistance : public ::testing::TestWithParam<unsigned> {};

TEST_P(HammingMinDistance, MatchesExpectation) {
  const unsigned cr = GetParam();
  const auto& t = codewords(cr);
  unsigned dmin = 8;
  for (unsigned a = 0; a < 16; ++a) {
    for (unsigned b = a + 1; b < 16; ++b) {
      dmin = std::min(dmin, weight(static_cast<std::uint8_t>(t[a] ^ t[b])));
    }
  }
  EXPECT_EQ(dmin, min_distance(cr));
}

INSTANTIATE_TEST_SUITE_P(AllCr, HammingMinDistance, ::testing::Values(1u, 2u, 3u, 4u));

TEST(Hamming, DefaultDecodeCleanCodewords) {
  for (unsigned cr = 1; cr <= 4; ++cr) {
    const auto& t = codewords(cr);
    for (unsigned d = 0; d < 16; ++d) {
      const auto r = default_decode(t[d], cr);
      EXPECT_EQ(r.data, d);
      EXPECT_EQ(r.distance, 0u);
      EXPECT_TRUE(r.unique);
    }
  }
}

class HammingOneBit : public ::testing::TestWithParam<unsigned> {};

TEST_P(HammingOneBit, Cr3Cr4CorrectAllSingleBitErrors) {
  const unsigned cr = GetParam();
  const auto& t = codewords(cr);
  for (unsigned d = 0; d < 16; ++d) {
    for (unsigned b = 0; b < 4 + cr; ++b) {
      const std::uint8_t rx = static_cast<std::uint8_t>(t[d] ^ (1u << b));
      const auto r = default_decode(rx, cr);
      EXPECT_EQ(r.data, d) << "cr=" << cr << " data=" << d << " bit=" << b;
      EXPECT_TRUE(r.unique);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CorrectingRates, HammingOneBit, ::testing::Values(3u, 4u));

class HammingDetectOnly : public ::testing::TestWithParam<unsigned> {};

TEST_P(HammingDetectOnly, Cr1Cr2DetectSingleBitErrors) {
  // dmin = 2: a 1-bit error is detected (distance 1 from >= 1 codeword, but
  // never decodes to distance 0) yet not uniquely correctable.
  const unsigned cr = GetParam();
  const auto& t = codewords(cr);
  for (unsigned d = 0; d < 16; ++d) {
    for (unsigned b = 0; b < 4 + cr; ++b) {
      const std::uint8_t rx = static_cast<std::uint8_t>(t[d] ^ (1u << b));
      const auto r = default_decode(rx, cr);
      EXPECT_EQ(r.distance, 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DetectingRates, HammingDetectOnly, ::testing::Values(1u, 2u));

TEST(Hamming, Cr4TwoBitErrorsAreDetected) {
  // dmin = 4: any 2-bit error stays at distance >= 2 from every codeword,
  // so the default decoder can never silently mis-decode it to distance <= 1.
  const auto& t = codewords(4);
  for (unsigned d = 0; d < 16; ++d) {
    for (unsigned b1 = 0; b1 < 8; ++b1) {
      for (unsigned b2 = b1 + 1; b2 < 8; ++b2) {
        const std::uint8_t rx =
            static_cast<std::uint8_t>(t[d] ^ (1u << b1) ^ (1u << b2));
        const auto r = default_decode(rx, 4);
        EXPECT_EQ(r.distance, 2u);
        EXPECT_FALSE(r.unique);  // always ambiguous at distance dmin/2
      }
    }
  }
}

TEST(Hamming, InvalidCrThrows) {
  EXPECT_THROW(encode_cr(0, 0), std::invalid_argument);
  EXPECT_THROW(encode_cr(0, 5), std::invalid_argument);
  EXPECT_THROW(codewords(0), std::invalid_argument);
  EXPECT_THROW(min_distance(9), std::invalid_argument);
}

TEST(Hamming, Cr4HasThreeWeightFourCodewordsContainingAnyPair) {
  // Appendix A.1: for CR 4 every pair of columns appears in exactly 3
  // weight-4 codewords (the companion-group property).
  const auto& t = codewords(4);
  for (unsigned c1 = 0; c1 < 8; ++c1) {
    for (unsigned c2 = c1 + 1; c2 < 8; ++c2) {
      unsigned count = 0;
      for (unsigned d = 1; d < 16; ++d) {
        const std::uint8_t cw = t[d];
        if (weight(cw) == 4 && (cw >> c1 & 1) && (cw >> c2 & 1)) ++count;
      }
      EXPECT_EQ(count, 3u) << "pair " << c1 << "," << c2;
    }
  }
}

}  // namespace
}  // namespace tnb::lora
