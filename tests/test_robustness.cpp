// Failure injection and hostile-input robustness for the full receiver:
// clipping, DC offset, CW interference, truncated packets, garbage input.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/receiver.hpp"
#include "lora/chirp.hpp"
#include "lora/frame.hpp"
#include "lora/modulator.hpp"
#include "sim/metrics.hpp"
#include "sim/trace_builder.hpp"

namespace tnb::rx {
namespace {

lora::Params rp() {
  return lora::Params{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 4};
}

sim::Trace simple_trace(std::uint64_t seed, double snr = 18.0) {
  Rng rng(seed);
  sim::TraceOptions opt;
  opt.duration_s = 1.2;
  opt.load_pps = 3.0;
  opt.nodes = {{1, snr, 1300.0}};
  return sim::build_trace(rp(), opt, rng);
}

TEST(Robustness, HardClippingStillDecodes) {
  // Saturated front-end: clip I/Q at ~1.5x the RMS. The chirp's information
  // is in the phase, so clipping mostly adds harmonics.
  sim::Trace trace = simple_trace(1);
  float rms = 0.0f;
  for (const cfloat& v : trace.iq) rms += std::norm(v);
  rms = std::sqrt(rms / static_cast<float>(trace.iq.size()));
  const float lim = 1.5f * rms;
  for (cfloat& v : trace.iq) {
    v = {std::clamp(v.real(), -lim, lim), std::clamp(v.imag(), -lim, lim)};
  }
  Receiver receiver(rp());
  Rng rng(2);
  const auto result = sim::evaluate(trace, receiver.decode(trace.iq, rng));
  EXPECT_GE(result.decoded_unique + 1, result.transmitted);  // allow 1 loss
}

TEST(Robustness, DcOffsetStillDecodes) {
  sim::Trace trace = simple_trace(3);
  for (cfloat& v : trace.iq) v += cfloat{0.5f, -0.3f};
  Receiver receiver(rp());
  Rng rng(4);
  const auto result = sim::evaluate(trace, receiver.decode(trace.iq, rng));
  EXPECT_EQ(result.decoded_unique, result.transmitted);
}

TEST(Robustness, CwInterferenceStillDecodes) {
  // A continuous-wave tone inside the band: dechirping spreads it across
  // all bins, raising the floor but leaving the peaks.
  sim::Trace trace = simple_trace(5);
  const double f = 0.11;  // cycles per sample
  for (std::size_t i = 0; i < trace.iq.size(); ++i) {
    const double ph = kTwoPi * f * static_cast<double>(i);
    trace.iq[i] += cfloat{static_cast<float>(2.0 * std::cos(ph)),
                          static_cast<float>(2.0 * std::sin(ph))};
  }
  Receiver receiver(rp());
  Rng rng(6);
  const auto result = sim::evaluate(trace, receiver.decode(trace.iq, rng));
  EXPECT_GE(result.decoded_unique + 1, result.transmitted);
}

TEST(Robustness, PacketCutAtTraceStartDoesNotCrash) {
  // A packet whose preamble starts before sample 0: half the preamble is
  // missing. The receiver must not crash and must not fabricate packets.
  const lora::Params p = rp();
  const lora::Modulator mod(p);
  Rng rng(7);
  std::vector<std::uint8_t> app(14, 0x21);
  const auto symbols = lora::make_packet_symbols(p, app);
  const IqBuffer pkt = mod.synthesize(symbols);
  IqBuffer trace(pkt.size(), cfloat{0.0f, 0.0f});
  // Copy only the second half of the preamble onward.
  const std::size_t cut = 6 * p.sps();
  for (std::size_t i = cut; i < pkt.size(); ++i) trace[i - cut] += pkt[i];
  chan::add_awgn(trace, 1.0, rng);
  Receiver receiver(p);
  const auto decoded = receiver.decode(trace, rng);
  for (const auto& d : decoded) {
    std::uint16_t node = 0, seq = 0;
    EXPECT_TRUE(sim::parse_app_payload(d.payload, node, seq));
  }
}

TEST(Robustness, PreambleOnlyTransmissionYieldsNothing) {
  // Endless upchirps with no header: detection may fire, header must fail,
  // and no packet may be emitted.
  const lora::Params p = rp();
  const auto up = lora::make_upchirp(p, 0);
  IqBuffer trace(60 * p.sps());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i] = up[i % up.size()];
  }
  Rng rng(8);
  chan::add_awgn(trace, 0.5, rng);
  Receiver receiver(p);
  EXPECT_TRUE(receiver.decode(trace, rng).empty());
}

TEST(Robustness, RandomGarbageYieldsNothing) {
  const lora::Params p = rp();
  Rng rng(9);
  IqBuffer trace(50 * p.sps());
  for (auto& v : trace) v = rng.complex_normal(25.0);  // loud noise
  Receiver receiver(p);
  ReceiverStats stats;
  EXPECT_TRUE(receiver.decode(trace, rng, &stats).empty());
}

TEST(Robustness, TraceShorterThanOneSymbol) {
  const lora::Params p = rp();
  Rng rng(10);
  IqBuffer tiny(p.sps() / 2, cfloat{1.0f, 0.0f});
  Receiver receiver(p);
  EXPECT_TRUE(receiver.decode(tiny, rng).empty());
  IqBuffer empty;
  EXPECT_TRUE(receiver.decode(empty, rng).empty());
}

TEST(Robustness, DeterministicAcrossRuns) {
  // Same trace + same seed => byte-identical decode output.
  const sim::Trace trace = simple_trace(11);
  Receiver receiver(rp());
  Rng ra(12), rb(12);
  const auto a = receiver.decode(trace.iq, ra);
  const auto b = receiver.decode(trace.iq, rb);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].payload, b[i].payload);
    EXPECT_EQ(a[i].start_sample, b[i].start_sample);
  }
}

TEST(Robustness, WeakPacketBelowDetectionFloorIsSilentlyLost) {
  // -15 dB SNR at SF 8 is below the detection floor: no crash, no output,
  // no false packets.
  const sim::Trace trace = simple_trace(13, -15.0);
  Receiver receiver(rp());
  Rng rng(14);
  const auto result = sim::evaluate(trace, receiver.decode(trace.iq, rng));
  EXPECT_EQ(result.false_packets, 0u);
}

}  // namespace
}  // namespace tnb::rx
