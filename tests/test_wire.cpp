// tnb::wire — gr-lora-sdr wire-format primitives and the WireCodec frame
// chain: per-primitive round trips, the full encode -> decode identity over
// the SF x CR grid (explicit and implicit headers, LDRO), single-symbol
// error correction through the diagonal interleaver, and end-to-end decodes
// through Receiver / StreamingReceiver on synthesized IQ.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "core/receiver.hpp"
#include "sim/trace_builder.hpp"
#include "stream/streaming_receiver.hpp"
#include "wire/wire_codec.hpp"
#include "wire/wire_format.hpp"
#include "wire/wire_modulator.hpp"

namespace {

using namespace tnb;
using namespace tnb::wire;

// ---------------------------------------------------------------- whitening

TEST(WireWhitening, KnownPrefix) {
  // SX127x LFSR x^8+x^6+x^5+x^4+1, seed 0xFF: the canonical opening bytes.
  const std::vector<std::uint8_t> expect{0xFF, 0xFE, 0xFC, 0xF8,
                                         0xF0, 0xE1, 0xC2, 0x85};
  EXPECT_EQ(whitening_sequence(8), expect);
}

TEST(WireWhitening, Involution) {
  Rng rng(11);
  std::vector<std::uint8_t> data(64);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  const auto orig = data;
  whiten(data);
  EXPECT_NE(data, orig);  // 0xFF seed flips the first byte for sure
  whiten(data);
  EXPECT_EQ(data, orig);
}

// ------------------------------------------------------------------- CRC16

TEST(WireCrc16, LastTwoBytesMixedRaw) {
  // CRC over payload[0..n-2) is 0 for an empty prefix, so a 2-byte payload's
  // CRC is just the raw XOR quirk: p[n-2] << 8 ^ p[n-1].
  const std::vector<std::uint8_t> two{0x12, 0x34};
  EXPECT_EQ(payload_crc16(two), 0x1234);
}

TEST(WireCrc16, SensitiveToEveryByte) {
  std::vector<std::uint8_t> p{1, 2, 3, 4, 5, 6};
  const std::uint16_t base = payload_crc16(p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    auto q = p;
    q[i] ^= 0x10;
    EXPECT_NE(payload_crc16(q), base) << "byte " << i;
  }
}

// ----------------------------------------------------------------- Hamming

TEST(WireHamming, RoundTripAllNibblesAllRates) {
  for (unsigned cr = 1; cr <= 4; ++cr) {
    for (unsigned n = 0; n < 16; ++n) {
      const std::uint8_t cw = wire_encode(static_cast<std::uint8_t>(n), cr);
      EXPECT_LT(cw, 1u << (4 + cr));
      EXPECT_EQ(wire_data(cw, cr), n);
      EXPECT_EQ(wire_decode(cw, cr).data, n);
      EXPECT_EQ(wire_codewords(cr)[n], cw);
    }
  }
}

TEST(WireHamming, Cr1IsEvenWeightCode) {
  for (unsigned n = 0; n < 16; ++n) {
    const unsigned w = static_cast<unsigned>(
        std::popcount(static_cast<unsigned>(wire_encode(n, 1))));
    EXPECT_EQ(w % 2, 0u) << "nibble " << n;
  }
}

TEST(WireHamming, SingleBitErrorsCorrectedAtCr3AndUp) {
  for (unsigned cr = 3; cr <= 4; ++cr) {
    for (unsigned n = 0; n < 16; ++n) {
      const std::uint8_t cw = wire_encode(static_cast<std::uint8_t>(n), cr);
      for (unsigned b = 0; b < 4 + cr; ++b) {
        EXPECT_EQ(wire_decode(static_cast<std::uint8_t>(cw ^ (1u << b)), cr).data,
                  n)
            << "cr=" << cr << " nibble=" << n << " bit=" << b;
      }
    }
  }
}

TEST(WireHamming, MinimumDistancePerRate) {
  // d_min 2/3/4 at CR 1-2/3/4: detection-only, single-error correction,
  // single-error correction + double detection.
  const unsigned expect_dmin[5] = {0, 2, 2, 3, 4};
  for (unsigned cr = 1; cr <= 4; ++cr) {
    unsigned dmin = 8;
    const auto& book = wire_codewords(cr);
    for (unsigned a = 0; a < 16; ++a) {
      for (unsigned b = a + 1; b < 16; ++b) {
        dmin = std::min(dmin, static_cast<unsigned>(std::popcount(
                                  static_cast<unsigned>(book[a] ^ book[b]))));
      }
    }
    EXPECT_EQ(dmin, expect_dmin[cr]) << "cr=" << cr;
  }
}

// -------------------------------------------------------------- interleaver

TEST(WireInterleave, RoundTrip) {
  Rng rng(3);
  for (unsigned sf_app = 5; sf_app <= 12; ++sf_app) {
    for (unsigned cr = 1; cr <= 4; ++cr) {
      const unsigned cwl = 4 + cr;
      std::vector<std::uint8_t> rows(sf_app);
      for (auto& r : rows) {
        r = static_cast<std::uint8_t>(rng.uniform_index(1u << cwl));
      }
      const auto symbols = wire_interleave(rows, sf_app, cwl);
      ASSERT_EQ(symbols.size(), cwl);
      for (std::uint32_t s : symbols) EXPECT_LT(s, 1u << sf_app);
      EXPECT_EQ(wire_deinterleave(symbols, sf_app, cwl), rows);
    }
  }
}

TEST(WireInterleave, CorruptSymbolHitsOneBitPositionOfEveryRow) {
  // The diagonal interleaver preserves the one-symbol-one-column error
  // model rx::Bec is built on: symbol i carries bit (cwl-1-i) of every row.
  const unsigned sf_app = 8, cr = 4, cwl = 8;
  Rng rng(5);
  std::vector<std::uint8_t> rows(sf_app);
  for (auto& r : rows) r = static_cast<std::uint8_t>(rng.uniform_index(256));
  auto symbols = wire_interleave(rows, sf_app, cwl);
  const unsigned victim = 3;
  symbols[victim] ^= 0xB7u & ((1u << sf_app) - 1u);
  const auto back = wire_deinterleave(symbols, sf_app, cwl);
  for (unsigned r = 0; r < sf_app; ++r) {
    const std::uint8_t diff = back[r] ^ rows[r];
    EXPECT_EQ(diff & ~static_cast<std::uint8_t>(1u << (cwl - 1 - victim)), 0)
        << "row " << r;
  }
}

// ------------------------------------------------------------ gray mapping

TEST(WireGray, ShiftRoundTrip) {
  for (unsigned sf : {5u, 7u, 10u, 12u}) {
    const std::uint32_t n_full = 1u << sf;
    for (std::uint32_t v = 0; v < n_full; ++v) {
      EXPECT_EQ(wire_symbol_for_bin(wire_shift_for_symbol(v, sf, false), sf,
                                    false),
                v);
    }
    if (sf < 7) continue;
    const std::uint32_t n_red = 1u << (sf - 2);
    for (std::uint32_t v = 0; v < n_red; ++v) {
      const std::uint32_t shift = wire_shift_for_symbol(v, sf, true);
      EXPECT_EQ(wire_symbol_for_bin(shift, sf, true), v);
      // The truncating /4 absorbs +1 and +2 bin errors on reduced blocks.
      EXPECT_EQ(wire_symbol_for_bin((shift + 1) & (n_full - 1), sf, true), v);
      EXPECT_EQ(wire_symbol_for_bin((shift + 2) & (n_full - 1), sf, true), v);
    }
  }
}

// ------------------------------------------------------------------ header

TEST(WireHeaderNibbles, RoundTrip) {
  for (unsigned len : {1u, 14u, 16u, 100u, 255u}) {
    for (unsigned cr = 1; cr <= 4; ++cr) {
      for (bool crc : {false, true}) {
        const WireHeader h{static_cast<std::uint8_t>(len),
                           static_cast<std::uint8_t>(cr), crc};
        const auto nibbles = wire_header_nibbles(h);
        const auto parsed = parse_wire_header(nibbles);
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->payload_len, len);
        EXPECT_EQ(parsed->cr, cr);
        EXPECT_EQ(parsed->has_crc, crc);
      }
    }
  }
}

TEST(WireHeaderNibbles, ChecksumCatchesSingleNibbleCorruption) {
  const WireHeader h{16, 2, true};
  const auto good = wire_header_nibbles(h);
  for (unsigned i = 0; i < 3; ++i) {
    for (unsigned bit = 0; bit < 4; ++bit) {
      auto bad = good;
      bad[i] ^= static_cast<std::uint8_t>(1u << bit);
      const auto parsed = parse_wire_header(bad);
      if (parsed.has_value()) {
        // A flip may still parse only if it lands on another valid header;
        // it must not parse back to the original fields.
        EXPECT_FALSE(parsed->payload_len == h.payload_len &&
                     parsed->cr == h.cr && parsed->has_crc == h.has_crc);
      }
    }
  }
}

TEST(WireHeaderNibbles, RejectsZeroLengthAndBadCr) {
  WireHeader h{0, 2, true};
  EXPECT_FALSE(parse_wire_header(wire_header_nibbles(h)).has_value());
  // CR 0 and CR >= 5 encode but must not parse.
  for (unsigned cr : {0u, 5u, 6u, 7u}) {
    WireHeader b{16, static_cast<std::uint8_t>(cr), true};
    EXPECT_FALSE(parse_wire_header(wire_header_nibbles(b)).has_value());
  }
}

// ------------------------------------------------------------- frame codec

/// Encode app bytes and decode them back through the codec alone (clean
/// channel: the demodulated bin equals the transmitted shift).
void codec_roundtrip(const rx::CodecConfig& cfg, std::size_t app_len,
                     std::uint64_t seed) {
  const WireCodec codec(cfg);
  Rng rng(seed);
  std::vector<std::uint8_t> app(app_len);
  for (auto& b : app) b = static_cast<std::uint8_t>(rng.uniform_index(256));

  const auto shifts = codec.encode_shifts(app);
  ASSERT_EQ(shifts.size(), codec.frame_symbols(app.size()));
  for (std::uint32_t s : shifts) EXPECT_LT(s, 1u << cfg.params.sf);

  lora::Header h;
  if (cfg.implicit_header.has_value()) {
    ASSERT_EQ(codec.header_symbols(), 0u);
    const auto ih = codec.implicit_header();
    ASSERT_TRUE(ih.has_value());
    h = *ih;
  } else {
    ASSERT_EQ(codec.header_symbols(), 8u);
    const auto hdr = codec.decode_header(
        std::span<const std::uint32_t>(shifts).first(8), nullptr);
    ASSERT_TRUE(hdr.has_value());
    EXPECT_EQ(hdr->payload_len, app.size() + 2);  // on-air incl. CRC16
    EXPECT_EQ(hdr->cr, cfg.params.cr);
    EXPECT_TRUE(hdr->has_crc);
    h = *hdr;
  }
  EXPECT_EQ(codec.header_symbols() + codec.payload_symbols(h), shifts.size());

  const auto r = codec.decode_frame(shifts, h, rng, nullptr);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.payload, app);
  EXPECT_EQ(r.rescued_codewords, 0u);  // clean channel: defaults suffice
}

class WireCodecGrid
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(WireCodecGrid, ExplicitRoundTrip) {
  const auto [sf, cr] = GetParam();
  rx::CodecConfig cfg;
  cfg.params = lora::Params{.sf = sf, .cr = cr};
  codec_roundtrip(cfg, 14, sf * 10 + cr);
}

TEST_P(WireCodecGrid, ImplicitRoundTrip) {
  const auto [sf, cr] = GetParam();
  rx::CodecConfig cfg;
  cfg.params = lora::Params{.sf = sf, .cr = cr};
  cfg.implicit_header =
      rx::ImplicitHeader{16, static_cast<std::uint8_t>(cr)};  // 14 app + CRC16
  codec_roundtrip(cfg, 14, sf * 100 + cr);
}

TEST_P(WireCodecGrid, OddLengths) {
  const auto [sf, cr] = GetParam();
  rx::CodecConfig cfg;
  cfg.params = lora::Params{.sf = sf, .cr = cr};
  for (std::size_t len : {1u, 7u, 31u}) codec_roundtrip(cfg, len, len);
}

INSTANTIATE_TEST_SUITE_P(
    SfCrGrid, WireCodecGrid,
    ::testing::Combine(::testing::Values(5u, 6u, 7u, 8u, 9u, 10u, 11u, 12u),
                       ::testing::Values(1u, 2u, 3u, 4u)));

TEST(WireCodecFrame, LdroRoundTrip) {
  for (unsigned sf : {8u, 12u}) {
    rx::CodecConfig cfg;
    cfg.params = lora::Params{.sf = sf, .cr = 4, .ldro = true};
    codec_roundtrip(cfg, 14, sf);
  }
}

TEST(WireCodecFrame, NoBecRoundTrip) {
  rx::CodecConfig cfg;
  cfg.params = lora::Params{.sf = 8, .cr = 2};
  cfg.use_bec = false;
  codec_roundtrip(cfg, 14, 99);
}

TEST(WireCodecFrame, CorruptedBinRejectedOrCorrected) {
  // +1 on a reduced-rate block-0 bin is absorbed by the truncating Gray
  // mapping; a full bit flip in a CR 4/8 symbol is a single-bit codeword
  // error, corrected by the nearest-codeword decode.
  rx::CodecConfig cfg;
  cfg.params = lora::Params{.sf = 8, .cr = 4};
  const WireCodec codec(cfg);
  Rng rng(21);
  std::vector<std::uint8_t> app(14);
  for (auto& b : app) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  auto shifts = codec.encode_shifts(app);

  shifts[2] = (shifts[2] + 1) & 0xFF;          // reduced block 0: absorbed
  shifts[10] ^= 1u << 3;                        // rest block: one bit flip
  const auto hdr = codec.decode_header(
      std::span<const std::uint32_t>(shifts).first(8), nullptr);
  ASSERT_TRUE(hdr.has_value());
  const auto r = codec.decode_frame(shifts, *hdr, rng, nullptr);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.payload, app);
}

TEST(WireCodecFrame, CrcArbitratesGarbage) {
  // A frame of random bins must not pass the CRC16 (totality + no false
  // positives on noise, within this seed).
  rx::CodecConfig cfg;
  cfg.params = lora::Params{.sf = 8, .cr = 2};
  const WireCodec codec(cfg);
  Rng rng(31);
  lora::Header h{.payload_len = 16, .cr = 2, .has_crc = true};
  std::vector<std::uint32_t> bins(8 + codec.payload_symbols(h));
  for (auto& b : bins) b = static_cast<std::uint32_t>(rng.uniform_index(256));
  const auto r = codec.decode_frame(bins, h, rng, nullptr);
  EXPECT_FALSE(r.ok);
}

TEST(WireCodecFrame, PeekMatchesLayout) {
  rx::CodecConfig cfg;
  cfg.params = lora::Params{.sf = 9, .cr = 3};
  const WireCodec codec(cfg);
  std::vector<std::uint8_t> app(23);
  std::iota(app.begin(), app.end(), 0);
  const auto shifts = codec.encode_shifts(app);
  const auto peeked = codec.peek_frame_symbols(
      std::span<const std::uint32_t>(shifts).first(8));
  ASSERT_TRUE(peeked.has_value());
  EXPECT_EQ(*peeked, shifts.size());
}

// ------------------------------------------------------------- WireModulator

TEST(WireModulatorTest, SampleCountMatchesFrameSymbols) {
  const lora::Params p{.sf = 7, .cr = 1};
  const WireModulator wmod(p);
  const std::vector<std::uint8_t> app(14, 0xA5);
  EXPECT_EQ(wmod.shifts(app).size(), wmod.frame_symbols(app.size()));
  const auto iq = wmod.synthesize(app);
  EXPECT_EQ(iq.size(), wmod.packet_samples(app.size()));
}

// --------------------------------------------------------------- end-to-end

sim::Trace wire_trace(const lora::Params& p, bool implicit, double load,
                      std::uint64_t seed) {
  std::optional<rx::ImplicitHeader> ih;
  if (implicit) ih = rx::ImplicitHeader{16, static_cast<std::uint8_t>(p.cr)};
  const auto wmod = std::make_shared<WireModulator>(p, ih);
  sim::TraceOptions opt;
  opt.duration_s = 1.5;
  opt.load_pps = load;
  opt.nodes = {{1, 15.0, 500.0}, {2, 12.0, -800.0}, {3, 18.0, 1500.0}};
  opt.implicit_header = implicit;
  opt.shift_encoder = [wmod](std::span<const std::uint8_t> app) {
    return wmod->shifts(app);
  };
  Rng rng(seed);
  return sim::build_trace(p, opt, rng);
}

TEST(WireEndToEnd, ReceiverDecodesWireFrames) {
  const lora::Params p{.sf = 8, .cr = 4};
  const sim::Trace trace = wire_trace(p, /*implicit=*/false, 4.0, 17);
  rx::ReceiverOptions ropt;
  ropt.codec_factory = wire_codec_factory();
  const rx::Receiver rxr(p, ropt);
  Rng rng(7);
  rx::ReceiverStats stats;
  const auto decoded = rxr.decode(trace.iq, rng, &stats);
  ASSERT_FALSE(trace.packets.empty());
  EXPECT_GE(decoded.size(), trace.packets.size() / 2);
  std::size_t matched = 0;
  for (const auto& d : decoded) {
    std::uint16_t node = 0, seq = 0;
    ASSERT_TRUE(sim::parse_app_payload(d.payload, node, seq));
    for (const auto& t : trace.packets) {
      if (t.node_id == node && t.seq == seq && t.app_payload == d.payload) {
        ++matched;
        break;
      }
    }
  }
  EXPECT_EQ(matched, decoded.size());  // no false decodes
  EXPECT_EQ(stats.crc_ok, decoded.size());
}

TEST(WireEndToEnd, ReceiverDecodesImplicitWireFrames) {
  const lora::Params p{.sf = 7, .cr = 2};
  const sim::Trace trace = wire_trace(p, /*implicit=*/true, 3.0, 29);
  rx::ReceiverOptions ropt;
  ropt.codec_factory = wire_codec_factory();
  ropt.implicit_header = rx::ImplicitHeader{16, 2};
  const rx::Receiver rxr(p, ropt);
  Rng rng(7);
  const auto decoded = rxr.decode(trace.iq, rng);
  ASSERT_FALSE(trace.packets.empty());
  EXPECT_GE(decoded.size(), trace.packets.size() / 2);
  for (const auto& d : decoded) {
    std::uint16_t node = 0, seq = 0;
    EXPECT_TRUE(sim::parse_app_payload(d.payload, node, seq));
  }
}

TEST(WireEndToEnd, StreamingReceiverDecodesWireFrames) {
  const lora::Params p{.sf = 8, .cr = 4};
  const sim::Trace trace = wire_trace(p, /*implicit=*/false, 4.0, 17);
  rx::ReceiverOptions ropt;
  ropt.codec_factory = wire_codec_factory();
  stream::StreamingReceiver srx(p, ropt);
  std::size_t emitted = 0;
  srx.set_packet_callback([&](const sim::DecodedPacket& pkt) {
    std::uint16_t node = 0, seq = 0;
    EXPECT_TRUE(sim::parse_app_payload(pkt.payload, node, seq));
    ++emitted;
  });
  const std::span<const cfloat> iq(trace.iq);
  const std::size_t chunk = 16 * p.sps();
  for (std::size_t off = 0; off < iq.size(); off += chunk) {
    srx.push_chunk(iq.subspan(off, std::min(chunk, iq.size() - off)));
  }
  srx.finish();
  EXPECT_GE(emitted, trace.packets.size() / 2);
}

}  // namespace
