// Pinned wire-format reference vectors: tests/vectors/wire_vectors.txt is
// produced by the independent Python implementation in gen_wire_vectors.py,
// so WireCodec and the generator can only agree by implementing the same
// gr-lora-sdr conventions. Each record is checked both ways — encode_shifts
// must reproduce the pinned shifts bit-exactly, and decoding the pinned
// shifts must recover the pinned payload bit-exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "wire/wire_codec.hpp"

namespace {

using namespace tnb;

struct Vector {
  unsigned sf = 0, cr = 0;
  bool ldro = false, implicit = false, has_crc = true;
  std::vector<std::uint8_t> payload;
  std::vector<std::uint32_t> shifts;
};

std::vector<Vector> load_vectors(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<Vector> out;
  std::string line;
  Vector v;
  int fields = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("sf=", 0) == 0) {
      v = Vector{};
      fields = 1;
      unsigned ldro = 0, implicit = 0, has_crc = 1;
      std::sscanf(line.c_str(), "sf=%u cr=%u ldro=%u implicit=%u has_crc=%u",
                  &v.sf, &v.cr, &ldro, &implicit, &has_crc);
      v.ldro = ldro != 0;
      v.implicit = implicit != 0;
      v.has_crc = has_crc != 0;
    } else if (line.rfind("payload=", 0) == 0) {
      const std::string hex = line.substr(8);
      for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
        v.payload.push_back(static_cast<std::uint8_t>(
            std::stoul(hex.substr(i, 2), nullptr, 16)));
      }
      ++fields;
    } else if (line.rfind("shifts=", 0) == 0) {
      std::stringstream ss(line.substr(7));
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        v.shifts.push_back(static_cast<std::uint32_t>(std::stoul(tok)));
      }
      if (++fields == 3) out.push_back(v);
    }
  }
  return out;
}

rx::CodecConfig config_for(const Vector& v) {
  rx::CodecConfig cfg;
  cfg.params = lora::Params{.sf = v.sf, .cr = v.cr, .ldro = v.ldro};
  if (v.implicit) {
    cfg.implicit_header = rx::ImplicitHeader{
        static_cast<std::uint8_t>(v.payload.size() + 2),
        static_cast<std::uint8_t>(v.cr)};
  }
  return cfg;
}

TEST(WireGolden, EncodeMatchesReference) {
  const auto vectors = load_vectors(TNB_WIRE_VECTOR_FILE);
  ASSERT_GE(vectors.size(), 10u);
  for (const auto& v : vectors) {
    SCOPED_TRACE("sf=" + std::to_string(v.sf) + " cr=" + std::to_string(v.cr) +
                 (v.implicit ? " implicit" : "") + (v.ldro ? " ldro" : ""));
    const wire::WireCodec codec(config_for(v));
    EXPECT_EQ(codec.encode_shifts(v.payload), v.shifts);
  }
}

TEST(WireGolden, DecodeMatchesReference) {
  const auto vectors = load_vectors(TNB_WIRE_VECTOR_FILE);
  ASSERT_GE(vectors.size(), 10u);
  for (const auto& v : vectors) {
    SCOPED_TRACE("sf=" + std::to_string(v.sf) + " cr=" + std::to_string(v.cr) +
                 (v.implicit ? " implicit" : "") + (v.ldro ? " ldro" : ""));
    const wire::WireCodec codec(config_for(v));
    lora::Header h;
    if (v.implicit) {
      const auto ih = codec.implicit_header();
      ASSERT_TRUE(ih.has_value());
      h = *ih;
    } else {
      const auto hdr = codec.decode_header(
          std::span<const std::uint32_t>(v.shifts).first(8), nullptr);
      ASSERT_TRUE(hdr.has_value());
      EXPECT_EQ(hdr->payload_len, v.payload.size() + 2);
      EXPECT_EQ(hdr->cr, v.cr);
      h = *hdr;
    }
    ASSERT_EQ(codec.header_symbols() + codec.payload_symbols(h),
              v.shifts.size());
    Rng rng(1);
    const auto r = codec.decode_frame(v.shifts, h, rng, nullptr);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.payload, v.payload);
  }
}

}  // namespace
