#include "baselines/sic.hpp"

#include <gtest/gtest.h>

#include "baselines/factories.hpp"
#include "common/rng.hpp"
#include "sim/metrics.hpp"
#include "sim/trace_builder.hpp"

namespace tnb::base {
namespace {

lora::Params sic_params() {
  return lora::Params{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 4};
}

TEST(Sic, DecodesCleanSinglePacket) {
  const lora::Params p = sic_params();
  Rng rng(1);
  sim::TraceOptions opt;
  opt.duration_s = 1.2;
  opt.load_pps = 2.0;
  opt.nodes = {{1, 20.0, 800.0}};
  const sim::Trace trace = sim::build_trace(p, opt, rng);
  SicDecoder sic(p);
  Rng rx_rng(2);
  const auto result = sim::evaluate(trace, sic.decode(trace.iq, rx_rng));
  EXPECT_EQ(result.decoded_unique, result.transmitted);
  EXPECT_EQ(result.false_packets, 0u);
}

TEST(Sic, CancellationRecoversWeakPacketUnderStrongOne) {
  // Two nodes 12 dB apart, heavily overlapping. Plain vanilla decodes only
  // the strong one; SIC cancels it and recovers the weak one.
  const lora::Params p = sic_params();
  Rng rng(3);
  sim::TraceOptions opt;
  opt.duration_s = 1.5;
  opt.load_pps = 10.0;
  opt.nodes = {{1, 24.0, 1500.0}, {2, 12.0, -2600.0}};
  const sim::Trace trace = sim::build_trace(p, opt, rng);

  Rng ra(4), rb(4);
  rx::Receiver vanilla = make_receiver(Scheme::kLoRaPhy, p);
  const auto v = sim::evaluate(trace, vanilla.decode(trace.iq, ra));
  SicDecoder sic(p);
  const auto s = sim::evaluate(trace, sic.decode(trace.iq, rb));

  EXPECT_GT(s.decoded_unique, v.decoded_unique)
      << "SIC must beat plain vanilla under power-separated collisions "
      << s.decoded_unique << " vs " << v.decoded_unique;
  EXPECT_EQ(s.false_packets, 0u);
}

TEST(Sic, StopsWhenResidualIsNoise) {
  const lora::Params p = sic_params();
  Rng rng(5);
  IqBuffer noise(60 * p.sps());
  for (auto& v : noise) v = rng.complex_normal(4.0);
  SicDecoder sic(p);
  EXPECT_TRUE(sic.decode(noise, rng).empty());
}

TEST(Sic, RoundLimitRespected) {
  const lora::Params p = sic_params();
  SicOptions opt;
  opt.max_rounds = 1;
  Rng rng(6);
  sim::TraceOptions topt;
  topt.duration_s = 1.5;
  topt.load_pps = 10.0;
  topt.nodes = {{1, 24.0, 1500.0}, {2, 12.0, -2600.0}};
  const sim::Trace trace = sim::build_trace(p, topt, rng);
  SicDecoder one_round(p, opt);
  Rng ra(7), rb(7);
  const auto r1 = sim::evaluate(trace, one_round.decode(trace.iq, ra));
  SicDecoder full(p);
  const auto rf = sim::evaluate(trace, full.decode(trace.iq, rb));
  EXPECT_LE(r1.decoded_unique, rf.decoded_unique);
}

}  // namespace
}  // namespace tnb::base
