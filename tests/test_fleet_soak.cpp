// Fleet soak: sustained heavy-load decoding through the full two-thread
// run_fleet_pipeline must keep resident IQ bounded (the backpressure
// ceiling holds at every observation point, not just at the end) and lose
// zero packets relative to the per-channel one-shot references.
//
// CI runs a short composite; set TNB_FLEET_SOAK_SECONDS (e.g. 30) for the
// full soak.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/receiver.hpp"
#include "fleet/channelizer.hpp"
#include "fleet/fleet.hpp"
#include "sim/trace_builder.hpp"
#include "stream/chunk_source.hpp"
#include "stream/ring_buffer.hpp"

namespace tnb::fleet {
namespace {

lora::Params test_params() {
  return {.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
}

double soak_seconds() {
  const char* env = std::getenv("TNB_FLEET_SOAK_SECONDS");
  if (env == nullptr) return 2.0;  // CI-sized
  return std::max(2.0, std::atof(env));
}

std::vector<std::vector<std::uint8_t>> payload_multiset(
    const std::vector<sim::DecodedPacket>& pkts) {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(pkts.size());
  for (const auto& p : pkts) out.push_back(p.payload);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(FleetSoak, BoundedMemoryAndZeroLossUnderSustainedLoad) {
  const lora::Params p = test_params();
  const unsigned n_channels = 4;
  const double duration = soak_seconds();

  Rng rng(2026);
  sim::TraceOptions topt;
  topt.duration_s = duration;
  // Heavy but sub-saturation: ~0.9 duty cycle of sustained collision
  // clusters per channel. Past duty 1 the clusters never close and the
  // assembler is forced to cut, which is a different (lossy) regime.
  topt.load_pps = 10.0;
  topt.nodes = {{1, 20.0, 900.0},  {2, 16.0, -1800.0},
                {3, 13.0, 2600.0}, {4, 10.0, -400.0}};
  const auto traces =
      sim::build_multichannel_traces(p, topt, n_channels, rng);
  std::vector<IqBuffer> per_channel;
  for (const auto& t : traces) per_channel.push_back(t.iq);
  const IqBuffer wideband = mix_channels(per_channel, n_channels);

  // Per-channel ground truth from the same channelized signal the lanes
  // will see.
  Channelizer chan({.n_channels = n_channels, .taps = 1});
  std::vector<IqBuffer> channelized(n_channels);
  chan.push(wideband, channelized);
  rx::Receiver oneshot(p);
  std::vector<std::vector<sim::DecodedPacket>> reference(n_channels);
  std::size_t total_ref = 0;
  for (unsigned c = 0; c < n_channels; ++c) {
    Rng drng(1);
    reference[c] = oneshot.decode(channelized[c], drng);
    total_ref += reference[c].size();
  }
  ASSERT_GE(total_ref, n_channels * duration * 2)
      << "soak trace too quiet to stress anything";

  FleetOptions fopt;
  fopt.n_channels = n_channels;
  fopt.sfs = {p.sf};
  fopt.lanes = 2;  // fewer workers than lanes: stealing + real queueing
  fopt.lane_queue_chunks = 3;
  fopt.stream.window_symbols = 512;
  fopt.stream.rng_seed = 1;
  Fleet fleet(p, fopt);

  // The bound must hold at every observation point during the run, not
  // just after the wind-down.
  const std::size_t bound = fleet.stats().resident_iq_bound;
  ASSERT_GT(bound, 0u);
  std::size_t observations = 0;
  std::size_t worst_resident = 0;
  const auto on_chunk = [&](std::size_t) {
    const FleetStats st = fleet.stats();
    worst_resident = std::max(worst_resident, st.resident_iq_samples);
    EXPECT_LE(st.resident_iq_samples, bound);
    ++observations;
  };

  stream::BufferSource src(wideband);
  stream::IqRing ring(1 << 18);
  const std::size_t consumed =
      run_fleet_pipeline(src, ring, fleet, 16384, true, on_chunk);
  EXPECT_EQ(consumed, wideband.size());
  EXPECT_EQ(ring.stats().dropped, 0u);
  EXPECT_GT(observations, 4u) << "soak too short to observe anything";

  const FleetStats st = fleet.stats();
  EXPECT_LE(st.resident_iq_high_water, bound);
  EXPECT_EQ(st.resident_iq_samples, 0u);
  // Peak resident IQ stays below the documented per-lane ceiling: twice
  // the assembly window plus the bounded queue, summed over lanes.
  std::size_t recomputed_bound = 0;
  for (const auto& [info, lane_st] : st.lane_stats) {
    EXPECT_LT(lane_st.high_water_samples, 2 * info.window_samples);
    EXPECT_EQ(lane_st.forced_cuts, 0u);
    recomputed_bound += 2 * info.window_samples;
  }
  EXPECT_GE(bound, recomputed_bound);

  // Zero lost-packet disagreements: every reference packet decoded, on the
  // right channel, and nothing invented.
  std::vector<std::vector<sim::DecodedPacket>> got(n_channels);
  for (const auto& e : fleet.ledger()) {
    ASSERT_LT(e.channel, n_channels);
    got[e.channel].push_back(e.pkt);
  }
  for (unsigned c = 0; c < n_channels; ++c) {
    EXPECT_EQ(payload_multiset(got[c]), payload_multiset(reference[c]))
        << "channel " << c;
  }
}

}  // namespace
}  // namespace tnb::fleet
