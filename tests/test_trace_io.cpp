#include "sim/trace_io.hpp"

#include "stream/chunk_source.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <fstream>
#include <sstream>

#include "common/rng.hpp"

namespace tnb::sim {
namespace {

TEST(TraceIo, RoundTripPreservesSamples) {
  Rng rng(1);
  IqBuffer iq(1000);
  for (auto& v : iq) v = rng.complex_normal();
  const std::string path = ::testing::TempDir() + "tnb_roundtrip.bin";
  write_trace_i16(path, iq, 4096.0);
  const IqBuffer back = read_trace_i16(path, 4096.0);
  ASSERT_EQ(back.size(), iq.size());
  for (std::size_t i = 0; i < iq.size(); ++i) {
    EXPECT_NEAR(back[i].real(), iq[i].real(), 1.0f / 4096.0f);
    EXPECT_NEAR(back[i].imag(), iq[i].imag(), 1.0f / 4096.0f);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, ClipsOutOfRangeValues) {
  IqBuffer iq{{100.0f, -100.0f}};
  const std::string path = ::testing::TempDir() + "tnb_clip.bin";
  write_trace_i16(path, iq, 1024.0);
  const IqBuffer back = read_trace_i16(path, 1024.0);
  EXPECT_NEAR(back[0].real(), 32767.0f / 1024.0f, 1e-3f);
  EXPECT_NEAR(back[0].imag(), -32768.0f / 1024.0f, 1e-3f);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_i16("/nonexistent/nope.bin"), std::runtime_error);
  IqBuffer iq(4);
  EXPECT_THROW(write_trace_i16("/nonexistent/nope.bin", iq), std::runtime_error);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  IqBuffer iq;
  const std::string path = ::testing::TempDir() + "tnb_empty.bin";
  write_trace_i16(path, iq);
  EXPECT_TRUE(read_trace_i16(path).empty());
  std::remove(path.c_str());
}

TEST(TraceIo, OddLengthFileThrows) {
  // 6 bytes = 1.5 IQ pairs: a truncated or foreign capture, not a trace.
  const std::string path = ::testing::TempDir() + "tnb_odd.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f.write("\0\1\2\3\4\5", 6);
  }
  EXPECT_THROW(
      {
        try {
          read_trace_i16(path);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("IQ pair"), std::string::npos)
              << e.what();
          throw;
        }
      },
      std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIo, ChunkReaderMatchesWholeFileRead) {
  Rng rng(5);
  IqBuffer iq(777);
  for (auto& v : iq) v = rng.complex_normal();
  const std::string path = ::testing::TempDir() + "tnb_chunked.bin";
  write_trace_i16(path, iq, 2048.0);
  const IqBuffer whole = read_trace_i16(path, 2048.0);

  // Chunk sizes that do and do not divide the trace length.
  for (const std::size_t chunk : {1uz, 7uz, 256uz, 1000uz}) {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open());
    IqBuffer assembled, piece;
    std::uint64_t offset = 0;
    while (read_trace_i16_chunk(in, piece, chunk, 2048.0, &offset) > 0) {
      EXPECT_LE(piece.size(), chunk);
      assembled.insert(assembled.end(), piece.begin(), piece.end());
    }
    EXPECT_EQ(offset, whole.size() * 4);
    ASSERT_EQ(assembled.size(), whole.size());
    for (std::size_t i = 0; i < whole.size(); ++i) {
      EXPECT_EQ(assembled[i], whole[i]);
    }
    // At EOF, further reads keep returning 0.
    EXPECT_EQ(read_trace_i16_chunk(in, piece, chunk, 2048.0), 0u);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, ChunkReaderReportsMidPairEofOffset) {
  // 10 bytes = 2 whole samples + half an IQ pair.
  std::stringstream s;
  s.write("\0\1\2\3\4\5\6\7\10\11", 10);
  IqBuffer out;
  std::uint64_t offset = 0;
  EXPECT_THROW(
      {
        try {
          read_trace_i16_chunk(s, out, 1024, 1024.0, &offset);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("byte offset"),
                    std::string::npos)
              << e.what();
          throw;
        }
      },
      std::runtime_error);
}

TEST(TraceIo, ChunkReaderTruncatedTailFlagInsteadOfThrow) {
  // Same torn stream as above, but with the caller opting into the
  // partial-chunk contract: complete samples are delivered, the flag is
  // set, nothing throws.
  std::stringstream s;
  s.write("\0\1\2\3\4\5\6\7\10\11", 10);
  IqBuffer out;
  std::uint64_t offset = 0;
  bool truncated = false;
  const std::size_t got =
      read_trace_i16_chunk(s, out, 1024, 1024.0, &offset, &truncated);
  EXPECT_EQ(got, 2u);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(truncated);
  EXPECT_EQ(offset, 10u);  // dangling bytes are accounted for
  // The stream is exhausted: further reads return 0 and keep the flag off.
  truncated = false;
  EXPECT_EQ(read_trace_i16_chunk(s, out, 1024, 1024.0, &offset, &truncated),
            0u);
  EXPECT_FALSE(truncated);
}

TEST(TraceIo, ChunkReaderTruncatedTailOnCleanStreamStaysFalse) {
  std::stringstream s;
  s.write("\0\1\2\3", 4);
  IqBuffer out;
  bool truncated = true;
  EXPECT_EQ(read_trace_i16_chunk(s, out, 8, 1024.0, nullptr, &truncated), 1u);
  EXPECT_FALSE(truncated);
}

TEST(TraceIo, WriteClipsNanToZero) {
  // A NaN sample must serialize as 0, not feed NaN into the int16 cast
  // (undefined behaviour).
  const float nan = std::numeric_limits<float>::quiet_NaN();
  IqBuffer iq{{nan, 0.5f}, {-0.5f, nan}};
  const std::string path = ::testing::TempDir() + "tnb_nan.bin";
  write_trace_i16(path, iq, 1024.0);
  const IqBuffer back = read_trace_i16(path, 1024.0);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].real(), 0.0f);
  EXPECT_NEAR(back[0].imag(), 0.5f, 1e-3f);
  EXPECT_NEAR(back[1].real(), -0.5f, 1e-3f);
  EXPECT_EQ(back[1].imag(), 0.0f);
  std::remove(path.c_str());
}

TEST(ChunkSourceHardening, IstreamSourceDeliversPartialChunkOnTornStream) {
  // 13 bytes = 3 whole samples + 1 dangling byte. The source must hand
  // over the 3 samples with a truncation status instead of throwing —
  // tnb_streamd reads arbitrary pipes and a torn tail is an operational
  // event, not a programming error.
  std::istringstream s(std::string("\0\1\2\3\4\5\6\7\10\11\12\13\14", 13));
  stream::IstreamSource src(s);
  IqBuffer chunk;
  std::size_t total = 0;
  std::size_t n;
  while ((n = src.next(chunk, 2)) > 0) total += n;
  EXPECT_EQ(total, 3u);
  EXPECT_TRUE(src.truncated_tail());
  EXPECT_EQ(src.byte_offset(), 13u);
  // End of stream is sticky: every further next() is an empty read.
  EXPECT_EQ(src.next(chunk, 2), 0u);
  EXPECT_TRUE(chunk.empty());
}

TEST(ChunkSourceHardening, IstreamSourceCleanStreamHasNoTruncation) {
  std::istringstream s(std::string("\0\1\2\3\4\5\6\7", 8));
  stream::IstreamSource src(s);
  IqBuffer chunk;
  std::size_t total = 0;
  while (src.next(chunk, 64) > 0) total += chunk.size();
  EXPECT_EQ(total, 2u);
  EXPECT_FALSE(src.truncated_tail());
  EXPECT_EQ(src.byte_offset(), 8u);
}

TEST(ChunkSourceHardening, FileReplaySourceSurfacesTruncationStatus) {
  const std::string path = ::testing::TempDir() + "tnb_torn_replay.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f.write("\0\1\2\3\4\5", 6);  // 1 whole sample + half a pair
  }
  stream::FileReplaySource src(path);
  IqBuffer chunk;
  std::size_t total = 0;
  while (src.next(chunk, 16) > 0) total += chunk.size();
  EXPECT_EQ(total, 1u);
  EXPECT_TRUE(src.truncated_tail());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tnb::sim
