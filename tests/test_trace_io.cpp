#include "sim/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.hpp"

namespace tnb::sim {
namespace {

TEST(TraceIo, RoundTripPreservesSamples) {
  Rng rng(1);
  IqBuffer iq(1000);
  for (auto& v : iq) v = rng.complex_normal();
  const std::string path = ::testing::TempDir() + "tnb_roundtrip.bin";
  write_trace_i16(path, iq, 4096.0);
  const IqBuffer back = read_trace_i16(path, 4096.0);
  ASSERT_EQ(back.size(), iq.size());
  for (std::size_t i = 0; i < iq.size(); ++i) {
    EXPECT_NEAR(back[i].real(), iq[i].real(), 1.0f / 4096.0f);
    EXPECT_NEAR(back[i].imag(), iq[i].imag(), 1.0f / 4096.0f);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, ClipsOutOfRangeValues) {
  IqBuffer iq{{100.0f, -100.0f}};
  const std::string path = ::testing::TempDir() + "tnb_clip.bin";
  write_trace_i16(path, iq, 1024.0);
  const IqBuffer back = read_trace_i16(path, 1024.0);
  EXPECT_NEAR(back[0].real(), 32767.0f / 1024.0f, 1e-3f);
  EXPECT_NEAR(back[0].imag(), -32768.0f / 1024.0f, 1e-3f);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_i16("/nonexistent/nope.bin"), std::runtime_error);
  IqBuffer iq(4);
  EXPECT_THROW(write_trace_i16("/nonexistent/nope.bin", iq), std::runtime_error);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  IqBuffer iq;
  const std::string path = ::testing::TempDir() + "tnb_empty.bin";
  write_trace_i16(path, iq);
  EXPECT_TRUE(read_trace_i16(path).empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tnb::sim
