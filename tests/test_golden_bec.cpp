// Golden-value regression test for the paper-facing BEC numbers.
//
// bench_table1_bec_capability and bench_fig20_bec_error_prob publish the
// Table 1 / Fig. 20 reproductions recorded in EXPERIMENTS.md. Their
// Monte-Carlo (core/bec_montecarlo) is deterministic — xoshiro256++ with
// fixed seeds, no toolchain-dependent distributions — so the exact success
// counts are pinned here: any refactor of BEC, the Hamming tables, or the
// RNG that silently shifts a published number fails this test.
#include <gtest/gtest.h>

#include "core/bec_analysis.hpp"
#include "core/bec_montecarlo.hpp"

namespace tnb::rx {
namespace {

// One Rng(1) stream threaded through the rows in bench order, 3000 trials
// each — exactly bench_table1_bec_capability's default-mode loop.
TEST(GoldenBec, Table1CapabilityCounts) {
  struct Row {
    unsigned cr, n_err;
    int ok_default, ok_bec;
  };
  // (default, BEC) successes out of 3000; EXPERIMENTS.md shows the rates.
  const Row golden[] = {
      {1, 1, 78, 3000},    // BEC corrects every 1-symbol error at CR 1
      {2, 1, 304, 3000},   // ... and CR 2
      {3, 1, 3000, 3000},  // CR 3: default also survives 1 symbol
      {3, 2, 255, 2987},   // "almost all" 2-symbol at CR 3 (0.9957)
      {4, 1, 3000, 3000},
      {4, 2, 604, 3000},   // all 2-symbol at CR 4
      {4, 3, 47, 2950},    // >96% of 3-symbol at CR 4 (0.9833)
  };
  const int trials = 3000;
  Rng rng(1);
  for (const Row& row : golden) {
    const BecMcResult r =
        bec_capability_mc(8, row.cr, row.n_err, trials, rng);
    EXPECT_EQ(r.ok_default, row.ok_default)
        << "CR " << row.cr << ", " << row.n_err << " corrupted columns";
    EXPECT_EQ(r.ok_bec, row.ok_bec)
        << "CR " << row.cr << ", " << row.n_err << " corrupted columns";
  }
}

// Paper claims, independent of the exact counts: they must keep holding
// even if the Monte-Carlo is ever reseeded.
TEST(GoldenBec, Table1PaperClaims) {
  const int trials = 2000;
  Rng rng(7);
  for (unsigned cr = 1; cr <= 4; ++cr) {
    EXPECT_EQ(bec_capability_mc(8, cr, 1, trials, rng).ok_bec, trials)
        << "BEC must correct every 1-symbol error at CR " << cr;
  }
  EXPECT_EQ(bec_capability_mc(8, 4, 2, trials, rng).ok_bec, trials)
      << "BEC must correct every 2-symbol error at CR 4";
  EXPECT_GE(bec_capability_mc(8, 4, 3, trials, rng).bec_rate(), 0.96)
      << "BEC must correct >96% of 3-symbol errors at CR 4";
}

// Rng(20), 8000 trials per SF in ascending order — exactly
// bench_fig20_bec_error_prob's default-mode simulation column.
TEST(GoldenBec, Fig20SimulationCounts) {
  struct Row {
    unsigned sf;
    int ok_bec;  ///< failures = 8000 - ok_bec
  };
  const Row golden[] = {{7, 7743},  {8, 7860},  {9, 7936},
                        {10, 7975}, {11, 7987}, {12, 7997}};
  const int trials = 8000;
  Rng rng(20);
  for (const Row& row : golden) {
    const BecMcResult r = bec_capability_mc(row.sf, 4, 3, trials, rng);
    EXPECT_EQ(r.ok_bec, row.ok_bec) << "SF " << row.sf;
  }
}

// The Lemma-4 closed form printed next to the simulation column.
TEST(GoldenBec, Fig20AnalysisColumn) {
  const double golden[] = {0.02800, 0.01442, 0.00736,
                           0.00374, 0.00189, 0.00095};
  for (unsigned sf = 7; sf <= 12; ++sf) {
    EXPECT_NEAR(bec_cr4_3col_error_probability(sf), golden[sf - 7], 5e-6)
        << "SF " << sf;
  }
  // Structural claims: < 0.04 at SF 7 and monotonically decreasing.
  EXPECT_LT(bec_cr4_3col_error_probability(7), 0.04);
  for (unsigned sf = 8; sf <= 12; ++sf) {
    EXPECT_LT(bec_cr4_3col_error_probability(sf),
              bec_cr4_3col_error_probability(sf - 1));
  }
}

}  // namespace
}  // namespace tnb::rx
