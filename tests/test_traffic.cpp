// Property tests for the sim traffic-model layer (deployment.hpp):
// duty-cycle budgets, ADR SF assignment, arrival-process statistics, and
// jobs-determinism of traffic-driven experiment grids.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "lora/frame.hpp"
#include "sim/deployment.hpp"
#include "sim/experiment.hpp"
#include "sim/trace_builder.hpp"

namespace {

using namespace tnb;

/// Index of dispersion (variance/mean) of per-bin arrival counts.
double index_of_dispersion(const std::vector<double>& times,
                           double duration_s, double bin_s) {
  const std::size_t n_bins =
      static_cast<std::size_t>(std::ceil(duration_s / bin_s));
  std::vector<double> counts(n_bins, 0.0);
  for (double t : times) {
    const auto b = static_cast<std::size_t>(t / bin_s);
    if (b < n_bins) counts[b] += 1.0;
  }
  double mean = 0.0;
  for (double c : counts) mean += c;
  mean /= static_cast<double>(n_bins);
  double var = 0.0;
  for (double c : counts) var += (c - mean) * (c - mean);
  var /= static_cast<double>(n_bins - 1);
  return mean > 0.0 ? var / mean : 0.0;
}

std::vector<double> arrival_times(const sim::TrafficDraw& draw) {
  std::vector<double> t;
  t.reserve(draw.arrivals.size());
  for (const sim::PacketArrival& a : draw.arrivals) t.push_back(a.start_s);
  return t;
}

sim::TrafficModel model(sim::Arrivals arrivals) {
  sim::TrafficModel tm;
  tm.arrivals = arrivals;
  return tm;
}

TEST(Traffic, ParseNamesRoundTrip) {
  EXPECT_EQ(sim::parse_traffic("poisson").arrivals, sim::Arrivals::kPoisson);
  EXPECT_EQ(sim::parse_traffic("bursty").arrivals, sim::Arrivals::kBursty);
  EXPECT_EQ(sim::parse_traffic("diurnal").arrivals, sim::Arrivals::kDiurnal);
  EXPECT_THROW(sim::parse_traffic("fractal"), std::invalid_argument);
  for (const char* name : {"poisson", "bursty", "diurnal"}) {
    EXPECT_STREQ(sim::arrivals_name(sim::parse_traffic(name).arrivals), name);
  }
}

TEST(Traffic, ValidateRejectsBadModels) {
  sim::TrafficModel tm;
  tm.duty_cycle = 1.5;
  EXPECT_THROW(tm.validate(), std::invalid_argument);
  tm = sim::TrafficModel{};
  tm.burst_factor = 0.5;
  EXPECT_THROW(tm.validate(), std::invalid_argument);
  tm = sim::TrafficModel{};
  tm.diurnal_depth = 1.0;
  EXPECT_THROW(tm.validate(), std::invalid_argument);
  tm = sim::TrafficModel{};
  tm.sf_weights = {{13u, 1.0}};
  EXPECT_THROW(tm.validate(), std::invalid_argument);
  tm = sim::TrafficModel{};
  tm.sf_weights = {{8u, 0.0}};
  EXPECT_THROW(tm.validate(), std::invalid_argument);  // weights sum to 0
  EXPECT_NO_THROW(sim::TrafficModel{}.validate());
}

// Poisson arrivals at rate lambda: mean count ~ lambda*T, index of
// dispersion ~ 1 (the defining property).
TEST(Traffic, PoissonMeanAndDispersion) {
  const double load = 20.0, duration = 200.0;
  Rng rng(1);
  const std::vector<unsigned> node_sf(4, 8u);
  const auto draw =
      sim::draw_arrivals(model(sim::Arrivals::kPoisson), load, duration,
                         node_sf, [](unsigned) { return 0.1; }, rng);
  const auto times = arrival_times(draw);
  EXPECT_NEAR(static_cast<double>(times.size()), load * duration,
              4.0 * std::sqrt(load * duration));
  const double id = index_of_dispersion(times, duration, 1.0);
  EXPECT_GT(id, 0.5);
  EXPECT_LT(id, 1.5);
  EXPECT_EQ(draw.duty_dropped, 0u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  for (const sim::PacketArrival& a : draw.arrivals) {
    EXPECT_GE(a.start_s, 0.0);
    EXPECT_LT(a.start_s, duration);
    EXPECT_LT(a.node, 4u);
    EXPECT_EQ(a.sf, 8u);
  }
}

// MMPP-2 bursty arrivals: same mean load, but clumped — the index of
// dispersion is pinned well above the Poisson value of 1.
TEST(Traffic, BurstyOverdispersedAtSameMeanLoad) {
  const double load = 20.0, duration = 200.0;
  Rng rng(2);
  const std::vector<unsigned> node_sf(2, 8u);
  const auto draw =
      sim::draw_arrivals(model(sim::Arrivals::kBursty), load, duration,
                         node_sf, [](unsigned) { return 0.1; }, rng);
  const auto times = arrival_times(draw);
  // Mean load is preserved (within 25% — MMPP variance is large).
  EXPECT_NEAR(static_cast<double>(times.size()), load * duration,
              0.25 * load * duration);
  const double id = index_of_dispersion(times, duration, 1.0);
  EXPECT_GT(id, 1.5) << "bursty arrivals are not overdispersed";
}

// Diurnal arrivals: cosine-shaped rate peaking at the period edges. With
// period == duration, the first and last quarters must carry well more
// traffic than the middle half.
TEST(Traffic, DiurnalShapeFollowsCosine)
{
  const double load = 20.0, duration = 400.0;
  sim::TrafficModel tm = model(sim::Arrivals::kDiurnal);
  tm.diurnal_depth = 0.8;
  Rng rng(3);
  const std::vector<unsigned> node_sf(2, 8u);
  const auto draw = sim::draw_arrivals(tm, load, duration, node_sf,
                                       [](unsigned) { return 0.1; }, rng);
  std::size_t edges = 0, middle = 0;
  for (const sim::PacketArrival& a : draw.arrivals) {
    const double frac = a.start_s / duration;
    if (frac < 0.25 || frac >= 0.75) ++edges;
    else ++middle;
  }
  ASSERT_GT(edges + middle, 1000u);
  EXPECT_GT(static_cast<double>(edges), 1.5 * static_cast<double>(middle));
}

// The duty-cycle budget is a hard cap: per node, the airtime of accepted
// arrivals never exceeds duty_cycle * duration, and everything over the
// budget is counted in duty_dropped.
TEST(Traffic, DutyCycleNeverExceeded) {
  const double load = 30.0, duration = 50.0, airtime = 0.12;
  for (double duty : {0.01, 0.05, 0.2}) {
    sim::TrafficModel tm = model(sim::Arrivals::kPoisson);
    tm.duty_cycle = duty;
    Rng rng(4);
    const std::vector<unsigned> node_sf(5, 8u);
    const auto draw = sim::draw_arrivals(
        tm, load, duration, node_sf, [=](unsigned) { return airtime; }, rng);
    std::map<unsigned, double> used;
    for (const sim::PacketArrival& a : draw.arrivals) {
      used[a.node] += airtime;
    }
    const double budget = duty * duration;
    for (const auto& [node, airtime_sum] : used) {
      EXPECT_LE(airtime_sum, budget + 1e-9) << "node " << node;
    }
    EXPECT_GT(draw.duty_dropped, 0u) << "duty=" << duty;
    // Dropped + accepted = offered.
    Rng rng2(4);
    tm.duty_cycle = 0.0;
    const auto all = sim::draw_arrivals(
        tm, load, duration, node_sf, [=](unsigned) { return airtime; }, rng2);
    EXPECT_EQ(draw.arrivals.size() + draw.duty_dropped, all.arrivals.size());
  }
}

// ADR SF assignment: the node histogram converges to the configured
// weights; an empty weight table assigns everyone the default SF without
// consuming randomness.
TEST(Traffic, AdrSfHistogramWithinTolerance) {
  sim::TrafficModel tm;
  tm.sf_weights = {{7u, 0.5}, {8u, 0.3}, {9u, 0.2}};
  const std::size_t n_nodes = 3000;
  Rng rng(5);
  const auto sfs = sim::draw_sf_assignment(tm, n_nodes, 8u, rng);
  ASSERT_EQ(sfs.size(), n_nodes);
  std::map<unsigned, double> hist;
  for (unsigned sf : sfs) hist[sf] += 1.0 / static_cast<double>(n_nodes);
  EXPECT_NEAR(hist[7u], 0.5, 0.03);
  EXPECT_NEAR(hist[8u], 0.3, 0.03);
  EXPECT_NEAR(hist[9u], 0.2, 0.03);
  EXPECT_EQ(hist.size(), 3u);

  Rng a(6), b(6);
  const auto defaults = sim::draw_sf_assignment(sim::TrafficModel{}, 100, 9u, a);
  EXPECT_TRUE(std::all_of(defaults.begin(), defaults.end(),
                          [](unsigned sf) { return sf == 9u; }));
  EXPECT_EQ(a.uniform(), b.uniform());  // no draws consumed
}

// Weights don't need to be normalized: {1, 3} behaves as {0.25, 0.75}.
TEST(Traffic, SfWeightsUnnormalized) {
  sim::TrafficModel tm;
  tm.sf_weights = {{7u, 1.0}, {10u, 3.0}};
  Rng rng(7);
  const auto sfs = sim::draw_sf_assignment(tm, 4000, 8u, rng);
  const double frac7 =
      static_cast<double>(std::count(sfs.begin(), sfs.end(), 7u)) / 4000.0;
  EXPECT_NEAR(frac7, 0.25, 0.03);
}

// Traffic-driven build_trace: ground truth carries only same-SF packets,
// foreign-SF arrivals are synthesized (longer airtime at higher SF, so
// the waveform energy rises) but never serialized.
TEST(Traffic, ForeignSfExcludedFromGroundTruth) {
  const lora::Params params{.sf = 8, .cr = 4, .bandwidth_hz = 125e3,
                            .osf = 2};
  sim::TraceOptions opt;
  opt.duration_s = 2.0;
  opt.load_pps = 10.0;
  opt.nodes.resize(6);
  for (std::size_t i = 0; i < opt.nodes.size(); ++i) {
    opt.nodes[i].id = static_cast<std::uint16_t>(i + 1);
    opt.nodes[i].snr_db = 12.0;
  }
  sim::TrafficModel tm;
  tm.sf_weights = {{8u, 0.5}, {10u, 0.5}};
  opt.traffic = tm;
  Rng rng(8);
  const sim::Trace trace = sim::build_trace(params, opt, rng);
  EXPECT_GT(trace.n_foreign, 0u);
  EXPECT_GT(trace.packets.size(), 0u);
  for (const sim::TxPacketRecord& rec : trace.packets) {
    // Same-SF records only: their symbol counts match params at SF 8.
    EXPECT_EQ(rec.n_data_symbols,
              lora::num_packet_symbols(params, opt.app_payload_bytes + 2));
  }
}

// The jobs-determinism contract extends to traffic + impairments: a
// run_grid over traffic scenarios produces bit-identical Series for jobs
// 1 and jobs 8.
TEST(Traffic, GridDeterministicAcrossJobs) {
  std::vector<sim::Scenario> scenarios;
  for (const char* name : {"poisson", "bursty", "diurnal"}) {
    sim::Scenario s;
    s.params = lora::Params{.sf = 7, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
    s.deployment = sim::indoor_deployment();
    s.deployment.n_nodes = 4;
    s.load_pps = 6.0;
    s.duration_s = 1.0;
    s.traffic = sim::parse_traffic(name);
    s.impairments.push_back(
        impair::parse_impairment("quantize,bits=12"));
    scenarios.push_back(s);
  }
  const auto score = [](const sim::Trace& t, int, int) {
    double sum = 0.0;
    for (const cfloat& v : t.iq) sum += std::norm(v);
    return sum + static_cast<double>(t.packets.size()) +
           static_cast<double>(t.n_foreign);
  };
  const auto s1 = sim::run_grid(scenarios, 3, 99, score, {.jobs = 1});
  const auto s8 = sim::run_grid(scenarios, 3, 99, score, {.jobs = 8});
  ASSERT_EQ(s1.size(), s8.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].values, s8[i].values) << "scenario " << i;
  }
}

}  // namespace
