// The paper's worked example (Figs. 2 and 7): an SF 8 / CR 3 block with
// symbols 2 and 7 corrupted, where one row takes errors in both columns
// and the default decoder "snaps" it to the wrong codeword by flipping the
// companion column 3. BEC tests all combinations of two columns from
// Xi = {c2, c3, c7} and recovers the transmitted block.
#include <gtest/gtest.h>

#include <bit>

#include "common/rng.hpp"
#include "core/bec.hpp"
#include "lora/hamming.hpp"

namespace tnb::rx {
namespace {

// Paper columns are 1-indexed; our bit positions are 0-indexed.
constexpr unsigned kCol2 = 1;
constexpr unsigned kCol3 = 2;
constexpr unsigned kCol7 = 6;

TEST(PaperExample, CompanionOfColumns2And7IsColumn3) {
  // Section 6.1: "a binary vector with '1's only in columns 2, 3 and 7 is
  // a valid codeword", making c3 the companion of {c2, c7} — and cyclically
  // c2 of {c3, c7}, c7 of {c2, c3}.
  const Bec bec(8, 3);
  const auto c27 = bec.companions((1u << kCol2) | (1u << kCol7));
  ASSERT_EQ(c27.size(), 1u);
  EXPECT_EQ(c27[0], 1u << kCol3);
  const auto c37 = bec.companions((1u << kCol3) | (1u << kCol7));
  ASSERT_EQ(c37.size(), 1u);
  EXPECT_EQ(c37[0], 1u << kCol2);
  const auto c23 = bec.companions((1u << kCol2) | (1u << kCol3));
  ASSERT_EQ(c23.size(), 1u);
  EXPECT_EQ(c23[0], 1u << kCol7);

  // The underlying fact: 0b1000110 (columns 2,3,7 set) is a codeword.
  bool found = false;
  for (unsigned d = 0; d < 16; ++d) {
    if (lora::codewords(3)[d] ==
        ((1u << kCol2) | (1u << kCol3) | (1u << kCol7))) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PaperExample, Fig2Fig7BlockRecovered) {
  // Build the Fig. 2 situation: SF 8, CR 3; errors confined to columns 2
  // and 7; row 7 (index 6) has errors in BOTH columns, every other row in
  // at most one.
  Rng rng(2022);
  std::vector<std::uint8_t> truth(8);
  for (auto& r : truth) r = lora::codewords(3)[rng.uniform_index(16)];

  std::vector<std::uint8_t> received = truth;
  // Single errors: rows 2,3,4 in column 2; rows 5,6,8 in column 7.
  for (unsigned r : {1u, 2u, 3u}) received[r] ^= 1u << kCol2;
  for (unsigned r : {4u, 5u, 7u}) received[r] ^= 1u << kCol7;
  // Row 7 (index 6): errors in both true error columns.
  received[6] ^= (1u << kCol2) | (1u << kCol7);

  // The default decoder fixes every single-error row but mis-corrects
  // row 7 by flipping companion column 3 (Fig. 2(c)).
  for (unsigned r = 0; r < 8; ++r) {
    const auto d = lora::default_decode(received[r], 3);
    if (r == 6) {
      EXPECT_NE(d.codeword, truth[r]);
      EXPECT_EQ(d.codeword, received[r] ^ (1u << kCol3))
          << "default decoder must flip the companion column";
    } else {
      EXPECT_EQ(d.codeword, truth[r]);
    }
  }

  // BEC produces the three Delta_1 repairs of Fig. 7 and one of them is
  // the transmitted block; the packet CRC would select it.
  const Bec bec(8, 3);
  BecStats stats;
  const auto candidates = bec.decode_block(received, &stats);
  EXPECT_EQ(stats.delta1, 3u);  // combinations {2,3},{2,7},{3,7}
  bool recovered = false;
  for (const auto& cand : candidates) {
    if (cand == truth) recovered = true;
  }
  EXPECT_TRUE(recovered);
}

TEST(PaperExample, XiContainsTrueColumnsAndCompanion) {
  // With the Fig. 2 error pattern, the single-error rows reveal columns 2
  // and 7 and the double-error row contributes the companion column 3 —
  // the Xi = {c2, c3, c7} the paper reads off the diffs.
  Rng rng(7);
  std::vector<std::uint8_t> truth(8);
  for (auto& r : truth) r = lora::codewords(3)[rng.uniform_index(16)];
  std::vector<std::uint8_t> received = truth;
  for (unsigned r : {1u, 2u, 3u}) received[r] ^= 1u << kCol2;
  for (unsigned r : {4u, 5u, 7u}) received[r] ^= 1u << kCol7;
  received[6] ^= (1u << kCol2) | (1u << kCol7);

  std::uint8_t xi = 0;
  for (unsigned r = 0; r < 8; ++r) {
    const std::uint8_t diff =
        received[r] ^ lora::default_decode(received[r], 3).codeword;
    if (std::popcount(static_cast<unsigned>(diff)) == 1) xi |= diff;
  }
  EXPECT_EQ(xi, (1u << kCol2) | (1u << kCol3) | (1u << kCol7));
}

}  // namespace
}  // namespace tnb::rx
