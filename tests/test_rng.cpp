#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"

namespace tnb {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng r(3);
  std::array<int, 7> counts{};
  for (int i = 0; i < 7000; ++i) counts[r.uniform_index(7)]++;
  for (int c : counts) EXPECT_GT(c, 700);  // roughly 1000 each
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(13);
  double sum = 0.0, sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.02);
}

TEST(Rng, NormalMeanStdDev) {
  Rng r(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ComplexNormalVariance) {
  Rng r(19);
  double power = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) power += std::norm(r.complex_normal(3.0));
  EXPECT_NEAR(power / n, 3.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(MathUtil, FloorModInt) {
  EXPECT_EQ(floor_mod(std::int64_t{5}, std::int64_t{3}), 2);
  EXPECT_EQ(floor_mod(std::int64_t{-1}, std::int64_t{3}), 2);
  EXPECT_EQ(floor_mod(std::int64_t{-3}, std::int64_t{3}), 0);
  EXPECT_EQ(floor_mod(std::int64_t{0}, std::int64_t{7}), 0);
}

TEST(MathUtil, FloorModDouble) {
  EXPECT_NEAR(floor_mod(5.5, 3.0), 2.5, 1e-12);
  EXPECT_NEAR(floor_mod(-0.5, 3.0), 2.5, 1e-12);
}

TEST(MathUtil, WrapHalf) {
  EXPECT_NEAR(wrap_half(0.6, 1.0), -0.4, 1e-12);
  EXPECT_NEAR(wrap_half(0.4, 1.0), 0.4, 1e-12);
  EXPECT_NEAR(wrap_half(-0.6, 1.0), 0.4, 1e-12);
}

TEST(MathUtil, DbConversions) {
  EXPECT_NEAR(db_to_linear(10.0), 10.0, 1e-12);
  EXPECT_NEAR(linear_to_db(100.0), 20.0, 1e-12);
  EXPECT_NEAR(db_to_amplitude(20.0), 10.0, 1e-12);
  EXPECT_NEAR(linear_to_db(db_to_linear(-7.3)), -7.3, 1e-12);
}

TEST(MathUtil, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(768));
  EXPECT_EQ(log2_pow2(1), 0u);
  EXPECT_EQ(log2_pow2(4096), 12u);
}

}  // namespace
}  // namespace tnb
