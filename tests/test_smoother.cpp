#include "dsp/smoother.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace tnb::dsp {
namespace {

TEST(Smoother, ConstantSeriesUnchanged) {
  std::vector<double> x(20, 5.0);
  auto y = smooth_moving(x, 5);
  for (double v : y) EXPECT_NEAR(v, 5.0, 1e-12);
}

TEST(Smoother, WindowOneIsIdentity) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  auto y = smooth_moving(x, 1);
  EXPECT_EQ(y, x);
}

TEST(Smoother, LinearTrendPreservedInInterior) {
  std::vector<double> x(30);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 2.0 * static_cast<double>(i) + 1.0;
  auto y = smooth_moving(x, 5);
  // A centered mean of a linear function equals the function away from edges.
  for (std::size_t i = 2; i + 2 < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-9);
}

TEST(Smoother, EdgeWindowsShrinkLikeMovmean) {
  std::vector<double> x{0.0, 3.0, 6.0, 9.0, 12.0};
  auto y = smooth_moving(x, 3);
  EXPECT_NEAR(y[0], (0.0 + 3.0) / 2.0, 1e-12);       // window [0,1]
  EXPECT_NEAR(y[1], (0.0 + 3.0 + 6.0) / 3.0, 1e-12); // window [0,2]
  EXPECT_NEAR(y[4], (9.0 + 12.0) / 2.0, 1e-12);      // window [3,4]
}

TEST(Smoother, EvenWindowForcedOdd) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  auto y4 = smooth_moving(x, 4);  // becomes 5
  auto y5 = smooth_moving(x, 5);
  EXPECT_EQ(y4, y5);
}

TEST(Smoother, ReducesNoiseVariance) {
  Rng rng(31);
  std::vector<double> x(500);
  for (auto& v : x) v = rng.normal();
  auto y = smooth_moving(x, 9);
  double vx = 0.0, vy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    vx += x[i] * x[i];
    vy += y[i] * y[i];
  }
  EXPECT_LT(vy, vx / 4.0);  // 9-sample mean cuts variance ~9x
}

TEST(Smoother, DefaultWindowBounds) {
  EXPECT_GE(default_smooth_window(4), 3u);
  EXPECT_LE(default_smooth_window(1000), 25u);
  EXPECT_EQ(default_smooth_window(40), 10u);
}

TEST(Smoother, MedianOddEven) {
  std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_NEAR(median_of(odd), 2.0, 1e-12);
  std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_NEAR(median_of(even), 2.5, 1e-12);
  std::vector<double> empty;
  EXPECT_EQ(median_of(empty), 0.0);
}

TEST(Smoother, MedianAbsDev) {
  std::vector<double> data{1.0, 2.0, 3.0, 10.0};
  std::vector<double> fit{1.0, 2.0, 3.0, 4.0};
  // Deviations: 0,0,0,6 -> median 0.
  EXPECT_NEAR(median_abs_dev(data, fit), 0.0, 1e-12);
  std::vector<double> fit2{0.0, 1.0, 5.0, 9.0};
  // Deviations: 1,1,2,1 -> median 1.
  EXPECT_NEAR(median_abs_dev(data, fit2), 1.0, 1e-12);
}

TEST(Smoother, MedianAbsDevSizeMismatchThrows) {
  std::vector<double> a{1.0, 2.0};
  std::vector<double> b{1.0};
  EXPECT_THROW(median_abs_dev(a, b), std::invalid_argument);
}

TEST(Smoother, SmoothFitTracksSlowTrend) {
  // Slow sinusoid + noise: the fit should stay within a fraction of the
  // noise amplitude of the trend.
  Rng rng(37);
  const std::size_t n = 200;
  std::vector<double> trend(n), data(n);
  for (std::size_t i = 0; i < n; ++i) {
    trend[i] = 10.0 + 3.0 * std::sin(static_cast<double>(i) / 40.0);
    data[i] = trend[i] + rng.normal(0.0, 0.5);
  }
  auto fit = smooth_fit(data);
  double err = 0.0;
  for (std::size_t i = 10; i + 10 < n; ++i) err += std::abs(fit[i] - trend[i]);
  err /= static_cast<double>(n - 20);
  EXPECT_LT(err, 0.4);
}

}  // namespace
}  // namespace tnb::dsp
