// tnb::obs under concurrency: counters/gauges/histograms hammered from
// ThreadPool workers, registration races, and snapshots taken mid-flight.
// Runs under the TSan CI job — the assertions matter, but so does the
// absence of data-race reports.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/stage_timer.hpp"

namespace tnb::obs {
namespace {

constexpr int kWorkers = 8;
constexpr std::uint64_t kPerWorker = 50000;

TEST(ObsConcurrency, CounterIncrementsAreNotLost) {
  Registry reg;
  // Each worker registers the same counter itself — the registration race
  // and the increment race in one test.
  common::parallel_for(kWorkers, kWorkers, [&](std::size_t) {
    CounterRef c = reg.counter("hits", "hammered");
    for (std::uint64_t i = 0; i < kPerWorker; ++i) c.inc();
  });
  const Snapshot snap = reg.snapshot();
  const Snapshot::Metric* m = snap.find("hits");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->value, static_cast<double>(kWorkers * kPerWorker));
}

TEST(ObsConcurrency, HistogramCountBucketsAndSumAgree) {
  Registry reg;
  const double bounds[] = {1.0, 2.0, 4.0, 8.0};
  common::parallel_for(kWorkers, kWorkers, [&](std::size_t w) {
    HistogramRef h = reg.histogram("lat", bounds);
    for (std::uint64_t i = 0; i < kPerWorker; ++i) {
      h.observe(static_cast<double>((w + i) % 10));  // 0..9, some overflow
    }
  });
  const Snapshot snap = reg.snapshot();
  const Snapshot::Metric* m = snap.find("lat");
  ASSERT_NE(m, nullptr);
  const std::uint64_t total = kWorkers * kPerWorker;
  EXPECT_EQ(m->count, total);
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t b : m->buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, total);
  // Every worker observes each residue 0..9 exactly kPerWorker/10 times,
  // so the value sum is exact: 45 per 10 observations.
  EXPECT_DOUBLE_EQ(m->sum, static_cast<double>(total) / 10.0 * 45.0);
}

TEST(ObsConcurrency, GaugeUpdateMaxConverges) {
  Registry reg;
  common::parallel_for(kWorkers, kWorkers, [&](std::size_t w) {
    GaugeRef g = reg.gauge("peak");
    for (std::uint64_t i = 0; i < kPerWorker; ++i) {
      g.update_max(static_cast<std::int64_t>(w * kPerWorker + i));
    }
  });
  const Snapshot snap = reg.snapshot();
  const Snapshot::Metric* m = snap.find("peak");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->value, static_cast<double>(kWorkers * kPerWorker - 1));
}

TEST(ObsConcurrency, RegistrationRaceYieldsOneEntryPerIdentity) {
  Registry reg;
  common::parallel_for(kWorkers, kWorkers, [&](std::size_t w) {
    for (int round = 0; round < 200; ++round) {
      reg.counter("shared").inc();
      reg.counter("labeled", "", {{"w", std::to_string(w % 2)}}).inc();
      reg.histogram("stages", duration_bounds(), "",
                    {{"stage", round % 2 == 0 ? "a" : "b"}});
    }
  });
  const Snapshot snap = reg.snapshot();
  // shared + labeled{0} + labeled{1} + stages{a} + stages{b}
  EXPECT_EQ(snap.metrics.size(), 5u);
  EXPECT_EQ(snap.find("shared")->value,
            static_cast<double>(kWorkers * 200));
}

TEST(ObsConcurrency, SnapshotDuringHammerIsConsistent) {
  Registry reg;
  CounterRef c = reg.counter("busy");
  std::atomic<bool> stop{false};
  common::ThreadPool pool(kWorkers);
  for (int w = 0; w < kWorkers - 1; ++w) {
    pool.submit([&] {
      while (!stop.load(std::memory_order_relaxed)) c.inc();
    });
  }
  pool.submit([&] {
    double last = 0.0;
    for (int i = 0; i < 200; ++i) {
      const Snapshot snap = reg.snapshot();
      const Snapshot::Metric* m = snap.find("busy");
      ASSERT_NE(m, nullptr);
      EXPECT_GE(m->value, last);  // counters never go backwards
      last = m->value;
    }
    stop.store(true, std::memory_order_relaxed);
  });
  pool.wait();
  EXPECT_GT(c.value(), 0u);
}

}  // namespace
}  // namespace tnb::obs
