// IqRing: the SPSC chunk queue between the front-end thread and the
// StreamingReceiver. Wraparound, blocking backpressure, drop accounting and
// the close() drain protocol; the threaded tests run under the TSan CI job.
#include "stream/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace tnb::stream {
namespace {

IqBuffer ramp(std::size_t n, float start) {
  IqBuffer b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = {start + static_cast<float>(i), -(start + static_cast<float>(i))};
  }
  return b;
}

TEST(IqRing, ZeroCapacityThrows) { EXPECT_THROW(IqRing(0), std::invalid_argument); }

TEST(IqRing, PushPopRoundTrip) {
  IqRing ring(16);
  EXPECT_EQ(ring.push(ramp(10, 0.0f)), 10u);
  IqBuffer out;
  EXPECT_EQ(ring.pop(out, 64), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i].real(), static_cast<float>(i));
  }
  const RingStats st = ring.stats();
  EXPECT_EQ(st.pushed, 10u);
  EXPECT_EQ(st.popped, 10u);
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_EQ(st.high_water, 10u);
}

TEST(IqRing, WraparoundPreservesOrder) {
  IqRing ring(8);
  IqBuffer out;
  float next_expected = 0.0f;
  // Repeated push/pop of 5 over capacity 8 forces the write index to wrap
  // inside most pushes.
  for (int round = 0; round < 10; ++round) {
    ASSERT_EQ(ring.push(ramp(5, 5.0f * round)), 5u);
    ASSERT_EQ(ring.pop(out, 5), 5u);
    for (const cfloat& v : out) {
      EXPECT_EQ(v.real(), next_expected);
      EXPECT_EQ(v.imag(), -next_expected);
      next_expected += 1.0f;
    }
  }
  EXPECT_EQ(ring.stats().pushed, 50u);
  EXPECT_EQ(ring.stats().popped, 50u);
}

TEST(IqRing, TryPushDropsWhatDoesNotFit) {
  IqRing ring(8);
  EXPECT_EQ(ring.try_push(ramp(6, 0.0f)), 6u);
  // 2 slots left: 4 of the next 6 samples must be dropped and counted.
  EXPECT_EQ(ring.try_push(ramp(6, 6.0f)), 2u);
  EXPECT_EQ(ring.try_push(ramp(3, 12.0f)), 0u);
  const RingStats st = ring.stats();
  EXPECT_EQ(st.pushed, 8u);
  EXPECT_EQ(st.dropped, 7u);
  EXPECT_EQ(st.high_water, 8u);
  // What was accepted is contiguous-prefix data, in order.
  IqBuffer out;
  EXPECT_EQ(ring.pop(out, 8), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i].real(), static_cast<float>(i));
  }
}

TEST(IqRing, PopAfterCloseDrainsThenReturnsZero) {
  IqRing ring(16);
  ring.push(ramp(4, 0.0f));
  ring.close();
  IqBuffer out;
  EXPECT_EQ(ring.pop(out, 16), 4u);
  EXPECT_EQ(ring.pop(out, 16), 0u);
  EXPECT_EQ(ring.push(ramp(4, 0.0f)), 0u);  // push after close is a no-op
}

TEST(IqRing, BlockingPushBackpressuresUntilConsumerCatchesUp) {
  IqRing ring(64);
  const std::size_t total = 10000;
  std::thread producer([&] {
    std::size_t sent = 0;
    while (sent < total) {
      const std::size_t n = std::min<std::size_t>(48, total - sent);
      ASSERT_EQ(ring.push(ramp(n, static_cast<float>(sent))), n);
      sent += n;
    }
    ring.close();
  });
  IqBuffer out;
  std::size_t received = 0;
  float next_expected = 0.0f;
  while (ring.pop(out, 32) > 0) {
    for (const cfloat& v : out) {
      ASSERT_EQ(v.real(), next_expected);
      next_expected += 1.0f;
    }
    received += out.size();
  }
  producer.join();
  EXPECT_EQ(received, total);
  const RingStats st = ring.stats();
  EXPECT_EQ(st.pushed, total);
  EXPECT_EQ(st.popped, total);
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_LE(st.high_water, st.capacity);
}

// Regression: try_push on a closed ring used to return 0 without counting
// the refused samples, silently violating pushed + dropped == offered.
TEST(IqRing, TryPushOnClosedRingCountsDrops) {
  IqRing ring(8);
  ASSERT_EQ(ring.try_push(ramp(3, 0.0f)), 3u);
  ring.close();
  EXPECT_EQ(ring.try_push(ramp(5, 3.0f)), 0u);
  const RingStats st = ring.stats();
  EXPECT_EQ(st.pushed, 3u);
  EXPECT_EQ(st.dropped, 5u);
  EXPECT_EQ(st.pushed + st.dropped, 8u);  // every sample offered accounted
}

// Regression: a close() racing a blocking push() discarded the unaccepted
// remainder without counting it as dropped.
TEST(IqRing, PushInterruptedByCloseAccountsRemainder) {
  IqRing ring(4);
  ASSERT_EQ(ring.push(ramp(4, 0.0f)), 4u);  // ring now full
  std::thread producer([&] {
    // Blocks on the full ring; close() below releases it with 0 accepted.
    EXPECT_EQ(ring.push(ramp(6, 4.0f)), 0u);
  });
  // Give the producer a moment to reach the wait (close() is correct
  // whether or not it got there — the remainder is dropped either way).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.close();
  producer.join();
  const RingStats st = ring.stats();
  EXPECT_EQ(st.pushed, 4u);
  EXPECT_EQ(st.dropped, 6u);
  EXPECT_EQ(st.pushed + st.dropped, 10u);
}

// Blocking-push-after-close is accounted the same way (the old behaviour
// returned 0 and lost the samples from the accounting).
TEST(IqRing, PushAfterCloseCountsDrops) {
  IqRing ring(8);
  ring.close();
  EXPECT_EQ(ring.push(ramp(5, 0.0f)), 0u);
  EXPECT_EQ(ring.stats().dropped, 5u);
}

// The tnb_ring_* metrics mirror RingStats exactly when a registry is wired.
TEST(IqRing, MetricsMirrorRingStats) {
  obs::Registry reg;
  IqRing ring(8, &reg);
  ring.try_push(ramp(6, 0.0f));
  ring.try_push(ramp(6, 6.0f));  // 2 accepted, 4 dropped
  IqBuffer out;
  ring.pop(out, 5);
  ring.close();
  ring.try_push(ramp(2, 0.0f));  // 2 more dropped

  const RingStats st = ring.stats();
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("tnb_ring_pushed_samples_total")->value,
            static_cast<double>(st.pushed));
  EXPECT_EQ(snap.find("tnb_ring_popped_samples_total")->value,
            static_cast<double>(st.popped));
  EXPECT_EQ(snap.find("tnb_ring_dropped_samples_total")->value,
            static_cast<double>(st.dropped));
  EXPECT_EQ(snap.find("tnb_ring_high_water_samples")->value,
            static_cast<double>(st.high_water));
  EXPECT_EQ(snap.find("tnb_ring_buffered_samples")->value, 3.0);  // 8 - 5
  EXPECT_EQ(st.pushed, 8u);
  EXPECT_EQ(st.dropped, 6u);
}

TEST(IqRing, ThreadedTryPushAccountsEverySample) {
  IqRing ring(32);
  const std::size_t total = 20000;
  std::size_t accepted = 0;
  std::thread producer([&] {
    std::size_t sent = 0;
    while (sent < total) {
      const std::size_t n = std::min<std::size_t>(24, total - sent);
      accepted += ring.try_push(ramp(n, static_cast<float>(sent)));
      sent += n;
    }
    ring.close();
  });
  IqBuffer out;
  std::size_t received = 0;
  while (ring.pop(out, 16) > 0) received += out.size();
  producer.join();
  const RingStats st = ring.stats();
  EXPECT_EQ(received, accepted);
  EXPECT_EQ(st.pushed, accepted);
  EXPECT_EQ(st.popped, accepted);
  EXPECT_EQ(st.pushed + st.dropped, total);
}

}  // namespace
}  // namespace tnb::stream
