#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "lora/chirp.hpp"
#include "lora/demodulator.hpp"
#include "lora/frame.hpp"
#include "lora/gray.hpp"
#include "lora/modulator.hpp"

namespace tnb::lora {
namespace {

TEST(Chirp, UnitAmplitudeEverywhere) {
  Params p{.sf = 8, .osf = 4};
  const auto up = make_upchirp(p);
  for (const cfloat& v : up) EXPECT_NEAR(std::abs(v), 1.0f, 1e-5f);
}

TEST(Chirp, DownchirpIsConjugate) {
  Params p{.sf = 7, .osf = 2};
  const auto up = make_upchirp(p);
  const auto down = make_downchirp(p);
  for (std::size_t i = 0; i < up.size(); ++i) {
    EXPECT_NEAR(down[i].real(), up[i].real(), 1e-6f);
    EXPECT_NEAR(down[i].imag(), -up[i].imag(), 1e-6f);
  }
}

TEST(Chirp, ShiftedChirpIsCyclicRotation) {
  Params p{.sf = 8, .osf = 1};
  const auto base = make_upchirp(p, 0);
  const auto shifted = make_upchirp(p, 37);
  const std::size_t n = p.n_bins();
  for (std::size_t i = 0; i < n; ++i) {
    const cfloat expect = base[(i + 37) % n];
    EXPECT_NEAR(shifted[i].real(), expect.real(), 1e-5f);
    EXPECT_NEAR(shifted[i].imag(), expect.imag(), 1e-5f);
  }
}

class ModemShifts : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(ModemShifts, DemodRecoversEveryShiftStride) {
  const auto [sf, osf] = GetParam();
  Params p{.sf = sf, .osf = osf};
  Demodulator demod(p);
  // Sweep shifts with a stride to keep runtime sane but cover the range.
  const std::uint32_t n = static_cast<std::uint32_t>(p.n_bins());
  for (std::uint32_t h = 0; h < n; h += 7) {
    const auto sym = make_upchirp(p, h);
    const SignalVector sv = demod.signal_vector(sym, 0.0);
    EXPECT_EQ(Demodulator::argmax(sv), h);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SfOsfGrid, ModemShifts,
    ::testing::Combine(::testing::Values(7u, 8u, 10u),
                       ::testing::Values(1u, 2u, 8u)));

TEST(Modem, PeakHeightDropsWithTimingError) {
  // Paper Fig. 1(b): a misaligned window lowers the peak.
  Params p{.sf = 8, .osf = 8};
  Modulator mod(p);
  Demodulator demod(p);
  std::vector<std::uint32_t> data(8, 0);
  const IqBuffer pkt = mod.synthesize(data);

  const std::size_t sps = p.sps();
  // Aligned window over the first preamble upchirp.
  const SignalVector aligned = demod.signal_vector(
      std::span<const cfloat>(pkt).subspan(0, sps), 0.0);
  // Misaligned by a quarter symbol.
  const SignalVector shifted = demod.signal_vector(
      std::span<const cfloat>(pkt).subspan(sps / 4, sps), 0.0);
  const float peak_aligned = *std::max_element(aligned.begin(), aligned.end());
  const float peak_shifted = *std::max_element(shifted.begin(), shifted.end());
  EXPECT_LT(peak_shifted, 0.8f * peak_aligned);
}

TEST(Modem, PeakHeightDropsWithResidualCfo) {
  // Paper Fig. 1(c): 0.5 cycles of residual CFO lowers the peak sharply.
  Params p{.sf = 8, .osf = 8};
  Demodulator demod(p);
  const auto sym = make_upchirp(p, 42);
  const SignalVector clean = demod.signal_vector(sym, 0.0);
  const SignalVector off = demod.signal_vector(sym, 0.5);
  EXPECT_LT(off[42], 0.6f * clean[42]);
  // Correcting the CFO that was actually applied restores the peak.
  Modulator mod(p);
  std::vector<std::uint32_t> one_sym{value_for_shift(42)};
  WaveformOptions opt;
  opt.cfo_hz = p.cfo_cycles_to_hz(0.5);
  const IqBuffer pkt = mod.synthesize(one_sym, opt);
  // Data symbols start after the 12.25-symbol preamble.
  const std::size_t start = static_cast<std::size_t>(12.25 * p.sps());
  const SignalVector corrected = demod.signal_vector(
      std::span<const cfloat>(pkt).subspan(start, p.sps()), 0.5);
  EXPECT_EQ(Demodulator::argmax(corrected), 42u);
  EXPECT_GT(corrected[42], 0.9f * clean[42]);
}

TEST(Modem, IntegerCfoShiftsPeakBin) {
  Params p{.sf = 8, .osf = 8};
  Demodulator demod(p);
  const auto sym = make_upchirp(p, 100);
  // Without correction, +3 cycles/symbol of CFO moves the peak 3 bins up.
  Modulator mod(p);
  std::vector<std::uint32_t> one_sym{value_for_shift(100)};
  WaveformOptions opt;
  opt.cfo_hz = p.cfo_cycles_to_hz(3.0);
  const IqBuffer pkt = mod.synthesize(one_sym, opt);
  const std::size_t start = static_cast<std::size_t>(12.25 * p.sps());
  const SignalVector sv = demod.signal_vector(
      std::span<const cfloat>(pkt).subspan(start, p.sps()), 0.0);
  EXPECT_EQ(Demodulator::argmax(sv), 103u);
}

TEST(Modem, PreambleLayoutPeaks) {
  Params p{.sf = 8, .osf = 8};
  Modulator mod(p);
  Demodulator demod(p);
  std::vector<std::uint32_t> data(10, 5);
  const IqBuffer pkt = mod.synthesize(data);
  const std::size_t sps = p.sps();

  // 8 upchirps at bin 0.
  for (std::size_t s = 0; s < kPreambleUpchirps; ++s) {
    const SignalVector sv = demod.signal_vector(
        std::span<const cfloat>(pkt).subspan(s * sps, sps), 0.0);
    EXPECT_EQ(Demodulator::argmax(sv), 0u) << "upchirp " << s;
  }
  // Sync symbols at bins 8 and 16 (locations 9 and 17, 1-indexed).
  const SignalVector sync1 = demod.signal_vector(
      std::span<const cfloat>(pkt).subspan(8 * sps, sps), 0.0);
  EXPECT_EQ(Demodulator::argmax(sync1), kSyncShift1);
  const SignalVector sync2 = demod.signal_vector(
      std::span<const cfloat>(pkt).subspan(9 * sps, sps), 0.0);
  EXPECT_EQ(Demodulator::argmax(sync2), kSyncShift2);
  // Downchirps demodulate at bin 0 with the upchirp reference.
  const SignalVector down = demod.signal_vector(
      std::span<const cfloat>(pkt).subspan(10 * sps, sps), 0.0, /*up=*/false);
  EXPECT_EQ(Demodulator::argmax(down), 0u);
}

TEST(Modem, FullPacketSymbolRecovery) {
  Params p{.sf = 8, .cr = 3, .osf = 8};
  Modulator mod(p);
  Demodulator demod(p);
  Rng rng(4);
  std::vector<std::uint8_t> app(14);
  for (auto& b : app) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  const auto tx_symbols = make_packet_symbols(p, app);
  const IqBuffer pkt = mod.synthesize(tx_symbols);

  const std::size_t sps = p.sps();
  const std::size_t data_start = static_cast<std::size_t>(12.25 * sps);
  for (std::size_t s = 0; s < tx_symbols.size(); ++s) {
    const std::uint32_t v = demod.demod_value(
        std::span<const cfloat>(pkt).subspan(data_start + s * sps, sps), 0.0);
    EXPECT_EQ(v, tx_symbols[s]) << "symbol " << s;
  }
}

TEST(Modem, FractionalDelayHalfSampleStillDecodes) {
  Params p{.sf = 8, .osf = 8};
  Modulator mod(p);
  Demodulator demod(p);
  std::vector<std::uint32_t> data{value_for_shift(77)};
  WaveformOptions opt;
  opt.frac_delay = 0.5;
  const IqBuffer pkt = mod.synthesize(data, opt);
  const std::size_t start = static_cast<std::size_t>(12.25 * p.sps());
  const SignalVector sv = demod.signal_vector(
      std::span<const cfloat>(pkt).subspan(start, p.sps()), 0.0);
  // Half a receiver sample = 1/16 chirp sample: peak stays on its bin.
  EXPECT_EQ(Demodulator::argmax(sv), 77u);
}

TEST(Modem, AmplitudeScalesPower) {
  Params p{.sf = 7, .osf = 2};
  Modulator mod(p);
  Demodulator demod(p);
  std::vector<std::uint32_t> data{value_for_shift(10)};
  WaveformOptions loud;
  loud.amplitude = 2.0;
  const IqBuffer quiet_pkt = mod.synthesize(data);
  const IqBuffer loud_pkt = mod.synthesize(data, loud);
  const std::size_t start = static_cast<std::size_t>(12.25 * p.sps());
  const SignalVector a = demod.signal_vector(
      std::span<const cfloat>(quiet_pkt).subspan(start, p.sps()), 0.0);
  const SignalVector b = demod.signal_vector(
      std::span<const cfloat>(loud_pkt).subspan(start, p.sps()), 0.0);
  EXPECT_NEAR(b[10] / a[10], 4.0f, 0.05f);
}

TEST(Modem, PacketSampleCountMatchesLayout) {
  Params p{.sf = 8, .osf = 8};
  Modulator mod(p);
  // 12.25 preamble symbols + 10 data symbols at 2048 samples per symbol.
  EXPECT_EQ(mod.packet_samples(10), static_cast<std::size_t>(22.25 * 2048));
}

TEST(Modem, ShortWindowZeroPads) {
  Params p{.sf = 8, .osf = 2};
  Demodulator demod(p);
  const auto sym = make_upchirp(p, 50);
  // Half-symbol window: the peak survives (lower) at the right bin.
  const SignalVector sv = demod.signal_vector(
      std::span<const cfloat>(sym).first(p.sps() / 2), 0.0);
  EXPECT_EQ(Demodulator::argmax(sv), 50u);
  const SignalVector full = demod.signal_vector(sym, 0.0);
  EXPECT_LT(sv[50], full[50]);
}

TEST(Modem, WindowTooLongThrows) {
  Params p{.sf = 7, .osf = 1};
  Demodulator demod(p);
  std::vector<cfloat> big(p.sps() + 1);
  EXPECT_THROW(demod.signal_vector(big, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace tnb::lora
