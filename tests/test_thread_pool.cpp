// ThreadPool semantics: submit/wait, bounded-queue back-pressure,
// exception propagation to the waiter, drain-on-destruction, and the
// inline degenerate cases (0 workers / jobs <= 1).
#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

namespace tnb::common {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ExceptionPropagatesToWaiter) {
  ThreadPool pool(2);
  std::atomic<int> survivors{0};
  pool.submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 8; ++i) {
    pool.submit([&survivors] { survivors.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The failure does not cancel sibling tasks, and the pool stays usable:
  // a second wait() does not rethrow the already-delivered error.
  EXPECT_EQ(survivors.load(), 8);
  pool.submit([&survivors] { survivors.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait());
  EXPECT_EQ(survivors.load(), 9);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> count{0};
  {
    // One slow worker with a deep queue: destruction must run the backlog,
    // not drop it.
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, BoundedQueueStillCompletesEverything) {
  // Capacity 2 forces submitters to block on back-pressure; all tasks must
  // still run exactly once.
  ThreadPool pool(2, /*queue_capacity=*/2);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&count] {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      count.fetch_add(1);
    });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.submit([&ran_on] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
  // Inline task errors are still delivered via wait(), like pooled ones.
  pool.submit([] { throw std::runtime_error("inline failure"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ParallelFor, InlineWhenJobsIsOne) {
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran_on(4);
  std::vector<std::size_t> order;
  parallel_for(4, 1, [&](std::size_t i) {
    ran_on[i] = std::this_thread::get_id();
    order.push_back(i);
  });
  for (const auto& id : ran_on) EXPECT_EQ(id, caller);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
  // jobs <= 1 propagates exceptions directly from the calling frame.
  EXPECT_THROW(
      parallel_for(2, 1, [](std::size_t) { throw std::logic_error("x"); }),
      std::logic_error);
}

TEST(ParallelFor, CoversAllIndicesExactlyOnceInParallel) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), 8,
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ExceptionPropagatesFromWorkers) {
  EXPECT_THROW(parallel_for(16, 4,
                            [](std::size_t i) {
                              if (i == 7) throw std::runtime_error("worker");
                            }),
               std::runtime_error);
}

TEST(Jobs, ResolveAndEnvFallback) {
  EXPECT_EQ(resolve_jobs(3), 3);
  unsetenv("TNB_JOBS");
  EXPECT_EQ(default_jobs(), 1);
  EXPECT_EQ(resolve_jobs(0), 1);
  setenv("TNB_JOBS", "6", 1);
  EXPECT_EQ(default_jobs(), 6);
  EXPECT_EQ(resolve_jobs(0), 6);
  EXPECT_EQ(resolve_jobs(2), 2);  // explicit beats the environment
  setenv("TNB_JOBS", "garbage", 1);
  EXPECT_EQ(default_jobs(), 1);
  unsetenv("TNB_JOBS");
}

}  // namespace
}  // namespace tnb::common
