#include "dsp/peak_finder.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/math_util.hpp"
#include "common/rng.hpp"

namespace tnb::dsp {
namespace {

std::vector<float> gaussian_bumps(std::size_t n,
                                  const std::vector<std::pair<double, double>>& bumps) {
  std::vector<float> x(n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    double v = 0.0;
    for (const auto& [center, height] : bumps) {
      const double d = static_cast<double>(i) - center;
      v += height * std::exp(-d * d / 8.0);
    }
    x[i] = static_cast<float>(v);
  }
  return x;
}

TEST(PeakFinder, FindsSingleBump) {
  auto x = gaussian_bumps(100, {{50.0, 1.0}});
  auto peaks = find_peaks(x);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 50u);
  EXPECT_NEAR(peaks[0].value, 1.0f, 1e-3f);
}

TEST(PeakFinder, FindsMultipleBumpsSortedByHeight) {
  auto x = gaussian_bumps(200, {{40.0, 0.8}, {100.0, 1.0}, {160.0, 0.6}});
  auto peaks = find_peaks(x);
  ASSERT_EQ(peaks.size(), 3u);
  EXPECT_EQ(peaks[0].index, 100u);
  EXPECT_EQ(peaks[1].index, 40u);
  EXPECT_EQ(peaks[2].index, 160u);
}

TEST(PeakFinder, SelectivitySuppressesRipple) {
  // One big bump plus low-amplitude ripple everywhere.
  std::vector<float> x = gaussian_bumps(200, {{100.0, 1.0}});
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] += 0.02f * static_cast<float>(std::sin(0.9 * static_cast<double>(i)));
  }
  PeakFinderOptions opt;
  opt.sel = 0.2;
  auto peaks = find_peaks(x, opt);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_NEAR(static_cast<double>(peaks[0].index), 100.0, 2.0);
}

TEST(PeakFinder, DefaultSelIsQuarterRange) {
  // Two bumps: one at 1.0, one at 0.2. Default sel = range/4 ≈ 0.25 should
  // drop the small one.
  auto x = gaussian_bumps(200, {{60.0, 1.0}, {140.0, 0.2}});
  auto peaks = find_peaks(x);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 60u);
}

TEST(PeakFinder, ThresholdDiscardsLowPeaks) {
  auto x = gaussian_bumps(200, {{60.0, 1.0}, {140.0, 0.5}});
  PeakFinderOptions opt;
  opt.sel = 0.1;
  opt.use_threshold = true;
  opt.threshold = 0.7;
  auto peaks = find_peaks(x, opt);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 60u);
}

TEST(PeakFinder, MaxPeaksLimitsOutput) {
  auto x = gaussian_bumps(400, {{50.0, 1.0}, {150.0, 0.9}, {250.0, 0.8}, {350.0, 0.7}});
  PeakFinderOptions opt;
  opt.sel = 0.1;
  opt.max_peaks = 2;
  auto peaks = find_peaks(x, opt);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0].index, 50u);
  EXPECT_EQ(peaks[1].index, 150u);
}

TEST(PeakFinder, CircularFindsPeakAtWrapPoint) {
  // Peak centered at bin 0 of a circular vector: half the bump is at the
  // end of the array, half at the start.
  const std::size_t n = 128;
  std::vector<float> x(n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    double d = static_cast<double>(i);
    if (d > n / 2.0) d -= static_cast<double>(n);
    x[i] = static_cast<float>(std::exp(-d * d / 4.0));
  }
  PeakFinderOptions opt;
  opt.circular = true;
  auto peaks = find_peaks(x, opt);
  ASSERT_GE(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 0u);
}

TEST(PeakFinder, EmptyAndTinyInputs) {
  std::vector<float> empty;
  EXPECT_TRUE(find_peaks(empty).empty());
  std::vector<float> one{1.0f};
  EXPECT_TRUE(find_peaks(one).empty());
}

TEST(PeakFinder, FlatInputHasNoPeaks) {
  std::vector<float> x(100, 3.0f);
  PeakFinderOptions opt;
  opt.sel = 0.1;
  EXPECT_TRUE(find_peaks(x, opt).empty());
}

TEST(PeakFinder, InterpolationRefinesOffCenterPeak) {
  // Sample a Gaussian whose true maximum falls between samples 50 and 51.
  const double center = 50.4;
  std::vector<float> x(100);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = static_cast<double>(i) - center;
    x[i] = static_cast<float>(std::exp(-d * d / 18.0));
  }
  auto peaks = find_peaks(x);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 50u);
  EXPECT_NEAR(peaks[0].frac_index, center, 0.05);
}

TEST(PeakFinder, NoisyMultiPeakRecovery) {
  Rng rng(23);
  auto x = gaussian_bumps(512, {{100.0, 5.0}, {300.0, 4.0}});
  for (auto& v : x) v += static_cast<float>(rng.normal(0.0, 0.05));
  PeakFinderOptions opt;
  opt.sel = 1.0;
  auto peaks = find_peaks(x, opt);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_NEAR(static_cast<double>(peaks[0].index), 100.0, 2.0);
  EXPECT_NEAR(static_cast<double>(peaks[1].index), 300.0, 2.0);
}

TEST(PeakFinder, RisingEdgeCandidateAtEndIsKept) {
  // Monotone rise that never descends: the final point rose by >= sel, so
  // it is reported (signal vectors can have a peak at the last bin).
  std::vector<float> x(50);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i) * 0.1f;
  PeakFinderOptions opt;
  opt.sel = 1.0;
  auto peaks = find_peaks(x, opt);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 49u);
}

}  // namespace
}  // namespace tnb::dsp
