#include "sim/experiment.hpp"

#include <gtest/gtest.h>

namespace tnb::sim {
namespace {

TEST(Series, Statistics) {
  Series s{{1.0, 2.0, 3.0, 4.0}};
  EXPECT_NEAR(s.mean(), 2.5, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(Series, DegenerateCases) {
  Series empty;
  EXPECT_EQ(empty.mean(), 0.0);
  EXPECT_EQ(empty.stddev(), 0.0);
  Series one{{7.0}};
  EXPECT_EQ(one.mean(), 7.0);
  EXPECT_EQ(one.stddev(), 0.0);
}

TEST(Experiment, RunsProduceIndependentTraces) {
  Scenario sc;
  sc.params = lora::Params{.sf = 7, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
  sc.deployment = indoor_deployment();
  sc.deployment.n_nodes = 3;
  sc.load_pps = 4.0;
  sc.duration_s = 1.0;
  std::vector<double> first_starts;
  const Series s = run_repeated(sc, 3, 42, [&](const Trace& t, int run) {
    EXPECT_EQ(t.packets.size(), 4u);
    first_starts.push_back(t.packets[0].start_sample);
    return static_cast<double>(run);
  });
  ASSERT_EQ(s.values.size(), 3u);
  EXPECT_EQ(s.values[2], 2.0);
  // Different runs draw different traffic.
  EXPECT_NE(first_starts[0], first_starts[1]);
}

TEST(Experiment, DeterministicForSameSeed) {
  Scenario sc;
  sc.params = lora::Params{.sf = 7, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
  sc.deployment = indoor_deployment();
  sc.deployment.n_nodes = 2;
  sc.load_pps = 2.0;
  sc.duration_s = 1.0;
  auto starts = [&](std::uint64_t seed) {
    std::vector<double> v;
    run_repeated(sc, 2, seed, [&](const Trace& t, int) {
      v.push_back(t.packets[0].start_sample);
      return 0.0;
    });
    return v;
  };
  EXPECT_EQ(starts(5), starts(5));
  EXPECT_NE(starts(5), starts(6));
}

TEST(Experiment, RejectsZeroRuns) {
  Scenario sc;
  EXPECT_THROW(run_repeated(sc, 0, 1, [](const Trace&, int) { return 0.0; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace tnb::sim
