#include "core/detect.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.hpp"
#include "common/rng.hpp"
#include "core/frac_sync.hpp"
#include "lora/frame.hpp"
#include "lora/modulator.hpp"

namespace tnb::rx {
namespace {

lora::Params test_params() {
  return lora::Params{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 4};
}

/// Builds a trace with one packet at the given placement.
IqBuffer one_packet_trace(const lora::Params& p, double start, double cfo_hz,
                          double amplitude, double noise_power, Rng& rng,
                          std::size_t trace_len = 0) {
  const lora::Modulator mod(p);
  std::vector<std::uint8_t> app(14, 0x5A);
  const auto symbols = lora::make_packet_symbols(p, app);
  lora::WaveformOptions wopt;
  wopt.cfo_hz = cfo_hz;
  wopt.amplitude = amplitude;
  const double start_floor = std::floor(start);
  wopt.frac_delay = start - start_floor;
  const IqBuffer pkt = mod.synthesize(symbols, wopt);

  if (trace_len == 0) trace_len = pkt.size() + 8 * p.sps();
  IqBuffer trace(trace_len, cfloat{0.0f, 0.0f});
  const std::size_t s0 = static_cast<std::size_t>(start_floor);
  for (std::size_t i = 0; i < pkt.size() && s0 + i < trace.size(); ++i) {
    trace[s0 + i] += pkt[i];
  }
  chan::add_awgn(trace, noise_power, rng);
  return trace;
}

TEST(Detector, FindsCleanPacket) {
  const lora::Params p = test_params();
  Rng rng(1);
  const double t0 = 3000.0;
  const IqBuffer trace = one_packet_trace(p, t0, 0.0, 1.0, 0.0, rng);
  const Detector det(p);
  const auto found = det.detect(trace);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NEAR(found[0].t0, t0, 2.0 * p.osf);  // within ~2 chirp samples
  EXPECT_NEAR(found[0].cfo_cycles, 0.0, 1.0);
  EXPECT_GE(found[0].validation_score, 10);
}

class DetectorCfo : public ::testing::TestWithParam<double> {};

TEST_P(DetectorCfo, EstimatesCfoWithinOneBin) {
  const lora::Params p = test_params();
  const double cfo_hz = GetParam();
  Rng rng(static_cast<std::uint64_t>(std::abs(cfo_hz)) + 7);
  const double t0 = 5000.0;
  const IqBuffer trace = one_packet_trace(p, t0, cfo_hz, 1.0, 0.5, rng);
  const Detector det(p);
  const auto found = det.detect(trace);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NEAR(found[0].cfo_cycles, p.cfo_hz_to_cycles(cfo_hz), 1.0);
  EXPECT_NEAR(found[0].t0, t0, 2.0 * p.osf);
}

INSTANTIATE_TEST_SUITE_P(CfoSweep, DetectorCfo,
                         ::testing::Values(-4000.0, -1500.0, 0.0, 800.0, 3000.0,
                                           4800.0));

TEST(Detector, FindsPacketAtFractionalOffset) {
  const lora::Params p = test_params();
  Rng rng(2);
  const double t0 = 4321.625;
  const IqBuffer trace = one_packet_trace(p, t0, 1234.0, 1.0, 0.5, rng);
  const Detector det(p);
  const auto found = det.detect(trace);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NEAR(found[0].t0, t0, 2.0 * p.osf);
}

TEST(Detector, FindsPacketInNoise) {
  const lora::Params p = test_params();
  Rng rng(3);
  // SNR 0 dB: amplitude 1 with in-band noise power 1.
  const IqBuffer trace = one_packet_trace(p, 6000.0, -2000.0, 1.0,
                                          chan::fullband_noise_power(p.osf), rng);
  const Detector det(p);
  const auto found = det.detect(trace);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NEAR(found[0].t0, 6000.0, 2.0 * p.osf);
}

TEST(Detector, EmptyTraceNoDetections) {
  const lora::Params p = test_params();
  Rng rng(4);
  IqBuffer trace(40 * p.sps(), cfloat{0.0f, 0.0f});
  chan::add_awgn(trace, chan::fullband_noise_power(p.osf), rng);
  const Detector det(p);
  EXPECT_TRUE(det.detect(trace).empty());
}

TEST(Detector, TwoSeparatedPackets) {
  const lora::Params p = test_params();
  Rng rng(5);
  const lora::Modulator mod(p);
  std::vector<std::uint8_t> app(14, 0x11);
  const auto symbols = lora::make_packet_symbols(p, app);
  const IqBuffer pkt = mod.synthesize(symbols);
  IqBuffer trace(3 * pkt.size() + 20 * p.sps(), cfloat{0.0f, 0.0f});
  const double t0a = 2000.0, t0b = static_cast<double>(pkt.size() + 10 * p.sps());
  for (std::size_t i = 0; i < pkt.size(); ++i) {
    trace[static_cast<std::size_t>(t0a) + i] += pkt[i];
    trace[static_cast<std::size_t>(t0b) + i] += pkt[i];
  }
  chan::add_awgn(trace, 0.5, rng);
  const Detector det(p);
  const auto found = det.detect(trace);
  ASSERT_EQ(found.size(), 2u);
  EXPECT_NEAR(found[0].t0, t0a, 2.0 * p.osf);
  EXPECT_NEAR(found[1].t0, t0b, 2.0 * p.osf);
}

TEST(Detector, CollidedPreamblesBothFound) {
  // Two packets offset by ~3.5 symbols with different CFOs: preambles
  // overlap, both must be detected.
  const lora::Params p = test_params();
  Rng rng(6);
  const lora::Modulator mod(p);
  std::vector<std::uint8_t> app(14, 0x77);
  const auto symbols = lora::make_packet_symbols(p, app);
  lora::WaveformOptions wa, wb;
  wa.cfo_hz = 1000.0;
  wb.cfo_hz = -2500.0;
  const IqBuffer pa = mod.synthesize(symbols, wa);
  const IqBuffer pb = mod.synthesize(symbols, wb);
  const double t0a = 2000.0;
  const double t0b = t0a + 3.5 * static_cast<double>(p.sps());
  IqBuffer trace(pa.size() + 12 * p.sps(), cfloat{0.0f, 0.0f});
  for (std::size_t i = 0; i < pa.size(); ++i) {
    trace[static_cast<std::size_t>(t0a) + i] += pa[i];
  }
  for (std::size_t i = 0; i < pb.size() &&
                          static_cast<std::size_t>(t0b) + i < trace.size();
       ++i) {
    trace[static_cast<std::size_t>(t0b) + i] += pb[i];
  }
  chan::add_awgn(trace, 0.5, rng);
  const Detector det(p);
  const auto found = det.detect(trace);
  ASSERT_EQ(found.size(), 2u);
  EXPECT_NEAR(found[0].t0, t0a, 2.0 * p.osf);
  EXPECT_NEAR(found[1].t0, t0b, 2.0 * p.osf);
}

TEST(FracSync, RefinesFractionalCfo) {
  const lora::Params p = test_params();
  Rng rng(7);
  // True CFO = 3.4 bins; coarse estimate 3.0 -> residual 0.4.
  const double cfo_hz = p.cfo_cycles_to_hz(3.4);
  const double t0 = 4096.0;
  const IqBuffer trace = one_packet_trace(p, t0, cfo_hz, 1.0, 0.1, rng);
  const FracSync fs(p);
  const FracSyncResult r = fs.refine(trace, t0, 3.0);
  EXPECT_NEAR(3.0 + r.df, 3.4, 0.1);
  EXPECT_NEAR(r.dt, 0.0, 1.0);
  EXPECT_TRUE(r.gated);
}

TEST(FracSync, RefinesFractionalTiming) {
  const lora::Params p = test_params();
  Rng rng(8);
  const double true_t0 = 4096.6;
  const IqBuffer trace = one_packet_trace(p, true_t0, 500.0, 1.0, 0.1, rng);
  const double coarse_t0 = 4096.0;
  const FracSync fs(p);
  const FracSyncResult r =
      fs.refine(trace, coarse_t0, p.cfo_hz_to_cycles(500.0));
  EXPECT_NEAR(coarse_t0 + r.dt, true_t0, 0.5);
}

TEST(FracSync, QPeaksAtTruth) {
  const lora::Params p = test_params();
  Rng rng(9);
  const double t0 = 4096.0;
  const IqBuffer trace = one_packet_trace(p, t0, 0.0, 1.0, 0.0, rng);
  const FracSync fs(p);
  const double q_true = fs.q(trace, t0, 0.0, 0.0, 0.0, false);
  // Off by half a cycle of CFO: markedly lower.
  const double q_cfo = fs.q(trace, t0, 0.0, 0.0, 0.5, false);
  EXPECT_GT(q_true, 2.0 * q_cfo);
  // Off by 2 receiver samples of timing: lower.
  const double q_dt = fs.q(trace, t0, 0.0, 4.0, 0.0, false);
  EXPECT_GT(q_true, q_dt);
}

TEST(FracSync, GateRejectsOffByOneCfo) {
  const lora::Params p = test_params();
  Rng rng(10);
  const double t0 = 4096.0;
  const IqBuffer trace = one_packet_trace(p, t0, 0.0, 1.0, 0.0, rng);
  const FracSync fs(p);
  // With df = 1 the peak sits at bin 1 (not 0): Q* must gate it to zero.
  EXPECT_EQ(fs.q(trace, t0, 0.0, 0.0, 1.0, true), 0.0);
  EXPECT_GT(fs.q(trace, t0, 0.0, 0.0, 0.0, true), 0.0);
}

}  // namespace
}  // namespace tnb::rx
