// Exhaustive verification of BEC's deterministic guarantees (Table 1 rows
// with error probability 0), at SF 6 where full enumeration is feasible:
// every error pattern in every column combination is tested, not a sample.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/bec.hpp"
#include "lora/hamming.hpp"

namespace tnb::rx {
namespace {

constexpr unsigned kSf = 6;

/// Applies error pattern `pattern` (one bit per row) to column `col`.
std::vector<std::uint8_t> apply_column_error(
    std::span<const std::uint8_t> rows, unsigned col, unsigned pattern) {
  std::vector<std::uint8_t> out(rows.begin(), rows.end());
  for (unsigned r = 0; r < out.size(); ++r) {
    if ((pattern >> r) & 1u) out[r] ^= static_cast<std::uint8_t>(1u << col);
  }
  return out;
}

bool contains(const std::vector<std::vector<std::uint8_t>>& candidates,
              const std::vector<std::uint8_t>& truth) {
  for (const auto& c : candidates) {
    if (c == truth) return true;
  }
  return false;
}

std::vector<std::uint8_t> random_codeword_block(unsigned cr, Rng& rng) {
  std::vector<std::uint8_t> rows(kSf);
  for (auto& r : rows) r = lora::codewords(cr)[rng.uniform_index(16)];
  return rows;
}

class BecExhaustiveOneColumn : public ::testing::TestWithParam<unsigned> {};

TEST_P(BecExhaustiveOneColumn, EveryPatternInEveryColumnCorrected) {
  // Table 1: "corrects 1-symbol error" at every CR — probability 0 of
  // failure, so exhaustive enumeration must find zero misses.
  const unsigned cr = GetParam();
  Rng rng(cr);
  const Bec bec(kSf, cr);
  const auto truth = random_codeword_block(cr, rng);
  const unsigned n_patterns = 1u << kSf;
  for (unsigned col = 0; col < 4 + cr; ++col) {
    for (unsigned pattern = 1; pattern < n_patterns; ++pattern) {
      const auto rx = apply_column_error(truth, col, pattern);
      ASSERT_TRUE(contains(bec.decode_block(rx), truth))
          << "cr=" << cr << " col=" << col << " pattern=" << pattern;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCr, BecExhaustiveOneColumn,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(BecExhaustive, Cr4TwoColumnsAllPatternsCorrected) {
  // Table 2: error probability 0 for CR 4 with 2 error columns.
  Rng rng(44);
  const Bec bec(kSf, 4);
  const auto truth = random_codeword_block(4, rng);
  const unsigned n_patterns = 1u << kSf;
  for (unsigned c1 = 0; c1 < 8; ++c1) {
    for (unsigned c2 = c1 + 1; c2 < 8; ++c2) {
      for (unsigned p1 = 1; p1 < n_patterns; ++p1) {
        // A full quadratic sweep of (p1, p2) is 63*63*28 decodes; sample p2
        // deterministically to keep the test fast while still covering all
        // column pairs and all p1 patterns.
        for (unsigned p2 = 1; p2 < n_patterns; p2 += 7) {
          auto rx = apply_column_error(truth, c1, p1);
          rx = apply_column_error(rx, c2, p2);
          ASSERT_TRUE(contains(bec.decode_block(rx), truth))
              << "c1=" << c1 << " c2=" << c2 << " p1=" << p1 << " p2=" << p2;
        }
      }
    }
  }
}

TEST(BecExhaustive, Cr3TwoColumnFailuresOnlyOnCompanionCollapse) {
  // Appendix A.5: CR 3 with 2 error columns fails exactly when every row
  // has either errors in both columns or in neither — the diffs collapse
  // onto the companion column. Enumerate and verify the failure set.
  Rng rng(33);
  const Bec bec(kSf, 3);
  const auto truth = random_codeword_block(3, rng);
  const unsigned n_patterns = 1u << kSf;
  std::size_t failures = 0, cases = 0, collapse_cases = 0;
  for (unsigned c1 = 0; c1 < 7; ++c1) {
    for (unsigned c2 = c1 + 1; c2 < 7; ++c2) {
      for (unsigned p1 = 1; p1 < n_patterns; p1 += 3) {
        for (unsigned p2 = 1; p2 < n_patterns; p2 += 5) {
          auto rx = apply_column_error(truth, c1, p1);
          rx = apply_column_error(rx, c2, p2);
          ++cases;
          if (p1 == p2) ++collapse_cases;
          const bool ok = contains(bec.decode_block(rx), truth);
          if (!ok) {
            ++failures;
            // Failure requires identical patterns (both-or-neither rows).
            EXPECT_EQ(p1, p2) << "c1=" << c1 << " c2=" << c2;
          } else {
            // And every identical-pattern case does fail (the diffs
            // collapse onto the companion, so Xi has one column and BEC
            // returns Gamma).
            EXPECT_NE(p1, p2) << "c1=" << c1 << " c2=" << c2;
          }
        }
      }
    }
  }
  EXPECT_EQ(failures, collapse_cases);
  EXPECT_GT(cases, 5000u);
}

TEST(BecExhaustive, CandidateListsAreDeduplicated) {
  Rng rng(55);
  const Bec bec(kSf, 4);
  for (int t = 0; t < 200; ++t) {
    auto rows = random_codeword_block(4, rng);
    rows[rng.uniform_index(kSf)] ^= static_cast<std::uint8_t>(
        1 + rng.uniform_index(255));
    const auto cands = bec.decode_block(rows);
    for (std::size_t i = 0; i < cands.size(); ++i) {
      for (std::size_t j = i + 1; j < cands.size(); ++j) {
        EXPECT_NE(cands[i], cands[j]) << "duplicate candidates";
      }
    }
  }
}

}  // namespace
}  // namespace tnb::rx
