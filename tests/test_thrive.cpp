#include "core/thrive.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/sibling.hpp"
#include "lora/frame.hpp"
#include "lora/gray.hpp"
#include "lora/modulator.hpp"

namespace tnb::rx {
namespace {

lora::Params fixture_params() {
  return lora::Params{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
}

/// Two colliding packets with a known time offset and CFOs; contexts are
/// built from ground truth so Thrive is tested in isolation from detection.
struct CollisionFixture {
  lora::Params p = fixture_params();
  IqBuffer trace;
  std::vector<PacketContext> contexts;
  std::vector<std::uint32_t> symbols_a, symbols_b;
  double t0_a = 0.0, t0_b = 0.0;

  CollisionFixture(double offset_symbols, double cfo_a_hz, double cfo_b_hz,
                   double amp_a, double amp_b, double noise, Rng& rng) {
    const lora::Modulator mod(p);
    std::vector<std::uint8_t> app_a(14, 0xA1), app_b(14, 0xB2);
    symbols_a = lora::make_packet_symbols(p, app_a);
    symbols_b = lora::make_packet_symbols(p, app_b);
    lora::WaveformOptions wa, wb;
    wa.cfo_hz = cfo_a_hz;
    wa.amplitude = amp_a;
    wb.cfo_hz = cfo_b_hz;
    wb.amplitude = amp_b;
    const IqBuffer pa = mod.synthesize(symbols_a, wa);
    const IqBuffer pb = mod.synthesize(symbols_b, wb);
    t0_a = 4.0 * p.sps();
    t0_b = t0_a + offset_symbols * p.sps();
    trace.assign(pa.size() + static_cast<std::size_t>(t0_b) + 8 * p.sps(),
                 cfloat{0.0f, 0.0f});
    for (std::size_t i = 0; i < pa.size(); ++i) {
      trace[static_cast<std::size_t>(t0_a) + i] += pa[i];
    }
    for (std::size_t i = 0; i < pb.size(); ++i) {
      trace[static_cast<std::size_t>(t0_b) + i] += pb[i];
    }
    if (noise > 0.0) chan::add_awgn(trace, noise, rng);

    DetectedPacket da{t0_a, p.cfo_hz_to_cycles(cfo_a_hz), 0.0, 12};
    DetectedPacket db{t0_b, p.cfo_hz_to_cycles(cfo_b_hz), 0.0, 12};
    contexts.emplace_back(p, da);
    contexts.emplace_back(p, db);
    contexts[0].n_data_symbols = static_cast<int>(symbols_a.size());
    contexts[1].n_data_symbols = static_cast<int>(symbols_b.size());
  }

  /// Builds the AssignInput for the checking point at index j.
  std::vector<ActiveSymbol> active_at(std::size_t j) const {
    std::vector<ActiveSymbol> act;
    const double c = static_cast<double>(j * p.sps());
    for (int pi = 0; pi < 2; ++pi) {
      const auto d = contexts[static_cast<std::size_t>(pi)].data_symbol_at(
          c, contexts[static_cast<std::size_t>(pi)].n_data_symbols);
      if (d.has_value()) {
        act.push_back({pi, *d,
                       contexts[static_cast<std::size_t>(pi)].data_symbol_start(*d)});
      }
    }
    std::sort(act.begin(), act.end(),
              [](const ActiveSymbol& a, const ActiveSymbol& b) {
                return a.window_start < b.window_start;
              });
    return act;
  }
};

TEST(MapBin, IdentityAndShift) {
  EXPECT_NEAR(map_bin(10.0, 5.0, 5.0, 256), 10.0, 1e-9);
  EXPECT_NEAR(map_bin(10.0, 5.0, 7.5, 256), 12.5, 1e-9);
  EXPECT_NEAR(map_bin(250.0, 0.0, 10.0, 256), 4.0, 1e-9);  // wraps
  EXPECT_NEAR(map_bin(4.0, 10.0, 0.0, 256), 250.0, 1e-9);  // inverse
}

TEST(MapBin, ConsecutiveSymbolsSameLocation) {
  // Paper / CoLoRa fact: a misaligned chirp produces peaks at the same
  // location in two consecutive symbols — alpha differs by exactly N.
  lora::Params p = fixture_params();
  DetectedPacket det{1000.0, 2.0, 0.0, 12};
  PacketContext ctx(p, det);
  const double a0 = ctx.alpha_at(ctx.data_symbol_start(3));
  const double a1 = ctx.alpha_at(ctx.data_symbol_start(4));
  EXPECT_NEAR(a1 - a0, static_cast<double>(p.n_bins()), 1e-6);
  EXPECT_NEAR(map_bin(42.0, a0, a1, p.n_bins()), 42.0, 1e-6);
}

TEST(ThriveFixture, SiblingWindowsCoverBothNeighbours) {
  Rng rng(1);
  CollisionFixture fx(2.4, 1000.0, -2000.0, 1.0, 1.0, 0.0, rng);
  // Find a checking point where both packets have data symbols.
  for (std::size_t j = 20; j < 40; ++j) {
    const auto act = fx.active_at(j);
    if (act.size() != 2) continue;
    AssignInput in;
    in.symbols = act;
    in.contexts = fx.contexts;
    const auto sibs = sibling_windows(in, 0);
    // The other packet contributes up to 2 windows.
    ASSERT_GE(sibs.size(), 1u);
    ASSERT_LE(sibs.size(), 2u);
    for (const auto& s : sibs) {
      EXPECT_NE(s.packet, act[0].packet);
      // Each sibling window genuinely overlaps my window.
      EXPECT_LT(s.window_start, act[0].window_start + fx.p.sps());
      EXPECT_GT(s.window_start + fx.p.sps(), act[0].window_start);
    }
    return;
  }
  FAIL() << "no checking point with both symbols found";
}

TEST(Thrive, ResolvesCollisionWithDistinctBoundaries) {
  Rng rng(2);
  CollisionFixture fx(3.35, 1200.0, -2600.0, 1.0, 0.8, 0.5, rng);
  Thrive thrive(fx.p);
  SigCalc sig(fx.p, {fx.trace});
  std::vector<PeakHistory> hist(2);
  hist[0].bootstrap(sig.preamble_heights(fx.contexts[0]));
  hist[1].bootstrap(sig.preamble_heights(fx.contexts[1]));

  int checked = 0, correct = 0;
  for (std::size_t j = 0; j < fx.trace.size() / fx.p.sps(); ++j) {
    const auto act = fx.active_at(j);
    if (act.empty()) continue;
    std::vector<std::vector<double>> masks(act.size());
    AssignInput in;
    in.symbols = act;
    in.contexts = fx.contexts;
    in.masked_bins = masks;
    in.sig = &sig;
    in.history = hist;
    const auto res = thrive.assign(in);
    for (const auto& a : res) {
      const auto& truth =
          a.packet == 0 ? fx.symbols_a : fx.symbols_b;
      const std::uint32_t want = lora::shift_for_value(
          truth[static_cast<std::size_t>(a.data_idx)]);
      ++checked;
      if (a.bin == static_cast<int>(want)) ++correct;
      hist[static_cast<std::size_t>(a.packet)].record(a.data_idx, a.height);
    }
  }
  ASSERT_GT(checked, 40);
  // Near-perfect assignment expected with distinct boundaries + CFOs.
  EXPECT_GE(static_cast<double>(correct) / checked, 0.95)
      << correct << "/" << checked;
}

TEST(Thrive, SiblingOnlyStillResolvesEasyCollision) {
  Rng rng(3);
  CollisionFixture fx(2.6, 2000.0, -1500.0, 1.0, 1.0, 0.2, rng);
  ThriveOptions opt;
  opt.use_history = false;
  Thrive thrive(fx.p, opt);
  SigCalc sig(fx.p, {fx.trace});
  int checked = 0, correct = 0;
  for (std::size_t j = 0; j < fx.trace.size() / fx.p.sps(); ++j) {
    const auto act = fx.active_at(j);
    if (act.empty()) continue;
    std::vector<std::vector<double>> masks(act.size());
    AssignInput in;
    in.symbols = act;
    in.contexts = fx.contexts;
    in.masked_bins = masks;
    in.sig = &sig;
    const auto res = thrive.assign(in);
    for (const auto& a : res) {
      const auto& truth = a.packet == 0 ? fx.symbols_a : fx.symbols_b;
      const std::uint32_t want = lora::shift_for_value(
          truth[static_cast<std::size_t>(a.data_idx)]);
      ++checked;
      if (a.bin == static_cast<int>(want)) ++correct;
    }
  }
  EXPECT_GE(static_cast<double>(correct) / checked, 0.9);
}

TEST(Thrive, MaskedBinsAreNeverAssigned) {
  Rng rng(4);
  CollisionFixture fx(2.5, 500.0, -500.0, 1.0, 1.0, 0.1, rng);
  Thrive thrive(fx.p);
  SigCalc sig(fx.p, {fx.trace});
  for (std::size_t j = 20; j < 40; ++j) {
    const auto act = fx.active_at(j);
    if (act.size() != 2) continue;
    // Mask the true bin of symbol 0: Thrive must pick something else.
    const auto& truth = act[0].packet == 0 ? fx.symbols_a : fx.symbols_b;
    const double true_bin = lora::shift_for_value(
        truth[static_cast<std::size_t>(act[0].data_idx)]);
    std::vector<std::vector<double>> masks(act.size());
    masks[0].push_back(true_bin);
    AssignInput in;
    in.symbols = act;
    in.contexts = fx.contexts;
    in.masked_bins = masks;
    in.sig = &sig;
    const auto res = thrive.assign(in);
    const double diff =
        std::abs(wrap_half(static_cast<double>(res[0].bin) - true_bin,
                           static_cast<double>(fx.p.n_bins())));
    EXPECT_GT(diff, 1.5);
    return;
  }
  FAIL() << "no suitable checking point";
}

TEST(Thrive, EmptyInputYieldsNothing) {
  Thrive thrive(fixture_params());
  AssignInput in;
  EXPECT_TRUE(thrive.assign(in).empty());
}

TEST(PeakHistory, EstimateTracksConstantSeries) {
  PeakHistory h;
  std::vector<double> pre(8, 100.0);
  h.bootstrap(pre);
  for (int d = 0; d < 10; ++d) h.record(d, 100.0);
  const auto est = h.estimate_for(10, /*second_pass=*/false);
  EXPECT_NEAR(est.a, 100.0, 1e-6);
  EXPECT_NEAR(est.d, 0.0, 1e-9);
  EXPECT_NEAR(est.upper(), 100.0, 1e-5);
  EXPECT_NEAR(est.lower(), 100.0, 1e-5);
}

TEST(PeakHistory, UpperLowerBandWidensWithNoise) {
  Rng rng(5);
  PeakHistory h;
  std::vector<double> pre(8);
  for (auto& v : pre) v = rng.normal(100.0, 10.0);
  h.bootstrap(pre);
  for (int d = 0; d < 20; ++d) h.record(d, rng.normal(100.0, 10.0));
  const auto est = h.estimate_for(20, false);
  EXPECT_GT(est.d, 1.0);
  EXPECT_GT(est.upper(), est.a);
  EXPECT_LT(est.lower(), est.a);
  EXPECT_GE(est.lower(), 0.0);
}

TEST(PeakHistory, LowerClampsAtZero) {
  PeakHistory h;
  h.record(0, 1.0);
  h.record(1, 10.0);
  h.record(2, 1.0);
  h.record(3, 10.0);
  const auto est = h.estimate_for(4, false);
  EXPECT_GE(est.lower(), 0.0);
}

TEST(PeakHistory, SecondPassUsesFitAtSymbol) {
  PeakHistory h;
  // Rising trend: second-pass estimate at an early symbol is lower than at
  // a late one.
  for (int d = 0; d < 30; ++d) h.record(d, 10.0 + d);
  const auto early = h.estimate_for(2, true);
  const auto late = h.estimate_for(28, true);
  EXPECT_LT(early.a, late.a);
}

TEST(PeakHistory, EmptyHistoryGivesZeroEstimate) {
  PeakHistory h;
  EXPECT_TRUE(h.empty());
  const auto est = h.estimate_for(0, false);
  EXPECT_EQ(est.a, 0.0);
  EXPECT_EQ(est.d, 0.0);
}


TEST(Thrive, ComplexityBoundsHold) {
  // Paper 5.3.5: at a checking point with M symbols, at most 2M peaks per
  // symbol (2M^2 costs) and at most M assignment iterations.
  Rng rng(41);
  CollisionFixture fx(3.35, 1200.0, -2600.0, 1.0, 0.8, 0.5, rng);
  Thrive thrive(fx.p);
  SigCalc sig(fx.p, {fx.trace});
  std::size_t points = 0;
  for (std::size_t j = 0; j < fx.trace.size() / fx.p.sps(); ++j) {
    const auto act = fx.active_at(j);
    if (act.size() != 2) continue;
    ++points;
    std::vector<std::vector<double>> masks(act.size());
    AssignInput in;
    in.symbols = act;
    in.contexts = fx.contexts;
    in.masked_bins = masks;
    in.sig = &sig;
    thrive.assign(in);
  }
  ASSERT_GT(points, 10u);
  const ThriveStats& st = thrive.stats();
  EXPECT_EQ(st.calls, points);
  EXPECT_EQ(st.symbols, 2 * points);
  // M = 2: at most 2*M^2 = 8 cost evaluations and M iterations per point.
  EXPECT_LE(st.cost_evaluations, 8 * points);
  EXPECT_LE(st.iterations, 2 * points);
  EXPECT_GT(st.cost_evaluations, 0u);
}

}  // namespace
}  // namespace tnb::rx
