// Additional receiver-level properties: detection reuse, extreme spreading
// factors, CFO extremes, and multi-antenna consistency.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/receiver.hpp"
#include "sim/metrics.hpp"
#include "sim/trace_builder.hpp"

namespace tnb::rx {
namespace {

sim::Trace build(const lora::Params& p, double load, double duration,
                 std::vector<sim::NodeConfig> nodes, std::uint64_t seed,
                 unsigned antennas = 1) {
  Rng rng(seed);
  sim::TraceOptions opt;
  opt.duration_s = duration;
  opt.load_pps = load;
  opt.nodes = std::move(nodes);
  opt.n_antennas = antennas;
  return sim::build_trace(p, opt, rng);
}

TEST(ReceiverExtra, DecodeWithDetectionsMatchesDecode) {
  lora::Params p{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 4};
  const sim::Trace trace =
      build(p, 8.0, 1.5, {{1, 20.0, 900.0}, {2, 15.0, -2100.0}}, 1);
  Receiver receiver(p);

  Rng ra(5), rb(5);
  const auto direct = receiver.decode(trace.iq, ra);
  const auto detections = receiver.detect({trace.iq});
  const auto via_detections =
      receiver.decode_with_detections({trace.iq}, detections, rb);

  ASSERT_EQ(direct.size(), via_detections.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].payload, via_detections[i].payload);
  }
}

class ReceiverSf : public ::testing::TestWithParam<unsigned> {};

TEST_P(ReceiverSf, DecodesAcrossSpreadingFactors) {
  const unsigned sf = GetParam();
  lora::Params p{.sf = sf, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
  const sim::Trace trace = build(p, 1.0, sf >= 11 ? 4.0 : 2.0,
                                 {{1, 20.0, 700.0}}, sf);
  Receiver receiver(p);
  Rng rng(2);
  const auto decoded = receiver.decode(trace.iq, rng);
  const auto result = sim::evaluate(trace, decoded);
  EXPECT_EQ(result.decoded_unique, result.transmitted) << "sf=" << sf;
}

INSTANTIATE_TEST_SUITE_P(SfSweep, ReceiverSf,
                         ::testing::Values(7u, 9u, 11u, 12u));

TEST(ReceiverExtra, HandlesMaxCfoMagnitude) {
  lora::Params p{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 4};
  for (double cfo : {-4880.0, 4880.0}) {
    const sim::Trace trace = build(p, 2.0, 1.2, {{1, 18.0, cfo}},
                                   static_cast<std::uint64_t>(cfo + 9000));
    Receiver receiver(p);
    Rng rng(3);
    const auto result = sim::evaluate(trace, receiver.decode(trace.iq, rng));
    EXPECT_EQ(result.decoded_unique, result.transmitted) << "cfo=" << cfo;
  }
}

TEST(ReceiverExtra, TwoRealAntennasAtLowSnr) {
  // With independent noise per antenna, diversity should never hurt.
  lora::Params p{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 4};
  const sim::Trace trace =
      build(p, 6.0, 2.0, {{1, -1.0, 1200.0}, {2, 0.0, -800.0}}, 4,
            /*antennas=*/2);
  ASSERT_EQ(trace.extra_antennas.size(), 1u);
  Receiver receiver(p);
  Rng ra(6), rb(6);
  const auto two = sim::evaluate(
      trace, receiver.decode_multi(trace.antenna_spans(), ra));
  const auto one = sim::evaluate(trace, receiver.decode(trace.iq, rb));
  EXPECT_GE(two.decoded_unique + 1, one.decoded_unique);  // allow 1 flake
}

TEST(ReceiverExtra, NoisePowerConsistentAcrossAntennas) {
  lora::Params p{.sf = 7, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
  const sim::Trace trace = build(p, 2.0, 1.0, {{1, 10.0, 0.0}}, 7, 3);
  ASSERT_EQ(trace.extra_antennas.size(), 2u);
  double p0 = 0.0, p1 = 0.0;
  for (std::size_t i = 0; i < 20000; ++i) {
    p0 += std::norm(trace.iq[i]);
    p1 += std::norm(trace.extra_antennas[0][i]);
  }
  EXPECT_NEAR(p1 / p0, 1.0, 0.25);
  // Antennas are not identical copies (independent noise).
  bool differs = false;
  for (std::size_t i = 0; i < 100; ++i) {
    if (trace.iq[i] != trace.extra_antennas[0][i]) differs = true;
  }
  EXPECT_TRUE(differs);
}


TEST(ReceiverExtra, ImplicitHeaderModeRoundTrip) {
  lora::Params p{.sf = 8, .cr = 3, .bandwidth_hz = 125e3, .osf = 4};
  Rng rng(21);
  sim::TraceOptions topt;
  topt.duration_s = 1.5;
  topt.load_pps = 4.0;
  topt.nodes = {{1, 18.0, 1100.0}, {2, 14.0, -2400.0}};
  topt.implicit_header = true;
  const sim::Trace trace = sim::build_trace(p, topt, rng);

  ReceiverOptions ropt;
  ropt.implicit_header = ImplicitHeader{.payload_len = 16, .cr = 3};
  Receiver receiver(p, ropt);
  Rng rx_rng(22);
  ReceiverStats stats;
  const auto decoded = receiver.decode(trace.iq, rx_rng, &stats);
  const auto result = sim::evaluate(trace, decoded);
  EXPECT_GE(result.prr, 0.8) << result.decoded_unique << "/" << result.transmitted;
  EXPECT_EQ(result.false_packets, 0u);
}

TEST(ReceiverExtra, ImplicitTraceIsShorterThanExplicit) {
  lora::Params p{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
  Rng ra(23), rb(23);
  sim::TraceOptions opt;
  opt.duration_s = 1.0;
  opt.load_pps = 2.0;
  opt.nodes = {{1, 20.0, 0.0}};
  const sim::Trace explicit_trace = sim::build_trace(p, opt, ra);
  opt.implicit_header = true;
  const sim::Trace implicit_trace = sim::build_trace(p, opt, rb);
  // Implicit packets skip the 8 header symbols.
  EXPECT_EQ(explicit_trace.packets[0].n_samples,
            implicit_trace.packets[0].n_samples + 8 * p.sps());
}

TEST(ReceiverExtra, ExplicitReceiverRejectsImplicitTrace) {
  // Decoding an implicit-header trace without the configuration must not
  // produce false packets (headers will fail to parse).
  lora::Params p{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 4};
  Rng rng(24);
  sim::TraceOptions topt;
  topt.duration_s = 1.2;
  topt.load_pps = 3.0;
  topt.nodes = {{1, 18.0, 500.0}};
  topt.implicit_header = true;
  const sim::Trace trace = sim::build_trace(p, topt, rng);
  Receiver receiver(p);  // explicit-header receiver
  Rng rx_rng(25);
  const auto result = sim::evaluate(trace, receiver.decode(trace.iq, rx_rng));
  EXPECT_EQ(result.false_packets, 0u);
  EXPECT_EQ(result.decoded_unique, 0u);
}


TEST(ReceiverExtra, EstimatedSnrTracksTrueSnr) {
  lora::Params p{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 4};
  for (double snr : {0.0, 10.0, 20.0}) {
    Rng rng(static_cast<std::uint64_t>(snr) + 31);
    sim::TraceOptions opt;
    opt.duration_s = 1.2;
    opt.load_pps = 2.0;
    opt.nodes = {{1, snr, 800.0}};
    const sim::Trace trace = sim::build_trace(p, opt, rng);
    Receiver receiver(p);
    Rng rx_rng(32);
    const auto decoded = receiver.decode(trace.iq, rx_rng);
    ASSERT_FALSE(decoded.empty()) << "snr=" << snr;
    for (const auto& pkt : decoded) {
      EXPECT_NEAR(pkt.snr_db, snr, 4.5) << "snr=" << snr;
      EXPECT_NEAR(pkt.cfo_hz, 800.0, 150.0);
    }
  }
}

}  // namespace
}  // namespace tnb::rx
