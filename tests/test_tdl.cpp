#include "channel/tdl.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace tnb::chan {
namespace {

TEST(TdlProfiles, MatchPublishedDelaySpreads) {
  // RMS delay spreads from TS 36.101: EPA 43 ns, EVA 357 ns, ETU 991 ns.
  auto rms = [](const TdlProfile& p) {
    double pw = 0.0, mean = 0.0, m2 = 0.0;
    for (std::size_t i = 0; i < p.delays_s.size(); ++i) {
      const double w = std::pow(10.0, p.powers_db[i] / 10.0);
      pw += w;
      mean += w * p.delays_s[i];
    }
    mean /= pw;
    for (std::size_t i = 0; i < p.delays_s.size(); ++i) {
      const double w = std::pow(10.0, p.powers_db[i] / 10.0);
      m2 += w * (p.delays_s[i] - mean) * (p.delays_s[i] - mean);
    }
    return std::sqrt(m2 / pw);
  };
  EXPECT_NEAR(rms(epa_profile()) * 1e9, 43.0, 3.0);
  EXPECT_NEAR(rms(eva_profile()) * 1e9, 357.0, 10.0);
  EXPECT_NEAR(rms(etu_profile()) * 1e9, 991.0, 20.0);
}

TEST(TdlProfiles, DelaysSortedPowersMatchLengths) {
  for (const TdlProfile& p : {epa_profile(), eva_profile(), etu_profile()}) {
    ASSERT_EQ(p.delays_s.size(), p.powers_db.size()) << p.name;
    for (std::size_t i = 1; i < p.delays_s.size(); ++i) {
      EXPECT_GT(p.delays_s[i], p.delays_s[i - 1]) << p.name;
    }
  }
}

TEST(TdlChannel, UnitMeanPowerAllProfiles) {
  Rng rng(1);
  for (const TdlProfile& profile : {epa_profile(), eva_profile(), etu_profile()}) {
    TdlChannel ch(profile, 5.0);
    double pin = 0.0, pout = 0.0;
    for (int r = 0; r < 30; ++r) {
      IqBuffer buf(20000, cfloat{1.0f, 0.0f});
      pin += static_cast<double>(buf.size());
      ch.apply(buf, 1e6, rng);
      for (const cfloat& v : buf) pout += std::norm(v);
    }
    EXPECT_NEAR(pout / pin, 1.0, 0.35) << profile.name;
  }
}

TEST(TdlChannel, GainIsSmoothAtHighDoppler) {
  // The interpolated fader must not step mid-symbol even at 200 Hz Doppler.
  Rng rng(2);
  TdlChannel ch(epa_profile(), 200.0);
  IqBuffer buf(50000, cfloat{1.0f, 0.0f});
  ch.apply(buf, 1e6, rng);
  // Skip the convolution ramp-up at the leading edge (delay spread).
  for (std::size_t i = 5; i < buf.size(); ++i) {
    EXPECT_LT(std::abs(buf[i] - buf[i - 1]), 0.05f) << "jump at " << i;
  }
}

TEST(TdlChannel, EpaHasLessDispersionThanEtu) {
  // An impulse through EPA stays within ~1 sample at 1 Msps; ETU spreads
  // to 5 samples.
  Rng rng(3);
  TdlChannel epa(epa_profile(), 5.0);
  TdlChannel etu(etu_profile(), 5.0);
  double epa_late = 0.0, etu_late = 0.0;
  for (int r = 0; r < 50; ++r) {
    IqBuffer a(16, cfloat{0.0f, 0.0f}), b(16, cfloat{0.0f, 0.0f});
    a[0] = b[0] = {1.0f, 0.0f};
    epa.apply(a, 1e6, rng);
    etu.apply(b, 1e6, rng);
    for (std::size_t i = 2; i < 16; ++i) {
      epa_late += std::norm(a[i]);
      etu_late += std::norm(b[i]);
    }
  }
  EXPECT_LT(epa_late, 0.1 * etu_late + 1e-9);
}

}  // namespace
}  // namespace tnb::chan
