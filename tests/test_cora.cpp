// CoRaDetector unit tests: amplitude-consistency symbol decisions vs the
// per-symbol argmax baseline under two- and three-packet synthetic
// collisions, plus the pinned end-to-end scenario of ISSUE 7 (CoRa beats
// LoRaPHY on PRR under two-packet collisions; the CoRa->TnB hybrid is
// never worse than plain CoRa on the same trace).
#include "baselines/cora.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baselines/argmax_assigner.hpp"
#include "baselines/factories.hpp"
#include "baselines/hybrid.hpp"
#include "channel/awgn.hpp"
#include "common/rng.hpp"
#include "lora/frame.hpp"
#include "lora/gray.hpp"
#include "lora/modulator.hpp"
#include "sim/metrics.hpp"

namespace tnb::base {
namespace {

lora::Params fixture_params() {
  return lora::Params{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
}

/// One synthesized packet for the collision fixtures.
struct Tx {
  double offset_symbols = 0.0;  ///< start offset from the first packet
  double cfo_hz = 0.0;
  double amplitude = 1.0;
  std::uint8_t fill = 0x3C;     ///< app payload byte
};

/// K-packet collision fixture with ground-truth contexts and bootstrapped
/// peak histories (the receiver always bootstraps from the preamble, so
/// CoRa's amplitude expectation is available).
struct Fixture {
  lora::Params p = fixture_params();
  IqBuffer trace;
  std::vector<rx::PacketContext> contexts;
  std::vector<std::vector<std::uint32_t>> symbols;

  Fixture(const std::vector<Tx>& txs, double noise, Rng& rng) {
    const lora::Modulator mod(p);
    const double base_t0 = 4.0 * p.sps();
    double end = 0.0;
    std::vector<IqBuffer> bufs;
    std::vector<double> t0s;
    for (const Tx& tx : txs) {
      std::vector<std::uint8_t> app(14, tx.fill);
      symbols.push_back(lora::make_packet_symbols(p, app));
      lora::WaveformOptions w;
      w.cfo_hz = tx.cfo_hz;
      w.amplitude = tx.amplitude;
      bufs.push_back(mod.synthesize(symbols.back(), w));
      t0s.push_back(base_t0 + tx.offset_symbols * p.sps());
      end = std::max(end, t0s.back() + static_cast<double>(bufs.back().size()));
    }
    trace.assign(static_cast<std::size_t>(end) + 8 * p.sps(),
                 cfloat{0.0f, 0.0f});
    for (std::size_t k = 0; k < bufs.size(); ++k) {
      for (std::size_t i = 0; i < bufs[k].size(); ++i) {
        trace[static_cast<std::size_t>(t0s[k]) + i] += bufs[k][i];
      }
    }
    if (noise > 0.0) chan::add_awgn(trace, noise, rng);
    for (std::size_t k = 0; k < txs.size(); ++k) {
      contexts.emplace_back(
          p, rx::DetectedPacket{t0s[k], p.cfo_hz_to_cycles(txs[k].cfo_hz), 0,
                                12});
      contexts.back().n_data_symbols = static_cast<int>(symbols[k].size());
    }
  }

  std::vector<rx::ActiveSymbol> active_at(std::size_t j) const {
    std::vector<rx::ActiveSymbol> act;
    const double c = static_cast<double>(j * p.sps());
    for (int pi = 0; pi < static_cast<int>(contexts.size()); ++pi) {
      const auto& ctx = contexts[static_cast<std::size_t>(pi)];
      const auto d = ctx.data_symbol_at(c, ctx.n_data_symbols);
      if (d.has_value()) act.push_back({pi, *d, ctx.data_symbol_start(*d)});
    }
    std::sort(act.begin(), act.end(),
              [](const rx::ActiveSymbol& a, const rx::ActiveSymbol& b) {
                return a.window_start < b.window_start;
              });
    return act;
  }

  /// Per-packet correct/checked counts under a strategy, with histories
  /// bootstrapped from the preambles (as the receiver does).
  struct Accuracy {
    std::vector<int> checked, correct;
    double overall() const {
      int ch = 0, co = 0;
      for (std::size_t k = 0; k < checked.size(); ++k) {
        ch += checked[k];
        co += correct[k];
      }
      return ch == 0 ? 0.0 : static_cast<double>(co) / ch;
    }
    double packet(std::size_t k) const {
      return checked[k] == 0
                 ? 0.0
                 : static_cast<double>(correct[k]) / checked[k];
    }
  };

  Accuracy accuracy(rx::PeakAssigner& assigner) {
    rx::SigCalc sig(p, {trace});
    std::vector<rx::PeakHistory> history(contexts.size());
    for (std::size_t k = 0; k < contexts.size(); ++k) {
      history[k].bootstrap(sig.preamble_heights(contexts[k]));
    }
    Accuracy acc;
    acc.checked.assign(contexts.size(), 0);
    acc.correct.assign(contexts.size(), 0);
    for (std::size_t j = 0; j < trace.size() / p.sps(); ++j) {
      const auto act = active_at(j);
      if (act.empty()) continue;
      std::vector<std::vector<double>> masks(act.size());
      rx::AssignInput in;
      in.symbols = act;
      in.contexts = contexts;
      in.masked_bins = masks;
      in.sig = &sig;
      in.history = history;
      for (const auto& a : assigner.assign(in)) {
        const auto& truth = symbols[static_cast<std::size_t>(a.packet)];
        const std::uint32_t want = lora::shift_for_value(
            truth[static_cast<std::size_t>(a.data_idx)]);
        ++acc.checked[static_cast<std::size_t>(a.packet)];
        if (a.bin == static_cast<int>(want)) {
          ++acc.correct[static_cast<std::size_t>(a.packet)];
        }
      }
    }
    return acc;
  }
};

TEST(CoRaDetector, BeatsArgmaxOnWeakPacketTwoCollision) {
  // Strong/weak pair: argmax hands the strong node's peak to both packets;
  // CoRa's amplitude expectation singles out the weak tone.
  Rng rng(11);
  Fixture fx({{0.0, 800.0, 1.0, 0x3C}, {2.3, -900.0, 0.45, 0x4D}}, 0.05,
             rng);
  CoRaDetector cora(fx.p);
  ArgmaxAssigner argmax(fx.p);
  const auto ca = fx.accuracy(cora);
  const auto aa = fx.accuracy(argmax);
  EXPECT_GT(ca.packet(1), aa.packet(1))
      << "CoRa weak-packet accuracy " << ca.packet(1) << " vs argmax "
      << aa.packet(1);
  EXPECT_GE(ca.packet(1), 0.7) << "CoRa weak-packet accuracy";
  EXPECT_GE(ca.overall(), aa.overall());
  EXPECT_GE(ca.packet(0), 0.9) << "strong packet must stay accurate";
}

TEST(CoRaDetector, BeatsArgmaxUnderThreePacketCollision) {
  Rng rng(12);
  Fixture fx({{0.0, 700.0, 1.0, 0x3C},
              {2.3, -1100.0, 0.6, 0x4D},
              {4.6, 1900.0, 0.33, 0x5E}},
             0.04, rng);
  CoRaDetector cora(fx.p);
  ArgmaxAssigner argmax(fx.p);
  const auto ca = fx.accuracy(cora);
  const auto aa = fx.accuracy(argmax);
  EXPECT_GT(ca.overall(), aa.overall());
  // The two non-dominant packets are where the discrimination shows.
  EXPECT_GT(ca.packet(1) + ca.packet(2), aa.packet(1) + aa.packet(2));
}

TEST(CoRaDetector, ConfidenceIsLowWhenAmbiguousHighWhenClean) {
  Rng rng(13);
  Fixture fx({{0.0, 800.0, 1.0, 0x3C}, {2.3, -900.0, 0.45, 0x4D}}, 0.05,
             rng);
  CoRaDetector cora(fx.p);
  rx::SigCalc sig(fx.p, {fx.trace});
  std::vector<rx::PeakHistory> history(fx.contexts.size());
  for (std::size_t k = 0; k < fx.contexts.size(); ++k) {
    history[k].bootstrap(sig.preamble_heights(fx.contexts[k]));
  }
  double sum = 0.0;
  int n = 0;
  for (std::size_t j = 0; j < fx.trace.size() / fx.p.sps(); ++j) {
    const auto act = fx.active_at(j);
    if (act.empty()) continue;
    std::vector<std::vector<double>> masks(act.size());
    rx::AssignInput in;
    in.symbols = act;
    in.contexts = fx.contexts;
    in.masked_bins = masks;
    in.sig = &sig;
    in.history = history;
    std::vector<double> conf;
    const auto res = cora.assign_with_confidence(in, conf);
    ASSERT_EQ(conf.size(), res.size());
    for (double c : conf) {
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0);
      sum += c;
      ++n;
    }
  }
  ASSERT_GT(n, 20);
  // With clean amplitude separation most symbols should be confident.
  EXPECT_GT(sum / n, 0.5);
}

/// Pinned two-collision end-to-end scenario (ISSUE 7 acceptance): several
/// strong/weak pairs; full receivers, PRR by exact payload match.
struct PinnedScenario {
  lora::Params p = fixture_params();
  IqBuffer trace;
  std::vector<std::vector<std::uint8_t>> payloads;

  PinnedScenario() {
    const lora::Modulator mod(p);
    Rng rng(77);
    const int pairs = 6;
    // A packet (14 app bytes, CR4, SF8) spans ~42 symbols; space pairs out.
    const double pair_stride = 64.0 * p.sps();
    double end = 0.0;
    std::vector<IqBuffer> bufs;
    std::vector<double> t0s;
    for (int k = 0; k < pairs; ++k) {
      for (int m = 0; m < 2; ++m) {
        std::vector<std::uint8_t> app(14, 0);
        for (std::size_t b = 0; b < app.size(); ++b) {
          app[b] = static_cast<std::uint8_t>(0x10 + 31 * k + 17 * m + b);
        }
        payloads.push_back(app);
        lora::WaveformOptions w;
        w.cfo_hz = (m == 0 ? 800.0 : -900.0) + 90.0 * k;
        w.amplitude = m == 0 ? 1.0 : 0.45;
        bufs.push_back(mod.synthesize(lora::make_packet_symbols(p, app), w));
        t0s.push_back(4.0 * p.sps() + k * pair_stride +
                      (m == 0 ? 0.0 : 2.3 * p.sps()));
        end = std::max(end,
                       t0s.back() + static_cast<double>(bufs.back().size()));
      }
    }
    trace.assign(static_cast<std::size_t>(end) + 8 * p.sps(),
                 cfloat{0.0f, 0.0f});
    for (std::size_t i = 0; i < bufs.size(); ++i) {
      for (std::size_t s = 0; s < bufs[i].size(); ++s) {
        trace[static_cast<std::size_t>(t0s[i]) + s] += bufs[i][s];
      }
    }
    chan::add_awgn(trace, 0.05, rng);
  }

  std::size_t decoded_matches(Scheme s) const {
    rx::Receiver receiver = make_receiver(s, p);
    Rng rng(5);
    const auto decoded = receiver.decode(trace, rng);
    std::size_t matches = 0;
    std::vector<bool> used(payloads.size(), false);
    for (const auto& d : decoded) {
      for (std::size_t k = 0; k < payloads.size(); ++k) {
        if (!used[k] && d.payload == payloads[k]) {
          used[k] = true;
          ++matches;
          break;
        }
      }
    }
    return matches;
  }
};

TEST(CoRaPinnedScenario, CoRaBeatsLoRaPhyAndHybridNeverWorse) {
  const PinnedScenario sc;
  const std::size_t cora = sc.decoded_matches(Scheme::kCoRa);
  const std::size_t loraphy = sc.decoded_matches(Scheme::kLoRaPhy);
  const std::size_t hybrid = sc.decoded_matches(Scheme::kCoRaTnB);
  EXPECT_GT(cora, loraphy)
      << "CoRa " << cora << "/" << sc.payloads.size() << " vs LoRaPHY "
      << loraphy;
  EXPECT_GE(hybrid, cora)
      << "hybrid " << hybrid << " vs CoRa " << cora;
  // Sanity floor: the strong half of every pair is decodable by all.
  EXPECT_GE(cora, sc.payloads.size() / 2);
}

TEST(HybridAssigner, EscalatesOnlyDoubtfulSymbols) {
  Rng rng(14);
  Fixture fx({{0.0, 800.0, 1.0, 0x3C}, {2.3, -900.0, 0.45, 0x4D}}, 0.05,
             rng);
  HybridAssigner hybrid(fx.p);
  const auto acc = fx.accuracy(hybrid);
  const auto& st = hybrid.stats();
  EXPECT_GT(st.symbols, 0u);
  EXPECT_LT(st.escalated, st.symbols)
      << "escalating everything means CoRa confidence is broken";
  // The hybrid should not be less accurate than plain CoRa here.
  CoRaDetector cora(fx.p);
  EXPECT_GE(acc.overall(), fx.accuracy(cora).overall() - 1e-9);
}

}  // namespace
}  // namespace tnb::base
