// Low Data Rate Optimization (LDRO): SF-2 bits per symbol, two ignored
// shift LSBs. Verifies the mode end to end and its robustness property.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/receiver.hpp"
#include "lora/demodulator.hpp"
#include "lora/frame.hpp"
#include "lora/modulator.hpp"
#include "sim/metrics.hpp"
#include "sim/trace_builder.hpp"

namespace tnb::lora {
namespace {

TEST(Ldro, ValidationRules) {
  Params p{.sf = 7, .cr = 4, .ldro = true};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  Params ok{.sf = 11, .cr = 4, .ldro = true};
  ok.validate();
  EXPECT_EQ(ok.bits_per_symbol(), 9u);
}

TEST(Ldro, ShiftValueMappingQuantizes) {
  Params p{.sf = 10, .cr = 4, .ldro = true};
  for (std::uint32_t v = 0; v < (1u << 8); ++v) {
    const std::uint32_t h = p.shift_for_value(v);
    EXPECT_EQ(h % 4, 0u);  // shifts are multiples of 4
    EXPECT_EQ(p.value_for_shift(h), v);
    // +/-1 bin errors do not change the decoded value.
    EXPECT_EQ(p.value_for_shift((h + 1) % 1024), v);
    EXPECT_EQ(p.value_for_shift((h + 1023) % 1024), v);
  }
}

TEST(Ldro, FrameRoundTrip) {
  Params p{.sf = 11, .cr = 3, .ldro = true};
  Rng rng(1);
  std::vector<std::uint8_t> app(14);
  for (auto& b : app) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  const auto symbols = make_packet_symbols(p, app);
  for (std::uint32_t s : symbols) EXPECT_LT(s, 1u << 9);

  const auto hdr = decode_header_default(
      p, std::span<const std::uint32_t>(symbols).first(kHeaderSymbols));
  ASSERT_TRUE(hdr.has_value());
  const auto payload = decode_payload_default(
      p, std::span<const std::uint32_t>(symbols).subspan(kHeaderSymbols),
      hdr->payload_len);
  ASSERT_TRUE(payload.has_value());
  EXPECT_TRUE(std::equal(app.begin(), app.end(), payload->begin()));
}

TEST(Ldro, ModemRoundTrip) {
  Params p{.sf = 10, .cr = 4, .bandwidth_hz = 125e3, .osf = 2, .ldro = true};
  Modulator mod(p);
  Demodulator demod(p);
  Rng rng(2);
  std::vector<std::uint8_t> app(14, 0x3A);
  const auto symbols = make_packet_symbols(p, app);
  const IqBuffer pkt = mod.synthesize(symbols);
  const std::size_t start = static_cast<std::size_t>(12.25 * p.sps());
  for (std::size_t s = 0; s < symbols.size(); ++s) {
    EXPECT_EQ(demod.demod_value(
                  std::span<const cfloat>(pkt).subspan(start + s * p.sps(),
                                                       p.sps()),
                  0.0),
              symbols[s]);
  }
}

TEST(Ldro, EndToEndThroughReceiver) {
  Params p{.sf = 10, .cr = 4, .bandwidth_hz = 125e3, .osf = 2, .ldro = true};
  Rng rng(3);
  sim::TraceOptions opt;
  opt.duration_s = 3.0;
  opt.load_pps = 1.0;
  opt.nodes = {{1, 15.0, 2200.0}};
  const sim::Trace trace = sim::build_trace(p, opt, rng);
  rx::Receiver receiver(p);
  Rng rx_rng(4);
  const auto result = sim::evaluate(trace, receiver.decode(trace.iq, rx_rng));
  EXPECT_EQ(result.decoded_unique, result.transmitted);
}

TEST(Ldro, SurvivesCfoResidualThatBreaksNonLdro) {
  // A residual CFO of ~0.8 cycles shifts every peak by about one bin:
  // fatal without LDRO, absorbed with it.
  for (bool ldro : {false, true}) {
    Params p{.sf = 10, .cr = 4, .bandwidth_hz = 125e3, .osf = 2, .ldro = ldro};
    Modulator mod(p);
    Demodulator demod(p);
    std::vector<std::uint8_t> app(14, 0x77);
    const auto symbols = make_packet_symbols(p, app);
    const IqBuffer pkt = mod.synthesize(symbols);
    const std::size_t start = static_cast<std::size_t>(12.25 * p.sps());
    int errors = 0;
    for (std::size_t s = 0; s < symbols.size(); ++s) {
      const std::uint32_t v = demod.demod_value(
          std::span<const cfloat>(pkt).subspan(start + s * p.sps(), p.sps()),
          -0.8);  // 0.8 cycles of uncorrected CFO
      errors += (v != symbols[s]);
    }
    if (ldro) {
      EXPECT_EQ(errors, 0) << "LDRO must absorb a one-bin offset";
    } else {
      EXPECT_GT(errors, static_cast<int>(symbols.size()) / 2);
    }
  }
}

}  // namespace
}  // namespace tnb::lora
