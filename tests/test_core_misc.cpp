#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/bec_analysis.hpp"
#include "core/packet_context.hpp"
#include "core/window.hpp"
#include "lora/chirp.hpp"

namespace tnb::rx {
namespace {

TEST(ExtractWindow, IntegerOffsetCopies) {
  IqBuffer trace(10);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i] = {static_cast<float>(i), 0.0f};
  }
  std::vector<cfloat> out(4);
  extract_window(trace, 3.0, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].real(), static_cast<float>(3 + i));
  }
}

TEST(ExtractWindow, FractionalOffsetInterpolates) {
  IqBuffer trace{{0.0f, 0.0f}, {2.0f, 4.0f}, {4.0f, 8.0f}};
  std::vector<cfloat> out(2);
  extract_window(trace, 0.5, out);
  EXPECT_NEAR(out[0].real(), 1.0f, 1e-6f);
  EXPECT_NEAR(out[0].imag(), 2.0f, 1e-6f);
  EXPECT_NEAR(out[1].real(), 3.0f, 1e-6f);
  EXPECT_NEAR(out[1].imag(), 6.0f, 1e-6f);
}

TEST(ExtractWindow, OutOfRangeReadsZero) {
  IqBuffer trace(4, cfloat{1.0f, 1.0f});
  std::vector<cfloat> out(6);
  extract_window(trace, -2.0, out);
  EXPECT_EQ(out[0], (cfloat{0.0f, 0.0f}));
  EXPECT_EQ(out[1], (cfloat{0.0f, 0.0f}));
  EXPECT_EQ(out[2], (cfloat{1.0f, 1.0f}));
  std::vector<cfloat> tail(4);
  extract_window(trace, 2.0, tail);
  EXPECT_EQ(tail[0], (cfloat{1.0f, 1.0f}));
  EXPECT_EQ(tail[1], (cfloat{1.0f, 1.0f}));
  EXPECT_EQ(tail[2], (cfloat{0.0f, 0.0f}));
  EXPECT_EQ(tail[3], (cfloat{0.0f, 0.0f}));
}

TEST(ExtractWindow, NegativeFractionalNearStart) {
  IqBuffer trace(4, cfloat{2.0f, 0.0f});
  std::vector<cfloat> out(2);
  extract_window(trace, -0.5, out);
  // First sample interpolates between zero (outside) and trace[0].
  EXPECT_NEAR(out[0].real(), 1.0f, 1e-6f);
  EXPECT_NEAR(out[1].real(), 2.0f, 1e-6f);
}

lora::Params ctx_params() {
  return lora::Params{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 4};
}

TEST(PacketContext, GeometryMatchesPreambleLayout) {
  const lora::Params p = ctx_params();
  PacketContext ctx(p, DetectedPacket{1000.0, 1.5, 0, 12});
  EXPECT_EQ(ctx.t0(), 1000.0);
  EXPECT_NEAR(ctx.data_start(), 1000.0 + 12.25 * static_cast<double>(p.sps()), 1e-9);
  EXPECT_NEAR(ctx.data_symbol_start(3) - ctx.data_symbol_start(2),
              static_cast<double>(p.sps()), 1e-9);
}

TEST(PacketContext, DataSymbolAtBoundaries) {
  const lora::Params p = ctx_params();
  PacketContext ctx(p, DetectedPacket{0.0, 0.0, 0, 12});
  const double ds = ctx.data_start();
  EXPECT_FALSE(ctx.data_symbol_at(ds - 1.0, 10).has_value());  // preamble
  EXPECT_EQ(ctx.data_symbol_at(ds, 10).value_or(-1), 0);
  EXPECT_EQ(ctx.data_symbol_at(ds + 9.5 * p.sps(), 10).value_or(-1), 9);
  EXPECT_FALSE(ctx.data_symbol_at(ds + 10.0 * p.sps(), 10).has_value());
  // Unknown length: any non-negative index allowed.
  EXPECT_EQ(ctx.data_symbol_at(ds + 30.0 * p.sps(), -1).value_or(-1), 30);
}

TEST(PacketContext, InPreamble) {
  const lora::Params p = ctx_params();
  PacketContext ctx(p, DetectedPacket{500.0, 0.0, 0, 12});
  EXPECT_FALSE(ctx.in_preamble(499.0));
  EXPECT_TRUE(ctx.in_preamble(500.0));
  EXPECT_TRUE(ctx.in_preamble(ctx.data_start() - 1.0));
  EXPECT_FALSE(ctx.in_preamble(ctx.data_start()));
}

TEST(SigCalc, CacheReturnsSameView) {
  const lora::Params p = ctx_params();
  IqBuffer trace(40 * p.sps(), cfloat{0.1f, 0.0f});
  SigCalc sig(p, {trace});
  PacketContext ctx(p, DetectedPacket{0.0, 0.0, 0, 12});
  const SymbolView& a = sig.data_symbol(0, ctx, 2);
  const SymbolView& b = sig.data_symbol(0, ctx, 2);
  EXPECT_EQ(&a, &b);  // cached: same object
  const SignalVector saved = a.sv;
  sig.evict(0);
  const SymbolView& c = sig.data_symbol(0, ctx, 2);
  EXPECT_EQ(c.sv, saved);  // recomputed identically after eviction
}

TEST(SigCalc, AntennaSumDoublesPower) {
  const lora::Params p = ctx_params();
  const auto sym = lora::make_upchirp(p, 30);
  IqBuffer trace(40 * p.sps(), cfloat{0.0f, 0.0f});
  const std::size_t off = static_cast<std::size_t>(12.25 * p.sps());
  for (std::size_t i = 0; i < sym.size(); ++i) trace[off + i] = sym[i];

  SigCalc one(p, {trace});
  SigCalc two(p, {trace, trace});
  PacketContext ctx(p, DetectedPacket{0.0, 0.0, 0, 12});
  const SymbolView& va = one.data_symbol(0, ctx, 0);
  const SymbolView& vb = two.data_symbol(0, ctx, 0);
  EXPECT_NEAR(vb.sv[30] / va.sv[30], 2.0f, 0.01f);
}

TEST(SigCalc, MismatchedAntennaLengthThrows) {
  const lora::Params p = ctx_params();
  IqBuffer a(1000), b(999);
  EXPECT_THROW(SigCalc(p, {a, b}), std::invalid_argument);
  EXPECT_THROW(SigCalc(p, {}), std::invalid_argument);
}

TEST(SigCalc, PreambleHeightsNearlyEqualOnCleanPacket) {
  const lora::Params p = ctx_params();
  IqBuffer trace(40 * p.sps(), cfloat{0.0f, 0.0f});
  const auto up = lora::make_upchirp(p, 0);
  for (int m = 0; m < 8; ++m) {
    for (std::size_t i = 0; i < up.size(); ++i) {
      trace[static_cast<std::size_t>(m) * p.sps() + i] = up[i];
    }
  }
  SigCalc sig(p, {trace});
  PacketContext ctx(p, DetectedPacket{0.0, 0.0, 0, 12});
  const auto heights = sig.preamble_heights(ctx);
  ASSERT_EQ(heights.size(), 8u);
  for (double h : heights) EXPECT_NEAR(h, heights[0], 0.01 * heights[0]);
}

TEST(BecAnalysis, PsiRecursionBasics) {
  const auto psi = bec_psi(8, 4);
  EXPECT_NEAR(psi[1], std::pow(1.0 / 8.0, 8.0), 1e-15);
  for (unsigned x = 1; x <= 4; ++x) EXPECT_GE(psi[x], 0.0);
  // Psi_x sums (over subsets) to the probability that rows use at most x
  // combinations: sum_{y<=x} C(x,y) Psi_y = (x/8)^SF.
  const double total = 4 * psi[1] + 6 * psi[2] + 4 * psi[3] + psi[4];
  EXPECT_NEAR(total + 0.0, std::pow(4.0 / 8.0, 8.0) - 0.0, 1e-12);
}

TEST(BecAnalysis, ErrorProbabilityMatchesPaperFig20) {
  // Paper: < 0.04 at SF 7 and decreasing with SF.
  double prev = 1.0;
  for (unsigned sf = 7; sf <= 12; ++sf) {
    const double e = bec_cr4_3col_error_probability(sf);
    EXPECT_GT(e, 0.0);
    EXPECT_LT(e, 0.04) << "sf=" << sf;
    EXPECT_LT(e, prev);
    prev = e;
  }
  EXPECT_NEAR(bec_cr3_2col_error_probability(8), 1.0 / 256.0, 1e-12);
}

}  // namespace
}  // namespace tnb::rx
