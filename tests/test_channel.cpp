#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.hpp"
#include "channel/etu.hpp"
#include "channel/fading.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"

namespace tnb::chan {
namespace {

TEST(Awgn, NoisePowerMatchesRequest) {
  Rng rng(1);
  IqBuffer buf(100000, cfloat{0.0f, 0.0f});
  add_awgn(buf, 4.0, rng);
  double p = 0.0;
  for (const cfloat& v : buf) p += std::norm(v);
  EXPECT_NEAR(p / static_cast<double>(buf.size()), 4.0, 0.1);
}

TEST(Awgn, ZeroPowerIsNoop) {
  Rng rng(2);
  IqBuffer buf(64, cfloat{1.0f, 2.0f});
  add_awgn(buf, 0.0, rng);
  for (const cfloat& v : buf) {
    EXPECT_EQ(v.real(), 1.0f);
    EXPECT_EQ(v.imag(), 2.0f);
  }
}

TEST(Awgn, SnrConventionConsistent) {
  // With unit in-band noise, a 10 dB packet has amplitude sqrt(10); the
  // full-band per-sample noise variance is OSF.
  EXPECT_NEAR(amplitude_for_snr_db(10.0), std::sqrt(10.0), 1e-9);
  EXPECT_NEAR(fullband_noise_power(8), 8.0, 1e-12);
}

TEST(SlowFlatFading, PreservesLengthAndVariesGain) {
  Rng rng(3);
  SlowFlatFadingChannel ch(0.5, 0.01);
  IqBuffer buf(100000, cfloat{1.0f, 0.0f});
  ch.apply(buf, 1e6, rng);
  ASSERT_EQ(buf.size(), 100000u);
  float mn = 1e9f, mx = -1e9f;
  for (const cfloat& v : buf) {
    mn = std::min(mn, std::abs(v));
    mx = std::max(mx, std::abs(v));
  }
  EXPECT_GT(mx / mn, 1.01f);  // gain actually fluctuates
  EXPECT_GT(mn, 0.0f);
}

TEST(SlowFlatFading, ContinuousAcrossStepBoundaries) {
  Rng rng(4);
  SlowFlatFadingChannel ch(1.0, 0.001);
  IqBuffer buf(10000, cfloat{1.0f, 0.0f});
  ch.apply(buf, 1e6, rng);
  // Interpolated gain: adjacent samples differ by a tiny factor.
  for (std::size_t i = 1; i < buf.size(); ++i) {
    const float a = std::abs(buf[i - 1]);
    const float b = std::abs(buf[i]);
    EXPECT_LT(std::abs(a - b) / a, 0.02f) << "jump at " << i;
  }
}

TEST(Jakes, UnitAveragePower) {
  Rng rng(5);
  double p = 0.0;
  const int realizations = 200;
  const int samples = 50;
  for (int r = 0; r < realizations; ++r) {
    JakesProcess fader(5.0, rng);
    for (int i = 0; i < samples; ++i) {
      p += std::norm(fader.at(i * 0.05));
    }
  }
  EXPECT_NEAR(p / (realizations * samples), 1.0, 0.1);
}

TEST(Jakes, CoherentOverShortTimes) {
  Rng rng(6);
  JakesProcess fader(5.0, rng);
  // At 5 Hz Doppler the channel barely moves within 1 ms.
  const cfloat a = fader.at(0.0);
  const cfloat b = fader.at(0.001);
  EXPECT_LT(std::abs(a - b), 0.1f);
}

TEST(Jakes, DecorrelatesOverLongTimes) {
  Rng rng(7);
  // Correlation between g(0) and g(1s) at 5 Hz Doppler is well below 1.
  double corr = 0.0, p0 = 0.0, p1 = 0.0;
  for (int r = 0; r < 500; ++r) {
    JakesProcess fader(5.0, rng);
    const cfloat a = fader.at(0.0);
    const cfloat b = fader.at(1.0);
    corr += (a * std::conj(b)).real();
    p0 += std::norm(a);
    p1 += std::norm(b);
  }
  EXPECT_LT(std::abs(corr) / std::sqrt(p0 * p1), 0.4);
}

TEST(Etu, PreservesAveragePower) {
  Rng rng(8);
  EtuChannel ch(5.0);
  double pin = 0.0, pout = 0.0;
  for (int r = 0; r < 20; ++r) {
    IqBuffer buf(20000, cfloat{1.0f, 0.0f});
    pin += static_cast<double>(buf.size());
    ch.apply(buf, 1e6, rng);
    for (const cfloat& v : buf) pout += std::norm(v);
  }
  // Rayleigh fading: unit mean power across realizations (loose tolerance).
  EXPECT_NEAR(pout / pin, 1.0, 0.35);
}

TEST(Etu, IntroducesDelaySpread) {
  // An impulse through ETU must produce energy at the 5 us tap.
  Rng rng(9);
  EtuChannel ch(5.0);
  bool found_late_energy = false;
  for (int r = 0; r < 10 && !found_late_energy; ++r) {
    IqBuffer buf(16, cfloat{0.0f, 0.0f});
    buf[0] = {1.0f, 0.0f};
    ch.apply(buf, 1e6, rng);
    // 5 us at 1 Msps = sample 5.
    if (std::abs(buf[5]) > 0.05f) found_late_energy = true;
  }
  EXPECT_TRUE(found_late_energy);
}

TEST(Etu, OutputDiffersAcrossRealizations) {
  Rng rng(10);
  EtuChannel ch(5.0);
  IqBuffer a(100, cfloat{1.0f, 0.0f});
  IqBuffer b(100, cfloat{1.0f, 0.0f});
  ch.apply(a, 1e6, rng);
  ch.apply(b, 1e6, rng);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 0.1);
}

TEST(Etu, EmptyBufferIsSafe) {
  Rng rng(11);
  EtuChannel ch(5.0);
  IqBuffer empty;
  ch.apply(empty, 1e6, rng);  // must not crash
  EXPECT_TRUE(empty.empty());
}

TEST(IdentityChannel, LeavesSignalUntouched) {
  Rng rng(12);
  IdentityChannel ch;
  IqBuffer buf(32, cfloat{0.5f, -0.5f});
  ch.apply(buf, 1e6, rng);
  for (const cfloat& v : buf) EXPECT_EQ(v, (cfloat{0.5f, -0.5f}));
}

}  // namespace
}  // namespace tnb::chan
