// Pins the bit-identity contract of the zero-allocation demodulation
// kernels (DESIGN.md "Hot-path kernels"):
//  - dechirp_fft / signal_vector (by-value) vs the *_into workspace kernels,
//  - FracSync::refine with its per-refine evaluation cache vs a reference
//    reimplementation of the uncached three-phase search,
//  - zero heap allocations in a warm workspace's steady-state demod loop,
//  - fold() reusing a correctly-sized output without churn.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/frac_sync.hpp"
#include "core/window.hpp"
#include "lora/chirp.hpp"
#include "lora/demodulator.hpp"
#include "lora/frame.hpp"
#include "lora/modulator.hpp"

using namespace tnb;

// ---------------------------------------------------------------------------
// Global allocation counter. Every operator new in this binary bumps it, so
// a test can assert that a region of code performs no heap allocations.
// malloc/free back the storage (they satisfy any fundamental alignment we
// use via the padding trick for the aligned overloads).
namespace {

std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (align <= alignof(std::max_align_t)) {
    if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  } else {
    void* p = nullptr;
    // aligned_alloc needs size to be a multiple of align.
    const std::size_t padded = (size + align - 1) / align * align;
    p = std::aligned_alloc(align, padded != 0 ? padded : align);
    if (p != nullptr) return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

lora::Params make_params(unsigned sf, unsigned osf) {
  return lora::Params{.sf = sf, .cr = 4, .bandwidth_hz = 125e3, .osf = osf};
}

// --- by-value wrappers vs workspace kernels -------------------------------

TEST(DemodWorkspace, DechirpFftMatchesByValue) {
  Rng rng(11);
  for (const unsigned sf : {8u, 10u, 12u}) {
    for (const unsigned osf : {1u, 8u}) {
      const lora::Params p = make_params(sf, osf);
      const lora::Demodulator demod(p);
      lora::Workspace ws(p);
      const std::size_t sps = p.sps();
      std::vector<cfloat> window(sps);
      for (auto& v : window) v = rng.complex_normal();
      std::vector<cfloat> out(sps);
      for (int trial = 0; trial < 4; ++trial) {
        const double cfo = rng.uniform(-3.0, 3.0);
        const bool up = (trial % 2) == 0;
        // Partial (zero-padded) window on the last trial.
        const std::size_t len = trial == 3 ? sps - sps / 3 : sps;
        const std::span<const cfloat> win(window.data(), len);
        const std::vector<cfloat> ref = demod.dechirp_fft(win, cfo, up);
        demod.dechirp_fft_into(win, cfo, up, ws, out);
        ASSERT_EQ(ref.size(), out.size());
        ASSERT_EQ(0, std::memcmp(ref.data(), out.data(),
                                 ref.size() * sizeof(cfloat)))
            << "sf=" << sf << " osf=" << osf << " trial=" << trial;
      }
    }
  }
}

TEST(DemodWorkspace, SignalVectorMatchesByValue) {
  Rng rng(12);
  for (const unsigned sf : {8u, 10u, 12u}) {
    for (const unsigned osf : {1u, 8u}) {
      const lora::Params p = make_params(sf, osf);
      const lora::Demodulator demod(p);
      lora::Workspace ws(p);
      const auto sym = lora::make_upchirp(p, 42 % p.n_bins());
      SignalVector out;
      for (int trial = 0; trial < 4; ++trial) {
        const double cfo = rng.uniform(-3.0, 3.0);
        const SignalVector ref = demod.signal_vector(sym, cfo);
        demod.signal_vector_into(sym, cfo, /*up=*/true, ws, out);
        ASSERT_EQ(ref.size(), out.size());
        ASSERT_EQ(0, std::memcmp(ref.data(), out.data(),
                                 ref.size() * sizeof(float)))
            << "sf=" << sf << " osf=" << osf << " cfo=" << cfo;
      }
    }
  }
}

TEST(DemodWorkspace, FoldReusesCorrectlySizedOutput) {
  const lora::Params p = make_params(8, 4);
  const lora::Demodulator demod(p);
  Rng rng(13);
  std::vector<cfloat> spec(p.sps());
  for (auto& v : spec) v = rng.complex_normal();
  SignalVector a, b;
  demod.fold(spec, a);
  b.resize(p.n_bins());
  const float* data_before = b.data();
  const std::size_t cap_before = b.capacity();
  demod.fold(spec, b);
  EXPECT_EQ(data_before, b.data());
  EXPECT_EQ(cap_before, b.capacity());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
}

// --- steady-state allocation freedom --------------------------------------

TEST(DemodWorkspace, WarmWorkspaceDemodAllocatesNothing) {
  const lora::Params p = make_params(10, 4);
  const lora::Demodulator demod(p);
  lora::Workspace ws(p);
  const auto sym = lora::make_upchirp(p, 100);
  SignalVector out;
  out.resize(p.n_bins());
  // Warm-up: size every buffer and populate the phasor cache for both CFOs.
  demod.signal_vector_into(sym, 0.25, /*up=*/true, ws, out);
  demod.signal_vector_into(sym, -1.5, /*up=*/true, ws, out);
  (void)demod.demod_value(sym, 0.25, ws);

  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 64; ++i) {
    demod.signal_vector_into(sym, i % 2 == 0 ? 0.25 : -1.5, /*up=*/true, ws,
                             out);
    (void)demod.demod_value(sym, 0.25, ws);
  }
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(before, after)
      << "steady-state demod loop performed " << (after - before)
      << " heap allocations";
}

// --- FracSync: cached refine vs reference uncached search ------------------

/// Reference reimplementation of the uncached three-phase refine() exactly
/// as it was originally written: phase 1 with by-value dechirp_fft and
/// std::complex rotate-and-add, phases 2/3 as a plain grid search over the
/// public exact objective q(). Production refine() must return bit-equal
/// results through its evaluation cache.
rx::FracSyncResult reference_refine(const lora::Params& p,
                                    const rx::FracSync& fsync,
                                    std::span<const cfloat> trace, double t0,
                                    double cfo_cycles) {
  const std::size_t sps = p.sps();
  const lora::Demodulator demod(p);
  std::vector<std::vector<cfloat>> up_spec, down_spec;
  {
    std::vector<cfloat> window(sps);
    for (int m = 0; m < static_cast<int>(lora::kPreambleUpchirps); ++m) {
      rx::extract_window(trace, t0 + m * static_cast<double>(sps), window);
      up_spec.push_back(demod.dechirp_fft(window, cfo_cycles, true));
    }
    for (int m = 10; m <= 11; ++m) {
      rx::extract_window(trace, t0 + m * static_cast<double>(sps), window);
      down_spec.push_back(demod.dechirp_fft(window, cfo_cycles, false));
    }
  }
  double best_q = -1.0, df_star = 0.0;
  std::vector<cfloat> up_sum(sps), down_sum(sps);
  SignalVector up_sv, down_sv;
  for (int i = 0; i <= 16; ++i) {
    const double df = -1.0 + static_cast<double>(i) / 16.0;
    std::fill(up_sum.begin(), up_sum.end(), cfloat{0.0f, 0.0f});
    std::fill(down_sum.begin(), down_sum.end(), cfloat{0.0f, 0.0f});
    auto rotate_add = [&](std::vector<cfloat>& sum,
                          const std::vector<cfloat>& spec, int m) {
      const double ph = -kTwoPi * (cfo_cycles + df) * static_cast<double>(m);
      const cfloat rot{static_cast<float>(std::cos(ph)),
                       static_cast<float>(std::sin(ph))};
      for (std::size_t k = 0; k < sps; ++k) sum[k] += spec[k] * rot;
    };
    for (int m = 0; m < static_cast<int>(up_spec.size()); ++m) {
      rotate_add(up_sum, up_spec[static_cast<std::size_t>(m)], m);
    }
    for (int m = 0; m < static_cast<int>(down_spec.size()); ++m) {
      rotate_add(down_sum, down_spec[static_cast<std::size_t>(m)], 10 + m);
    }
    demod.fold(up_sum, up_sv);
    demod.fold(down_sum, down_sv);
    const double v =
        static_cast<double>(up_sv[lora::Demodulator::argmax(up_sv)]) +
        static_cast<double>(down_sv[lora::Demodulator::argmax(down_sv)]);
    if (v > best_q) {
      best_q = v;
      df_star = df;
    }
  }

  double best_q2 = 0.0, dt_hat = 0.0, df_hat = df_star;
  bool gated = false;
  for (int line = 0; line < 2; ++line) {
    const double df = df_star + static_cast<double>(line);
    for (int i = -2; i <= 2; ++i) {
      const double dt = static_cast<double>(i) / 2.0;
      const double v = fsync.q(trace, t0, cfo_cycles, dt, df, /*gate=*/true);
      if (v > best_q2) {
        best_q2 = v;
        dt_hat = dt;
        df_hat = df;
        gated = true;
      }
    }
  }
  if (!gated) {
    for (int line = 0; line < 2; ++line) {
      const double df = df_star + static_cast<double>(line);
      for (int i = -2; i <= 2; ++i) {
        const double dt = static_cast<double>(i) / 2.0;
        const double v = fsync.q(trace, t0, cfo_cycles, dt, df, /*gate=*/false);
        if (v > best_q2) {
          best_q2 = v;
          dt_hat = dt;
          df_hat = df;
        }
      }
    }
  }

  double best_q3 = best_q2, dt_fin = dt_hat;
  for (unsigned i = 0; i <= p.osf; ++i) {
    const double dt =
        dt_hat - 0.5 + static_cast<double>(i) / static_cast<double>(p.osf);
    const double v = fsync.q(trace, t0, cfo_cycles, dt, df_hat, gated);
    if (v > best_q3) {
      best_q3 = v;
      dt_fin = dt;
    }
  }

  rx::FracSyncResult r;
  r.dt = dt_fin;
  r.df = df_hat;
  r.q = best_q3;
  r.gated = gated;
  return r;
}

/// Builds a trace with two collided packets and returns it; t0s/cfos get
/// the ground-truth placement of each packet.
IqBuffer make_collided_trace(const lora::Params& p, std::vector<double>& t0s,
                             std::vector<double>& cfos) {
  const lora::Modulator mod(p);
  std::vector<std::uint8_t> app(10, 0x3C);
  const auto symbols = lora::make_packet_symbols(p, app);
  const double sps = static_cast<double>(p.sps());
  IqBuffer trace(mod.packet_samples(symbols.size()) +
                     static_cast<std::size_t>(14.0 * sps),
                 cfloat{0.0f, 0.0f});
  const double starts[2] = {2.0 * sps + 0.37, 6.0 * sps + 0.81};
  const double cfo_hz[2] = {1700.0, -2300.0};
  const double amps[2] = {1.0, 2.4};
  for (int k = 0; k < 2; ++k) {
    lora::WaveformOptions w;
    w.frac_delay = starts[k] - std::floor(starts[k]);
    w.cfo_hz = cfo_hz[k];
    w.amplitude = amps[k];
    const IqBuffer pkt = mod.synthesize(symbols, w);
    const auto off = static_cast<std::size_t>(std::floor(starts[k]));
    for (std::size_t s = 0; s < pkt.size() && off + s < trace.size(); ++s) {
      trace[off + s] += pkt[s];
    }
    t0s.push_back(starts[k]);
    cfos.push_back(p.cfo_hz_to_cycles(cfo_hz[k]));
  }
  return trace;
}

TEST(FracSyncCache, RefineMatchesUncachedReferenceOnCollidedPreambles) {
  const lora::Params p = make_params(8, 2);
  const rx::FracSync fsync(p);
  std::vector<double> t0s, cfos;
  const IqBuffer trace = make_collided_trace(p, t0s, cfos);
  for (std::size_t k = 0; k < t0s.size(); ++k) {
    // Slightly wrong coarse estimates, as detection would hand over.
    const double t0 = std::floor(t0s[k]);
    const double cfo = std::floor(cfos[k] + 0.5);
    const rx::FracSyncResult ref =
        reference_refine(p, fsync, trace, t0, cfo);
    lora::Workspace ws(p);
    const rx::FracSyncResult got = fsync.refine(trace, t0, cfo, ws);
    EXPECT_EQ(ref.dt, got.dt) << "packet " << k;
    EXPECT_EQ(ref.df, got.df) << "packet " << k;
    EXPECT_EQ(ref.q, got.q) << "packet " << k;
    EXPECT_EQ(ref.gated, got.gated) << "packet " << k;
    // The no-workspace overload goes through the same path.
    const rx::FracSyncResult tls = fsync.refine(trace, t0, cfo);
    EXPECT_EQ(got.q, tls.q) << "packet " << k;
  }
}

TEST(FracSyncCache, QMatchesRefineObjectiveAtChosenPoint) {
  // refine()'s reported q must be the exact public objective at (dt, df):
  // the cache may never change what a point evaluates to.
  const lora::Params p = make_params(8, 2);
  const rx::FracSync fsync(p);
  std::vector<double> t0s, cfos;
  const IqBuffer trace = make_collided_trace(p, t0s, cfos);
  const double t0 = std::floor(t0s[0]);
  const double cfo = std::floor(cfos[0] + 0.5);
  const rx::FracSyncResult r = fsync.refine(trace, t0, cfo);
  const double direct = fsync.q(trace, t0, cfo, r.dt, r.df, r.gated);
  EXPECT_EQ(direct, r.q);
}

}  // namespace
