// Instrumentation must not perturb decoding: the same trace decoded with a
// live obs registry and with the registry disabled must produce
// bit-identical packets, for both the offline Receiver and the streaming
// gateway. This is the guarantee that lets tnb_streamd always run with
// metrics on.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "core/receiver.hpp"
#include "obs/stage_timer.hpp"
#include "sim/trace_builder.hpp"
#include "stream/streaming_receiver.hpp"

namespace tnb {
namespace {

// Same small-FFT trade as test_streaming / test_concurrency.
lora::Params test_params() {
  return {.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
}

sim::Trace collision_trace(double duration_s, double load_pps,
                           std::uint64_t seed) {
  Rng rng(seed);
  sim::TraceOptions opt;
  opt.duration_s = duration_s;
  opt.load_pps = load_pps;
  opt.nodes = {{1, 20.0, 900.0}, {2, 15.0, -1800.0}, {3, 12.0, 400.0}};
  return sim::build_trace(test_params(), opt, rng);
}

/// Bit-for-bit packet equality: payload bytes plus every numeric field,
/// compared through memcmp of the doubles so even sign-of-zero or NaN
/// differences would fail.
void expect_identical(const std::vector<sim::DecodedPacket>& a,
                      const std::vector<sim::DecodedPacket>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("packet " + std::to_string(i));
    EXPECT_EQ(a[i].payload, b[i].payload);
    EXPECT_EQ(std::memcmp(&a[i].start_sample, &b[i].start_sample,
                          sizeof a[i].start_sample), 0);
    EXPECT_EQ(std::memcmp(&a[i].snr_db, &b[i].snr_db, sizeof a[i].snr_db), 0);
    EXPECT_EQ(std::memcmp(&a[i].cfo_hz, &b[i].cfo_hz, sizeof a[i].cfo_hz), 0);
  }
}

TEST(ObsDeterminism, ReceiverDecodeIsBitIdenticalWithMetricsOn) {
  const lora::Params p = test_params();
  const sim::Trace trace = collision_trace(2.0, 8.0, 97);

  ASSERT_EQ(obs::Registry::global(), nullptr);
  rx::Receiver off(p);  // null global: instrumentation fully disabled
  Rng rng_off(1);
  rx::ReceiverStats stats_off;
  const auto decoded_off = off.decode(trace.iq, rng_off, &stats_off);
  ASSERT_GE(decoded_off.size(), 2u) << "trace too quiet to be meaningful";

  obs::Registry reg;
  rx::ReceiverOptions ropt;
  ropt.metrics = &reg;
  rx::Receiver on(p, ropt);
  Rng rng_on(1);
  rx::ReceiverStats stats_on;
  const auto decoded_on = on.decode(trace.iq, rng_on, &stats_on);

  expect_identical(decoded_off, decoded_on);
  EXPECT_EQ(stats_off.to_json(), stats_on.to_json());

  // The instrumented run actually recorded: every decode enters detect,
  // frac_sync, sigcalc, assign and header at least once.
  const obs::Snapshot snap = reg.snapshot();
  for (const char* stage : {obs::kStageDetect, obs::kStageFracSync,
                            obs::kStageSigCalc, obs::kStageAssign,
                            obs::kStageHeader}) {
    const obs::Snapshot::Metric* m =
        snap.find(obs::kStageMetricName, {{"stage", stage}});
    ASSERT_NE(m, nullptr) << stage;
    EXPECT_GT(m->count, 0u) << stage;
  }
  // All seven registered regardless of whether the trace exercised them.
  EXPECT_NE(snap.find(obs::kStageMetricName, {{"stage", obs::kStageBec}}),
            nullptr);
  EXPECT_NE(
      snap.find(obs::kStageMetricName, {{"stage", obs::kStageSecondPass}}),
      nullptr);
  EXPECT_GT(snap.find("tnb_rx_detected_total")->value, 0.0);
}

TEST(ObsDeterminism, StreamingDecodeIsBitIdenticalWithGlobalRegistry) {
  const lora::Params p = test_params();
  const sim::Trace trace = collision_trace(2.0, 8.0, 98);

  ASSERT_EQ(obs::Registry::global(), nullptr);
  stream::StreamingOptions sopt;
  sopt.window_symbols = 256;
  sopt.rng_seed = 1;

  stream::StreamingReceiver off(p, {}, sopt);
  stream::BufferSource src_off(trace.iq);
  off.consume(src_off, std::size_t{1} << p.sf);
  ASSERT_GE(off.packets().size(), 2u) << "trace too quiet to be meaningful";

  obs::Registry reg;
  obs::Registry::set_global(&reg);
  stream::StreamingReceiver on(p, {}, sopt);
  obs::Registry::set_global(nullptr);  // handles already resolved
  stream::BufferSource src_on(trace.iq);
  on.consume(src_on, std::size_t{1} << p.sf);

  expect_identical(off.packets(), on.packets());
  EXPECT_EQ(off.stats().to_json(), on.stats().to_json());

  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("tnb_stream_packets_emitted_total")->value,
            static_cast<double>(on.packets().size()));
  EXPECT_EQ(snap.find("tnb_stream_samples_in_total")->value,
            static_cast<double>(trace.iq.size()));
  EXPECT_GT(snap.find("tnb_stream_segment_decode_seconds")->count, 0u);
}

}  // namespace
}  // namespace tnb
