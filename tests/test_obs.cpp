// tnb::obs — metric primitives, registry semantics, both exporters, and
// the pinned JSON schemas of the receiver/streaming stats lines.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "core/receiver.hpp"
#include "fleet/fleet.hpp"
#include "obs/json.hpp"
#include "obs/stage_timer.hpp"
#include "stream/streaming_receiver.hpp"

namespace tnb::obs {
namespace {

TEST(Counter, IncAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAddUpdateMax) {
  Gauge g;
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
  g.add(15);
  EXPECT_EQ(g.value(), 10);
  g.update_max(7);  // smaller: no effect
  EXPECT_EQ(g.value(), 10);
  g.update_max(12);
  EXPECT_EQ(g.value(), 12);
}

TEST(Histogram, BucketsCountSum) {
  const double bounds[] = {1.0, 10.0, 100.0};
  Histogram h{std::span<const double>(bounds)};
  h.observe(0.5);    // bucket 0 (le 1)
  h.observe(1.0);    // bucket 0 (le is inclusive)
  h.observe(5.0);    // bucket 1
  h.observe(1000.0); // +Inf bucket
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
}

TEST(Histogram, RejectsNonIncreasingBounds) {
  const double bad[] = {1.0, 1.0, 2.0};
  EXPECT_THROW(Histogram{std::span<const double>(bad)}, std::invalid_argument);
  const double empty[] = {1.0};
  EXPECT_NO_THROW(Histogram{std::span<const double>(empty, 1)});
}

TEST(NullRefs, AreInertAndCheap) {
  CounterRef c;
  GaugeRef g;
  HistogramRef h;
  EXPECT_FALSE(c.enabled());
  EXPECT_FALSE(g.enabled());
  EXPECT_FALSE(h.enabled());
  c.inc(5);
  g.set(5);
  g.update_max(9);
  h.observe(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(Registry, SameNameAndLabelsSharesTheMetric) {
  Registry reg;
  CounterRef a = reg.counter("hits", "help");
  CounterRef b = reg.counter("hits");
  a.inc(2);
  b.inc(3);
  EXPECT_EQ(a.value(), 5u);
  // Different labels: a distinct series.
  CounterRef c = reg.counter("hits", "", {{"kind", "x"}});
  c.inc();
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(c.value(), 1u);
}

TEST(Registry, KindConflictThrows) {
  Registry reg;
  reg.counter("m");
  EXPECT_THROW(reg.gauge("m"), std::invalid_argument);
  const double bounds[] = {1.0};
  EXPECT_THROW(reg.histogram("m", bounds), std::invalid_argument);
  // Same histogram name with different bounds is also a conflict.
  const double b1[] = {1.0, 2.0};
  const double b2[] = {1.0, 3.0};
  reg.histogram("h", b1);
  EXPECT_NO_THROW(reg.histogram("h", b1));
  EXPECT_THROW(reg.histogram("h", b2), std::invalid_argument);
}

TEST(Registry, SnapshotIsSortedAndFindable) {
  Registry reg;
  reg.counter("z_last").inc(1);
  reg.gauge("a_first").set(7);
  reg.counter("mid", "", {{"s", "b"}}).inc(2);
  reg.counter("mid", "", {{"s", "a"}}).inc(3);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 4u);
  EXPECT_EQ(snap.metrics[0].name, "a_first");
  EXPECT_EQ(snap.metrics[1].name, "mid");
  EXPECT_EQ(snap.metrics[1].labels, (Labels{{"s", "a"}}));
  EXPECT_EQ(snap.metrics[2].labels, (Labels{{"s", "b"}}));
  EXPECT_EQ(snap.metrics[3].name, "z_last");

  const Snapshot::Metric* m = snap.find("mid", {{"s", "b"}});
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->value, 2.0);
  EXPECT_EQ(snap.find("nope"), nullptr);
}

TEST(Registry, GlobalDefaultsToNullAndResolves) {
  ASSERT_EQ(Registry::global(), nullptr) << "another test leaked the global";
  Registry reg;
  EXPECT_EQ(resolve(&reg), &reg);
  EXPECT_EQ(resolve(nullptr), nullptr);
  Registry::set_global(&reg);
  EXPECT_EQ(resolve(nullptr), &reg);
  Registry other;
  EXPECT_EQ(resolve(&other), &other);  // explicit beats global
  Registry::set_global(nullptr);
  EXPECT_EQ(resolve(nullptr), nullptr);
}

TEST(Exposition, PrometheusTextFormat) {
  Registry reg;
  reg.counter("tnb_events_total", "Things that happened").inc(3);
  reg.gauge("tnb_depth", "Queue depth").set(-2);
  const double bounds[] = {0.5, 1.0};
  HistogramRef h = reg.histogram("tnb_lat_seconds", bounds, "Latency",
                                 {{"stage", "x"}});
  // Binary-exact values so the pinned _sum text is stable.
  h.observe(0.25);
  h.observe(0.75);
  h.observe(2.0);
  const std::string text = reg.snapshot().to_prometheus();
  const std::string expected =
      "# HELP tnb_depth Queue depth\n"
      "# TYPE tnb_depth gauge\n"
      "tnb_depth -2\n"
      "# HELP tnb_events_total Things that happened\n"
      "# TYPE tnb_events_total counter\n"
      "tnb_events_total 3\n"
      "# HELP tnb_lat_seconds Latency\n"
      "# TYPE tnb_lat_seconds histogram\n"
      "tnb_lat_seconds_bucket{stage=\"x\",le=\"0.5\"} 1\n"
      "tnb_lat_seconds_bucket{stage=\"x\",le=\"1\"} 2\n"
      "tnb_lat_seconds_bucket{stage=\"x\",le=\"+Inf\"} 3\n"
      "tnb_lat_seconds_sum{stage=\"x\"} 3\n"
      "tnb_lat_seconds_count{stage=\"x\"} 3\n";
  EXPECT_EQ(text, expected);
}

TEST(Exposition, HelpAndTypeOncePerLabeledFamily) {
  Registry reg;
  reg.counter("fam", "h", {{"k", "a"}}).inc(1);
  reg.counter("fam", "h", {{"k", "b"}}).inc(2);
  const std::string text = reg.snapshot().to_prometheus();
  EXPECT_EQ(text.find("# HELP fam"), text.rfind("# HELP fam"));
  EXPECT_EQ(text.find("# TYPE fam"), text.rfind("# TYPE fam"));
  EXPECT_NE(text.find("fam{k=\"a\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("fam{k=\"b\"} 2\n"), std::string::npos);
}

TEST(Exposition, JsonExporter) {
  Registry reg;
  reg.counter("c", "", {{"k", "v"}}).inc(7);
  reg.gauge("g").set(-1);
  const double bounds[] = {1.0};
  HistogramRef h = reg.histogram("h", bounds);
  h.observe(0.5);
  const std::string json = reg.snapshot().to_json();
  EXPECT_EQ(json,
            "{\"counters\":{\"c{k=v}\":7},"
            "\"gauges\":{\"g\":-1},"
            "\"histograms\":{\"h\":{\"count\":1,\"sum\":0.5,"
            "\"bounds\":[1],\"buckets\":[1,0]}}}");
}

TEST(Quantile, InterpolatesWithinBucket) {
  Registry reg;
  const double bounds[] = {10.0, 20.0, 40.0};
  HistogramRef h = reg.histogram("q", bounds);
  // 10 observations in (0,10], 10 in (10,20].
  for (int i = 0; i < 10; ++i) h.observe(5.0);
  for (int i = 0; i < 10; ++i) h.observe(15.0);
  const Snapshot snap = reg.snapshot();
  const Snapshot::Metric* m = snap.find("q");
  ASSERT_NE(m, nullptr);
  // p50 sits exactly at the first bucket's upper bound.
  EXPECT_NEAR(histogram_quantile(*m, 0.5), 10.0, 1e-9);
  // p75 is halfway through the second bucket: 10 + 0.5 * (20 - 10).
  EXPECT_NEAR(histogram_quantile(*m, 0.75), 15.0, 1e-9);
  EXPECT_NEAR(histogram_quantile(*m, 1.0), 20.0, 1e-9);
}

TEST(Quantile, EmptyIsNaNAndOverflowClampsToLastBound) {
  Registry reg;
  const double bounds[] = {1.0, 2.0};
  HistogramRef h = reg.histogram("q", bounds);
  {
    const Snapshot snap = reg.snapshot();
    const Snapshot::Metric* m = snap.find("q");
    ASSERT_NE(m, nullptr);
    EXPECT_TRUE(std::isnan(histogram_quantile(*m, 0.5)));
    EXPECT_EQ(histogram_summary(*m), "n=0");
  }
  h.observe(100.0);  // lands in +Inf, clamps to the last finite bound
  const Snapshot snap = reg.snapshot();
  const Snapshot::Metric* m = snap.find("q");
  EXPECT_NEAR(histogram_quantile(*m, 0.5), 2.0, 1e-9);
  EXPECT_EQ(histogram_summary(*m), "n=1 mean=100 p50=2 p99=2");
}

TEST(JsonWriter, EscapesAndFormats) {
  JsonWriter w;
  w.begin_object();
  w.field("s", "a\"b\\c\nd");
  w.field("t", true);
  w.field("f", 1.5);
  w.field("n", std::nan(""));
  w.key("arr").begin_array().value(std::uint64_t{1}).value(std::int64_t{-2})
      .end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"t\":true,\"f\":1.5,\"n\":null,"
            "\"arr\":[1,-2]}");
}

TEST(StageTimer, RegistersAllSevenStagesEagerly) {
  Registry reg;
  StageTimer timer = StageTimer::for_registry(&reg);
  (void)timer;
  const Snapshot snap = reg.snapshot();
  for (const char* stage :
       {kStageDetect, kStageFracSync, kStageSigCalc, kStageAssign,
        kStageHeader, kStageBec, kStageSecondPass}) {
    const Snapshot::Metric* m =
        snap.find(kStageMetricName, {{"stage", stage}});
    ASSERT_NE(m, nullptr) << stage;
    EXPECT_EQ(m->count, 0u);
  }
  // Null registry: all handles inert.
  StageTimer off = StageTimer::for_registry(nullptr);
  EXPECT_FALSE(off.detect.enabled());
  {
    const ScopedSpan span(off.detect);  // must not touch the clock or crash
  }
  EXPECT_EQ(off.detect.count(), 0u);
}

TEST(ScopedSpan, RecordsOneObservationPerScope) {
  Registry reg;
  HistogramRef h = reg.histogram("span_seconds", duration_bounds());
  {
    ScopedSpan span(h);
  }
  {
    ScopedSpan span(h);
    span.stop();
    span.stop();  // idempotent
  }
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.sum(), 0.0);
}

// ---- pinned stats-line schemas (satellite: one schema for tnb_eval and
// tnb_streamd; changing a field name or dropping one breaks this test) ----

TEST(ReceiverStatsJson, SchemaIsPinned) {
  rx::ReceiverStats st;
  st.detected = 9;
  st.header_ok = 8;
  st.crc_ok = 7;
  st.decoded_first_pass = 6;
  st.decoded_second_pass = 1;
  st.bec.delta_prime = 11;
  st.bec.delta1 = 12;
  st.bec.delta2 = 13;
  st.bec.delta3 = 14;
  st.bec.crc_checks = 15;
  st.bec.blocks_no_repair = 16;
  st.bec.candidate_blocks = 17;
  st.rescued_per_packet = {2, 0, 3};  // length 3, sum 5
  EXPECT_EQ(st.to_json(),
            "{\"detected\":9,\"header_ok\":8,\"crc_ok\":7,"
            "\"decoded_first_pass\":6,\"decoded_second_pass\":1,"
            "\"bec\":{\"delta_prime\":11,\"delta1\":12,\"delta2\":13,"
            "\"delta3\":14,\"crc_checks\":15,\"blocks_no_repair\":16,"
            "\"candidate_blocks\":17},"
            "\"rescued_packets\":3,\"rescued_codewords\":5}");
}

TEST(ReceiverStatsMerge, AddsCountersAndConcatenatesRescues) {
  rx::ReceiverStats a;
  a.detected = 3;
  a.crc_ok = 2;
  a.bec.delta1 = 4;
  a.rescued_per_packet = {1, 2};
  rx::ReceiverStats b;
  b.detected = 10;
  b.header_ok = 5;
  b.bec.delta1 = 6;
  b.rescued_per_packet = {7};
  a += b;
  EXPECT_EQ(a.detected, 13u);
  EXPECT_EQ(a.header_ok, 5u);
  EXPECT_EQ(a.crc_ok, 2u);
  EXPECT_EQ(a.bec.delta1, 10u);
  EXPECT_EQ(a.rescued_per_packet, (std::vector<std::size_t>{1, 2, 7}));
  // Self-merge doubles every counter and the rescue list — the fleet's
  // per-channel aggregation must never corrupt a stats object that appears
  // on both sides.
  a += a;
  EXPECT_EQ(a.detected, 26u);
  EXPECT_EQ(a.bec.delta1, 20u);
  EXPECT_EQ(a.rescued_per_packet,
            (std::vector<std::size_t>{1, 2, 7, 1, 2, 7}));
}

TEST(StreamingStatsMerge, AddsEveryFieldIncludingOccupancyMarks) {
  stream::StreamingStats a;
  a.samples_in = 100;
  a.chunks = 2;
  a.segments = 3;
  a.forced_cuts = 1;
  a.spans_refined = 4;
  a.samples_retired = 90;
  a.live_packets = 1;
  a.peak_live_packets = 2;
  a.high_water_samples = 50;
  a.packets_emitted = 5;
  a.rx.detected = 5;
  stream::StreamingStats b = a;
  b.samples_in = 11;
  b.high_water_samples = 7;
  a += b;
  EXPECT_EQ(a.samples_in, 111u);
  EXPECT_EQ(a.chunks, 4u);
  EXPECT_EQ(a.segments, 6u);
  EXPECT_EQ(a.forced_cuts, 2u);
  EXPECT_EQ(a.spans_refined, 8u);
  EXPECT_EQ(a.samples_retired, 180u);
  // Occupancy marks add: the merged value is the conservative
  // simultaneous-occupancy bound across lanes, not an observed peak.
  EXPECT_EQ(a.live_packets, 2u);
  EXPECT_EQ(a.peak_live_packets, 4u);
  EXPECT_EQ(a.high_water_samples, 57u);
  EXPECT_EQ(a.packets_emitted, 10u);
  EXPECT_EQ(a.rx.detected, 10u);
  a += a;  // self-merge safe
  EXPECT_EQ(a.samples_in, 222u);
  EXPECT_EQ(a.rx.detected, 20u);
}

TEST(StreamingStatsJson, SchemaIsPinned) {
  stream::StreamingStats st;
  st.samples_in = 100;
  st.chunks = 4;
  st.segments = 2;
  st.forced_cuts = 1;
  st.spans_refined = 3;
  st.samples_retired = 90;
  st.live_packets = 5;
  st.peak_live_packets = 6;
  st.high_water_samples = 80;
  st.packets_emitted = 7;
  st.rx.detected = 1;
  const std::string json = st.to_json();
  EXPECT_EQ(json.substr(0, json.find("\"rx\":")),
            "{\"samples_in\":100,\"chunks\":4,\"segments\":2,"
            "\"forced_cuts\":1,\"spans_refined\":3,\"samples_retired\":90,"
            "\"live_packets\":5,\"peak_live_packets\":6,"
            "\"high_water_samples\":80,\"packets_emitted\":7,");
  // The embedded rx object is exactly the ReceiverStats schema.
  EXPECT_NE(json.find("\"rx\":" + st.rx.to_json() + "}"), std::string::npos);
}

TEST(FleetStatsJson, SchemaIsPinned) {
  // Two channels, two SF lanes each. The per-channel objects merge the
  // channel's SF lanes; "totals" merges all four. Both reuse the pinned
  // StreamingStats schema, so this test only needs to pin the fleet
  // header and the grouping structure.
  fleet::FleetStats st;
  st.channels = 2;
  st.sfs = {7, 9};
  st.lanes = 3;
  st.wideband_samples_in = 4000;
  st.wideband_blocks = 2000;
  st.partial_tail_samples = 1;
  st.chunks_dispatched = 8;
  st.steals = 5;
  st.resident_iq_samples = 0;
  st.resident_iq_high_water = 1234;
  st.resident_iq_bound = 9999;
  st.packets = 6;
  stream::StreamingStats lane;
  for (unsigned c = 0; c < 2; ++c) {
    for (unsigned sf : st.sfs) {
      lane.samples_in = 100 * (c + 1) + sf;
      lane.packets_emitted = c + sf;
      st.lane_stats.push_back(
          {fleet::LaneInfo{c, sf, std::size_t{1} << sf}, lane});
    }
  }
  stream::StreamingStats ch0 = st.lane_stats[0].second;
  ch0 += st.lane_stats[1].second;
  stream::StreamingStats ch1 = st.lane_stats[2].second;
  ch1 += st.lane_stats[3].second;
  stream::StreamingStats totals = ch0;
  totals += ch1;
  EXPECT_EQ(st.to_json(),
            "{\"fleet\":{\"channels\":2,\"sfs\":[7,9],\"lanes\":3,"
            "\"wideband_samples_in\":4000,\"wideband_blocks\":2000,"
            "\"partial_tail_samples\":1,\"chunks_dispatched\":8,"
            "\"steals\":5,\"resident_iq_samples\":0,"
            "\"resident_iq_high_water\":1234,\"resident_iq_bound\":9999,"
            "\"packets\":6},"
            "\"channels\":{\"0\":" + ch0.to_json() +
            ",\"1\":" + ch1.to_json() + "},"
            "\"totals\":" + totals.to_json() + "}");
}

TEST(Exposition, DefaultReceiverSeriesStayUnlabeled) {
  // A single-gateway Receiver (no metric_labels) must register exactly the
  // label-free series it always has — the fleet's per-lane labels must not
  // leak into the default exposition schema.
  Registry reg;
  rx::ReceiverOptions opt;
  opt.metrics = &reg;
  rx::Receiver rx({.sf = 7, .cr = 4, .bandwidth_hz = 125e3, .osf = 2}, opt);
  const Snapshot snap = reg.snapshot();
  EXPECT_NE(snap.find("tnb_rx_detected_total", {}), nullptr);
  EXPECT_NE(snap.find("tnb_rx_decoded_total", {{"pass", "first"}}), nullptr);
  for (const auto& m : snap.metrics) {
    for (const auto& [k, v] : m.labels) {
      EXPECT_NE(k, "channel") << m.name;
      EXPECT_NE(k, "sf") << m.name;
    }
  }
}

}  // namespace
}  // namespace tnb::obs
