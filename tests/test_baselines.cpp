#include "baselines/factories.hpp"

#include <gtest/gtest.h>

#include "baselines/aligntrack.hpp"
#include "baselines/argmax_assigner.hpp"
#include "baselines/cic.hpp"
#include "channel/awgn.hpp"
#include "common/rng.hpp"
#include "lora/frame.hpp"
#include "lora/gray.hpp"
#include "lora/modulator.hpp"
#include "sim/metrics.hpp"
#include "sim/trace_builder.hpp"

namespace tnb::base {
namespace {

lora::Params fixture_params() {
  return lora::Params{.sf = 8, .cr = 4, .bandwidth_hz = 125e3, .osf = 2};
}

/// Same two-packet fixture as the Thrive tests (ground-truth contexts).
struct Fixture {
  lora::Params p = fixture_params();
  IqBuffer trace;
  std::vector<rx::PacketContext> contexts;
  std::vector<std::uint32_t> symbols_a, symbols_b;

  Fixture(double offset_symbols, double cfo_a, double cfo_b, double amp_a,
          double amp_b, double noise, Rng& rng) {
    const lora::Modulator mod(p);
    std::vector<std::uint8_t> app_a(14, 0x3C), app_b(14, 0x4D);
    symbols_a = lora::make_packet_symbols(p, app_a);
    symbols_b = lora::make_packet_symbols(p, app_b);
    lora::WaveformOptions wa, wb;
    wa.cfo_hz = cfo_a;
    wa.amplitude = amp_a;
    wb.cfo_hz = cfo_b;
    wb.amplitude = amp_b;
    const IqBuffer pa = mod.synthesize(symbols_a, wa);
    const IqBuffer pb = mod.synthesize(symbols_b, wb);
    const double t0_a = 4.0 * p.sps();
    const double t0_b = t0_a + offset_symbols * p.sps();
    trace.assign(pa.size() + static_cast<std::size_t>(t0_b) + 8 * p.sps(),
                 cfloat{0.0f, 0.0f});
    for (std::size_t i = 0; i < pa.size(); ++i) {
      trace[static_cast<std::size_t>(t0_a) + i] += pa[i];
    }
    for (std::size_t i = 0; i < pb.size(); ++i) {
      trace[static_cast<std::size_t>(t0_b) + i] += pb[i];
    }
    if (noise > 0.0) chan::add_awgn(trace, noise, rng);
    contexts.emplace_back(p, rx::DetectedPacket{t0_a, p.cfo_hz_to_cycles(cfo_a), 0, 12});
    contexts.emplace_back(p, rx::DetectedPacket{t0_b, p.cfo_hz_to_cycles(cfo_b), 0, 12});
    contexts[0].n_data_symbols = static_cast<int>(symbols_a.size());
    contexts[1].n_data_symbols = static_cast<int>(symbols_b.size());
  }

  std::vector<rx::ActiveSymbol> active_at(std::size_t j) const {
    std::vector<rx::ActiveSymbol> act;
    const double c = static_cast<double>(j * p.sps());
    for (int pi = 0; pi < 2; ++pi) {
      const auto& ctx = contexts[static_cast<std::size_t>(pi)];
      const auto d = ctx.data_symbol_at(c, ctx.n_data_symbols);
      if (d.has_value()) act.push_back({pi, *d, ctx.data_symbol_start(*d)});
    }
    std::sort(act.begin(), act.end(),
              [](const rx::ActiveSymbol& a, const rx::ActiveSymbol& b) {
                return a.window_start < b.window_start;
              });
    return act;
  }

  /// Fraction of symbols a strategy assigns to the true transmitted bin.
  double accuracy(rx::PeakAssigner& assigner) {
    rx::SigCalc sig(p, {trace});
    int checked = 0, correct = 0;
    for (std::size_t j = 0; j < trace.size() / p.sps(); ++j) {
      const auto act = active_at(j);
      if (act.empty()) continue;
      std::vector<std::vector<double>> masks(act.size());
      rx::AssignInput in;
      in.symbols = act;
      in.contexts = contexts;
      in.masked_bins = masks;
      in.sig = &sig;
      for (const auto& a : assigner.assign(in)) {
        const auto& truth = a.packet == 0 ? symbols_a : symbols_b;
        const std::uint32_t want = lora::shift_for_value(
            truth[static_cast<std::size_t>(a.data_idx)]);
        ++checked;
        if (a.bin == static_cast<int>(want)) ++correct;
      }
    }
    return checked == 0 ? 0.0 : static_cast<double>(correct) / checked;
  }
};

TEST(Factories, AllSchemesConstructAndName) {
  const lora::Params p = fixture_params();
  for (Scheme s : all_schemes()) {
    EXPECT_FALSE(scheme_name(s).empty());
    rx::Receiver r = make_receiver(s, p);
    (void)r;
  }
  EXPECT_EQ(scheme_name(Scheme::kTnB), "TnB");
  EXPECT_EQ(scheme_name(Scheme::kCicBec), "CIC+");
  EXPECT_EQ(scheme_name(Scheme::kAlignTrack), "AlignTrack*");
  EXPECT_EQ(scheme_name(Scheme::kCoRa), "CoRa");
  EXPECT_EQ(scheme_name(Scheme::kCoRaBec), "CoRa+");
  EXPECT_EQ(scheme_name(Scheme::kLZnThrive), "LZn-Thrive");
  EXPECT_EQ(scheme_name(Scheme::kCoRaTnB), "CoRa-TnB");
}

TEST(Factories, CliNamesRoundTripAndListEverything) {
  // The tnb_eval CLI derives its tokens and --help list from these; a
  // token must parse back to exactly its scheme.
  for (Scheme s : all_schemes()) {
    const std::string token = scheme_cli_name(s);
    EXPECT_FALSE(token.empty());
    const auto parsed = parse_scheme(token);
    ASSERT_TRUE(parsed.has_value()) << token;
    EXPECT_EQ(*parsed, s) << token;
    EXPECT_NE(scheme_cli_list().find(token), std::string::npos);
  }
  // Historical tokens are pinned (scripts depend on them).
  EXPECT_EQ(scheme_cli_name(Scheme::kTnB), "tnb");
  EXPECT_EQ(scheme_cli_name(Scheme::kLoRaPhy), "loraphy");
  EXPECT_EQ(scheme_cli_name(Scheme::kCicBec), "cic+");
  EXPECT_EQ(scheme_cli_name(Scheme::kAlignTrack), "aligntrack");
  EXPECT_EQ(scheme_cli_name(Scheme::kAlignTrackBec), "aligntrack+");
  EXPECT_EQ(scheme_cli_name(Scheme::kCoRa), "cora");
  EXPECT_EQ(scheme_cli_name(Scheme::kLZnThrive), "lzn-thrive");
  EXPECT_EQ(scheme_cli_name(Scheme::kCoRaTnB), "cora-tnb");
  EXPECT_FALSE(parse_scheme("nonsense").has_value());
  EXPECT_FALSE(parse_scheme("").has_value());
}

TEST(Factories, NewSchemeConfigs) {
  const lora::Params p = fixture_params();
  EXPECT_FALSE(make_receiver(Scheme::kCoRa, p).options().use_bec);
  EXPECT_TRUE(make_receiver(Scheme::kCoRaBec, p).options().use_bec);
  EXPECT_FALSE(make_receiver(Scheme::kLZnThrive, p).options().use_bec);
  EXPECT_TRUE(make_receiver(Scheme::kCoRaTnB, p).options().use_bec);
  EXPECT_TRUE(make_receiver(Scheme::kCoRaTnB, p).options().two_pass);
  EXPECT_TRUE(scheme_uses_custom_sync(Scheme::kLZnThrive));
  EXPECT_FALSE(scheme_uses_custom_sync(Scheme::kCoRa));
  EXPECT_FALSE(scheme_uses_custom_sync(Scheme::kTnB));
}

TEST(Factories, SchemeConfigsMatchPaper) {
  const lora::Params p = fixture_params();
  EXPECT_TRUE(make_receiver(Scheme::kTnB, p).options().use_bec);
  EXPECT_FALSE(make_receiver(Scheme::kThrive, p).options().use_bec);
  EXPECT_FALSE(make_receiver(Scheme::kSibling, p).options().use_history);
  EXPECT_FALSE(make_receiver(Scheme::kLoRaPhy, p).options().two_pass);
  EXPECT_TRUE(make_receiver(Scheme::kCicBec, p).options().use_bec);
}

TEST(ArgmaxAssigner, MatchesTallestBin) {
  Rng rng(1);
  Fixture fx(2.3, 800.0, -900.0, 1.0, 0.3, 0.1, rng);
  ArgmaxAssigner assigner(fx.p);
  rx::SigCalc sig(fx.p, {fx.trace});
  for (std::size_t j = 20; j < 40; ++j) {
    const auto act = fx.active_at(j);
    if (act.size() != 2) continue;
    std::vector<std::vector<double>> masks(act.size());
    rx::AssignInput in;
    in.symbols = act;
    in.contexts = fx.contexts;
    in.masked_bins = masks;
    in.sig = &sig;
    const auto res = assigner.assign(in);
    for (std::size_t i = 0; i < act.size(); ++i) {
      const auto& view = sig.data_symbol(
          act[i].packet, fx.contexts[static_cast<std::size_t>(act[i].packet)],
          act[i].data_idx);
      EXPECT_EQ(res[i].bin,
                static_cast<int>(lora::Demodulator::argmax(view.sv)));
    }
    return;
  }
  FAIL() << "no checking point";
}

TEST(ArgmaxAssigner, StrongPacketDominatesWeakOne) {
  // Vanilla demod assigns the strong node's peak to both packets' symbols:
  // the weak packet's accuracy collapses while the strong one stays high.
  Rng rng(2);
  Fixture fx(2.3, 800.0, -900.0, 1.0, 0.25, 0.1, rng);
  ArgmaxAssigner assigner(fx.p);
  rx::SigCalc sig(fx.p, {fx.trace});
  int weak_checked = 0, weak_correct = 0;
  for (std::size_t j = 0; j < fx.trace.size() / fx.p.sps(); ++j) {
    const auto act = fx.active_at(j);
    if (act.size() != 2) continue;  // only fully-collided symbols
    std::vector<std::vector<double>> masks(act.size());
    rx::AssignInput in;
    in.symbols = act;
    in.contexts = fx.contexts;
    in.masked_bins = masks;
    in.sig = &sig;
    for (const auto& a : assigner.assign(in)) {
      if (a.packet != 1) continue;  // packet 1 is the weak one
      const std::uint32_t want = lora::shift_for_value(
          fx.symbols_b[static_cast<std::size_t>(a.data_idx)]);
      ++weak_checked;
      if (a.bin == static_cast<int>(want)) ++weak_correct;
    }
  }
  ASSERT_GT(weak_checked, 10);
  EXPECT_LT(static_cast<double>(weak_correct) / weak_checked, 0.5);
}

TEST(CicAssigner, RecoversWeakPacketUnderStrongInterference) {
  // The defining CIC property: sub-window intersection cancels a strong
  // interferer whose boundary cuts the target window.
  Rng rng(3);
  Fixture fx(2.45, 1100.0, -2100.0, 0.35, 1.0, 0.1, rng);
  CicAssigner cic(fx.p);
  const double acc = fx.accuracy(cic);
  ArgmaxAssigner argmax(fx.p);
  const double base = fx.accuracy(argmax);
  EXPECT_GT(acc, base);
  EXPECT_GE(acc, 0.8) << "cic accuracy " << acc;
}

TEST(AlignTrackStar, ResolvesCollisionWithDistinctAlignments) {
  Rng rng(4);
  Fixture fx(3.4, 1800.0, -2300.0, 1.0, 0.8, 0.2, rng);
  AlignTrackStar at(fx.p);
  EXPECT_GE(fx.accuracy(at), 0.85);
}

TEST(Baselines, EndToEndSchemesDecodeCleanTrace) {
  const lora::Params p = fixture_params();
  // Random start times can make even a single node's packets overlap;
  // LoRaPHY legitimately fails then. Find a collision-free layout.
  sim::Trace trace;
  for (std::uint64_t seed = 5;; ++seed) {
    Rng rng(seed);
    sim::TraceOptions opt;
    opt.duration_s = 1.0;
    opt.load_pps = 3.0;
    opt.nodes = {{1, 20.0, 1200.0}};
    trace = sim::build_trace(p, opt, rng);
    bool clean = true;
    for (std::size_t i = 0; i < trace.packets.size(); ++i) {
      if (sim::collision_level(trace, i) > 0) clean = false;
    }
    if (clean) break;
    ASSERT_LT(seed, 50u) << "no collision-free seed found";
  }
  for (Scheme s : all_schemes()) {
    rx::Receiver r = make_receiver(s, p);
    Rng rr(6);
    const auto decoded = r.decode(trace.iq, rr);
    const auto result = sim::evaluate(trace, decoded);
    EXPECT_EQ(result.decoded_unique, trace.packets.size())
        << scheme_name(s) << " failed on a clean trace";
  }
}

}  // namespace
}  // namespace tnb::base
